// Scenario: choosing a broadcast protocol for a multi-hop relay chain.
//
// A pipeline of relay stations (a path -- the worst case for latency) with
// configurable noise.  The demo races the paper's three single-message
// algorithms (Decay / FASTBC / Robust FASTBC) across fault rates and
// prints a recommendation table: exactly the engineering takeaway of the
// paper (known topology + noise => Robust FASTBC; unknown topology =>
// Decay; noiseless + known topology => FASTBC).
#include <iostream>

#include "common/table.hpp"
#include "core/decay.hpp"
#include "core/fastbc.hpp"
#include "core/robust_fastbc.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace nrn;

  constexpr std::int32_t kStations = 3072;
  const graph::Graph chain = graph::make_path(kStations);
  std::cout << "relay chain with " << kStations
            << " stations; one trial per cell (seeded); Robust FASTBC's "
               "window is sized\nfor each loss rate (the paper's "
               "'sufficiently large constant c')\n\n";

  core::Fastbc fastbc(chain, 0);

  TableWriter table("single-message latency in rounds",
                    {"loss rate p", "Decay", "FASTBC", "RobustFASTBC",
                     "winner"});
  std::uint64_t seed = 1000;
  for (const double p : {0.0, 0.2, 0.5, 0.7}) {
    const auto fm = p == 0.0 ? radio::FaultModel::faultless()
                             : radio::FaultModel::receiver(p);
    core::RobustFastbcParams tuned;
    tuned.block_size = 32;
    tuned.window_multiplier =
        core::RobustFastbc::recommended_window_multiplier(p);
    core::RobustFastbc robust(chain, 0, tuned);
    auto race = [&](auto&& algo) {
      radio::RadioNetwork net(chain, fm, Rng(seed++));
      Rng rng(seed++);
      const auto r = algo(net, rng);
      return r.completed ? static_cast<double>(r.rounds) : -1.0;
    };
    const double d = race([&](auto& net, auto& rng) {
      return core::Decay().run(net, 0, rng);
    });
    const double f = race([&](auto& net, auto& rng) {
      return fastbc.run(net, rng);
    });
    const double r = race([&](auto& net, auto& rng) {
      return robust.run(net, rng);
    });
    std::string winner = "Decay";
    double best = d;
    if (f > 0 && (best < 0 || f < best)) {
      best = f;
      winner = "FASTBC";
    }
    if (r > 0 && (best < 0 || r < best)) {
      winner = "RobustFASTBC";
    }
    table.add_row({fmt(p, 1), fmt(d, 0), fmt(f, 0), fmt(r, 0), winner});
  }
  table.print(std::cout);

  std::cout << "reading: FASTBC wins when the channel is clean; as p grows "
               "its fragile round\nsynchronization stalls (Lemma 10) and "
               "Robust FASTBC's retry blocks take over\n(Theorem 11). "
               "Decay needs no topology knowledge but pays a log n factor\n"
               "per hop at every noise level (Lemma 9).\n";
  return 0;
}

// Scenario: choosing a broadcast protocol for a multi-hop relay chain.
//
// A pipeline of relay stations (a path -- the worst case for latency) with
// configurable noise.  The demo races the paper's three single-message
// algorithms (Decay / FASTBC / Robust FASTBC) across fault rates and
// prints a recommendation table: exactly the engineering takeaway of the
// paper (known topology + noise => Robust FASTBC; unknown topology =>
// Decay; noiseless + known topology => FASTBC).
//
// Every candidate comes out of the ProtocolRegistry and runs through the
// Driver -- the demo itself knows nothing about the individual algorithms.
#include <iostream>

#include "common/table.hpp"
#include "sim/sim.hpp"

int main() {
  using namespace nrn;

  constexpr std::int32_t kStations = 3072;
  // Registry name -> column label, in column order.
  const std::vector<std::pair<std::string, std::string>> contenders = {
      {"decay", "Decay"}, {"fastbc", "FASTBC"}, {"robust", "RobustFASTBC"}};
  std::cout << "relay chain with " << kStations
            << " stations; one trial per cell (seeded); Robust FASTBC's "
               "window is sized\nfor each loss rate (the paper's "
               "'sufficiently large constant c')\n\n";

  TableWriter table("single-message latency in rounds",
                    {"loss rate p", "Decay", "FASTBC", "RobustFASTBC",
                     "winner"});
  // Robust FASTBC's tuned block size; the window constant is sized per
  // fault model by its factory, so no per-rate tuning is needed here.
  sim::DriverOptions options;
  options.tuning.block_size = 32;

  std::uint64_t seed = 1000;
  for (const double p : {0.0, 0.2, 0.5, 0.7}) {
    const std::string fault =
        p == 0.0 ? "none" : "receiver:" + std::to_string(p);
    std::vector<std::string> row = {fmt(p, 1)};
    std::string winner = "none";
    double best = -1.0;
    for (const auto& [protocol, label] : contenders) {
      const auto scenario = sim::Scenario::parse(
          "path:" + std::to_string(kStations), fault, 0, 1, seed++);
      const auto report =
          sim::Driver().run(scenario, protocol, /*trials=*/1, options);
      const double rounds =
          report.all_completed() ? report.median_rounds() : -1.0;
      row.push_back(fmt(rounds, 0));
      if (rounds > 0 && (best < 0 || rounds < best)) {
        best = rounds;
        winner = label;
      }
    }
    row.push_back(winner);
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "reading: FASTBC wins when the channel is clean; as p grows "
               "its fragile round\nsynchronization stalls (Lemma 10) and "
               "Robust FASTBC's retry blocks take over\n(Theorem 11). "
               "Decay needs no topology knowledge but pays a log n factor\n"
               "per hop at every noise level (Lemma 9).\n";
  return 0;
}

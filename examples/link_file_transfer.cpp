// Scenario: transferring a file over one lossy radio hop (Appendix A made
// concrete).
//
// A ground station sends a firmware image to a probe over a half-duplex
// link that corrupts half of all frames (receiver faults, p = 0.5).  Three
// strategies race, with *real bytes* carried end to end:
//   1. fixed repetition (Lemma 29)  -- each chunk sent ~2 log2(k) times;
//   2. stop-and-wait ACK (Lemma 32) -- resend the chunk until it lands;
//   3. Reed-Solomon fountain-style streaming (Lemma 30) -- no feedback at
//      all, decode once any k coded frames arrive.
// The received image is reassembled and compared byte-for-byte.
#include <iostream>

#include "coding/reed_solomon.hpp"
#include "core/single_link.hpp"
#include "graph/generators.hpp"
#include "radio/network.hpp"

int main() {
  using namespace nrn;

  constexpr std::int64_t kChunks = 512;       // file = 512 chunks
  constexpr std::size_t kSymbolsPerChunk = 16; // of 16 GF(2^16) symbols
  constexpr double kLossRate = 0.5;

  // The "file".
  Rng payload_rng(7);
  std::vector<std::vector<coding::Gf65536::Symbol>> file(
      kChunks, std::vector<coding::Gf65536::Symbol>(kSymbolsPerChunk));
  for (auto& chunk : file)
    for (auto& s : chunk)
      s = static_cast<coding::Gf65536::Symbol>(payload_rng.next_below(65536));

  const auto link = graph::make_single_link();
  std::cout << "file: " << kChunks << " chunks x " << kSymbolsPerChunk * 2
            << " bytes; link loss rate " << kLossRate << "\n\n";

  // --- Strategy 1: fixed repetition (no feedback).
  {
    radio::RadioNetwork net(link, radio::FaultModel::receiver(kLossRate),
                            Rng(1));
    const auto reps = core::link_nonadaptive_reps(kChunks, kLossRate);
    const auto r = core::run_link_nonadaptive_routing(net, kChunks, reps);
    std::cout << "repetition x" << reps << ":   " << r.rounds << " frames, "
              << (r.completed ? "file complete" : "CHUNKS LOST") << "\n";
  }

  // --- Strategy 2: stop-and-wait with perfect feedback.
  {
    radio::RadioNetwork net(link, radio::FaultModel::receiver(kLossRate),
                            Rng(2));
    const auto r =
        core::run_link_adaptive_routing(net, kChunks, 100 * kChunks);
    std::cout << "stop-and-wait:    " << r.rounds << " frames, "
              << (r.completed ? "file complete" : "FAILED") << "\n";
  }

  // --- Strategy 3: Reed-Solomon streaming with real payload decode.
  {
    radio::RadioNetwork net(link, radio::FaultModel::receiver(kLossRate),
                            Rng(3));
    coding::ReedSolomon rs(kChunks, kSymbolsPerChunk);
    const auto frame_count = core::link_rs_packet_count(kChunks, kLossRate);

    std::vector<coding::RsPacket> received;
    std::int64_t frames_sent = 0;
    for (std::int64_t j = 0; j < frame_count; ++j) {
      auto pkt = rs.encode_packet(file, static_cast<std::uint32_t>(j));
      // Ship the symbols as the radio payload (bytes on the wire).
      std::vector<std::uint8_t> wire(pkt.symbols.size() * 2);
      for (std::size_t s = 0; s < pkt.symbols.size(); ++s) {
        wire[2 * s] = static_cast<std::uint8_t>(pkt.symbols[s] >> 8);
        wire[2 * s + 1] = static_cast<std::uint8_t>(pkt.symbols[s] & 0xff);
      }
      net.set_broadcast(0, radio::Packet{j, radio::make_payload(wire)});
      const auto& deliveries = net.run_round();
      ++frames_sent;
      if (!deliveries.empty()) {
        // Decode the wire bytes back into a packet at the receiver.
        const auto& bytes = *deliveries.front().packet.payload;
        coding::RsPacket back;
        back.index = static_cast<std::uint32_t>(deliveries.front().packet.id);
        back.symbols.resize(bytes.size() / 2);
        for (std::size_t s = 0; s < back.symbols.size(); ++s)
          back.symbols[s] = static_cast<coding::Gf65536::Symbol>(
              (bytes[2 * s] << 8) | bytes[2 * s + 1]);
        received.push_back(std::move(back));
        if (received.size() >= static_cast<std::size_t>(kChunks)) break;
      }
    }
    const bool enough = received.size() >= static_cast<std::size_t>(kChunks);
    const bool intact = enough && rs.decode(received) == file;
    std::cout << "RS streaming:     " << frames_sent << " frames, "
              << received.size() << " survived, file "
              << (intact ? "reassembled byte-exact" : "INCOMPLETE") << "\n";
    if (!intact) return 1;
  }

  std::cout << "\nreading: with feedback, stop-and-wait already achieves the "
               "optimal ~2 frames/chunk\n(Lemma 32); without feedback, "
               "repetition pays an extra log k factor (Lemma 29)\nwhile "
               "Reed-Solomon streaming needs none of it (Lemma 30).\n";
  return 0;
}

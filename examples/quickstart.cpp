// Quickstart: run a broadcast protocol on a noisy radio scenario.
//
//   $ ./examples/quickstart
//
// Walks through the two layers of the library:
//   1. the one-call experiment API -- Scenario + ProtocolRegistry + Driver,
//      which is all most callers need;
//   2. the underlying objects (graph::Graph, radio::RadioNetwork, a
//      BroadcastProtocol) for callers that want a round-level trace.
#include <iostream>

#include "graph/algorithms.hpp"
#include "sim/sim.hpp"

int main() {
  using namespace nrn;

  // 1. Declare the experiment: a 12x12 grid where every reception
  //    independently turns to noise with probability 0.3 (the paper's
  //    receiver-fault model), source at the corner, seed 42.
  const auto scenario = sim::Scenario::parse("grid:12x12", "receiver:0.3",
                                             /*source=*/0, /*k=*/1,
                                             /*seed=*/42);
  std::cout << "scenario: " << scenario.describe() << "\n";

  // 2. Run five trials of Decay through the Driver.  Protocol selection is
  //    by name: any protocol in the registry works here.
  const auto report = sim::Driver().run(scenario, "decay", /*trials=*/5);
  std::cout << "decay completed all trials: "
            << (report.all_completed() ? "yes" : "no") << ", median "
            << report.median_rounds() << " rounds over "
            << report.trials.size() << " trials\n\n";
  sim::write_table(std::cout, report);

  // 3. Drop one layer for a round-by-round view: build the graph and the
  //    protocol explicitly and attach a trace recorder.
  const graph::Graph grid = scenario.build_graph();
  std::cout << "\ntopology: n = " << grid.node_count()
            << ", diameter = " << graph::diameter_exact(grid) << "\n";

  const sim::ProtocolContext ctx{grid, scenario, sim::Tuning{}};
  const auto decay = sim::ProtocolRegistry::global().create("decay", ctx);

  radio::RadioNetwork net(grid, scenario.fault, Rng(99));
  Rng algorithm_rng(7);
  radio::TraceRecorder trace;
  const sim::Outcome result = decay->run(net, algorithm_rng, &trace);

  // v2 outcomes carry a typed metrics map; "informed" is present because
  // decay is a single-message protocol that tracks its frontier.
  const sim::MetricValue* informed = result.find("informed");
  std::cout << "traced run " << (result.completed ? "completed" : "FAILED")
            << " in " << result.rounds() << " rounds; informed "
            << (informed ? informed->as_int() : 0) << "/"
            << grid.node_count() << "\n";

  const auto totals = net.totals();
  std::cout << "engine totals: " << totals.broadcasts << " broadcasts, "
            << totals.deliveries << " deliveries, " << totals.collision_losses
            << " collision losses, " << totals.receiver_fault_losses
            << " receiver-fault losses\n";

  // The trace shows the informed count over time; print a tiny sparkline.
  std::cout << "frontier growth (every 20 rounds): ";
  for (std::size_t i = 0; i < trace.progress().size(); i += 20)
    std::cout << static_cast<int>(trace.progress()[i]) << " ";
  std::cout << "\n";
  return report.all_completed() && result.completed ? 0 : 1;
}

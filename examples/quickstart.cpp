// Quickstart: build a noisy radio network, broadcast one message with
// Decay, and inspect what happened.
//
//   $ ./examples/quickstart
//
// Walks through the three core objects of the library:
//   graph::Graph       -- the topology,
//   radio::RadioNetwork -- the round engine with a fault model,
//   core::Decay        -- a broadcast algorithm driving the engine.
#include <iostream>

#include "core/decay.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace nrn;

  // 1. A topology: 12x12 grid, source at the corner (node 0).
  const graph::Graph grid = graph::make_grid(12, 12);
  std::cout << "topology: 12x12 grid, n = " << grid.node_count()
            << ", diameter = " << graph::diameter_exact(grid) << "\n";

  // 2. A noisy radio network: every reception independently turns to noise
  //    with probability 0.3 (the paper's receiver-fault model).
  radio::RadioNetwork net(grid, radio::FaultModel::receiver(0.3), Rng(42));

  // 3. Run Decay from the corner and trace the informed frontier.
  Rng algorithm_rng(7);
  radio::TraceRecorder trace;
  const core::BroadcastRunResult result =
      core::Decay().run(net, /*source=*/0, algorithm_rng, &trace);

  std::cout << "broadcast " << (result.completed ? "completed" : "FAILED")
            << " in " << result.rounds << " rounds\n";
  std::cout << "informed nodes: " << result.informed << "/"
            << grid.node_count() << "\n";

  const auto totals = net.totals();
  std::cout << "engine totals: " << totals.broadcasts << " broadcasts, "
            << totals.deliveries << " deliveries, " << totals.collision_losses
            << " collision losses, " << totals.receiver_fault_losses
            << " receiver-fault losses\n";

  // The trace shows the informed count over time; print a tiny sparkline.
  std::cout << "frontier growth (every 20 rounds): ";
  for (std::size_t i = 0; i < trace.progress().size(); i += 20)
    std::cout << static_cast<int>(trace.progress()[i]) << " ";
  std::cout << "\n";
  return result.completed ? 0 : 1;
}

// Scenario: a lecture-hall beacon pushing course notes to laptops.
//
// One transmitter (the hub) serves n receivers over a lossy channel -- the
// paper's star topology with receiver faults.  The demo shows the
// Theta(log n) advantage of Reed-Solomon coding over even fully adaptive
// per-message retransmission (Theorem 17), with real RS payloads decoded
// on a sampled receiver as a correctness spot-check.
#include <iostream>

#include "coding/reed_solomon.hpp"
#include "core/star_schedules.hpp"
#include "topology/star.hpp"

int main() {
  using namespace nrn;

  constexpr std::int32_t kReceivers = 1024;
  constexpr std::int64_t kChunks = 128;  // file chunks to distribute
  constexpr double kLossRate = 0.5;

  const auto star = topology::make_star(kReceivers);
  std::cout << "star: 1 beacon, " << kReceivers
            << " receivers, loss rate " << kLossRate << ", " << kChunks
            << " chunks\n\n";

  // Plan A: adaptive routing -- resend each chunk until every receiver
  // has it (the beacon gets perfect feedback, the best case for routing).
  radio::RadioNetwork routing_net(star.graph,
                                  radio::FaultModel::receiver(kLossRate),
                                  Rng(1));
  const auto routing = core::run_star_adaptive_routing(
      routing_net, star, kChunks, 100'000'000);
  std::cout << "adaptive routing:  " << routing.rounds << " rounds ("
            << routing.rounds_per_message() << " per chunk)\n";

  // Plan B: Reed-Solomon -- stream coded packets; any kChunks of them
  // reconstruct the file at each receiver independently.
  const auto packet_count =
      core::rs_packet_count(kChunks, kReceivers + 1, kLossRate);
  radio::RadioNetwork coding_net(star.graph,
                                 radio::FaultModel::receiver(kLossRate),
                                 Rng(2));
  const auto coding =
      core::run_star_rs_coding(coding_net, star, kChunks, packet_count);
  std::cout << "Reed-Solomon:      " << coding.rounds << " rounds ("
            << coding.rounds_per_message() << " per chunk)\n";
  std::cout << "coding gap:        "
            << routing.rounds_per_message() / coding.rounds_per_message()
            << "x  (log2(n) = 10)\n\n";

  // Spot-check the actual codec: encode kChunks chunks, drop half the
  // packets, decode from the survivors.
  Rng rng(3);
  std::vector<std::vector<coding::Gf65536::Symbol>> chunks(
      kChunks, std::vector<coding::Gf65536::Symbol>(8));
  for (auto& c : chunks)
    for (auto& s : c)
      s = static_cast<coding::Gf65536::Symbol>(rng.next_below(65536));
  coding::ReedSolomon rs(kChunks, 8);
  auto packets = rs.encode(chunks, static_cast<std::uint32_t>(packet_count));
  std::vector<coding::RsPacket> survivors;
  for (auto& p : packets)
    if (rng.bernoulli(1.0 - kLossRate)) survivors.push_back(std::move(p));
  std::cout << "codec spot-check: " << survivors.size() << "/"
            << packet_count << " packets survived; decode "
            << (rs.decode(survivors) == chunks ? "OK" : "FAILED") << "\n";

  return routing.completed && coding.completed ? 0 : 1;
}

// Scenario: an emergency-alert system for a city-block sensor grid.
//
// A base station at one corner must push k alert bulletins to every sensor
// despite lossy radios (receiver faults).  This is the paper's k-message
// broadcast problem; the example contrasts naive repetition with the
// RLNC-composed Decay of Lemma 12, with real payloads decoded and verified
// at every sensor.
//
// The rounds comparison runs through the Scenario/Driver API ("rlnc-decay"
// from the registry); the payload spot-check then uses the coding layer's
// run_and_verify directly, since carrying and decoding real bytes is a
// coding-API feature, not a protocol-selection feature.
#include <iostream>
#include <string>

#include "core/multi_message.hpp"
#include "sim/sim.hpp"

int main() {
  using namespace nrn;

  constexpr std::size_t kBulletins = 32;
  constexpr std::size_t kBulletinBytes = 16;
  constexpr double kLossRate = 0.4;
  const std::string fault = "receiver:" + std::to_string(kLossRate);

  std::cout << "sensor grid 8x8, " << kBulletins << " bulletins of "
            << kBulletinBytes << " bytes, loss rate " << kLossRate << "\n\n";

  // k-bulletin RLNC broadcast vs the single-bulletin flood, both through
  // the Driver: same scenario, different k.
  const auto coded_scenario = sim::Scenario::parse(
      "grid:8x8", fault, 0, static_cast<std::int64_t>(kBulletins), 99);
  const auto coded = sim::Driver().run(coded_scenario, "rlnc-decay", 1);

  const auto solo_scenario = sim::Scenario::parse("grid:8x8", fault, 0, 1, 100);
  const auto solo = sim::Driver().run(solo_scenario, "rlnc-decay", 1);

  const auto& coded_run = coded.trials.front().run;
  const auto& solo_run = solo.trials.front().run;
  std::cout << "RLNC broadcast: "
            << (coded.all_completed() ? "all sensors reached full rank"
                                      : "FAILED")
            << "\n";
  std::cout << "rounds used: " << coded_run.rounds << " ("
            << coded_run.rounds_per_message() << " rounds/bulletin)\n";
  std::cout << "single-bulletin flood: " << solo_run.rounds
            << " rounds; naive sequential estimate for " << kBulletins
            << " bulletins: "
            << solo_run.rounds * static_cast<std::int64_t>(kBulletins)
            << " rounds\n";
  std::cout << "pipelining benefit: "
            << static_cast<double>(solo_run.rounds) *
                   static_cast<double>(kBulletins) /
                   static_cast<double>(coded_run.rounds)
            << "x\n\n";

  // Payload spot-check: real bytes travel and decode at every sensor.
  Rng payload_rng(2024);
  std::vector<std::vector<std::uint8_t>> bulletins(
      kBulletins, std::vector<std::uint8_t>(kBulletinBytes));
  for (std::size_t i = 0; i < kBulletins; ++i)
    for (auto& b : bulletins[i])
      b = static_cast<std::uint8_t>(payload_rng.next_below(256));

  const graph::Graph city = coded_scenario.build_graph();
  core::MultiMessageParams params;
  params.k = kBulletins;
  params.block_len = kBulletinBytes;
  core::RlncBroadcast broadcaster(city, /*source=*/0, params);
  radio::RadioNetwork net(city, coded_scenario.fault, Rng(99));
  Rng algo_rng(17);
  const auto verified = broadcaster.run_and_verify(net, algo_rng, bulletins);
  std::cout << "payload spot-check: "
            << (verified.completed ? "all sensors decoded all bulletins"
                                   : "FAILED")
            << " (" << verified.rounds << " rounds)\n";

  return coded.all_completed() && verified.completed ? 0 : 1;
}

// Scenario: an emergency-alert system for a city-block sensor grid.
//
// A base station at one corner must push k alert bulletins to every sensor
// despite lossy radios (receiver faults).  This is the paper's k-message
// broadcast problem; the example contrasts naive repetition with the
// RLNC-composed Decay of Lemma 12, with real payloads decoded and verified
// at every sensor.
#include <iostream>
#include <string>

#include "core/multi_message.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace nrn;

  constexpr std::int32_t kRows = 8, kCols = 8;
  constexpr std::size_t kBulletins = 12;
  constexpr std::size_t kBulletinBytes = 16;
  constexpr double kLossRate = 0.4;

  const graph::Graph city = graph::make_grid(kRows, kCols);
  std::cout << "sensor grid " << kRows << "x" << kCols << ", " << kBulletins
            << " bulletins of " << kBulletinBytes << " bytes, loss rate "
            << kLossRate << "\n\n";

  // Compose the bulletins (payload mode: real bytes travel and decode).
  Rng payload_rng(2024);
  std::vector<std::vector<std::uint8_t>> bulletins(
      kBulletins, std::vector<std::uint8_t>(kBulletinBytes));
  for (std::size_t i = 0; i < kBulletins; ++i)
    for (auto& b : bulletins[i])
      b = static_cast<std::uint8_t>(payload_rng.next_below(256));

  core::MultiMessageParams params;
  params.k = kBulletins;
  params.block_len = kBulletinBytes;

  core::RlncBroadcast broadcaster(city, /*source=*/0, params);
  radio::RadioNetwork net(city, radio::FaultModel::receiver(kLossRate),
                          Rng(99));
  Rng algo_rng(17);
  const auto result = broadcaster.run_and_verify(net, algo_rng, bulletins);

  std::cout << "RLNC broadcast: "
            << (result.completed ? "all sensors decoded all bulletins"
                                 : "FAILED")
            << "\n";
  std::cout << "rounds used: " << result.rounds << " ("
            << result.rounds_per_message() << " rounds/bulletin)\n";

  // Reference point: what a single bulletin costs with plain Decay-like
  // flooding; k bulletins sent one-by-one would pay this k times without
  // the coding pipeline.
  core::MultiMessageParams solo;
  solo.k = 1;
  core::RlncBroadcast single(city, 0, solo);
  radio::RadioNetwork net2(city, radio::FaultModel::receiver(kLossRate),
                           Rng(100));
  Rng algo2(18);
  const auto one = single.run(net2, algo2);
  std::cout << "single-bulletin flood: " << one.rounds
            << " rounds; naive sequential estimate for " << kBulletins
            << " bulletins: " << one.rounds * static_cast<long>(kBulletins)
            << " rounds\n";
  std::cout << "pipelining benefit: "
            << static_cast<double>(one.rounds) *
                   static_cast<double>(kBulletins) /
                   static_cast<double>(result.rounds)
            << "x\n";
  return result.completed ? 0 : 1;
}

// Scenario: an emergency-alert system for a city-block sensor grid.
//
// A base station at one corner must push k alert bulletins to every sensor
// despite lossy radios (receiver faults).  This is the paper's k-message
// broadcast problem; the example contrasts naive repetition with the
// RLNC-composed Decay of Lemma 12, with real payloads decoded and verified
// at every sensor.
//
// Everything runs through the Scenario/Driver API: the rounds comparison
// uses "rlnc-decay" from the registry, and the payload check uses the
// "rlnc-decay-verified" protocol (Protocol v2's kVerifiedPayload
// capability), whose verified_bytes metric certifies that real bytes
// traveled and decoded at every sensor.
#include <iostream>
#include <string>

#include "sim/sim.hpp"

int main() {
  using namespace nrn;

  constexpr std::size_t kBulletins = 32;
  constexpr std::size_t kBulletinBytes = 16;
  constexpr double kLossRate = 0.4;
  const std::string fault = "receiver:" + std::to_string(kLossRate);

  std::cout << "sensor grid 8x8, " << kBulletins << " bulletins of "
            << kBulletinBytes << " bytes, loss rate " << kLossRate << "\n\n";

  // k-bulletin RLNC broadcast vs the single-bulletin flood, both through
  // the Driver: same scenario, different k.
  const auto coded_scenario = sim::Scenario::parse(
      "grid:8x8", fault, 0, static_cast<std::int64_t>(kBulletins), 99);
  const auto coded = sim::Driver().run(coded_scenario, "rlnc-decay", 1);

  const auto solo_scenario = sim::Scenario::parse("grid:8x8", fault, 0, 1, 100);
  const auto solo = sim::Driver().run(solo_scenario, "rlnc-decay", 1);

  const auto& coded_run = coded.trials.front().run;
  const auto& solo_run = solo.trials.front().run;
  std::cout << "RLNC broadcast: "
            << (coded.all_completed() ? "all sensors reached full rank"
                                      : "FAILED")
            << "\n";
  std::cout << "rounds used: " << coded_run.rounds() << " ("
            << coded_run.rounds_per_message() << " rounds/bulletin)\n";
  std::cout << "single-bulletin flood: " << solo_run.rounds()
            << " rounds; naive sequential estimate for " << kBulletins
            << " bulletins: "
            << solo_run.rounds() * static_cast<std::int64_t>(kBulletins)
            << " rounds\n";
  std::cout << "pipelining benefit: "
            << static_cast<double>(solo_run.rounds()) *
                   static_cast<double>(kBulletins) /
                   static_cast<double>(coded_run.rounds())
            << "x\n\n";

  // Payload check through the registry: rlnc-decay-verified carries
  // kBulletinBytes of real payload per bulletin and checks every sensor's
  // decode against the source bytes.  verified_bytes counts what was
  // certified.
  sim::DriverOptions options;
  options.tuning.payload_len = static_cast<std::int64_t>(kBulletinBytes);
  const auto verified =
      sim::Driver().run(coded_scenario, "rlnc-decay-verified", 1, options);
  const auto& verified_run = verified.trials.front().run;
  const sim::MetricValue* bytes = verified_run.find("verified_bytes");
  std::cout << "payload check (rlnc-decay-verified): "
            << (verified.all_completed()
                    ? "all sensors decoded all bulletins"
                    : "FAILED")
            << " (" << verified_run.rounds() << " rounds, "
            << (bytes ? bytes->as_int() : 0) << " bytes verified)\n";

  return coded.all_completed() && verified.all_completed() ? 0 : 1;
}

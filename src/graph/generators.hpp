// Topology generators.
//
// These cover every family used by the paper's analyses plus standard test
// workloads: the path (Lemma 10's degradation instance), the star (the
// Theta(log n) receiver-fault gap instance, Section 5.1.1), the single link
// (Appendix A), grids/trees/caterpillars (Robust FASTBC stress), and random
// connected graphs for property sweeps.  The WCT construction lives in
// src/topology (it needs cluster bookkeeping beyond a plain Graph).
#pragma once

#include "common/rng.hpp"
#include "graph/geometry.hpp"
#include "graph/graph.hpp"

namespace nrn::graph {

/// Path 0 - 1 - ... - (n-1).  Diameter n-1; node 0 is the natural source.
Graph make_path(NodeId n);

/// Cycle on n >= 3 nodes.
Graph make_cycle(NodeId n);

/// Star: node 0 is the hub, nodes 1..n-1 are leaves.  The paper's star
/// topology has the *source* at the hub.
Graph make_star(NodeId leaf_count);

/// Two nodes joined by one edge (Appendix A's single-link topology).
Graph make_single_link();

/// Complete graph K_n.
Graph make_complete(NodeId n);

/// rows x cols grid; node (r, c) has id r * cols + c.  Diameter rows+cols-2.
Graph make_grid(NodeId rows, NodeId cols);

/// Complete binary tree with n nodes (heap indexing; root 0).
Graph make_binary_tree(NodeId n);

/// Caterpillar: a spine path of `spine` nodes, each with `legs` pendant
/// leaves.  Spine node i has id i; leaves follow.  Stresses the interplay of
/// fast stretches (the spine) and slow edges (the legs) in FASTBC.
Graph make_caterpillar(NodeId spine, NodeId legs);

/// Uniform random tree from a random Prufer-like attachment: node i >= 1
/// attaches to a uniformly random earlier node.
Graph make_random_tree(NodeId n, Rng& rng);

/// Erdos-Renyi G(n, p) conditioned on connectivity: edges are sampled and a
/// random spanning-tree skeleton guarantees connectedness without skewing
/// the degree distribution much for p above the connectivity threshold.
Graph make_connected_gnp(NodeId n, double p, Rng& rng);

/// Random bipartite graph: `left` x `right` nodes, each cross pair joined
/// independently with probability p.  Left ids come first.
Graph make_random_bipartite(NodeId left, NodeId right, double p, Rng& rng);

/// Barbell: two cliques of size k joined by a path of length `bridge`.
Graph make_barbell(NodeId clique, NodeId bridge);

/// "Lollipop": clique of size k with a pendant path of length `tail`.
Graph make_lollipop(NodeId clique, NodeId tail);

/// d-dimensional hypercube: 2^d nodes, node ids are coordinate bitmasks.
/// Diameter d; a dense low-diameter stress case for the broadcast
/// algorithms.
Graph make_hypercube(std::int32_t dimensions);

/// Ring of `cliques` cliques of size `clique_size`, consecutive cliques
/// joined by one edge (member 0 of each to member 1 of the next).  High
/// local collision pressure with a long global diameter.
Graph make_ring_of_cliques(NodeId cliques, NodeId clique_size);

/// Random d-regular-ish multigraph via the pairing model with rejection of
/// self-loops/duplicates; a few vertices may end with degree d-1 when the
/// retry budget runs out, which the radio experiments tolerate.  n * d must
/// be even.  Connectivity is not guaranteed but holds w.h.p. for d >= 3.
Graph make_random_regular(NodeId n, std::int32_t degree, Rng& rng);

/// Unit-disk graph (arXiv:1302.4059 style): n nodes placed uniformly at
/// random in the unit square, an edge joining every pair within `radius`.
/// Every node transmits with the shared `power` (the SINR channel prices
/// gains from it).  Placement goes to `geometry` when non-null; the rng
/// draws are identical either way (2n uniform01 calls per attempt, x then
/// y per node).  A disconnected sample is resampled from the same stream
/// (broadcast needs every node reachable); a radius that fails to connect
/// within the retry budget fails the build loudly.
Graph make_unit_disk(NodeId n, double radius, double power, Rng& rng,
                     Geometry* geometry = nullptr);

/// Geometric graph at fixed expected density: n nodes placed uniformly in
/// the [0, L)^2 square with L = sqrt(n / density), an edge joining every
/// pair within unit distance, unit transmit power -- so `density` is the
/// expected number of nodes per unit square regardless of n.  Same rng
/// and geometry conventions as make_unit_disk.
Graph make_uniform_density(NodeId n, double density, Rng& rng,
                           Geometry* geometry = nullptr);

}  // namespace nrn::graph

#include "graph/generators.hpp"

#include <cmath>
#include <set>

#include "graph/algorithms.hpp"

namespace nrn::graph {

Graph make_path(NodeId n) {
  NRN_EXPECTS(n >= 1, "path needs at least one node");
  GraphBuilder b(n);
  for (NodeId i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  return b.build();
}

Graph make_cycle(NodeId n) {
  NRN_EXPECTS(n >= 3, "cycle needs at least three nodes");
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) b.add_edge(i, (i + 1) % n);
  return b.build();
}

Graph make_star(NodeId leaf_count) {
  NRN_EXPECTS(leaf_count >= 1, "star needs at least one leaf");
  GraphBuilder b(leaf_count + 1);
  for (NodeId i = 1; i <= leaf_count; ++i) b.add_edge(0, i);
  return b.build();
}

Graph make_single_link() {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  return b.build();
}

Graph make_complete(NodeId n) {
  NRN_EXPECTS(n >= 2, "complete graph needs at least two nodes");
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j) b.add_edge(i, j);
  return b.build();
}

Graph make_grid(NodeId rows, NodeId cols) {
  NRN_EXPECTS(rows >= 1 && cols >= 1, "grid dimensions must be positive");
  GraphBuilder b(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

Graph make_binary_tree(NodeId n) {
  NRN_EXPECTS(n >= 1, "tree needs at least one node");
  GraphBuilder b(n);
  for (NodeId i = 1; i < n; ++i) b.add_edge(i, (i - 1) / 2);
  return b.build();
}

Graph make_caterpillar(NodeId spine, NodeId legs) {
  NRN_EXPECTS(spine >= 1 && legs >= 0, "bad caterpillar parameters");
  const NodeId n = spine + spine * legs;
  GraphBuilder b(n);
  for (NodeId i = 0; i + 1 < spine; ++i) b.add_edge(i, i + 1);
  NodeId next = spine;
  for (NodeId i = 0; i < spine; ++i)
    for (NodeId leg = 0; leg < legs; ++leg) b.add_edge(i, next++);
  return b.build();
}

Graph make_random_tree(NodeId n, Rng& rng) {
  NRN_EXPECTS(n >= 1, "tree needs at least one node");
  GraphBuilder b(n);
  for (NodeId i = 1; i < n; ++i)
    b.add_edge(i, static_cast<NodeId>(rng.next_below(
                      static_cast<std::uint64_t>(i))));
  return b.build();
}

Graph make_connected_gnp(NodeId n, double p, Rng& rng) {
  NRN_EXPECTS(n >= 2, "G(n,p) needs at least two nodes");
  NRN_EXPECTS(p >= 0.0 && p <= 1.0, "probability out of range");
  GraphBuilder b(n);
  // Random attachment skeleton keeps the sample connected.
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  rng.shuffle(order);
  for (NodeId i = 1; i < n; ++i) {
    const NodeId child = order[static_cast<std::size_t>(i)];
    const NodeId parent = order[static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(i)))];
    b.add_edge(child, parent);
  }
  // Skip sampling row by row: O(n + p n^2) expected draws instead of the
  // n^2 per-pair coins, which makes n ~ 10^5 sparse graphs practical.
  for (NodeId i = 0; i + 1 < n; ++i)
    rng.for_each_bernoulli(static_cast<std::size_t>(n - i - 1), p,
                           [&](std::size_t offset) {
                             b.add_edge(i, i + 1 + static_cast<NodeId>(offset));
                           });
  return b.build();
}

Graph make_random_bipartite(NodeId left, NodeId right, double p, Rng& rng) {
  NRN_EXPECTS(left >= 1 && right >= 1, "bipartite sides must be non-empty");
  GraphBuilder b(left + right);
  for (NodeId i = 0; i < left; ++i)
    rng.for_each_bernoulli(static_cast<std::size_t>(right), p,
                           [&](std::size_t j) {
                             b.add_edge(i, left + static_cast<NodeId>(j));
                           });
  return b.build();
}

Graph make_barbell(NodeId clique, NodeId bridge) {
  NRN_EXPECTS(clique >= 2 && bridge >= 1, "bad barbell parameters");
  const NodeId n = 2 * clique + bridge - 1;
  GraphBuilder b(n);
  for (NodeId i = 0; i < clique; ++i)
    for (NodeId j = i + 1; j < clique; ++j) b.add_edge(i, j);
  const NodeId second = clique + bridge - 1;
  for (NodeId i = 0; i < clique; ++i)
    for (NodeId j = i + 1; j < clique; ++j)
      b.add_edge(second + i, second + j);
  // Bridge path from node clique-1 to node `second`.
  NodeId prev = clique - 1;
  for (NodeId step = 0; step < bridge - 1; ++step) {
    const NodeId mid = clique + step;
    b.add_edge(prev, mid);
    prev = mid;
  }
  b.add_edge(prev, second);
  return b.build();
}

Graph make_hypercube(std::int32_t dimensions) {
  NRN_EXPECTS(dimensions >= 1 && dimensions <= 20, "bad hypercube dimension");
  const NodeId n = static_cast<NodeId>(1) << dimensions;
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u)
    for (std::int32_t d = 0; d < dimensions; ++d) {
      const NodeId v = u ^ (static_cast<NodeId>(1) << d);
      if (u < v) b.add_edge(u, v);
    }
  return b.build();
}

Graph make_ring_of_cliques(NodeId cliques, NodeId clique_size) {
  NRN_EXPECTS(cliques >= 3, "ring needs at least three cliques");
  NRN_EXPECTS(clique_size >= 2, "cliques need at least two members");
  const NodeId n = cliques * clique_size;
  GraphBuilder b(n);
  auto member = [clique_size](NodeId c, NodeId i) {
    return c * clique_size + i;
  };
  for (NodeId c = 0; c < cliques; ++c) {
    for (NodeId i = 0; i < clique_size; ++i)
      for (NodeId j = i + 1; j < clique_size; ++j)
        b.add_edge(member(c, i), member(c, j));
    b.add_edge(member(c, 0), member((c + 1) % cliques, 1));
  }
  return b.build();
}

Graph make_random_regular(NodeId n, std::int32_t degree, Rng& rng) {
  NRN_EXPECTS(n >= degree + 1, "degree too large for n");
  NRN_EXPECTS(degree >= 1, "degree must be positive");
  NRN_EXPECTS((static_cast<std::int64_t>(n) * degree) % 2 == 0,
              "n * degree must be even");
  GraphBuilder b(n);
  // Pairing model: stubs shuffled and matched; conflicting pairs are
  // retried a bounded number of times, then dropped.
  std::vector<NodeId> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(degree));
  for (NodeId u = 0; u < n; ++u)
    for (std::int32_t d = 0; d < degree; ++d) stubs.push_back(u);
  std::set<std::pair<NodeId, NodeId>> used;
  for (int attempt = 0; attempt < 32; ++attempt) {
    rng.shuffle(stubs);
    std::vector<NodeId> leftovers;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      NodeId u = stubs[i], v = stubs[i + 1];
      if (u == v) {
        leftovers.push_back(u);
        leftovers.push_back(v);
        continue;
      }
      if (u > v) std::swap(u, v);
      if (!used.insert({u, v}).second) {
        leftovers.push_back(u);
        leftovers.push_back(v);
        continue;
      }
      b.add_edge(u, v);
    }
    stubs.swap(leftovers);
    if (stubs.size() < 2) break;
  }
  return b.build();
}

Graph make_lollipop(NodeId clique, NodeId tail) {
  NRN_EXPECTS(clique >= 2 && tail >= 1, "bad lollipop parameters");
  GraphBuilder b(clique + tail);
  for (NodeId i = 0; i < clique; ++i)
    for (NodeId j = i + 1; j < clique; ++j) b.add_edge(i, j);
  NodeId prev = clique - 1;
  for (NodeId i = 0; i < tail; ++i) {
    b.add_edge(prev, clique + i);
    prev = clique + i;
  }
  return b.build();
}

namespace {

/// Shared body of the geometric generators: places n nodes uniformly in
/// the [0, side)^2 square (x then y per node, 2n uniform01 draws total),
/// joins every pair within `range`, and exports the placement.  The draws
/// never depend on whether geometry output was requested, so graph builds
/// with and without it see the same topology from the same rng state.
///
/// A disconnected sample is resampled from the same stream (the broadcast
/// model needs every node reachable, and a graph edge the channel can
/// never deliver over would be worse than a retry).  The retry budget
/// makes a sub-critical radius/density fail loudly instead of spinning.
Graph make_geometric(NodeId n, double side, double range, double power,
                     Rng& rng, Geometry* geometry) {
  constexpr int kMaxPlacementAttempts = 64;
  std::vector<double> x(static_cast<std::size_t>(n));
  std::vector<double> y(static_cast<std::size_t>(n));
  const double range2 = range * range;
  for (int attempt = 0;; ++attempt) {
    NRN_EXPECTS(attempt < kMaxPlacementAttempts,
                "geometric placement failed to connect; raise the "
                "radius/density or shrink n");
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = rng.uniform01() * side;
      y[i] = rng.uniform01() * side;
    }
    GraphBuilder b(n);
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = i + 1; j < n; ++j) {
        const double dx = x[static_cast<std::size_t>(i)] -
                          x[static_cast<std::size_t>(j)];
        const double dy = y[static_cast<std::size_t>(i)] -
                          y[static_cast<std::size_t>(j)];
        if (dx * dx + dy * dy <= range2) b.add_edge(i, j);
      }
    }
    Graph g = b.build();
    if (!is_connected(g)) continue;
    if (geometry != nullptr) {
      geometry->x = std::move(x);
      geometry->y = std::move(y);
      geometry->power.assign(static_cast<std::size_t>(n), power);
    }
    return g;
  }
}

}  // namespace

Graph make_unit_disk(NodeId n, double radius, double power, Rng& rng,
                     Geometry* geometry) {
  NRN_EXPECTS(n >= 1, "unit disk needs at least one node");
  NRN_EXPECTS(radius > 0.0, "unit disk radius must be positive");
  NRN_EXPECTS(power > 0.0, "unit disk power must be positive");
  return make_geometric(n, 1.0, radius, power, rng, geometry);
}

Graph make_uniform_density(NodeId n, double density, Rng& rng,
                           Geometry* geometry) {
  NRN_EXPECTS(n >= 1, "uniform density needs at least one node");
  NRN_EXPECTS(density > 0.0, "density must be positive");
  const double side = std::sqrt(static_cast<double>(n) / density);
  return make_geometric(n, side, 1.0, 1.0, rng, geometry);
}

}  // namespace nrn::graph

// Basic graph algorithms needed by the broadcast algorithms and by the
// experiment harness: BFS layering (every algorithm in the paper is analyzed
// relative to BFS levels), diameter, and connectivity.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace nrn::graph {

/// Marker distance for unreachable nodes.
inline constexpr std::int32_t kUnreachable = -1;

/// BFS distances from `source`; kUnreachable where disconnected.
std::vector<std::int32_t> bfs_distances(const Graph& g, NodeId source);

/// Nodes grouped by BFS distance from `source`.  layers[d] lists nodes at
/// distance exactly d.  Unreachable nodes are omitted.
std::vector<std::vector<NodeId>> bfs_layers(const Graph& g, NodeId source);

/// True iff every node is reachable from node 0.
bool is_connected(const Graph& g);

/// Largest finite BFS distance from `source` (the source's eccentricity).
std::int32_t eccentricity(const Graph& g, NodeId source);

/// Exact diameter via BFS from every node; O(n * m).  Fine for the sizes
/// used in tests; experiments mostly know their diameters by construction.
std::int32_t diameter_exact(const Graph& g);

/// Lower bound on the diameter by a double BFS sweep; O(m).
std::int32_t diameter_two_sweep(const Graph& g);

}  // namespace nrn::graph

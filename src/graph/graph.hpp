// Undirected graph in compressed-sparse-row form.
//
// Nodes are dense integer ids [0, n).  The radio simulator iterates
// neighborhoods of broadcasting nodes every round, so adjacency is stored as
// a flat CSR array for cache locality.  Graphs are immutable after
// construction; use GraphBuilder to assemble edges.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/contracts.hpp"

namespace nrn::graph {

using NodeId = std::int32_t;

/// Immutable undirected simple graph (no self-loops, no parallel edges).
class Graph {
 public:
  Graph() = default;

  /// Builds from an edge list.  Duplicate edges and self-loops are rejected.
  Graph(NodeId node_count, const std::vector<std::pair<NodeId, NodeId>>& edges);

  NodeId node_count() const { return node_count_; }
  std::int64_t edge_count() const {
    return static_cast<std::int64_t>(targets_.size()) / 2;
  }

  /// Neighbors of `u` as a contiguous, sorted span.
  std::span<const NodeId> neighbors(NodeId u) const {
    NRN_EXPECTS(u >= 0 && u < node_count_, "node id out of range");
    return {targets_.data() + offsets_[static_cast<std::size_t>(u)],
            targets_.data() + offsets_[static_cast<std::size_t>(u) + 1]};
  }

  std::int32_t degree(NodeId u) const {
    return static_cast<std::int32_t>(neighbors(u).size());
  }

  std::int32_t max_degree() const;

  /// True iff {u, v} is an edge (binary search over the sorted row).
  bool has_edge(NodeId u, NodeId v) const;

 private:
  NodeId node_count_ = 0;
  std::vector<std::int64_t> offsets_;  // size node_count_+1
  std::vector<NodeId> targets_;        // size 2*edge_count
};

/// Incremental edge-list assembly with de-duplication at build().
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId node_count) : node_count_(node_count) {
    NRN_EXPECTS(node_count >= 1, "graph needs at least one node");
  }

  /// Adds the undirected edge {u, v}; duplicates are tolerated and merged.
  void add_edge(NodeId u, NodeId v);

  NodeId node_count() const { return node_count_; }
  Graph build() const;

 private:
  NodeId node_count_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace nrn::graph

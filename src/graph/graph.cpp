#include "graph/graph.hpp"

#include <algorithm>

namespace nrn::graph {

Graph::Graph(NodeId node_count,
             const std::vector<std::pair<NodeId, NodeId>>& edges)
    : node_count_(node_count) {
  NRN_EXPECTS(node_count >= 1, "graph needs at least one node");
  offsets_.assign(static_cast<std::size_t>(node_count) + 1, 0);

  for (const auto& [u, v] : edges) {
    NRN_EXPECTS(u >= 0 && u < node_count && v >= 0 && v < node_count,
                "edge endpoint out of range");
    NRN_EXPECTS(u != v, "self-loops are not allowed in the radio model");
    ++offsets_[static_cast<std::size_t>(u) + 1];
    ++offsets_[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];

  targets_.resize(static_cast<std::size_t>(offsets_.back()));
  std::vector<std::int64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    targets_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] = v;
    targets_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] = u;
  }

  for (NodeId u = 0; u < node_count_; ++u) {
    auto row_begin = targets_.begin() + offsets_[static_cast<std::size_t>(u)];
    auto row_end = targets_.begin() + offsets_[static_cast<std::size_t>(u) + 1];
    std::sort(row_begin, row_end);
    NRN_EXPECTS(std::adjacent_find(row_begin, row_end) == row_end,
                "parallel edges are not allowed");
  }
}

std::int32_t Graph::max_degree() const {
  std::int32_t best = 0;
  for (NodeId u = 0; u < node_count_; ++u) best = std::max(best, degree(u));
  return best;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto row = neighbors(u);
  return std::binary_search(row.begin(), row.end(), v);
}

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  NRN_EXPECTS(u >= 0 && u < node_count_ && v >= 0 && v < node_count_,
              "edge endpoint out of range");
  NRN_EXPECTS(u != v, "self-loops are not allowed in the radio model");
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

Graph GraphBuilder::build() const {
  auto unique_edges = edges_;
  std::sort(unique_edges.begin(), unique_edges.end());
  unique_edges.erase(std::unique(unique_edges.begin(), unique_edges.end()),
                     unique_edges.end());
  return Graph(node_count_, unique_edges);
}

}  // namespace nrn::graph

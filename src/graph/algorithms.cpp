#include "graph/algorithms.hpp"

#include <algorithm>

namespace nrn::graph {

std::vector<std::int32_t> bfs_distances(const Graph& g, NodeId source) {
  NRN_EXPECTS(source >= 0 && source < g.node_count(), "source out of range");
  std::vector<std::int32_t> dist(static_cast<std::size_t>(g.node_count()),
                                 kUnreachable);
  std::vector<NodeId> frontier{source};
  dist[static_cast<std::size_t>(source)] = 0;
  std::int32_t level = 0;
  std::vector<NodeId> next;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (NodeId u : frontier) {
      for (NodeId v : g.neighbors(u)) {
        auto& d = dist[static_cast<std::size_t>(v)];
        if (d == kUnreachable) {
          d = level;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

std::vector<std::vector<NodeId>> bfs_layers(const Graph& g, NodeId source) {
  const auto dist = bfs_distances(g, source);
  std::int32_t depth = 0;
  for (auto d : dist) depth = std::max(depth, d);
  std::vector<std::vector<NodeId>> layers(static_cast<std::size_t>(depth) + 1);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto d = dist[static_cast<std::size_t>(u)];
    if (d != kUnreachable) layers[static_cast<std::size_t>(d)].push_back(u);
  }
  return layers;
}

bool is_connected(const Graph& g) {
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::int32_t d) { return d == kUnreachable; });
}

std::int32_t eccentricity(const Graph& g, NodeId source) {
  const auto dist = bfs_distances(g, source);
  std::int32_t ecc = 0;
  for (auto d : dist) ecc = std::max(ecc, d);
  return ecc;
}

std::int32_t diameter_exact(const Graph& g) {
  std::int32_t best = 0;
  for (NodeId u = 0; u < g.node_count(); ++u)
    best = std::max(best, eccentricity(g, u));
  return best;
}

std::int32_t diameter_two_sweep(const Graph& g) {
  const auto first = bfs_distances(g, 0);
  NodeId far = 0;
  for (NodeId u = 0; u < g.node_count(); ++u)
    if (first[static_cast<std::size_t>(u)] >
        first[static_cast<std::size_t>(far)])
      far = u;
  return eccentricity(g, far);
}

}  // namespace nrn::graph

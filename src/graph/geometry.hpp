// Node placement of a geometric topology.
//
// The geometric generators (graph/generators.hpp: make_unit_disk,
// make_uniform_density) emit edges from node positions; the positions
// themselves only matter to the SINR channel (radio/channel_model.hpp),
// which prices a transmitter's gain at a listener from their distance and
// the transmitter's power.  Non-geometric topologies have no Geometry and
// cannot host an SINR channel.
#pragma once

#include <cstdint>
#include <vector>

namespace nrn::graph {

/// Planar coordinates plus per-node transmit power, parallel arrays
/// indexed by node id.  Owned by whoever built the graph; the radio
/// engine borrows a pointer and requires it to outlive the network.
struct Geometry {
  std::vector<double> x;
  std::vector<double> y;
  std::vector<double> power;

  std::int32_t node_count() const {
    return static_cast<std::int32_t>(x.size());
  }

  friend bool operator==(const Geometry&, const Geometry&) = default;
};

}  // namespace nrn::graph

// Packets exchanged in the simulated radio network.
//
// The model (paper Section 3.1) only constrains packet *size*; the simulator
// separates identity from payload so that:
//   * routing schedules tag packets with a message index (payload-free,
//     "counting mode": fast enough for throughput sweeps at large n, k);
//   * coding schedules attach real coded payloads (Reed-Solomon or RLNC
//     symbol vectors) so tests can verify end-to-end decodability rather
//     than assume it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace nrn::radio {

/// Identifier carried by every packet.  For routing schedules this is the
/// message index; coding schedules use it as a coded-packet sequence number.
using PacketId = std::int64_t;

/// Immutable payload blob shared between all deliveries of one broadcast.
using Payload = std::shared_ptr<const std::vector<std::uint8_t>>;

/// A radio packet: identity plus optional payload.
struct Packet {
  PacketId id = 0;
  Payload payload;  ///< null in counting mode

  Packet() = default;
  explicit Packet(PacketId packet_id) : id(packet_id) {}
  Packet(PacketId packet_id, Payload data)
      : id(packet_id), payload(std::move(data)) {}
};

/// Convenience: wraps bytes into a shared payload.
inline Payload make_payload(std::vector<std::uint8_t> bytes) {
  return std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
}

}  // namespace nrn::radio

// Fault models of the noisy radio network (paper Section 3.1).
//
// Exactly one of three regimes applies to a simulation:
//   * Faultless  -- the classic Chlamtac-Kutten model.
//   * Sender     -- each broadcasting node transmits noise with probability
//                   p each round, independently across senders and rounds.
//                   A noisy transmission still occupies the channel (it
//                   collides like any other broadcast) but delivers noise to
//                   every would-be receiver of that sender.
//   * Receiver   -- each listening node with exactly one broadcasting
//                   neighbor receives noise with probability p,
//                   independently across receivers and rounds.
//
// In all regimes noise is indistinguishable from silence or collision at
// the receiving node: the simulator reports only successful packet
// deliveries, never noise-as-packet.
#pragma once

#include <string>

#include "common/contracts.hpp"

namespace nrn::radio {

enum class FaultKind {
  kFaultless,
  kSender,
  kReceiver,
  /// Both fault types at once -- the setting of the paper's open problem
  /// (Section 4.2: an algorithm "robust to sender AND receiver faults"
  /// broadcasting k messages in O(D + k log n + polylog)).  Not part of
  /// the paper's model definitions; provided as an extension.
  kCombined,
};

/// The single validation gate every fault (and channel) probability goes
/// through: rejects anything outside [0, 1) with a message naming the
/// parameter.  One helper instead of a guard per factory, so the contract
/// text cannot drift between them again.
inline double checked_probability(double p, const char* what) {
  NRN_EXPECTS(p >= 0.0 && p < 1.0,
              std::string(what) + " must be in [0, 1)");
  return p;
}

struct FaultModel {
  FaultKind kind = FaultKind::kFaultless;
  double p = 0.0;         ///< sender-side probability (kSender/kCombined)
  double p_receiver = 0.0;  ///< receiver-side probability (kCombined only)

  static FaultModel faultless() { return {FaultKind::kFaultless, 0.0, 0.0}; }

  static FaultModel sender(double p) {
    return {FaultKind::kSender,
            checked_probability(p, "sender fault probability"), 0.0};
  }

  static FaultModel receiver(double p) {
    // Stored in `p`; the engine branches on `kind`.
    return {FaultKind::kReceiver,
            checked_probability(p, "receiver fault probability"), 0.0};
  }

  /// Independent sender coin (probability ps, shared by all receivers of a
  /// sender) plus an independent receiver coin (probability pr).
  static FaultModel combined(double ps, double pr) {
    return {FaultKind::kCombined,
            checked_probability(ps, "sender fault probability"),
            checked_probability(pr, "receiver fault probability")};
  }

  bool is_faultless() const {
    switch (kind) {
      case FaultKind::kFaultless:
        return true;
      case FaultKind::kCombined:
        return p == 0.0 && p_receiver == 0.0;
      default:
        return p == 0.0;
    }
  }

  friend bool operator==(const FaultModel&, const FaultModel&) = default;

  /// Probability that a single uncontested transmission is lost end to
  /// end; the budget formulas of the algorithms use this.
  double effective_loss() const {
    switch (kind) {
      case FaultKind::kFaultless:
        return 0.0;
      case FaultKind::kCombined:
        return 1.0 - (1.0 - p) * (1.0 - p_receiver);
      default:
        return p;
    }
  }
};

/// Sender-side coin probability the engine prices (0 when the regime has no
/// sender coin).  Shared by the scalar engine and the lockstep bank so the
/// two always agree on which coins exist.
inline double sender_fault_probability(const FaultModel& fm) {
  return (fm.kind == FaultKind::kSender || fm.kind == FaultKind::kCombined)
             ? fm.p
             : 0.0;
}

/// Receiver-side coin probability (0 when the regime has no receiver coin).
inline double receiver_fault_probability(const FaultModel& fm) {
  switch (fm.kind) {
    case FaultKind::kReceiver:
      return fm.p;
    case FaultKind::kCombined:
      return fm.p_receiver;
    default:
      return 0.0;
  }
}

inline std::string to_string(const FaultModel& fm) {
  switch (fm.kind) {
    case FaultKind::kFaultless:
      return "faultless";
    case FaultKind::kSender:
      return "sender-faults(p=" + std::to_string(fm.p) + ")";
    case FaultKind::kReceiver:
      return "receiver-faults(p=" + std::to_string(fm.p) + ")";
    case FaultKind::kCombined:
      return "combined-faults(ps=" + std::to_string(fm.p) +
             ", pr=" + std::to_string(fm.p_receiver) + ")";
  }
  return "unknown";
}

}  // namespace nrn::radio

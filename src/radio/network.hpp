// The round-based noisy radio network engine.
//
// Usage per round:
//   net.set_broadcast(u, Packet{...});   // stage any number of broadcasters
//   const auto& deliveries = net.run_round();
//
// run_round applies the model's reception rule exactly:
//   a listening node receives the packet iff exactly one of its neighbors
//   broadcast this round, and neither a sender fault (one coin per
//   broadcaster per round, shared by all its receivers) nor a receiver
//   fault (one coin per receiver) struck.
//
// The engine is deterministic given its seed: fault coins are drawn from
// the engine's own Rng in a fixed order (senders in staging order, then
// touched receivers in node-id order), independent of any algorithm
// randomness, so an algorithm change never perturbs the fault tape.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "radio/fault_model.hpp"
#include "radio/packet.hpp"

namespace nrn::radio {

using graph::NodeId;

/// One successful packet reception.
struct Delivery {
  NodeId receiver = -1;
  NodeId sender = -1;
  Packet packet;
};

/// Per-round aggregate counters (diagnostics and Lemma 18-style stats).
struct RoundStats {
  std::int64_t broadcasters = 0;     ///< nodes that transmitted
  std::int64_t deliveries = 0;       ///< successful receptions
  std::int64_t collision_losses = 0; ///< listeners with >= 2 tx neighbors
  std::int64_t sender_fault_losses = 0;
  std::int64_t receiver_fault_losses = 0;
};

/// Cumulative counters over the life of the network.
struct NetworkTotals {
  std::int64_t rounds = 0;
  std::int64_t broadcasts = 0;
  std::int64_t deliveries = 0;
  std::int64_t collision_losses = 0;
  std::int64_t sender_fault_losses = 0;
  std::int64_t receiver_fault_losses = 0;
};

class RadioNetwork {
 public:
  /// The graph must outlive the network.
  RadioNetwork(const graph::Graph& g, FaultModel fault_model, Rng rng);

  /// Binding a temporary graph would dangle; force callers to keep the
  /// topology alive.
  RadioNetwork(graph::Graph&&, FaultModel, Rng) = delete;

  const graph::Graph& graph() const { return *graph_; }
  const FaultModel& fault_model() const { return fault_model_; }

  /// Stages node `u` to broadcast `packet` this round.  A node may be
  /// staged at most once per round.
  void set_broadcast(NodeId u, Packet packet);

  /// Number of broadcasters staged for the current round so far.
  std::size_t staged_count() const { return plan_.size(); }

  /// Executes one synchronized round with the staged broadcasters, clears
  /// the plan, and returns the deliveries (buffer reused across rounds).
  const std::vector<Delivery>& run_round();

  /// Runs a round where nobody broadcasts (time passes, nothing happens).
  void run_silent_round();

  const RoundStats& last_round() const { return last_round_; }
  const NetworkTotals& totals() const { return totals_; }
  std::int64_t round_number() const { return totals_.rounds; }

 private:
  struct Staged {
    NodeId sender;
    Packet packet;
    bool noisy = false;  // sender-fault coin outcome, drawn in run_round
  };

  const graph::Graph* graph_;
  FaultModel fault_model_;
  Rng rng_;

  std::vector<Staged> plan_;
  std::vector<Delivery> deliveries_;

  // Epoch-stamped per-node scratch; avoids O(n) clearing each round.
  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> touch_epoch_;
  std::vector<std::int32_t> tx_neighbor_count_;
  std::vector<std::int32_t> first_sender_index_;  // index into plan_
  std::vector<std::uint64_t> broadcasting_epoch_;
  std::vector<NodeId> touched_;

  RoundStats last_round_;
  NetworkTotals totals_;
};

}  // namespace nrn::radio

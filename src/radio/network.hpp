// The round-based noisy radio network engine.
//
// Usage per round:
//   net.set_broadcast(u, Packet{...});   // stage any number of broadcasters
//   const auto& deliveries = net.run_round();
//
// run_round applies the model's reception rule exactly:
//   a listening node receives the packet iff exactly one of its neighbors
//   broadcast this round, and neither a sender fault (one coin per
//   broadcaster per round, shared by all its receivers) nor a receiver
//   fault (one coin per receiver) struck.
//
// Three kernels implement the rule; all produce bit-identical rounds:
//   * sparse   -- one pass over the staged broadcasters' adjacency: a
//     listener becomes a delivery candidate at first touch (its slot
//     records the sole sender's plan index) and is flagged collided if a
//     second broadcasting neighbor appears; a final pass over the
//     candidate list applies the fault coins to the survivors.
//     Epoch-stamped 16-byte node slots; no O(n) clearing.
//   * dense    -- one flat listener-centric pass over the CSR rows,
//     counting broadcasting neighbors with an early exit at two (a
//     collision is a collision regardless of multiplicity).
//   * adjacent -- for graphs whose every edge joins consecutive node ids
//     (paths and unions of subpaths): reception becomes word-parallel bit
//     algebra on a broadcaster bitmask, candidates and collisions falling
//     out of shifts, masks, and popcounts 64 listeners at a time.
// Auto selection prefers adjacent when the topology qualifies, otherwise
// dense once broadcasters times the graph's average degree reaches
// kDenseWorkFactor * n (see run_round), otherwise sparse; set_kernel can
// force any of them for tests and benchmarks.
//
// v4 coin-tape contract (deterministic given the engine seed; asserted in
// tests/test_engine_kernels.cpp):
//   1. All coins are u64 values compared against Rng::coin_threshold(p);
//      no doubles on the tape.
//   2. Per round, iff the model has any fault probability > 0 AND at least
//      one broadcaster is staged, exactly ONE u64 salt is drawn from the
//      engine's xoshiro stream.  The round's sender-coin and receiver-coin
//      salts derive from that draw by the domain-separation tweaks
//      kSenderSaltTweak / kReceiverSaltTweak.
//   3. Every fault coin is stateless and counter-based: broadcaster u's
//      sender coin is Rng::mix64(sender_salt, u) and listener v's receiver
//      coin is Rng::mix64(receiver_salt, v), each compared against its
//      coin_threshold.  Coins are keyed by node id -- never by staging
//      order or plan position -- so any kernel (scalar sparse/dense, or a
//      lane of the lockstep bank) prices identical coins in any evaluation
//      order, and batch mixers price them eight at a time.  A round's
//      whole fault tape hangs off one stream draw, which is what makes
//      lockstep lanes cheap (radio/lockstep.hpp).
//   4. Deliveries are emitted in ascending receiver id.
//   5. Silent rounds, empty rounds, and zero-probability models draw no
//      coins at all.
// The tape is independent of kernel choice and of any algorithm
// randomness, so an algorithm change never perturbs the fault tape.
// (v3 drew one sender coin per broadcaster in staging order plus a
// separate receiver salt; v4 collapses a round's fault randomness to a
// single draw.  Record/shard/cache formats bumped to v5 -- docs/formats.md.)
//
// Channel models: the contract above describes the kEdgeFault channel.
// Under a kSinr channel (radio/channel_model.hpp) reception is resolved
// from summed transmitter gains instead of collision + coins; the channel
// is deterministic, so NO salts are ever drawn -- point 5 of the contract
// degenerates to every round, and the engine's rng stream is untouched.
// Interference sums are accumulated in ascending neighbor id within each
// listener's CSR row in every kernel (scalar sparse/dense/adjacent and the
// lockstep bank), so floating-point results are bit-identical across
// kernels.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "graph/geometry.hpp"
#include "graph/graph.hpp"
#include "radio/channel_model.hpp"
#include "radio/fault_model.hpp"
#include "radio/packet.hpp"

namespace nrn::radio {

using graph::NodeId;

/// Domain-separation tweaks: a round's single salt draw is XORed with
/// these to key the sender-coin and receiver-coin families independently
/// (tape v4, point 2 of the contract above).  Arbitrary odd constants;
/// changing them changes the tape and requires a format bump.
inline constexpr std::uint64_t kSenderSaltTweak = 0x53454e444552ULL << 8 | 1;
inline constexpr std::uint64_t kReceiverSaltTweak = 0x524543564552ULL << 8 | 3;

/// The deliveries of one round, structure-of-arrays: receiver ids plus
/// indices into the executed round's staging plan.  Iteration yields
/// lightweight Delivery proxies; the referenced plan arrays stay valid
/// until the next run_round call.
class DeliveryList {
 public:
  /// What a receiver sees of the staged packet (proxy: id by value, payload
  /// by reference into the executed plan -- per-delivery shared_ptr copies
  /// were refcount traffic on the hot path).
  struct PacketView {
    PacketId id;
    const Payload& payload;
  };

  /// A view of one successful reception (proxy, cheap to copy).
  struct Delivery {
    NodeId receiver;
    NodeId sender;
    PacketView packet;
  };

  class const_iterator {
   public:
    const_iterator(const DeliveryList* list, std::size_t pos)
        : list_(list), pos_(pos) {}
    Delivery operator*() const { return (*list_)[pos_]; }
    const_iterator& operator++() {
      ++pos_;
      return *this;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.pos_ == b.pos_;
    }

   private:
    const DeliveryList* list_;
    std::size_t pos_;
  };

  std::size_t size() const { return receivers_.size(); }
  bool empty() const { return receivers_.empty(); }

  /// Receiver ids only (ascending).  Informed-set protocols that ignore
  /// the packet (Decay and the FASTBC family track one message) iterate
  /// this span instead of the proxies, skipping the per-delivery staged
  /// plan lookup.
  std::span<const NodeId> receivers() const { return receivers_; }

  Delivery operator[](std::size_t i) const {
    const auto idx = static_cast<std::size_t>(plan_index_[i]);
    // The executed plan is structure-of-arrays with uniform-round
    // compression: an empty ids/payloads vector means every staged packet
    // shared uniform_id_ / a null payload (the counting-mode common case).
    return Delivery{
        receivers_[i], senders_[idx],
        PacketView{ids_.empty() ? uniform_id_ : ids_[idx],
                   payloads_.empty() ? null_payload() : payloads_[idx]}};
  }
  Delivery front() const {
    NRN_EXPECTS(!empty(), "front() of an empty delivery list");
    return (*this)[0];
  }

  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size()}; }

 private:
  friend class RadioNetwork;

  static const Payload& null_payload() {
    static const Payload kNull{};
    return kNull;
  }

  void clear() {
    receivers_.clear();
    plan_index_.clear();
  }
  void push(NodeId receiver, std::int32_t plan_index) {
    receivers_.push_back(receiver);
    plan_index_.push_back(plan_index);
  }
  /// Restores the ascending-receiver-id emission order after a kernel that
  /// visits listeners out of order; `scratch` is caller-owned to keep the
  /// hot path allocation-free.
  void sort_by_receiver(std::vector<std::uint64_t>& scratch);

  std::vector<NodeId> receivers_;
  std::vector<std::int32_t> plan_index_;
  // The executed round's staging plan, structure-of-arrays.  The list OWNS
  // these (the network swaps its staging buffers in at round end), so it
  // is self-contained and a moved RadioNetwork's deliveries never dangle.
  std::vector<NodeId> senders_;
  std::vector<PacketId> ids_;
  std::vector<Payload> payloads_;
  PacketId uniform_id_ = 0;
};

/// Alias so call sites can keep spelling the element type `Delivery`.
using Delivery = DeliveryList::Delivery;

/// Per-round aggregate counters (diagnostics and Lemma 18-style stats).
struct RoundStats {
  std::int64_t broadcasters = 0;     ///< nodes that transmitted
  std::int64_t deliveries = 0;       ///< successful receptions
  std::int64_t collision_losses = 0; ///< listeners with >= 2 tx neighbors
  std::int64_t sender_fault_losses = 0;
  std::int64_t receiver_fault_losses = 0;
  /// Listeners that heard >= 1 transmitter but decoded none because the
  /// SINR threshold failed (kSinr channel only; 0 under kEdgeFault).
  std::int64_t interference_losses = 0;

  friend bool operator==(const RoundStats&, const RoundStats&) = default;
};

/// Cumulative counters over the life of the network.
struct NetworkTotals {
  std::int64_t rounds = 0;
  std::int64_t broadcasts = 0;
  std::int64_t deliveries = 0;
  std::int64_t collision_losses = 0;
  std::int64_t sender_fault_losses = 0;
  std::int64_t receiver_fault_losses = 0;
  std::int64_t interference_losses = 0;
};

class RadioNetwork {
 public:
  enum class Kernel { kAuto, kSparse, kDense, kAdjacent };

  /// Dense kernel threshold: auto selects dense when broadcasters times
  /// the graph's average degree reaches kDenseWorkFactor * node_count,
  /// i.e. when the sparse kernel would expect to touch every listener
  /// several times anyway.
  static constexpr std::int64_t kDenseWorkFactor = 1;

  /// The graph must outlive the network.  Equivalent to the ChannelModel
  /// constructor with an edge-fault channel.
  RadioNetwork(const graph::Graph& g, FaultModel fault_model, Rng rng);

  /// General form: any channel model.  A kSinr channel requires `geometry`
  /// (node placement matching the graph; caller keeps it alive alongside
  /// the graph); kEdgeFault ignores it.
  RadioNetwork(const graph::Graph& g, const ChannelModel& channel,
               const graph::Geometry* geometry, Rng rng);

  /// Binding a temporary graph would dangle; force callers to keep the
  /// topology alive.
  RadioNetwork(graph::Graph&&, FaultModel, Rng) = delete;
  RadioNetwork(graph::Graph&&, const ChannelModel&, const graph::Geometry*,
               Rng) = delete;

  /// Rearms the network for a fresh trial on the same graph: new fault
  /// model and coin stream, zeroed counters and round clock -- without
  /// reallocating the O(n) scratch.  O(1); the workhorse of the Driver's
  /// per-worker TrialWorkspace reuse.
  void reset(FaultModel fault_model, Rng rng);

  /// Channel-general reset.  Reuses the gain table when the SINR
  /// parameters are unchanged (the Driver resets an identical channel per
  /// trial), so steady-state trials stay O(1) here too.
  void reset(const ChannelModel& channel, Rng rng);

  const graph::Graph& graph() const { return *graph_; }
  const ChannelModel& channel() const { return channel_; }
  /// Edge-fault parameterization; faultless under a kSinr channel, so
  /// protocol budget formulas see zero edge loss.
  const FaultModel& fault_model() const { return fault_model_; }

  /// True iff every edge of `g` joins consecutive node ids (the topology
  /// is a disjoint union of id-contiguous subpaths), i.e. the adjacent
  /// word-parallel kernel is eligible.  The Driver consults this when
  /// choosing between the scalar engine and a lockstep bank: on such
  /// graphs the scalar adjacent kernel beats the bank's shared pass.
  static bool consecutive_adjacency(const graph::Graph& g) {
    for (NodeId v = 0; v < g.node_count(); ++v)
      for (const NodeId u : g.neighbors(v))
        if (u != v - 1 && u != v + 1) return false;
    return true;
  }

  /// Forces a round kernel (kAuto re-enables the heuristics; kAdjacent
  /// requires a consecutive-id topology).  Kernel choice never changes
  /// results; this exists for tests and benchmarks.  Must be called with
  /// no broadcasts staged: the staging representation (bitmask plan vs
  /// node slots) is chosen per kernel route, so it cannot change mid-round.
  void set_kernel(Kernel kernel) {
    NRN_EXPECTS(plan_senders_.empty(),
                "set_kernel with broadcasts already staged");
    NRN_EXPECTS(kernel != Kernel::kAdjacent || adjacent_ok_,
                "adjacent kernel forced on a non-consecutive-id topology");
    kernel_ = kernel;
    use_bitmask_plan_ = adjacent_ok_ && (kernel == Kernel::kAuto ||
                                         kernel == Kernel::kAdjacent);
  }

  /// Stages node `u` to broadcast `packet` this round.  A node may be
  /// staged at most once per round.
  void set_broadcast(NodeId u, Packet packet);

  /// Counting-mode fast path: stages an id-only packet without touching a
  /// payload pointer.  Identical semantics to set_broadcast(u, Packet{id});
  /// inline because schedule loops stage millions of these per sweep.
  void set_broadcast(NodeId u, PacketId id) {
    NRN_EXPECTS(u >= 0 && u < graph_->node_count(),
                "broadcaster out of range");
    const bool first = plan_senders_.empty();
    if (first) prepare_epoch();
    if (use_bitmask_plan_) {
      std::uint64_t& word = bcast_mask_[static_cast<std::size_t>(u) >> 6];
      const std::uint64_t bit = std::uint64_t{1} << (u & 63);
      NRN_EXPECTS((word & bit) == 0,
                  "node staged to broadcast twice in one round");
      word |= bit;
      plan_pos_[static_cast<std::size_t>(u)] =
          static_cast<std::uint32_t>(plan_senders_.size());
    } else {
      const auto stamp = static_cast<std::uint32_t>(epoch_ + 1);
      auto& slot = slots_[static_cast<std::size_t>(u)];
      NRN_EXPECTS(slot.bcast_epoch != stamp,
                  "node staged to broadcast twice in one round");
      slot.bcast_epoch = stamp;
      slot.plan_index = static_cast<std::int32_t>(plan_senders_.size());
    }
    if (first) {
      plan_uniform_id_ = id;
    } else if (!plan_ids_.empty()) {
      plan_ids_.push_back(id);  // already per-entry ids
    } else if (id != plan_uniform_id_) {
      materialize_plan_ids();  // cold: first divergent id this round
      plan_ids_.push_back(id);
    }
    if (!plan_payloads_.empty()) plan_payloads_.emplace_back();
    plan_senders_.push_back(u);
  }

  /// Bulk staging: stages every node of `senders`, in order, all carrying
  /// the id-only packet `id`.  Identical semantics and tape to calling the
  /// counting-mode set_broadcast once per node, but the epoch prepare and
  /// plan resize are hoisted out and the stamp/slot writes run in one
  /// tight loop -- the staging path the schedule protocols feed whole
  /// informed sets through.
  void stage_broadcasts(std::span<const NodeId> senders, PacketId id);

  /// Bulk staging with per-sender packet ids (parallel spans of equal
  /// length) for multi-message schedules.
  void stage_broadcasts(std::span<const NodeId> senders,
                        std::span<const PacketId> ids);

  /// Fuses a Bernoulli(2^-i) selection into the staging pass: stages the
  /// coin-selected subset of `candidates`, drawing from `rng` exactly the
  /// Rng::for_each_bernoulli_pow2 tape over the candidate list (i == 0
  /// stages all of them and draws nothing).  Returns the number staged.
  std::size_t stage_broadcasts_bernoulli_pow2(
      std::span<const NodeId> candidates, std::int32_t i, PacketId id,
      Rng& rng);

  /// Number of broadcasters staged for the current round so far.
  std::size_t staged_count() const { return plan_senders_.size(); }

  /// Executes one synchronized round with the staged broadcasters, clears
  /// the plan, and returns the deliveries (buffer reused across rounds).
  const DeliveryList& run_round();

  /// Runs a round where nobody broadcasts (time passes, nothing happens).
  /// No coins are drawn; only the round clock advances.
  void run_silent_round();

  /// Runs `k` consecutive silent rounds in O(1).
  void run_silent_rounds(std::int64_t k);

  const RoundStats& last_round() const { return last_round_; }
  const NetworkTotals& totals() const { return totals_; }
  std::int64_t round_number() const { return totals_.rounds; }

 private:
  void run_round_sparse();
  void run_round_dense();
  void run_round_adjacent();
  // SINR interference routes, one per staging representation / scan shape
  // (see run_round for selection).  All accumulate each listener's
  // interference sum in ascending neighbor id.
  void run_round_sinr_sparse();
  void run_round_sinr_dense();
  void run_round_sinr_adjacent();

  /// Decodes one listener under the SINR rule: walks its CSR row in
  /// ascending neighbor id, sums the broadcasting neighbors' gains, and
  /// pushes a delivery (or counts an interference loss).  `is_tx` reports
  /// whether a neighbor is staged this round; `plan_of` maps a
  /// broadcasting neighbor to its plan index.
  template <typename IsTx, typename PlanOf>
  void sinr_decode(NodeId v, IsTx&& is_tx, PlanOf&& plan_of);

  /// Builds (or rebuilds) the per-listener gain table for the current
  /// SINR parameters: gain_[gain_row_[v] + j] is the gain of the j-th
  /// neighbor of v (CSR row order) at v.
  void build_gain_table();

  /// Shared final pass of the sparse and dense kernels: drops tombstoned
  /// delivery candidates, applies the senders' shared fault coins (priced
  /// once per plan slot, batched), then prices the survivors' receiver
  /// coins -- the only place fault coins are evaluated.
  void finalize_candidates(std::span<const NodeId> cands);

  /// Receiver-coin tail shared by every kernel: prices the id-keyed coins
  /// of deliveries_[base..] in one vectorized sweep and compacts the
  /// survivors in place.
  void apply_receiver_coins(std::size_t base);

  /// Ensures the next round's u32 epoch stamp is non-zero, flushing the
  /// slot arrays once every 2^32 rounds so stale stamps can never match.
  void prepare_epoch();

  /// Shared tail of the bulk staging paths: appends `senders` to the plan
  /// and records each broadcaster in the active staging representation
  /// (bitmask plan or epoch-stamped slots), enforcing the range and
  /// staged-once contracts.
  void stamp_staged(std::span<const NodeId> senders);

  /// Cold path of the uniform-id plan compression: expands plan_ids_ to one
  /// entry per staged broadcaster (all plan_uniform_id_ so far) when a
  /// round first stages a divergent packet id.
  void materialize_plan_ids();

  /// Cold path of the payload compression: expands plan_payloads_ to one
  /// (null) entry per staged broadcaster when a round first stages a
  /// payload-carrying packet.
  void materialize_plan_payloads();

  const graph::Graph* graph_;
  FaultModel fault_model_;
  ChannelModel channel_;
  Rng rng_;

  // SINR channel state.  sinr_ mirrors channel_.kind so the hot path
  // tests one bool; the gain table is built lazily on the first SINR
  // reset and reused while the parameters and geometry stay unchanged.
  bool sinr_ = false;
  const graph::Geometry* geometry_ = nullptr;
  bool gain_table_valid_ = false;
  std::vector<std::int64_t> gain_row_;  // CSR row offsets (n + 1)
  std::vector<double> gain_;            // per directed edge, listener rows
  // Adjacent-route gain shortcuts: gain at listener v from v-1 / v+1.
  std::vector<double> gain_left_;
  std::vector<double> gain_right_;

  // Fixed-point coin thresholds (v4 tape: u64 compares, no doubles) and
  // this round's tweaked mix64 salts.
  std::uint64_t sender_threshold_ = 0;
  std::uint64_t receiver_threshold_ = 0;
  std::uint64_t sender_salt_ = 0;
  std::uint64_t receiver_salt_ = 0;
  bool sender_coins_ = false;
  bool receiver_coins_ = false;

  Kernel kernel_ = Kernel::kAuto;
  // Auto selection compares staged broadcasters against this count, the
  // precomputed kDenseWorkFactor * n / avg_degree (see run_round).
  std::size_t dense_plan_threshold_ = ~std::size_t{0};

  // Structured-adjacency kernel (run_round_adjacent): eligible when every
  // edge of the graph joins consecutive node ids, i.e. the topology is a
  // disjoint union of subpaths laid out along the integer line (paths are
  // the motivating case).  Reception then reduces to word-parallel bit
  // algebra on a broadcaster bitmask -- no per-touch slot traffic at all.
  // left/right_edge_mask_ record, per node bit, whether the edge to v-1 /
  // v+1 exists; bcast_mask_ is the per-round broadcaster set (cleared
  // per-sender after use so sparse rounds never pay O(n)).
  bool adjacent_ok_ = false;
  // True when the adjacent kernel is the resolved round route (eligible
  // topology and kAuto or kAdjacent): staging then records broadcasters
  // in bcast_mask_ + plan_pos_ (one bit set and one u32 store per stage)
  // instead of the 16-byte node slots the sparse/dense kernels read.
  bool use_bitmask_plan_ = false;
  std::vector<std::uint32_t> plan_pos_;
  std::vector<std::uint64_t> bcast_mask_;
  std::vector<std::uint64_t> left_edge_mask_;
  std::vector<std::uint64_t> right_edge_mask_;
  // Per-word candidate and hears-left masks staged between the counting
  // and emission passes of the adjacent kernel.
  std::vector<std::uint64_t> cand_mask_scratch_;
  std::vector<std::uint64_t> hear_left_scratch_;

  // The staging plan, structure-of-arrays with uniform-round compression:
  // senders always hold one entry per staged broadcast (plan order); the
  // ids and payloads vectors stay EMPTY while every staged packet shares
  // plan_uniform_id_ and a null payload (the counting-mode common case --
  // bulk staging then writes 4 bytes per broadcast, and the kernels stream
  // the sender array instead of striding over packet structs).  The first
  // divergent id or payload-carrying packet materializes the per-entry
  // vector (see materialize_plan_ids / materialize_plan_payloads).
  std::vector<NodeId> plan_senders_;
  std::vector<PacketId> plan_ids_;
  std::vector<Payload> plan_payloads_;
  PacketId plan_uniform_id_ = 0;
  // The last executed round's plan lives inside deliveries_ (the list owns
  // the arrays its proxies reference); the buffers swap back and forth
  // with the plan_* vectors so none reallocates in steady state.
  // Sender-fault coin outcomes for the current round, one byte per staged
  // broadcaster: mix64(sender_salt_, sender) priced for the whole plan in
  // one batched pass, then read per delivery candidate (a sender's coin is
  // shared by all its receivers).
  std::vector<std::uint8_t> plan_noisy_;
  DeliveryList deliveries_;
  std::vector<std::uint64_t> sort_scratch_;
  // Receiver-coin pricing scratch: the survivors' mixed coin values, sized
  // to the round's survivor count so mix64_batch runs one vectorized sweep
  // over the whole array (apply_receiver_coins).
  std::vector<std::uint64_t> coin_mix_scratch_;

  // Epoch-stamped per-node scratch; avoids O(n) clearing each round.  The
  // per-node fields are packed into 8-byte slots (u32 epoch stamps; see
  // prepare_epoch for the once-per-2^32-rounds flush) so a kernel's inner
  // loop touches one cache line per sixteen nodes.
  //
  // NodeSlot.state encodes a listener's status for the current round: the
  // sole broadcasting neighbor's plan index >= 0 (a live delivery
  // candidate), or one of the codes below.  The broadcast half is written
  // at staging time; keeping both halves in one 16-byte slot means the
  // sparse kernel's first-touch classification reads a single cache line.
  static constexpr std::int32_t kNotListening = -1;
  static constexpr std::int32_t kCollided = -2;
  struct NodeSlot {
    std::uint32_t touch_epoch = 0;
    std::int32_t state = 0;
    std::uint32_t bcast_epoch = 0;  // staged for the round when == epoch+1
    std::int32_t plan_index = -1;   // index into the staging plan
  };
  std::uint64_t epoch_ = 0;
  // Epoch of the last slot flush: stamps are unique within one u32 cycle
  // of this point (see prepare_epoch).
  std::uint64_t slots_valid_since_ = 0;
  std::vector<NodeSlot> slots_;
  std::vector<NodeId> candidates_;  // sparse kernel's first-touch listeners

  RoundStats last_round_;
  NetworkTotals totals_;
};

}  // namespace nrn::radio

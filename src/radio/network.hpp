// The round-based noisy radio network engine.
//
// Usage per round:
//   net.set_broadcast(u, Packet{...});   // stage any number of broadcasters
//   const auto& deliveries = net.run_round();
//
// run_round applies the model's reception rule exactly:
//   a listening node receives the packet iff exactly one of its neighbors
//   broadcast this round, and neither a sender fault (one coin per
//   broadcaster per round, shared by all its receivers) nor a receiver
//   fault (one coin per receiver) struck.
//
// Two kernels implement the rule; both produce bit-identical rounds:
//   * sparse -- one pass over the staged broadcasters' adjacency: a
//     listener becomes a delivery candidate at first touch (its slot
//     records the sole sender's plan index) and is flagged collided if a
//     second broadcasting neighbor appears; a final pass over the
//     candidate list applies the fault coins to the survivors.
//     Epoch-stamped 16-byte node slots; no O(n) clearing.
//   * dense  -- one flat listener-centric pass over the CSR rows, counting
//     broadcasting neighbors with an early exit at two (a collision is a
//     collision regardless of multiplicity).
// The dense kernel is selected when broadcasters times the graph's
// average degree reaches kDenseWorkFactor * n (see run_round); set_kernel
// can force either for tests and benchmarks.
//
// v3 coin-tape contract (deterministic given the engine seed; asserted in
// tests/test_engine_kernels.cpp):
//   1. All coins are u64 values compared against Rng::coin_threshold(p);
//      no doubles on the tape.
//   2. Per round, sender-fault coins are drawn from the engine's xoshiro
//      stream first: one per staged broadcaster, in staging order, iff the
//      model's sender-side probability is > 0.
//   3. One receiver-coin salt is then drawn from the stream -- iff the
//      receiver-side probability is > 0 and at least one broadcaster is
//      staged.  The receiver-fault coin of listener v is the stateless
//      Rng::mix64(salt, v), evaluated only for listeners with exactly one
//      broadcasting neighbor whose sender coin was clean.  Being
//      counter-based, the coin is independent of evaluation order, so
//      kernels never have to agree on a per-listener draw sequence.
//   4. Deliveries are emitted in ascending receiver id.
//   5. Silent rounds, empty rounds, and zero-probability models draw no
//      coins at all.
// The tape is independent of kernel choice and of any algorithm
// randomness, so an algorithm change never perturbs the fault tape.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "radio/fault_model.hpp"
#include "radio/packet.hpp"

namespace nrn::radio {

using graph::NodeId;

/// One broadcast staged for the current round.  Packets live here for the
/// duration of the round; deliveries reference them by index instead of
/// copying (Payload is a shared_ptr -- per-delivery copies were refcount
/// traffic on the hot path).  Sender-fault coin outcomes live in a
/// separate per-round byte array inside the engine.
struct StagedBroadcast {
  NodeId sender;
  Packet packet;
};

/// The deliveries of one round, structure-of-arrays: receiver ids plus
/// indices into the executed round's staging plan.  Iteration yields
/// lightweight Delivery proxies; the referenced packets stay valid until
/// the next run_round call.
class DeliveryList {
 public:
  /// A view of one successful reception (proxy, cheap to copy; the packet
  /// reference points into the executed staging plan).
  struct Delivery {
    NodeId receiver;
    NodeId sender;
    const Packet& packet;
  };

  class const_iterator {
   public:
    const_iterator(const DeliveryList* list, std::size_t pos)
        : list_(list), pos_(pos) {}
    Delivery operator*() const { return (*list_)[pos_]; }
    const_iterator& operator++() {
      ++pos_;
      return *this;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.pos_ == b.pos_;
    }

   private:
    const DeliveryList* list_;
    std::size_t pos_;
  };

  std::size_t size() const { return receivers_.size(); }
  bool empty() const { return receivers_.empty(); }

  /// Receiver ids only (ascending).  Informed-set protocols that ignore
  /// the packet (Decay and the FASTBC family track one message) iterate
  /// this span instead of the proxies, skipping the per-delivery staged
  /// plan lookup.
  std::span<const NodeId> receivers() const { return receivers_; }

  Delivery operator[](std::size_t i) const {
    const auto& staged = (*plan_)[static_cast<std::size_t>(plan_index_[i])];
    return Delivery{receivers_[i], staged.sender, staged.packet};
  }
  Delivery front() const {
    NRN_EXPECTS(!empty(), "front() of an empty delivery list");
    return (*this)[0];
  }

  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size()}; }

 private:
  friend class RadioNetwork;

  void clear() {
    receivers_.clear();
    plan_index_.clear();
  }
  void push(NodeId receiver, std::int32_t plan_index) {
    receivers_.push_back(receiver);
    plan_index_.push_back(plan_index);
  }
  /// Restores the ascending-receiver-id emission order after a kernel that
  /// visits listeners out of order; `scratch` is caller-owned to keep the
  /// hot path allocation-free.
  void sort_by_receiver(std::vector<std::uint64_t>& scratch);

  std::vector<NodeId> receivers_;
  std::vector<std::int32_t> plan_index_;
  const std::vector<StagedBroadcast>* plan_ = nullptr;
};

/// Alias so call sites can keep spelling the element type `Delivery`.
using Delivery = DeliveryList::Delivery;

/// Per-round aggregate counters (diagnostics and Lemma 18-style stats).
struct RoundStats {
  std::int64_t broadcasters = 0;     ///< nodes that transmitted
  std::int64_t deliveries = 0;       ///< successful receptions
  std::int64_t collision_losses = 0; ///< listeners with >= 2 tx neighbors
  std::int64_t sender_fault_losses = 0;
  std::int64_t receiver_fault_losses = 0;
};

/// Cumulative counters over the life of the network.
struct NetworkTotals {
  std::int64_t rounds = 0;
  std::int64_t broadcasts = 0;
  std::int64_t deliveries = 0;
  std::int64_t collision_losses = 0;
  std::int64_t sender_fault_losses = 0;
  std::int64_t receiver_fault_losses = 0;
};

class RadioNetwork {
 public:
  enum class Kernel { kAuto, kSparse, kDense };

  /// Dense kernel threshold: auto selects dense when broadcasters times
  /// the graph's average degree reaches kDenseWorkFactor * node_count,
  /// i.e. when the sparse kernel would expect to touch every listener
  /// several times anyway.
  static constexpr std::int64_t kDenseWorkFactor = 1;

  /// The graph must outlive the network.
  RadioNetwork(const graph::Graph& g, FaultModel fault_model, Rng rng);

  /// Binding a temporary graph would dangle; force callers to keep the
  /// topology alive.
  RadioNetwork(graph::Graph&&, FaultModel, Rng) = delete;

  /// Rearms the network for a fresh trial on the same graph: new fault
  /// model and coin stream, zeroed counters and round clock -- without
  /// reallocating the O(n) scratch.  O(1); the workhorse of the Driver's
  /// per-worker TrialWorkspace reuse.
  void reset(FaultModel fault_model, Rng rng);

  const graph::Graph& graph() const { return *graph_; }
  const FaultModel& fault_model() const { return fault_model_; }

  /// Forces a round kernel (kAuto re-enables the threshold heuristic).
  /// Kernel choice never changes results; this exists for tests and
  /// benchmarks.
  void set_kernel(Kernel kernel) { kernel_ = kernel; }

  /// Stages node `u` to broadcast `packet` this round.  A node may be
  /// staged at most once per round.
  void set_broadcast(NodeId u, Packet packet);

  /// Counting-mode fast path: stages an id-only packet without touching a
  /// payload pointer.  Identical semantics to set_broadcast(u, Packet{id});
  /// inline because schedule loops stage millions of these per sweep.
  void set_broadcast(NodeId u, PacketId id) {
    NRN_EXPECTS(u >= 0 && u < graph_->node_count(),
                "broadcaster out of range");
    if (plan_.empty()) prepare_epoch();
    const auto stamp = static_cast<std::uint32_t>(epoch_ + 1);
    auto& slot = slots_[static_cast<std::size_t>(u)];
    NRN_EXPECTS(slot.bcast_epoch != stamp,
                "node staged to broadcast twice in one round");
    slot.bcast_epoch = stamp;
    slot.plan_index = static_cast<std::int32_t>(plan_.size());
    auto& staged = plan_.emplace_back();
    staged.sender = u;
    staged.packet.id = id;
  }

  /// Number of broadcasters staged for the current round so far.
  std::size_t staged_count() const { return plan_.size(); }

  /// Executes one synchronized round with the staged broadcasters, clears
  /// the plan, and returns the deliveries (buffer reused across rounds).
  const DeliveryList& run_round();

  /// Runs a round where nobody broadcasts (time passes, nothing happens).
  /// No coins are drawn; only the round clock advances.
  void run_silent_round();

  /// Runs `k` consecutive silent rounds in O(1).
  void run_silent_rounds(std::int64_t k);

  const RoundStats& last_round() const { return last_round_; }
  const NetworkTotals& totals() const { return totals_; }
  std::int64_t round_number() const { return totals_.rounds; }

 private:
  void run_round_sparse();
  void run_round_dense();

  /// Applies the fault coins to a confirmed unique listener: the sender's
  /// shared fault coin, then the listener's stateless receiver coin; on
  /// survival the delivery is kept/recorded.  Shared by the dense kernel
  /// (which knows finality immediately) and the sparse kernel's
  /// candidate-compaction pass.
  bool faults_spare_delivery(NodeId v, std::int32_t plan_index);

  /// Drops tombstoned delivery candidates and applies the fault coins to
  /// the survivors, in place (the sparse kernel's final pass).
  void finalize_candidates();

  /// Ensures the next round's u32 epoch stamp is non-zero, flushing the
  /// slot arrays once every 2^32 rounds so stale stamps can never match.
  void prepare_epoch();

  const graph::Graph* graph_;
  FaultModel fault_model_;
  Rng rng_;

  // Fixed-point coin thresholds (v3 tape: u64 compares, no doubles).
  std::uint64_t sender_threshold_ = 0;
  std::uint64_t receiver_threshold_ = 0;
  std::uint64_t receiver_salt_ = 0;  // this round's mix64 salt
  bool sender_coins_ = false;
  bool receiver_coins_ = false;

  Kernel kernel_ = Kernel::kAuto;
  // Auto selection compares staged broadcasters against this count, the
  // precomputed kDenseWorkFactor * n / avg_degree (see run_round).
  std::size_t dense_plan_threshold_ = ~std::size_t{0};

  std::vector<StagedBroadcast> plan_;
  std::vector<StagedBroadcast> executed_plan_;  // last round's plan
  // Sender-fault coin outcomes for the current round, one byte per staged
  // broadcaster (kept out of StagedBroadcast so the resolve path streams
  // bytes and the executed plan swap stays payload-only).
  std::vector<std::uint8_t> plan_noisy_;
  DeliveryList deliveries_;
  std::vector<std::uint64_t> sort_scratch_;

  // Epoch-stamped per-node scratch; avoids O(n) clearing each round.  The
  // per-node fields are packed into 8-byte slots (u32 epoch stamps; see
  // prepare_epoch for the once-per-2^32-rounds flush) so a kernel's inner
  // loop touches one cache line per sixteen nodes.
  //
  // NodeSlot.state encodes a listener's status for the current round: the
  // sole broadcasting neighbor's plan index >= 0 (a live delivery
  // candidate), or one of the codes below.  The broadcast half is written
  // at staging time; keeping both halves in one 16-byte slot means the
  // sparse kernel's first-touch classification reads a single cache line.
  static constexpr std::int32_t kNotListening = -1;
  static constexpr std::int32_t kCollided = -2;
  struct NodeSlot {
    std::uint32_t touch_epoch = 0;
    std::int32_t state = 0;
    std::uint32_t bcast_epoch = 0;  // staged for the round when == epoch+1
    std::int32_t plan_index = -1;   // index into plan_
  };
  std::uint64_t epoch_ = 0;
  // Epoch of the last slot flush: stamps are unique within one u32 cycle
  // of this point (see prepare_epoch).
  std::uint64_t slots_valid_since_ = 0;
  std::vector<NodeSlot> slots_;
  std::vector<NodeId> candidates_;  // sparse kernel's first-touch listeners

  RoundStats last_round_;
  NetworkTotals totals_;
};

}  // namespace nrn::radio

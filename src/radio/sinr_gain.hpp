// Shared gain-table construction for the SINR channel.
//
// Both engines (the scalar RadioNetwork and the LockstepNetwork bank)
// precompute, per listener v, the gain of each graph neighbor u at v in
// CSR row order:
//     gain(u, v) = power_u / dist(u, v)^alpha
// Gains exist only on graph edges -- out-of-range transmitters contribute
// nothing, in the style of ROOT-Sim's gain adjacency (SNIPPETS.md
// section 1).  Keeping one builder guarantees the two engines read the
// exact same doubles, which the bit-identity contract between them
// depends on.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/contracts.hpp"
#include "graph/geometry.hpp"
#include "graph/graph.hpp"

namespace nrn::radio {

/// Coincident points would divide by zero; clamp the distance instead.
/// Placement is continuous random, so real collisions are measure-zero.
inline constexpr double kMinSinrDistance = 1e-9;

/// Fills `row`/`gain` with the listener-centric gain table:
/// gain[row[v] + j] is the gain of the j-th neighbor of v (CSR row order,
/// ascending node id) at v; row has node_count() + 1 entries.
inline void build_sinr_gain_table(const graph::Graph& g,
                                  const graph::Geometry& geometry,
                                  double alpha,
                                  std::vector<std::int64_t>& row,
                                  std::vector<double>& gain) {
  NRN_EXPECTS(geometry.node_count() == g.node_count(),
              "sinr channel requires node geometry matching the graph");
  const graph::NodeId n = g.node_count();
  row.assign(static_cast<std::size_t>(n) + 1, 0);
  gain.clear();
  gain.reserve(static_cast<std::size_t>(2 * g.edge_count()));
  for (graph::NodeId v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    row[vi] = static_cast<std::int64_t>(gain.size());
    for (const graph::NodeId u : g.neighbors(v)) {
      const auto ui = static_cast<std::size_t>(u);
      const double dx = geometry.x[ui] - geometry.x[vi];
      const double dy = geometry.y[ui] - geometry.y[vi];
      const double d =
          std::max(std::sqrt(dx * dx + dy * dy), kMinSinrDistance);
      gain.push_back(geometry.power[ui] / std::pow(d, alpha));
    }
  }
  row[static_cast<std::size_t>(n)] = static_cast<std::int64_t>(gain.size());
}

}  // namespace nrn::radio

// Staging ports: the round-staging surface a protocol stepper writes
// broadcasts through, abstracted so one stepper implementation can drive
// either a scalar RadioNetwork or a single lane of the lockstep multi-trial
// bank (radio/lockstep.hpp).  The port contract mirrors the engine's bulk
// staging API: whole informed sets go through stage_many /
// stage_bernoulli_pow2, never one set_broadcast call per node.
//
// Ports are counting-mode only (id-carrying packets, no payloads): the
// protocols that step -- Decay and the FASTBC family -- track a single
// message and read deliveries as receiver-id spans.
#pragma once

#include <cstdint>
#include <span>

#include "common/rng.hpp"
#include "radio/network.hpp"

namespace nrn::radio {

/// Where one round's broadcasts are staged.  Implementations must preserve
/// the staging tape exactly: stage_bernoulli_pow2 consumes the same Rng
/// draws as Rng::for_each_bernoulli_pow2 over the candidate list, and
/// staging order is the call order.
class StagingPort {
 public:
  virtual ~StagingPort() = default;

  /// Stages one broadcaster.
  virtual void stage(NodeId u, PacketId id) = 0;

  /// Stages every node of `senders`, in order, all carrying `id`.
  virtual void stage_many(std::span<const NodeId> senders, PacketId id) = 0;

  /// Stages the Bernoulli(2^-i) subset of `candidates` (coins from `rng`,
  /// exactly the Rng::for_each_bernoulli_pow2 tape); returns the number
  /// staged.
  virtual std::size_t stage_bernoulli_pow2(std::span<const NodeId> candidates,
                                           std::int32_t i, PacketId id,
                                           Rng& rng) = 0;
};

/// StagingPort over a scalar RadioNetwork.
class NetworkStagingPort final : public StagingPort {
 public:
  explicit NetworkStagingPort(RadioNetwork& net) : net_(&net) {}

  void stage(NodeId u, PacketId id) override { net_->set_broadcast(u, id); }

  void stage_many(std::span<const NodeId> senders, PacketId id) override {
    net_->stage_broadcasts(senders, id);
  }

  std::size_t stage_bernoulli_pow2(std::span<const NodeId> candidates,
                                   std::int32_t i, PacketId id,
                                   Rng& rng) override {
    return net_->stage_broadcasts_bernoulli_pow2(candidates, i, id, rng);
  }

 private:
  RadioNetwork* net_;
};

}  // namespace nrn::radio

#include "radio/lockstep.hpp"

#include <algorithm>
#include <bit>

#include "radio/sinr_gain.hpp"

namespace nrn::radio {

LockstepNetwork::LockstepNetwork(const graph::Graph& g, FaultModel fault_model)
    : LockstepNetwork(g, ChannelModel::edge_fault(fault_model), nullptr) {}

LockstepNetwork::LockstepNetwork(const graph::Graph& g,
                                 const ChannelModel& channel,
                                 const graph::Geometry* geometry)
    : graph_(&g),
      fault_model_(channel.fault),
      channel_(channel),
      geometry_(geometry) {
  const auto n = static_cast<std::size_t>(g.node_count());
  bcast_mask_.assign(n, 0);
  once_.assign(n, 0);
  twice_.assign(n, 0);
  sole_sender_.assign(n * static_cast<std::size_t>(kMaxLanes), 0);
  union_.reserve(n);
  reset(channel);
}

void LockstepNetwork::reset(FaultModel fault_model) {
  reset(ChannelModel::edge_fault(fault_model));
}

void LockstepNetwork::reset(const ChannelModel& channel) {
  if (!(channel.sinr == channel_.sinr)) gain_table_valid_ = false;
  channel_ = channel;
  sinr_ = channel.kind == ChannelKind::kSinr;
  // Mirrors RadioNetwork::reset: under SINR the edge-fault layer is inert
  // and no coins are priced, so the lanes' rng streams are never drawn.
  fault_model_ = sinr_ ? FaultModel::faultless() : channel.fault;
  if (sinr_ && !gain_table_valid_) {
    NRN_EXPECTS(geometry_ != nullptr, "sinr channel requires node geometry");
    build_sinr_gain_table(*graph_, *geometry_, channel_.sinr.alpha, gain_row_,
                          gain_);
    gain_table_valid_ = true;
  }
  const double ps = sender_fault_probability(fault_model_);
  const double pr = receiver_fault_probability(fault_model_);
  sender_coins_ = ps > 0.0;
  receiver_coins_ = pr > 0.0;
  sender_threshold_ = Rng::coin_threshold(ps);
  receiver_threshold_ = Rng::coin_threshold(pr);
  lanes_ = 0;
  // Per-round scratch self-clears at the end of run_round; after an
  // abandoned round (reset mid-bank) it must be scrubbed here.
  std::fill(bcast_mask_.begin(), bcast_mask_.end(), LaneMask{0});
  std::fill(once_.begin(), once_.end(), LaneMask{0});
  std::fill(twice_.begin(), twice_.end(), LaneMask{0});
  union_.clear();
  for (int l = 0; l < kMaxLanes; ++l) {
    const auto li = static_cast<std::size_t>(l);
    plan_[li].clear();
    cand_recv_[li].clear();
    cand_send_[li].clear();
    receivers_[li].clear();
    stats_[li] = RoundStats{};
  }
}

int LockstepNetwork::add_lane(Rng rng) {
  NRN_EXPECTS(lanes_ < kMaxLanes, "lockstep bank is full");
  rng_[static_cast<std::size_t>(lanes_)] = rng;
  return lanes_++;
}

void LockstepNetwork::stage(int lane, NodeId u) {
  NRN_EXPECTS(lane >= 0 && lane < lanes_, "lane out of range");
  NRN_EXPECTS(u >= 0 && u < graph_->node_count(), "broadcaster out of range");
  const auto bit = static_cast<LaneMask>(1u << lane);
  auto& mask = bcast_mask_[static_cast<std::size_t>(u)];
  NRN_EXPECTS((mask & bit) == 0, "node staged to broadcast twice in one round");
  if (mask == 0) union_.push_back(u);
  mask = static_cast<LaneMask>(mask | bit);
  plan_[static_cast<std::size_t>(lane)].push_back(u);
}

void LockstepNetwork::stage_many(int lane, std::span<const NodeId> senders) {
  NRN_EXPECTS(lane >= 0 && lane < lanes_, "lane out of range");
  const auto bit = static_cast<LaneMask>(1u << lane);
  const NodeId n = graph_->node_count();
  auto& plan = plan_[static_cast<std::size_t>(lane)];
  plan.reserve(plan.size() + senders.size());
  for (const NodeId u : senders) {
    NRN_EXPECTS(u >= 0 && u < n, "broadcaster out of range");
    auto& mask = bcast_mask_[static_cast<std::size_t>(u)];
    NRN_EXPECTS((mask & bit) == 0,
                "node staged to broadcast twice in one round");
    if (mask == 0) union_.push_back(u);
    mask = static_cast<LaneMask>(mask | bit);
    plan.push_back(u);
  }
}

std::size_t LockstepNetwork::stage_bernoulli_pow2(
    int lane, std::span<const NodeId> candidates, std::int32_t i, Rng& rng) {
  NRN_EXPECTS(lane >= 0 && lane < lanes_, "lane out of range");
  if (i == 0) {  // p = 1: stage everyone, draw nothing -- same tape as the
    stage_many(lane, candidates);  // scalar engine's i == 0 delegation.
    return candidates.size();
  }
  const auto bit = static_cast<LaneMask>(1u << lane);
  const NodeId n = graph_->node_count();
  auto& plan = plan_[static_cast<std::size_t>(lane)];
  std::size_t staged = 0;
  rng.for_each_bernoulli_pow2(candidates.size(), i, [&](std::size_t idx) {
    const NodeId u = candidates[idx];
    NRN_EXPECTS(u >= 0 && u < n, "broadcaster out of range");
    auto& mask = bcast_mask_[static_cast<std::size_t>(u)];
    NRN_EXPECTS((mask & bit) == 0,
                "node staged to broadcast twice in one round");
    if (mask == 0) union_.push_back(u);
    mask = static_cast<LaneMask>(mask | bit);
    plan.push_back(u);
    ++staged;
  });
  return staged;
}

void LockstepNetwork::run_round(unsigned lanes) {
  NRN_EXPECTS((lanes >> lanes_) == 0, "round mask addresses unknown lanes");
  const bool coins = sender_coins_ || receiver_coins_;
  for (int l = 0; l < lanes_; ++l) {
    const auto li = static_cast<std::size_t>(l);
    if ((lanes & (1u << l)) == 0) {
      NRN_EXPECTS(plan_[li].empty(), "staged lane missing from round mask");
      continue;
    }
    stats_[li] = RoundStats{};
    stats_[li].broadcasters = static_cast<std::int64_t>(plan_[li].size());
    receivers_[li].clear();
    cand_recv_[li].clear();
    cand_send_[li].clear();
    // Tape v4, per lane: one salt draw iff the lane broadcast and any coin
    // is in play -- exactly the scalar engine's stream consumption.
    if (coins && !plan_[li].empty()) {
      const std::uint64_t salt = rng_[li]();
      sender_salt_[li] = salt ^ kSenderSaltTweak;
      receiver_salt_[li] = salt ^ kReceiverSaltTweak;
    }
  }

  if (sinr_) {
    // SINR route: the shared gain pass replaces the once/twice collision
    // accounting; lanes are resolved inside, so skip straight to the
    // per-lane bookkeeping tail.
    run_round_sinr();
    for (int l = 0; l < lanes_; ++l) {
      const auto li = static_cast<std::size_t>(l);
      if ((lanes & (1u << l)) == 0) continue;
      stats_[li].deliveries =
          static_cast<std::int64_t>(receivers_[li].size());
      plan_[li].clear();
    }
    for (const NodeId b : union_) bcast_mask_[static_cast<std::size_t>(b)] = 0;
    union_.clear();
    return;
  }

  // One shared adjacency pass over the union of every lane's broadcasters:
  // per listener, accumulate which lanes touched it once and which twice,
  // and -- only if a sender fault coin will need to be keyed by it --
  // remember the sender behind each lane's first touch.
  if (sender_coins_) {
    for (const NodeId b : union_) {
      const LaneMask bm = bcast_mask_[static_cast<std::size_t>(b)];
      for (const NodeId v : graph_->neighbors(b)) {
        const auto vi = static_cast<std::size_t>(v);
        const LaneMask prev = once_[vi];
        LaneMask newly = static_cast<LaneMask>(bm & ~prev);
        twice_[vi] = static_cast<LaneMask>(twice_[vi] | (bm & prev));
        once_[vi] = static_cast<LaneMask>(prev | bm);
        while (newly != 0) {
          const int l = std::countr_zero(newly);
          newly = static_cast<LaneMask>(newly & (newly - 1));
          sole_sender_[vi * static_cast<std::size_t>(kMaxLanes) +
                       static_cast<std::size_t>(l)] = b;
        }
      }
    }
  } else {
    for (const NodeId b : union_) {
      const LaneMask bm = bcast_mask_[static_cast<std::size_t>(b)];
      for (const NodeId v : graph_->neighbors(b)) {
        const auto vi = static_cast<std::size_t>(v);
        const LaneMask prev = once_[vi];
        twice_[vi] = static_cast<LaneMask>(twice_[vi] | (bm & prev));
        once_[vi] = static_cast<LaneMask>(prev | bm);
      }
    }
  }

  // Ascending-listener scan: per lane, a touched listener that is not
  // itself broadcasting is a collision (touched twice) or a delivery
  // candidate (touched exactly once).  Reading a slot also clears it, so
  // the shared scratch needs no separate wipe.
  const NodeId n = graph_->node_count();
  for (NodeId v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    const LaneMask on = once_[vi];
    if (on == 0) continue;
    once_[vi] = 0;
    const LaneMask twice = twice_[vi];
    twice_[vi] = 0;
    const auto listening = static_cast<LaneMask>(~bcast_mask_[vi]);
    LaneMask col = static_cast<LaneMask>(twice & listening);
    LaneMask del = static_cast<LaneMask>(on & ~twice & listening);
    while (col != 0) {
      ++stats_[static_cast<std::size_t>(std::countr_zero(col))]
            .collision_losses;
      col = static_cast<LaneMask>(col & (col - 1));
    }
    while (del != 0) {
      const auto li = static_cast<std::size_t>(std::countr_zero(del));
      del = static_cast<LaneMask>(del & (del - 1));
      cand_recv_[li].push_back(v);
      if (sender_coins_)
        cand_send_[li].push_back(
            sole_sender_[vi * static_cast<std::size_t>(kMaxLanes) + li]);
    }
  }

  for (int l = 0; l < lanes_; ++l) {
    const auto li = static_cast<std::size_t>(l);
    if ((lanes & (1u << l)) == 0) continue;
    resolve_lane(l);
    stats_[li].deliveries = static_cast<std::int64_t>(receivers_[li].size());
    plan_[li].clear();
  }
  for (const NodeId b : union_) bcast_mask_[static_cast<std::size_t>(b)] = 0;
  union_.clear();
}

void LockstepNetwork::run_round_sinr() {
  // Shared touch pass: once_ doubles as a "lanes that reached v" mask (the
  // once/twice distinction is meaningless under SINR -- interference, not
  // collision, decides reception).
  for (const NodeId b : union_) {
    const LaneMask bm = bcast_mask_[static_cast<std::size_t>(b)];
    for (const NodeId v : graph_->neighbors(b))
      once_[static_cast<std::size_t>(v)] =
          static_cast<LaneMask>(once_[static_cast<std::size_t>(v)] | bm);
  }
  // Ascending-listener scan; reading a touch mask clears it, as in the
  // edge-fault scan.  Per touched listener one row walk accumulates every
  // lane's interference sum and best gain at once: per lane the additions
  // run in ascending neighbor id, exactly the scalar sinr_decode order,
  // so the floating-point sums (and hence deliveries) are bit-identical
  // to scalar trials.
  const SinrParams& p = channel_.sinr;
  const NodeId n = graph_->node_count();
  for (NodeId v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    const LaneMask on = once_[vi];
    if (on == 0) continue;
    once_[vi] = 0;
    const auto listen =
        static_cast<LaneMask>(on & ~bcast_mask_[vi]);
    if (listen == 0) continue;
    const auto row = graph_->neighbors(v);
    const double* gains = gain_.data() + gain_row_[vi];
    std::array<double, kMaxLanes> sum{};
    std::array<double, kMaxLanes> best;
    best.fill(-1.0);
    for (std::size_t j = 0; j < row.size(); ++j) {
      LaneMask m = static_cast<LaneMask>(
          bcast_mask_[static_cast<std::size_t>(row[j])] & listen);
      if (m == 0) continue;
      const double g = gains[j];
      while (m != 0) {
        const auto l = static_cast<std::size_t>(std::countr_zero(m));
        m = static_cast<LaneMask>(m & (m - 1));
        sum[l] += g;
        if (g > best[l]) best[l] = g;  // strict: gain tie keeps lower id
      }
    }
    LaneMask todo = listen;
    while (todo != 0) {
      const auto l = static_cast<std::size_t>(std::countr_zero(todo));
      todo = static_cast<LaneMask>(todo & (todo - 1));
      if (best[l] >= p.beta * (p.noise_floor + (sum[l] - best[l])))
        receivers_[l].push_back(v);
      else
        ++stats_[l].interference_losses;
    }
  }
}

void LockstepNetwork::resolve_lane(int lane) {
  const auto li = static_cast<std::size_t>(lane);
  const auto& recv = cand_recv_[li];
  const auto& send = cand_send_[li];
  auto& out = receivers_[li];
  if (!sender_coins_ && !receiver_coins_) {
    out.assign(recv.begin(), recv.end());
    return;
  }
  // Batched coins in the scalar engine's order: the sender's shared coin
  // first, then the survivor's receiver coin.  Both are counter-based
  // mixes of this lane's round salts, so outcomes match the scalar kernels
  // coin for coin.  The whole candidate array is mixed up front and the
  // survivors compacted write-always -- a taken/not-taken branch per coin
  // would be unlearnable for the predictor at the fault rates we sweep.
  const std::size_t count = recv.size();
  out.resize(count);
  std::size_t w = 0;
  std::int64_t sender_losses = 0;
  std::int64_t receiver_losses = 0;
  if (sender_coins_) {
    send_mix_.resize(count);
    Rng::mix64_batch(sender_salt_[li], send.data(), send_mix_.data(), count);
  }
  if (receiver_coins_) {
    recv_mix_.resize(count);
    Rng::mix64_batch(receiver_salt_[li], recv.data(), recv_mix_.data(), count);
  }
  if (sender_coins_ && receiver_coins_) {
    for (std::size_t j = 0; j < count; ++j) {
      const std::size_t sf = send_mix_[j] < sender_threshold_;
      const std::size_t rf = recv_mix_[j] < receiver_threshold_;
      sender_losses += static_cast<std::int64_t>(sf);
      receiver_losses += static_cast<std::int64_t>((sf ^ 1U) & rf);
      out[w] = recv[j];
      w += (sf | rf) ^ 1U;
    }
  } else if (sender_coins_) {
    for (std::size_t j = 0; j < count; ++j) {
      const std::size_t sf = send_mix_[j] < sender_threshold_;
      sender_losses += static_cast<std::int64_t>(sf);
      out[w] = recv[j];
      w += sf ^ 1U;
    }
  } else {
    for (std::size_t j = 0; j < count; ++j) {
      const std::size_t rf = recv_mix_[j] < receiver_threshold_;
      receiver_losses += static_cast<std::int64_t>(rf);
      out[w] = recv[j];
      w += rf ^ 1U;
    }
  }
  out.resize(w);
  stats_[li].sender_fault_losses += sender_losses;
  stats_[li].receiver_fault_losses += receiver_losses;
}

}  // namespace nrn::radio

// Lockstep multi-trial execution: up to kMaxLanes independent trials of one
// scenario (same graph, same fault model, per-trial seeds) advanced round by
// round together, sharing a single adjacency pass per round.
//
// Why this is possible: the v4 coin tape (see radio/network.hpp) is fully
// counter-based -- per active round each trial draws exactly ONE u64 salt
// from its own fault stream, and every sender/receiver coin is a stateless
// mix of that salt with a node id.  So W trials touring the same graph need
// W salt draws plus one shared traversal, not W traversals: per listener
// the bank accumulates a W-bit "touched once" / "touched twice" mask pair,
// and a lane's deliveries fall out of three bitwise ops per node.
//
// Bit-identity: a lane's receivers, round stats, and fault-stream
// consumption are exactly those of a scalar RadioNetwork driven with the
// same seed and staging sequence -- the tape-equivalence suite in
// tests/test_lockstep.cpp asserts this per round, and the Driver's
// trial-identity suite asserts it end to end per protocol.
//
// Scope: the bank is counting-mode and receivers-only -- staged packet ids
// are not tracked, which suffices for the informed-set steppers (Decay and
// the FASTBC family broadcast one message and read receiver-id spans).
// Protocols that need packet identity or payloads run scalar.
//
// Channel models: under a kSinr channel (radio/channel_model.hpp) the
// lanes share the gain pass the way they share adjacency -- one touch
// pass over the union of broadcasters, then one ascending row walk per
// touched listener accumulating all eight lanes' interference sums at
// once.  Per lane the additions run in ascending neighbor id, the exact
// order of the scalar engine's sinr_decode, so lane results stay
// bit-identical to scalar trials.  The channel is deterministic: no
// salts are drawn and the lanes' rng streams are never consumed.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "graph/geometry.hpp"
#include "graph/graph.hpp"
#include "radio/channel_model.hpp"
#include "radio/fault_model.hpp"
#include "radio/network.hpp"
#include "radio/staging.hpp"

namespace nrn::radio {

class LockstepNetwork {
 public:
  /// Lanes per bank: one bit per lane in a byte-wide mask, so the shared
  /// pass costs the same per listener as the scalar kernel's slot touch.
  static constexpr int kMaxLanes = 8;
  using LaneMask = std::uint8_t;

  /// The graph must outlive the bank.  Equivalent to the ChannelModel
  /// constructor with an edge-fault channel.
  LockstepNetwork(const graph::Graph& g, FaultModel fault_model);

  /// General form: any channel model.  A kSinr channel requires
  /// `geometry` (kept alive by the caller alongside the graph).
  LockstepNetwork(const graph::Graph& g, const ChannelModel& channel,
                  const graph::Geometry* geometry);

  LockstepNetwork(graph::Graph&&, FaultModel) = delete;
  LockstepNetwork(graph::Graph&&, const ChannelModel&,
                  const graph::Geometry*) = delete;

  /// Rearms the bank for a fresh batch of trials on the same graph: new
  /// fault model, all lanes dropped, scratch kept.
  void reset(FaultModel fault_model);

  /// Channel-general reset; reuses the gain table when the SINR
  /// parameters are unchanged.
  void reset(const ChannelModel& channel);

  const graph::Graph& graph() const { return *graph_; }
  const ChannelModel& channel() const { return channel_; }
  const FaultModel& fault_model() const { return fault_model_; }

  /// Adds a trial lane seeded with its own fault-coin stream; returns the
  /// lane index.  At most kMaxLanes lanes per reset.
  int add_lane(Rng rng);
  int lane_count() const { return lanes_; }

  /// Stages node `u` to broadcast in `lane` this round.  A node may be
  /// staged at most once per lane per round.
  void stage(int lane, NodeId u);

  /// Bulk form of stage(): one lane check up front, then a tight loop.
  void stage_many(int lane, std::span<const NodeId> senders);

  /// Stages each candidate independently with probability 2^-i, consuming
  /// this trial's protocol stream exactly as the scalar engine's
  /// stage_broadcasts_bernoulli_pow2 does.  Returns the staged count.
  std::size_t stage_bernoulli_pow2(int lane, std::span<const NodeId> candidates,
                                   std::int32_t i, Rng& rng);

  /// StagingPort view of one lane, so a protocol RoundStepper stages into
  /// the bank exactly as it would into a scalar network.  Packet ids are
  /// accepted and ignored (receivers-only bank; see file comment).
  class LanePort final : public StagingPort {
   public:
    LanePort(LockstepNetwork& bank, int lane) : bank_(&bank), lane_(lane) {}

    void stage(NodeId u, PacketId /*id*/) override { bank_->stage(lane_, u); }

    void stage_many(std::span<const NodeId> senders,
                    PacketId /*id*/) override {
      bank_->stage_many(lane_, senders);
    }

    std::size_t stage_bernoulli_pow2(std::span<const NodeId> candidates,
                                     std::int32_t i, PacketId /*id*/,
                                     Rng& rng) override {
      return bank_->stage_bernoulli_pow2(lane_, candidates, i, rng);
    }

   private:
    LockstepNetwork* bank_;
    int lane_;
  };

  LanePort port(int lane) {
    NRN_EXPECTS(lane >= 0 && lane < lanes_, "lane out of range");
    return LanePort(*this, lane);
  }

  /// Executes one synchronized round for every lane whose bit is set in
  /// `lanes` (bit l = lane l).  Lanes outside the mask must have staged
  /// nothing (a finished trial neither stages nor advances its clock).
  void run_round(unsigned lanes);

  /// Last round's deliveries of one lane, ascending receiver ids.  Valid
  /// until the lane's next executed round.
  std::span<const NodeId> receivers(int lane) const {
    NRN_EXPECTS(lane >= 0 && lane < lanes_, "lane out of range");
    return receivers_[static_cast<std::size_t>(lane)];
  }

  /// Last executed round's stats of one lane (same fields, same counting
  /// rules as RadioNetwork::last_round).
  const RoundStats& last_round(int lane) const {
    NRN_EXPECTS(lane >= 0 && lane < lanes_, "lane out of range");
    return stats_[static_cast<std::size_t>(lane)];
  }

 private:
  /// Applies the lane's batched sender/receiver fault coins to its
  /// delivery candidates, filling receivers_[lane].
  void resolve_lane(int lane);

  /// The kSinr round body: shared touch pass plus one ascending row walk
  /// per touched listener resolving all lanes at once.  Fills receivers_
  /// directly (no coin resolve follows).
  void run_round_sinr();

  const graph::Graph* graph_;
  FaultModel fault_model_;
  ChannelModel channel_;
  bool sender_coins_ = false;
  bool receiver_coins_ = false;
  std::uint64_t sender_threshold_ = 0;
  std::uint64_t receiver_threshold_ = 0;

  // SINR channel state: same listener-row gain table as the scalar engine
  // (radio/sinr_gain.hpp), built lazily and reused across resets with
  // unchanged parameters.
  bool sinr_ = false;
  const graph::Geometry* geometry_ = nullptr;
  bool gain_table_valid_ = false;
  std::vector<std::int64_t> gain_row_;
  std::vector<double> gain_;

  int lanes_ = 0;
  std::array<Rng, kMaxLanes> rng_;
  std::array<std::uint64_t, kMaxLanes> sender_salt_{};
  std::array<std::uint64_t, kMaxLanes> receiver_salt_{};
  std::array<std::vector<NodeId>, kMaxLanes> plan_;        // staged senders
  std::array<std::vector<NodeId>, kMaxLanes> cand_recv_;   // unique listeners
  std::array<std::vector<NodeId>, kMaxLanes> cand_send_;   // their sole sender
  std::array<std::vector<NodeId>, kMaxLanes> receivers_;   // post-coin output
  std::array<RoundStats, kMaxLanes> stats_{};

  // Shared per-node round scratch: which lanes this node broadcasts in,
  // and the once/twice touch masks of the shared adjacency pass.  once_ and
  // twice_ are cleared for free during the delivery scan; bcast_mask_ via
  // the union list.
  std::vector<LaneMask> bcast_mask_;
  std::vector<LaneMask> once_;
  std::vector<LaneMask> twice_;
  // sole_sender_[v * kMaxLanes + l]: the sender behind lane l's first touch
  // of listener v this round (only read where the delivery mask has bit l).
  // Maintained only when sender coins are in play -- it exists to key the
  // sender fault coin, so a receiver-only or fault-free bank skips it.
  std::vector<NodeId> sole_sender_;
  std::vector<NodeId> union_;  // nodes staged in >= 1 lane, staging order
  // Full-width batched coin mixes of one lane's candidates (resolve_lane).
  std::vector<std::uint64_t> send_mix_;
  std::vector<std::uint64_t> recv_mix_;
};

}  // namespace nrn::radio

// The pluggable channel layer above the topology.
//
// A ChannelModel decides which staged broadcasts become deliveries each
// round.  Two instances exist:
//   * kEdgeFault -- the paper's model (Section 3.1): the classic
//     collision rule plus independent per-round sender/receiver fault
//     coins, parameterized by a FaultModel.  This is the tape-v4 fast
//     path; its semantics and coin tape are bit-identical to when the
//     engine took a bare FaultModel.
//   * kSinr -- an additive-gain interference model in the style of
//     ROOT-Sim's physical_layer.c (SNIPPETS.md section 1): transmitter u
//     reaches listener v with gain power_u / dist(u, v)^alpha; v decodes
//     its strongest broadcasting neighbor u iff
//         gain(u, v) >= beta * (noise_floor + interference - gain(u, v))
//     where interference sums the gains of ALL broadcasting neighbors of
//     v.  Requires a geometric topology (graph/geometry.hpp) so distances
//     exist.  The channel is deterministic: no coins are drawn, so under
//     kSinr the engine's coin tape is empty (contract point 5 degenerates
//     to every round).  Losses to interference are counted separately
//     from collision losses (RoundStats::interference_losses).
//
// The SINR rule keeps the engine's "at most one delivery per listener per
// round" invariant: only the strongest transmitter (lowest node id on a
// gain tie) is a decode candidate -- a capture model, not a multi-packet
// reception model.
#pragma once

#include <string>

#include "common/contracts.hpp"
#include "radio/fault_model.hpp"

namespace nrn::radio {

enum class ChannelKind {
  kEdgeFault,  ///< per-edge fault coins over the collision rule (paper)
  kSinr,       ///< additive-gain interference vs. noise floor + threshold
};

/// Parameters of the SINR reception rule.
struct SinrParams {
  double alpha = 2.0;        ///< path-loss exponent: gain = power / d^alpha
  double noise_floor = 0.0;  ///< ambient noise power N
  double beta = 1.0;         ///< decode threshold on signal / (N + I)

  friend bool operator==(const SinrParams&, const SinrParams&) = default;
};

struct ChannelModel {
  ChannelKind kind = ChannelKind::kEdgeFault;
  /// Edge-fault parameterization; faultless under kSinr so protocol
  /// budget formulas (FaultModel::effective_loss) see zero edge loss.
  FaultModel fault;
  SinrParams sinr;

  static ChannelModel edge_fault(FaultModel fault_model) {
    ChannelModel c;
    c.kind = ChannelKind::kEdgeFault;
    c.fault = fault_model;
    return c;
  }

  static ChannelModel sinr_channel(double alpha, double noise_floor,
                                   double beta) {
    NRN_EXPECTS(alpha > 0.0, "sinr alpha must be positive");
    NRN_EXPECTS(noise_floor >= 0.0, "sinr noise floor must be non-negative");
    NRN_EXPECTS(beta > 0.0, "sinr beta must be positive");
    ChannelModel c;
    c.kind = ChannelKind::kSinr;
    c.sinr = SinrParams{alpha, noise_floor, beta};
    return c;
  }

  bool is_edge_fault() const { return kind == ChannelKind::kEdgeFault; }

  friend bool operator==(const ChannelModel&, const ChannelModel&) = default;
};

inline std::string to_string(const ChannelModel& channel) {
  if (channel.is_edge_fault()) return to_string(channel.fault);
  return "sinr(alpha=" + std::to_string(channel.sinr.alpha) +
         ", noise=" + std::to_string(channel.sinr.noise_floor) +
         ", beta=" + std::to_string(channel.sinr.beta) + ")";
}

}  // namespace nrn::radio

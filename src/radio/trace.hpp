// Round-by-round trace recording.
//
// Tests and examples attach a TraceRecorder to observe how a broadcast
// unfolds: informed-node counts over time, collision/fault loss series, and
// the per-round unique-reception fraction used by the Lemma 18 experiment.
#pragma once

#include <cstdint>
#include <vector>

#include "radio/network.hpp"

namespace nrn::radio {

/// Accumulates RoundStats snapshots plus an optional scalar progress metric
/// (e.g. number of informed nodes) per round.
class TraceRecorder {
 public:
  void record(const RoundStats& stats, double progress_metric = 0.0);

  std::size_t round_count() const { return stats_.size(); }
  const std::vector<RoundStats>& rounds() const { return stats_; }
  const std::vector<double>& progress() const { return progress_; }

  /// Totals across the recorded window.
  RoundStats accumulate() const;

  /// Rounds in which at least one delivery happened.
  std::size_t productive_rounds() const;

  /// First recorded round index at which progress reached `target`,
  /// or -1 if never.
  std::int64_t rounds_until_progress_at_least(double target) const;

 private:
  std::vector<RoundStats> stats_;
  std::vector<double> progress_;
};

}  // namespace nrn::radio

#include "radio/trace.hpp"

namespace nrn::radio {

void TraceRecorder::record(const RoundStats& stats, double progress_metric) {
  stats_.push_back(stats);
  progress_.push_back(progress_metric);
}

RoundStats TraceRecorder::accumulate() const {
  RoundStats total;
  for (const auto& s : stats_) {
    total.broadcasters += s.broadcasters;
    total.deliveries += s.deliveries;
    total.collision_losses += s.collision_losses;
    total.sender_fault_losses += s.sender_fault_losses;
    total.receiver_fault_losses += s.receiver_fault_losses;
  }
  return total;
}

std::size_t TraceRecorder::productive_rounds() const {
  std::size_t count = 0;
  for (const auto& s : stats_)
    if (s.deliveries > 0) ++count;
  return count;
}

std::int64_t TraceRecorder::rounds_until_progress_at_least(
    double target) const {
  for (std::size_t i = 0; i < progress_.size(); ++i)
    if (progress_[i] >= target) return static_cast<std::int64_t>(i);
  return -1;
}

}  // namespace nrn::radio

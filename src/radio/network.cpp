#include "radio/network.hpp"

#include <algorithm>
#include <bit>

#include "radio/sinr_gain.hpp"

namespace nrn::radio {

void DeliveryList::sort_by_receiver(std::vector<std::uint64_t>& scratch) {
  // Zip (receiver, plan index) into one u64 per delivery; receiver in the
  // high bits makes the u64 order the receiver order.
  scratch.clear();
  scratch.reserve(receivers_.size());
  for (std::size_t i = 0; i < receivers_.size(); ++i)
    scratch.push_back((static_cast<std::uint64_t>(receivers_[i]) << 32) |
                      static_cast<std::uint32_t>(plan_index_[i]));
  std::sort(scratch.begin(), scratch.end());
  for (std::size_t i = 0; i < scratch.size(); ++i) {
    receivers_[i] = static_cast<NodeId>(scratch[i] >> 32);
    plan_index_[i] = static_cast<std::int32_t>(scratch[i] & 0xffffffffu);
  }
}

RadioNetwork::RadioNetwork(const graph::Graph& g, FaultModel fault_model,
                           Rng rng)
    : RadioNetwork(g, ChannelModel::edge_fault(fault_model), nullptr, rng) {}

RadioNetwork::RadioNetwork(const graph::Graph& g, const ChannelModel& channel,
                           const graph::Geometry* geometry, Rng rng)
    : graph_(&g),
      fault_model_(channel.fault),
      channel_(channel),
      rng_(rng),
      geometry_(geometry) {
  const auto n = static_cast<std::size_t>(g.node_count());
  slots_.assign(n, NodeSlot{});
  candidates_.reserve(n);
  // Broadcaster count at which broadcasters * avg_degree reaches
  // kDenseWorkFactor * n, with avg_degree = 2E/n: F * n^2 / 2E.
  const std::int64_t n64 = g.node_count();
  const std::int64_t two_e = 2 * g.edge_count();
  dense_plan_threshold_ =
      two_e > 0 ? static_cast<std::size_t>(
                      (kDenseWorkFactor * n64 * n64 + two_e - 1) / two_e)
                : ~std::size_t{0};
  // Structured-adjacency eligibility: every edge joins consecutive ids.
  const std::size_t words = (n + 63) / 64;
  left_edge_mask_.assign(words, 0);
  right_edge_mask_.assign(words, 0);
  adjacent_ok_ = consecutive_adjacency(g);
  if (adjacent_ok_) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const auto vi = static_cast<std::size_t>(v);
      for (const NodeId u : g.neighbors(v)) {
        if (u == v - 1)
          left_edge_mask_[vi >> 6] |= std::uint64_t{1} << (vi & 63);
        else
          right_edge_mask_[vi >> 6] |= std::uint64_t{1} << (vi & 63);
      }
    }
    bcast_mask_.assign(words, 0);
    cand_mask_scratch_.assign(words, 0);
    hear_left_scratch_.assign(words, 0);
    plan_pos_.assign(n, 0);
  }
  use_bitmask_plan_ = adjacent_ok_;  // kernel_ starts as kAuto
  reset(channel, rng);
}

void RadioNetwork::reset(FaultModel fault_model, Rng rng) {
  reset(ChannelModel::edge_fault(fault_model), rng);
}

void RadioNetwork::reset(const ChannelModel& channel, Rng rng) {
  if (!(channel.sinr == channel_.sinr)) gain_table_valid_ = false;
  channel_ = channel;
  sinr_ = channel.kind == ChannelKind::kSinr;
  // Under SINR the edge-fault layer is inert: protocols reading
  // fault_model() (budget formulas) see zero edge loss, and the coin
  // flags below price no coins, so the rng stream is never drawn from.
  fault_model_ = sinr_ ? FaultModel::faultless() : channel.fault;
  rng_ = rng;
  if (sinr_ && !gain_table_valid_) build_gain_table();
  const double ps = sender_fault_probability(fault_model_);
  const double pr = receiver_fault_probability(fault_model_);
  sender_coins_ = ps > 0.0;
  receiver_coins_ = pr > 0.0;
  sender_threshold_ = Rng::coin_threshold(ps);
  receiver_threshold_ = Rng::coin_threshold(pr);
  // A bitmask-mode plan abandoned mid-round leaves its broadcaster bits
  // set; clear them before dropping the plan (whole-word stores are fine:
  // every set bit in a touched word belongs to a staged sender).
  if (use_bitmask_plan_)
    for (const NodeId u : plan_senders_)
      bcast_mask_[static_cast<std::size_t>(u) >> 6] = 0;
  plan_senders_.clear();
  plan_ids_.clear();
  plan_payloads_.clear();
  deliveries_.senders_.clear();
  deliveries_.ids_.clear();
  deliveries_.payloads_.clear();
  deliveries_.clear();
  last_round_ = RoundStats{};
  totals_ = NetworkTotals{};
  // Skip two epochs so stamps from an abandoned staging (epoch_ + 1) or the
  // last executed round (epoch_) can never collide with the next round's.
  epoch_ += 2;
}

void RadioNetwork::prepare_epoch() {
  // Slot stamps are the low 32 bits of the epoch, so they are unique only
  // within one u32 cycle.  Flush the slots once a full cycle has elapsed
  // since the last flush (amortized free) -- checked as an elapsed
  // distance, not a single epoch value, because silent/empty rounds and
  // reset() advance epoch_ without passing through here.  Stamp 0 is
  // reserved for "never touched" (the flushed state).
  if (epoch_ + 1 - slots_valid_since_ >= (std::uint64_t{1} << 32)) {
    std::fill(slots_.begin(), slots_.end(), NodeSlot{});
    slots_valid_since_ = epoch_ + 1;
  }
  if (static_cast<std::uint32_t>(epoch_ + 1) == 0) ++epoch_;
}

void RadioNetwork::materialize_plan_ids() {
  plan_ids_.assign(plan_senders_.size(), plan_uniform_id_);
}

void RadioNetwork::materialize_plan_payloads() {
  plan_payloads_.resize(plan_senders_.size());
}

void RadioNetwork::set_broadcast(NodeId u, Packet packet) {
  set_broadcast(u, packet.id);  // stamps the slot, records sender + id
  if (packet.payload == nullptr) return;
  materialize_plan_payloads();  // sized to include the entry just staged
  plan_payloads_.back() = std::move(packet.payload);
}

void RadioNetwork::stage_broadcasts(std::span<const NodeId> senders,
                                    PacketId id) {
  if (senders.empty()) return;
  if (plan_senders_.empty()) {
    prepare_epoch();
    plan_uniform_id_ = id;
  } else if (!plan_ids_.empty()) {
    plan_ids_.insert(plan_ids_.end(), senders.size(), id);
  } else if (id != plan_uniform_id_) {
    materialize_plan_ids();
    plan_ids_.insert(plan_ids_.end(), senders.size(), id);
  }
  if (!plan_payloads_.empty())
    plan_payloads_.resize(plan_payloads_.size() + senders.size());
  stamp_staged(senders);
}

void RadioNetwork::stamp_staged(std::span<const NodeId> senders) {
  const NodeId n = graph_->node_count();
  const std::size_t base = plan_senders_.size();
  plan_senders_.insert(plan_senders_.end(), senders.begin(), senders.end());
  if (use_bitmask_plan_) {
    // Accumulate each mask word in a register and store it once on word
    // change: schedules stage ascending runs of ids, so an in-memory |=
    // per sender would serialize up to 64 read-modify-writes of the same
    // word behind store-to-load forwarding.
    constexpr std::size_t kNoWord = ~std::size_t{0};
    std::size_t cw = kNoWord;
    std::uint64_t acc = 0;
    for (std::size_t j = 0; j < senders.size(); ++j) {
      const NodeId u = senders[j];
      NRN_EXPECTS(u >= 0 && u < n, "broadcaster out of range");
      const std::size_t wi = static_cast<std::size_t>(u) >> 6;
      if (wi != cw) {
        if (cw != kNoWord) bcast_mask_[cw] = acc;
        cw = wi;
        acc = bcast_mask_[wi];
      }
      const std::uint64_t bit = std::uint64_t{1} << (u & 63);
      NRN_EXPECTS((acc & bit) == 0,
                  "node staged to broadcast twice in one round");
      acc |= bit;
      plan_pos_[static_cast<std::size_t>(u)] =
          static_cast<std::uint32_t>(base + j);
    }
    if (cw != kNoWord) bcast_mask_[cw] = acc;
    return;
  }
  const auto stamp = static_cast<std::uint32_t>(epoch_ + 1);
  for (std::size_t j = 0; j < senders.size(); ++j) {
    const NodeId u = senders[j];
    NRN_EXPECTS(u >= 0 && u < n, "broadcaster out of range");
    auto& slot = slots_[static_cast<std::size_t>(u)];
    NRN_EXPECTS(slot.bcast_epoch != stamp,
                "node staged to broadcast twice in one round");
    slot.bcast_epoch = stamp;
    slot.plan_index = static_cast<std::int32_t>(base + j);
  }
}

void RadioNetwork::stage_broadcasts(std::span<const NodeId> senders,
                                    std::span<const PacketId> ids) {
  NRN_EXPECTS(senders.size() == ids.size(),
              "stage_broadcasts requires parallel spans");
  if (senders.empty()) return;
  if (plan_senders_.empty()) {
    prepare_epoch();
    // Per-entry ids from the start of the round: skip uniform compression.
    plan_uniform_id_ = ids[0];
  }
  if (plan_ids_.empty()) materialize_plan_ids();
  plan_ids_.insert(plan_ids_.end(), ids.begin(), ids.end());
  if (!plan_payloads_.empty())
    plan_payloads_.resize(plan_payloads_.size() + senders.size());
  stamp_staged(senders);
}

std::size_t RadioNetwork::stage_broadcasts_bernoulli_pow2(
    std::span<const NodeId> candidates, std::int32_t i, PacketId id,
    Rng& rng) {
  if (i == 0) {  // p = 1: every candidate stages, no coins on the tape
    stage_broadcasts(candidates, id);
    return candidates.size();
  }
  // The staging prologue (epoch prepare, id-mode resolution) runs lazily on
  // the first success so a round whose every coin fails stays untouched --
  // exactly the per-call behavior of the counting-mode set_broadcast.
  const NodeId n = graph_->node_count();
  bool general_ids = false;
  bool general_payloads = false;
  std::uint32_t stamp = 0;
  bool inited = false;
  auto init = [&] {
    if (plan_senders_.empty()) {
      prepare_epoch();
      plan_uniform_id_ = id;
    } else if (!plan_ids_.empty()) {
      general_ids = true;
    } else if (id != plan_uniform_id_) {
      materialize_plan_ids();
      general_ids = true;
    }
    general_payloads = !plan_payloads_.empty();
    stamp = static_cast<std::uint32_t>(epoch_ + 1);
    inited = true;
  };
  std::size_t staged = 0;
  if (use_bitmask_plan_) {
    // Same register-accumulated mask-word writes as stamp_staged: the
    // selected subset arrives in ascending order, so per-sender in-memory
    // |= would serialize on one word at a time.
    constexpr std::size_t kNoWord = ~std::size_t{0};
    std::size_t cw = kNoWord;
    std::uint64_t acc = 0;
    rng.for_each_bernoulli_pow2(candidates.size(), i, [&](std::size_t idx) {
      if (!inited) init();
      const NodeId u = candidates[idx];
      NRN_EXPECTS(u >= 0 && u < n, "broadcaster out of range");
      const std::size_t wi = static_cast<std::size_t>(u) >> 6;
      if (wi != cw) {
        if (cw != kNoWord) bcast_mask_[cw] = acc;
        cw = wi;
        acc = bcast_mask_[wi];
      }
      const std::uint64_t bit = std::uint64_t{1} << (u & 63);
      NRN_EXPECTS((acc & bit) == 0,
                  "node staged to broadcast twice in one round");
      acc |= bit;
      plan_pos_[static_cast<std::size_t>(u)] =
          static_cast<std::uint32_t>(plan_senders_.size());
      plan_senders_.push_back(u);
      if (general_ids) plan_ids_.push_back(id);
      if (general_payloads) plan_payloads_.emplace_back();
      ++staged;
    });
    if (cw != kNoWord) bcast_mask_[cw] = acc;
    return staged;
  }
  rng.for_each_bernoulli_pow2(candidates.size(), i, [&](std::size_t idx) {
    if (!inited) init();
    const NodeId u = candidates[idx];
    NRN_EXPECTS(u >= 0 && u < n, "broadcaster out of range");
    auto& slot = slots_[static_cast<std::size_t>(u)];
    NRN_EXPECTS(slot.bcast_epoch != stamp,
                "node staged to broadcast twice in one round");
    slot.bcast_epoch = stamp;
    slot.plan_index = static_cast<std::int32_t>(plan_senders_.size());
    plan_senders_.push_back(u);
    if (general_ids) plan_ids_.push_back(id);
    if (general_payloads) plan_payloads_.emplace_back();
    ++staged;
  });
  return staged;
}

void RadioNetwork::finalize_candidates(std::span<const NodeId> cands) {
  // Collided candidates were flagged in their slots; the survivors get
  // their fault coins here and become this round's deliveries.
  //
  // Every filter below is an unconditional write plus a cursor advance by
  // a 0/1 predicate (a cmov, never a branch): whether a candidate survives
  // a fault coin is a genuine coin flip, so a taken/not-taken branch here
  // would mispredict at the fault rate and dominate the pass.  The coins
  // themselves are counter-based -- pure functions of the round salt and
  // the node id -- so pricing them over the whole survivor array in one
  // vectorized mix64_batch sweep changes cost, never the tape.
  const std::size_t c = cands.size();
  if (c == 0) return;
  auto& recv = deliveries_.receivers_;
  auto& pidx = deliveries_.plan_index_;
  const std::size_t base = recv.size();
  recv.resize(base + c);
  pidx.resize(base + c);
  std::size_t w = base;
  if (sender_coins_) {
    // Tombstones and the senders' shared coins (priced per plan slot up
    // front, plan_noisy_) fall out in the same compaction.
    std::int64_t losses = 0;
    for (const NodeId v : cands) {
      const auto& slot = slots_[static_cast<std::size_t>(v)];
      const int alive = slot.state >= 0 ? 1 : 0;
      // Tombstoned states are negative; clamp the index so the masked
      // plan_noisy_ read stays in bounds (its value is then ignored).
      const std::size_t pi = alive ? static_cast<std::size_t>(slot.state) : 0;
      const int noisy = plan_noisy_[pi] != 0 ? 1 : 0;
      losses += alive & noisy;
      recv[w] = v;
      pidx[w] = slot.state;
      w += static_cast<std::size_t>(alive & (noisy ^ 1));
    }
    last_round_.sender_fault_losses += losses;
  } else {
    for (const NodeId v : cands) {
      const auto& slot = slots_[static_cast<std::size_t>(v)];
      recv[w] = v;
      pidx[w] = slot.state;
      w += static_cast<std::size_t>(slot.state >= 0 ? 1 : 0);
    }
  }
  recv.resize(w);
  pidx.resize(w);
  if (receiver_coins_) apply_receiver_coins(base);
}

void RadioNetwork::apply_receiver_coins(std::size_t base) {
  // One vectorized mix over every surviving receiver id, then an in-place
  // branch-free compaction (the read cursor never trails the write
  // cursor, so the overlap is safe).
  auto& recv = deliveries_.receivers_;
  auto& pidx = deliveries_.plan_index_;
  const std::size_t survivors = recv.size() - base;
  if (survivors == 0) return;
  coin_mix_scratch_.resize(survivors);
  Rng::mix64_batch(receiver_salt_, recv.data() + base,
                   coin_mix_scratch_.data(), survivors);
  std::size_t w = base;
  std::int64_t losses = 0;
  for (std::size_t j = 0; j < survivors; ++j) {
    const int ok = coin_mix_scratch_[j] >= receiver_threshold_ ? 1 : 0;
    recv[w] = recv[base + j];
    pidx[w] = pidx[base + j];
    w += static_cast<std::size_t>(ok);
    losses += ok ^ 1;
  }
  last_round_.receiver_fault_losses += losses;
  recv.resize(w);
  pidx.resize(w);
}

void RadioNetwork::run_round_sparse() {
  // One fused pass over the broadcasters' adjacency: a listener is
  // recorded as a delivery candidate at first touch (its slot holding the
  // sole sender's plan index) and flagged collided if a second
  // broadcasting neighbor appears.  Fault coins are applied only to the
  // candidates that survive (finalize_candidates), which is sound because
  // the receiver coin is a stateless function, not a stream draw.
  // The classification is branch-free except for one early-out: a re-touch
  // of a dead slot (broadcaster or already collided) changes nothing, and
  // that test is predictable at both extremes -- almost always false in
  // sparse rounds (touches are fresh), almost always true once a saturated
  // round has collided most listeners.  The remaining classification
  // (fresh vs. first collision, broadcaster vs. listener) flips like a
  // coin with random neighbors, so it stays select-based: every surviving
  // touch unconditionally rewrites the slot's (touch_epoch, state) pair
  // and candidate recording is a write-always/advance-by-predicate cursor.
  const auto stamp = static_cast<std::uint32_t>(epoch_);
  if (candidates_.size() < slots_.size()) candidates_.resize(slots_.size());
  NodeId* cand = candidates_.data();
  std::size_t nc = 0;
  std::int64_t collisions = 0;
  NodeSlot* const slots = slots_.data();
  for (std::size_t i = 0; i < plan_senders_.size(); ++i) {
    const NodeId b = plan_senders_[i];
    for (const NodeId v : graph_->neighbors(b)) {
      NodeSlot& slot = slots[static_cast<std::size_t>(v)];
      const int fresh = slot.touch_epoch != stamp ? 1 : 0;
      if (fresh == 0 && slot.state < 0) continue;  // dead slot: no-op touch
      const int bcast = slot.bcast_epoch == stamp ? 1 : 0;
      const std::int32_t first = bcast ? kNotListening
                                       : static_cast<std::int32_t>(i);
      slot.state = fresh ? first : kCollided;  // !fresh here => was live
      slot.touch_epoch = stamp;
      collisions += fresh ^ 1;
      cand[nc] = v;
      nc += static_cast<std::size_t>(fresh & (bcast ^ 1));
    }
  }
  last_round_.collision_losses += collisions;
  finalize_candidates({cand, nc});
}

void RadioNetwork::run_round_dense() {
  // Listener-centric flat pass over the CSR rows.  Counting stops at two
  // broadcasting neighbors -- collisions need no exact multiplicity -- so
  // rounds with many broadcasters touch only a short prefix of each row.
  // Unique listeners are recorded as candidates (ascending by
  // construction) and priced in the shared batched finalize pass.
  const auto stamp = static_cast<std::uint32_t>(epoch_);
  const NodeId n = graph_->node_count();
  if (candidates_.size() < slots_.size()) candidates_.resize(slots_.size());
  NodeId* cand = candidates_.data();
  std::size_t nc = 0;
  for (NodeId v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (slots_[vi].bcast_epoch == stamp) continue;  // not listening
    std::int32_t count = 0;
    NodeId sender = -1;
    for (const NodeId u : graph_->neighbors(v)) {
      if (slots_[static_cast<std::size_t>(u)].bcast_epoch == stamp) {
        sender = u;
        if (++count == 2) break;
      }
    }
    if (count == 0) continue;
    if (count >= 2) {
      ++last_round_.collision_losses;
      continue;
    }
    slots_[vi].state = slots_[static_cast<std::size_t>(sender)].plan_index;
    cand[nc++] = v;
  }
  finalize_candidates({cand, nc});
}

void RadioNetwork::run_round_adjacent() {
  // Word-parallel kernel for consecutive-id adjacency (see the header
  // comment): with B the broadcaster bitmask, listener v hears its left
  // neighbor iff B[v-1] and the (v-1, v) edge exists, symmetrically on the
  // right.  Exactly-one-neighbor reception is then XOR, collisions are
  // AND, and candidates and loss counts fall out of shifts, masks, and
  // popcounts 64 listeners at a time -- no per-touch slot traffic.  Fault
  // coins are id-keyed (v4 tape), so the bit-algebra formulation prices
  // coins identical to the sparse and dense kernels'.
  const std::size_t words = bcast_mask_.size();
  std::uint64_t* const B = bcast_mask_.data();  // populated at staging time
  // Counting pass: per-word candidate and hears-left masks (kept for the
  // emission pass), collision popcounts, and the exact candidate total so
  // the delivery arrays are sized once.
  std::int64_t collisions = 0;
  std::size_t total = 0;
  std::uint64_t prev = 0;
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t b = B[w];
    const std::uint64_t next = w + 1 < words ? B[w + 1] : 0;
    B[w] = 0;  // this pass visits every word anyway: reset inline for free
    const std::uint64_t hl = ((b << 1) | (prev >> 63)) & left_edge_mask_[w];
    const std::uint64_t hr = ((b >> 1) | (next << 63)) & right_edge_mask_[w];
    const std::uint64_t cand = ~b & (hl ^ hr);
    collisions +=
        static_cast<std::int64_t>(std::popcount(~b & hl & hr));
    total += static_cast<std::size_t>(std::popcount(cand));
    cand_mask_scratch_[w] = cand;
    hear_left_scratch_[w] = hl;
    prev = b;
  }
  last_round_.collision_losses += collisions;
  // Emission pass: walk the candidate bits (ascending, so the v4 ordering
  // contract holds with no sort) and read the sole sender's plan index
  // from its staging slot.
  auto& recv = deliveries_.receivers_;
  auto& pidx = deliveries_.plan_index_;
  const std::size_t base = recv.size();
  recv.resize(base + total);
  pidx.resize(base + total);
  std::size_t wr = base;
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t cand = cand_mask_scratch_[w];
    const std::uint64_t hl = hear_left_scratch_[w];
    const NodeId word_base = static_cast<NodeId>(w << 6);
    while (cand != 0) {
      const int j = std::countr_zero(cand);
      const NodeId v = word_base + j;
      const NodeId s = v + (((hl >> j) & 1) != 0 ? -1 : 1);
      recv[wr] = v;
      pidx[wr] = static_cast<std::int32_t>(plan_pos_[static_cast<std::size_t>(s)]);
      ++wr;
      cand &= cand - 1;
    }
  }
  // Coin tail: the senders' shared coins compact in place (no tombstones
  // here -- collisions never entered the arrays), then the receiver pass.
  if (sender_coins_) {
    std::size_t w2 = base;
    std::int64_t losses = 0;
    for (std::size_t j = base; j < wr; ++j) {
      const int noisy =
          plan_noisy_[static_cast<std::size_t>(pidx[j])] != 0 ? 1 : 0;
      recv[w2] = recv[j];
      pidx[w2] = pidx[j];
      w2 += static_cast<std::size_t>(noisy ^ 1);
      losses += noisy;
    }
    last_round_.sender_fault_losses += losses;
    recv.resize(w2);
    pidx.resize(w2);
  }
  if (receiver_coins_) apply_receiver_coins(base);
}

void RadioNetwork::build_gain_table() {
  NRN_EXPECTS(geometry_ != nullptr, "sinr channel requires node geometry");
  build_sinr_gain_table(*graph_, *geometry_, channel_.sinr.alpha, gain_row_,
                        gain_);
  if (adjacent_ok_) {
    // Per-node shortcuts for the word-parallel route: the row of a
    // consecutive-id node is [v-1?, v+1?], so its gains are the row's
    // first/last entries.  Copied (not recomputed) from gain_ so the
    // adjacent route reads the exact doubles the row-walk kernels read.
    const NodeId n = graph_->node_count();
    gain_left_.assign(static_cast<std::size_t>(n), 0.0);
    gain_right_.assign(static_cast<std::size_t>(n), 0.0);
    for (NodeId v = 0; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      const auto row = graph_->neighbors(v);
      const double* gains = gain_.data() + gain_row_[vi];
      for (std::size_t j = 0; j < row.size(); ++j) {
        if (row[j] == v - 1)
          gain_left_[vi] = gains[j];
        else
          gain_right_[vi] = gains[j];
      }
    }
  }
  gain_table_valid_ = true;
}

template <typename IsTx, typename PlanOf>
void RadioNetwork::sinr_decode(NodeId v, IsTx&& is_tx, PlanOf&& plan_of) {
  // Ascending row walk is the canonical interference-summation order; all
  // kernels (and the lockstep bank) accumulate this way so floating-point
  // sums are bit-identical across execution paths.
  const auto row = graph_->neighbors(v);
  const double* gains = gain_.data() + gain_row_[static_cast<std::size_t>(v)];
  double sum = 0.0;
  double best = -1.0;
  NodeId best_u = -1;
  for (std::size_t j = 0; j < row.size(); ++j) {
    const NodeId u = row[j];
    if (!is_tx(u)) continue;
    const double g = gains[j];
    sum += g;
    if (g > best) {  // strict: a gain tie keeps the lower id
      best = g;
      best_u = u;
    }
  }
  if (best_u < 0) return;  // nobody in range transmitted
  const SinrParams& p = channel_.sinr;
  if (best >= p.beta * (p.noise_floor + (sum - best)))
    deliveries_.push(v, plan_of(best_u));
  else
    ++last_round_.interference_losses;
}

void RadioNetwork::run_round_sinr_sparse() {
  // Touch pass over the broadcasters' adjacency marks each heard listener
  // once; a second pass decodes each against its full row.  Unlike the
  // edge-fault sparse kernel there is no collided state: under SINR a
  // multiply-touched listener is still a decode candidate, interference
  // replaces the collision rule.
  const auto stamp = static_cast<std::uint32_t>(epoch_);
  if (candidates_.size() < slots_.size()) candidates_.resize(slots_.size());
  NodeId* cand = candidates_.data();
  std::size_t nc = 0;
  NodeSlot* const slots = slots_.data();
  for (const NodeId b : plan_senders_) {
    for (const NodeId v : graph_->neighbors(b)) {
      NodeSlot& slot = slots[static_cast<std::size_t>(v)];
      if (slot.touch_epoch == stamp) continue;
      slot.touch_epoch = stamp;
      const int listening = slot.bcast_epoch != stamp ? 1 : 0;
      cand[nc] = v;
      nc += static_cast<std::size_t>(listening);
    }
  }
  const auto is_tx = [&](NodeId u) {
    return slots[static_cast<std::size_t>(u)].bcast_epoch == stamp;
  };
  const auto plan_of = [&](NodeId u) {
    return slots[static_cast<std::size_t>(u)].plan_index;
  };
  for (std::size_t i = 0; i < nc; ++i) sinr_decode(cand[i], is_tx, plan_of);
}

void RadioNetwork::run_round_sinr_dense() {
  // Listener-centric flat pass, like run_round_dense but with no early
  // exit: the SINR sum needs every broadcasting neighbor's gain.
  const auto stamp = static_cast<std::uint32_t>(epoch_);
  const NodeId n = graph_->node_count();
  NodeSlot* const slots = slots_.data();
  const auto is_tx = [&](NodeId u) {
    return slots[static_cast<std::size_t>(u)].bcast_epoch == stamp;
  };
  const auto plan_of = [&](NodeId u) {
    return slots[static_cast<std::size_t>(u)].plan_index;
  };
  for (NodeId v = 0; v < n; ++v) {
    if (slots[static_cast<std::size_t>(v)].bcast_epoch == stamp) continue;
    sinr_decode(v, is_tx, plan_of);
  }
}

void RadioNetwork::run_round_sinr_adjacent() {
  // Same shift algebra as run_round_adjacent to find heard listeners, but
  // a heard listener decodes its strongest adjacent transmitter against
  // noise plus the other side's gain.  The per-node gain shortcuts
  // (gain_left_/gain_right_) hold the identical doubles the row-walk
  // kernels read, and the left gain enters the sum first (ascending row
  // order), so results match sinr_decode bit for bit.
  const std::size_t words = bcast_mask_.size();
  std::uint64_t* const B = bcast_mask_.data();
  const SinrParams& p = channel_.sinr;
  auto& recv = deliveries_.receivers_;
  auto& pidx = deliveries_.plan_index_;
  std::int64_t interference = 0;
  std::uint64_t prev = 0;
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t b = B[w];
    const std::uint64_t next = w + 1 < words ? B[w + 1] : 0;
    B[w] = 0;  // this pass visits every word anyway: reset inline for free
    const std::uint64_t hl = ((b << 1) | (prev >> 63)) & left_edge_mask_[w];
    const std::uint64_t hr = ((b >> 1) | (next << 63)) & right_edge_mask_[w];
    prev = b;
    std::uint64_t heard = ~b & (hl | hr);
    const NodeId word_base = static_cast<NodeId>(w << 6);
    while (heard != 0) {
      const int j = std::countr_zero(heard);
      heard &= heard - 1;
      const NodeId v = word_base + j;
      const auto vi = static_cast<std::size_t>(v);
      const bool left = ((hl >> j) & 1) != 0;
      const bool right = ((hr >> j) & 1) != 0;
      const double gl = left ? gain_left_[vi] : 0.0;
      const double gr = right ? gain_right_[vi] : 0.0;
      const double sum = gl + gr;
      // Strict-greater tie-break as in sinr_decode: left (lower id) wins.
      const bool use_left = left && (!right || gl >= gr);
      const double best = use_left ? gl : gr;
      if (best >= p.beta * (p.noise_floor + (sum - best))) {
        const NodeId s = use_left ? v - 1 : v + 1;
        recv.push_back(v);
        pidx.push_back(static_cast<std::int32_t>(
            plan_pos_[static_cast<std::size_t>(s)]));
      } else {
        ++interference;
      }
    }
  }
  last_round_.interference_losses += interference;
}

const DeliveryList& RadioNetwork::run_round() {
  ++epoch_;
  deliveries_.clear();
  last_round_ = RoundStats{};
  const std::size_t staged = plan_senders_.size();
  last_round_.broadcasters = static_cast<std::int64_t>(staged);

  // v4 tape: a round with broadcasters and any coin in play draws exactly
  // one salt; both coin families derive from it by domain separation.
  // Sender coins are then priced per plan slot in one batched pass (each
  // sender's coin is shared by all its receivers).
  if ((sender_coins_ || receiver_coins_) && staged != 0) {
    const std::uint64_t salt = rng_();
    sender_salt_ = salt ^ kSenderSaltTweak;
    receiver_salt_ = salt ^ kReceiverSaltTweak;
    if (sender_coins_) {
      plan_noisy_.resize(staged);
      std::uint64_t ids[Rng::kCoinBatch];
      std::uint64_t mixed[Rng::kCoinBatch];
      for (std::size_t base = 0; base < staged; base += Rng::kCoinBatch) {
        const std::size_t m = std::min(Rng::kCoinBatch, staged - base);
        for (std::size_t j = 0; j < m; ++j)
          ids[j] = static_cast<std::uint64_t>(plan_senders_[base + j]);
        Rng::mix64_batch(sender_salt_, ids, mixed, m);
        for (std::size_t j = 0; j < m; ++j)
          plan_noisy_[base + j] = mixed[j] < sender_threshold_ ? 1 : 0;
      }
    }
  }

  if (staged != 0) {
    if (use_bitmask_plan_) {
      if (sinr_)
        run_round_sinr_adjacent();
      else
        run_round_adjacent();
      // Deliveries were emitted by ascending bit walk: already in the v4
      // contract's order, no probe needed.
    } else {
      if (kernel_ == Kernel::kDense ||
          (kernel_ == Kernel::kAuto && staged >= dense_plan_threshold_)) {
        if (sinr_)
          run_round_sinr_dense();
        else
          run_round_dense();
      } else {
        if (sinr_)
          run_round_sinr_sparse();
        else
          run_round_sparse();
      }
      // v4 contract: deliveries are emitted in ascending receiver id.
      // The dense kernels scan that way natively; the sparse kernels'
      // touch order usually is ascending too, so probe before sorting.
      if (!std::is_sorted(deliveries_.receivers_.begin(),
                          deliveries_.receivers_.end()))
        deliveries_.sort_by_receiver(sort_scratch_);
    }
  }
  last_round_.deliveries = static_cast<std::int64_t>(deliveries_.size());

  totals_.rounds += 1;
  totals_.broadcasts += last_round_.broadcasters;
  totals_.deliveries += last_round_.deliveries;
  totals_.collision_losses += last_round_.collision_losses;
  totals_.sender_fault_losses += last_round_.sender_fault_losses;
  totals_.receiver_fault_losses += last_round_.receiver_fault_losses;
  totals_.interference_losses += last_round_.interference_losses;

  // Hand the executed plan to the delivery list (its proxies reference the
  // arrays); the buffers swap back and forth so none ever reallocates in
  // steady state.
  plan_senders_.swap(deliveries_.senders_);
  plan_ids_.swap(deliveries_.ids_);
  plan_payloads_.swap(deliveries_.payloads_);
  deliveries_.uniform_id_ = plan_uniform_id_;
  plan_senders_.clear();
  plan_ids_.clear();
  plan_payloads_.clear();
  return deliveries_;
}

void RadioNetwork::run_silent_round() { run_silent_rounds(1); }

void RadioNetwork::run_silent_rounds(std::int64_t k) {
  NRN_EXPECTS(plan_senders_.empty(), "silent rounds with staged broadcasters");
  NRN_EXPECTS(k >= 0, "negative round count");
  if (k == 0) return;
  // A round with no broadcasters touches no node and draws no coin; the
  // only observable effects are the cleared round stats and the clock.
  deliveries_.clear();
  last_round_ = RoundStats{};
  totals_.rounds += k;
}

}  // namespace nrn::radio

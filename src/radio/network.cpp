#include "radio/network.hpp"

namespace nrn::radio {

RadioNetwork::RadioNetwork(const graph::Graph& g, FaultModel fault_model,
                           Rng rng)
    : graph_(&g), fault_model_(fault_model), rng_(rng) {
  const auto n = static_cast<std::size_t>(g.node_count());
  touch_epoch_.assign(n, 0);
  tx_neighbor_count_.assign(n, 0);
  first_sender_index_.assign(n, -1);
  broadcasting_epoch_.assign(n, 0);
}

void RadioNetwork::set_broadcast(NodeId u, Packet packet) {
  NRN_EXPECTS(u >= 0 && u < graph_->node_count(), "broadcaster out of range");
  NRN_EXPECTS(broadcasting_epoch_[static_cast<std::size_t>(u)] != epoch_ + 1,
              "node staged to broadcast twice in one round");
  broadcasting_epoch_[static_cast<std::size_t>(u)] = epoch_ + 1;
  plan_.push_back(Staged{u, std::move(packet), false});
}

const std::vector<Delivery>& RadioNetwork::run_round() {
  ++epoch_;
  deliveries_.clear();
  touched_.clear();
  last_round_ = RoundStats{};
  last_round_.broadcasters = static_cast<std::int64_t>(plan_.size());

  // Sender-fault coins: one per broadcaster per round, in staging order.
  const bool sender_coins = (fault_model_.kind == FaultKind::kSender ||
                             fault_model_.kind == FaultKind::kCombined) &&
                            fault_model_.p > 0.0;
  if (sender_coins) {
    for (auto& staged : plan_) staged.noisy = rng_.bernoulli(fault_model_.p);
  }

  // Count broadcasting neighbors of every node adjacent to a broadcaster.
  for (std::size_t i = 0; i < plan_.size(); ++i) {
    const NodeId b = plan_[i].sender;
    for (const NodeId v : graph_->neighbors(b)) {
      const auto vi = static_cast<std::size_t>(v);
      if (touch_epoch_[vi] != epoch_) {
        touch_epoch_[vi] = epoch_;
        tx_neighbor_count_[vi] = 1;
        first_sender_index_[vi] = static_cast<std::int32_t>(i);
        touched_.push_back(v);
      } else {
        ++tx_neighbor_count_[vi];
      }
    }
  }

  // Resolve receptions.  Receiver-fault coins are drawn in the order nodes
  // were first touched, which is deterministic given the staging order.
  for (const NodeId v : touched_) {
    const auto vi = static_cast<std::size_t>(v);
    if (broadcasting_epoch_[vi] == epoch_) continue;  // not listening
    if (tx_neighbor_count_[vi] >= 2) {
      ++last_round_.collision_losses;
      continue;
    }
    const Staged& staged =
        plan_[static_cast<std::size_t>(first_sender_index_[vi])];
    if (staged.noisy) {
      ++last_round_.sender_fault_losses;
      continue;
    }
    const double pr = fault_model_.kind == FaultKind::kReceiver
                          ? fault_model_.p
                          : fault_model_.kind == FaultKind::kCombined
                                ? fault_model_.p_receiver
                                : 0.0;
    if (pr > 0.0 && rng_.bernoulli(pr)) {
      ++last_round_.receiver_fault_losses;
      continue;
    }
    deliveries_.push_back(Delivery{v, staged.sender, staged.packet});
  }
  last_round_.deliveries = static_cast<std::int64_t>(deliveries_.size());

  totals_.rounds += 1;
  totals_.broadcasts += last_round_.broadcasters;
  totals_.deliveries += last_round_.deliveries;
  totals_.collision_losses += last_round_.collision_losses;
  totals_.sender_fault_losses += last_round_.sender_fault_losses;
  totals_.receiver_fault_losses += last_round_.receiver_fault_losses;

  plan_.clear();
  return deliveries_;
}

void RadioNetwork::run_silent_round() {
  NRN_EXPECTS(plan_.empty(), "run_silent_round with staged broadcasters");
  run_round();
}

}  // namespace nrn::radio

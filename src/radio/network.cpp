#include "radio/network.hpp"

#include <algorithm>

namespace nrn::radio {

namespace {

double receiver_probability(const FaultModel& fm) {
  switch (fm.kind) {
    case FaultKind::kReceiver:
      return fm.p;
    case FaultKind::kCombined:
      return fm.p_receiver;
    default:
      return 0.0;
  }
}

double sender_probability(const FaultModel& fm) {
  return (fm.kind == FaultKind::kSender || fm.kind == FaultKind::kCombined)
             ? fm.p
             : 0.0;
}

}  // namespace

void DeliveryList::sort_by_receiver(std::vector<std::uint64_t>& scratch) {
  // Zip (receiver, plan index) into one u64 per delivery; receiver in the
  // high bits makes the u64 order the receiver order.
  scratch.clear();
  scratch.reserve(receivers_.size());
  for (std::size_t i = 0; i < receivers_.size(); ++i)
    scratch.push_back((static_cast<std::uint64_t>(receivers_[i]) << 32) |
                      static_cast<std::uint32_t>(plan_index_[i]));
  std::sort(scratch.begin(), scratch.end());
  for (std::size_t i = 0; i < scratch.size(); ++i) {
    receivers_[i] = static_cast<NodeId>(scratch[i] >> 32);
    plan_index_[i] = static_cast<std::int32_t>(scratch[i] & 0xffffffffu);
  }
}

RadioNetwork::RadioNetwork(const graph::Graph& g, FaultModel fault_model,
                           Rng rng)
    : graph_(&g), fault_model_(fault_model), rng_(rng) {
  const auto n = static_cast<std::size_t>(g.node_count());
  slots_.assign(n, NodeSlot{});
  candidates_.reserve(n);
  deliveries_.plan_ = &executed_plan_;
  // Broadcaster count at which broadcasters * avg_degree reaches
  // kDenseWorkFactor * n, with avg_degree = 2E/n: F * n^2 / 2E.
  const std::int64_t n64 = g.node_count();
  const std::int64_t two_e = 2 * g.edge_count();
  dense_plan_threshold_ =
      two_e > 0 ? static_cast<std::size_t>(
                      (kDenseWorkFactor * n64 * n64 + two_e - 1) / two_e)
                : ~std::size_t{0};
  reset(fault_model, rng);
}

void RadioNetwork::reset(FaultModel fault_model, Rng rng) {
  fault_model_ = fault_model;
  rng_ = rng;
  const double ps = sender_probability(fault_model_);
  const double pr = receiver_probability(fault_model_);
  sender_coins_ = ps > 0.0;
  receiver_coins_ = pr > 0.0;
  sender_threshold_ = Rng::coin_threshold(ps);
  receiver_threshold_ = Rng::coin_threshold(pr);
  plan_.clear();
  executed_plan_.clear();
  deliveries_.clear();
  last_round_ = RoundStats{};
  totals_ = NetworkTotals{};
  // Skip two epochs so stamps from an abandoned staging (epoch_ + 1) or the
  // last executed round (epoch_) can never collide with the next round's.
  epoch_ += 2;
}

void RadioNetwork::prepare_epoch() {
  // Slot stamps are the low 32 bits of the epoch, so they are unique only
  // within one u32 cycle.  Flush the slots once a full cycle has elapsed
  // since the last flush (amortized free) -- checked as an elapsed
  // distance, not a single epoch value, because silent/empty rounds and
  // reset() advance epoch_ without passing through here.  Stamp 0 is
  // reserved for "never touched" (the flushed state).
  if (epoch_ + 1 - slots_valid_since_ >= (std::uint64_t{1} << 32)) {
    std::fill(slots_.begin(), slots_.end(), NodeSlot{});
    slots_valid_since_ = epoch_ + 1;
  }
  if (static_cast<std::uint32_t>(epoch_ + 1) == 0) ++epoch_;
}

void RadioNetwork::set_broadcast(NodeId u, Packet packet) {
  NRN_EXPECTS(u >= 0 && u < graph_->node_count(), "broadcaster out of range");
  if (plan_.empty()) prepare_epoch();
  const auto stamp = static_cast<std::uint32_t>(epoch_ + 1);
  auto& slot = slots_[static_cast<std::size_t>(u)];
  NRN_EXPECTS(slot.bcast_epoch != stamp,
              "node staged to broadcast twice in one round");
  slot.bcast_epoch = stamp;
  slot.plan_index = static_cast<std::int32_t>(plan_.size());
  plan_.push_back(StagedBroadcast{u, std::move(packet)});
}

bool RadioNetwork::faults_spare_delivery(NodeId v, std::int32_t plan_index) {
  if (sender_coins_ && plan_noisy_[static_cast<std::size_t>(plan_index)]) {
    ++last_round_.sender_fault_losses;
    return false;
  }
  // Counter-based coin: a function of (round salt, receiver), so the coin
  // is the same whichever kernel evaluates it, in whatever order.
  if (receiver_coins_ &&
      Rng::mix64(receiver_salt_, static_cast<std::uint64_t>(v)) <
          receiver_threshold_) {
    ++last_round_.receiver_fault_losses;
    return false;
  }
  return true;
}

void RadioNetwork::finalize_candidates() {
  // Collided candidates were flagged in their slots; the survivors get
  // their fault coins here and become this round's deliveries.  The fault
  // configuration is hoisted out of the loop: the faultless and
  // receiver-only shapes are the ones big sweeps spend their rounds in.
  if (!sender_coins_ && !receiver_coins_) {
    for (const NodeId v : candidates_) {
      const auto& slot = slots_[static_cast<std::size_t>(v)];
      if (slot.state >= 0) deliveries_.push(v, slot.state);
    }
    return;
  }
  if (!sender_coins_) {
    for (const NodeId v : candidates_) {
      const auto& slot = slots_[static_cast<std::size_t>(v)];
      if (slot.state < 0) continue;
      if (Rng::mix64(receiver_salt_, static_cast<std::uint64_t>(v)) <
          receiver_threshold_) {
        ++last_round_.receiver_fault_losses;
        continue;
      }
      deliveries_.push(v, slot.state);
    }
    return;
  }
  for (const NodeId v : candidates_) {
    const auto& slot = slots_[static_cast<std::size_t>(v)];
    if (slot.state < 0) continue;  // collided after being recorded
    if (faults_spare_delivery(v, slot.state)) deliveries_.push(v, slot.state);
  }
}

void RadioNetwork::run_round_sparse() {
  // One fused pass over the broadcasters' adjacency: a listener is
  // recorded as a delivery candidate at first touch (its slot holding the
  // sole sender's plan index) and flagged collided if a second
  // broadcasting neighbor appears.  Fault coins are applied only to the
  // candidates that survive (finalize_candidates), which is sound because
  // the receiver coin is a stateless function, not a stream draw.
  const auto stamp = static_cast<std::uint32_t>(epoch_);
  candidates_.clear();
  for (std::size_t i = 0; i < plan_.size(); ++i) {
    const NodeId b = plan_[i].sender;
    for (const NodeId v : graph_->neighbors(b)) {
      auto& slot = slots_[static_cast<std::size_t>(v)];
      if (slot.touch_epoch != stamp) {
        slot.touch_epoch = stamp;
        if (slot.bcast_epoch == stamp) {
          slot.state = kNotListening;
        } else {
          slot.state = static_cast<std::int32_t>(i);
          candidates_.push_back(v);
        }
      } else if (slot.state >= 0) {
        // Second broadcasting neighbor: the candidate becomes a collision.
        ++last_round_.collision_losses;
        slot.state = kCollided;
      }
    }
  }
  finalize_candidates();
}

void RadioNetwork::run_round_dense() {
  // Listener-centric flat pass over the CSR rows.  Counting stops at two
  // broadcasting neighbors -- collisions need no exact multiplicity -- so
  // rounds with many broadcasters touch only a short prefix of each row.
  const auto stamp = static_cast<std::uint32_t>(epoch_);
  const NodeId n = graph_->node_count();
  for (NodeId v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (slots_[vi].bcast_epoch == stamp) continue;  // not listening
    std::int32_t count = 0;
    NodeId sender = -1;
    for (const NodeId u : graph_->neighbors(v)) {
      if (slots_[static_cast<std::size_t>(u)].bcast_epoch == stamp) {
        sender = u;
        if (++count == 2) break;
      }
    }
    if (count == 0) continue;
    if (count >= 2) {
      ++last_round_.collision_losses;
      continue;
    }
    const auto plan_index =
        slots_[static_cast<std::size_t>(sender)].plan_index;
    if (faults_spare_delivery(v, plan_index)) deliveries_.push(v, plan_index);
  }
}

const DeliveryList& RadioNetwork::run_round() {
  ++epoch_;
  deliveries_.clear();
  last_round_ = RoundStats{};
  last_round_.broadcasters = static_cast<std::int64_t>(plan_.size());

  // Sender-fault coins: one per broadcaster per round, in staging order;
  // then one stream draw salts this round's counter-based receiver coins.
  if (sender_coins_) {
    plan_noisy_.resize(plan_.size());
    for (std::size_t i = 0; i < plan_noisy_.size(); ++i)
      plan_noisy_[i] = rng_() < sender_threshold_ ? 1 : 0;
  }
  if (receiver_coins_ && !plan_.empty()) receiver_salt_ = rng_();

  if (!plan_.empty()) {
    const bool dense = kernel_ == Kernel::kDense ||
                       (kernel_ == Kernel::kAuto &&
                        plan_.size() >= dense_plan_threshold_);
    if (dense)
      run_round_dense();
    else
      run_round_sparse();
    // v3 contract: deliveries are emitted in ascending receiver id.  The
    // dense kernel scans that way natively; the sparse kernel's touch
    // order usually is ascending too, so probe before sorting.
    if (!std::is_sorted(deliveries_.receivers_.begin(),
                        deliveries_.receivers_.end()))
      deliveries_.sort_by_receiver(sort_scratch_);
  }
  last_round_.deliveries = static_cast<std::int64_t>(deliveries_.size());

  totals_.rounds += 1;
  totals_.broadcasts += last_round_.broadcasters;
  totals_.deliveries += last_round_.deliveries;
  totals_.collision_losses += last_round_.collision_losses;
  totals_.sender_fault_losses += last_round_.sender_fault_losses;
  totals_.receiver_fault_losses += last_round_.receiver_fault_losses;

  // Keep the executed plan alive (deliveries reference its packets); the
  // buffers swap back and forth so neither ever reallocates in steady
  // state.
  plan_.swap(executed_plan_);
  plan_.clear();
  return deliveries_;
}

void RadioNetwork::run_silent_round() { run_silent_rounds(1); }

void RadioNetwork::run_silent_rounds(std::int64_t k) {
  NRN_EXPECTS(plan_.empty(), "silent rounds with staged broadcasters");
  NRN_EXPECTS(k >= 0, "negative round count");
  if (k == 0) return;
  // A round with no broadcasters touches no node and draws no coin; the
  // only observable effects are the cleared round stats and the clock.
  deliveries_.clear();
  last_round_ = RoundStats{};
  totals_.rounds += k;
}

}  // namespace nrn::radio

// Lightweight contract checking used across the library.
//
// NRN_EXPECTS(cond, msg)  -- precondition; throws nrn::ContractViolation.
// NRN_ENSURES(cond, msg)  -- postcondition; throws nrn::ContractViolation.
//
// Contracts are always on: the simulator is a measurement instrument, and a
// silently-violated invariant would corrupt every number downstream.  The
// checks used on hot paths are O(1).
#pragma once

#include <stdexcept>
#include <string>

namespace nrn {

/// Thrown when a stated pre- or post-condition does not hold.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* cond,
                                       const char* file, int line,
                                       const std::string& msg) {
  throw ContractViolation(std::string(kind) + " failed: (" + cond + ") at " +
                          file + ":" + std::to_string(line) +
                          (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace nrn

#define NRN_EXPECTS(cond, msg)                                              \
  do {                                                                      \
    if (!(cond))                                                            \
      ::nrn::detail::contract_fail("precondition", #cond, __FILE__,         \
                                   __LINE__, (msg));                        \
  } while (false)

#define NRN_ENSURES(cond, msg)                                              \
  do {                                                                      \
    if (!(cond))                                                            \
      ::nrn::detail::contract_fail("postcondition", #cond, __FILE__,        \
                                   __LINE__, (msg));                        \
  } while (false)

// Deterministic, fast pseudo-random number generation.
//
// All randomness in the library flows through nrn::Rng, which wraps
// xoshiro256++ seeded via splitmix64.  Every experiment records its seed, so
// any table in the paper reproduction can be regenerated bit-for-bit.
//
// The interface mirrors the parts of <random> the simulator needs, but with
// a fixed, documented algorithm: libstdc++ / libc++ distributions are not
// reproducible across standard libraries, and reproducibility is a core
// requirement here.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/contracts.hpp"

namespace nrn {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
    // xoshiro256++ requires a not-all-zero state; splitmix64 of any seed
    // yields that with overwhelming probability, but guard regardless.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    NRN_EXPECTS(bound > 0, "next_below requires a positive bound");
    if (bound == 1) return 0;
    // Power-of-two mask rejection: exact and branch-cheap (expected < 2
    // draws per call).
    std::uint64_t mask = bound - 1;
    mask |= mask >> 1;
    mask |= mask >> 2;
    mask |= mask >> 4;
    mask |= mask >> 8;
    mask |= mask >> 16;
    mask |= mask >> 32;
    while (true) {
      const std::uint64_t x = (*this)() & mask;
      if (x < bound) return x;
    }
  }

  /// Uniform integer in the closed interval [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    NRN_EXPECTS(lo <= hi, "uniform_int requires lo <= hi");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? (*this)() : next_below(span));
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) {
    NRN_EXPECTS(lo <= hi, "uniform_real requires lo <= hi");
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Sentinel for bernoulli_skip: no success within any addressable range.
  static constexpr std::uint64_t kNoSuccess = ~std::uint64_t{0};

  /// Fixed-point coin threshold for u64 compares: a draw x succeeds iff
  /// x < coin_threshold(p), so P(success) matches p to within 2^-64.  This
  /// is the canonical coin the v3 fault tape is defined in terms of.
  static std::uint64_t coin_threshold(double p) {
    if (p <= 0.0) return 0;
    const double scaled = std::ldexp(p, 64);
    return scaled >= 0x1.0p64 ? kNoSuccess : static_cast<std::uint64_t>(scaled);
  }

  /// Stateless counter-based draw: mixes (salt, index) into a uniform u64
  /// with the splitmix64 finalizer.  Distinct indices under one salt give
  /// independent-quality coins in ANY evaluation order -- the engine's
  /// fault coins use this so parallel-friendly kernels need not agree on a
  /// draw sequence, only on the per-round salt.
  static std::uint64_t mix64(std::uint64_t salt, std::uint64_t index) {
    std::uint64_t s = salt + 0x9e3779b97f4a7c15ULL * index;
    return splitmix64(s);
  }

  /// Natural batch width for the coin mixers below: large enough that the
  /// loop bodies auto-vectorize (AVX2 fits four u64 lanes, NEON two; eight
  /// gives every ISA at least two full vectors), small enough for stack
  /// scratch.
  static constexpr std::size_t kCoinBatch = 8;

  /// Batched mix64 over gathered indices: out[j] = mix64(salt, index[j])
  /// for j in [0, count).  The body is a pure elementwise map with no
  /// loads/stores aliasing (distinct arrays required), so compilers
  /// vectorize it; results are bit-identical to the scalar mixer on every
  /// platform -- the batch API changes cost, never the tape.
  static void mix64_batch(std::uint64_t salt, const std::uint64_t* index,
                          std::uint64_t* out, std::size_t count) {
    for (std::size_t j = 0; j < count; ++j) {
      // Inlined mix64: state increment folded into the multiply so the
      // whole finalizer is straight-line arithmetic on the lane.
      std::uint64_t z = salt + 0x9e3779b97f4a7c15ULL * (index[j] + 1);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      out[j] = z ^ (z >> 31);
    }
  }

  /// Batched mix64 over gathered 32-bit indices (node ids are 32-bit):
  /// out[j] = mix64(salt, index[j]).  The widening load folds into the
  /// vectorized map, so callers need not materialize a u64 copy of an id
  /// array just to price its coins.
  static void mix64_batch(std::uint64_t salt, const std::int32_t* index,
                          std::uint64_t* out, std::size_t count) {
    for (std::size_t j = 0; j < count; ++j) {
      std::uint64_t z =
          salt + 0x9e3779b97f4a7c15ULL *
                     (static_cast<std::uint64_t>(index[j]) + 1);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      out[j] = z ^ (z >> 31);
    }
  }

  /// Batched mix64 over the consecutive index range [first, first + count):
  /// out[j] = mix64(salt, first + j).  Same vectorization and exactness
  /// guarantees as the gathered variant, without materializing an index
  /// array.
  static void mix64_batch(std::uint64_t salt, std::uint64_t first,
                          std::uint64_t* out, std::size_t count) {
    for (std::size_t j = 0; j < count; ++j) {
      std::uint64_t z = salt + 0x9e3779b97f4a7c15ULL * (first + j + 1);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      out[j] = z ^ (z >> 31);
    }
  }

  /// Batched threshold coins over the consecutive index range
  /// [first, first + count), count <= 64: bit j of the result is set iff
  /// mix64(salt, first + j) < threshold.  One call prices up to 64 coins
  /// with vectorized mixing and a branch-free mask reduction.
  static std::uint64_t coin_threshold_batch(std::uint64_t salt,
                                            std::uint64_t first,
                                            std::size_t count,
                                            std::uint64_t threshold) {
    NRN_EXPECTS(count <= 64, "coin_threshold_batch prices at most 64 coins");
    std::uint64_t successes = 0;
    for (std::size_t base = 0; base < count; base += kCoinBatch) {
      const std::size_t m = std::min(kCoinBatch, count - base);
      std::uint64_t mixed[kCoinBatch];
      mix64_batch(salt, first + base, mixed, m);
      for (std::size_t j = 0; j < m; ++j)
        successes |= static_cast<std::uint64_t>(mixed[j] < threshold)
                     << (base + j);
    }
    return successes;
  }

  /// Geometric gap sampling: the number of *failures* before the next
  /// success in an i.i.d. Bernoulli(p) sequence (support {0, 1, 2, ...}).
  /// Consumes exactly one u64 draw for p in (0, 1); consumes nothing and
  /// returns 0 for p >= 1, or kNoSuccess for p <= 0.  Lets callers skip
  /// directly to the next successful index in O(1) instead of testing one
  /// coin per candidate.
  std::uint64_t bernoulli_skip(double p) {
    if (p >= 1.0) return 0;
    if (p <= 0.0) return kNoSuccess;
    return skip_with_inverse(1.0 / std::log1p(-p));
  }

  /// bernoulli_skip specialized to the dyadic probabilities p = 2^-i the
  /// Decay-style schedules use every round: the 1/log(1-p) reciprocal is
  /// read from a table instead of recomputed.  Bit-identical to
  /// bernoulli_skip(ldexp(1.0, -i)) on the same stream.
  std::uint64_t bernoulli_skip_pow2(std::int32_t i) {
    NRN_EXPECTS(i >= 0, "dyadic exponent must be non-negative");
    if (i == 0) return 0;
    if (i >= 64) return bernoulli_skip(std::ldexp(1.0, -i));
    return skip_with_inverse(dyadic_skip_table()[static_cast<std::size_t>(i)]);
  }

  /// Success probability above which for_each_bernoulli tests one cheap
  /// u64-threshold coin per index instead of sampling geometric gaps: a
  /// gap draw costs a log(), roughly five coin flips, so it only wins
  /// when successes are sparse.
  static constexpr double kSkipSamplingCutoff = 0.125;

  /// Calls fn(index) for every index in [0, count) whose independent
  /// Bernoulli(p) coin succeeds, in increasing index order.
  ///
  /// Tape (deterministic given p): p >= 1 visits every index and draws
  /// nothing; p > kSkipSamplingCutoff draws ONE u64 salt (count > 0 only)
  /// and prices index i's coin as mix64(salt, i) < coin_threshold(p), 64
  /// coins per batched call; smaller p draws bernoulli_skip gaps, one per
  /// visited index plus at most one terminating overshoot -- O(1 + count*p)
  /// expected draws instead of count.
  template <typename Fn>
  void for_each_bernoulli(std::size_t count, double p, Fn&& fn) {
    if (p >= 1.0) {
      for (std::size_t i = 0; i < count; ++i) fn(i);
      return;
    }
    if (p <= 0.0 || count == 0) return;
    if (p > kSkipSamplingCutoff) {
      const std::uint64_t threshold = coin_threshold(p);
      const std::uint64_t salt = (*this)();
      for (std::size_t base = 0; base < count; base += 64) {
        const std::size_t block = std::min<std::size_t>(64, count - base);
        std::uint64_t hits = coin_threshold_batch(salt, base, block, threshold);
        while (hits != 0) {
          fn(base + static_cast<std::size_t>(std::countr_zero(hits)));
          hits &= hits - 1;
        }
      }
      return;
    }
    std::size_t idx = 0;
    while (idx < count) {
      const std::uint64_t gap = bernoulli_skip(p);
      if (gap >= static_cast<std::uint64_t>(count - idx)) return;
      idx += static_cast<std::size_t>(gap);
      fn(idx);
      ++idx;
    }
  }

  /// for_each_bernoulli with p = 2^-i.  Above the skip-sampling cutoff
  /// (i <= 2) a dyadic coin needs only i fair bits, so one u64 draw serves
  /// 64/i indices exactly: index idx succeeds iff its i-bit chunk of the
  /// draw is all zero.  Below the cutoff, geometric gaps as in
  /// for_each_bernoulli.
  template <typename Fn>
  void for_each_bernoulli_pow2(std::size_t count, std::int32_t i, Fn&& fn) {
    NRN_EXPECTS(i >= 0, "dyadic exponent must be non-negative");
    if (i == 0) {
      for (std::size_t idx = 0; idx < count; ++idx) fn(idx);
      return;
    }
    if (i <= 2) {  // p in {1/2, 1/4}: bit-chunked coins
      const auto per_draw = static_cast<std::size_t>(64 / i);
      std::size_t idx = 0;
      while (idx < count) {
        const std::uint64_t word = (*this)();
        const std::size_t block = std::min(count - idx, per_draw);
        // Collapse the i-bit chunks into a success mask and walk only its
        // set bits.  Testing one chunk per candidate with a branch would
        // put a fair-coin branch in the inner loop -- unlearnable for the
        // predictor, so mispredicts dominate the scan.  (Chunk all-zero
        // <=> success; bit 2j of the i=2 mask speaks for candidate j.)
        std::uint64_t hits =
            i == 1 ? ~word : ~(word | (word >> 1)) & 0x5555555555555555ULL;
        if (block < per_draw)
          hits &= (std::uint64_t{1} << (block * static_cast<std::size_t>(i))) - 1;
        while (hits != 0) {
          const auto tz = static_cast<std::size_t>(std::countr_zero(hits));
          fn(idx + tz / static_cast<std::size_t>(i));
          hits &= hits - 1;
        }
        idx += block;
      }
      return;
    }
    std::size_t idx = 0;
    while (idx < count) {
      const std::uint64_t gap = bernoulli_skip_pow2(i);
      if (gap >= static_cast<std::uint64_t>(count - idx)) return;
      idx += static_cast<std::size_t>(gap);
      fn(idx);
      ++idx;
    }
  }

  /// n below which binomial() flips coins directly: a BINV walk costs about
  /// n*p pmf-recurrence steps plus a uniform draw, so it only wins once the
  /// coin loop is longer than a handful of draws.
  static constexpr std::uint64_t kBinomialDirectCutoff = 16;

  /// Binomial(n, p) by direct simulation for small n, normal-free inversion
  /// elsewhere: the BINV CDF walk (one uniform draw, O(1 + n*p) expected
  /// pmf-recurrence steps), with p > 1/2 reflected to its complement and n
  /// halved recursively whenever q^n would leave the normal double range.
  std::uint64_t binomial(std::uint64_t n, double p) {
    if (p <= 0.0 || n == 0) return 0;
    if (p >= 1.0) return n;
    if (p > 0.5) return n - binomial(n, 1.0 - p);  // keep the walk short
    if (n <= kBinomialDirectCutoff) {
      std::uint64_t successes = 0;
      for (std::uint64_t i = 0; i < n; ++i) successes += bernoulli(p) ? 1 : 0;
      return successes;
    }
    // BINV starts from pmf(0) = q^n; split n until that stays a normal
    // double (exp(-700) ~ 1e-304).  Binomial(n, p) is the sum of binomials
    // over any partition of n, so the split changes cost, not distribution.
    const double log_q = std::log1p(-p);
    if (static_cast<double>(n) * log_q < -700.0)
      return binomial(n / 2, p) + binomial(n - n / 2, p);
    return binomial_inversion(n, p);
  }

  /// Geometric: number of Bernoulli(p) trials up to and including the first
  /// success (support {1, 2, ...}).
  std::uint64_t geometric(double p) {
    NRN_EXPECTS(p > 0.0 && p <= 1.0, "geometric requires p in (0, 1]");
    std::uint64_t trials = 1;
    while (!bernoulli(p)) ++trials;
    return trials;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& choice(const std::vector<T>& values) {
    NRN_EXPECTS(!values.empty(), "choice requires a non-empty vector");
    return values[static_cast<std::size_t>(next_below(values.size()))];
  }

  /// Deterministically derives an independent child stream, e.g. one per
  /// trial index, so parallel experiment legs never share a stream.
  Rng split(std::uint64_t stream_id) {
    std::uint64_t sm = (*this)() ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1));
    return Rng(splitmix64(sm));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  /// BINV: inverts the Binomial(n, p) CDF by walking x upward from 0 with
  /// the pmf ratio pmf(x+1)/pmf(x) = ((n+1)/(x+1) - 1) * p/q.  Requires
  /// p <= 1/2 and q^n normal (binomial() guarantees both).
  std::uint64_t binomial_inversion(std::uint64_t n, double p) {
    const double q = 1.0 - p;
    const double s = p / q;
    const double a = static_cast<double>(n + 1) * s;
    while (true) {
      double r = std::exp(static_cast<double>(n) * std::log1p(-p));  // q^n
      double u = uniform01();
      for (std::uint64_t x = 0; x <= n; ++x) {
        if (u <= r) return x;
        u -= r;
        r *= a / static_cast<double>(x + 1) - s;
      }
      // Accumulated rounding pushed u past the total mass (u was within
      // ulps of 1); redraw rather than return a biased tail value.
    }
  }

  /// Inversion of the geometric CDF: gap = floor(log(u) / log(1-p)) with
  /// u uniform in [0, 1).  The reciprocal is passed in (and, for dyadic p,
  /// cached) so the general and fast paths compute the identical value.
  std::uint64_t skip_with_inverse(double inv_log_q) {
    const double u = uniform01();
    if (u <= 0.0) return kNoSuccess;  // log(0); one draw in 2^53
    const double gap = std::log(u) * inv_log_q;
    // Cap below kNoSuccess so gap arithmetic in callers cannot wrap.
    if (!(gap < 0x1.0p62)) return kNoSuccess;
    return static_cast<std::uint64_t>(gap);
  }

  /// dyadic_skip_table()[i] = 1 / log(1 - 2^-i) for i in [1, 63].
  static const std::array<double, 64>& dyadic_skip_table() {
    static const std::array<double, 64> table = [] {
      std::array<double, 64> t{};
      for (int i = 1; i < 64; ++i)
        t[static_cast<std::size_t>(i)] = 1.0 / std::log1p(-std::ldexp(1.0, -i));
      return t;
    }();
    return table;
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace nrn

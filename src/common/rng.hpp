// Deterministic, fast pseudo-random number generation.
//
// All randomness in the library flows through nrn::Rng, which wraps
// xoshiro256++ seeded via splitmix64.  Every experiment records its seed, so
// any table in the paper reproduction can be regenerated bit-for-bit.
//
// The interface mirrors the parts of <random> the simulator needs, but with
// a fixed, documented algorithm: libstdc++ / libc++ distributions are not
// reproducible across standard libraries, and reproducibility is a core
// requirement here.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/contracts.hpp"

namespace nrn {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
    // xoshiro256++ requires a not-all-zero state; splitmix64 of any seed
    // yields that with overwhelming probability, but guard regardless.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    NRN_EXPECTS(bound > 0, "next_below requires a positive bound");
    if (bound == 1) return 0;
    // Power-of-two mask rejection: exact and branch-cheap (expected < 2
    // draws per call).
    std::uint64_t mask = bound - 1;
    mask |= mask >> 1;
    mask |= mask >> 2;
    mask |= mask >> 4;
    mask |= mask >> 8;
    mask |= mask >> 16;
    mask |= mask >> 32;
    while (true) {
      const std::uint64_t x = (*this)() & mask;
      if (x < bound) return x;
    }
  }

  /// Uniform integer in the closed interval [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    NRN_EXPECTS(lo <= hi, "uniform_int requires lo <= hi");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? (*this)() : next_below(span));
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) {
    NRN_EXPECTS(lo <= hi, "uniform_real requires lo <= hi");
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Binomial(n, p) by direct simulation for small n, normal-free inversion
  /// elsewhere.  Intended for the moderate n used in cluster sampling.
  std::uint64_t binomial(std::uint64_t n, double p) {
    if (p <= 0.0 || n == 0) return 0;
    if (p >= 1.0) return n;
    std::uint64_t successes = 0;
    for (std::uint64_t i = 0; i < n; ++i) successes += bernoulli(p) ? 1 : 0;
    return successes;
  }

  /// Geometric: number of Bernoulli(p) trials up to and including the first
  /// success (support {1, 2, ...}).
  std::uint64_t geometric(double p) {
    NRN_EXPECTS(p > 0.0 && p <= 1.0, "geometric requires p in (0, 1]");
    std::uint64_t trials = 1;
    while (!bernoulli(p)) ++trials;
    return trials;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& choice(const std::vector<T>& values) {
    NRN_EXPECTS(!values.empty(), "choice requires a non-empty vector");
    return values[static_cast<std::size_t>(next_below(values.size()))];
  }

  /// Deterministically derives an independent child stream, e.g. one per
  /// trial index, so parallel experiment legs never share a stream.
  Rng split(std::uint64_t stream_id) {
    std::uint64_t sm = (*this)() ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1));
    return Rng(splitmix64(sm));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace nrn

// Thread-safe errno rendering.
//
// strerror(3) may return a pointer to a buffer shared across threads
// (clang-tidy's concurrency-mt-unsafe flags it); the serve daemon and the
// fleet runner both format errno from pool workers, so every call site
// uses this strerror_r wrapper instead.
#pragma once

#include <string.h>

#include <string>

namespace nrn {

namespace detail {

/// glibc's GNU strerror_r returns char* (which may point at its own
/// immutable table rather than `buf`); the XSI variant returns int and
/// fills `buf`.  Overloading on the actual return type picks the right
/// interpretation at compile time, whichever libc provides.
inline std::string strerror_result(char* text, const char* /*buf*/) {
  return text != nullptr ? text : "unknown error";
}
inline std::string strerror_result(int rc, const char* buf) {
  return rc == 0 ? buf : "unknown error";
}

}  // namespace detail

/// Text for an errno value, safe to call from any thread.
inline std::string errno_text(int err) {
  char buf[128] = {};
  return detail::strerror_result(::strerror_r(err, buf, sizeof buf), buf);
}

}  // namespace nrn

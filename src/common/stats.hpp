// Descriptive statistics and small regression helpers used by the
// experiment harness to compare measured series against the paper's
// asymptotic shapes.
#pragma once

#include <cstddef>
#include <vector>

namespace nrn {

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double q25 = 0.0;
  double q75 = 0.0;
};

/// Computes a Summary of `values`.  Throws on an empty sample.
Summary summarize(std::vector<double> values);

/// Quantile by linear interpolation on the sorted sample, q in [0, 1].
double quantile(std::vector<double> values, double q);

/// Sample mean.  Throws on an empty sample.
double mean(const std::vector<double>& values);

/// Streaming mean/variance (Welford).  Usable when a sample is too large to
/// keep, e.g. per-round statistics of long simulations.
class OnlineStats {
 public:
  void add(double x);
  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1).  Zero for fewer than two observations.
  double variance() const;
  double stddev() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Least-squares fit of y = intercept + slope * x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};

/// Fits y ~ a + b x.  Requires at least two points and non-constant x.
LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

/// Fits y ~ c * x^e by regressing log y on log x.  Requires positive data.
/// Returns {slope = e, intercept = log c, r2}.
LinearFit fit_power_law(const std::vector<double>& x, const std::vector<double>& y);

/// Fits y ~ a + b * log2(x) (the shape of Lemma 15's rounds-per-message on
/// the star).  Requires positive x.  Returns {slope = b, intercept = a, r2}.
LinearFit fit_log_linear(const std::vector<double>& x, const std::vector<double>& y);

/// Normal-approximation half-width of a 95% confidence interval on the mean.
double ci95_halfwidth(const Summary& s);

/// Ratio of two positive means; convenience for gap tables.
double ratio(double numerator, double denominator);

}  // namespace nrn

#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace nrn {

namespace {

double sorted_quantile(const std::vector<double>& sorted, double q) {
  NRN_EXPECTS(!sorted.empty(), "quantile of empty sample");
  NRN_EXPECTS(q >= 0.0 && q <= 1.0, "quantile fraction outside [0,1]");
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

Summary summarize(std::vector<double> values) {
  NRN_EXPECTS(!values.empty(), "summarize requires a non-empty sample");
  std::sort(values.begin(), values.end());
  Summary s;
  s.count = values.size();
  s.min = values.front();
  s.max = values.back();
  s.median = sorted_quantile(values, 0.5);
  s.q25 = sorted_quantile(values, 0.25);
  s.q75 = sorted_quantile(values, 0.75);
  OnlineStats acc;
  for (double v : values) acc.add(v);
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  return s;
}

double quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return sorted_quantile(values, q);
}

double mean(const std::vector<double>& values) {
  NRN_EXPECTS(!values.empty(), "mean of empty sample");
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

void OnlineStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  NRN_EXPECTS(x.size() == y.size(), "fit_linear: size mismatch");
  NRN_EXPECTS(x.size() >= 2, "fit_linear: need at least two points");
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  NRN_EXPECTS(denom != 0.0, "fit_linear: x values are constant");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double sst = syy - sy * sy / n;
  if (sst <= 0.0) {
    fit.r2 = 1.0;  // y is constant and perfectly predicted by the intercept
  } else {
    double ssr = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double resid = y[i] - (fit.intercept + fit.slope * x[i]);
      ssr += resid * resid;
    }
    fit.r2 = 1.0 - ssr / sst;
  }
  return fit;
}

LinearFit fit_power_law(const std::vector<double>& x, const std::vector<double>& y) {
  NRN_EXPECTS(x.size() == y.size(), "fit_power_law: size mismatch");
  std::vector<double> lx(x.size()), ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    NRN_EXPECTS(x[i] > 0.0 && y[i] > 0.0, "fit_power_law: data must be positive");
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }
  return fit_linear(lx, ly);
}

LinearFit fit_log_linear(const std::vector<double>& x,
                         const std::vector<double>& y) {
  NRN_EXPECTS(x.size() == y.size(), "fit_log_linear: size mismatch");
  std::vector<double> lx(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    NRN_EXPECTS(x[i] > 0.0, "fit_log_linear: x must be positive");
    lx[i] = std::log2(x[i]);
  }
  return fit_linear(lx, y);
}

double ci95_halfwidth(const Summary& s) {
  if (s.count < 2) return 0.0;
  return 1.96 * s.stddev / std::sqrt(static_cast<double>(s.count));
}

double ratio(double numerator, double denominator) {
  NRN_EXPECTS(denominator != 0.0, "ratio: zero denominator");
  return numerator / denominator;
}

}  // namespace nrn

#include "common/numio.hpp"

#include <locale.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace nrn {

namespace {

/// The cached "C" locale handle.  newlocale is called once; the handle is
/// never freed (it lives for the process).  A null handle (allocation
/// failure at first use) falls back to the global locale -- formatting then
/// depends on it, but a process that cannot allocate a locale_t is already
/// unusable.
locale_t c_locale() {
  static const locale_t loc = ::newlocale(LC_ALL_MASK, "C", (locale_t)0);
  return loc;
}

/// RAII thread-local locale swap around a C-library call.  uselocale only
/// touches the calling thread, so concurrent trials formatting metrics
/// never interfere.
class ScopedCLocale {
 public:
  ScopedCLocale() : previous_(::uselocale(c_locale())) {}
  ~ScopedCLocale() { ::uselocale(previous_); }

  ScopedCLocale(const ScopedCLocale&) = delete;
  ScopedCLocale& operator=(const ScopedCLocale&) = delete;

 private:
  locale_t previous_;
};

std::string format_with(const char* spec, int digits, double value) {
  const ScopedCLocale scope;
  char buf[64];
  int needed = std::snprintf(buf, sizeof buf, spec, digits, value);
  if (needed < 0) return "nan";  // encoding error: cannot happen for %g/%f
  if (static_cast<std::size_t>(needed) < sizeof buf) return buf;
  // %.*f of a huge magnitude (or a large digit count) can exceed any
  // fixed buffer; reformat into a right-sized string rather than
  // silently truncating digits.
  std::string out(static_cast<std::size_t>(needed), '\0');
  needed = std::snprintf(out.data(), out.size() + 1, spec, digits, value);
  out.resize(needed > 0 ? static_cast<std::size_t>(needed) : 0);
  return out;
}

}  // namespace

ParseRealResult parse_real(std::string_view text) {
  ParseRealResult result;
  if (text.empty()) {
    result.status = ParseRealStatus::kEmpty;
    return result;
  }
  const std::string body(text);  // strtod needs NUL termination
  char* end = nullptr;
  errno = 0;
  double value;
  {
    const ScopedCLocale scope;
    value = std::strtod(body.c_str(), &end);
  }
  if (end == body.c_str()) {
    result.status = ParseRealStatus::kMalformed;
    return result;
  }
  if (end != body.c_str() + body.size()) {
    result.status = ParseRealStatus::kTrailingGarbage;
    return result;
  }
  // ERANGE covers both directions.  Overflow (+-HUGE_VAL) loses the value
  // entirely and is rejected; underflow returns the nearest subnormal or
  // zero -- the closest representable double -- and is accepted, so tiny
  // serialized hexfloats round-trip.
  if (errno == ERANGE && std::abs(value) == HUGE_VAL) {
    result.status = ParseRealStatus::kOutOfRange;
    return result;
  }
  result.value = value;
  result.status = ParseRealStatus::kOk;
  return result;
}

const char* parse_real_error(ParseRealStatus status) {
  switch (status) {
    case ParseRealStatus::kOk: return "is a valid number";
    case ParseRealStatus::kEmpty: return "is empty";
    case ParseRealStatus::kMalformed: return "is not a number";
    case ParseRealStatus::kTrailingGarbage:
      return "has trailing characters after the number";
    case ParseRealStatus::kOutOfRange: return "is out of range";
  }
  return "is invalid";
}

std::string format_real_hex(double value) {
  const ScopedCLocale scope;
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", value);
  return buf;
}

std::string format_real(double value, int digits) {
  return format_with("%.*g", digits, value);
}

std::string format_real_fixed(double value, int digits) {
  return format_with("%.*f", digits, value);
}

}  // namespace nrn

// Locale-independent text round-trips for real numbers.
//
// Every persistent format in the repo (experiment records, shard files, the
// result cache, CSV/JSON emitters) depends on exact textual round-trips of
// doubles.  The C library's printf/strtod honor the *process locale's*
// decimal point, so a program running under e.g. de_DE.UTF-8 would emit
// "0x1,8p+1" and fail to parse "0x1.8p+1" -- a writer and a reader in
// different locales silently disagree and every bit-identical guarantee
// breaks.  These helpers pin LC_NUMERIC to the "C" locale per call (via a
// cached locale_t and uselocale, which is thread-local), so formatted and
// parsed reals are byte-identical regardless of the process locale.
//
// parse_real is also the library's one strict double parser: it reports
// *why* an input was rejected (empty / malformed / trailing garbage /
// overflow) instead of a bare failure, and it accepts gradual underflow --
// strtod flags subnormals with ERANGE too, but the denormal it returns is
// the closest representable value, so rejecting it would break round-trips
// of legitimately tiny serialized values.
#pragma once

#include <string>
#include <string_view>

namespace nrn {

enum class ParseRealStatus {
  kOk,
  kEmpty,            ///< empty input
  kMalformed,        ///< no leading number at all
  kTrailingGarbage,  ///< a number followed by extra characters
  kOutOfRange,       ///< overflow (magnitude exceeds the double range)
};

struct ParseRealResult {
  double value = 0.0;
  ParseRealStatus status = ParseRealStatus::kMalformed;

  bool ok() const { return status == ParseRealStatus::kOk; }
};

/// Strict C-locale parse of `text` as a double.  The whole string must be
/// one number (decimal, hexfloat, inf, or nan); underflow to a subnormal or
/// zero is accepted, overflow is kOutOfRange.  Callers that need finiteness
/// must check the value themselves.
ParseRealResult parse_real(std::string_view text);

/// Short human phrase for a rejection, e.g. "is not a number" or
/// "is out of range" -- the tail of a structured error message.
const char* parse_real_error(ParseRealStatus status);

/// C-locale "%a": the exact hexfloat rendering used by the record formats.
/// Round-trips bit-identically through parse_real for every double,
/// including subnormals, +-inf, and nan.
std::string format_real_hex(double value);

/// C-locale "%.<digits>g" (significant digits); emitters use 17
/// (max_digits10) where JSON values must survive a conforming parser.
std::string format_real(double value, int digits);

/// C-locale "%.<digits>f" (fixed decimals); the table/CSV cell formatter.
std::string format_real_fixed(double value, int digits);

}  // namespace nrn

#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/contracts.hpp"
#include "common/numio.hpp"

namespace nrn {

TableWriter::TableWriter(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  NRN_EXPECTS(!columns_.empty(), "a table needs at least one column");
}

void TableWriter::add_note(const std::string& note) { notes_.push_back(note); }

void TableWriter::add_row(std::vector<std::string> cells) {
  NRN_EXPECTS(cells.size() == columns_.size(),
              "row width must match column count");
  rows_.push_back(std::move(cells));
}

void TableWriter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  os << "== " << title_ << " ==\n";
  for (const auto& note : notes_) os << "   " << note << "\n";

  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "  ";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size())
        os << std::string(widths[c] - cells[c].size() + 2, ' ');
    }
    os << "\n";
  };

  print_row(columns_);
  std::size_t total = 2;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + 2;
  os << "  " << std::string(total - 4, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
  os << "\n";
}

void TableWriter::print_csv(std::ostream& os) const {
  for (const auto& note : notes_) os << "# " << note << "\n";
  auto csv_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) os << ",";
    }
    os << "\n";
  };
  csv_row(columns_);
  for (const auto& row : rows_) csv_row(row);
}

std::string fmt(double value, int digits) {
  if (std::isnan(value)) return "nan";
  return format_real_fixed(value, digits);
}

std::string fmt(std::int64_t value) { return std::to_string(value); }
std::string fmt(std::uint64_t value) { return std::to_string(value); }
std::string fmt(int value) { return std::to_string(value); }

std::string verdict(bool ok) { return ok ? "yes" : "NO"; }

}  // namespace nrn

// A persistent worker pool shared by every batched execution site.
//
// Before this existed, each Driver::run and SweepRunner::run spawned (and
// joined) fresh std::threads -- at large sweep sizes the spawn cost and the
// cold per-thread state dominated the short cells.  TaskPool keeps one set
// of workers alive for the whole process; batches are index-addressed, so
// results are independent of which worker runs which task and of whether a
// pool exists at all (the caller always participates, and a pool of zero
// helpers degrades to the serial loop).
//
// Slots: every executor of a batch has a stable slot id -- the caller is
// slot 0, helper thread w is slot w+1.  Within one run() call a slot is
// owned by exactly one thread, so per-slot scratch (e.g. the Driver's
// TrialWorkspace arenas) needs no locking.
//
// Nesting: a task that itself calls run() (the SweepRunner's cells run the
// Driver, which batches trials) executes the inner batch inline on its own
// slot -- no deadlock, no oversubscription.  Concurrent top-level callers
// from unrelated threads do the same when the pool is busy.
#pragma once

#include <cstddef>
#include <functional>

namespace nrn::common {

class TaskPool {
 public:
  /// The process-wide pool, sized to the hardware concurrency.  Created on
  /// first use; workers idle on a condition variable between batches.
  static TaskPool& shared();

  /// A pool with `helper_threads` persistent helpers (>= 0).
  explicit TaskPool(int helper_threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Number of distinct slot ids run() can hand out (helpers + caller).
  int slot_count() const;

  /// Runs task(index, slot) for every index in [0, count), using at most
  /// `max_workers` concurrent executors (the caller plus helpers), and
  /// blocks until the batch is done.  The first exception thrown by a task
  /// stops further scheduling and is rethrown here.  Reentrant calls from
  /// inside a task run inline on the calling task's slot.
  void run(std::size_t count, int max_workers,
           const std::function<void(std::size_t index, int slot)>& task);

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace nrn::common

// A persistent worker pool shared by every batched execution site.
//
// Before this existed, each Driver::run and SweepRunner::run spawned (and
// joined) fresh std::threads -- at large sweep sizes the spawn cost and the
// cold per-thread state dominated the short cells.  TaskPool keeps one set
// of workers alive for the whole process; batches are index-addressed, so
// results are independent of which worker runs which task and of whether a
// pool exists at all (the caller always participates, and a pool of zero
// helpers degrades to the serial loop).
//
// Slots: every executor of a batch has a stable slot id -- the caller is
// slot 0, helper thread w is slot w+1.  Within one run() call a slot is
// owned by exactly one thread, so per-slot scratch (e.g. the Driver's
// TrialWorkspace arenas) needs no locking.
//
// Nesting: a task that itself calls run() (the SweepRunner's cells run the
// Driver, which batches trials) executes the inner batch inline on its own
// slot -- no deadlock, no oversubscription.  Concurrent top-level callers
// from unrelated threads do the same when the pool is busy.
//
// Streams: batches cover the closed-count case (run N tasks, block until
// done), but a long-running service feeds jobs as clients submit them.  A
// Stream is an externally-fed, cancellable job queue executing on the same
// helpers: push() enqueues from any thread, cancel() drops jobs not yet
// started, drain() blocks until the queue is empty and nothing is running
// (participating itself, so a helper-less pool still completes).  Helpers
// serve whichever of the open batch / open streams has work; a stream's
// concurrency is capped by its own max_workers.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace nrn::common {

class TaskPool {
  struct Impl;

 public:
  /// The process-wide pool, sized to the hardware concurrency.  Created on
  /// first use; workers idle on a condition variable between batches.
  static TaskPool& shared();

  /// A pool with `helper_threads` persistent helpers (>= 0).
  explicit TaskPool(int helper_threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Number of distinct slot ids run() can hand out (helpers + caller).
  int slot_count() const;

  /// Runs task(index, slot) for every index in [0, count), using at most
  /// `max_workers` concurrent executors (the caller plus helpers), and
  /// blocks until the batch is done.  The first exception thrown by a task
  /// stops further scheduling and is rethrown here.  Reentrant calls from
  /// inside a task run inline on the calling task's slot.
  void run(std::size_t count, int max_workers,
           const std::function<void(std::size_t index, int slot)>& task);

  /// An externally-fed job stream executing on the pool.  Jobs receive the
  /// slot id of the thread running them (same contract as batch tasks, so
  /// per-slot scratch works unchanged); a job that calls TaskPool::run
  /// executes the nested batch inline on its own slot.  The first exception
  /// a job throws is captured and rethrown by the next drain(); later jobs
  /// keep running (a service must not die with its worst request).
  class Stream {
   public:
    ~Stream();  ///< closes the stream: cancels queued jobs, waits for running ones

    Stream(const Stream&) = delete;
    Stream& operator=(const Stream&) = delete;

    /// Enqueues a job (thread-safe).  Silently dropped once the stream is
    /// closing -- shutdown races are the caller's normal case, not an error.
    void push(std::function<void(int slot)> job);

    /// Drops every job not yet started; running jobs finish.  Returns the
    /// number dropped.
    std::size_t cancel();

    /// Blocks until the queue is empty and no job is running, executing
    /// queued jobs itself (on slot 0) alongside the helpers.  Rethrows the
    /// first captured job exception, if any.
    void drain();

   private:
    friend class TaskPool;
    struct State;
    Stream(Impl* pool, State* state) : pool_(pool), state_(state) {}
    Impl* pool_;
    State* state_;
  };

  /// Opens a stream capped at `max_workers` concurrent executors.
  std::unique_ptr<Stream> open_stream(int max_workers);

 private:
  Impl* impl_;
};

}  // namespace nrn::common

// nrn::Rng is header-only; this translation unit exists so the common library
// has a stable archive member for the module and to host the self-check used
// by the build (a compile-time verification of the splitmix64 constants).
#include "common/rng.hpp"

namespace nrn {
namespace {

// Known-answer test for splitmix64: first output for seed 0 is the constant
// below (see Steele, Lea, Flood: "Fast Splittable Pseudorandom Number
// Generators", and the reference C implementation by Vigna).
constexpr std::uint64_t splitmix64_first_output_for_seed_zero() {
  std::uint64_t s = 0;
  return splitmix64(s);
}

static_assert(splitmix64_first_output_for_seed_zero() == 0xe220a8397b1dcdafULL,
              "splitmix64 constants corrupted");

}  // namespace
}  // namespace nrn

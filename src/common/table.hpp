// Plain-text table rendering for the experiment harness.
//
// Every bench binary prints its results through TableWriter so all
// reproduction tables share one format: a titled header naming the
// experiment, the seed, and the parameters, followed by aligned columns.
// Tables can also be exported as CSV for external plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace nrn {

/// Column-aligned text table with a title block.
class TableWriter {
 public:
  TableWriter(std::string title, std::vector<std::string> columns);

  /// Adds a free-form "key: value" line printed above the column header
  /// (used for seed, fault model, topology parameters).
  void add_note(const std::string& note);

  /// Appends a row; must match the column count.
  void add_row(std::vector<std::string> cells);

  /// Renders the aligned table.
  void print(std::ostream& os) const;

  /// Renders as CSV (no title block; a comment line per note).
  void print_csv(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> notes_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimals, trimming noise.
std::string fmt(double value, int digits = 3);

/// Formats an integer count.
std::string fmt(std::int64_t value);
std::string fmt(std::uint64_t value);
std::string fmt(int value);

/// "yes"/"no" verdict helper for shape-check columns.
std::string verdict(bool ok);

}  // namespace nrn

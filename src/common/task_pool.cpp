#include "common/task_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/contracts.hpp"

namespace nrn::common {

namespace {
// Slot of the batch the current thread is executing a task for, or -1.
// Used to detect reentrant run() calls and execute them inline.
thread_local int tls_slot = -1;
}  // namespace

/// One open stream's shared state.  Everything is guarded by the pool
/// mutex except idle_cv waits; the State outlives its Stream handle only
/// within ~Stream, which removes it from the pool before deleting it.
struct TaskPool::Stream::State {
  std::deque<std::function<void(int)>> jobs;
  int executors = 0;  ///< threads currently inside run_stream for this state
  int active = 0;     ///< jobs executing right now
  int max_workers = 1;
  bool closing = false;
  std::exception_ptr error;
  std::condition_variable idle_cv;
};

struct TaskPool::Impl {
  struct Batch {
    const std::function<void(std::size_t, int)>* task = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;
    int helpers_wanted = 0;
    int helpers_joined = 0;  // guarded by pool mutex
    int helpers_active = 0;  // guarded by pool mutex
  };

  std::mutex mutex;
  std::condition_variable worker_cv;
  std::condition_variable done_cv;
  std::vector<std::thread> helpers;
  Batch* batch = nullptr;  // the batch currently open for helpers
  std::uint64_t batch_seq = 0;
  bool stopping = false;
  std::vector<Stream::State*> streams;  // open streams, oldest first

  using StreamState = Stream::State;

  /// A stream with queued work and a free executor slot, or nullptr.
  StreamState* pick_stream() {  // caller holds mutex
    for (auto* s : streams)
      if (!s->jobs.empty() && s->executors < s->max_workers) return s;
    return nullptr;
  }

  /// Runs stream jobs on `slot` until the queue is empty.  The caller has
  /// already incremented s.executors under `lock`.
  void run_stream(StreamState& s, int slot, std::unique_lock<std::mutex>& lock) {
    while (!s.jobs.empty()) {
      auto job = std::move(s.jobs.front());
      s.jobs.pop_front();
      ++s.active;
      lock.unlock();
      const int outer_slot = tls_slot;
      tls_slot = slot;
      try {
        job(slot);
      } catch (...) {
        const std::lock_guard<std::mutex> error_lock(mutex);
        if (!s.error) s.error = std::current_exception();
      }
      tls_slot = outer_slot;
      lock.lock();
      --s.active;
    }
    --s.executors;
    if (s.active == 0) s.idle_cv.notify_all();
  }

  static void drain(Batch& b, int slot) {
    while (!b.failed.load(std::memory_order_relaxed)) {
      const std::size_t index = b.next.fetch_add(1, std::memory_order_relaxed);
      if (index >= b.count) break;
      try {
        (*b.task)(index, slot);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(b.error_mutex);
        if (!b.error) b.error = std::current_exception();
        b.failed.store(true, std::memory_order_relaxed);
      }
    }
  }

  void worker_loop(int slot) {
    std::uint64_t last_seq = 0;
    while (true) {
      Batch* mine = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex);
        worker_cv.wait(lock, [&] {
          return stopping ||
                 (batch != nullptr && batch_seq != last_seq &&
                  batch->helpers_joined < batch->helpers_wanted) ||
                 pick_stream() != nullptr;
        });
        if (stopping) return;
        if (batch != nullptr && batch_seq != last_seq &&
            batch->helpers_joined < batch->helpers_wanted) {
          last_seq = batch_seq;
          mine = batch;
          ++mine->helpers_joined;
          ++mine->helpers_active;
        } else if (StreamState* s = pick_stream()) {
          ++s->executors;
          run_stream(*s, slot, lock);
          continue;
        } else {
          continue;  // woken for work someone else already took
        }
      }
      tls_slot = slot;
      drain(*mine, slot);
      tls_slot = -1;
      {
        const std::lock_guard<std::mutex> lock(mutex);
        if (--mine->helpers_active == 0) done_cv.notify_all();
      }
    }
  }
};

TaskPool::TaskPool(int helper_threads) : impl_(new Impl) {
  NRN_EXPECTS(helper_threads >= 0, "helper count must be non-negative");
  impl_->helpers.reserve(static_cast<std::size_t>(helper_threads));
  for (int w = 0; w < helper_threads; ++w)
    impl_->helpers.emplace_back([this, w] { impl_->worker_loop(w + 1); });
}

TaskPool::~TaskPool() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->worker_cv.notify_all();
  for (auto& helper : impl_->helpers) helper.join();
  delete impl_;
}

TaskPool& TaskPool::shared() {
  static TaskPool pool([] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? static_cast<int>(hw - 1) : 1;
  }());
  return pool;
}

int TaskPool::slot_count() const {
  return static_cast<int>(impl_->helpers.size()) + 1;
}

void TaskPool::run(std::size_t count, int max_workers,
                   const std::function<void(std::size_t, int)>& task) {
  NRN_EXPECTS(max_workers >= 1, "need at least one worker");
  if (count == 0) return;

  // Reentrant call from inside a pool task: run inline on our own slot.
  if (tls_slot >= 0) {
    for (std::size_t i = 0; i < count; ++i) task(i, tls_slot);
    return;
  }

  Impl::Batch batch;
  batch.task = &task;
  batch.count = count;
  batch.helpers_wanted = static_cast<int>(std::min<std::size_t>(
      {static_cast<std::size_t>(max_workers) - 1, impl_->helpers.size(),
       count - 1}));

  // The publish critical section is tiny, so block for the lock; only an
  // actually-open batch (another top-level caller mid-run) or a batch too
  // small to share sends this one down the run-it-ourselves path.
  const bool busy = [&] {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->batch != nullptr || batch.helpers_wanted == 0)
      return true;  // another batch is open: just run this one ourselves
    impl_->batch = &batch;
    ++impl_->batch_seq;
    return false;
  }();
  if (!busy) impl_->worker_cv.notify_all();

  tls_slot = 0;
  Impl::drain(batch, 0);
  tls_slot = -1;

  if (!busy) {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->batch = nullptr;  // late helpers must not join a finished batch
    impl_->done_cv.wait(lock, [&] { return batch.helpers_active == 0; });
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

// --------------------------------------------------------------- streams

std::unique_ptr<TaskPool::Stream> TaskPool::open_stream(int max_workers) {
  NRN_EXPECTS(max_workers >= 1, "stream needs at least one worker");
  auto* state = new Stream::State;
  state->max_workers = max_workers;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->streams.push_back(state);
  }
  return std::unique_ptr<Stream>(new Stream(impl_, state));
}

void TaskPool::Stream::push(std::function<void(int slot)> job) {
  {
    const std::lock_guard<std::mutex> lock(pool_->mutex);
    if (state_->closing) return;  // shutdown race: drop silently
    state_->jobs.push_back(std::move(job));
  }
  pool_->worker_cv.notify_one();
}

std::size_t TaskPool::Stream::cancel() {
  const std::lock_guard<std::mutex> lock(pool_->mutex);
  const std::size_t dropped = state_->jobs.size();
  state_->jobs.clear();
  if (state_->active == 0) state_->idle_cv.notify_all();
  return dropped;
}

void TaskPool::Stream::drain() {
  std::unique_lock<std::mutex> lock(pool_->mutex);
  // Participate: with zero (or busy) helpers the queue still empties.
  ++state_->executors;
  pool_->run_stream(*state_, /*slot=*/0, lock);
  state_->idle_cv.wait(
      lock, [&] { return state_->jobs.empty() && state_->active == 0; });
  if (state_->error) {
    std::exception_ptr error = state_->error;
    state_->error = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

TaskPool::Stream::~Stream() {
  std::unique_lock<std::mutex> lock(pool_->mutex);
  state_->closing = true;
  state_->jobs.clear();
  state_->idle_cv.wait(
      lock, [&] { return state_->executors == 0 && state_->active == 0; });
  auto& streams = pool_->streams;
  streams.erase(std::find(streams.begin(), streams.end(), state_));
  lock.unlock();
  delete state_;
}

}  // namespace nrn::common

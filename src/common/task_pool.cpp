#include "common/task_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/contracts.hpp"

namespace nrn::common {

namespace {
// Slot of the batch the current thread is executing a task for, or -1.
// Used to detect reentrant run() calls and execute them inline.
thread_local int tls_slot = -1;
}  // namespace

struct TaskPool::Impl {
  struct Batch {
    const std::function<void(std::size_t, int)>* task = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;
    int helpers_wanted = 0;
    int helpers_joined = 0;  // guarded by pool mutex
    int helpers_active = 0;  // guarded by pool mutex
  };

  std::mutex mutex;
  std::condition_variable worker_cv;
  std::condition_variable done_cv;
  std::vector<std::thread> helpers;
  Batch* batch = nullptr;  // the batch currently open for helpers
  std::uint64_t batch_seq = 0;
  bool stopping = false;

  static void drain(Batch& b, int slot) {
    while (!b.failed.load(std::memory_order_relaxed)) {
      const std::size_t index = b.next.fetch_add(1, std::memory_order_relaxed);
      if (index >= b.count) break;
      try {
        (*b.task)(index, slot);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(b.error_mutex);
        if (!b.error) b.error = std::current_exception();
        b.failed.store(true, std::memory_order_relaxed);
      }
    }
  }

  void worker_loop(int slot) {
    std::uint64_t last_seq = 0;
    while (true) {
      Batch* mine = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex);
        worker_cv.wait(lock, [&] {
          return stopping ||
                 (batch != nullptr && batch_seq != last_seq &&
                  batch->helpers_joined < batch->helpers_wanted);
        });
        if (stopping) return;
        last_seq = batch_seq;
        mine = batch;
        ++mine->helpers_joined;
        ++mine->helpers_active;
      }
      tls_slot = slot;
      drain(*mine, slot);
      tls_slot = -1;
      {
        const std::lock_guard<std::mutex> lock(mutex);
        if (--mine->helpers_active == 0) done_cv.notify_all();
      }
    }
  }
};

TaskPool::TaskPool(int helper_threads) : impl_(new Impl) {
  NRN_EXPECTS(helper_threads >= 0, "helper count must be non-negative");
  impl_->helpers.reserve(static_cast<std::size_t>(helper_threads));
  for (int w = 0; w < helper_threads; ++w)
    impl_->helpers.emplace_back([this, w] { impl_->worker_loop(w + 1); });
}

TaskPool::~TaskPool() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->worker_cv.notify_all();
  for (auto& helper : impl_->helpers) helper.join();
  delete impl_;
}

TaskPool& TaskPool::shared() {
  static TaskPool pool([] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? static_cast<int>(hw - 1) : 1;
  }());
  return pool;
}

int TaskPool::slot_count() const {
  return static_cast<int>(impl_->helpers.size()) + 1;
}

void TaskPool::run(std::size_t count, int max_workers,
                   const std::function<void(std::size_t, int)>& task) {
  NRN_EXPECTS(max_workers >= 1, "need at least one worker");
  if (count == 0) return;

  // Reentrant call from inside a pool task: run inline on our own slot.
  if (tls_slot >= 0) {
    for (std::size_t i = 0; i < count; ++i) task(i, tls_slot);
    return;
  }

  Impl::Batch batch;
  batch.task = &task;
  batch.count = count;
  batch.helpers_wanted = static_cast<int>(std::min<std::size_t>(
      {static_cast<std::size_t>(max_workers) - 1, impl_->helpers.size(),
       count - 1}));

  // The publish critical section is tiny, so block for the lock; only an
  // actually-open batch (another top-level caller mid-run) or a batch too
  // small to share sends this one down the run-it-ourselves path.
  const bool busy = [&] {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->batch != nullptr || batch.helpers_wanted == 0)
      return true;  // another batch is open: just run this one ourselves
    impl_->batch = &batch;
    ++impl_->batch_seq;
    return false;
  }();
  if (!busy) impl_->worker_cv.notify_all();

  tls_slot = 0;
  Impl::drain(batch, 0);
  tls_slot = -1;

  if (!busy) {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->batch = nullptr;  // late helpers must not join a finished batch
    impl_->done_cv.wait(lock, [&] { return batch.helpers_active == 0; });
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

}  // namespace nrn::common

#include "core/wct_schedules.hpp"

#include <cmath>

#include "core/decay.hpp"
#include "core/star_schedules.hpp"

namespace nrn::core {

MultiRunResult run_wct_rs_coding(radio::RadioNetwork& net,
                                 const topology::WctNetwork& wct,
                                 const WctCodedParams& params, Rng& rng) {
  // Structural identity, not pointer identity: the registry's protocol
  // adapters rebuild the WctNetwork deterministically from the scenario
  // seed, so the network's graph is an equal copy, not the same object.
  // The caller owes full structural identity (the sim adapter verifies
  // adjacency once at construction); this guard is the cheap per-run
  // sanity bound.
  NRN_EXPECTS(net.graph().node_count() == wct.graph().node_count() &&
                  net.graph().edge_count() == wct.graph().edge_count(),
              "network built on a different graph");
  NRN_EXPECTS(params.k >= 1, "need at least one message");
  const std::int64_t k = params.k;
  const auto& senders = wct.senders();
  const auto sender_count = static_cast<std::int64_t>(senders.size());
  const double p = net.fault_model().effective_loss();
  const std::int32_t phase =
      params.decay_phase > 0
          ? params.decay_phase
          : Decay::default_phase_length(
                static_cast<std::int32_t>(sender_count) + 1);

  MultiRunResult result;
  result.messages = k;

  // --- Phase 1: source streams distinct packets until every sender can
  // reconstruct (holds >= k distinct).  One fresh id per round; a sender
  // misses a round only through a fault, so this is the star schedule of
  // Lemma 16 with the senders as leaves.
  std::vector<std::int64_t> sender_have(
      static_cast<std::size_t>(sender_count), 0);
  std::int64_t senders_done = 0;
  const std::int64_t phase1_cap = rs_packet_count(
      k, static_cast<std::int32_t>(sender_count) + 1, p) * 4;
  std::int64_t next_packet = 0;
  while (senders_done < sender_count && result.rounds < phase1_cap) {
    net.set_broadcast(wct.source(), radio::PacketId{next_packet++});
    const auto& deliveries = net.run_round();
    ++result.rounds;
    for (const auto& d : deliveries) {
      // Sender ids are 1..M.
      if (d.receiver >= 1 && d.receiver <= sender_count) {
        auto& have = sender_have[static_cast<std::size_t>(d.receiver - 1)];
        if (++have == k) ++senders_done;
      }
    }
  }
  if (senders_done < sender_count) return result;  // completed stays false

  // --- Phase 2: Decay pattern over senders with globally-distinct coded
  // packets.  Track distinct receptions per cluster member.
  const std::int32_t n = net.graph().node_count();
  std::vector<std::int64_t> member_have(static_cast<std::size_t>(n), 0);
  std::int64_t members_total = 0, members_done = 0;
  for (const auto& cluster : wct.clusters())
    members_total += static_cast<std::int64_t>(cluster.size());

  const std::int64_t budget =
      params.max_rounds > 0
          ? params.max_rounds
          : result.rounds +
                static_cast<std::int64_t>(
                    64.0 / (1.0 - p) *
                    static_cast<double>(k + 4 * phase) * phase);

  // Staging scratch: the round's selected senders and their globally
  // unique packet ids, bulk-staged in one call.
  std::vector<radio::NodeId> round_senders;
  std::vector<radio::PacketId> round_ids;
  round_senders.reserve(static_cast<std::size_t>(sender_count));
  round_ids.reserve(static_cast<std::size_t>(sender_count));

  std::int64_t round_index = 0;
  while (members_done < members_total && result.rounds < budget) {
    const auto sub = static_cast<std::int32_t>(round_index % phase);
    round_senders.clear();
    round_ids.clear();
    rng.for_each_bernoulli_pow2(
        static_cast<std::size_t>(sender_count), sub, [&](std::size_t si) {
          // Globally unique id: every reception is a fresh packet.
          const std::int64_t id = (round_index + 1) * sender_count +
                                  static_cast<std::int64_t>(si);
          round_senders.push_back(senders[si]);
          round_ids.push_back(radio::PacketId{id});
        });
    net.stage_broadcasts(round_senders, round_ids);
    const auto& deliveries = net.run_round();
    ++result.rounds;
    ++round_index;
    for (const auto& d : deliveries) {
      if (d.receiver <= sender_count) continue;  // source or sender
      auto& have = member_have[static_cast<std::size_t>(d.receiver)];
      if (have < k && ++have == k) ++members_done;
    }
  }
  result.completed = (members_done == members_total);
  return result;
}

}  // namespace nrn::core

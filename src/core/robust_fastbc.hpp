// Robust FASTBC (paper Section 4.1, Theorem 11) -- the paper's new
// diameter-linear single-message algorithm for the noisy model.
//
// FASTBC's fragile wave is repaired by retrying at the hop scale: fast
// stretches are partitioned into blocks of S = Theta(log log n) levels; an
// active block broadcasts for a window of c*S even rounds, with nodes
// staggered mod 3 by level so a dropped hop retries 3 even-rounds later
// instead of waiting for a whole new wave.  The active band of blocks
// advances like the original wave (one block per window, rank-displaced by
// 6 blocks), so a message that stays "active" crosses each block within
// its window except with probability 1/polylog n, and the additive
// overhead collapses from Theta(D log n) (Lemma 10) to o(D) + polylog.
//
// Schedule (even round t = 2t', fast node u at level l, rank r):
//     broadcast  iff  floor(l/S) - 6r = floor(t'/(cS))  (mod 6*rank_modulus)
//                and  l = t'  (mod 3)
// Odd rounds run a standard Decay step over all informed nodes, exactly as
// in FASTBC.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "core/run_result.hpp"
#include "core/stepper.hpp"
#include "radio/network.hpp"
#include "radio/trace.hpp"
#include "trees/gbst.hpp"

namespace nrn::core {

struct RobustFastbcParams {
  /// Block size S; 0 selects max(2, ceil(2 * log2(log2 n))).
  std::int32_t block_size = 0;
  /// Window multiplier c (window = c * S even rounds); 0 selects 8, which
  /// keeps the per-block failure probability at 1/polylog n for p <= 1/2.
  std::int32_t window_multiplier = 0;
  /// Modulus for the band schedule; 0 selects ceil(log2 n).
  std::int32_t rank_modulus = 0;
  /// Decay phase length for slow rounds; 0 selects ceil(log2 n) + 1.
  std::int32_t decay_phase = 0;
  /// Round budget; 0 selects a generous multiple of the Theorem 11 bound.
  std::int64_t max_rounds = 0;
};

class RobustFastbc {
 public:
  RobustFastbc(const graph::Graph& g, radio::NodeId source,
               RobustFastbcParams params = {});

  /// The paper's "sufficiently large constant" c depends on the fault
  /// rate: a hop retries every 3 even rounds, so crossing a block costs
  /// (1 + 3p/(1-p)) even rounds per level in expectation; 30% slack on
  /// top keeps the per-block failure probability at 1/polylog for the
  /// default block size.
  static std::int32_t recommended_window_multiplier(double p) {
    NRN_EXPECTS(p >= 0.0 && p < 1.0, "fault probability out of range");
    const double mean_hop = 1.0 + 3.0 * p / (1.0 - p);
    return std::max<std::int32_t>(
        4, static_cast<std::int32_t>(1.3 * mean_hop) + 1);
  }

  const trees::RankedBfsTree& tree() const { return tree_; }
  std::int32_t block_size() const { return block_size_; }
  std::int32_t window_multiplier() const { return window_multiplier_; }
  std::int32_t rank_modulus() const { return rank_modulus_; }

  /// Implemented as run_stepped over make_stepper.
  BroadcastRunResult run(radio::RadioNetwork& net, Rng& rng,
                         radio::TraceRecorder* trace = nullptr) const;

  /// The schedule as a RoundStepper; `effective_loss` feeds the default
  /// budget exactly as run() derives it from the network's fault model.
  /// The algorithm object (it owns the GBST) must outlive the stepper.
  std::unique_ptr<RoundStepper> make_stepper(
      double effective_loss, radio::TraceRecorder* trace = nullptr) const;

 private:
  const graph::Graph* graph_;
  radio::NodeId source_;
  RobustFastbcParams params_;
  trees::RankedBfsTree tree_;
  trees::GbstBuildStats tree_stats_;
  std::int32_t block_size_;
  std::int32_t window_multiplier_;
  std::int32_t rank_modulus_;
  std::int32_t decay_phase_;
};

}  // namespace nrn::core

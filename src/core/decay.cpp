#include "core/decay.hpp"

#include <cmath>

namespace nrn::core {

std::int32_t Decay::default_phase_length(std::int32_t node_count) {
  NRN_EXPECTS(node_count >= 1, "empty network");
  std::int32_t bits = 1;
  while ((std::int64_t{1} << bits) < node_count) ++bits;
  return bits + 1;
}

std::int64_t Decay::default_budget(std::int32_t node_count,
                                   std::int32_t diameter_hint, double p) {
  const auto phase = static_cast<std::int64_t>(default_phase_length(node_count));
  const auto log_n = static_cast<std::int64_t>(
      std::ceil(std::log2(std::max(2, node_count))));
  const double stretch = 1.0 / (1.0 - p);
  const auto base = static_cast<std::int64_t>(diameter_hint) + 4 * log_n + 32;
  return static_cast<std::int64_t>(16.0 * stretch *
                                   static_cast<double>(phase * base));
}

namespace {

/// One Decay trial's round logic.  In round i of a phase, every informed
/// node broadcasts with probability 2^-i; the Bernoulli selection is fused
/// into the staging pass (bulk staging, one call per round).
class DecayStepper final : public InformedSetStepper {
 public:
  DecayStepper(std::int32_t node_count, radio::NodeId source,
               std::int32_t phase, std::int64_t budget,
               radio::TraceRecorder* trace)
      : InformedSetStepper(node_count, source, budget, trace), phase_(phase) {}

  bool stage_round(radio::StagingPort& port, Rng& rng) override {
    if (!another_round()) return false;
    const auto sub_round = static_cast<std::int32_t>(round_ % phase_);
    port.stage_bernoulli_pow2(informed_list_, sub_round, radio::PacketId{0},
                              rng);
    return true;
  }

 private:
  std::int32_t phase_;
};

}  // namespace

std::unique_ptr<RoundStepper> Decay::make_stepper(
    std::int32_t node_count, radio::NodeId source, double effective_loss,
    radio::TraceRecorder* trace) const {
  NRN_EXPECTS(source >= 0 && source < node_count, "source out of range");
  const std::int32_t phase = params_.phase_length > 0
                                 ? params_.phase_length
                                 : default_phase_length(node_count);
  const std::int64_t budget =
      params_.max_rounds > 0
          ? params_.max_rounds
          : default_budget(node_count, node_count, effective_loss);
  return std::make_unique<DecayStepper>(node_count, source, phase, budget,
                                        trace);
}

BroadcastRunResult Decay::run(radio::RadioNetwork& net, radio::NodeId source,
                              Rng& rng, radio::TraceRecorder* trace) const {
  auto stepper = make_stepper(net.graph().node_count(), source,
                              net.fault_model().effective_loss(), trace);
  return run_stepped(*stepper, net, rng);
}

}  // namespace nrn::core

#include "core/decay.hpp"

#include <cmath>

namespace nrn::core {

std::int32_t Decay::default_phase_length(std::int32_t node_count) {
  NRN_EXPECTS(node_count >= 1, "empty network");
  std::int32_t bits = 1;
  while ((std::int64_t{1} << bits) < node_count) ++bits;
  return bits + 1;
}

std::int64_t Decay::default_budget(std::int32_t node_count,
                                   std::int32_t diameter_hint, double p) {
  const auto phase = static_cast<std::int64_t>(default_phase_length(node_count));
  const auto log_n = static_cast<std::int64_t>(
      std::ceil(std::log2(std::max(2, node_count))));
  const double stretch = 1.0 / (1.0 - p);
  const auto base = static_cast<std::int64_t>(diameter_hint) + 4 * log_n + 32;
  return static_cast<std::int64_t>(16.0 * stretch *
                                   static_cast<double>(phase * base));
}

BroadcastRunResult Decay::run(radio::RadioNetwork& net, radio::NodeId source,
                              Rng& rng, radio::TraceRecorder* trace) const {
  const auto& g = net.graph();
  const std::int32_t n = g.node_count();
  NRN_EXPECTS(source >= 0 && source < n, "source out of range");

  const std::int32_t phase = params_.phase_length > 0
                                 ? params_.phase_length
                                 : default_phase_length(n);
  const std::int64_t budget =
      params_.max_rounds > 0
          ? params_.max_rounds
          : default_budget(n, n, net.fault_model().effective_loss());

  std::vector<char> informed(static_cast<std::size_t>(n), 0);
  std::vector<radio::NodeId> informed_list;
  informed_list.reserve(static_cast<std::size_t>(n));
  informed_list.push_back(source);
  informed[static_cast<std::size_t>(source)] = 1;

  BroadcastRunResult result;
  result.informed = 1;
  if (n == 1) {
    result.completed = true;
    return result;
  }
  const radio::PacketId message{0};

  for (std::int64_t round = 0; round < budget; ++round) {
    const std::int32_t sub_round = static_cast<std::int32_t>(round % phase);
    // Each informed node broadcasts with probability 2^-i; skip sampling
    // jumps straight to the transmitters (O(k 2^-i) draws, not O(k)).
    rng.for_each_bernoulli_pow2(
        informed_list.size(), sub_round,
        [&](std::size_t idx) { net.set_broadcast(informed_list[idx], message); });
    for (const radio::NodeId v : net.run_round().receivers()) {
      auto& flag = informed[static_cast<std::size_t>(v)];
      if (!flag) {
        flag = 1;
        informed_list.push_back(v);
      }
    }
    if (trace != nullptr)
      trace->record(net.last_round(),
                    static_cast<double>(informed_list.size()));
    result.rounds = round + 1;
    if (static_cast<std::int32_t>(informed_list.size()) == n) {
      result.completed = true;
      break;
    }
  }
  result.informed = static_cast<std::int64_t>(informed_list.size());
  return result;
}

}  // namespace nrn::core

#include "core/star_schedules.hpp"

#include <cmath>

namespace nrn::core {

MultiRunResult run_star_adaptive_routing(radio::RadioNetwork& net,
                                         const topology::Star& star,
                                         std::int64_t k,
                                         std::int64_t max_rounds) {
  NRN_EXPECTS(k >= 1, "need at least one message");
  const auto leaf_count = star.leaves.size();
  MultiRunResult result;
  result.messages = k;

  std::vector<char> has(leaf_count, 0);
  std::size_t have_count = 0;
  std::int64_t current = 0;

  for (std::int64_t round = 0; round < max_rounds; ++round) {
    net.set_broadcast(star.hub, radio::PacketId{current});
    const auto& deliveries = net.run_round();
    for (const auto& d : deliveries) {
      // Leaves are nodes 1..n; position = id - 1.
      auto& flag = has[static_cast<std::size_t>(d.receiver - 1)];
      if (!flag) {
        flag = 1;
        ++have_count;
      }
    }
    result.rounds = round + 1;
    if (have_count == leaf_count) {
      ++current;
      if (current == k) {
        result.completed = true;
        break;
      }
      std::fill(has.begin(), has.end(), 0);
      have_count = 0;
    }
  }
  return result;
}

MultiRunResult run_star_nonadaptive_routing(radio::RadioNetwork& net,
                                            const topology::Star& star,
                                            std::int64_t k, std::int64_t reps) {
  NRN_EXPECTS(k >= 1 && reps >= 1, "bad schedule parameters");
  const auto leaf_count = star.leaves.size();
  MultiRunResult result;
  result.messages = k;

  // received[leaf] counts distinct messages; per-message flags are kept per
  // current message since messages are sent in contiguous blocks.
  std::vector<std::int64_t> distinct(leaf_count, 0);
  std::vector<char> got(leaf_count, 0);

  for (std::int64_t m = 0; m < k; ++m) {
    std::fill(got.begin(), got.end(), 0);
    for (std::int64_t r = 0; r < reps; ++r) {
      net.set_broadcast(star.hub, radio::PacketId{m});
      const auto& deliveries = net.run_round();
      for (const auto& d : deliveries) {
        auto& flag = got[static_cast<std::size_t>(d.receiver - 1)];
        if (!flag) {
          flag = 1;
          ++distinct[static_cast<std::size_t>(d.receiver - 1)];
        }
      }
      ++result.rounds;
    }
  }
  result.completed = true;
  for (const auto c : distinct)
    if (c != k) {
      result.completed = false;
      break;
    }
  return result;
}

MultiRunResult run_star_rs_coding(radio::RadioNetwork& net,
                                  const topology::Star& star, std::int64_t k,
                                  std::int64_t packet_count) {
  NRN_EXPECTS(k >= 1 && packet_count >= k, "need at least k coded packets");
  const auto leaf_count = star.leaves.size();
  MultiRunResult result;
  result.messages = k;

  // Distinct coded packets per leaf; all packet ids are distinct here, so a
  // delivery is always a fresh packet for that leaf.
  std::vector<std::int64_t> received(leaf_count, 0);
  for (std::int64_t j = 0; j < packet_count; ++j) {
    net.set_broadcast(star.hub, radio::PacketId{j});
    const auto& deliveries = net.run_round();
    for (const auto& d : deliveries)
      ++received[static_cast<std::size_t>(d.receiver - 1)];
    ++result.rounds;
  }
  result.completed = true;
  for (const auto c : received)
    if (c < k) {
      result.completed = false;
      break;
    }
  return result;
}

std::int64_t rs_packet_count(std::int64_t k, std::int32_t n, double p) {
  NRN_EXPECTS(k >= 1 && n >= 1, "bad parameters");
  NRN_EXPECTS(p >= 0.0 && p < 1.0, "fault probability out of range");
  // Want P[Bin(m, 1-p) < k] <= 1/(n k): with m = (k + t)/(1 - p) the
  // Chernoff lower-tail bound gives exp(-t^2 / (2(k + t))); solving
  // t^2 = 2 (k + t) ln(nk) conservatively with t = 2 ln(nk) + sqrt(4 k ln(nk)).
  const double lnk = std::log(static_cast<double>(n) * static_cast<double>(k) +
                              2.0);
  const double t = 2.0 * lnk + std::sqrt(4.0 * static_cast<double>(k) * lnk);
  return static_cast<std::int64_t>(
      std::ceil((static_cast<double>(k) + t) / (1.0 - p)));
}

}  // namespace nrn::core

// Throughput estimation harness (paper Definition 1).
//
// Topology throughput is defined as a k -> infinity limit over schedules
// that succeed with probability >= 1 - 1/k.  Experiments approximate it by
// sweeping k, running repeated seeded trials of a schedule, and reporting
// the median rounds-per-message together with the success rate; the paper's
// asymptotic claims then become checks on the fitted trend (e.g.
// rounds/message ~ c log n on the star under adaptive routing).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/run_result.hpp"

namespace nrn::core {

/// Schedule under measurement: runs one trial at message count k.
using ScheduleFn = std::function<MultiRunResult(std::int64_t k, Rng& rng)>;

struct ThroughputPoint {
  std::int64_t k = 0;
  double median_rounds = 0.0;
  double rounds_per_message = 0.0;
  double success_rate = 0.0;
  double throughput = 0.0;  ///< k / median_rounds
};

/// Runs `trials` independent trials of `schedule` at each k; trial t uses
/// the child stream rng.split(t) so points are independent but reproducible.
std::vector<ThroughputPoint> sweep_throughput(
    const ScheduleFn& schedule, const std::vector<std::int64_t>& ks,
    int trials, Rng& rng);

/// Convenience for gap tables: ratio of two schedules' rounds-per-message
/// at matched k (routing over coding = the coding gap).
double gap_at(const std::vector<ThroughputPoint>& routing,
              const std::vector<ThroughputPoint>& coding, std::size_t index);

}  // namespace nrn::core

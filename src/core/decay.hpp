// The Decay algorithm (Bar-Yehuda, Goldreich, Itai [5]; paper Section 3.4.1).
//
// Rounds are grouped into phases of `phase_length` rounds.  In round i of a
// phase (i = 0, 1, ...), every informed node broadcasts the message
// independently with probability 2^-i.  If a listening node has between
// 2^i and 2^(i+1) informed neighbors, the round-i sub-round delivers with
// constant probability (Lemma 5), so a phase informs each frontier node
// with constant probability -- and, with fault probability p, with
// probability c(1-p) (Lemma 9).  Decay needs no topology knowledge and is
// the paper's exemplar of an algorithm that stays robust under noise.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "core/run_result.hpp"
#include "core/stepper.hpp"
#include "radio/network.hpp"
#include "radio/trace.hpp"

namespace nrn::core {

struct DecayParams {
  /// Rounds per phase; 0 selects ceil(log2 n) + 1.
  std::int32_t phase_length = 0;
  /// Round budget; 0 selects a generous multiple of the Lemma 9 bound.
  std::int64_t max_rounds = 0;
};

class Decay {
 public:
  explicit Decay(DecayParams params = {}) : params_(params) {}

  /// Broadcasts one message from `source` until every node is informed or
  /// the budget runs out.  Algorithm coins come from `rng`; fault coins
  /// come from the network's own stream.  Implemented as run_stepped over
  /// make_stepper, so scalar and lockstep execution share one schedule.
  BroadcastRunResult run(radio::RadioNetwork& net, radio::NodeId source,
                         Rng& rng, radio::TraceRecorder* trace = nullptr) const;

  /// The schedule as a RoundStepper (core/stepper.hpp): `effective_loss`
  /// feeds the default budget exactly as run() derives it from the
  /// network's fault model.
  std::unique_ptr<RoundStepper> make_stepper(
      std::int32_t node_count, radio::NodeId source, double effective_loss,
      radio::TraceRecorder* trace = nullptr) const;

  /// ceil(log2 n) + 1, the canonical phase length.
  static std::int32_t default_phase_length(std::int32_t node_count);

  /// Budget implied by Lemma 9 with slack: c * phase * (D + log n) / (1-p).
  static std::int64_t default_budget(std::int32_t node_count,
                                     std::int32_t diameter_hint, double p);

 private:
  DecayParams params_;
};

}  // namespace nrn::core

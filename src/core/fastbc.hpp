// FASTBC (Gasieniec, Peleg, Xin [22]; paper Section 3.4.2).
//
// Known-topology, diameter-linear single-message broadcast.  A GBST is
// agreed upon in advance.  Rounds alternate:
//   * slow rounds (odd): a standard Decay step over all informed nodes,
//     pushing the message across non-fast edges;
//   * fast rounds (even, index t): informed *fast* nodes at level l and
//     rank r broadcast iff t = l - 6r (mod 6 * rank_modulus); the GBST
//     property makes these waves collision-free, so a message entering a
//     fast stretch rides to its tail in D_i + O(log n) rounds.
//
// In the faultless model this gives D + O(log^2 n) (Lemma 8).  Under
// constant-probability faults the wave loses its payload with probability
// p per hop and must wait ~6*rank_modulus = Theta(log n) fast rounds for
// the next wave, which is exactly the Theta(p/(1-p) D log n + D/(1-p))
// degradation of Lemma 10 -- reproduced by bench_e4.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "core/run_result.hpp"
#include "core/stepper.hpp"
#include "radio/network.hpp"
#include "radio/trace.hpp"
#include "trees/gbst.hpp"

namespace nrn::core {

struct FastbcParams {
  /// Modulus for the fast-round schedule; 0 selects ceil(log2 n) (the
  /// Lemma 7 bound -- the schedule must not depend on the realized ranks).
  std::int32_t rank_modulus = 0;
  /// Decay phase length for slow rounds; 0 selects ceil(log2 n) + 1.
  std::int32_t decay_phase = 0;
  /// Round budget; 0 selects a generous multiple of the Lemma 10 bound.
  std::int64_t max_rounds = 0;
};

class Fastbc {
 public:
  /// Builds the GBST for (g, source) up front (known-topology assumption).
  /// The graph must outlive the algorithm object.
  Fastbc(const graph::Graph& g, radio::NodeId source, FastbcParams params = {});

  const trees::RankedBfsTree& tree() const { return tree_; }
  const trees::GbstBuildStats& tree_stats() const { return tree_stats_; }
  std::int32_t rank_modulus() const { return rank_modulus_; }

  /// Runs the alternating schedule until everyone is informed or the
  /// budget is exhausted.  Implemented as run_stepped over make_stepper.
  BroadcastRunResult run(radio::RadioNetwork& net, Rng& rng,
                         radio::TraceRecorder* trace = nullptr) const;

  /// The schedule as a RoundStepper; `effective_loss` feeds the default
  /// budget exactly as run() derives it from the network's fault model.
  /// The algorithm object (it owns the GBST) must outlive the stepper.
  std::unique_ptr<RoundStepper> make_stepper(
      double effective_loss, radio::TraceRecorder* trace = nullptr) const;

 private:
  const graph::Graph* graph_;
  radio::NodeId source_;
  FastbcParams params_;
  trees::RankedBfsTree tree_;
  trees::GbstBuildStats tree_stats_;
  std::int32_t rank_modulus_;
  std::int32_t decay_phase_;
};

}  // namespace nrn::core

// Star-topology schedules (paper Section 5.1.1).
//
// Receiver faults turn the star into the paper's cleanest coding-gap
// witness:
//   * adaptive routing (Lemma 15): the hub broadcasts message i until every
//     leaf has it; the last of n leaves costs ~log_{1/p} n rounds per
//     message, so throughput is Theta(1/log n);
//   * Reed-Solomon coding (Lemma 16): the hub streams m coded packets such
//     that every leaf collects >= k of them w.h.p.; m = O(k + log n), so
//     throughput is Theta(1);
//   * non-adaptive routing repeats each message a fixed count (used by the
//     adaptivity ablation).
//
// All schedules run in counting mode (packet ids, no payloads); the RS
// any-k-of-m property is exercised with real payloads by the coding tests.
#pragma once

#include <cstdint>

#include "core/run_result.hpp"
#include "radio/network.hpp"
#include "topology/star.hpp"

namespace nrn::core {

/// Lemma 15's achievable side.  Sends messages 0..k-1 in order, each until
/// all leaves received it (the hub adapts using full reception feedback).
MultiRunResult run_star_adaptive_routing(radio::RadioNetwork& net,
                                         const topology::Star& star,
                                         std::int64_t k,
                                         std::int64_t max_rounds);

/// Non-adaptive routing: each message exactly `reps` times.
/// completed = every leaf got every message.
MultiRunResult run_star_nonadaptive_routing(radio::RadioNetwork& net,
                                            const topology::Star& star,
                                            std::int64_t k, std::int64_t reps);

/// Lemma 16's coded schedule: the hub streams `packet_count` distinct coded
/// packets; completed = every leaf received at least k distinct packets
/// (the Reed-Solomon reconstruction condition).
MultiRunResult run_star_rs_coding(radio::RadioNetwork& net,
                                  const topology::Star& star, std::int64_t k,
                                  std::int64_t packet_count);

/// Packet count sufficient for the coded schedule to succeed w.h.p.:
/// (k + Chernoff slack for failure probability ~1/(nk)) / (1 - p).
std::int64_t rs_packet_count(std::int64_t k, std::int32_t n, double p);

}  // namespace nrn::core

#include "core/transforms.hpp"

#include <cmath>

namespace nrn::core {

std::vector<BaseAction> PathPipelineBaseSchedule::actions(
    std::int64_t r) const {
  // Node j relays message m at base round 3m + j.
  std::vector<BaseAction> out;
  // j = r - 3m with 0 <= j < n-1 (the last node never relays forward).
  for (std::int64_t m = std::max<std::int64_t>(0, (r - (n_ - 2) + 2) / 3);
       m <= std::min<std::int64_t>(k0_ - 1, r / 3); ++m) {
    const std::int64_t j = r - 3 * m;
    if (j >= 0 && j < n_ - 1) out.emplace_back(static_cast<radio::NodeId>(j), m);
  }
  return out;
}

namespace {

std::int64_t meta_length(const TransformParams& params, double p) {
  return static_cast<std::int64_t>(
      std::ceil(static_cast<double>(params.x) * (1.0 + params.eta) /
                (1.0 - p)));
}

}  // namespace

TransformResult run_routing_transform(radio::RadioNetwork& net,
                                      const BaseSchedule& base,
                                      const TransformParams& params,
                                      Rng& rng) {
  (void)rng;  // the routing transform is deterministic given the fault tape
  NRN_EXPECTS(params.x >= 1 && params.x <= 64,
              "x must fit the sub-message bitmask");
  const std::int32_t n = net.graph().node_count();
  const std::int64_t k0 = base.base_messages();
  const std::int64_t x = params.x;
  const std::int64_t T = meta_length(params, net.fault_model().effective_loss());

  // received[v][m] is a bitmask of sub-messages; node 0 knows everything.
  const auto full = x == 64 ? ~std::uint64_t{0}
                            : ((std::uint64_t{1} << x) - 1);
  std::vector<std::vector<std::uint64_t>> received(
      static_cast<std::size_t>(n),
      std::vector<std::uint64_t>(static_cast<std::size_t>(k0), 0));
  for (auto& m : received[0]) m = full;

  TransformResult out;
  out.meta_length = T;
  out.run.messages = k0 * x;
  bool cascade_ok = true;

  struct LiveAction {
    radio::NodeId node;
    std::int64_t msg;
    std::int64_t next_sub = 0;  // next sub-message to deliver
  };

  for (std::int64_t r = 0; r < base.rounds(); ++r) {
    std::vector<LiveAction> live;
    for (const auto& [b, m] : base.actions(r)) {
      if (received[static_cast<std::size_t>(b)][static_cast<std::size_t>(m)] !=
          full) {
        cascade_ok = false;  // the base schedule's premise failed upstream
        continue;
      }
      live.push_back(LiveAction{b, m, 0});
    }
    for (std::int64_t step = 0; step < T; ++step) {
      for (const auto& a : live)
        if (a.next_sub < x)
          net.set_broadcast(a.node, radio::PacketId{a.msg * x + a.next_sub});
      const auto& deliveries = net.run_round();
      ++out.run.rounds;
      for (const auto& d : deliveries) {
        const std::int64_t m = d.packet.id / x;
        const std::int64_t s = d.packet.id % x;
        received[static_cast<std::size_t>(d.receiver)]
                [static_cast<std::size_t>(m)] |= (std::uint64_t{1} << s);
        // Adaptive feedback: the sender observed a clean transmission.
        for (auto& a : live)
          if (a.node == d.sender && a.msg == m && a.next_sub == s)
            ++a.next_sub;
      }
    }
    for (const auto& a : live)
      if (a.next_sub < x) cascade_ok = false;
  }

  bool all_know = cascade_ok;
  for (std::int32_t v = 0; v < n && all_know; ++v)
    for (std::int64_t m = 0; m < k0; ++m)
      if (received[static_cast<std::size_t>(v)][static_cast<std::size_t>(m)] !=
          full) {
        all_know = false;
        break;
      }
  out.run.completed = all_know;
  if (out.run.completed && out.run.rounds > 0)
    out.measured_throughput = static_cast<double>(out.run.messages) /
                              static_cast<double>(out.run.rounds);
  return out;
}

TransformResult run_coding_transform(radio::RadioNetwork& net,
                                     const BaseSchedule& base,
                                     const TransformParams& params, Rng& rng) {
  (void)rng;  // non-adaptive: all randomness is the network's fault tape
  NRN_EXPECTS(params.x >= 1, "x must be positive");
  const std::int32_t n = net.graph().node_count();
  const std::int64_t k0 = base.base_messages();
  const std::int64_t x = params.x;
  const std::int64_t T = meta_length(params, net.fault_model().effective_loss());

  std::vector<std::vector<char>> knows(
      static_cast<std::size_t>(n),
      std::vector<char>(static_cast<std::size_t>(k0), 0));
  for (auto& m : knows[0]) m = 1;

  TransformResult out;
  out.meta_length = T;
  out.run.messages = k0 * x;
  bool cascade_ok = true;

  std::vector<std::int64_t> count(static_cast<std::size_t>(n), 0);
  std::vector<std::int64_t> msg_of(static_cast<std::size_t>(n), -1);

  for (std::int64_t r = 0; r < base.rounds(); ++r) {
    std::vector<BaseAction> live;
    for (const auto& [b, m] : base.actions(r)) {
      if (!knows[static_cast<std::size_t>(b)][static_cast<std::size_t>(m)]) {
        cascade_ok = false;
        continue;
      }
      live.emplace_back(b, m);
    }
    std::fill(count.begin(), count.end(), 0);
    std::fill(msg_of.begin(), msg_of.end(), -1);
    for (std::int64_t step = 0; step < T; ++step) {
      // Non-adaptive: every live broadcaster streams for the whole
      // meta-round; the packet id names the base message.
      for (const auto& [b, m] : live) net.set_broadcast(b, radio::PacketId{m});
      const auto& deliveries = net.run_round();
      ++out.run.rounds;
      for (const auto& d : deliveries) {
        ++count[static_cast<std::size_t>(d.receiver)];
        msg_of[static_cast<std::size_t>(d.receiver)] = d.packet.id;
      }
    }
    // A receiver that caught >= x coded packets reconstructs the x
    // sub-instances of its neighbor's base message (any-x-of-T).
    for (std::int32_t v = 0; v < n; ++v) {
      if (count[static_cast<std::size_t>(v)] >= x &&
          msg_of[static_cast<std::size_t>(v)] >= 0) {
        knows[static_cast<std::size_t>(v)]
             [static_cast<std::size_t>(msg_of[static_cast<std::size_t>(v)])] =
                 1;
      }
    }
  }

  bool all_know = cascade_ok;
  for (std::int32_t v = 0; v < n && all_know; ++v)
    for (std::int64_t m = 0; m < k0; ++m)
      if (!knows[static_cast<std::size_t>(v)][static_cast<std::size_t>(m)]) {
        all_know = false;
        break;
      }
  out.run.completed = all_know;
  if (out.run.completed && out.run.rounds > 0)
    out.measured_throughput = static_cast<double>(out.run.messages) /
                              static_cast<double>(out.run.rounds);
  return out;
}

}  // namespace nrn::core

// Round steppers: a broadcast protocol's per-round logic (stage, then
// absorb the deliveries) factored out of its run() loop, so the identical
// implementation drives both execution engines:
//
//   * scalar  -- run_stepped() loops one stepper against one RadioNetwork;
//     Decay::run / Fastbc::run / RobustFastbc::run are thin wrappers over
//     this, so the stepper IS the protocol, not a parallel reimplementation;
//   * lockstep -- the Driver banks up to LockstepNetwork::kMaxLanes trials
//     of one scenario, steps each trial's stepper once per bank round, and
//     executes all lanes' rounds in a single shared adjacency pass.
//
// Because both engines run the same stepper against the same per-trial
// seeds and the v4 coin tape is counter-based (one salt draw per active
// round per lane), lockstep trial outcomes are bit-identical to sequential
// scalar trials -- asserted protocol-by-protocol in tests/test_lockstep.cpp.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "core/run_result.hpp"
#include "radio/staging.hpp"
#include "radio/trace.hpp"

namespace nrn::core {

/// One trial's round-by-round protocol logic.  The engine drives the cycle
///   while (stage_round(port, rng)) { <execute round>; if (absorb_round(...)) break; }
/// and then reads result().  stage_round returns false -- staging nothing
/// and drawing no coins -- when the round budget is exhausted (or the run
/// was complete before the first round, e.g. n == 1); absorb_round returns
/// true when the broadcast completed this round.
class RoundStepper {
 public:
  virtual ~RoundStepper() = default;

  virtual bool stage_round(radio::StagingPort& port, Rng& rng) = 0;

  virtual bool absorb_round(std::span<const radio::NodeId> receivers,
                            const radio::RoundStats& stats) = 0;

  virtual BroadcastRunResult result() const = 0;
};

/// Shared state of the informed-set protocols (Decay, FASTBC, Robust
/// FASTBC): the informed flags and list, the executed-round counter, the
/// completion flag, and the per-round trace record.  Subclasses implement
/// stage_round and read informed_list_ / round_ for their schedules.
class InformedSetStepper : public RoundStepper {
 public:
  InformedSetStepper(std::int32_t node_count, radio::NodeId source,
                     std::int64_t budget, radio::TraceRecorder* trace)
      : n_(node_count), budget_(budget), trace_(trace) {
    NRN_EXPECTS(source >= 0 && source < n_, "source out of range");
    informed_.assign(static_cast<std::size_t>(n_), 0);
    informed_list_.reserve(static_cast<std::size_t>(n_));
    informed_list_.push_back(source);
    informed_[static_cast<std::size_t>(source)] = 1;
    completed_ = n_ == 1;
  }

  bool absorb_round(std::span<const radio::NodeId> receivers,
                    const radio::RoundStats& stats) override {
    for (const radio::NodeId v : receivers) {
      auto& flag = informed_[static_cast<std::size_t>(v)];
      if (!flag) {
        flag = 1;
        informed_list_.push_back(v);
      }
    }
    if (trace_ != nullptr)
      trace_->record(stats, static_cast<double>(informed_list_.size()));
    ++round_;
    if (static_cast<std::int32_t>(informed_list_.size()) == n_)
      completed_ = true;
    return completed_;
  }

  BroadcastRunResult result() const override {
    BroadcastRunResult r;
    r.completed = completed_;
    r.rounds = round_;
    r.informed = static_cast<std::int64_t>(informed_list_.size());
    return r;
  }

 protected:
  /// True while another round may run; stage_round implementations gate on
  /// this before staging.
  bool another_round() const { return !completed_ && round_ < budget_; }

  std::int32_t n_;
  std::int64_t budget_;
  std::int64_t round_ = 0;  ///< rounds executed so far; the next round index
  bool completed_ = false;
  std::vector<char> informed_;
  std::vector<radio::NodeId> informed_list_;
  radio::TraceRecorder* trace_;
};

/// The scalar engine loop: steps `stepper` against `net` until the budget
/// runs out or the broadcast completes, and returns the stepper's result.
BroadcastRunResult run_stepped(RoundStepper& stepper, radio::RadioNetwork& net,
                               Rng& rng);

}  // namespace nrn::core

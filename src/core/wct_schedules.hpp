// Schedules for the worst-case topology WCT (paper Section 5.1.2).
//
// Routing on WCT uses the generic layered pipeline (bipartite_pipeline.hpp):
// with receiver faults each cluster behaves like a star of ~sqrt(n) nodes
// and pays Theta(log n) unique receptions per message while only an
// O(1/log n) fraction of clusters is uniquely served per round --
// Theta(1/log^2 n) throughput (Lemma 19/21/22).
//
// The coded schedule here realizes the Theta(1/log n) coding side
// (Lemma 23): the source streams Reed-Solomon packets to the senders (one
// fresh packet per round, collision-free), after which the senders replay a
// Decay pattern broadcasting globally-distinct coded packets; every unique
// reception hands a cluster member a fresh packet, and a member is done
// once it holds k distinct packets (the any-k-of-m property).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "core/run_result.hpp"
#include "radio/network.hpp"
#include "topology/wct.hpp"

namespace nrn::core {

struct WctCodedParams {
  std::int64_t k = 1;
  std::int32_t decay_phase = 0;  ///< 0 => ceil(log2 #senders) + 1
  std::int64_t max_rounds = 0;   ///< 0 => theory bound with slack
};

/// Runs the coded WCT schedule; completed = every cluster member holds at
/// least k distinct coded packets.
MultiRunResult run_wct_rs_coding(radio::RadioNetwork& net,
                                 const topology::WctNetwork& wct,
                                 const WctCodedParams& params, Rng& rng);

}  // namespace nrn::core

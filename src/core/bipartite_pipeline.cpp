#include "core/bipartite_pipeline.hpp"

#include <cmath>

#include "core/decay.hpp"
#include "graph/algorithms.hpp"

namespace nrn::core {

namespace {

/// Progress state of one layer boundary within the current meta-round.
struct BoundaryWork {
  bool active = false;
  std::int64_t batch = -1;
  std::int64_t next_in_batch = 0;  ///< index within the batch
  std::int64_t local_round = 0;    ///< Decay clock for the current message
  std::int64_t remaining_targets = 0;
};

}  // namespace

MultiRunResult run_layered_pipeline_routing(radio::RadioNetwork& net,
                                            radio::NodeId source,
                                            const PipelineParams& params,
                                            Rng& rng) {
  const auto& g = net.graph();
  const std::int32_t n = g.node_count();
  NRN_EXPECTS(params.k >= 1, "need at least one message");

  const auto layers = graph::bfs_layers(g, source);
  const auto depth = static_cast<std::int64_t>(layers.size()) - 1;
  NRN_EXPECTS(depth >= 1, "pipeline needs at least one boundary");
  const std::int64_t k = params.k;
  const std::int64_t batch_size =
      params.batch > 0 ? params.batch
                       : (k + std::max<std::int64_t>(depth, 1) - 1) /
                             std::max<std::int64_t>(depth, 1);
  const std::int64_t batches = (k + batch_size - 1) / batch_size;

  const std::int32_t phase = params.decay_phase > 0
                                 ? params.decay_phase
                                 : Decay::default_phase_length(n);
  const double p = net.fault_model().effective_loss();
  const std::int64_t meta_cap =
      params.meta_round_cap > 0
          ? params.meta_round_cap
          : static_cast<std::int64_t>(
                std::ceil(16.0 / (1.0 - p) * static_cast<double>(batch_size) *
                          phase * (phase + 8.0)));

  // layer index per node, -1 outside the BFS cone (connected => none).
  std::vector<std::int32_t> layer_of(static_cast<std::size_t>(n), -1);
  for (std::size_t i = 0; i < layers.size(); ++i)
    for (const auto u : layers[i])
      layer_of[static_cast<std::size_t>(u)] = static_cast<std::int32_t>(i);

  // has[u] bitset over messages.
  std::vector<std::vector<char>> has(
      static_cast<std::size_t>(n),
      std::vector<char>(static_cast<std::size_t>(k), 0));
  for (std::int64_t m = 0; m < k; ++m)
    has[static_cast<std::size_t>(source)][static_cast<std::size_t>(m)] = 1;

  MultiRunResult result;
  result.messages = k;
  bool any_cap_hit = false;

  std::vector<BoundaryWork> work(static_cast<std::size_t>(depth));
  const std::int64_t total_metas = 3 * (batches - 1) + depth;
  std::vector<radio::NodeId> senders;  // per-boundary staging scratch
  senders.reserve(static_cast<std::size_t>(n));

  for (std::int64_t meta = 0; meta < total_metas; ++meta) {
    // Activate boundaries for this meta-round: boundary i runs batch
    // (meta - i) / 3 when divisible and in range.
    for (std::int64_t i = 0; i < depth; ++i) {
      auto& w = work[static_cast<std::size_t>(i)];
      w.active = false;
      if (meta < i || (meta - i) % 3 != 0) continue;
      const std::int64_t j = (meta - i) / 3;
      if (j < 0 || j >= batches) continue;
      w.active = true;
      w.batch = j;
      w.next_in_batch = 0;
      w.local_round = 0;
      w.remaining_targets = -1;  // computed lazily per message
    }

    for (std::int64_t step = 0; step < meta_cap; ++step) {
      bool someone_active = false;
      // Stage broadcasts for every still-active boundary.
      for (std::int64_t i = 0; i < depth; ++i) {
        auto& w = work[static_cast<std::size_t>(i)];
        if (!w.active) continue;
        const std::int64_t msg =
            w.batch * batch_size + w.next_in_batch;
        if (w.next_in_batch >= batch_size || msg >= k) {
          w.active = false;
          continue;
        }
        if (w.remaining_targets < 0) {
          w.remaining_targets = 0;
          for (const auto v : layers[static_cast<std::size_t>(i) + 1])
            if (!has[static_cast<std::size_t>(v)]
                    [static_cast<std::size_t>(msg)])
              ++w.remaining_targets;
          if (w.remaining_targets == 0) {
            ++w.next_in_batch;
            w.local_round = 0;
            w.remaining_targets = -1;
            // Re-examine this boundary next step.
            someone_active = true;
            continue;
          }
        }
        someone_active = true;
        const auto sub =
            static_cast<std::int32_t>(w.local_round % phase);
        const auto& layer = layers[static_cast<std::size_t>(i)];
        // Gather the selected holders of `msg`, then bulk-stage the
        // boundary's broadcasts in one call.
        senders.clear();
        rng.for_each_bernoulli_pow2(layer.size(), sub, [&](std::size_t li) {
          const auto u = layer[li];
          if (!has[static_cast<std::size_t>(u)][static_cast<std::size_t>(msg)])
            return;
          senders.push_back(u);
        });
        net.stage_broadcasts(senders, radio::PacketId{msg});
        ++w.local_round;
      }
      if (!someone_active) break;

      const auto& deliveries = net.run_round();
      ++result.rounds;
      for (const auto& d : deliveries) {
        auto& flag =
            has[static_cast<std::size_t>(d.receiver)]
               [static_cast<std::size_t>(d.packet.id)];
        if (flag) continue;
        flag = 1;
        // Credit the boundary waiting on this (receiver-layer, message).
        const std::int32_t rl = layer_of[static_cast<std::size_t>(d.receiver)];
        if (rl >= 1) {
          auto& w = work[static_cast<std::size_t>(rl) - 1];
          const std::int64_t msg = w.batch * batch_size + w.next_in_batch;
          if (w.active && msg == d.packet.id && w.remaining_targets > 0) {
            if (--w.remaining_targets == 0) {
              ++w.next_in_batch;
              w.local_round = 0;
              w.remaining_targets = -1;
            }
          }
        }
      }
    }
    for (std::int64_t i = 0; i < depth; ++i)
      if (work[static_cast<std::size_t>(i)].active) any_cap_hit = true;
  }

  result.completed = !any_cap_hit;
  for (std::int32_t u = 0; u < n && result.completed; ++u)
    for (std::int64_t m = 0; m < k; ++m)
      if (!has[static_cast<std::size_t>(u)][static_cast<std::size_t>(m)]) {
        result.completed = false;
        break;
      }
  return result;
}

}  // namespace nrn::core

// Layered adaptive-routing pipeline (paper Lemmas 20 and 21).
//
// Any broadcast instance decomposes into bipartite hops between consecutive
// BFS layers.  The schedule splits the k messages into batches, and in
// meta-round m the boundary between layers i and i+1 works on batch
// j = (m - i) / 3 (when integral): boundary i pushes its current batch
// message with Decay steps over the layer-i nodes that hold it, repeating
// adaptively until every layer-(i+1) node has it.  Working boundaries sit
// 3 layers apart, so their transmissions cannot interfere (receivers of
// boundary i are >= 2 hops from the broadcasters of boundary i+3).
//
// With receiver faults, each boundary costs O(log^2 n) rounds per message
// (Decay with a 1/(1-p) stretch), which is the paper's
// Theta(1/log^2 n) worst-case adaptive-routing throughput -- measured on
// WCT by bench_e8.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "core/run_result.hpp"
#include "radio/network.hpp"

namespace nrn::core {

struct PipelineParams {
  std::int64_t k = 1;          ///< messages to broadcast
  std::int64_t batch = 0;      ///< k' per batch; 0 => ceil(k / max(D,1))
  std::int32_t decay_phase = 0;    ///< 0 => ceil(log2 n) + 1
  std::int64_t meta_round_cap = 0; ///< rounds a meta-round may take; 0 => auto
};

/// Runs the pipelined schedule from `source`; completed = every node holds
/// every message and no meta-round hit its cap.
MultiRunResult run_layered_pipeline_routing(radio::RadioNetwork& net,
                                            radio::NodeId source,
                                            const PipelineParams& params,
                                            Rng& rng);

}  // namespace nrn::core

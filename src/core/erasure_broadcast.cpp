#include "core/erasure_broadcast.hpp"

#include <algorithm>
#include <cmath>

#include "coding/rs256.hpp"
#include "core/decay.hpp"

namespace nrn::core {

namespace {

std::int32_t ceil_log2(std::int64_t n) {
  std::int32_t bits = 0;
  while ((std::int64_t{1} << bits) < n) ++bits;
  return std::max(bits, 1);
}

}  // namespace

std::int64_t ErasureBroadcast::default_packet_count(std::int64_t n,
                                                    std::int64_t k) {
  return k + 4 * ceil_log2(std::max<std::int64_t>(2, n * k)) + 8;
}

ErasureBroadcast::ErasureBroadcast(const graph::Graph& g, radio::NodeId source,
                                   ErasureParams params)
    : graph_(&g), source_(source), params_(params) {
  NRN_EXPECTS(params.k >= 1, "need at least one message");
  NRN_EXPECTS(params.block_len >= 1, "need a positive payload length");
  const std::int64_t n = g.node_count();
  decay_phase_ = params.decay_phase > 0
                     ? params.decay_phase
                     : Decay::default_phase_length(g.node_count());
  // Any k of m packets reconstruct; m = k + Theta(log nk) slack makes the
  // per-node coupon collection succeed w.h.p.
  const auto k = static_cast<std::int64_t>(params.k);
  packet_count_ = params.packet_count > 0 ? params.packet_count
                                          : default_packet_count(n, k);
  NRN_EXPECTS(k < packet_count_, "packet count must exceed k");
  NRN_EXPECTS(packet_count_ <= coding::Rs256::max_packets(),
              "k plus slack exceeds the GF(256) packet domain (255)");
}

MultiRunResult ErasureBroadcast::run_and_verify(
    radio::RadioNetwork& net, Rng& rng,
    const std::vector<std::vector<std::uint8_t>>& messages) const {
  NRN_EXPECTS(&net.graph() == graph_, "network built on a different graph");
  NRN_EXPECTS(messages.size() == params_.k, "message count mismatch");
  const std::int32_t n = graph_->node_count();
  const auto k = static_cast<std::int64_t>(params_.k);
  const double p = net.fault_model().effective_loss();
  const std::int32_t log_n = ceil_log2(n);

  const coding::Rs256 codec(params_.k, params_.block_len);
  const auto coded =
      codec.encode(messages, static_cast<std::uint32_t>(packet_count_));

  const std::int64_t budget =
      params_.max_rounds > 0
          ? params_.max_rounds
          : static_cast<std::int64_t>(
                32.0 / (1.0 - p) *
                (static_cast<double>(n) +
                 static_cast<double>(packet_count_ + 8LL * log_n) *
                     decay_phase_));

  // Per-node reception state: which coded packets a node holds, in arrival
  // order, plus a round-robin forwarding cursor.  Store-and-forward: nodes
  // relay packet indices, never re-encode.
  std::vector<std::vector<std::uint32_t>> held(static_cast<std::size_t>(n));
  std::vector<std::vector<char>> has(
      static_cast<std::size_t>(n),
      std::vector<char>(static_cast<std::size_t>(packet_count_), 0));
  std::vector<std::size_t> cursor(static_cast<std::size_t>(n), 0);

  const auto si = static_cast<std::size_t>(source_);
  held[si].reserve(static_cast<std::size_t>(packet_count_));
  for (std::int64_t j = 0; j < packet_count_; ++j) {
    held[si].push_back(static_cast<std::uint32_t>(j));
    has[si][static_cast<std::size_t>(j)] = 1;
  }

  std::int32_t complete_count = 1;  // the source
  std::vector<char> complete(static_cast<std::size_t>(n), 0);
  complete[si] = 1;

  // Staging scratch: the round's selected relayers and what each forwards,
  // bulk-staged in one call after the selection pass.
  std::vector<radio::NodeId> senders;
  std::vector<radio::PacketId> packet_ids;
  senders.reserve(static_cast<std::size_t>(n));
  packet_ids.reserve(static_cast<std::size_t>(n));

  MultiRunResult result;
  result.messages = k;
  if (complete_count == n) {
    result.completed = true;
  } else {
    for (std::int64_t round = 0; round < budget; ++round) {
      const auto sub = static_cast<std::int32_t>(round % decay_phase_);
      senders.clear();
      packet_ids.clear();
      rng.for_each_bernoulli_pow2(
          static_cast<std::size_t>(n), sub, [&](std::size_t ui) {
            if (held[ui].empty()) return;
            // Round-robin over the held set: consecutive successful
            // receptions from the same sender are distinct packets.
            const std::uint32_t pkt = held[ui][cursor[ui] % held[ui].size()];
            ++cursor[ui];
            senders.push_back(static_cast<radio::NodeId>(ui));
            packet_ids.push_back(static_cast<radio::PacketId>(pkt));
          });
      net.stage_broadcasts(senders, packet_ids);

      const auto& deliveries = net.run_round();
      for (const auto& d : deliveries) {
        const auto ri = static_cast<std::size_t>(d.receiver);
        const auto idx = static_cast<std::size_t>(d.packet.id);
        if (has[ri][idx]) continue;
        has[ri][idx] = 1;
        held[ri].push_back(static_cast<std::uint32_t>(d.packet.id));
        if (static_cast<std::int64_t>(held[ri].size()) == k &&
            !complete[ri]) {
          complete[ri] = 1;
          ++complete_count;
        }
      }
      result.rounds = round + 1;
      if (complete_count == n) {
        result.completed = true;
        break;
      }
    }
  }

  if (result.completed) {
    // Decode at every node and check the payloads; any mismatch voids the
    // run (this is what kVerifiedPayload certifies).
    std::vector<coding::Rs256Packet> pkts;
    for (std::int32_t u = 0; u < n; ++u) {
      const auto ui = static_cast<std::size_t>(u);
      pkts.clear();
      pkts.reserve(held[ui].size());
      for (const std::uint32_t j : held[ui]) pkts.push_back(coded[j]);
      if (codec.decode(pkts) != messages) {
        result.completed = false;
        break;
      }
    }
  }
  return result;
}

}  // namespace nrn::core

#include "core/multi_message.hpp"

#include <cmath>

#include "core/decay.hpp"
#include "trees/gbst.hpp"

namespace nrn::core {

namespace {

std::int32_t ceil_log2(std::int32_t n) {
  std::int32_t bits = 0;
  while ((std::int64_t{1} << bits) < n) ++bits;
  return std::max(bits, 1);
}

}  // namespace

RlncBroadcast::RlncBroadcast(const graph::Graph& g, radio::NodeId source,
                             MultiMessageParams params)
    : graph_(&g), source_(source), params_(params) {
  NRN_EXPECTS(params.k >= 1, "need at least one message");
  decay_phase_ = params.decay_phase > 0
                     ? params.decay_phase
                     : Decay::default_phase_length(g.node_count());
  if (params.pattern == MultiPattern::kRobustFastbc) {
    tree_ = trees::build_gbst(g, source, nullptr);
    const std::int32_t log_n = ceil_log2(g.node_count());
    block_size_ = params.block_size > 0
                      ? params.block_size
                      : std::max<std::int32_t>(
                            2, 2 * ceil_log2(std::max<std::int32_t>(2, log_n)));
    window_multiplier_ =
        params.window_multiplier > 0 ? params.window_multiplier : 8;
    rank_modulus_ = log_n;
    NRN_EXPECTS(tree_.max_rank <= rank_modulus_, "rank modulus too small");
  }
}

MultiRunResult RlncBroadcast::run(radio::RadioNetwork& net, Rng& rng) const {
  return run_impl(net, rng, nullptr);
}

MultiRunResult RlncBroadcast::run_and_verify(
    radio::RadioNetwork& net, Rng& rng,
    const std::vector<std::vector<std::uint8_t>>& messages) const {
  NRN_EXPECTS(params_.block_len > 0, "verification requires payload mode");
  return run_impl(net, rng, &messages);
}

MultiRunResult RlncBroadcast::run_impl(
    radio::RadioNetwork& net, Rng& rng,
    const std::vector<std::vector<std::uint8_t>>* messages) const {
  NRN_EXPECTS(&net.graph() == graph_, "network built on a different graph");
  const std::int32_t n = graph_->node_count();
  const auto k = params_.k;
  const double p = net.fault_model().effective_loss();
  const std::int32_t log_n = ceil_log2(n);

  const std::int64_t budget =
      params_.max_rounds > 0
          ? params_.max_rounds
          : static_cast<std::int64_t>(
                32.0 / (1.0 - p) *
                (static_cast<double>(n) +
                 static_cast<double>(k + 8ULL * log_n) * decay_phase_ *
                     (params_.pattern == MultiPattern::kRobustFastbc
                          ? std::max<std::int32_t>(2, block_size_)
                          : 1)));

  // Per-node decoder state.
  std::vector<coding::RlncState> state;
  state.reserve(static_cast<std::size_t>(n));
  for (std::int32_t u = 0; u < n; ++u)
    state.emplace_back(k, params_.block_len);
  if (messages != nullptr) {
    state[static_cast<std::size_t>(source_)].seed_source(*messages);
  } else {
    state[static_cast<std::size_t>(source_)].seed_source({});
  }

  std::int32_t complete_count = 1;  // the source
  std::vector<char> complete(static_cast<std::size_t>(n), 0);
  complete[static_cast<std::size_t>(source_)] = 1;

  // Pool of packets emitted this round; radio::Packet carries an index.
  std::vector<coding::RlncPacket> pool;

  const std::int64_t period = 6LL * rank_modulus_;
  const std::int64_t window =
      static_cast<std::int64_t>(window_multiplier_) * block_size_;

  MultiRunResult result;
  result.messages = static_cast<std::int64_t>(k);
  if (complete_count == n) {
    result.completed = true;
    return result;
  }

  // Staging scratch: nodes selected this round and the pool index each
  // one emits, bulk-staged in one call once the selection pass is done.
  std::vector<radio::NodeId> senders;
  std::vector<radio::PacketId> packet_ids;
  senders.reserve(static_cast<std::size_t>(n));
  packet_ids.reserve(static_cast<std::size_t>(n));

  for (std::int64_t round = 0; round < budget; ++round) {
    pool.clear();
    senders.clear();
    packet_ids.clear();
    auto stage = [&](radio::NodeId u) {
      auto& st = state[static_cast<std::size_t>(u)];
      if (st.rank() == 0) return;  // nothing informative to send
      pool.push_back(st.emit(rng));
      senders.push_back(u);
      packet_ids.push_back(static_cast<radio::PacketId>(pool.size() - 1));
    };

    if (params_.pattern == MultiPattern::kDecay) {
      const auto sub = static_cast<std::int32_t>(round % decay_phase_);
      rng.for_each_bernoulli_pow2(
          static_cast<std::size_t>(n), sub,
          [&](std::size_t u) { stage(static_cast<radio::NodeId>(u)); });
    } else if (round % 2 == 1) {
      const auto t = (round - 1) / 2;
      const auto sub = static_cast<std::int32_t>(t % decay_phase_);
      rng.for_each_bernoulli_pow2(
          static_cast<std::size_t>(n), sub,
          [&](std::size_t u) { stage(static_cast<radio::NodeId>(u)); });
    } else {
      const std::int64_t t_half = round / 2;
      const std::int64_t band = t_half / window;
      for (radio::NodeId u = 0; u < n; ++u) {
        const auto ui = static_cast<std::size_t>(u);
        if (!tree_.is_fast(u)) continue;
        const std::int32_t l = tree_.level[ui];
        const std::int32_t r = tree_.rank[ui];
        const std::int64_t block = l / block_size_;
        // +6: rank-1 block-0 active at band 0 (see robust_fastbc.cpp).
        const std::int64_t lhs =
            ((block - 6LL * r + 6 - band) % period + period) % period;
        if (lhs != 0 || (l % 3) != (t_half % 3)) continue;
        stage(u);
      }
    }
    net.stage_broadcasts(senders, packet_ids);

    const auto& deliveries = net.run_round();
    for (const auto& d : deliveries) {
      auto& st = state[static_cast<std::size_t>(d.receiver)];
      if (st.complete()) continue;
      st.absorb(pool[static_cast<std::size_t>(d.packet.id)]);
      if (st.complete()) {
        auto& flag = complete[static_cast<std::size_t>(d.receiver)];
        if (!flag) {
          flag = 1;
          ++complete_count;
        }
      }
    }
    result.rounds = round + 1;
    if (complete_count == n) {
      result.completed = true;
      break;
    }
  }

  if (result.completed && messages != nullptr) {
    for (std::int32_t u = 0; u < n; ++u) {
      if (state[static_cast<std::size_t>(u)].decode() != *messages) {
        result.completed = false;
        break;
      }
    }
  }
  return result;
}

}  // namespace nrn::core

#include "core/throughput.hpp"

#include "common/contracts.hpp"

namespace nrn::core {

std::vector<ThroughputPoint> sweep_throughput(
    const ScheduleFn& schedule, const std::vector<std::int64_t>& ks,
    int trials, Rng& rng) {
  NRN_EXPECTS(trials >= 1, "need at least one trial");
  std::vector<ThroughputPoint> points;
  points.reserve(ks.size());
  std::uint64_t stream = 0;
  for (const std::int64_t k : ks) {
    std::vector<double> rounds;
    int successes = 0;
    for (int t = 0; t < trials; ++t) {
      Rng trial_rng = rng.split(stream++);
      const MultiRunResult r = schedule(k, trial_rng);
      rounds.push_back(static_cast<double>(r.rounds));
      if (r.completed) ++successes;
    }
    ThroughputPoint pt;
    pt.k = k;
    pt.median_rounds = quantile(rounds, 0.5);
    pt.rounds_per_message =
        pt.median_rounds / static_cast<double>(std::max<std::int64_t>(k, 1));
    pt.success_rate = static_cast<double>(successes) / trials;
    pt.throughput =
        pt.median_rounds > 0 ? static_cast<double>(k) / pt.median_rounds : 0.0;
    points.push_back(pt);
  }
  return points;
}

double gap_at(const std::vector<ThroughputPoint>& routing,
              const std::vector<ThroughputPoint>& coding, std::size_t index) {
  NRN_EXPECTS(index < routing.size() && index < coding.size(),
              "gap index out of range");
  NRN_EXPECTS(coding[index].rounds_per_message > 0.0, "degenerate coding run");
  return routing[index].rounds_per_message / coding[index].rounds_per_message;
}

}  // namespace nrn::core

#include "core/single_link.hpp"

#include <cmath>

namespace nrn::core {

namespace {

constexpr radio::NodeId kSourceNode = 0;
constexpr radio::NodeId kSinkNode = 1;

void check_link(const radio::RadioNetwork& net) {
  NRN_EXPECTS(net.graph().node_count() == 2 && net.graph().edge_count() == 1,
              "single-link schedules require the two-node topology");
}

}  // namespace

MultiRunResult run_link_nonadaptive_routing(radio::RadioNetwork& net,
                                            std::int64_t k, std::int64_t reps) {
  check_link(net);
  NRN_EXPECTS(k >= 1 && reps >= 1, "bad schedule parameters");
  MultiRunResult result;
  result.messages = k;
  std::int64_t distinct = 0;
  for (std::int64_t m = 0; m < k; ++m) {
    bool got = false;
    for (std::int64_t r = 0; r < reps; ++r) {
      net.set_broadcast(kSourceNode, radio::PacketId{m});
      const auto& deliveries = net.run_round();
      ++result.rounds;
      if (!deliveries.empty() && !got) {
        got = true;
        ++distinct;
      }
    }
  }
  result.completed = (distinct == k);
  return result;
}

std::int64_t link_nonadaptive_reps(std::int64_t k, double p) {
  NRN_EXPECTS(k >= 1, "bad k");
  NRN_EXPECTS(p > 0.0 && p < 1.0, "repetition count needs p in (0,1)");
  // Per-message failure p^reps; union bound over k messages wants
  // k * p^reps <= 1/k, i.e. reps >= 2 ln k / ln(1/p).
  const double lk = std::log(static_cast<double>(k) + 1.0);
  return static_cast<std::int64_t>(std::ceil(2.0 * lk / -std::log(p))) + 1;
}

MultiRunResult run_link_adaptive_routing(radio::RadioNetwork& net,
                                         std::int64_t k,
                                         std::int64_t max_rounds) {
  check_link(net);
  NRN_EXPECTS(k >= 1, "bad k");
  MultiRunResult result;
  result.messages = k;
  std::int64_t current = 0;
  for (std::int64_t round = 0; round < max_rounds; ++round) {
    net.set_broadcast(kSourceNode, radio::PacketId{current});
    const auto& deliveries = net.run_round();
    ++result.rounds;
    if (!deliveries.empty()) {
      NRN_ENSURES(deliveries.front().receiver == kSinkNode,
                  "unexpected receiver on the link");
      ++current;
      if (current == k) {
        result.completed = true;
        break;
      }
    }
  }
  return result;
}

MultiRunResult run_link_rs_coding(radio::RadioNetwork& net, std::int64_t k,
                                  std::int64_t packet_count) {
  check_link(net);
  NRN_EXPECTS(k >= 1 && packet_count >= k, "need at least k coded packets");
  MultiRunResult result;
  result.messages = k;
  std::int64_t received = 0;
  for (std::int64_t j = 0; j < packet_count; ++j) {
    net.set_broadcast(kSourceNode, radio::PacketId{j});
    const auto& deliveries = net.run_round();
    ++result.rounds;
    if (!deliveries.empty()) ++received;
  }
  result.completed = (received >= k);
  return result;
}

std::int64_t link_rs_packet_count(std::int64_t k, double p) {
  NRN_EXPECTS(k >= 1, "bad k");
  NRN_EXPECTS(p >= 0.0 && p < 1.0, "fault probability out of range");
  const double lk = std::log(static_cast<double>(k) + 2.0);
  const double t = 2.0 * lk + std::sqrt(4.0 * static_cast<double>(k) * lk);
  return static_cast<std::int64_t>(
      std::ceil((static_cast<double>(k) + t) / (1.0 - p)));
}

}  // namespace nrn::core

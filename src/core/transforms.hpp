// Faultless-to-faulty schedule transformations (paper Section 5.2).
//
// Lemma 25 (routing): any faultless routing schedule becomes a sender-fault
// robust *adaptive* routing schedule with throughput tau(1-p): each base
// round is stretched into a meta-round of ~x/(1-p) rounds in which each
// base broadcaster sends x sub-messages, repeating the current one until a
// clean transmission is observed and staying silent once done.  Going
// silent never hurts: a node with exactly one broadcasting neighbor in the
// base round still has at most one in any sub-round.
//
// Lemma 26 (coding): any faultless coding schedule becomes fault-robust
// (sender OR receiver faults) with throughput tau(1-p): the broadcaster
// Reed-Solomon-encodes the x per-sub-instance packets it would have sent
// into ~x/(1-p) coded packets and streams them non-adaptively; a receiver
// reconstructs iff it catches >= x of them, which Chernoff guarantees w.h.p.
//
// The transforms below run in counting mode against concrete base
// schedules (the star one-shot schedule, throughput 1, and the mod-3 path
// pipeline, throughput 1/3) and verify end-to-end knowledge propagation,
// so the measured throughput genuinely includes any cascade failures.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/run_result.hpp"
#include "radio/network.hpp"

namespace nrn::core {

/// One base-round action: broadcaster and the base message it sends.
using BaseAction = std::pair<radio::NodeId, std::int64_t>;

/// A faultless base schedule described as data.
class BaseSchedule {
 public:
  virtual ~BaseSchedule() = default;
  /// Total base rounds.
  virtual std::int64_t rounds() const = 0;
  /// Number of base messages k0.
  virtual std::int64_t base_messages() const = 0;
  /// Broadcast actions of base round `r`.
  virtual std::vector<BaseAction> actions(std::int64_t r) const = 0;
  /// The schedule's faultless throughput (documentation/verification).
  virtual double faultless_throughput() const = 0;
};

/// Star: round i, the hub broadcasts message i.  k0 rounds, throughput 1.
class StarBaseSchedule final : public BaseSchedule {
 public:
  explicit StarBaseSchedule(std::int64_t k0) : k0_(k0) {}
  std::int64_t rounds() const override { return k0_; }
  std::int64_t base_messages() const override { return k0_; }
  std::vector<BaseAction> actions(std::int64_t r) const override {
    return {{0, r}};
  }
  double faultless_throughput() const override { return 1.0; }

 private:
  std::int64_t k0_;
};

/// Path pipeline: node j relays message m in base round 3m + j, so
/// broadcasters in one round sit 3 apart and never collide.  Throughput
/// 1/3 as the number of messages grows.
class PathPipelineBaseSchedule final : public BaseSchedule {
 public:
  PathPipelineBaseSchedule(std::int32_t path_nodes, std::int64_t k0)
      : n_(path_nodes), k0_(k0) {}
  std::int64_t rounds() const override { return 3 * (k0_ - 1) + n_; }
  std::int64_t base_messages() const override { return k0_; }
  std::vector<BaseAction> actions(std::int64_t r) const override;
  double faultless_throughput() const override { return 1.0 / 3.0; }

 private:
  std::int32_t n_;
  std::int64_t k0_;
};

struct TransformParams {
  std::int64_t x = 32;   ///< sub-messages per base message
  double eta = 0.25;     ///< meta-round slack
};

/// Meta-round slack that keeps the Chernoff margin at the x = 64 cap the
/// experiments use: eta must grow with the loss rate.
inline double recommended_transform_eta(double loss) {
  return loss >= 0.5 ? 0.5 : 0.25;
}

struct TransformResult {
  MultiRunResult run;           ///< rounds/messages in *sub-message* units
  std::int64_t meta_length = 0; ///< rounds per meta-round
  double measured_throughput = 0.0;  ///< sub-messages per round if completed
};

/// Lemma 25 transform.  Only meaningful under sender faults (or faultless).
TransformResult run_routing_transform(radio::RadioNetwork& net,
                                      const BaseSchedule& base,
                                      const TransformParams& params, Rng& rng);

/// Lemma 26 transform.  Robust to sender or receiver faults.
TransformResult run_coding_transform(radio::RadioNetwork& net,
                                     const BaseSchedule& base,
                                     const TransformParams& params, Rng& rng);

}  // namespace nrn::core

// Single-link schedules (paper Appendix A).
//
// Two nodes, one edge.  With constant fault probability:
//   * non-adaptive routing must repeat each message Theta(log k) times to
//     push the failure probability below 1/k (Lemma 29): throughput
//     Theta(1/log k);
//   * Reed-Solomon coding streams ~k/(1-p) packets (Lemma 30): Theta(1);
//   * adaptive routing resends each message until acknowledged (Lemma 32):
//     Theta(1).
// The Theta(log k) non-adaptive gap disappears under adaptivity (Lemma 33),
// which is why the paper proves its main gaps against *adaptive* routing.
#pragma once

#include <cstdint>

#include "core/run_result.hpp"
#include "radio/network.hpp"

namespace nrn::core {

/// Lemma 29's achievable side: each message broadcast exactly `reps` times;
/// completed = the receiver got all k messages.
MultiRunResult run_link_nonadaptive_routing(radio::RadioNetwork& net,
                                            std::int64_t k, std::int64_t reps);

/// Repetition count that makes the non-adaptive schedule succeed with
/// probability >= 1 - 1/k: ceil(2 ln k / ln(1/p)) + 1 (union bound).
std::int64_t link_nonadaptive_reps(std::int64_t k, double p);

/// Lemma 32: send each message until it is received (full feedback).
MultiRunResult run_link_adaptive_routing(radio::RadioNetwork& net,
                                         std::int64_t k,
                                         std::int64_t max_rounds);

/// Lemma 30: stream `packet_count` distinct coded packets; completed = the
/// receiver got at least k distinct (the Reed-Solomon condition).
MultiRunResult run_link_rs_coding(radio::RadioNetwork& net, std::int64_t k,
                                  std::int64_t packet_count);

/// Packet count for the coded link schedule (Chernoff slack over k/(1-p)).
std::int64_t link_rs_packet_count(std::int64_t k, double p);

}  // namespace nrn::core

// Multi-message broadcast via random linear network coding
// (paper Section 4.2, Lemmas 12 and 13).
//
// Single-message algorithms whose broadcast *pattern* does not depend on
// what a node has received compose black-box with RLNC: wherever the
// single-message algorithm would broadcast the message, the node instead
// broadcasts a uniformly random combination of the coded packets it has
// observed so far.  A node "has" the k messages when its observed subspace
// reaches rank k.  We follow Ghaffari-Haeupler-Khabbazian practice on the
// paper's "minor technical conditions": the broadcast pattern is evaluated
// obliviously, and nodes whose subspace is still empty simply have nothing
// useful to say (their slots carry no innovation; silence and a blank
// transmission are equivalent for rank progress, and we keep them silent
// to avoid manufacturing collisions the analysis does not rely on).
//
//   * Decay pattern        -> O(D log n + k log n + log^2 n) rounds,
//                             throughput Omega(1/log n)          (Lemma 12)
//   * Robust FASTBC pattern-> O(D + k log n log log n
//                                 + log^2 n log log n) rounds,
//                             throughput Omega(1/(log n loglog n)) (Lemma 13)
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "coding/rlnc.hpp"
#include "core/run_result.hpp"
#include "radio/network.hpp"
#include "trees/gbst.hpp"

namespace nrn::core {

enum class MultiPattern {
  kDecay,         ///< Lemma 12 composition
  kRobustFastbc,  ///< Lemma 13 composition
};

struct MultiMessageParams {
  std::size_t k = 1;          ///< number of messages
  std::size_t block_len = 0;  ///< payload symbols per message; 0 = rank-only
  MultiPattern pattern = MultiPattern::kDecay;
  std::int32_t decay_phase = 0;       ///< 0 => ceil(log2 n) + 1
  std::int32_t block_size = 0;        ///< Robust FASTBC S; 0 => default
  std::int32_t window_multiplier = 0; ///< Robust FASTBC c; 0 => default
  std::int64_t max_rounds = 0;        ///< 0 => theory bound with slack
};

class RlncBroadcast {
 public:
  /// The Robust FASTBC pattern needs the GBST; it is built here.
  RlncBroadcast(const graph::Graph& g, radio::NodeId source,
                MultiMessageParams params);

  /// Runs until every node reaches rank k (completed) or the budget ends.
  MultiRunResult run(radio::RadioNetwork& net, Rng& rng) const;

  /// As run(), but also verifies payload decodability at every node
  /// against `messages` (requires block_len > 0).  Returns false in
  /// MultiRunResult::completed on any decode mismatch.
  MultiRunResult run_and_verify(
      radio::RadioNetwork& net, Rng& rng,
      const std::vector<std::vector<std::uint8_t>>& messages) const;

 private:
  MultiRunResult run_impl(
      radio::RadioNetwork& net, Rng& rng,
      const std::vector<std::vector<std::uint8_t>>* messages) const;

  const graph::Graph* graph_;
  radio::NodeId source_;
  MultiMessageParams params_;
  trees::RankedBfsTree tree_;  // only populated for kRobustFastbc
  std::int32_t decay_phase_;
  std::int32_t block_size_ = 0;
  std::int32_t window_multiplier_ = 0;
  std::int32_t rank_modulus_ = 0;
};

}  // namespace nrn::core

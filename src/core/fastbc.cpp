#include "core/fastbc.hpp"

#include <cmath>

#include "core/decay.hpp"

namespace nrn::core {

namespace {

std::int32_t ceil_log2(std::int32_t n) {
  std::int32_t bits = 0;
  while ((std::int64_t{1} << bits) < n) ++bits;
  return std::max(bits, 1);
}

}  // namespace

Fastbc::Fastbc(const graph::Graph& g, radio::NodeId source, FastbcParams params)
    : graph_(&g), source_(source), params_(params) {
  tree_ = trees::build_gbst(g, source, &tree_stats_);
  rank_modulus_ = params.rank_modulus > 0 ? params.rank_modulus
                                          : ceil_log2(g.node_count());
  NRN_EXPECTS(tree_.max_rank <= rank_modulus_,
              "rank modulus below the realized max rank");
  decay_phase_ = params.decay_phase > 0
                     ? params.decay_phase
                     : Decay::default_phase_length(g.node_count());
}

BroadcastRunResult Fastbc::run(radio::RadioNetwork& net, Rng& rng,
                               radio::TraceRecorder* trace) const {
  NRN_EXPECTS(&net.graph() == graph_, "network built on a different graph");
  const std::int32_t n = graph_->node_count();
  const double p = net.fault_model().effective_loss();
  const std::int64_t budget =
      params_.max_rounds > 0
          ? params_.max_rounds
          : static_cast<std::int64_t>(
                32.0 / (1.0 - p) *
                static_cast<double>((tree_.depth + 4 * decay_phase_ + 32)) *
                static_cast<double>(decay_phase_));

  std::vector<char> informed(static_cast<std::size_t>(n), 0);
  std::vector<radio::NodeId> informed_list;
  informed_list.reserve(static_cast<std::size_t>(n));
  informed_list.push_back(source_);
  informed[static_cast<std::size_t>(source_)] = 1;

  const std::int32_t period = 6 * rank_modulus_;
  const radio::PacketId message{0};
  BroadcastRunResult result;
  if (n == 1) {
    result.completed = true;
    result.informed = 1;
    return result;
  }

  for (std::int64_t round = 0; round < budget; ++round) {
    if (round % 2 == 1) {
      // Slow transmission round 2t+1: Decay step over informed nodes.
      const auto t = (round - 1) / 2;
      const auto sub = static_cast<std::int32_t>(t % decay_phase_);
      rng.for_each_bernoulli_pow2(informed_list.size(), sub, [&](std::size_t i) {
        net.set_broadcast(informed_list[i], message);
      });
    } else {
      // Fast transmission round 2t: scheduled wave step.
      const auto t = round / 2;
      for (const radio::NodeId u : informed_list) {
        const auto ui = static_cast<std::size_t>(u);
        if (!tree_.is_fast(u)) continue;
        const std::int64_t target =
            static_cast<std::int64_t>(tree_.level[ui]) -
            6LL * tree_.rank[ui];
        // t = l - 6r (mod period), with a positive representative.
        const std::int64_t lhs = ((t - target) % period + period) % period;
        if (lhs == 0) net.set_broadcast(u, message);
      }
    }
    for (const radio::NodeId v : net.run_round().receivers()) {
      auto& flag = informed[static_cast<std::size_t>(v)];
      if (!flag) {
        flag = 1;
        informed_list.push_back(v);
      }
    }
    if (trace != nullptr)
      trace->record(net.last_round(),
                    static_cast<double>(informed_list.size()));
    result.rounds = round + 1;
    if (static_cast<std::int32_t>(informed_list.size()) == n) {
      result.completed = true;
      break;
    }
  }
  result.informed = static_cast<std::int64_t>(informed_list.size());
  return result;
}

}  // namespace nrn::core

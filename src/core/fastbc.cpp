#include "core/fastbc.hpp"

#include <cmath>

#include "core/decay.hpp"

namespace nrn::core {

namespace {

std::int32_t ceil_log2(std::int32_t n) {
  std::int32_t bits = 0;
  while ((std::int64_t{1} << bits) < n) ++bits;
  return std::max(bits, 1);
}

}  // namespace

Fastbc::Fastbc(const graph::Graph& g, radio::NodeId source, FastbcParams params)
    : graph_(&g), source_(source), params_(params) {
  tree_ = trees::build_gbst(g, source, &tree_stats_);
  rank_modulus_ = params.rank_modulus > 0 ? params.rank_modulus
                                          : ceil_log2(g.node_count());
  NRN_EXPECTS(tree_.max_rank <= rank_modulus_,
              "rank modulus below the realized max rank");
  decay_phase_ = params.decay_phase > 0
                     ? params.decay_phase
                     : Decay::default_phase_length(g.node_count());
}

namespace {

/// One FASTBC trial's round logic: odd rounds a Decay step (Bernoulli
/// selection fused into staging), even rounds the collision-free wave --
/// eligible fast nodes gathered into a scratch list and bulk-staged.
class FastbcStepper final : public InformedSetStepper {
 public:
  FastbcStepper(const trees::RankedBfsTree& tree, std::int32_t node_count,
                radio::NodeId source, std::int32_t rank_modulus,
                std::int32_t decay_phase, std::int64_t budget,
                radio::TraceRecorder* trace)
      : InformedSetStepper(node_count, source, budget, trace),
        tree_(&tree),
        period_(6 * rank_modulus),
        decay_phase_(decay_phase) {
    eligible_.reserve(static_cast<std::size_t>(node_count));
  }

  bool stage_round(radio::StagingPort& port, Rng& rng) override {
    if (!another_round()) return false;
    const std::int64_t round = round_;
    if (round % 2 == 1) {
      // Slow transmission round 2t+1: Decay step over informed nodes.
      const auto t = (round - 1) / 2;
      const auto sub = static_cast<std::int32_t>(t % decay_phase_);
      port.stage_bernoulli_pow2(informed_list_, sub, radio::PacketId{0}, rng);
    } else {
      // Fast transmission round 2t: scheduled wave step.
      const auto t = round / 2;
      eligible_.clear();
      for (const radio::NodeId u : informed_list_) {
        const auto ui = static_cast<std::size_t>(u);
        if (!tree_->is_fast(u)) continue;
        const std::int64_t target =
            static_cast<std::int64_t>(tree_->level[ui]) -
            6LL * tree_->rank[ui];
        // t = l - 6r (mod period), with a positive representative.
        const std::int64_t lhs = ((t - target) % period_ + period_) % period_;
        if (lhs == 0) eligible_.push_back(u);
      }
      port.stage_many(eligible_, radio::PacketId{0});
    }
    return true;
  }

 private:
  const trees::RankedBfsTree* tree_;
  std::int64_t period_;
  std::int32_t decay_phase_;
  std::vector<radio::NodeId> eligible_;
};

}  // namespace

std::unique_ptr<RoundStepper> Fastbc::make_stepper(
    double effective_loss, radio::TraceRecorder* trace) const {
  const std::int64_t budget =
      params_.max_rounds > 0
          ? params_.max_rounds
          : static_cast<std::int64_t>(
                32.0 / (1.0 - effective_loss) *
                static_cast<double>((tree_.depth + 4 * decay_phase_ + 32)) *
                static_cast<double>(decay_phase_));
  return std::make_unique<FastbcStepper>(tree_, graph_->node_count(), source_,
                                         rank_modulus_, decay_phase_, budget,
                                         trace);
}

BroadcastRunResult Fastbc::run(radio::RadioNetwork& net, Rng& rng,
                               radio::TraceRecorder* trace) const {
  NRN_EXPECTS(&net.graph() == graph_, "network built on a different graph");
  auto stepper = make_stepper(net.fault_model().effective_loss(), trace);
  return run_stepped(*stepper, net, rng);
}

}  // namespace nrn::core

#include "core/greedy_router.hpp"

#include <algorithm>
#include <cmath>

namespace nrn::core {

namespace {

/// Per-round scratch tracking which listener is claimed by which staged
/// broadcast, so marginal gains account for collisions created inside the
/// staged set.
struct RoundPlanner {
  // 0 = no staged neighbor; 1 = exactly one (claimed); 2+ = collision.
  std::vector<std::int32_t> staged_neighbors;
  // 1 when the claimed listener actually lacked the claimed message.
  std::vector<std::int8_t> claimed_gain;

  explicit RoundPlanner(std::size_t n)
      : staged_neighbors(n, 0), claimed_gain(n, 0) {}

  void reset() {
    std::fill(staged_neighbors.begin(), staged_neighbors.end(), 0);
    std::fill(claimed_gain.begin(), claimed_gain.end(), 0);
  }
};

}  // namespace

MultiRunResult run_greedy_adaptive_routing(radio::RadioNetwork& net,
                                           radio::NodeId source,
                                           const GreedyRouterParams& params) {
  const auto& g = net.graph();
  const std::int32_t n = g.node_count();
  NRN_EXPECTS(params.k >= 1, "need at least one message");
  NRN_EXPECTS(source >= 0 && source < n, "source out of range");
  const std::int64_t k = params.k;
  const double loss = net.fault_model().effective_loss();
  const std::int64_t budget =
      params.max_rounds > 0
          ? params.max_rounds
          : static_cast<std::int64_t>(
                64.0 / (1.0 - loss) *
                static_cast<double>(k + n) *
                (2.0 + std::log2(std::max(2, n))) *
                (2.0 + std::log2(std::max<double>(2.0, static_cast<double>(k)))));

  const auto nk = static_cast<std::size_t>(n) * static_cast<std::size_t>(k);
  auto cell = [k](radio::NodeId u, std::int64_t m) {
    return static_cast<std::size_t>(u) * static_cast<std::size_t>(k) +
           static_cast<std::size_t>(m);
  };

  // has[u*k+m]; missing[u] counts messages u still lacks; lack[u*k+m]
  // counts neighbors of u that lack m (maintained incrementally so the
  // per-round candidate scan is O(n k), not O(E k)).
  std::vector<char> has(nk, 0);
  std::vector<std::int64_t> missing(static_cast<std::size_t>(n), k);
  std::vector<std::int32_t> lack(nk, 0);
  for (radio::NodeId u = 0; u < n; ++u) {
    const auto deg = g.degree(u);
    for (std::int64_t m = 0; m < k; ++m)
      lack[cell(u, m)] = deg;
  }
  for (std::int64_t m = 0; m < k; ++m) has[cell(source, m)] = 1;
  missing[static_cast<std::size_t>(source)] = 0;
  for (const radio::NodeId v : g.neighbors(source))
    for (std::int64_t m = 0; m < k; ++m) --lack[cell(v, m)];
  std::int64_t incomplete_nodes = n - 1;

  MultiRunResult result;
  result.messages = k;
  if (incomplete_nodes == 0) {
    result.completed = true;
    return result;
  }

  RoundPlanner planner(static_cast<std::size_t>(n));
  std::vector<std::int64_t> best_msg(static_cast<std::size_t>(n), -1);
  std::vector<std::int64_t> best_gain(static_cast<std::size_t>(n), 0);
  std::vector<radio::NodeId> order;
  std::vector<std::int64_t> staged_msg(static_cast<std::size_t>(n), -1);

  for (std::int64_t round = 0; round < budget; ++round) {
    planner.reset();
    order.clear();

    // Stage 1: each holder's locally best message -- the one most of its
    // listeners still lack (ties to the lowest index for determinism).
    for (radio::NodeId u = 0; u < n; ++u) {
      const auto ui = static_cast<std::size_t>(u);
      best_msg[ui] = -1;
      best_gain[ui] = 0;
      if (missing[ui] == k) continue;  // holds nothing
      for (std::int64_t m = 0; m < k; ++m) {
        if (!has[cell(u, m)]) continue;
        const std::int64_t gain = lack[cell(u, m)];
        if (gain > best_gain[ui]) {
          best_gain[ui] = gain;
          best_msg[ui] = m;
        }
      }
      if (best_msg[ui] >= 0) order.push_back(u);
    }
    if (order.empty()) break;  // nothing useful to send: stuck
    std::sort(order.begin(), order.end(),
              [&](radio::NodeId a, radio::NodeId b) {
                const auto ga = best_gain[static_cast<std::size_t>(a)];
                const auto gb = best_gain[static_cast<std::size_t>(b)];
                return ga != gb ? ga > gb : a < b;
              });

    // Stage 2: greedy admission by true marginal gain against the staged
    // set so far (collisions included).
    std::fill(staged_msg.begin(), staged_msg.end(), -1);
    for (const radio::NodeId u : order) {
      const auto ui = static_cast<std::size_t>(u);
      const std::int64_t m = best_msg[ui];
      std::int64_t marginal = 0;
      for (const radio::NodeId v : g.neighbors(u)) {
        const auto vi = static_cast<std::size_t>(v);
        if (planner.staged_neighbors[vi] == 0) {
          if (!has[cell(v, m)]) ++marginal;
        } else if (planner.staged_neighbors[vi] == 1) {
          marginal -= planner.claimed_gain[vi];  // collision destroys claim
        }
      }
      if (marginal <= 0) continue;
      staged_msg[ui] = m;
      for (const radio::NodeId v : g.neighbors(u)) {
        const auto vi = static_cast<std::size_t>(v);
        if (++planner.staged_neighbors[vi] == 1) {
          planner.claimed_gain[vi] = has[cell(v, m)] ? 0 : 1;
        } else {
          planner.claimed_gain[vi] = 0;
        }
      }
    }

    // Stage 3: execute.  A staged broadcaster adjacent to another simply
    // does not listen this round; the planner priced that in.
    bool staged_any = false;
    for (radio::NodeId u = 0; u < n; ++u) {
      const auto ui = static_cast<std::size_t>(u);
      if (staged_msg[ui] >= 0) {
        net.set_broadcast(u, radio::PacketId{staged_msg[ui]});
        staged_any = true;
      }
    }
    if (!staged_any) {
      // All candidates had non-positive marginal gain (dense mutual
      // interference); fall back to the single globally best candidate.
      const radio::NodeId u = order.front();
      net.set_broadcast(u, radio::PacketId{best_msg[static_cast<std::size_t>(u)]});
    }

    const auto& deliveries = net.run_round();
    ++result.rounds;
    for (const auto& d : deliveries) {
      auto& flag = has[cell(d.receiver, d.packet.id)];
      if (flag) continue;
      flag = 1;
      for (const radio::NodeId w : g.neighbors(d.receiver))
        --lack[cell(w, d.packet.id)];
      if (--missing[static_cast<std::size_t>(d.receiver)] == 0)
        --incomplete_nodes;
    }
    if (incomplete_nodes == 0) {
      result.completed = true;
      break;
    }
  }
  return result;
}

}  // namespace nrn::core

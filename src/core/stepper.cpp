#include "core/stepper.hpp"

namespace nrn::core {

BroadcastRunResult run_stepped(RoundStepper& stepper, radio::RadioNetwork& net,
                               Rng& rng) {
  radio::NetworkStagingPort port(net);
  while (stepper.stage_round(port, rng)) {
    const auto& deliveries = net.run_round();
    if (stepper.absorb_round(deliveries.receivers(), net.last_round())) break;
  }
  return stepper.result();
}

}  // namespace nrn::core

// A strong centralized adaptive routing heuristic (paper Definition 14).
//
// The paper's routing lower bounds quantify over *all* adaptive routing
// schedules: every round, a central scheduler with the full topology and
// the complete reception history picks who broadcasts which held message.
// A simulation cannot enumerate that class, but it can field the strongest
// practical member: a greedy marginal-coverage scheduler.  Each round it
// assembles the broadcast set greedily, adding the (node, message) pair
// with the best marginal gain -- newly covered listeners (adjacent, lacking
// the message, not yet claimed this round) minus listeners lost to fresh
// collisions -- until no positive-gain candidate remains.
//
// On the star this reproduces Lemma 15's optimal behaviour (one broadcaster
// per round, most-wanted message).  On WCT it gives an aggressive upper
// bound for what adaptive routing achieves in practice, complementing the
// Lemma 21 pipeline from below; both land at the Theta(1/log^2 n) scale the
// paper proves unavoidable (Lemma 19).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "core/run_result.hpp"
#include "radio/network.hpp"

namespace nrn::core {

struct GreedyRouterParams {
  std::int64_t k = 1;          ///< number of messages
  std::int64_t max_rounds = 0; ///< 0 => generous theory-shaped budget
};

/// Runs the greedy adaptive router; completed = every node holds all k
/// messages within the budget.
MultiRunResult run_greedy_adaptive_routing(radio::RadioNetwork& net,
                                           radio::NodeId source,
                                           const GreedyRouterParams& params);

}  // namespace nrn::core

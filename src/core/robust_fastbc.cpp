#include "core/robust_fastbc.hpp"

#include <cmath>

#include "core/decay.hpp"

namespace nrn::core {

namespace {

std::int32_t ceil_log2(std::int32_t n) {
  std::int32_t bits = 0;
  while ((std::int64_t{1} << bits) < n) ++bits;
  return std::max(bits, 1);
}

}  // namespace

RobustFastbc::RobustFastbc(const graph::Graph& g, radio::NodeId source,
                           RobustFastbcParams params)
    : graph_(&g), source_(source), params_(params) {
  tree_ = trees::build_gbst(g, source, &tree_stats_);
  const std::int32_t log_n = ceil_log2(g.node_count());
  block_size_ =
      params.block_size > 0
          ? params.block_size
          : std::max<std::int32_t>(
                2, 2 * ceil_log2(std::max<std::int32_t>(2, log_n)));
  window_multiplier_ = params.window_multiplier > 0 ? params.window_multiplier : 8;
  rank_modulus_ = params.rank_modulus > 0 ? params.rank_modulus : log_n;
  NRN_EXPECTS(tree_.max_rank <= rank_modulus_,
              "rank modulus below the realized max rank");
  decay_phase_ = params.decay_phase > 0
                     ? params.decay_phase
                     : Decay::default_phase_length(g.node_count());
}

namespace {

/// One Robust FASTBC trial's round logic: odd rounds a Decay step, even
/// rounds the band schedule with mod-3 staggering -- eligible fast nodes
/// gathered into a scratch list and bulk-staged.
class RobustFastbcStepper final : public InformedSetStepper {
 public:
  RobustFastbcStepper(const trees::RankedBfsTree& tree,
                      std::int32_t node_count, radio::NodeId source,
                      std::int32_t block_size, std::int64_t window,
                      std::int32_t rank_modulus, std::int32_t decay_phase,
                      std::int64_t budget, radio::TraceRecorder* trace)
      : InformedSetStepper(node_count, source, budget, trace),
        tree_(&tree),
        block_size_(block_size),
        window_(window),
        period_(6 * rank_modulus),
        decay_phase_(decay_phase) {
    eligible_.reserve(static_cast<std::size_t>(node_count));
  }

  bool stage_round(radio::StagingPort& port, Rng& rng) override {
    if (!another_round()) return false;
    const std::int64_t round = round_;
    if (round % 2 == 1) {
      // Slow round: Decay step over informed nodes.
      const auto t = (round - 1) / 2;
      const auto sub = static_cast<std::int32_t>(t % decay_phase_);
      port.stage_bernoulli_pow2(informed_list_, sub, radio::PacketId{0}, rng);
    } else {
      // Fast round 2t': band schedule with mod-3 staggering.
      const std::int64_t t_half = round / 2;
      const std::int64_t band = t_half / window_;  // superround index
      eligible_.clear();
      for (const radio::NodeId u : informed_list_) {
        const auto ui = static_cast<std::size_t>(u);
        if (!tree_->is_fast(u)) continue;
        const std::int32_t l = tree_->level[ui];
        const std::int32_t r = tree_->rank[ui];
        const std::int64_t block = l / block_size_;
        // The +6 aligns rank-1 block-0 with band 0, so the wave starts at
        // the source immediately instead of after a full band cycle (a
        // constant-factor cold-start optimization; asymptotics unchanged).
        const std::int64_t lhs =
            ((block - 6LL * r + 6 - band) % period_ + period_) % period_;
        if (lhs != 0) continue;
        if ((l % 3) != (t_half % 3)) continue;
        eligible_.push_back(u);
      }
      port.stage_many(eligible_, radio::PacketId{0});
    }
    return true;
  }

 private:
  const trees::RankedBfsTree* tree_;
  std::int32_t block_size_;
  std::int64_t window_;
  std::int64_t period_;
  std::int32_t decay_phase_;
  std::vector<radio::NodeId> eligible_;
};

}  // namespace

std::unique_ptr<RoundStepper> RobustFastbc::make_stepper(
    double effective_loss, radio::TraceRecorder* trace) const {
  const std::int64_t window = static_cast<std::int64_t>(window_multiplier_) *
                              block_size_;  // even rounds per band step
  const std::int64_t budget =
      params_.max_rounds > 0
          ? params_.max_rounds
          : static_cast<std::int64_t>(
                48.0 / (1.0 - effective_loss) *
                (static_cast<double>(tree_.depth) +
                 static_cast<double>(decay_phase_) *
                     static_cast<double>(block_size_) *
                     (4.0 * decay_phase_ + 32.0)));
  return std::make_unique<RobustFastbcStepper>(
      tree_, graph_->node_count(), source_, block_size_, window, rank_modulus_,
      decay_phase_, budget, trace);
}

BroadcastRunResult RobustFastbc::run(radio::RadioNetwork& net, Rng& rng,
                                     radio::TraceRecorder* trace) const {
  NRN_EXPECTS(&net.graph() == graph_, "network built on a different graph");
  auto stepper = make_stepper(net.fault_model().effective_loss(), trace);
  return run_stepped(*stepper, net, rng);
}

}  // namespace nrn::core

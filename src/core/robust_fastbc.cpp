#include "core/robust_fastbc.hpp"

#include <cmath>

#include "core/decay.hpp"

namespace nrn::core {

namespace {

std::int32_t ceil_log2(std::int32_t n) {
  std::int32_t bits = 0;
  while ((std::int64_t{1} << bits) < n) ++bits;
  return std::max(bits, 1);
}

}  // namespace

RobustFastbc::RobustFastbc(const graph::Graph& g, radio::NodeId source,
                           RobustFastbcParams params)
    : graph_(&g), source_(source), params_(params) {
  tree_ = trees::build_gbst(g, source, &tree_stats_);
  const std::int32_t log_n = ceil_log2(g.node_count());
  block_size_ =
      params.block_size > 0
          ? params.block_size
          : std::max<std::int32_t>(
                2, 2 * ceil_log2(std::max<std::int32_t>(2, log_n)));
  window_multiplier_ = params.window_multiplier > 0 ? params.window_multiplier : 8;
  rank_modulus_ = params.rank_modulus > 0 ? params.rank_modulus : log_n;
  NRN_EXPECTS(tree_.max_rank <= rank_modulus_,
              "rank modulus below the realized max rank");
  decay_phase_ = params.decay_phase > 0
                     ? params.decay_phase
                     : Decay::default_phase_length(g.node_count());
}

BroadcastRunResult RobustFastbc::run(radio::RadioNetwork& net, Rng& rng,
                                     radio::TraceRecorder* trace) const {
  NRN_EXPECTS(&net.graph() == graph_, "network built on a different graph");
  const std::int32_t n = graph_->node_count();
  const double p = net.fault_model().effective_loss();
  const std::int64_t window = static_cast<std::int64_t>(window_multiplier_) *
                              block_size_;  // even rounds per band step
  const std::int64_t budget =
      params_.max_rounds > 0
          ? params_.max_rounds
          : static_cast<std::int64_t>(
                48.0 / (1.0 - p) *
                (static_cast<double>(tree_.depth) +
                 static_cast<double>(decay_phase_) *
                     static_cast<double>(block_size_) *
                     (4.0 * decay_phase_ + 32.0)));

  std::vector<char> informed(static_cast<std::size_t>(n), 0);
  std::vector<radio::NodeId> informed_list;
  informed_list.reserve(static_cast<std::size_t>(n));
  informed_list.push_back(source_);
  informed[static_cast<std::size_t>(source_)] = 1;

  const std::int32_t period = 6 * rank_modulus_;
  const radio::PacketId message{0};
  BroadcastRunResult result;
  if (n == 1) {
    result.completed = true;
    result.informed = 1;
    return result;
  }

  for (std::int64_t round = 0; round < budget; ++round) {
    if (round % 2 == 1) {
      // Slow round: Decay step over informed nodes.
      const auto t = (round - 1) / 2;
      const auto sub = static_cast<std::int32_t>(t % decay_phase_);
      rng.for_each_bernoulli_pow2(informed_list.size(), sub, [&](std::size_t i) {
        net.set_broadcast(informed_list[i], message);
      });
    } else {
      // Fast round 2t': band schedule with mod-3 staggering.
      const std::int64_t t_half = round / 2;
      const std::int64_t band = t_half / window;  // superround index
      for (const radio::NodeId u : informed_list) {
        const auto ui = static_cast<std::size_t>(u);
        if (!tree_.is_fast(u)) continue;
        const std::int32_t l = tree_.level[ui];
        const std::int32_t r = tree_.rank[ui];
        const std::int64_t block = l / block_size_;
        // The +6 aligns rank-1 block-0 with band 0, so the wave starts at
        // the source immediately instead of after a full band cycle (a
        // constant-factor cold-start optimization; asymptotics unchanged).
        const std::int64_t lhs =
            ((block - 6LL * r + 6 - band) % period + period) % period;
        if (lhs != 0) continue;
        if ((l % 3) != (t_half % 3)) continue;
        net.set_broadcast(u, message);
      }
    }
    for (const radio::NodeId v : net.run_round().receivers()) {
      auto& flag = informed[static_cast<std::size_t>(v)];
      if (!flag) {
        flag = 1;
        informed_list.push_back(v);
      }
    }
    if (trace != nullptr)
      trace->record(net.last_round(),
                    static_cast<double>(informed_list.size()));
    result.rounds = round + 1;
    if (static_cast<std::int32_t>(informed_list.size()) == n) {
      result.completed = true;
      break;
    }
  }
  result.informed = static_cast<std::int64_t>(informed_list.size());
  return result;
}

}  // namespace nrn::core

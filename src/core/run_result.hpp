// Result records shared by the broadcast algorithms.
#pragma once

#include <cstdint>

namespace nrn::core {

/// Outcome of a single-message broadcast run.
struct BroadcastRunResult {
  bool completed = false;      ///< every node informed within the budget
  std::int64_t rounds = 0;     ///< rounds executed (to completion or budget)
  std::int64_t informed = 0;   ///< informed nodes when the run ended
};

/// Outcome of a k-message run (routing or coding).
struct MultiRunResult {
  bool completed = false;
  std::int64_t rounds = 0;
  std::int64_t messages = 0;      ///< k
  double rounds_per_message() const {
    return messages == 0 ? 0.0
                         : static_cast<double>(rounds) /
                               static_cast<double>(messages);
  }
};

}  // namespace nrn::core

// Multi-message broadcast via source-side erasure coding (the approach of
// "Erasure Correction for Noisy Radio Networks", arXiv:1805.04165).
//
// Where the RLNC compositions (multi_message.hpp) have every relay re-code
// its observed subspace, the erasure-coded variant keeps all coding at the
// source: the k messages are Reed-Solomon encoded over GF(2^8) into
// m = k + O(log nk) coded packets, and relays store-and-forward whole coded
// packets in round-robin order over the Decay transmission pattern.  A node
// is done once it holds any k distinct coded packets (the RS reconstruction
// condition); the run decodes at every node and verifies the payloads
// against the source messages, so completion certifies real byte delivery,
// not just counting-mode rank.
//
// GF(2^8) bounds the coded-packet domain at 255, so k plus the slack must
// stay below 255 -- the construction trades the RLNC coefficient overhead
// for a hard cap on k.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/run_result.hpp"
#include "radio/network.hpp"

namespace nrn::core {

struct ErasureParams {
  std::size_t k = 1;          ///< number of messages
  std::size_t block_len = 8;  ///< payload bytes per message
  std::int32_t decay_phase = 0;   ///< 0 => ceil(log2 n) + 1
  std::int64_t max_rounds = 0;    ///< 0 => theory bound with slack
  std::int64_t packet_count = 0;  ///< coded packets m; 0 => k + slack
};

class ErasureBroadcast {
 public:
  /// Throws ContractViolation when k plus the slack exceeds the GF(2^8)
  /// evaluation domain (255 packets).
  ErasureBroadcast(const graph::Graph& g, radio::NodeId source,
                   ErasureParams params);

  /// Coded packets the source streams (k plus the Chernoff slack).
  std::int64_t packet_count() const { return packet_count_; }

  /// The default m for (n, k): k + 4 ceil(log2 nk) + 8.  Callers can check
  /// it against Rs256::max_packets() (255) before constructing.
  static std::int64_t default_packet_count(std::int64_t n, std::int64_t k);

  /// Runs until every node holds k distinct coded packets or the budget
  /// ends, then decodes at every node and verifies against `messages`
  /// (each a block_len-byte vector).  completed = full reception AND every
  /// decode matched.
  MultiRunResult run_and_verify(
      radio::RadioNetwork& net, Rng& rng,
      const std::vector<std::vector<std::uint8_t>>& messages) const;

 private:
  const graph::Graph* graph_;
  radio::NodeId source_;
  ErasureParams params_;
  std::int32_t decay_phase_;
  std::int64_t packet_count_;
};

}  // namespace nrn::core

// Reed-Solomon erasure coding over GF(2^16).
//
// The paper uses Reed-Solomon as a black box (Section 5): "Given k input
// packets, Reed-Solomon coding constructs poly(nk) coded packets such that
// any k of the coded packets is sufficient to reconstruct the original k
// packets."  This file implements exactly that contract:
//
//   * Each of the k messages is a vector of `block_len` GF(2^16) symbols.
//   * Coded packet j is the evaluation, at evaluation point alpha^j, of the
//     degree-(k-1) polynomial whose coefficients are the messages
//     (column-wise across symbol positions).
//   * decode() takes any k packets with distinct indices and solves the
//     Vandermonde system to recover the messages.
//
// Decoding is Gaussian elimination, O(k^3 + k^2 * block_len); the
// correctness tests exercise it directly, while large throughput sweeps
// rely on the any-k-of-m property by counting distinct packet indices.
#pragma once

#include <cstdint>
#include <vector>

#include "coding/gf65536.hpp"

namespace nrn::coding {

/// A coded packet: its evaluation index and symbol payload.
struct RsPacket {
  std::uint32_t index = 0;
  std::vector<Gf65536::Symbol> symbols;
};

class ReedSolomon {
 public:
  /// k: number of source messages; block_len: symbols per message.
  ReedSolomon(std::size_t k, std::size_t block_len);

  std::size_t k() const { return k_; }
  std::size_t block_len() const { return block_len_; }

  /// Maximum number of distinct coded packets (distinct evaluation points).
  static constexpr std::uint32_t max_packets() {
    return Gf65536::kGroupOrder;
  }

  /// Encodes packet `index` (0 <= index < max_packets()).
  RsPacket encode_packet(const std::vector<std::vector<Gf65536::Symbol>>& messages,
                         std::uint32_t index) const;

  /// Encodes packets [0, count).
  std::vector<RsPacket> encode(
      const std::vector<std::vector<Gf65536::Symbol>>& messages,
      std::uint32_t count) const;

  /// Reconstructs the k messages from any k packets with distinct indices.
  /// Throws if fewer than k distinct indices are supplied.
  std::vector<std::vector<Gf65536::Symbol>> decode(
      const std::vector<RsPacket>& packets) const;

 private:
  std::size_t k_;
  std::size_t block_len_;
  const Gf65536& field_;
};

}  // namespace nrn::coding

#include "coding/rlnc.hpp"

#include <algorithm>

namespace nrn::coding {

RlncState::RlncState(std::size_t k, std::size_t block_len)
    : k_(k), block_len_(block_len), field_(Gf256::instance()) {
  NRN_EXPECTS(k >= 1, "RLNC dimension must be positive");
}

void RlncState::seed_source(
    const std::vector<std::vector<std::uint8_t>>& messages) {
  NRN_EXPECTS(rank() == 0, "seed_source on a non-empty state");
  if (block_len_ > 0) {
    NRN_EXPECTS(messages.size() == k_, "need one payload per message");
    for (const auto& m : messages)
      NRN_EXPECTS(m.size() == block_len_, "payload length mismatch");
  } else {
    NRN_EXPECTS(messages.empty(), "payloads given in coefficient-only mode");
  }
  pivots_.resize(k_);
  rows_.assign(k_, std::vector<std::uint8_t>(k_, 0));
  payloads_.clear();
  for (std::size_t i = 0; i < k_; ++i) {
    pivots_[i] = i;
    rows_[i][i] = 1;
  }
  if (block_len_ > 0) payloads_ = messages;
}

bool RlncState::absorb(const RlncPacket& packet) {
  NRN_EXPECTS(packet.coeffs.size() == k_, "coefficient vector length mismatch");
  if (block_len_ > 0)
    NRN_EXPECTS(packet.payload.size() == block_len_, "payload length mismatch");

  std::vector<std::uint8_t> c = packet.coeffs;
  std::vector<std::uint8_t> p = packet.payload;

  // Eliminate against existing pivots.
  for (std::size_t i = 0; i < pivots_.size(); ++i) {
    const std::uint8_t f = c[pivots_[i]];
    if (f == 0) continue;
    const auto& row = rows_[i];
    for (std::size_t j = 0; j < k_; ++j)
      c[j] = field_.sub(c[j], field_.mul(f, row[j]));
    if (block_len_ > 0) {
      const auto& prow = payloads_[i];
      for (std::size_t j = 0; j < block_len_; ++j)
        p[j] = field_.sub(p[j], field_.mul(f, prow[j]));
    }
  }

  // Find the new pivot.
  std::size_t pivot = k_;
  for (std::size_t j = 0; j < k_; ++j)
    if (c[j] != 0) {
      pivot = j;
      break;
    }
  if (pivot == k_) return false;  // dependent packet

  // Normalize.
  const std::uint8_t inv = field_.inv(c[pivot]);
  for (std::size_t j = 0; j < k_; ++j) c[j] = field_.mul(c[j], inv);
  if (block_len_ > 0)
    for (std::size_t j = 0; j < block_len_; ++j) p[j] = field_.mul(p[j], inv);

  // Back-eliminate existing rows to maintain reduced echelon form.
  for (std::size_t i = 0; i < pivots_.size(); ++i) {
    const std::uint8_t f = rows_[i][pivot];
    if (f == 0) continue;
    for (std::size_t j = 0; j < k_; ++j)
      rows_[i][j] = field_.sub(rows_[i][j], field_.mul(f, c[j]));
    if (block_len_ > 0)
      for (std::size_t j = 0; j < block_len_; ++j)
        payloads_[i][j] = field_.sub(payloads_[i][j], field_.mul(f, p[j]));
  }

  // Insert keeping pivot order.
  const auto pos = static_cast<std::size_t>(
      std::lower_bound(pivots_.begin(), pivots_.end(), pivot) -
      pivots_.begin());
  pivots_.insert(pivots_.begin() + static_cast<std::ptrdiff_t>(pos), pivot);
  rows_.insert(rows_.begin() + static_cast<std::ptrdiff_t>(pos), std::move(c));
  if (block_len_ > 0)
    payloads_.insert(payloads_.begin() + static_cast<std::ptrdiff_t>(pos),
                     std::move(p));
  return true;
}

RlncPacket RlncState::emit(Rng& rng) const {
  NRN_EXPECTS(rank() >= 1, "emit from an empty RLNC state");
  RlncPacket pkt;
  pkt.coeffs.assign(k_, 0);
  if (block_len_ > 0) pkt.payload.assign(block_len_, 0);

  // Random nonzero combination of basis rows (resample the all-zero draw).
  std::vector<std::uint8_t> lambda(rank());
  bool nonzero = false;
  while (!nonzero) {
    for (auto& l : lambda) {
      l = static_cast<std::uint8_t>(rng.next_below(256));
      nonzero = nonzero || (l != 0);
    }
  }
  for (std::size_t i = 0; i < rank(); ++i) {
    const std::uint8_t l = lambda[i];
    if (l == 0) continue;
    const auto& row = rows_[i];
    for (std::size_t j = 0; j < k_; ++j)
      pkt.coeffs[j] = field_.add(pkt.coeffs[j], field_.mul(l, row[j]));
    if (block_len_ > 0) {
      const auto& prow = payloads_[i];
      for (std::size_t j = 0; j < block_len_; ++j)
        pkt.payload[j] = field_.add(pkt.payload[j], field_.mul(l, prow[j]));
    }
  }
  return pkt;
}

std::vector<std::vector<std::uint8_t>> RlncState::decode() const {
  NRN_EXPECTS(block_len_ > 0, "decode requires payload mode");
  NRN_EXPECTS(complete(), "decode requires full rank");
  // Full-rank reduced echelon form over k columns is the identity, with
  // pivots_ = 0..k-1, so payload rows are the messages in order.
  return payloads_;
}

}  // namespace nrn::coding

#include "coding/rs256.hpp"

#include <set>
#include <utility>

#include "common/contracts.hpp"

namespace nrn::coding {

namespace {

/// alpha^index with alpha = 0x02, the field's generator.
std::uint8_t eval_point(const Gf256& field, std::uint32_t index) {
  return field.pow(2, index);
}

}  // namespace

Rs256::Rs256(std::size_t k, std::size_t block_len)
    : k_(k), block_len_(block_len), field_(Gf256::instance()) {
  NRN_EXPECTS(k >= 1, "Reed-Solomon requires k >= 1");
  NRN_EXPECTS(k <= max_packets(), "k exceeds the GF(256) evaluation points");
  NRN_EXPECTS(block_len >= 1, "block_len must be positive");
}

Rs256Packet Rs256::encode_packet(
    const std::vector<std::vector<std::uint8_t>>& messages,
    std::uint32_t index) const {
  NRN_EXPECTS(messages.size() == k_, "message count mismatch");
  NRN_EXPECTS(index < max_packets(), "packet index exceeds evaluation points");
  for (const auto& m : messages)
    NRN_EXPECTS(m.size() == block_len_, "message block length mismatch");

  const std::uint8_t x = eval_point(field_, index);
  Rs256Packet pkt;
  pkt.index = index;
  pkt.symbols.assign(block_len_, 0);
  // Horner evaluation, highest coefficient (message k-1) first.
  for (std::size_t i = k_; i-- > 0;) {
    for (std::size_t s = 0; s < block_len_; ++s) {
      pkt.symbols[s] =
          field_.add(field_.mul(pkt.symbols[s], x), messages[i][s]);
    }
  }
  return pkt;
}

std::vector<Rs256Packet> Rs256::encode(
    const std::vector<std::vector<std::uint8_t>>& messages,
    std::uint32_t count) const {
  std::vector<Rs256Packet> packets;
  packets.reserve(count);
  for (std::uint32_t j = 0; j < count; ++j)
    packets.push_back(encode_packet(messages, j));
  return packets;
}

std::vector<std::vector<std::uint8_t>> Rs256::decode(
    const std::vector<Rs256Packet>& packets) const {
  std::vector<const Rs256Packet*> chosen;
  std::set<std::uint32_t> seen;
  for (const auto& p : packets) {
    if (seen.insert(p.index).second) {
      NRN_EXPECTS(p.symbols.size() == block_len_, "packet length mismatch");
      chosen.push_back(&p);
      if (chosen.size() == k_) break;
    }
  }
  NRN_EXPECTS(chosen.size() == k_,
              "decode requires k packets with distinct indices");

  // Solve V * M = Y where V[r][c] = x_r^c over the k chosen points.
  const std::size_t k = k_;
  std::vector<std::vector<std::uint8_t>> v(k, std::vector<std::uint8_t>(k));
  std::vector<std::vector<std::uint8_t>> y(k);
  for (std::size_t r = 0; r < k; ++r) {
    const std::uint8_t x = eval_point(field_, chosen[r]->index);
    std::uint8_t xp = 1;
    for (std::size_t c = 0; c < k; ++c) {
      v[r][c] = xp;
      xp = field_.mul(xp, x);
    }
    y[r] = chosen[r]->symbols;
  }

  for (std::size_t col = 0; col < k; ++col) {
    std::size_t pivot = col;
    while (pivot < k && v[pivot][col] == 0) ++pivot;
    NRN_ENSURES(pivot < k, "singular Vandermonde system (duplicate points?)");
    std::swap(v[pivot], v[col]);
    std::swap(y[pivot], y[col]);
    const std::uint8_t inv = field_.inv(v[col][col]);
    for (std::size_t c = col; c < k; ++c) v[col][c] = field_.mul(v[col][c], inv);
    for (auto& s : y[col]) s = field_.mul(s, inv);
    for (std::size_t r = 0; r < k; ++r) {
      if (r == col || v[r][col] == 0) continue;
      const std::uint8_t f = v[r][col];
      for (std::size_t c = col; c < k; ++c)
        v[r][c] = field_.sub(v[r][c], field_.mul(f, v[col][c]));
      for (std::size_t s = 0; s < block_len_; ++s)
        y[r][s] = field_.sub(y[r][s], field_.mul(f, y[col][s]));
    }
  }
  return y;
}

}  // namespace nrn::coding

// Reed-Solomon erasure coding over GF(2^8).
//
// The byte-field sibling of reed_solomon.hpp (which works over GF(2^16)):
// same any-k-of-m contract -- coded packet j is the evaluation at alpha^j
// of the degree-(k-1) polynomial whose coefficients are the messages, and
// any k packets with distinct indices reconstruct the originals via the
// Vandermonde system.  GF(2^8) keeps symbols byte-sized (the natural unit
// for payload-verified broadcast runs, per "Erasure Correction for Noisy
// Radio Networks", arXiv:1805.04165) at the cost of a smaller evaluation
// domain: at most 255 distinct coded packets, so k plus the Chernoff slack
// must stay below 255.
#pragma once

#include <cstdint>
#include <vector>

#include "coding/gf256.hpp"

namespace nrn::coding {

/// A coded packet over GF(2^8): its evaluation index and byte payload.
struct Rs256Packet {
  std::uint32_t index = 0;
  std::vector<std::uint8_t> symbols;
};

class Rs256 {
 public:
  /// k: number of source messages; block_len: bytes per message.
  Rs256(std::size_t k, std::size_t block_len);

  std::size_t k() const { return k_; }
  std::size_t block_len() const { return block_len_; }

  /// Maximum number of distinct coded packets (nonzero field elements).
  static constexpr std::uint32_t max_packets() { return 255; }

  /// Encodes packet `index` (0 <= index < max_packets()).
  Rs256Packet encode_packet(
      const std::vector<std::vector<std::uint8_t>>& messages,
      std::uint32_t index) const;

  /// Encodes packets [0, count).
  std::vector<Rs256Packet> encode(
      const std::vector<std::vector<std::uint8_t>>& messages,
      std::uint32_t count) const;

  /// Reconstructs the k messages from any k packets with distinct indices.
  /// Throws if fewer than k distinct indices are supplied.
  std::vector<std::vector<std::uint8_t>> decode(
      const std::vector<Rs256Packet>& packets) const;

 private:
  std::size_t k_;
  std::size_t block_len_;
  const Gf256& field_;
};

}  // namespace nrn::coding

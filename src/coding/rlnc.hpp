// Random linear network coding over GF(2^8) (Lemmas 12/13).
//
// Every node maintains an RlncState: the subspace of the k-dimensional
// message space it has observed, kept in reduced row-echelon form with an
// optional payload matrix alongside (so decoding returns the actual message
// bytes, not just a rank certificate).  Nodes broadcast uniformly random
// combinations of their basis (Haeupler's "analyzing network coding gossip
// made easy" framework); a node has "received" the k messages exactly when
// its rank reaches k.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "coding/gf256.hpp"

namespace nrn::coding {

/// A coded RLNC packet: k coefficients plus (optionally) the combined
/// payload symbols.
struct RlncPacket {
  std::vector<std::uint8_t> coeffs;
  std::vector<std::uint8_t> payload;  ///< empty in coefficient-only mode
};

class RlncState {
 public:
  /// k: message-space dimension.  block_len: payload symbols per message;
  /// 0 selects coefficient-only mode (throughput experiments).
  RlncState(std::size_t k, std::size_t block_len);

  std::size_t k() const { return k_; }
  std::size_t block_len() const { return block_len_; }
  std::size_t rank() const { return pivots_.size(); }
  bool complete() const { return rank() == k_; }

  /// Installs the full standard basis with the given payloads (the source
  /// knows all k messages).  In coefficient-only mode pass an empty vector.
  void seed_source(const std::vector<std::vector<std::uint8_t>>& messages);

  /// Gaussian-eliminates the packet into the basis.
  /// Returns true iff the packet was innovative (rank increased).
  bool absorb(const RlncPacket& packet);

  /// Emits a uniformly random nonzero combination of the basis rows.
  /// Requires rank() >= 1.
  RlncPacket emit(Rng& rng) const;

  /// Returns the k decoded messages; requires complete() and payload mode.
  std::vector<std::vector<std::uint8_t>> decode() const;

 private:
  std::size_t k_;
  std::size_t block_len_;
  const Gf256& field_;
  // Rows in reduced echelon form; pivots_[i] is the pivot column of row i,
  // strictly increasing.
  std::vector<std::size_t> pivots_;
  std::vector<std::vector<std::uint8_t>> rows_;      // coefficient rows
  std::vector<std::vector<std::uint8_t>> payloads_;  // parallel payload rows
};

}  // namespace nrn::coding

// GF(2^16) arithmetic via log/antilog tables.
//
// Field: GF(2)[x] / (x^16 + x^12 + x^3 + x + 1)  (0x1100B, the CCSDS
// polynomial).  Used by the Reed-Solomon layer: the paper's coding
// schedules generate poly(nk) coded packets from k messages (Section 5),
// so the codeword length must comfortably exceed the largest k * overhead
// any experiment uses -- 2^16 - 1 evaluation points suffice for every
// sweep in this repository.
#pragma once

#include <cstdint>
#include <vector>

#include "common/contracts.hpp"

namespace nrn::coding {

class Gf65536 {
 public:
  using Symbol = std::uint16_t;
  static constexpr std::uint32_t kFieldSize = 65536;
  static constexpr std::uint32_t kGroupOrder = 65535;

  static const Gf65536& instance();

  Symbol add(Symbol a, Symbol b) const { return a ^ b; }
  Symbol sub(Symbol a, Symbol b) const { return a ^ b; }

  Symbol mul(Symbol a, Symbol b) const {
    if (a == 0 || b == 0) return 0;
    return exp_[log_[a] + log_[b]];
  }

  Symbol div(Symbol a, Symbol b) const {
    NRN_EXPECTS(b != 0, "division by zero in GF(65536)");
    if (a == 0) return 0;
    return exp_[log_[a] + kGroupOrder - log_[b]];
  }

  Symbol inv(Symbol a) const {
    NRN_EXPECTS(a != 0, "inverse of zero in GF(65536)");
    return exp_[kGroupOrder - log_[a]];
  }

  Symbol pow(Symbol a, std::uint64_t e) const;

  /// alpha^i for the fixed generator alpha = 2; distinct for
  /// 0 <= i < kGroupOrder (used as Reed-Solomon evaluation points).
  Symbol alpha_pow(std::uint32_t i) const { return exp_[i % kGroupOrder]; }

 private:
  Gf65536();
  std::vector<Symbol> exp_;          // 2 * kGroupOrder entries
  std::vector<std::uint32_t> log_;   // kFieldSize entries
};

}  // namespace nrn::coding

#include "coding/gf256.hpp"

namespace nrn::coding {

Gf256::Gf256() {
  constexpr std::uint32_t kPoly = 0x11D;
  std::uint32_t x = 1;
  for (int i = 0; i < 255; ++i) {
    exp_[static_cast<std::size_t>(i)] = static_cast<Symbol>(x);
    log_[x] = static_cast<std::uint16_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= kPoly;
  }
  for (int i = 255; i < 512; ++i)
    exp_[static_cast<std::size_t>(i)] = exp_[static_cast<std::size_t>(i - 255)];
  log_[0] = 0;  // never read; mul/div guard zero operands
}

const Gf256& Gf256::instance() {
  static const Gf256 field;
  return field;
}

Gf256::Symbol Gf256::pow(Symbol a, std::uint32_t e) const {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const std::uint32_t le = (static_cast<std::uint32_t>(log_[a]) * e) % 255;
  return exp_[le];
}

}  // namespace nrn::coding

#include "coding/gf65536.hpp"

namespace nrn::coding {

Gf65536::Gf65536() {
  constexpr std::uint32_t kPoly = 0x1100B;
  exp_.resize(2 * kGroupOrder);
  log_.assign(kFieldSize, 0);
  std::uint32_t x = 1;
  for (std::uint32_t i = 0; i < kGroupOrder; ++i) {
    exp_[i] = static_cast<Symbol>(x);
    log_[x] = i;
    x <<= 1;
    if (x & 0x10000) x ^= kPoly;
  }
  NRN_ENSURES(x == 1, "0x1100B is not primitive?");
  for (std::uint32_t i = kGroupOrder; i < 2 * kGroupOrder; ++i)
    exp_[i] = exp_[i - kGroupOrder];
}

const Gf65536& Gf65536::instance() {
  static const Gf65536 field;
  return field;
}

Gf65536::Symbol Gf65536::pow(Symbol a, std::uint64_t e) const {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const std::uint64_t le = (static_cast<std::uint64_t>(log_[a]) * e) % kGroupOrder;
  return exp_[le];
}

}  // namespace nrn::coding

// GF(2^8) arithmetic via log/antilog tables.
//
// Field: GF(2)[x] / (x^8 + x^4 + x^3 + x^2 + 1)  (0x11D, the AES-adjacent
// polynomial commonly used by RLNC implementations; generator 0x02).
// Used by the random linear network coding layer (Lemmas 12/13), where a
// byte-sized field keeps per-packet coefficient vectors compact while the
// probability that a random combination is dependent stays below 1/255 per
// deficient dimension.
#pragma once

#include <array>
#include <cstdint>

#include "common/contracts.hpp"

namespace nrn::coding {

class Gf256 {
 public:
  using Symbol = std::uint8_t;
  static constexpr int kFieldSize = 256;

  /// Tables are built once, at first use.
  static const Gf256& instance();

  Symbol add(Symbol a, Symbol b) const { return a ^ b; }
  Symbol sub(Symbol a, Symbol b) const { return a ^ b; }

  Symbol mul(Symbol a, Symbol b) const {
    if (a == 0 || b == 0) return 0;
    return exp_[log_[a] + log_[b]];
  }

  Symbol div(Symbol a, Symbol b) const {
    NRN_EXPECTS(b != 0, "division by zero in GF(256)");
    if (a == 0) return 0;
    return exp_[log_[a] + 255 - log_[b]];
  }

  Symbol inv(Symbol a) const {
    NRN_EXPECTS(a != 0, "inverse of zero in GF(256)");
    return exp_[255 - log_[a]];
  }

  Symbol pow(Symbol a, std::uint32_t e) const;

  /// a + b * c, the inner-product workhorse.
  Symbol mul_add(Symbol a, Symbol b, Symbol c) const { return a ^ mul(b, c); }

 private:
  Gf256();
  std::array<Symbol, 512> exp_{};  // doubled to skip the mod-255 reduction
  std::array<std::uint16_t, 256> log_{};
};

}  // namespace nrn::coding

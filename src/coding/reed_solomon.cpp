#include "coding/reed_solomon.hpp"

#include <algorithm>
#include <set>

#include "common/contracts.hpp"

namespace nrn::coding {

ReedSolomon::ReedSolomon(std::size_t k, std::size_t block_len)
    : k_(k), block_len_(block_len), field_(Gf65536::instance()) {
  NRN_EXPECTS(k >= 1, "Reed-Solomon requires k >= 1");
  NRN_EXPECTS(k <= max_packets(), "k exceeds the number of evaluation points");
  NRN_EXPECTS(block_len >= 1, "block_len must be positive");
}

RsPacket ReedSolomon::encode_packet(
    const std::vector<std::vector<Gf65536::Symbol>>& messages,
    std::uint32_t index) const {
  NRN_EXPECTS(messages.size() == k_, "message count mismatch");
  NRN_EXPECTS(index < max_packets(), "packet index exceeds evaluation points");
  for (const auto& m : messages)
    NRN_EXPECTS(m.size() == block_len_, "message block length mismatch");

  const Gf65536::Symbol x = field_.alpha_pow(index);
  RsPacket pkt;
  pkt.index = index;
  pkt.symbols.assign(block_len_, 0);
  // Horner evaluation, highest coefficient (message k-1) first.
  for (std::size_t i = k_; i-- > 0;) {
    for (std::size_t s = 0; s < block_len_; ++s) {
      pkt.symbols[s] =
          field_.add(field_.mul(pkt.symbols[s], x), messages[i][s]);
    }
  }
  return pkt;
}

std::vector<RsPacket> ReedSolomon::encode(
    const std::vector<std::vector<Gf65536::Symbol>>& messages,
    std::uint32_t count) const {
  std::vector<RsPacket> packets;
  packets.reserve(count);
  for (std::uint32_t j = 0; j < count; ++j)
    packets.push_back(encode_packet(messages, j));
  return packets;
}

std::vector<std::vector<Gf65536::Symbol>> ReedSolomon::decode(
    const std::vector<RsPacket>& packets) const {
  // Select k packets with distinct indices.
  std::vector<const RsPacket*> chosen;
  std::set<std::uint32_t> seen;
  for (const auto& p : packets) {
    if (seen.insert(p.index).second) {
      NRN_EXPECTS(p.symbols.size() == block_len_, "packet length mismatch");
      chosen.push_back(&p);
      if (chosen.size() == k_) break;
    }
  }
  NRN_EXPECTS(chosen.size() == k_,
              "decode requires k packets with distinct indices");

  // Solve V * M = Y where V[r][c] = x_r^c over the k chosen points.
  // Augmented elimination carries the packet payloads as the right side.
  const std::size_t k = k_;
  std::vector<std::vector<Gf65536::Symbol>> v(k,
                                              std::vector<Gf65536::Symbol>(k));
  std::vector<std::vector<Gf65536::Symbol>> y(k);
  for (std::size_t r = 0; r < k; ++r) {
    const Gf65536::Symbol x = field_.alpha_pow(chosen[r]->index);
    Gf65536::Symbol xp = 1;
    for (std::size_t c = 0; c < k; ++c) {
      v[r][c] = xp;
      xp = field_.mul(xp, x);
    }
    y[r] = chosen[r]->symbols;
  }

  // Forward elimination with partial pivoting (any nonzero pivot works in a
  // field; Vandermonde with distinct points is nonsingular).
  for (std::size_t col = 0; col < k; ++col) {
    std::size_t pivot = col;
    while (pivot < k && v[pivot][col] == 0) ++pivot;
    NRN_ENSURES(pivot < k, "singular Vandermonde system (duplicate points?)");
    std::swap(v[pivot], v[col]);
    std::swap(y[pivot], y[col]);
    const Gf65536::Symbol inv = field_.inv(v[col][col]);
    for (std::size_t c = col; c < k; ++c) v[col][c] = field_.mul(v[col][c], inv);
    for (auto& s : y[col]) s = field_.mul(s, inv);
    for (std::size_t r = 0; r < k; ++r) {
      if (r == col || v[r][col] == 0) continue;
      const Gf65536::Symbol f = v[r][col];
      for (std::size_t c = col; c < k; ++c)
        v[r][c] = field_.sub(v[r][c], field_.mul(f, v[col][c]));
      for (std::size_t s = 0; s < block_len_; ++s)
        y[r][s] = field_.sub(y[r][s], field_.mul(f, y[col][s]));
    }
  }
  return y;
}

}  // namespace nrn::coding

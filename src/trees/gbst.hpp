// Gathering-broadcasting spanning trees (GBST, paper Section 3.4.2).
//
// FASTBC's fast rounds let every fast node at level l and rank r broadcast
// simultaneously (when t = l - 6r mod 6*rmax).  Its analysis needs those
// simultaneous transmissions to never interfere at their intended receivers
// (each fast node's same-rank child).  The paper states this as the GBST
// property on the ranked BFS tree; figure 1 shows the violating object is a
// *graph* edge between the structures of two same-level same-rank fast
// pairs.
//
// We therefore define (and validate) the property semantically, which is
// exactly what the schedule requires:
//
//   For every (level l, rank r) and every two distinct fast nodes x, y at
//   that level and rank, y is not a G-neighbor of x's fast child and x is
//   not a G-neighbor of y's fast child.
//
// (Simultaneous fast broadcasters of *different* ranks sit >= 6 BFS levels
// apart by the schedule arithmetic, so only the same-(l, r) case needs a
// tree property; see Lemma 8's proof.)
//
// build_gbst constructs a ranked BFS tree with a bottom-up greedy that
// elects at most one fast edge per (level boundary, rank) where possible
// and pairs surplus same-rank children onto shared parents (which promotes
// the parent and keeps it non-fast).  A repair loop then rewires any
// remaining semantic violation: if broadcaster x would collide at y's fast
// child c_y, then x is adjacent to c_y and one level above it, so c_y is
// re-parented to x; x gains a second max-rank child and is promoted, which
// removes the interference.  Ranks are recomputed after each rewire.
#pragma once

#include <cstdint>
#include <vector>

#include "trees/ranked_bfs.hpp"

namespace nrn::trees {

/// One interference pair: broadcaster `interferer` collides at the fast
/// child of `victim` (both fast, same level, same rank).
struct Interference {
  NodeId victim = -1;
  NodeId interferer = -1;
  NodeId fast_child = -1;
};

/// Lists all semantic GBST violations of `tree` in `g`.
std::vector<Interference> find_interference(const Graph& g,
                                            const RankedBfsTree& tree);

/// True iff the tree has the semantic GBST property.
bool is_gbst(const Graph& g, const RankedBfsTree& tree);

struct GbstBuildStats {
  std::int32_t repair_rewires = 0;       ///< parent rewires performed
  std::int32_t violations_remaining = 0; ///< 0 on success
};

/// Builds a GBST of the connected graph `g` rooted at `source`.
/// On return `stats` (if non-null) reports the repair effort; the caller
/// should treat `violations_remaining > 0` as a failed construction (it
/// does not occur on the topology families used in this repository's
/// experiments; the bound is a safety valve for adversarial inputs).
RankedBfsTree build_gbst(const Graph& g, NodeId source,
                         GbstBuildStats* stats = nullptr);

}  // namespace nrn::trees

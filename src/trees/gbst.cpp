#include "trees/gbst.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "graph/algorithms.hpp"

namespace nrn::trees {

namespace {

/// Groups fast nodes by (level, rank).
std::map<std::pair<std::int32_t, std::int32_t>, std::vector<NodeId>>
fast_groups(const RankedBfsTree& tree) {
  std::map<std::pair<std::int32_t, std::int32_t>, std::vector<NodeId>> groups;
  for (NodeId u = 0; u < tree.node_count(); ++u) {
    if (!tree.is_fast(u)) continue;
    const auto ui = static_cast<std::size_t>(u);
    groups[{tree.level[ui], tree.rank[ui]}].push_back(u);
  }
  return groups;
}

}  // namespace

std::vector<Interference> find_interference(const Graph& g,
                                            const RankedBfsTree& tree) {
  std::vector<Interference> found;
  for (const auto& [key, nodes] : fast_groups(tree)) {
    if (nodes.size() < 2) continue;
    // Membership set for this (level, rank) group.
    for (const NodeId victim : nodes) {
      const NodeId child = tree.fast_child[static_cast<std::size_t>(victim)];
      for (const NodeId w : g.neighbors(child)) {
        if (w == victim) continue;
        const auto wi = static_cast<std::size_t>(w);
        const bool w_in_group = tree.is_fast(w) &&
                                tree.level[wi] == key.first &&
                                tree.rank[wi] == key.second;
        if (w_in_group) found.push_back(Interference{victim, w, child});
      }
    }
  }
  return found;
}

bool is_gbst(const Graph& g, const RankedBfsTree& tree) {
  return find_interference(g, tree).empty();
}

namespace {

/// Greedy bottom-up parent assignment.  Processes level boundaries from the
/// deepest upward; within a boundary, child rank groups in decreasing
/// order.  Tries to end each (boundary, rank) with at most one parent whose
/// final rank equals the child rank ("one fast edge"), by
///   A. attaching children to parents already carrying a higher-rank child,
///   B. pairing two or more same-rank children onto a shared parent (which
///      promotes the parent past the rank),
///   C. electing a single leftover as the boundary's fast edge and pushing
///      any further leftovers onto already-used same-rank parents.
/// The output feeds the semantic repair loop in build_gbst.
void assign_parents_greedy(const Graph& g, RankedBfsTree& tree) {
  const auto layers = graph::bfs_layers(g, tree.source);
  const auto n = static_cast<std::size_t>(tree.node_count());
  std::fill(tree.parent.begin(), tree.parent.end(), static_cast<NodeId>(-1));

  // Per-parent running max child rank and its multiplicity.
  std::vector<std::int32_t> cur_max(n, 0), cur_cnt(n, 0);
  // rank[] is filled level by level as boundaries complete.
  std::vector<std::int32_t>& rank = tree.rank;
  rank.assign(n, 0);

  auto finalize_rank = [&](NodeId p) {
    const auto pi = static_cast<std::size_t>(p);
    if (cur_cnt[pi] == 0)
      rank[pi] = 1;
    else if (cur_cnt[pi] == 1)
      rank[pi] = cur_max[pi];
    else
      rank[pi] = cur_max[pi] + 1;
  };

  auto attach = [&](NodeId child, NodeId p) {
    tree.parent[static_cast<std::size_t>(child)] = p;
    const auto pi = static_cast<std::size_t>(p);
    const std::int32_t r = rank[static_cast<std::size_t>(child)];
    if (r > cur_max[pi]) {
      cur_max[pi] = r;
      cur_cnt[pi] = 1;
    } else if (r == cur_max[pi]) {
      ++cur_cnt[pi];
    }
  };

  // Deepest layer nodes are leaves of the tree: rank 1.
  for (const NodeId u : layers.back()) rank[static_cast<std::size_t>(u)] = 1;

  for (std::int32_t l = static_cast<std::int32_t>(layers.size()) - 2; l >= 0;
       --l) {
    const auto& children = layers[static_cast<std::size_t>(l) + 1];
    // Group children by rank, descending.
    std::map<std::int32_t, std::vector<NodeId>, std::greater<>> groups;
    for (const NodeId u : children) groups[rank[static_cast<std::size_t>(u)]].push_back(u);

    for (auto& [r, group] : groups) {
      std::vector<NodeId> leftovers;
      // Phase A: parents already above rank r are always safe.
      for (const NodeId u : group) {
        NodeId pick = -1;
        for (const NodeId p : g.neighbors(u)) {
          const auto pi = static_cast<std::size_t>(p);
          if (tree.level[pi] != l) continue;
          if (cur_max[pi] > r) {
            pick = p;
            break;
          }
        }
        if (pick >= 0)
          attach(u, pick);
        else
          leftovers.push_back(u);
      }
      // Phase B: pair leftovers onto shared fresh parents.
      bool changed = true;
      while (changed && leftovers.size() >= 2) {
        changed = false;
        std::map<NodeId, std::vector<NodeId>> candidates;
        for (const NodeId u : leftovers)
          for (const NodeId p : g.neighbors(u))
            if (tree.level[static_cast<std::size_t>(p)] == l &&
                cur_max[static_cast<std::size_t>(p)] < r)
              candidates[p].push_back(u);
        NodeId best_parent = -1;
        std::size_t best_size = 1;
        for (const auto& [p, us] : candidates)
          if (us.size() > best_size) {
            best_parent = p;
            best_size = us.size();
          }
        if (best_parent >= 0) {
          for (const NodeId u : candidates[best_parent]) attach(u, best_parent);
          std::vector<NodeId> rest;
          for (const NodeId u : leftovers)
            if (tree.parent[static_cast<std::size_t>(u)] < 0) rest.push_back(u);
          leftovers.swap(rest);
          changed = true;
        }
      }
      // Phase C: singletons.  First one gets to be the fast edge; the rest
      // prefer same-rank parents (attaching promotes the parent past r).
      bool elected = false;
      for (const NodeId u : leftovers) {
        NodeId same_rank_parent = -1;
        NodeId fresh_parent = -1;
        for (const NodeId p : g.neighbors(u)) {
          const auto pi = static_cast<std::size_t>(p);
          if (tree.level[pi] != l) continue;
          if (cur_max[pi] == r && same_rank_parent < 0) same_rank_parent = p;
          if (cur_max[pi] < r && fresh_parent < 0) fresh_parent = p;
        }
        if (!elected && fresh_parent >= 0) {
          attach(u, fresh_parent);
          elected = true;
        } else if (same_rank_parent >= 0) {
          attach(u, same_rank_parent);
        } else if (fresh_parent >= 0) {
          // Unavoidable extra fast edge; the repair loop deals with it if
          // it actually interferes.
          attach(u, fresh_parent);
        } else {
          // Every level-l neighbor already has a higher-rank child; safe.
          NodeId any = -1;
          for (const NodeId p : g.neighbors(u))
            if (tree.level[static_cast<std::size_t>(p)] == l) {
              any = p;
              break;
            }
          NRN_ENSURES(any >= 0, "BFS child without a boundary parent");
          attach(u, any);
        }
      }
    }
    // Boundary complete: ranks at level l are now final.
    for (const NodeId p : layers[static_cast<std::size_t>(l)]) finalize_rank(p);
  }
}

}  // namespace

RankedBfsTree build_gbst(const Graph& g, NodeId source, GbstBuildStats* stats) {
  RankedBfsTree tree = build_ranked_bfs(g, source);  // levels + fallback tree
  assign_parents_greedy(g, tree);
  recompute_ranks(g, tree);

  GbstBuildStats local;
  // Semantic repair: re-parent the victim's fast child onto the interferer,
  // promoting the interferer and removing the collision.
  const std::int32_t max_rewires = 10 * g.node_count() + 100;
  while (local.repair_rewires < max_rewires) {
    const auto violations = find_interference(g, tree);
    if (violations.empty()) break;
    const auto& v = violations.front();
    // v.interferer is adjacent to v.fast_child and sits one level above it,
    // so it is a legal BFS parent.
    tree.parent[static_cast<std::size_t>(v.fast_child)] = v.interferer;
    recompute_ranks(g, tree);
    ++local.repair_rewires;
  }
  local.violations_remaining =
      static_cast<std::int32_t>(find_interference(g, tree).size());
  if (stats != nullptr) *stats = local;
  return tree;
}

}  // namespace nrn::trees

// Ranked BFS trees (paper Section 3.4.2).
//
// A ranked BFS tree is a BFS tree rooted at the source where every node
// carries an integral rank computed bottom-up:
//   * every leaf has rank 1;
//   * an internal node whose maximum child rank is r has rank r if exactly
//     one child attains r, and rank r+1 otherwise.
//
// Lemma 7 (Gaber-Mansour): the largest rank is at most ceil(log2 n).
//
// The tree also exposes the "fast" structure FASTBC runs on: node u is
// *fast* when one of its children has the same rank as u ("fast edge");
// maximal chains of fast edges of equal rank are *fast stretches*.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace nrn::trees {

using graph::Graph;
using graph::NodeId;

/// A BFS spanning tree with Gaber-Mansour ranks and fast-edge structure.
struct RankedBfsTree {
  NodeId source = 0;
  std::vector<NodeId> parent;        ///< -1 at the source
  std::vector<std::int32_t> level;   ///< BFS distance from the source
  std::vector<std::int32_t> rank;    ///< Gaber-Mansour rank
  std::vector<NodeId> fast_child;    ///< same-rank child, or -1
  std::int32_t depth = 0;            ///< max level
  std::int32_t max_rank = 0;

  NodeId node_count() const { return static_cast<NodeId>(parent.size()); }
  bool is_fast(NodeId u) const {
    return fast_child[static_cast<std::size_t>(u)] >= 0;
  }
};

/// Builds a ranked BFS tree with an arbitrary (min-id) parent choice.
/// The graph must be connected.
RankedBfsTree build_ranked_bfs(const Graph& g, NodeId source);

/// Recomputes level-consistency, ranks and fast children for an existing
/// parent assignment (used after GBST repair rewires parents).  The parent
/// array must describe a BFS tree of g rooted at tree.source.
void recompute_ranks(const Graph& g, RankedBfsTree& tree);

/// Checks the defining properties: parent edges exist in g, levels are BFS
/// distances, ranks follow the leaf/internal rules.  Throws on violation.
void validate_ranked_bfs(const Graph& g, const RankedBfsTree& tree);

/// Decomposes the tree into maximal fast stretches; returns, for each
/// stretch, the node sequence from its head (closest to the source) to its
/// tail.  Every fast edge belongs to exactly one stretch.
std::vector<std::vector<NodeId>> fast_stretches(const RankedBfsTree& tree);

/// Number of fast stretches intersected by the root-to-u tree path; the
/// FASTBC analysis bounds this by O(log n) (ranks are non-increasing).
std::int32_t stretches_on_path(const RankedBfsTree& tree, NodeId u);

}  // namespace nrn::trees

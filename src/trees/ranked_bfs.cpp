#include "trees/ranked_bfs.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"

namespace nrn::trees {

namespace {

/// Nodes ordered by decreasing level (children before parents).
std::vector<NodeId> bottom_up_order(const RankedBfsTree& tree) {
  std::vector<NodeId> order(static_cast<std::size_t>(tree.node_count()));
  for (NodeId u = 0; u < tree.node_count(); ++u)
    order[static_cast<std::size_t>(u)] = u;
  std::sort(order.begin(), order.end(), [&tree](NodeId a, NodeId b) {
    return tree.level[static_cast<std::size_t>(a)] >
           tree.level[static_cast<std::size_t>(b)];
  });
  return order;
}

}  // namespace

RankedBfsTree build_ranked_bfs(const Graph& g, NodeId source) {
  NRN_EXPECTS(source >= 0 && source < g.node_count(), "source out of range");
  RankedBfsTree tree;
  tree.source = source;
  tree.level = graph::bfs_distances(g, source);
  NRN_EXPECTS(std::none_of(tree.level.begin(), tree.level.end(),
                           [](std::int32_t d) { return d == graph::kUnreachable; }),
              "ranked BFS tree requires a connected graph");
  const auto n = static_cast<std::size_t>(g.node_count());
  tree.parent.assign(n, -1);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (u == source) continue;
    const std::int32_t lu = tree.level[static_cast<std::size_t>(u)];
    // Min-id neighbor one level up; deterministic default parent choice.
    for (NodeId v : g.neighbors(u)) {
      if (tree.level[static_cast<std::size_t>(v)] == lu - 1) {
        tree.parent[static_cast<std::size_t>(u)] = v;
        break;
      }
    }
    NRN_ENSURES(tree.parent[static_cast<std::size_t>(u)] >= 0,
                "BFS node without a parent candidate");
  }
  recompute_ranks(g, tree);
  return tree;
}

void recompute_ranks(const Graph& g, RankedBfsTree& tree) {
  const auto n = static_cast<std::size_t>(tree.node_count());
  NRN_EXPECTS(n == static_cast<std::size_t>(g.node_count()),
              "tree/graph size mismatch");
  tree.rank.assign(n, 0);
  tree.fast_child.assign(n, -1);
  tree.depth = 0;
  tree.max_rank = 0;
  for (auto lvl : tree.level) tree.depth = std::max(tree.depth, lvl);

  // max child rank and its multiplicity, accumulated child-to-parent.
  std::vector<std::int32_t> best(n, 0), best_count(n, 0);
  std::vector<NodeId> best_child(n, -1);
  for (NodeId u : bottom_up_order(tree)) {
    const auto ui = static_cast<std::size_t>(u);
    std::int32_t r;
    if (best_count[ui] == 0) {
      r = 1;  // leaf
    } else if (best_count[ui] == 1) {
      r = best[ui];
      tree.fast_child[ui] = best_child[ui];
    } else {
      r = best[ui] + 1;
    }
    tree.rank[ui] = r;
    tree.max_rank = std::max(tree.max_rank, r);
    const NodeId p = tree.parent[ui];
    if (p >= 0) {
      const auto pi = static_cast<std::size_t>(p);
      if (r > best[pi]) {
        best[pi] = r;
        best_count[pi] = 1;
        best_child[pi] = u;
      } else if (r == best[pi]) {
        ++best_count[pi];
      }
    }
  }
}

void validate_ranked_bfs(const Graph& g, const RankedBfsTree& tree) {
  const NodeId n = tree.node_count();
  NRN_EXPECTS(n == g.node_count(), "tree/graph size mismatch");
  const auto dist = graph::bfs_distances(g, tree.source);
  for (NodeId u = 0; u < n; ++u) {
    const auto ui = static_cast<std::size_t>(u);
    NRN_EXPECTS(tree.level[ui] == dist[ui], "levels must be BFS distances");
    if (u == tree.source) {
      NRN_EXPECTS(tree.parent[ui] == -1, "source must have no parent");
      continue;
    }
    const NodeId p = tree.parent[ui];
    NRN_EXPECTS(p >= 0 && p < n, "missing parent");
    NRN_EXPECTS(g.has_edge(u, p), "tree edge absent from graph");
    NRN_EXPECTS(tree.level[static_cast<std::size_t>(p)] == tree.level[ui] - 1,
                "parent must be exactly one level up");
  }
  // Re-derive ranks and compare.
  RankedBfsTree copy = tree;
  recompute_ranks(g, copy);
  for (NodeId u = 0; u < n; ++u) {
    const auto ui = static_cast<std::size_t>(u);
    NRN_EXPECTS(tree.rank[ui] == copy.rank[ui], "stored rank incorrect");
  }
}

std::vector<std::vector<NodeId>> fast_stretches(const RankedBfsTree& tree) {
  std::vector<std::vector<NodeId>> stretches;
  const NodeId n = tree.node_count();
  for (NodeId u = 0; u < n; ++u) {
    if (!tree.is_fast(u)) continue;
    // u heads a stretch iff its parent does not continue a fast chain into u.
    const NodeId p = tree.parent[static_cast<std::size_t>(u)];
    const bool continued =
        p >= 0 && tree.fast_child[static_cast<std::size_t>(p)] == u &&
        tree.rank[static_cast<std::size_t>(p)] ==
            tree.rank[static_cast<std::size_t>(u)];
    if (continued) continue;
    std::vector<NodeId> chain{u};
    NodeId cur = u;
    while (tree.is_fast(cur)) {
      const NodeId next = tree.fast_child[static_cast<std::size_t>(cur)];
      chain.push_back(next);
      cur = next;
    }
    stretches.push_back(std::move(chain));
  }
  return stretches;
}

std::int32_t stretches_on_path(const RankedBfsTree& tree, NodeId u) {
  // Walk up to the root counting maximal runs of fast edges.
  std::int32_t count = 0;
  bool in_run = false;
  NodeId cur = u;
  while (true) {
    const NodeId p = tree.parent[static_cast<std::size_t>(cur)];
    if (p < 0) break;
    const bool fast_edge = tree.fast_child[static_cast<std::size_t>(p)] == cur &&
                           tree.rank[static_cast<std::size_t>(p)] ==
                               tree.rank[static_cast<std::size_t>(cur)];
    if (fast_edge && !in_run) {
      ++count;
      in_run = true;
    } else if (!fast_edge) {
      in_run = false;
    }
    cur = p;
  }
  return count;
}

}  // namespace nrn::trees

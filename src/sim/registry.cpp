#include "sim/registry.hpp"

namespace nrn::sim {

void ProtocolRegistry::add(const std::string& name,
                           const std::string& description, Factory factory) {
  entries_[name] = Entry{description, std::move(factory)};
}

bool ProtocolRegistry::contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

std::unique_ptr<BroadcastProtocol> ProtocolRegistry::create(
    const std::string& name, const ProtocolContext& ctx) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& [key, entry] : entries_) {
      if (!known.empty()) known += " ";
      known += key;
    }
    throw SpecError("unknown protocol '" + name + "' (registered: " + known +
                    ")");
  }
  return it->second.factory(ctx);
}

std::vector<std::string> ProtocolRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(key);
  return out;
}

const std::string& ProtocolRegistry::description(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) throw SpecError("unknown protocol '" + name + "'");
  return it->second.description;
}

ProtocolRegistry& ProtocolRegistry::global() {
  static ProtocolRegistry registry = [] {
    ProtocolRegistry r;
    register_builtin_protocols(r);
    return r;
  }();
  return registry;
}

}  // namespace nrn::sim

#include "sim/registry.hpp"

namespace nrn::sim {

void ProtocolRegistry::add(const std::string& name,
                           const std::string& description,
                           CapabilitySet capabilities, Factory factory,
                           TheoryBound bound) {
  entries_[name] =
      Entry{description, capabilities, std::move(factory), std::move(bound)};
}

void ProtocolRegistry::add(const std::string& name,
                           const std::string& description, Factory factory) {
  add(name, description, 0, std::move(factory));
}

bool ProtocolRegistry::contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

const ProtocolRegistry::Entry& ProtocolRegistry::entry(
    const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& [key, unused] : entries_) {
      if (!known.empty()) known += " ";
      known += key;
    }
    throw SpecError("unknown protocol '" + name + "' (registered: " + known +
                    ")");
  }
  return it->second;
}

std::unique_ptr<BroadcastProtocol> ProtocolRegistry::create(
    const std::string& name, const ProtocolContext& ctx) const {
  return entry(name).factory(ctx);
}

std::vector<std::string> ProtocolRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [key, unused] : entries_) out.push_back(key);
  return out;
}

const std::string& ProtocolRegistry::description(
    const std::string& name) const {
  return entry(name).description;
}

CapabilitySet ProtocolRegistry::capabilities(const std::string& name) const {
  return entry(name).capabilities;
}

bool ProtocolRegistry::has_theory_bound(const std::string& name) const {
  return entry(name).bound != nullptr;
}

double ProtocolRegistry::theory_bound(const std::string& name,
                                      const TheoryContext& ctx) const {
  const Entry& e = entry(name);
  return e.bound ? e.bound(ctx) : 0.0;
}

ProtocolRegistry& ProtocolRegistry::global() {
  static ProtocolRegistry registry = [] {
    ProtocolRegistry r;
    register_builtin_protocols(r);
    return r;
  }();
  return registry;
}

}  // namespace nrn::sim

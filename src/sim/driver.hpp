// Multi-trial experiment execution.
//
// The Driver is the one trial loop in the library: it materializes a
// Scenario's graph, builds the protocol once through the registry (so
// known-topology precomputation like the GBST is shared across trials),
// derives one independent Rng stream per trial with Rng::split, and runs
// the trials -- serially or batched over the shared TaskPool.  Per-trial
// seeds are derived up front in trial order, so an ExperimentReport is
// bit-identical for a given scenario regardless of the thread count.
//
// v3: batching runs on the persistent common::TaskPool (no per-experiment
// thread spawn), and each pool slot owns a TrialWorkspace whose
// RadioNetwork is reset -- not reallocated -- between trials.
//
// v2: trials carry Outcome metric maps instead of a fixed struct, and the
// report records the protocol's capabilities, the source's BFS depth, and
// the registered theory bound evaluated on the concrete scenario -- the
// inputs of the emitters' gap-vs-theory columns.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "radio/lockstep.hpp"
#include "radio/network.hpp"
#include "sim/registry.hpp"

namespace nrn::sim {

/// Largest node count at which kAuto picks the lockstep bank: the bank's
/// win is the shared adjacency pass and the per-node O(n) scan, which pay
/// off on the small-n cells that dominate sweep grids and lose to the
/// sparse kernel's epoch slots once rounds touch a small fraction of a
/// large graph.
inline constexpr std::int32_t kLockstepAutoMaxNodes = 512;

/// How the Driver executes a protocol's trials.  Every mode produces
/// bit-identical reports: lockstep lanes replay exactly the scalar tape.
enum class TrialExecution {
  /// Lockstep for multi-trial experiments of steppable protocols at
  /// n <= kLockstepAutoMaxNodes; scalar otherwise.
  kAuto,
  /// Always the scalar engine (one RadioNetwork per trial).
  kScalar,
  /// Lockstep banks whenever the protocol can step (make_stepper non-null),
  /// regardless of size; scalar only for non-steppable protocols.
  kLockstep,
};

/// One trial's outcome plus the seeds that reproduce it.
struct TrialReport {
  int index = 0;
  std::uint64_t net_seed = 0;   ///< seeds the fault-coin stream
  std::uint64_t algo_seed = 0;  ///< seeds the protocol's own coins
  Outcome run;

  friend bool operator==(const TrialReport&, const TrialReport&) = default;
};

/// Mean/min/max of one metric across the trials that report it.
struct MetricSummary {
  int count = 0;  ///< trials carrying the metric
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;

  friend bool operator==(const MetricSummary&, const MetricSummary&) = default;
};

/// A full experiment: one protocol, one scenario, T trials.
struct ExperimentReport {
  std::string protocol;
  Scenario scenario;
  std::int64_t node_count = 0;
  std::int64_t edge_count = 0;
  std::int64_t depth = 0;  ///< BFS eccentricity of the source (the paper's D)
  CapabilitySet capabilities = 0;
  double theory_bound = 0.0;  ///< registered bound in rounds; 0 = none

  std::vector<TrialReport> trials;

  bool all_completed() const;
  int completed_trials() const;
  std::vector<double> rounds() const;   ///< per-trial round counts, in order
  double median_rounds() const;
  double mean_rounds() const;

  bool has_theory_bound() const { return theory_bound > 0.0; }
  /// median rounds / theory bound; 0 when no bound is registered.
  double gap() const;

  /// Sorted union of the metric keys across all trials.
  std::vector<std::string> metric_keys() const;
  /// Sorted union of the series keys across all trials (empty unless the
  /// experiment ran with tracing on a kTraced protocol).
  std::vector<std::string> series_keys() const;
  bool has_series() const { return !series_keys().empty(); }
  /// Values of one metric (as reals) over the trials that carry it.
  std::vector<double> metric_values(const std::string& key) const;
  MetricSummary metric_summary(const std::string& key) const;

  friend bool operator==(const ExperimentReport&,
                         const ExperimentReport&) = default;
};

struct DriverOptions {
  /// Concurrent trial executors (pool workers + the caller); <= 1 runs
  /// trials inline.  Results are identical either way.
  int threads = 1;
  /// Protocol knobs forwarded to the factory.
  Tuning tuning;
  /// Record per-round series into each trial's Outcome.  Only protocols
  /// with the kTraced capability are traced (a TraceRecorder is attached
  /// to every trial and folded into the "informed" / "deliveries" /
  /// "collisions" / "broadcasters" series); for other protocols -- and
  /// whenever this is false -- no recorder is allocated and outcomes are
  /// bit-identical to an untraced run.
  bool trace = false;
  /// Scalar vs. lockstep trial execution (see TrialExecution).  Reports
  /// are bit-identical in every mode; this is purely a performance knob.
  TrialExecution execution = TrialExecution::kAuto;
};

/// Per-worker arena: one RadioNetwork reused across all the trials a pool
/// slot runs, reset (O(1)) instead of reallocated (O(n)) per trial.
class TrialWorkspace {
 public:
  /// `geometry` must be non-null for a kSinr channel and outlive the
  /// workspace (the Driver keeps both alive for the whole experiment).
  radio::RadioNetwork& acquire(const graph::Graph& graph,
                               const radio::ChannelModel& channel,
                               const graph::Geometry* geometry, Rng rng) {
    if (!net_) {
      net_.emplace(graph, channel, geometry, rng);
    } else {
      // reset() keeps the bound graph; a workspace is per-experiment, so
      // a different graph means the caller is holding it too long.
      NRN_EXPECTS(&graph == &net_->graph(),
                  "TrialWorkspace reused across different graphs");
      net_->reset(channel, rng);
    }
    return *net_;
  }

  /// Lockstep counterpart of acquire(): one LockstepNetwork bank reused
  /// across the banks a pool slot runs.  Lanes are seeded by the caller
  /// (LockstepNetwork::add_lane), so no Rng is taken here.
  radio::LockstepNetwork& acquire_bank(const graph::Graph& graph,
                                       const radio::ChannelModel& channel,
                                       const graph::Geometry* geometry) {
    if (!bank_) {
      bank_.emplace(graph, channel, geometry);
    } else {
      NRN_EXPECTS(&graph == &bank_->graph(),
                  "TrialWorkspace reused across different graphs");
      bank_->reset(channel);
    }
    return *bank_;
  }

 private:
  std::optional<radio::RadioNetwork> net_;
  std::optional<radio::LockstepNetwork> bank_;
};

class Driver {
 public:
  explicit Driver(const ProtocolRegistry& registry = ProtocolRegistry::global())
      : registry_(&registry) {}

  /// Runs `trials` trials of `protocol_name` on `scenario`.  Throws
  /// SpecError for an unknown protocol and propagates protocol/contract
  /// errors from the trials themselves.
  ExperimentReport run(const Scenario& scenario,
                       const std::string& protocol_name, int trials,
                       const DriverOptions& options = {}) const;

 private:
  const ProtocolRegistry* registry_;
};

}  // namespace nrn::sim

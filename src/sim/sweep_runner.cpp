#include "sim/sweep_runner.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <thread>

#include "common/errors.hpp"
#include "common/numio.hpp"
#include "common/task_pool.hpp"
#include "sim/format_version.hpp"

namespace nrn::sim {

namespace {

// Every "experiment vN" / "nrn-sweep-shard vN" / "nrn-sweep-cache vN"
// literal below must track this constant (nrn_lint enforces agreement).
static_assert(kSweepFormatVersion == 6,
              "update every vN format literal in this file alongside "
              "kSweepFormatVersion, then regenerate the goldens");

[[noreturn]] void bad_format(const std::string& what) { throw SpecError(what); }

std::string hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

/// Strict line-by-line reader for the record formats below.
struct LineCursor {
  std::vector<std::string> lines;
  std::size_t pos = 0;

  explicit LineCursor(const std::string& text) {
    std::string line;
    std::istringstream in(text);
    while (std::getline(in, line)) lines.push_back(line);
  }

  bool done() const { return pos >= lines.size(); }

  /// True when the next line (if any) starts with `prefix`; consumes
  /// nothing.  Used for the optional series lines after each trial.
  bool peek_prefix(const std::string& prefix) const {
    return pos < lines.size() && lines[pos].rfind(prefix, 0) == 0;
  }

  const std::string& next(const std::string& context) {
    if (done()) bad_format(context + ": unexpected end of record");
    return lines[pos++];
  }

  /// Consumes the next line, which must start with `prefix`; returns the
  /// remainder.
  std::string field(const std::string& prefix) {
    const std::string& line = next("after '" + prefix + "'");
    if (line.rfind(prefix, 0) != 0)
      bad_format("expected '" + prefix + "...', got '" + line + "'");
    return line.substr(prefix.size());
  }

  void literal(const std::string& expected) {
    const std::string& line = next("expecting '" + expected + "'");
    if (line != expected)
      bad_format("expected '" + expected + "', got '" + line + "'");
  }
};

std::vector<std::string> split_spaces(const std::string& s) {
  std::vector<std::string> parts;
  std::istringstream in(s);
  std::string token;
  while (in >> token) parts.push_back(token);
  return parts;
}

void append_experiment_record(std::ostream& os,
                              const ExperimentReport& report) {
  os << "experiment v6\n"
     << "protocol " << report.protocol << "\n"
     << "topology " << report.scenario.topology.text << "\n"
     << "fault " << report.scenario.fault_text << "\n";
  // Since v6: one optional channel line for non-edge channels.  Edge-fault
  // records stay byte-identical to v5 modulo the version header.
  if (report.scenario.channel_text != "none")
    os << "channel " << report.scenario.channel_text << "\n";
  os << "source " << report.scenario.source << "\n"
     << "k " << report.scenario.k << "\n"
     << "seed " << report.scenario.seed << "\n"
     << "nodes " << report.node_count << "\n"
     << "edges " << report.edge_count << "\n"
     << "depth " << report.depth << "\n"
     << "capabilities " << report.capabilities << "\n"
     // Hexfloat via MetricValue: bit-exact round trip for the bound.
     << "theory-bound " << MetricValue(report.theory_bound).serialize()
     << "\n"
     << "trials " << report.trials.size() << "\n";
  for (const auto& trial : report.trials) {
    os << "trial " << trial.index << " " << trial.net_seed << " "
       << trial.algo_seed << " " << (trial.run.completed ? 1 : 0) << " "
       << trial.run.metrics.size();
    for (const auto& [key, value] : trial.run.metrics)
      os << " " << key << "=" << value.serialize();
    os << "\n";
    // Since v4: zero or more per-round series after the trial line they
    // belong to.  Untraced trials emit nothing.  v5 keeps the grammar of
    // v4 unchanged; the bump marks the engine's v4 coin tape (every
    // seeded outcome differs from v4 records).
    for (const auto& [key, values] : trial.run.series) {
      os << "series " << key << " " << values.size();
      for (const auto& value : values) os << " " << value.serialize();
      os << "\n";
    }
  }
  os << "end\n";
}

ExperimentReport parse_experiment_cursor(LineCursor& cursor) {
  cursor.literal("experiment v6");
  ExperimentReport report;
  report.protocol = cursor.field("protocol ");
  const std::string topology = cursor.field("topology ");
  const std::string fault = cursor.field("fault ");
  const std::string channel =
      cursor.peek_prefix("channel ") ? cursor.field("channel ") : "none";
  const std::int64_t source = parse_spec_int(cursor.field("source "), "source");
  const std::int64_t k = parse_spec_int(cursor.field("k "), "k");
  const std::uint64_t seed = parse_spec_uint(cursor.field("seed "), "seed");
  report.scenario = Scenario::parse(topology, fault,
                                    static_cast<graph::NodeId>(source), k,
                                    seed, channel);
  report.node_count = parse_spec_int(cursor.field("nodes "), "nodes");
  report.edge_count = parse_spec_int(cursor.field("edges "), "edges");
  report.depth = parse_spec_int(cursor.field("depth "), "depth");
  report.capabilities = static_cast<CapabilitySet>(
      parse_spec_uint(cursor.field("capabilities "), "capabilities"));
  const auto bound = MetricValue::parse(cursor.field("theory-bound "));
  if (!bound || bound->is_int()) bad_format("malformed theory bound");
  report.theory_bound = bound->as_real();
  const std::int64_t trials =
      parse_spec_int(cursor.field("trials "), "trials");
  if (trials < 0 || trials > 10'000'000) bad_format("implausible trial count");
  report.trials.resize(static_cast<std::size_t>(trials));
  for (std::int64_t t = 0; t < trials; ++t) {
    const auto tokens = split_spaces(cursor.field("trial "));
    if (tokens.size() < 5) bad_format("malformed trial line");
    auto& trial = report.trials[static_cast<std::size_t>(t)];
    trial.index = static_cast<int>(parse_spec_int(tokens[0], "trial index"));
    if (trial.index != static_cast<int>(t)) bad_format("trial out of order");
    trial.net_seed = parse_spec_uint(tokens[1], "net seed");
    trial.algo_seed = parse_spec_uint(tokens[2], "algo seed");
    const std::int64_t completed = parse_spec_int(tokens[3], "completed");
    if (completed != 0 && completed != 1) bad_format("bad completed flag");
    trial.run.completed = completed == 1;
    const std::int64_t metric_count =
        parse_spec_int(tokens[4], "metric count");
    if (metric_count < 0 ||
        metric_count != static_cast<std::int64_t>(tokens.size()) - 5)
      bad_format("metric count mismatch on trial line");
    for (std::size_t i = 5; i < tokens.size(); ++i) {
      const auto eq = tokens[i].find('=');
      if (eq == std::string::npos) bad_format("malformed metric token");
      const std::string key = tokens[i].substr(0, eq);
      if (!valid_metric_key(key)) bad_format("invalid metric key");
      const auto value = MetricValue::parse(tokens[i].substr(eq + 1));
      if (!value) bad_format("malformed metric value");
      if (!trial.run.metrics.emplace(key, *value).second)
        bad_format("duplicate metric key");
    }
    while (cursor.peek_prefix("series ")) {
      const auto series = split_spaces(cursor.field("series "));
      if (series.size() < 2) bad_format("malformed series line");
      const std::string& key = series[0];
      if (!valid_metric_key(key)) bad_format("invalid series key");
      const std::int64_t count = parse_spec_int(series[1], "series count");
      if (count < 0 ||
          count != static_cast<std::int64_t>(series.size()) - 2)
        bad_format("series count mismatch");
      std::vector<MetricValue> values;
      values.reserve(static_cast<std::size_t>(count));
      for (std::size_t i = 2; i < series.size(); ++i) {
        const auto value = MetricValue::parse(series[i]);
        if (!value) bad_format("malformed series value");
        values.push_back(*value);
      }
      if (!trial.run.series.emplace(key, std::move(values)).second)
        bad_format("duplicate series key");
    }
  }
  cursor.literal("end");
  return report;
}

/// Splits `text` into (body, checksum) at the trailing checksum line and
/// verifies the checksum; the returned body still ends with '\n'.
std::string verified_body(const std::string& text) {
  if (text.empty() || text.back() != '\n')
    bad_format("record is truncated (no trailing newline)");
  const auto line_start = text.rfind('\n', text.size() - 2);
  const std::size_t begin = line_start == std::string::npos ? 0 : line_start + 1;
  const std::string last = text.substr(begin, text.size() - begin - 1);
  const std::string prefix = "checksum ";
  if (last.rfind(prefix, 0) != 0) bad_format("record has no checksum line");
  const std::string body = text.substr(0, begin);
  if (hex64(fnv1a64(body)) != last.substr(prefix.size()))
    bad_format("record checksum mismatch");
  return body;
}

void write_with_checksum(std::ostream& os, const std::string& body) {
  os << body << "checksum " << hex64(fnv1a64(body)) << "\n";
}

}  // namespace

std::string experiment_record(const ExperimentReport& report) {
  std::ostringstream out;
  append_experiment_record(out, report);
  return out.str();
}

ExperimentReport parse_experiment_record(const std::string& text) {
  LineCursor cursor(text);
  ExperimentReport report = parse_experiment_cursor(cursor);
  if (!cursor.done()) bad_format("trailing data after experiment record");
  return report;
}

// ----------------------------------------------------------------- cache

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  NRN_EXPECTS(!dir_.empty(), "cache directory must be non-empty");
  std::filesystem::create_directories(dir_);
}

std::string ResultCache::entry_path(const std::string& key) const {
  return (std::filesystem::path(dir_) / (hex64(fnv1a64(key)) + ".nrnc"))
      .string();
}

std::optional<ExperimentReport> ResultCache::load(
    const std::string& key) const {
  std::ifstream in(entry_path(key), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream raw;
  raw << in.rdbuf();
  try {
    LineCursor cursor(verified_body(raw.str()));
    cursor.literal("nrn-sweep-cache v6");
    if (cursor.field("key ") != key) return std::nullopt;  // hash collision
    ExperimentReport report = parse_experiment_cursor(cursor);
    if (!cursor.done()) bad_format("trailing data in cache entry");
    return report;
  } catch (const SpecError&) {
    return std::nullopt;  // damaged entry: recompute, never trust
  }
}

namespace {

/// Temp/steal suffix unique across cooperating processes AND threads: the
/// pid separates processes sharing a cache directory, the atomic counter
/// separates threads within one process.  (The old cell-index tag collided
/// when two processes wrote the same cell, interleaving their temp writes
/// into an entry that failed verification on every later load -- the cell
/// silently recomputed forever.)
std::string unique_suffix() {
  static std::atomic<std::uint64_t> counter{0};
  return std::to_string(static_cast<long long>(::getpid())) + "." +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

void ResultCache::store(const std::string& key,
                        const ExperimentReport& report) const {
  std::ostringstream body;
  body << "nrn-sweep-cache v6\n"
       << "key " << key << "\n";
  append_experiment_record(body, report);
  const std::string path = entry_path(key);
  const std::string tmp = path + ".tmp." + unique_suffix();
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;  // unwritable cache never fails the sweep
    write_with_checksum(out, body.str());
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) std::filesystem::remove(tmp, ec);
}

std::string ResultCache::claim_path(const std::string& key) const {
  return (std::filesystem::path(dir_) / (hex64(fnv1a64(key)) + ".claim"))
      .string();
}

bool ResultCache::try_claim(const std::string& key) const {
  // O_EXCL is the one primitive here that is atomic across processes on
  // every POSIX filesystem; exactly one creator wins.
  const std::string path = claim_path(key);
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) {
    // Only EEXIST means "a peer holds it".  Anything else (EACCES on a
    // mis-permissioned shared mount, ENOENT on a vanished directory)
    // would make the fleet's poll loop spin forever with no diagnostic:
    // fail loudly instead.
    if (errno != EEXIST)
      throw SpecError("fleet: cannot create claim file '" + path +
                      "': " + errno_text(errno));
    return false;
  }
  const std::string owner = unique_suffix() + "\n";
  // The content is diagnostic only; claims are judged by existence + mtime.
  [[maybe_unused]] const auto written =
      ::write(fd, owner.data(), owner.size());
  ::close(fd);
  return true;
}

void ResultCache::refresh_claim(const std::string& key) const {
  std::error_code ec;
  std::filesystem::last_write_time(
      claim_path(key), std::filesystem::file_time_type::clock::now(), ec);
}

bool ResultCache::steal_stale_claim(const std::string& key,
                                    double ttl_seconds) const {
  namespace fs = std::filesystem;
  const fs::path claim = claim_path(key);
  std::error_code ec;
  const auto mtime = fs::last_write_time(claim, ec);
  if (ec) return false;  // already gone: claimant finished or was stolen
  const auto age = std::chrono::duration_cast<std::chrono::duration<double>>(
      fs::file_time_type::clock::now() - mtime);
  if (age.count() < ttl_seconds) return false;
  // Rename-away makes the steal atomic: when several workers observe the
  // same stale claim, the one whose rename succeeds owns the removal and
  // the others keep waiting.
  const fs::path away = claim.string() + ".stale." + unique_suffix();
  fs::rename(claim, away, ec);
  if (ec) return false;
  fs::remove(away, ec);
  return true;
}

void ResultCache::release_claim(const std::string& key) const {
  std::error_code ec;
  std::filesystem::remove(claim_path(key), ec);
}

std::string sweep_cache_key(const SweepCell& cell, const Tuning& tuning) {
  // transform_eta is rendered as an exact hexfloat: any bitwise change to
  // the tuning must change the key, so default stream precision (which
  // collapses nearby doubles) would poison the cache.  format_real_hex is
  // locale-independent -- a daemon and a fleet peer under different
  // locales must derive the same key for the same cell.
  std::ostringstream key;
  key << cell.key() << "|tuning=" << tuning.decay_phase << ","
      << tuning.rank_modulus << "," << tuning.block_size << ","
      << tuning.window_multiplier << "," << tuning.batch << ","
      << tuning.max_rounds << "," << tuning.transform_x << ","
      << format_real_hex(tuning.transform_eta) << "," << tuning.payload_len;
  return key.str();
}

// ---------------------------------------------------------------- report

int SweepReport::cache_hits() const {
  int hits = 0;
  for (const auto& cell : cells) hits += cell.from_cache ? 1 : 0;
  return hits;
}

bool SweepReport::all_completed() const {
  for (const auto& cell : cells)
    if (!cell.experiment.all_completed()) return false;
  return true;
}

void write_shard_file(std::ostream& os, const SweepReport& report) {
  std::ostringstream body;
  body << "nrn-sweep-shard v6\n"
       << "plan " << report.plan_text << "\n"
       << "master-seed " << report.master_seed << "\n"
       << "total-cells " << report.total_cells << "\n"
       << "cells " << report.cells.size() << "\n";
  for (const auto& cell : report.cells) {
    body << "cell " << cell.cell_index << "\n";
    append_experiment_record(body, cell.experiment);
  }
  write_with_checksum(os, body.str());
}

SweepReport read_shard_file(std::istream& is) {
  std::ostringstream raw;
  raw << is.rdbuf();
  LineCursor cursor(verified_body(raw.str()));
  cursor.literal("nrn-sweep-shard v6");
  SweepReport report;
  report.plan_text = cursor.field("plan ");
  report.master_seed =
      parse_spec_uint(cursor.field("master-seed "), "master seed");
  report.total_cells = static_cast<int>(
      parse_spec_int(cursor.field("total-cells "), "total cells"));
  const std::int64_t count =
      parse_spec_int(cursor.field("cells "), "cell count");
  if (count < 0 || count > report.total_cells)
    bad_format("shard cell count out of range");
  int previous = -1;
  for (std::int64_t i = 0; i < count; ++i) {
    SweepCellReport cell;
    cell.cell_index = static_cast<int>(
        parse_spec_int(cursor.field("cell "), "cell index"));
    if (cell.cell_index <= previous)
      bad_format("shard cells out of order");
    if (cell.cell_index >= report.total_cells)
      bad_format("cell index exceeds total-cells");
    previous = cell.cell_index;
    cell.experiment = parse_experiment_cursor(cursor);
    report.cells.push_back(std::move(cell));
  }
  if (!cursor.done()) bad_format("trailing data after shard cells");
  return report;
}

SweepReport merge_sweep_reports(const std::vector<SweepReport>& shards) {
  if (shards.empty()) bad_format("nothing to merge");
  SweepReport merged;
  merged.plan_text = shards.front().plan_text;
  merged.master_seed = shards.front().master_seed;
  merged.total_cells = shards.front().total_cells;
  std::vector<const SweepCellReport*> slots(
      static_cast<std::size_t>(merged.total_cells), nullptr);
  for (const auto& shard : shards) {
    if (shard.plan_text != merged.plan_text ||
        shard.master_seed != merged.master_seed ||
        shard.total_cells != merged.total_cells)
      bad_format("cannot merge shards of different sweep plans");
    for (const auto& cell : shard.cells) {
      if (cell.cell_index < 0 || cell.cell_index >= merged.total_cells)
        bad_format("merge: cell index " + std::to_string(cell.cell_index) +
                   " outside the plan");
      auto& slot = slots[static_cast<std::size_t>(cell.cell_index)];
      if (slot != nullptr) {
        // Fleet shards overlap; a duplicate is legal iff bit-identical
        // (deterministic cells recomputed by different workers are).
        if (!(*slot == cell))
          bad_format("merge: cell " + std::to_string(cell.cell_index) +
                     " differs between shards");
        continue;
      }
      slot = &cell;
    }
  }
  merged.cells.reserve(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots[i] == nullptr)
      bad_format("merge: cell " + std::to_string(i) + " is missing");
    merged.cells.push_back(*slots[i]);
  }
  return merged;
}

// ------------------------------------------------------------- heartbeat

ClaimHeartbeat::ClaimHeartbeat(const ResultCache& cache, std::string key,
                               double interval_seconds) {
  NRN_EXPECTS(interval_seconds > 0.0, "heartbeat interval must be positive");
  const auto interval = std::chrono::duration<double>(interval_seconds);
  // nrn-lint: allow(raw-thread): the heartbeat must tick while every pool
  // slot (including the caller's) is busy inside Driver::run, so it cannot
  // be a pool job; it is observability-only and joined in the destructor.
  ticker_ = std::thread([this, &cache, key = std::move(key), interval] {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!cv_.wait_for(lock, interval, [this] { return stop_; })) {
      lock.unlock();
      cache.refresh_claim(key);
      lock.lock();
    }
  });
}

ClaimHeartbeat::~ClaimHeartbeat() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  ticker_.join();
}

// -------------------------------------------------------------- executor

namespace {

/// Releases a held claim on every exit path.  (Before this guard existed,
/// an exception between try_claim and store -- a protocol factory
/// rejecting its scenario, a failing store -- stranded the marker until a
/// peer's TTL expired.)
class ClaimGuard {
 public:
  ClaimGuard(const ResultCache& cache, const std::string& key)
      : cache_(&cache), key_(&key) {}
  ~ClaimGuard() { cache_->release_claim(*key_); }

  ClaimGuard(const ClaimGuard&) = delete;
  ClaimGuard& operator=(const ClaimGuard&) = delete;

 private:
  const ResultCache* cache_;
  const std::string* key_;
};

/// Serialized SweepProgressEvent emission with running counters.
class ProgressEmitter {
 public:
  ProgressEmitter(const ProgressFn& fn, int total) : fn_(fn) {
    event_.total = total;
  }

  void accepted() {
    if (!fn_) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    event_.kind = SweepProgressEvent::Kind::kAccepted;
    fn_(event_);
  }

  void cell_done(int cell_index, bool cached, std::string hash) {
    if (!fn_) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    event_.kind = SweepProgressEvent::Kind::kCellDone;
    ++event_.done;
    (cached ? event_.cached_cells : event_.computed) += 1;
    event_.cell_index = cell_index;
    event_.cached = cached;
    event_.cell_hash = std::move(hash);
    fn_(event_);
  }

  void plan_done() {
    if (!fn_) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    event_.kind = SweepProgressEvent::Kind::kPlanDone;
    event_.cell_hash.clear();
    fn_(event_);
  }

 private:
  const ProgressFn& fn_;
  std::mutex mutex_;
  SweepProgressEvent event_;
};

}  // namespace

CellExecutor::CellExecutor(const ProtocolRegistry& registry,
                           const ResultCache* cache, Options options)
    : registry_(&registry),
      cache_(cache),
      options_(std::move(options)),
      driver_(registry) {
  NRN_EXPECTS(options_.trial_threads >= 1, "trial threads must be positive");
  NRN_EXPECTS(!options_.use_claims || cache_ != nullptr,
              "claim markers need a result cache");
  heartbeat_interval_ = options_.heartbeat_seconds;
  if (heartbeat_interval_ == 0.0)
    heartbeat_interval_ = std::max(options_.claim_ttl_seconds / 4.0, 0.05);
  if (options_.claim_ttl_seconds <= 0.0) heartbeat_interval_ = -1.0;
}

std::string CellExecutor::key(const SweepCell& cell) const {
  return sweep_cache_key(cell, options_.tuning);
}

CellExecutor::Result CellExecutor::resolve(const SweepCell& cell) const {
  DriverOptions driver_options;
  driver_options.threads = options_.trial_threads;
  driver_options.tuning = options_.tuning;
  driver_options.trace = cell.trace;
  const std::string cache_key = cache_ ? key(cell) : std::string();

  if (cache_) {
    if (auto cached = cache_->load(cache_key))
      return {Resolution::kCached, std::move(*cached)};
  }
  if (cache_ == nullptr || !options_.use_claims) {
    Result result{Resolution::kComputed,
                  driver_.run(cell.scenario, cell.protocol, cell.trials,
                              driver_options)};
    if (cache_) cache_->store(cache_key, result.experiment);
    return result;
  }

  bool stole = false;
  if (!cache_->try_claim(cache_key)) {
    if (!cache_->steal_stale_claim(cache_key, options_.claim_ttl_seconds))
      return {Resolution::kBusy, {}};  // fresh foreign claim: retry later
    if (!cache_->try_claim(cache_key))
      return {Resolution::kBusy, {}};  // lost the post-steal race
    stole = true;
  }
  const ClaimGuard guard(*cache_, cache_key);
  // Claim held.  Recheck the cache: the previous holder may have stored
  // the entry and died between store and release.
  if (auto cached = cache_->load(cache_key))
    return {Resolution::kCached, std::move(*cached)};
  std::optional<ClaimHeartbeat> heartbeat;  // destroyed before the guard
  if (heartbeat_interval_ > 0.0)
    heartbeat.emplace(*cache_, cache_key, heartbeat_interval_);
  Result result{stole ? Resolution::kStolen : Resolution::kComputed,
                driver_.run(cell.scenario, cell.protocol, cell.trials,
                            driver_options)};
  cache_->store(cache_key, result.experiment);
  return result;
}

// ---------------------------------------------------------------- runner

SweepReport SweepRunner::run(const SweepPlan& plan,
                             const SweepOptions& options) const {
  NRN_EXPECTS(options.shard_count >= 1, "shard count must be positive");
  NRN_EXPECTS(options.shard_index >= 0 &&
                  options.shard_index < options.shard_count,
              "shard index must be in [0, shard_count)");
  NRN_EXPECTS(options.cell_threads >= 1, "cell threads must be positive");
  NRN_EXPECTS(options.trial_threads >= 1, "trial threads must be positive");
  for (const auto& protocol : plan.protocols)
    if (!registry_->contains(protocol))
      throw SpecError("sweep plan names unknown protocol '" + protocol + "'");
  if (options.assignment != SweepAssignment::kStatic) {
    NRN_EXPECTS(!options.cache_dir.empty(),
                "fleet/resume modes need a cache directory");
    NRN_EXPECTS(options.shard_count == 1,
                "fleet/resume modes replace static sharding");
    return run_fleet(plan, options);
  }

  SweepReport report;
  report.plan_text = plan.text;
  report.master_seed = plan.master_seed;
  report.total_cells = static_cast<int>(plan.cells.size());

  std::vector<const SweepCell*> mine;
  for (const auto& cell : plan.cells)
    if (cell.index % options.shard_count == options.shard_index)
      mine.push_back(&cell);
  report.cells.resize(mine.size());

  std::optional<ResultCache> cache;
  if (!options.cache_dir.empty()) cache.emplace(options.cache_dir);

  CellExecutor::Options exec_options;
  exec_options.trial_threads = options.trial_threads;
  exec_options.tuning = options.tuning;
  const CellExecutor executor(*registry_, cache ? &*cache : nullptr,
                              exec_options);
  ProgressEmitter progress(options.on_progress,
                           static_cast<int>(mine.size()));
  progress.accepted();

  auto run_cell = [&](std::size_t slot) {
    const SweepCell& cell = *mine[slot];
    auto& out = report.cells[slot];
    out.cell_index = cell.index;
    auto result = executor.resolve(cell);
    out.experiment = std::move(result.experiment);
    out.from_cache = result.resolution == CellExecutor::Resolution::kCached;
    progress.cell_done(cell.index, out.from_cache,
                       fnv1a64_hex(executor.key(cell)));
  };

  const int workers =
      std::min<int>(options.cell_threads, static_cast<int>(mine.size()));
  if (workers <= 1) {
    for (std::size_t slot = 0; slot < mine.size(); ++slot) run_cell(slot);
  } else {
    // Cells batch over the shared persistent pool; a cell's own Driver
    // batching (trial_threads) runs inline on the cell's slot.
    common::TaskPool::shared().run(
        mine.size(), workers,
        [&](std::size_t slot, int /*worker*/) { run_cell(slot); });
  }
  progress.plan_done();
  return report;
}

SweepReport SweepRunner::run_fleet(const SweepPlan& plan,
                                   const SweepOptions& options) const {
  SweepReport report;
  report.plan_text = plan.text;
  report.master_seed = plan.master_seed;
  report.total_cells = static_cast<int>(plan.cells.size());
  report.cells.resize(plan.cells.size());
  report.fleet.active = true;

  const ResultCache cache(options.cache_dir);
  std::vector<std::string> keys;
  keys.reserve(plan.cells.size());
  for (const auto& cell : plan.cells)
    keys.push_back(sweep_cache_key(cell, options.tuning));

  ProgressEmitter progress(options.on_progress,
                           static_cast<int>(plan.cells.size()));
  progress.accepted();

  if (options.assignment == SweepAssignment::kResume) {
    int missing = 0;
    for (std::size_t i = 0; i < plan.cells.size(); ++i) {
      auto& out = report.cells[i];
      out.cell_index = plan.cells[i].index;
      if (auto cached = cache.load(keys[i])) {
        out.experiment = std::move(*cached);
        out.from_cache = true;
        progress.cell_done(out.cell_index, true, fnv1a64_hex(keys[i]));
      } else {
        ++missing;
      }
    }
    if (missing > 0)
      throw SpecError("resume: " + std::to_string(missing) + " of " +
                      std::to_string(plan.cells.size()) +
                      " cells are missing from the cache; run the sweep "
                      "with --fleet first");
    report.fleet.skipped = static_cast<int>(plan.cells.size());
    progress.plan_done();
    return report;
  }

  CellExecutor::Options exec_options;
  exec_options.trial_threads = options.trial_threads;
  exec_options.tuning = options.tuning;
  exec_options.use_claims = true;
  exec_options.claim_ttl_seconds = options.claim_ttl_seconds;
  exec_options.heartbeat_seconds = options.heartbeat_seconds;
  const CellExecutor executor(*registry_, &cache, exec_options);

  std::atomic<int> claimed{0}, stolen{0}, skipped{0};

  // Resolves one cell, returning false when a live peer holds its claim
  // (the caller revisits it on a later pass).
  auto resolve = [&](std::size_t idx) -> bool {
    const SweepCell& cell = plan.cells[idx];
    auto& out = report.cells[idx];
    out.cell_index = cell.index;
    auto result = executor.resolve(cell);
    switch (result.resolution) {
      case CellExecutor::Resolution::kBusy:
        return false;  // live foreign claim: revisit on a later pass
      case CellExecutor::Resolution::kCached:
        out.from_cache = true;
        skipped.fetch_add(1, std::memory_order_relaxed);
        break;
      case CellExecutor::Resolution::kComputed:
        claimed.fetch_add(1, std::memory_order_relaxed);
        break;
      case CellExecutor::Resolution::kStolen:
        stolen.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    out.experiment = std::move(result.experiment);
    progress.cell_done(cell.index, out.from_cache, fnv1a64_hex(keys[idx]));
    return true;
  };

  std::vector<std::size_t> pending(plan.cells.size());
  std::iota(pending.begin(), pending.end(), std::size_t{0});
  // Start each process at a different point of the grid so cooperating
  // fleets fan out instead of racing for the same first claims.  Purely a
  // contention hint: results are position-independent.
  if (!pending.empty())
    std::rotate(pending.begin(),
                pending.begin() + static_cast<std::ptrdiff_t>(
                                      static_cast<std::size_t>(::getpid()) %
                                      pending.size()),
                pending.end());

  while (!pending.empty()) {
    std::vector<std::uint8_t> done(pending.size(), 0);
    const int workers = std::min<int>(options.cell_threads,
                                      static_cast<int>(pending.size()));
    if (workers <= 1) {
      for (std::size_t i = 0; i < pending.size(); ++i)
        done[i] = resolve(pending[i]) ? 1 : 0;
    } else {
      common::TaskPool::shared().run(
          pending.size(), workers, [&](std::size_t i, int /*worker*/) {
            done[i] = resolve(pending[i]) ? 1 : 0;
          });
    }
    std::vector<std::size_t> next;
    for (std::size_t i = 0; i < pending.size(); ++i)
      if (!done[i]) next.push_back(pending[i]);
    // No progress means every remaining cell is claimed by a live peer:
    // wait for their entries to land (or their claims to go stale).
    if (next.size() == pending.size())
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.fleet_poll_ms));
    pending = std::move(next);
  }

  report.fleet.claimed = claimed.load();
  report.fleet.stolen = stolen.load();
  report.fleet.skipped = skipped.load();
  progress.plan_done();
  return report;
}

}  // namespace nrn::sim

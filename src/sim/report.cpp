#include "sim/report.hpp"

#include <ostream>

#include "common/stats.hpp"
#include "common/table.hpp"

namespace nrn::sim {

namespace {

std::string informed_cell(const RunReport& run) {
  return run.informed < 0 ? "-" : fmt(run.informed);
}

TableWriter build_table(const ExperimentReport& report) {
  TableWriter table(report.protocol + " on " + report.scenario.topology.text +
                        " under " + to_string(report.scenario.fault),
                    {"trial", "rounds", "completed", "rounds/message",
                     "informed"});
  table.add_note("n = " + std::to_string(report.node_count) +
                 ", edges = " + std::to_string(report.edge_count) +
                 ", k = " + std::to_string(report.scenario.k) +
                 ", source = " + std::to_string(report.scenario.source) +
                 ", seed = " + std::to_string(report.scenario.seed));
  for (const auto& trial : report.trials)
    table.add_row({fmt(trial.index), fmt(trial.run.rounds),
                   verdict(trial.run.completed),
                   fmt(trial.run.rounds_per_message(), 2),
                   informed_cell(trial.run)});
  if (!report.trials.empty()) {
    const auto s = summarize(report.rounds());
    table.add_note("median rounds: " + fmt(s.median, 0) + ", mean " +
                   fmt(s.mean, 1) + " +/- " + fmt(ci95_halfwidth(s), 1));
  }
  return table;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

void write_table(std::ostream& os, const ExperimentReport& report) {
  build_table(report).print(os);
}

void write_csv(std::ostream& os, const ExperimentReport& report) {
  build_table(report).print_csv(os);
}

void write_json(std::ostream& os, const ExperimentReport& report) {
  os << "{\n"
     << "  \"protocol\": \"" << json_escape(report.protocol) << "\",\n"
     << "  \"topology\": \"" << json_escape(report.scenario.topology.text)
     << "\",\n"
     << "  \"fault\": \"" << json_escape(report.scenario.fault_text) << "\",\n"
     << "  \"source\": " << report.scenario.source << ",\n"
     << "  \"k\": " << report.scenario.k << ",\n"
     // Seeds are full-range uint64; emit as strings so double-backed JSON
     // parsers cannot round them (they must reproduce trials exactly).
     << "  \"seed\": \"" << report.scenario.seed << "\",\n"
     << "  \"nodes\": " << report.node_count << ",\n"
     << "  \"edges\": " << report.edge_count << ",\n"
     << "  \"trials\": [\n";
  for (std::size_t i = 0; i < report.trials.size(); ++i) {
    const auto& trial = report.trials[i];
    os << "    {\"trial\": " << trial.index
       << ", \"rounds\": " << trial.run.rounds << ", \"completed\": "
       << (trial.run.completed ? "true" : "false")
       << ", \"messages\": " << trial.run.messages
       << ", \"informed\": " << trial.run.informed
       << ", \"net_seed\": \"" << trial.net_seed
       << "\", \"algo_seed\": \"" << trial.algo_seed << "\"}"
       << (i + 1 < report.trials.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"median_rounds\": " << report.median_rounds() << ",\n"
     << "  \"all_completed\": " << (report.all_completed() ? "true" : "false")
     << "\n}\n";
}

}  // namespace nrn::sim

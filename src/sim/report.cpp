#include "sim/report.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <optional>
#include <ostream>
#include <set>
#include <tuple>

#include "common/numio.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace nrn::sim {

namespace {

/// Human rendering of one metric value: integers exact, reals at three
/// digits.
std::string metric_cell(const MetricValue& value) {
  return value.is_int() ? fmt(value.as_int()) : fmt(value.as_real(), 3);
}

/// Metric keys beyond the first-class rounds/messages columns, sorted.
std::vector<std::string> extra_metric_keys(const ExperimentReport& report) {
  std::vector<std::string> keys;
  for (const auto& key : report.metric_keys())
    if (key != "rounds" && key != "messages") keys.push_back(key);
  return keys;
}

/// 1-based round at which the "informed" series first reaches
/// `frac * nodes`, or nullopt when the trial has no informed series or
/// never got there.
std::optional<std::int64_t> convergence_round(const Outcome& run, double frac,
                                              std::int64_t nodes) {
  const std::vector<MetricValue>* informed = run.find_series("informed");
  if (informed == nullptr || nodes <= 0) return std::nullopt;
  const double target = frac * static_cast<double>(nodes);
  for (std::size_t i = 0; i < informed->size(); ++i)
    if ((*informed)[i].as_real() >= target)
      return static_cast<std::int64_t>(i) + 1;
  return std::nullopt;
}

std::string convergence_cell(const Outcome& run, double frac,
                             std::int64_t nodes) {
  const auto round = convergence_round(run, frac, nodes);
  return round ? fmt(*round) : "-";
}

/// True when any trial carries an "informed" series (the convergence
/// columns' source).
bool has_informed_series(const ExperimentReport& report) {
  for (const auto& trial : report.trials)
    if (trial.run.find_series("informed") != nullptr) return true;
  return false;
}

TableWriter build_table(const ExperimentReport& report) {
  const auto extras = extra_metric_keys(report);
  // Convergence columns appear only for traced experiments: the round at
  // which the informed count first reached 50% / 90% / 100% of n.
  const bool convergence = has_informed_series(report);
  std::vector<std::string> columns = {"trial", "rounds", "completed",
                                      "rounds/message"};
  if (convergence) {
    columns.push_back("r50");
    columns.push_back("r90");
    columns.push_back("r100");
  }
  columns.insert(columns.end(), extras.begin(), extras.end());
  // to_string(channel) renders the fault model for edge channels, so
  // pre-channel experiments keep their exact titles.
  TableWriter table(report.protocol + " on " + report.scenario.topology.text +
                        " under " + to_string(report.scenario.channel),
                    columns);
  table.add_note("n = " + std::to_string(report.node_count) +
                 ", edges = " + std::to_string(report.edge_count) +
                 ", depth = " + std::to_string(report.depth) +
                 ", k = " + std::to_string(report.scenario.k) +
                 ", source = " + std::to_string(report.scenario.source) +
                 ", seed = " + std::to_string(report.scenario.seed));
  table.add_note("capabilities: " + capability_names(report.capabilities));
  for (const auto& trial : report.trials) {
    std::vector<std::string> row = {fmt(trial.index), fmt(trial.run.rounds()),
                                    verdict(trial.run.completed),
                                    fmt(trial.run.rounds_per_message(), 2)};
    if (convergence) {
      row.push_back(convergence_cell(trial.run, 0.5, report.node_count));
      row.push_back(convergence_cell(trial.run, 0.9, report.node_count));
      row.push_back(convergence_cell(trial.run, 1.0, report.node_count));
    }
    for (const auto& key : extras) {
      const MetricValue* v = trial.run.find(key);
      row.push_back(v == nullptr ? "-" : metric_cell(*v));
    }
    table.add_row(std::move(row));
  }
  if (!report.trials.empty()) {
    const auto s = summarize(report.rounds());
    table.add_note("median rounds: " + fmt(s.median, 0) + ", mean " +
                   fmt(s.mean, 1) + " +/- " + fmt(ci95_halfwidth(s), 1));
  }
  if (convergence)
    table.add_note("r50/r90/r100: first round with informed >= that "
                   "fraction of n (per-round trace)");
  if (report.has_theory_bound())
    table.add_note("theory bound: " + fmt(report.theory_bound, 1) +
                   " rounds; gap (median/bound): " + fmt(report.gap(), 2));
  return table;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        // RFC 8259: every control character below 0x20 must be escaped.
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON rendering of a double at max_digits10, so real-valued fields
/// (theory bounds, gaps, real metrics) round-trip exactly through a
/// conforming parser instead of truncating at stream precision.  Routed
/// through common/numio so the decimal point is '.' under every process
/// locale (JSON requires it, and goldens must not depend on LC_NUMERIC).
std::string json_real(double value) {
  return format_real(value, std::numeric_limits<double>::max_digits10);
}

/// One series value in CSV/JSON: integers exact, reals at max_digits10.
std::string series_value(const MetricValue& value) {
  return value.is_int() ? std::to_string(value.as_int())
                        : json_real(value.as_real());
}

/// The body of one experiment's JSON object (no surrounding braces); each
/// line is prefixed with `indent`.  write_json and the sweep cell array
/// share this so the two emitters cannot drift apart.
void write_experiment_fields(std::ostream& os, const ExperimentReport& report,
                             const std::string& indent) {
  os << indent << "\"protocol\": \"" << json_escape(report.protocol)
     << "\",\n"
     << indent << "\"topology\": \""
     << json_escape(report.scenario.topology.text) << "\",\n"
     << indent << "\"fault\": \"" << json_escape(report.scenario.fault_text)
     << "\",\n";
  // The channel field appears only for non-edge channels, so pre-channel
  // JSON keeps its exact shape.
  if (report.scenario.channel_text != "none")
    os << indent << "\"channel\": \""
       << json_escape(report.scenario.channel_text) << "\",\n";
  os << indent << "\"source\": " << report.scenario.source << ",\n"
     << indent << "\"k\": " << report.scenario.k << ",\n"
     // Seeds are full-range uint64; emit as strings so double-backed JSON
     // parsers cannot round them (they must reproduce trials exactly).
     << indent << "\"seed\": \"" << report.scenario.seed << "\",\n"
     << indent << "\"nodes\": " << report.node_count << ",\n"
     << indent << "\"edges\": " << report.edge_count << ",\n"
     << indent << "\"depth\": " << report.depth << ",\n"
     << indent << "\"capabilities\": \""
     << capability_names(report.capabilities) << "\",\n";
  if (report.has_theory_bound())
    os << indent << "\"theory_bound\": " << json_real(report.theory_bound)
       << ",\n"
       << indent << "\"gap\": " << json_real(report.gap()) << ",\n";
  os << indent << "\"trials\": [\n";
  for (std::size_t i = 0; i < report.trials.size(); ++i) {
    const auto& trial = report.trials[i];
    os << indent << "  {\"trial\": " << trial.index
       << ", \"rounds\": " << trial.run.rounds() << ", \"completed\": "
       << (trial.run.completed ? "true" : "false")
       << ", \"messages\": " << trial.run.messages() << ", \"metrics\": {";
    bool first = true;
    for (const auto& [key, value] : trial.run.metrics) {
      if (key == "rounds" || key == "messages") continue;
      if (!first) os << ", ";
      first = false;
      os << "\"" << key << "\": ";
      if (value.is_int()) os << value.as_int();
      else os << json_real(value.as_real());
    }
    os << "}";
    // Per-round series ride only on traced trials, so untraced reports
    // emit the exact pre-v4 shape.
    if (!trial.run.series.empty()) {
      os << ", \"series\": {";
      bool first_series = true;
      for (const auto& [key, values] : trial.run.series) {
        if (!first_series) os << ", ";
        first_series = false;
        os << "\"" << key << "\": [";
        for (std::size_t v = 0; v < values.size(); ++v)
          os << (v > 0 ? ", " : "") << series_value(values[v]);
        os << "]";
      }
      os << "}";
    }
    os << ", \"net_seed\": \"" << trial.net_seed
       << "\", \"algo_seed\": \"" << trial.algo_seed << "\"}"
       << (i + 1 < report.trials.size() ? "," : "") << "\n";
  }
  os << indent << "],\n"
     << indent << "\"median_rounds\": " << json_real(report.median_rounds())
     << ",\n"
     << indent << "\"all_completed\": "
     << (report.all_completed() ? "true" : "false") << "\n";
}

/// Median rounds-per-message across a cell's trials.
double median_rpm(const ExperimentReport& report) {
  if (report.trials.empty()) return 0.0;
  std::vector<double> rpm;
  rpm.reserve(report.trials.size());
  for (const auto& trial : report.trials)
    rpm.push_back(trial.run.rounds_per_message());
  return quantile(rpm, 0.5);
}

std::string completed_cell(const ExperimentReport& report) {
  return std::to_string(report.completed_trials()) + "/" +
         std::to_string(report.trials.size());
}

/// Sorted union of the extra metric keys across every cell of a sweep --
/// the sweep emitters' dynamic column set.
std::vector<std::string> sweep_metric_keys(const SweepReport& report) {
  std::set<std::string> keys;
  for (const auto& cell : report.cells)
    for (const auto& key : extra_metric_keys(cell.experiment))
      keys.insert(key);
  return {keys.begin(), keys.end()};
}

std::string theory_bound_cell(const ExperimentReport& exp) {
  return exp.has_theory_bound() ? fmt(exp.theory_bound, 1) : "-";
}

std::string gap_cell(const ExperimentReport& exp) {
  return exp.has_theory_bound() ? fmt(exp.gap(), 2) : "-";
}

std::string metric_mean_cell(const ExperimentReport& exp,
                             const std::string& key) {
  const auto s = exp.metric_summary(key);
  return s.count == 0 ? "-" : fmt(s.mean, 3);
}

bool sweep_has_informed_series(const SweepReport& report) {
  for (const auto& cell : report.cells)
    if (has_informed_series(cell.experiment)) return true;
  return false;
}

/// True when any cell runs a non-edge channel -- the channel column's
/// gate, so pre-channel sweeps keep their exact column set.
bool sweep_has_channel(const SweepReport& report) {
  for (const auto& cell : report.cells)
    if (cell.experiment.scenario.channel_text != "none") return true;
  return false;
}

/// Median across trials of the 90%-informed round; "-" when no trial's
/// trace got there.
std::string median_r90_cell(const ExperimentReport& exp) {
  std::vector<double> rounds;
  for (const auto& trial : exp.trials)
    if (const auto r = convergence_round(trial.run, 0.9, exp.node_count))
      rounds.push_back(static_cast<double>(*r));
  return rounds.empty() ? "-" : fmt(quantile(rounds, 0.5), 1);
}

/// Long-format series rows appended to the CSV emitters, one row per
/// (trial, round, series key).  `prefix` carries the sweep emitter's
/// leading cell index (empty for a single experiment).
void write_series_csv(std::ostream& os, const ExperimentReport& report,
                      const std::string& prefix) {
  for (const auto& trial : report.trials) {
    for (const auto& [key, values] : trial.run.series) {
      for (std::size_t round = 0; round < values.size(); ++round) {
        os << prefix << trial.index << "," << round + 1 << "," << key << ","
           << series_value(values[round]) << "\n";
      }
    }
  }
}

bool report_has_series(const ExperimentReport& report) {
  for (const auto& trial : report.trials)
    if (!trial.run.series.empty()) return true;
  return false;
}

std::string fit_shape(const SweepFit& f) {
  return f.metric + " ~ " + fmt(f.fit.intercept, 3) + " + " +
         fmt(f.fit.slope, 3) + " * log2(nodes)";
}

}  // namespace

std::vector<SweepFit> sweep_fits(const SweepReport& report) {
  // Group cells by everything but the size axis; regress each group's
  // summary metrics against log2(node count).
  using GroupKey = std::tuple<std::string, std::string, std::int64_t>;
  std::map<GroupKey, std::vector<const ExperimentReport*>> groups;
  for (const auto& cell : report.cells) {
    const auto& exp = cell.experiment;
    groups[GroupKey{exp.protocol, exp.scenario.fault_text, exp.scenario.k}]
        .push_back(&exp);
  }
  std::vector<SweepFit> fits;
  for (const auto& [key, cells] : groups) {
    std::vector<double> xs;
    std::set<std::int64_t> distinct;
    bool valid = true;
    for (const ExperimentReport* exp : cells) {
      if (exp->node_count <= 0 || exp->trials.empty()) valid = false;
      xs.push_back(static_cast<double>(exp->node_count));
      distinct.insert(exp->node_count);
    }
    // A fit needs a real size axis: three distinct node counts, so a
    // two-point "fit" (always r2 = 1) never poisons a report.
    if (!valid || distinct.size() < 3) continue;
    for (const char* metric : {"median_rounds", "median_rpm"}) {
      std::vector<double> ys;
      ys.reserve(cells.size());
      for (const ExperimentReport* exp : cells)
        ys.push_back(metric == std::string("median_rounds")
                         ? exp->median_rounds()
                         : median_rpm(*exp));
      SweepFit fit;
      fit.protocol = std::get<0>(key);
      fit.fault = std::get<1>(key);
      fit.k = std::get<2>(key);
      fit.metric = metric;
      fit.cells = static_cast<int>(cells.size());
      fit.fit = fit_log_linear(xs, ys);
      fits.push_back(std::move(fit));
    }
  }
  return fits;
}

void write_table(std::ostream& os, const ExperimentReport& report) {
  build_table(report).print(os);
}

void write_csv(std::ostream& os, const ExperimentReport& report) {
  build_table(report).print_csv(os);
  if (report_has_series(report)) {
    os << "# series long format: trial,round,metric,value\n";
    write_series_csv(os, report, "");
  }
}

void write_json(std::ostream& os, const ExperimentReport& report) {
  os << "{\n";
  write_experiment_fields(os, report, "  ");
  os << "}\n";
}

void write_sweep_table(std::ostream& os, const SweepReport& report) {
  const auto metric_keys = sweep_metric_keys(report);
  const bool convergence = sweep_has_informed_series(report);
  const bool channels = sweep_has_channel(report);
  std::vector<std::string> columns = {"cell", "topology", "fault"};
  if (channels) columns.push_back("channel");
  for (const char* column : {"k", "protocol", "trials", "nodes", "completed",
                             "median rounds", "mean rounds", "median rpm",
                             "theory bound", "gap"})
    columns.push_back(column);
  if (convergence) columns.push_back("median r90");
  for (const auto& key : metric_keys) columns.push_back("mean " + key);
  columns.push_back("cache");
  TableWriter table("sweep: " + report.plan_text, columns);
  table.add_note("master seed = " + std::to_string(report.master_seed) +
                 ", cells = " + std::to_string(report.cells.size()) + " of " +
                 std::to_string(report.total_cells) +
                 (report.complete() ? "" : " (shard subset)"));
  table.add_note("cache hits: " + std::to_string(report.cache_hits()) + "/" +
                 std::to_string(report.cells.size()));
  if (report.fleet.active)
    table.add_note("fleet: claimed " + std::to_string(report.fleet.claimed) +
                   ", stolen " + std::to_string(report.fleet.stolen) +
                   ", cache-skipped " + std::to_string(report.fleet.skipped));
  table.add_note("gap = median rounds / registered theory bound "
                 "(Theta-constants dropped)");
  if (convergence)
    table.add_note("median r90: median across trials of the first round "
                   "with informed >= 0.9 n");
  for (const auto& fit : sweep_fits(report))
    table.add_note("fit " + fit.protocol + " | " + fit.fault + " | k=" +
                   std::to_string(fit.k) + ": " + fit_shape(fit) + "  (r2 " +
                   fmt(fit.fit.r2, 3) + ", " + std::to_string(fit.cells) +
                   " cells)");
  for (const auto& cell : report.cells) {
    const auto& exp = cell.experiment;
    std::vector<std::string> row = {fmt(cell.cell_index),
                                    exp.scenario.topology.text,
                                    exp.scenario.fault_text};
    if (channels) row.push_back(exp.scenario.channel_text);
    const std::vector<std::string> tail = {
        fmt(exp.scenario.k), exp.protocol,
        fmt(static_cast<std::int64_t>(exp.trials.size())),
        fmt(exp.node_count), completed_cell(exp),
        fmt(exp.median_rounds(), 1), fmt(exp.mean_rounds(), 2),
        fmt(median_rpm(exp), 2), theory_bound_cell(exp), gap_cell(exp)};
    row.insert(row.end(), tail.begin(), tail.end());
    if (convergence) row.push_back(median_r90_cell(exp));
    for (const auto& key : metric_keys)
      row.push_back(metric_mean_cell(exp, key));
    row.push_back(cell.from_cache ? "hit" : "-");
    table.add_row(std::move(row));
  }
  table.print(os);
}

void write_sweep_csv(std::ostream& os, const SweepReport& report) {
  const auto metric_keys = sweep_metric_keys(report);
  os << "# sweep: " << report.plan_text << "\n"
     << "# master_seed = " << report.master_seed << ", cells = "
     << report.cells.size() << " of " << report.total_cells << "\n";
  // Fleet provenance rides in a comment so fleet and static runs of the
  // same plan emit identical data rows.
  if (report.fleet.active)
    os << "# fleet: claimed=" << report.fleet.claimed
       << ", stolen=" << report.fleet.stolen
       << ", skipped=" << report.fleet.skipped << "\n";
  const bool convergence = sweep_has_informed_series(report);
  // Fits ride in comments like the fleet counters: the data rows of the
  // same cells stay byte-identical whether or not the plan had a fittable
  // size axis.  Coefficients print at max_digits10 so downstream tooling
  // recovers the regression exactly.
  for (const auto& fit : sweep_fits(report))
    os << "# fit: protocol=" << fit.protocol << ",fault=" << fit.fault
       << ",k=" << fit.k << ",metric=" << fit.metric
       << ",axis=nodes,model=log2,cells=" << fit.cells
       << ",slope=" << json_real(fit.fit.slope)
       << ",intercept=" << json_real(fit.fit.intercept)
       << ",r2=" << json_real(fit.fit.r2) << "\n";
  const bool channels = sweep_has_channel(report);
  os << "cell,topology,fault," << (channels ? "channel," : "")
     << "source,k,protocol,trials,seed,nodes,edges,"
        "depth,completed_trials,median_rounds,mean_rounds,median_rpm,"
        "theory_bound,gap";
  if (convergence) os << ",median_r90";
  for (const auto& key : metric_keys) os << ",mean_" << key;
  os << "\n";
  bool any_series = false;
  for (const auto& cell : report.cells) {
    const auto& exp = cell.experiment;
    any_series = any_series || report_has_series(exp);
    os << cell.cell_index << "," << exp.scenario.topology.text << ","
       << exp.scenario.fault_text << ","
       << (channels ? exp.scenario.channel_text + "," : "")
       << exp.scenario.source << ","
       << exp.scenario.k << "," << exp.protocol << "," << exp.trials.size()
       << "," << exp.scenario.seed << "," << exp.node_count << ","
       << exp.edge_count << "," << exp.depth << ","
       << exp.completed_trials() << "," << fmt(exp.median_rounds(), 1) << ","
       << fmt(exp.mean_rounds(), 2) << "," << fmt(median_rpm(exp), 2) << ","
       << (exp.has_theory_bound() ? fmt(exp.theory_bound, 1) : "") << ","
       << (exp.has_theory_bound() ? fmt(exp.gap(), 2) : "");
    if (convergence)
      os << "," << (median_r90_cell(exp) == "-" ? "" : median_r90_cell(exp));
    for (const auto& key : metric_keys) {
      const auto s = exp.metric_summary(key);
      os << "," << (s.count == 0 ? "" : fmt(s.mean, 3));
    }
    os << "\n";
  }
  if (any_series) {
    os << "# series long format: cell,trial,round,metric,value\n";
    for (const auto& cell : report.cells)
      write_series_csv(os, cell.experiment,
                       std::to_string(cell.cell_index) + ",");
  }
}

void write_sweep_json(std::ostream& os, const SweepReport& report) {
  os << "{\n"
     << "  \"plan\": \"" << json_escape(report.plan_text) << "\",\n"
     << "  \"master_seed\": \"" << report.master_seed << "\",\n"
     << "  \"total_cells\": " << report.total_cells << ",\n"
     << "  \"cell_count\": " << report.cells.size() << ",\n";
  if (report.fleet.active)
    os << "  \"fleet\": {\"claimed\": " << report.fleet.claimed
       << ", \"stolen\": " << report.fleet.stolen
       << ", \"skipped\": " << report.fleet.skipped << "},\n";
  os << "  \"all_completed\": "
     << (report.all_completed() ? "true" : "false") << ",\n";
  const auto fits = sweep_fits(report);
  if (!fits.empty()) {
    os << "  \"fits\": [\n";
    for (std::size_t i = 0; i < fits.size(); ++i) {
      const auto& f = fits[i];
      os << "    {\"protocol\": \"" << json_escape(f.protocol)
         << "\", \"fault\": \"" << json_escape(f.fault)
         << "\", \"k\": " << f.k << ", \"metric\": \"" << f.metric
         << "\", \"axis\": \"nodes\", \"model\": \"log2\", \"cells\": "
         << f.cells << ", \"slope\": " << json_real(f.fit.slope)
         << ", \"intercept\": " << json_real(f.fit.intercept)
         << ", \"r2\": " << json_real(f.fit.r2) << "}"
         << (i + 1 < fits.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
  }
  os << "  \"cells\": [\n";
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const auto& cell = report.cells[i];
    os << "    {\n"
       << "      \"cell\": " << cell.cell_index << ",\n";
    write_experiment_fields(os, cell.experiment, "      ");
    os << "    }" << (i + 1 < report.cells.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace nrn::sim

#include "sim/report.hpp"

#include <ostream>

#include "common/stats.hpp"
#include "common/table.hpp"

namespace nrn::sim {

namespace {

std::string informed_cell(const RunReport& run) {
  return run.informed < 0 ? "-" : fmt(run.informed);
}

TableWriter build_table(const ExperimentReport& report) {
  TableWriter table(report.protocol + " on " + report.scenario.topology.text +
                        " under " + to_string(report.scenario.fault),
                    {"trial", "rounds", "completed", "rounds/message",
                     "informed"});
  table.add_note("n = " + std::to_string(report.node_count) +
                 ", edges = " + std::to_string(report.edge_count) +
                 ", k = " + std::to_string(report.scenario.k) +
                 ", source = " + std::to_string(report.scenario.source) +
                 ", seed = " + std::to_string(report.scenario.seed));
  for (const auto& trial : report.trials)
    table.add_row({fmt(trial.index), fmt(trial.run.rounds),
                   verdict(trial.run.completed),
                   fmt(trial.run.rounds_per_message(), 2),
                   informed_cell(trial.run)});
  if (!report.trials.empty()) {
    const auto s = summarize(report.rounds());
    table.add_note("median rounds: " + fmt(s.median, 0) + ", mean " +
                   fmt(s.mean, 1) + " +/- " + fmt(ci95_halfwidth(s), 1));
  }
  return table;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// The body of one experiment's JSON object (no surrounding braces); each
/// line is prefixed with `indent`.  write_json and the sweep cell array
/// share this so the two emitters cannot drift apart.
void write_experiment_fields(std::ostream& os, const ExperimentReport& report,
                             const std::string& indent) {
  os << indent << "\"protocol\": \"" << json_escape(report.protocol)
     << "\",\n"
     << indent << "\"topology\": \""
     << json_escape(report.scenario.topology.text) << "\",\n"
     << indent << "\"fault\": \"" << json_escape(report.scenario.fault_text)
     << "\",\n"
     << indent << "\"source\": " << report.scenario.source << ",\n"
     << indent << "\"k\": " << report.scenario.k << ",\n"
     // Seeds are full-range uint64; emit as strings so double-backed JSON
     // parsers cannot round them (they must reproduce trials exactly).
     << indent << "\"seed\": \"" << report.scenario.seed << "\",\n"
     << indent << "\"nodes\": " << report.node_count << ",\n"
     << indent << "\"edges\": " << report.edge_count << ",\n"
     << indent << "\"trials\": [\n";
  for (std::size_t i = 0; i < report.trials.size(); ++i) {
    const auto& trial = report.trials[i];
    os << indent << "  {\"trial\": " << trial.index
       << ", \"rounds\": " << trial.run.rounds << ", \"completed\": "
       << (trial.run.completed ? "true" : "false")
       << ", \"messages\": " << trial.run.messages
       << ", \"informed\": " << trial.run.informed
       << ", \"net_seed\": \"" << trial.net_seed
       << "\", \"algo_seed\": \"" << trial.algo_seed << "\"}"
       << (i + 1 < report.trials.size() ? "," : "") << "\n";
  }
  os << indent << "],\n"
     << indent << "\"median_rounds\": " << report.median_rounds() << ",\n"
     << indent << "\"all_completed\": "
     << (report.all_completed() ? "true" : "false") << "\n";
}

/// Median rounds-per-message across a cell's trials.
double median_rpm(const ExperimentReport& report) {
  if (report.trials.empty()) return 0.0;
  std::vector<double> rpm;
  rpm.reserve(report.trials.size());
  for (const auto& trial : report.trials)
    rpm.push_back(trial.run.rounds_per_message());
  return quantile(rpm, 0.5);
}

std::string completed_cell(const ExperimentReport& report) {
  return std::to_string(report.completed_trials()) + "/" +
         std::to_string(report.trials.size());
}

}  // namespace

void write_table(std::ostream& os, const ExperimentReport& report) {
  build_table(report).print(os);
}

void write_csv(std::ostream& os, const ExperimentReport& report) {
  build_table(report).print_csv(os);
}

void write_json(std::ostream& os, const ExperimentReport& report) {
  os << "{\n";
  write_experiment_fields(os, report, "  ");
  os << "}\n";
}

void write_sweep_table(std::ostream& os, const SweepReport& report) {
  TableWriter table("sweep: " + report.plan_text,
                    {"cell", "topology", "fault", "k", "protocol", "trials",
                     "nodes", "completed", "median rounds", "mean rounds",
                     "median rpm", "cache"});
  table.add_note("master seed = " + std::to_string(report.master_seed) +
                 ", cells = " + std::to_string(report.cells.size()) + " of " +
                 std::to_string(report.total_cells) +
                 (report.complete() ? "" : " (shard subset)"));
  table.add_note("cache hits: " + std::to_string(report.cache_hits()) + "/" +
                 std::to_string(report.cells.size()));
  for (const auto& cell : report.cells) {
    const auto& exp = cell.experiment;
    table.add_row({fmt(cell.cell_index), exp.scenario.topology.text,
                   exp.scenario.fault_text, fmt(exp.scenario.k), exp.protocol,
                   fmt(static_cast<std::int64_t>(exp.trials.size())),
                   fmt(exp.node_count), completed_cell(exp),
                   fmt(exp.median_rounds(), 1), fmt(exp.mean_rounds(), 2),
                   fmt(median_rpm(exp), 2), cell.from_cache ? "hit" : "-"});
  }
  table.print(os);
}

void write_sweep_csv(std::ostream& os, const SweepReport& report) {
  os << "# sweep: " << report.plan_text << "\n"
     << "# master_seed = " << report.master_seed << ", cells = "
     << report.cells.size() << " of " << report.total_cells << "\n"
     << "cell,topology,fault,source,k,protocol,trials,seed,nodes,edges,"
        "completed_trials,median_rounds,mean_rounds,median_rpm\n";
  for (const auto& cell : report.cells) {
    const auto& exp = cell.experiment;
    os << cell.cell_index << "," << exp.scenario.topology.text << ","
       << exp.scenario.fault_text << "," << exp.scenario.source << ","
       << exp.scenario.k << "," << exp.protocol << "," << exp.trials.size()
       << "," << exp.scenario.seed << "," << exp.node_count << ","
       << exp.edge_count << "," << exp.completed_trials() << ","
       << fmt(exp.median_rounds(), 1) << "," << fmt(exp.mean_rounds(), 2)
       << "," << fmt(median_rpm(exp), 2) << "\n";
  }
}

void write_sweep_json(std::ostream& os, const SweepReport& report) {
  os << "{\n"
     << "  \"plan\": \"" << json_escape(report.plan_text) << "\",\n"
     << "  \"master_seed\": \"" << report.master_seed << "\",\n"
     << "  \"total_cells\": " << report.total_cells << ",\n"
     << "  \"cell_count\": " << report.cells.size() << ",\n"
     << "  \"all_completed\": "
     << (report.all_completed() ? "true" : "false") << ",\n"
     << "  \"cells\": [\n";
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const auto& cell = report.cells[i];
    os << "    {\n"
       << "      \"cell\": " << cell.cell_index << ",\n";
    write_experiment_fields(os, cell.experiment, "      ");
    os << "    }" << (i + 1 < report.cells.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace nrn::sim

#include "sim/protocol.hpp"

namespace nrn::sim {

std::string capability_names(CapabilitySet caps) {
  static constexpr struct {
    Capability bit;
    const char* name;
  } kNames[] = {
      {kMultiMessage, "multi-message"},
      {kVerifiedPayload, "verified-payload"},
      {kScheduleGap, "schedule-gap"},
      {kTraced, "traced"},
      {kSinrCapable, "sinr-capable"},
  };
  std::string out;
  for (const auto& [bit, name] : kNames) {
    if ((caps & bit) == 0) continue;
    if (!out.empty()) out += '+';
    out += name;
  }
  return out.empty() ? "-" : out;
}

bool valid_metric_key(std::string_view key) {
  if (key.empty()) return false;
  for (const char c : key) {
    const bool ok =
        (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return true;
}

}  // namespace nrn::sim

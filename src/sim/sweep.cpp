#include "sim/sweep.hpp"

#include <algorithm>
#include <cstdio>

namespace nrn::sim {

namespace {

// Hard limits on expansion: fail loudly instead of silently materializing
// a runaway grid.
constexpr std::size_t kMaxAxisItems = 4096;
constexpr std::size_t kMaxCells = 100000;

[[noreturn]] void bad_spec(const std::string& what) { throw SpecError(what); }

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

/// Splits on `sep` at brace depth 0, trimming each piece.
std::vector<std::string> split_top_level(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string current;
  int depth = 0;
  for (const char c : s) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    if (depth < 0) bad_spec("unmatched '}' in '" + s + "'");
    if (c == sep && depth == 0) {
      parts.push_back(trim(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (depth != 0) bad_spec("unmatched '{' in '" + s + "'");
  parts.push_back(trim(current));
  return parts;
}

/// If `item` is a bare integer range (lo..hi, lo..hi+d, lo..hi*f), expands
/// it into `out` and returns true; otherwise leaves `out` alone.  A string
/// containing ".." whose left side is not an integer is not a range (it is
/// passed through literally and fails later as whatever spec it claims to
/// be).
bool try_expand_range(const std::string& item, std::vector<std::string>& out) {
  const auto dots = item.find("..");
  if (dots == std::string::npos) return false;
  const std::string lhs = item.substr(0, dots);
  std::int64_t lo = 0;
  try {
    lo = parse_spec_int(lhs, "range start");
  } catch (const SpecError&) {
    return false;  // not a range at all
  }
  // From here on the item must be a well-formed range.
  std::string rest = item.substr(dots + 2);
  char op = 0;
  std::int64_t step = 1;
  const auto op_pos = rest.find_first_of("*+");
  if (op_pos != std::string::npos) {
    op = rest[op_pos];
    step = parse_spec_int(rest.substr(op_pos + 1), "range step");
    rest = rest.substr(0, op_pos);
  }
  const std::int64_t hi = parse_spec_int(rest, "range end");
  if (lo > hi) bad_spec("range '" + item + "': start exceeds end");
  if (op == '*') {
    if (lo < 1) bad_spec("range '" + item + "': geometric start must be >= 1");
    if (step < 2) bad_spec("range '" + item + "': geometric factor must be >= 2");
  } else if (step < 1) {
    bad_spec("range '" + item + "': step must be >= 1");
  }
  std::size_t count = 0;
  for (std::int64_t v = lo; v <= hi;) {
    if (++count > kMaxAxisItems)
      bad_spec("range '" + item + "' expands to more than " +
               std::to_string(kMaxAxisItems) + " values");
    out.push_back(std::to_string(v));
    if (op == '*') {
      if (v > hi / step) break;  // next value would overflow past hi
      v *= step;
    } else {
      if (v > hi - step) break;
      v += step;
    }
  }
  return true;
}

[[noreturn]] void over_cap(const std::string& what) {
  bad_spec(what + " expands to more than " + std::to_string(kMaxAxisItems) +
           " items");
}

/// Brace expansion of one item (recursively over the suffix); brace-group
/// members may themselves be ranges.  The leftmost group varies slowest.
/// The cap applies to every intermediate product too, so a multi-group
/// item fails with SpecError instead of materializing a runaway cross
/// product.
void expand_item(const std::string& item, std::vector<std::string>& out) {
  const auto open = item.find('{');
  if (open == std::string::npos) {
    if (!try_expand_range(item, out)) out.push_back(item);
    if (out.size() > kMaxAxisItems) over_cap("'" + item + "'");
    return;
  }
  const auto close = item.find('}', open);
  if (close == std::string::npos) bad_spec("unmatched '{' in '" + item + "'");
  if (item.find('{', open + 1) < close)
    bad_spec("nested braces in '" + item + "'");
  const std::string prefix = item.substr(0, open);
  const std::string body = item.substr(open + 1, close - open - 1);
  const std::string suffix = item.substr(close + 1);

  std::vector<std::string> suffixes;
  expand_item(suffix, suffixes);

  std::vector<std::string> values;
  for (const auto& part : split_top_level(body, ',')) {
    if (part.empty()) bad_spec("empty brace member in '" + item + "'");
    values.clear();
    if (!try_expand_range(part, values)) values.push_back(part);
    for (const auto& value : values)
      for (const auto& rest : suffixes) {
        if (out.size() >= kMaxAxisItems) over_cap("'" + item + "'");
        out.push_back(prefix + value + rest);
      }
  }
}

}  // namespace

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string fnv1a64_hex(std::string_view text) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a64(text)));
  return buf;
}

std::vector<std::string> expand_spec_list(const std::string& value) {
  std::vector<std::string> out;
  for (const auto& item : split_top_level(value, ',')) {
    if (item.empty()) bad_spec("empty item in list '" + value + "'");
    expand_item(item, out);
    if (out.size() > kMaxAxisItems)
      bad_spec("list '" + value + "' expands to more than " +
               std::to_string(kMaxAxisItems) + " items");
  }
  return out;
}

std::string SweepCell::key() const {
  return "topology=" + scenario.topology.text + "|fault=" +
         scenario.fault_text + "|source=" + std::to_string(scenario.source) +
         "|k=" + std::to_string(scenario.k) +
         "|seed=" + std::to_string(scenario.seed) + "|protocol=" + protocol +
         "|trials=" + std::to_string(trials) +
         (scenario.channel_text == "none" ? ""
                                          : "|channel=" +
                                                scenario.channel_text) +
         (trace ? "|trace=1" : "");
}

SweepPlan SweepPlan::parse(const std::string& spec) {
  if (spec.find_first_of("\n\r") != std::string::npos)
    bad_spec("sweep plan must be a single line");
  std::string body = trim(spec);
  if (body.rfind("sweep:", 0) == 0) body = trim(body.substr(6));
  if (body.empty()) bad_spec("empty sweep plan");

  SweepPlan plan;
  plan.text = spec;

  std::vector<std::string> seen;
  auto once = [&](const std::string& canonical) {
    if (std::find(seen.begin(), seen.end(), canonical) != seen.end())
      bad_spec("duplicate sweep clause '" + canonical + "'");
    seen.push_back(canonical);
  };

  std::vector<std::string> k_items;
  for (const auto& clause : split_top_level(body, ';')) {
    if (clause.empty()) continue;  // tolerate a trailing ';'
    const auto eq = clause.find('=');
    if (eq == std::string::npos)
      bad_spec("sweep clause '" + clause + "' is not key=value");
    const std::string key = trim(clause.substr(0, eq));
    const std::string value = trim(clause.substr(eq + 1));
    if (value.empty()) bad_spec("sweep clause '" + key + "' has no value");
    if (key == "topology" || key == "topologies") {
      once("topology");
      plan.topologies = expand_spec_list(value);
    } else if (key == "fault" || key == "faults") {
      once("fault");
      plan.faults = expand_spec_list(value);
    } else if (key == "channel" || key == "channels") {
      once("channel");
      plan.channels = expand_spec_list(value);
    } else if (key == "protocol" || key == "protocols") {
      once("protocols");
      plan.protocols = expand_spec_list(value);
    } else if (key == "k") {
      once("k");
      k_items = expand_spec_list(value);
    } else if (key == "source") {
      once("source");
      const std::int64_t source = parse_spec_int(value, "sweep source");
      if (source < 0 || source > 0x7fffffff)
        bad_spec("sweep source '" + value + "' is out of range");
      plan.source = static_cast<graph::NodeId>(source);
    } else if (key == "trials") {
      once("trials");
      const std::int64_t trials = parse_spec_int(value, "sweep trials");
      if (trials < 1 || trials > 10'000'000)
        bad_spec("sweep trials '" + value + "' is out of range");
      plan.trials = static_cast<int>(trials);
    } else if (key == "seed") {
      once("seed");
      plan.master_seed = parse_spec_uint(value, "sweep seed");
    } else if (key == "trace") {
      once("trace");
      const std::int64_t trace = parse_spec_int(value, "sweep trace");
      if (trace != 0 && trace != 1)
        bad_spec("sweep trace '" + value + "' must be 0 or 1");
      plan.trace = trace == 1;
    } else {
      bad_spec("unknown sweep clause '" + key + "'");
    }
  }

  if (plan.topologies.empty()) bad_spec("sweep plan needs a topology= clause");
  if (plan.protocols.empty()) bad_spec("sweep plan needs a protocols= clause");
  if (plan.faults.empty()) plan.faults = {"none"};
  if (plan.channels.empty()) plan.channels = {"none"};
  if (k_items.empty()) k_items = {"1"};
  if (plan.trials < 1) bad_spec("sweep trials must be positive");
  if (plan.source < 0) bad_spec("sweep source must be non-negative");

  for (const auto& item : k_items) {
    const std::int64_t k = parse_spec_int(item, "sweep k");
    if (k < 1) bad_spec("sweep k must be positive");
    plan.ks.push_back(k);
  }
  // Validate the axes up front so a bad 500-cell plan fails with one error
  // naming the offending spec, not mid-run.
  for (const auto& topology : plan.topologies) TopologySpec::parse(topology);
  for (const auto& fault : plan.faults) parse_fault_spec(fault);
  for (const auto& channel : plan.channels)
    parse_channel_spec(channel, radio::FaultModel::faultless());
  for (const auto& protocol : plan.protocols)
    if (protocol.empty()) bad_spec("empty protocol name in sweep plan");

  const std::size_t total = plan.topologies.size() * plan.faults.size() *
                            plan.channels.size() * plan.ks.size() *
                            plan.protocols.size();
  if (total > kMaxCells)
    bad_spec("sweep plan expands to " + std::to_string(total) +
             " cells (cap " + std::to_string(kMaxCells) + ")");

  plan.cells.reserve(total);
  int index = 0;
  for (const auto& topology : plan.topologies) {
    for (const auto& fault : plan.faults) {
      for (const auto& channel : plan.channels) {
        for (const std::int64_t k : plan.ks) {
          // The scenario seed mixes the master seed with the scenario
          // identity only: protocols sharing a scenario get identical
          // graphs and fault tapes, and unrelated cells keep their seeds
          // when axes grow or shrink.  A "none" channel contributes
          // nothing to the identity, so pre-channel plans reproduce their
          // exact seeds.
          const std::string identity =
              "topology=" + topology + "|fault=" + fault + "|source=" +
              std::to_string(plan.source) + "|k=" + std::to_string(k) +
              (channel == "none" ? "" : "|channel=" + channel);
          std::uint64_t mix = plan.master_seed ^ fnv1a64(identity);
          const std::uint64_t cell_seed = splitmix64(mix);
          const Scenario scenario = Scenario::parse(
              topology, fault, plan.source, k, cell_seed, channel);
          for (const auto& protocol : plan.protocols) {
            SweepCell cell;
            cell.index = index++;
            cell.scenario = scenario;
            cell.protocol = protocol;
            cell.trials = plan.trials;
            cell.trace = plan.trace;
            plan.cells.push_back(std::move(cell));
          }
        }
      }
    }
  }
  return plan;
}

}  // namespace nrn::sim

// Sweep progress events: the one event vocabulary for live observers.
//
// SweepRunner::run emits these through SweepOptions::on_progress as cells
// resolve; the serve daemon's scheduler emits the same shapes over the
// wire (docs/serve_protocol.md), and `nrn_sim sweep --progress` and
// `nrn_sim submit --progress` render both through the same ticker
// (serve/ticker.hpp).  Events are observability only: they never feed back
// into execution, so enabling them cannot perturb a report.
#pragma once

#include <functional>
#include <string>

namespace nrn::sim {

struct SweepProgressEvent {
  enum class Kind {
    kAccepted,  ///< the run's scope is known; `total` is set
    kCellDone,  ///< one cell resolved (cached or computed)
    kPlanDone,  ///< every cell in scope is resolved
  };

  Kind kind = Kind::kAccepted;
  int total = 0;  ///< cells in scope (a shard's slice, or the whole plan)
  int done = 0;   ///< cells resolved so far, including this event's

  // kCellDone only:
  int cell_index = 0;      ///< plan-wide cell index
  bool cached = false;     ///< true: loaded from cache; false: computed
  std::string cell_hash;   ///< cache entry stem (hex FNV-1a of the key)

  // Running provenance split; final totals on kPlanDone.
  int computed = 0;
  int cached_cells = 0;
};

/// Progress sink.  SweepRunner serializes invocations (one event at a
/// time, happens-before ordered), but they arrive on worker threads -- a
/// sink must not touch the runner or assume the submitting thread.
using ProgressFn = std::function<void(const SweepProgressEvent&)>;

}  // namespace nrn::sim

#include "sim/driver.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <set>

#include "common/stats.hpp"
#include "common/task_pool.hpp"
#include "graph/algorithms.hpp"

namespace nrn::sim {

bool ExperimentReport::all_completed() const {
  for (const auto& trial : trials)
    if (!trial.run.completed) return false;
  return true;
}

int ExperimentReport::completed_trials() const {
  int done = 0;
  for (const auto& trial : trials) done += trial.run.completed ? 1 : 0;
  return done;
}

std::vector<double> ExperimentReport::rounds() const {
  std::vector<double> out;
  out.reserve(trials.size());
  for (const auto& trial : trials)
    out.push_back(static_cast<double>(trial.run.rounds()));
  return out;
}

double ExperimentReport::median_rounds() const {
  return trials.empty() ? 0.0 : quantile(rounds(), 0.5);
}

double ExperimentReport::mean_rounds() const {
  return trials.empty() ? 0.0 : mean(rounds());
}

double ExperimentReport::gap() const {
  return has_theory_bound() ? median_rounds() / theory_bound : 0.0;
}

std::vector<std::string> ExperimentReport::metric_keys() const {
  std::set<std::string> keys;
  for (const auto& trial : trials)
    for (const auto& [key, unused] : trial.run.metrics) keys.insert(key);
  return {keys.begin(), keys.end()};
}

std::vector<std::string> ExperimentReport::series_keys() const {
  std::set<std::string> keys;
  for (const auto& trial : trials)
    for (const auto& [key, unused] : trial.run.series) keys.insert(key);
  return {keys.begin(), keys.end()};
}

std::vector<double> ExperimentReport::metric_values(
    const std::string& key) const {
  std::vector<double> out;
  out.reserve(trials.size());
  for (const auto& trial : trials)
    if (const MetricValue* v = trial.run.find(key))
      out.push_back(v->as_real());
  return out;
}

MetricSummary ExperimentReport::metric_summary(const std::string& key) const {
  MetricSummary s;
  for (const double v : metric_values(key)) {
    if (s.count == 0) {
      s.min = s.max = v;
    } else {
      s.min = std::min(s.min, v);
      s.max = std::max(s.max, v);
    }
    s.mean += v;
    ++s.count;
  }
  if (s.count > 0) s.mean /= s.count;
  return s;
}

namespace {

/// A trace progress value is conventionally a count (informed nodes); keep
/// integral values exact so the series round-trips as integers.
MetricValue progress_value(double p) {
  constexpr double kExactIntLimit = 9.0e15;  // below 2^53: cast is exact
  if (p == std::floor(p) && std::abs(p) < kExactIntLimit)
    return MetricValue(static_cast<std::int64_t>(p));
  return MetricValue(p);
}

/// Folds one trial's TraceRecorder into the outcome's series map.  Under a
/// kSinr channel the per-round interference losses are traced too; the
/// series is absent for edge-fault channels (where it would be all zeros),
/// so edge-fault traces are byte-identical to pre-channel runs.
void fold_trace(Outcome& run, const radio::TraceRecorder& trace, bool sinr) {
  const std::size_t rounds = trace.round_count();
  if (rounds == 0) return;
  std::vector<MetricValue> informed, deliveries, collisions, broadcasters;
  std::vector<MetricValue> interference;
  informed.reserve(rounds);
  deliveries.reserve(rounds);
  collisions.reserve(rounds);
  broadcasters.reserve(rounds);
  if (sinr) interference.reserve(rounds);
  for (std::size_t i = 0; i < rounds; ++i) {
    const radio::RoundStats& s = trace.rounds()[i];
    informed.push_back(progress_value(trace.progress()[i]));
    deliveries.emplace_back(s.deliveries);
    collisions.emplace_back(s.collision_losses);
    broadcasters.emplace_back(s.broadcasters);
    if (sinr) interference.emplace_back(s.interference_losses);
  }
  run.set_series("informed", std::move(informed));
  run.set_series("deliveries", std::move(deliveries));
  run.set_series("collisions", std::move(collisions));
  run.set_series("broadcasters", std::move(broadcasters));
  if (sinr) run.set_series("interference", std::move(interference));
}

}  // namespace

ExperimentReport Driver::run(const Scenario& scenario,
                             const std::string& protocol_name, int trials,
                             const DriverOptions& options) const {
  NRN_EXPECTS(trials >= 1, "driver needs at least one trial");

  ExperimentReport report;
  report.protocol = protocol_name;
  report.scenario = scenario;

  // Geometric placement is materialized only for SINR channels; it must
  // outlive the workspaces below (networks borrow a pointer to it).
  const bool sinr = !scenario.channel.is_edge_fault();
  graph::Geometry geometry;
  const graph::Graph graph =
      scenario.build_graph(sinr ? &geometry : nullptr);
  report.node_count = graph.node_count();
  report.edge_count = graph.edge_count();
  report.depth =
      scenario.source < graph.node_count()
          ? graph::eccentricity(graph, scenario.source)
          : 0;
  report.capabilities = registry_->capabilities(protocol_name);
  if (sinr && (report.capabilities & kSinrCapable) == 0u)
    throw SpecError("protocol '" + protocol_name +
                    "' does not support the sinr channel");
  // The paper's bounds assume the edge-fault model; under SINR they are
  // reported as n/a (0 = none).
  report.theory_bound =
      sinr ? 0.0
           : registry_->theory_bound(
                 protocol_name, TheoryContext{scenario, report.node_count,
                                              report.edge_count, report.depth});

  const ProtocolContext ctx{graph, scenario, options.tuning};
  const auto protocol = registry_->create(protocol_name, ctx);

  // Derive every trial's seeds up front, in trial order, from one master
  // stream: trial t's coins are independent of the thread that runs it.
  report.trials.resize(static_cast<std::size_t>(trials));
  Rng master(scenario.seed);
  for (int t = 0; t < trials; ++t) {
    Rng stream = master.split(static_cast<std::uint64_t>(t));
    auto& trial = report.trials[static_cast<std::size_t>(t)];
    trial.index = t;
    trial.net_seed = stream();
    trial.algo_seed = stream();
  }

  // One workspace per pool slot: the slot's RadioNetwork is built for the
  // first trial it runs and reset -- not reallocated -- for every later
  // one.  Slots are owned by one thread at a time, so no locking.
  auto& pool = common::TaskPool::shared();
  std::vector<TrialWorkspace> workspaces(
      static_cast<std::size_t>(pool.slot_count()));
  const bool traced =
      options.trace && (report.capabilities & kTraced) != 0u;

  // Lockstep bank path: banks of up to kMaxLanes consecutive trials share
  // one adjacency pass per round.  Available only when the protocol can
  // step (make_stepper non-null); a lane replays exactly the scalar tape
  // -- same stepper, same per-trial Rng streams -- so reports are
  // bit-identical to the scalar path below.
  bool lockstep = false;
  if (options.execution != TrialExecution::kScalar &&
      protocol->make_stepper(nullptr) != nullptr) {
    // Auto never banks a consecutive-id topology: there the scalar
    // engine's word-parallel adjacent kernel resolves a round in O(n/64),
    // which beats the bank's shared per-edge pass even across 8 lanes.
    lockstep = options.execution == TrialExecution::kLockstep ||
               (trials >= 2 && report.node_count <= kLockstepAutoMaxNodes &&
                !radio::RadioNetwork::consecutive_adjacency(graph));
  }
  if (lockstep) {
    constexpr std::size_t kLanes =
        static_cast<std::size_t>(radio::LockstepNetwork::kMaxLanes);
    const std::size_t bank_count =
        (report.trials.size() + kLanes - 1) / kLanes;
    auto run_bank = [&](std::size_t b, int slot) {
      const std::size_t first = b * kLanes;
      const std::size_t last = std::min(first + kLanes, report.trials.size());
      radio::LockstepNetwork& bank =
          workspaces[static_cast<std::size_t>(slot)].acquire_bank(
              graph, scenario.channel, sinr ? &geometry : nullptr);
      std::array<std::unique_ptr<core::RoundStepper>, kLanes> steppers;
      std::array<std::optional<radio::TraceRecorder>, kLanes> recorders;
      std::array<Rng, kLanes> algo_rngs;
      unsigned active = 0;
      for (std::size_t t = first; t < last; ++t) {
        auto& trial = report.trials[t];
        const auto l =
            static_cast<std::size_t>(bank.add_lane(Rng(trial.net_seed)));
        if (traced) recorders[l].emplace();
        steppers[l] =
            protocol->make_stepper(traced ? &*recorders[l] : nullptr);
        algo_rngs[l] = Rng(trial.algo_seed);
        active |= 1u << l;
      }
      auto finish = [&](std::size_t l) {
        auto& trial = report.trials[first + l];
        trial.run = Outcome::from(steppers[l]->result());
        if (traced) fold_trace(trial.run, *recorders[l], sinr);
        active &= ~(1u << l);
      };
      while (active != 0) {
        unsigned ran = 0;
        for (std::size_t l = 0; l < kLanes; ++l) {
          if ((active & (1u << l)) == 0) continue;
          auto port = bank.port(static_cast<int>(l));
          if (steppers[l]->stage_round(port, algo_rngs[l]))
            ran |= 1u << l;
          else
            finish(l);
        }
        if (ran == 0) break;
        bank.run_round(ran);
        for (std::size_t l = 0; l < kLanes; ++l) {
          if ((ran & (1u << l)) == 0) continue;
          if (steppers[l]->absorb_round(
                  bank.receivers(static_cast<int>(l)),
                  bank.last_round(static_cast<int>(l))))
            finish(l);
        }
      }
    };
    const int bank_workers =
        std::min(options.threads, static_cast<int>(bank_count));
    if (bank_workers <= 1) {
      for (std::size_t b = 0; b < bank_count; ++b) run_bank(b, 0);
    } else {
      pool.run(bank_count, bank_workers, run_bank);
    }
    return report;
  }

  auto run_trial = [&](std::size_t t, int slot) {
    auto& trial = report.trials[t];
    radio::RadioNetwork& net = workspaces[static_cast<std::size_t>(slot)]
                                   .acquire(graph, scenario.channel,
                                            sinr ? &geometry : nullptr,
                                            Rng(trial.net_seed));
    Rng algo_rng(trial.algo_seed);
    if (traced) {
      radio::TraceRecorder recorder;
      trial.run = protocol->run(net, algo_rng, &recorder);
      fold_trace(trial.run, recorder, sinr);
    } else {
      trial.run = protocol->run(net, algo_rng);
    }
  };

  const int workers = std::min(options.threads, trials);
  if (workers <= 1) {
    for (std::size_t t = 0; t < report.trials.size(); ++t) run_trial(t, 0);
  } else {
    pool.run(report.trials.size(), workers, run_trial);
  }
  return report;
}

}  // namespace nrn::sim

// Shared vocabulary for the registry's theory-bound formulas.
//
// Every TheoryBound in protocols.cpp and schedule_protocols.cpp is built
// from these few terms; keeping them in one header means a change to a
// floor or a loss model cannot silently diverge between the builtin and
// schedule-level protocol bounds (which would skew the emitters'
// gap-vs-theory columns for half the registry).
#pragma once

#include <algorithm>
#include <cmath>

#include "sim/registry.hpp"

namespace nrn::sim::bounds {

inline double log2n(const TheoryContext& ctx) {
  return std::log2(std::max<double>(2.0, static_cast<double>(ctx.nodes)));
}

inline double loglog2n(const TheoryContext& ctx) {
  return std::log2(std::max(2.0, log2n(ctx)));
}

/// 1/(1-p) loss inflation; every noisy bound pays it.
inline double loss_factor(const TheoryContext& ctx) {
  return 1.0 / (1.0 - ctx.scenario.fault.effective_loss());
}

/// The paper's D: the source's BFS eccentricity, floored at 1.
inline double depth(const TheoryContext& ctx) {
  return static_cast<double>(std::max<std::int64_t>(1, ctx.depth));
}

/// The message count k as a double.
inline double kd(const TheoryContext& ctx) {
  return static_cast<double>(ctx.scenario.k);
}

}  // namespace nrn::sim::bounds

// The uniform broadcast-protocol interface (Protocol v2).
//
// Every algorithm in the library -- Decay, FASTBC, Robust FASTBC, the RLNC
// compositions, the erasure-coded variant, the layered pipeline, the greedy
// adaptive router, and the star/WCT/link schedule protocols -- is wrapped
// behind one polymorphic run() signature so drivers, benches, and tools
// never dispatch on protocol names themselves.  Protocols are built from a
// (graph, scenario) context by the ProtocolRegistry; construction performs
// any known-topology precomputation (e.g. the GBST), and run() executes one
// trial.
//
// v2 replaces the fixed RunReport struct with an extensible Outcome: a
// `completed` verdict plus a typed metrics map.  A protocol reports only
// the metrics it actually measures -- a single-message run carries
// "informed", a verified run carries "verified_bytes", the WCT structural
// probe carries "unique_fraction" -- and drivers, emitters, and sweep
// aggregation handle arbitrary keys uniformly.  Sentinels are gone: a
// metric a protocol cannot measure is absent, never -1.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/contracts.hpp"
#include "common/numio.hpp"
#include "common/rng.hpp"
#include "core/run_result.hpp"
#include "core/stepper.hpp"
#include "radio/network.hpp"
#include "radio/trace.hpp"

namespace nrn::sim {

// ------------------------------------------------------------ capabilities

/// What a protocol can do beyond "broadcast and count rounds".  The
/// registry stores a CapabilitySet per protocol; drivers and sweeps
/// interrogate it instead of special-casing protocol names.
enum Capability : std::uint32_t {
  /// Broadcasts k > 1 messages; emits the "messages" metric.
  kMultiMessage = 1u << 0,
  /// Carries real payload bytes and checks every delivery against the
  /// source payload; emits the "verified_bytes" metric.
  kVerifiedPayload = 1u << 1,
  /// A schedule-level protocol measured against a registered theory bound
  /// (the star/WCT/link gap experiments); may emit gap observables such as
  /// "unique_fraction".
  kScheduleGap = 1u << 2,
  /// Records per-round progress into a TraceRecorder when one is supplied.
  kTraced = 1u << 3,
  /// Runs correctly under a kSinr channel: the protocol makes no
  /// assumption tied to the edge-fault model (e.g. a precomputed schedule
  /// calibrated to collision-freeness).  The Driver rejects non-capable
  /// protocols under SINR, and theory bounds are reported as n/a -- the
  /// paper's bounds assume the edge-fault model.
  kSinrCapable = 1u << 4,
};

using CapabilitySet = std::uint32_t;

/// "multi-message+verified-payload", or "-" for an empty set.
std::string capability_names(CapabilitySet caps);

// ----------------------------------------------------------------- metrics

/// One metric value: an exact 64-bit integer or a double.  Integers stay
/// integers through serialization (shard files and the result cache must
/// round-trip bit-identically); reals serialize as hexfloats for the same
/// reason.
class MetricValue {
 public:
  MetricValue() = default;
  MetricValue(std::int64_t v) : kind_(Kind::kInt), int_(v) {}
  MetricValue(int v) : MetricValue(static_cast<std::int64_t>(v)) {}
  MetricValue(double v) : kind_(Kind::kReal), real_(v) {}

  bool is_int() const { return kind_ == Kind::kInt; }

  std::int64_t as_int() const {
    NRN_EXPECTS(is_int(), "metric is not an integer");
    return int_;
  }

  /// Either kind, widened to double.
  double as_real() const {
    return is_int() ? static_cast<double>(int_) : real_;
  }

  /// "i<decimal>" for integers, "r<hexfloat>" for reals; both round-trip
  /// exactly through parse().  Rendering is locale-independent
  /// (common/numio), so records written under any process locale are
  /// byte-identical.
  std::string serialize() const {
    if (is_int()) {
      char buf[24];
      std::snprintf(buf, sizeof buf, "i%lld", static_cast<long long>(int_));
      return buf;
    }
    // Prepend via insert rather than `"r" + <temporary>`: the rvalue
    // operator+ overload trips gcc 12's -Wrestrict false positive
    // (gcc bug 105651) at -O3, and the tree builds with -Werror.
    std::string out = format_real_hex(real_);
    out.insert(0, 1, 'r');
    return out;
  }

  /// Inverse of serialize(); nullopt on any malformed input (trailing
  /// junk, overflow, wrong kind tag).  Real values that underflow to a
  /// subnormal or zero are accepted -- they are the closest representable
  /// doubles, and serialized subnormals must round-trip.
  static std::optional<MetricValue> parse(std::string_view text) {
    if (text.size() < 2) return std::nullopt;
    const std::string body(text.substr(1));
    if (text[0] == 'i') {
      char* end = nullptr;
      errno = 0;
      const long long v = std::strtoll(body.c_str(), &end, 10);
      if (end != body.c_str() + body.size() || errno == ERANGE)
        return std::nullopt;
      return MetricValue(static_cast<std::int64_t>(v));
    }
    if (text[0] == 'r') {
      const ParseRealResult r = parse_real(body);
      if (!r.ok()) return std::nullopt;
      return MetricValue(r.value);
    }
    return std::nullopt;
  }

  friend bool operator==(const MetricValue&, const MetricValue&) = default;

 private:
  enum class Kind { kInt, kReal };
  Kind kind_ = Kind::kInt;
  std::int64_t int_ = 0;
  double real_ = 0.0;
};

/// Sorted key -> value map; sorted so every emitter and serialization
/// enumerates metrics in one deterministic order.
using Metrics = std::map<std::string, MetricValue>;

/// Per-round series: key -> one value per recorded round, in round order.
/// Same key grammar and ordering guarantees as Metrics.
using MetricSeries = std::map<std::string, std::vector<MetricValue>>;

/// True iff `key` is a legal metric name: nonempty, [a-z0-9_] only.  Keys
/// appear as serialization tokens and CSV column names, so the grammar is
/// deliberately narrow.
bool valid_metric_key(std::string_view key);

// ----------------------------------------------------------------- outcome

/// Uniform outcome of one protocol trial: the completion verdict plus the
/// metrics the protocol measured.  Conventional keys:
///   rounds          rounds executed (every protocol)
///   messages        k, multi-message protocols only (absent => 1)
///   informed        informed nodes at the end, when tracked (absent
///                   otherwise -- never a -1 sentinel)
///   verified_bytes  payload bytes checked against the source payload
///
/// Tracing (Protocol v4): when the Driver runs a kTraced protocol with
/// tracing enabled, the outcome additionally carries per-round *series* --
/// one value per round under conventional keys ("informed", "deliveries",
/// "collisions", "broadcasters").  Series are empty for untraced runs, so
/// tracing costs nothing when disabled and untraced outcomes serialize
/// exactly as before.
struct Outcome {
  bool completed = false;
  Metrics metrics;
  MetricSeries series;

  std::int64_t rounds() const { return int_metric("rounds", 0); }
  std::int64_t messages() const { return int_metric("messages", 1); }

  double rounds_per_message() const {
    const std::int64_t m = messages();
    return m <= 0 ? 0.0
                  : static_cast<double>(rounds()) / static_cast<double>(m);
  }

  const MetricValue* find(const std::string& key) const {
    const auto it = metrics.find(key);
    return it == metrics.end() ? nullptr : &it->second;
  }

  Outcome& set(const std::string& key, MetricValue value) {
    NRN_EXPECTS(valid_metric_key(key),
                "invalid metric key '" + key + "'");
    metrics[key] = value;
    return *this;
  }

  const std::vector<MetricValue>* find_series(const std::string& key) const {
    const auto it = series.find(key);
    return it == series.end() ? nullptr : &it->second;
  }

  Outcome& set_series(const std::string& key,
                      std::vector<MetricValue> values) {
    NRN_EXPECTS(valid_metric_key(key),
                "invalid series key '" + key + "'");
    series[key] = std::move(values);
    return *this;
  }

  static Outcome from(const core::BroadcastRunResult& r) {
    Outcome out;
    out.completed = r.completed;
    out.set("rounds", r.rounds);
    out.set("informed", r.informed);
    return out;
  }

  /// Multi-message results do not track informed counts; the metric is
  /// simply absent (v1 emitted informed = -1 here).
  static Outcome from(const core::MultiRunResult& r) {
    Outcome out;
    out.completed = r.completed;
    out.set("rounds", r.rounds);
    out.set("messages", r.messages);
    return out;
  }

  friend bool operator==(const Outcome&, const Outcome&) = default;

 private:
  std::int64_t int_metric(const std::string& key, std::int64_t fallback) const {
    const MetricValue* v = find(key);
    return v == nullptr ? fallback : v->as_int();
  }
};

// ------------------------------------------------------------------ tuning

/// Optional protocol knobs for ablations; 0 keeps each protocol's own
/// default.  Protocols read only the fields they understand.
struct Tuning {
  std::int32_t decay_phase = 0;        ///< Decay phase length
  std::int32_t rank_modulus = 0;       ///< FASTBC-family schedule modulus
  std::int32_t block_size = 0;         ///< Robust FASTBC block size S
  std::int32_t window_multiplier = 0;  ///< Robust FASTBC window constant c
  std::int64_t batch = 0;              ///< pipeline batch size k'
  std::int64_t max_rounds = 0;         ///< round budget override
  std::int64_t transform_x = 0;        ///< Lemma 25/26 sub-messages per base
  double transform_eta = 0.0;          ///< Lemma 25/26 meta-round slack
  std::int64_t payload_len = 0;        ///< bytes/message for verified runs

  friend bool operator==(const Tuning&, const Tuning&) = default;
};

// ---------------------------------------------------------------- protocol

/// A broadcast protocol bound to a concrete (graph, scenario).
///
/// run() must be safe to call concurrently from multiple threads on the
/// same instance (the Driver batches trials across threads): all per-trial
/// state lives in the RadioNetwork and Rng arguments, never in the protocol
/// object.  Protocols with the kTraced capability record per-round progress
/// into `trace` when it is non-null; others ignore it.
class BroadcastProtocol {
 public:
  virtual ~BroadcastProtocol() = default;

  virtual const std::string& name() const = 0;

  virtual Outcome run(radio::RadioNetwork& net, Rng& rng,
                      radio::TraceRecorder* trace = nullptr) const = 0;

  /// The protocol's per-round logic as a core::RoundStepper, or nullptr if
  /// the protocol cannot step (the default).  A non-null stepper lets the
  /// Driver run small-n trials in the lockstep bank; the protocol's own
  /// run() must be run_stepped over the identical stepper so scalar and
  /// lockstep trials are bit-identical by construction.  One stepper per
  /// trial: steppers hold trial state and are never shared.
  virtual std::unique_ptr<core::RoundStepper> make_stepper(
      radio::TraceRecorder* trace) const {
    (void)trace;
    return nullptr;
  }
};

}  // namespace nrn::sim

// The uniform broadcast-protocol interface.
//
// Every algorithm in the library -- Decay, FASTBC, Robust FASTBC, the RLNC
// compositions, the layered pipeline, and the greedy adaptive router -- is
// wrapped behind one polymorphic run() signature so drivers, benches, and
// tools never dispatch on protocol names themselves.  Protocols are built
// from a (graph, scenario) context by the ProtocolRegistry; construction
// performs any known-topology precomputation (e.g. the GBST), and run()
// executes one trial.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "core/run_result.hpp"
#include "radio/network.hpp"
#include "radio/trace.hpp"

namespace nrn::sim {

/// Uniform outcome of one protocol trial; unifies the core library's
/// BroadcastRunResult (single message) and MultiRunResult (k messages).
struct RunReport {
  bool completed = false;
  std::int64_t rounds = 0;
  std::int64_t messages = 1;    ///< k for multi-message protocols
  std::int64_t informed = -1;   ///< informed nodes at the end; -1 = untracked

  double rounds_per_message() const {
    return messages <= 0 ? 0.0
                         : static_cast<double>(rounds) /
                               static_cast<double>(messages);
  }

  static RunReport from(const core::BroadcastRunResult& r) {
    return {r.completed, r.rounds, 1, r.informed};
  }
  static RunReport from(const core::MultiRunResult& r) {
    return {r.completed, r.rounds, r.messages, -1};
  }

  friend bool operator==(const RunReport&, const RunReport&) = default;
};

/// Optional protocol knobs for ablations; 0 keeps each protocol's own
/// default.  Protocols read only the fields they understand.
struct Tuning {
  std::int32_t decay_phase = 0;        ///< Decay phase length
  std::int32_t rank_modulus = 0;       ///< FASTBC-family schedule modulus
  std::int32_t block_size = 0;         ///< Robust FASTBC block size S
  std::int32_t window_multiplier = 0;  ///< Robust FASTBC window constant c
  std::int64_t batch = 0;              ///< pipeline batch size k'
  std::int64_t max_rounds = 0;         ///< round budget override
  std::int64_t transform_x = 0;        ///< Lemma 25/26 sub-messages per base
  double transform_eta = 0.0;          ///< Lemma 25/26 meta-round slack

  friend bool operator==(const Tuning&, const Tuning&) = default;
};

/// A broadcast protocol bound to a concrete (graph, scenario).
///
/// run() must be safe to call concurrently from multiple threads on the
/// same instance (the Driver batches trials across threads): all per-trial
/// state lives in the RadioNetwork and Rng arguments, never in the protocol
/// object.  Protocols that support tracing record per-round progress into
/// `trace` when it is non-null; others ignore it.
class BroadcastProtocol {
 public:
  virtual ~BroadcastProtocol() = default;

  virtual const std::string& name() const = 0;

  virtual RunReport run(radio::RadioNetwork& net, Rng& rng,
                        radio::TraceRecorder* trace = nullptr) const = 0;
};

}  // namespace nrn::sim

// Report emitters: experiment and sweep reports, three renderings each.
//
// The text tables match the library's TableWriter house style; CSV and
// JSON carry the same rows plus the scenario/plan headers, so external
// plotting, the golden-file regression tests, and the CI smoke checks
// share one source of truth.  Emitter output is deterministic in the
// report alone; provenance (per-cell cache hits in the human table, fleet
// claimed/stolen/skipped counters as a CSV comment / JSON "fleet" object,
// emitted only when a fleet ran) never touches the data rows, so a merged
// sharded or fleet sweep emits byte-identical data to the serial run.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "sim/driver.hpp"
#include "sim/sweep_runner.hpp"

namespace nrn::sim {

/// One cross-cell regression: a summary metric of every cell in a
/// (protocol, fault, k) group, regressed against the group's node counts
/// under y ~ intercept + slope * log2(nodes).  This generalizes the e7
/// bench's bespoke log-linear fit (Lemma 15's Theta(log n) shape) into the
/// report layer, so serial, fleet, and serve reports all carry the same
/// fits.  Groups need at least three distinct node counts; smaller groups
/// produce no fit (and sweeps without a size axis emit none at all).
struct SweepFit {
  std::string protocol;
  std::string fault;
  std::int64_t k = 1;
  std::string metric;  ///< "median_rounds" or "median_rpm"
  int cells = 0;       ///< cells (points) in the regression
  LinearFit fit;       ///< slope/intercept/r2 of metric vs log2(nodes)
};

/// The fits a sweep's cells support, in deterministic (protocol, fault, k,
/// metric) order.  Pure function of the report's cells: a merged fleet or
/// serve report yields exactly the serial run's fits.
std::vector<SweepFit> sweep_fits(const SweepReport& report);

/// Aligned text table with scenario notes and a summary line.
void write_table(std::ostream& os, const ExperimentReport& report);

/// CSV: comment lines for the scenario, then one row per trial.
void write_csv(std::ostream& os, const ExperimentReport& report);

/// A single JSON object with scenario metadata and a "trials" array.
void write_json(std::ostream& os, const ExperimentReport& report);

/// Aligned grid table: one row per cell with summary statistics (and a
/// cache-provenance column; the only emitter that shows cache state).
void write_sweep_table(std::ostream& os, const SweepReport& report);

/// CSV grid: plan comment lines, then one summary row per cell.
void write_sweep_csv(std::ostream& os, const SweepReport& report);

/// JSON object with the plan header and a "cells" array; each cell embeds
/// the same fields as write_json, including its per-trial array.
void write_sweep_json(std::ostream& os, const SweepReport& report);

}  // namespace nrn::sim

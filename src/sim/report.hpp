// Report emitters: one ExperimentReport, three renderings.
//
// The text table matches the library's TableWriter house style; CSV and
// JSON carry the same per-trial rows plus the scenario header, so external
// plotting and the CI smoke checks share one source of truth.
#pragma once

#include <iosfwd>

#include "sim/driver.hpp"

namespace nrn::sim {

/// Aligned text table with scenario notes and a summary line.
void write_table(std::ostream& os, const ExperimentReport& report);

/// CSV: comment lines for the scenario, then one row per trial.
void write_csv(std::ostream& os, const ExperimentReport& report);

/// A single JSON object with scenario metadata and a "trials" array.
void write_json(std::ostream& os, const ExperimentReport& report);

}  // namespace nrn::sim

// Schedule-level protocol adapters: the Lemma 25/26 transforms and the
// Appendix A single-link schedules behind the uniform BroadcastProtocol
// interface.  Unlike the builtin broadcast protocols these only run on the
// topologies whose base schedules exist (star/path for the transforms, the
// two-node link for the Appendix A schedules), so their factories validate
// the scenario and they are registered separately from global().
#include <memory>

#include "core/single_link.hpp"
#include "core/transforms.hpp"
#include "sim/registry.hpp"

namespace nrn::sim {

namespace {

std::unique_ptr<core::BaseSchedule> base_schedule_for(
    const ProtocolContext& ctx, const std::string& protocol) {
  const auto& topology = ctx.scenario.topology;
  const std::int64_t k0 = ctx.scenario.k;
  if (topology.kind == "star")
    return std::make_unique<core::StarBaseSchedule>(k0);
  if (topology.kind == "path")
    return std::make_unique<core::PathPipelineBaseSchedule>(
        static_cast<std::int32_t>(topology.ints.at(0)), k0);
  throw SpecError(protocol + " needs a star:* or path:* topology, got '" +
                  topology.text + "'");
}

core::TransformParams transform_params(const ProtocolContext& ctx) {
  core::TransformParams params;
  if (ctx.tuning.transform_x > 0) params.x = ctx.tuning.transform_x;
  else params.x = 64;  // the experiments' x cap (paper takes x -> infinity)
  params.eta = ctx.tuning.transform_eta > 0.0
                   ? ctx.tuning.transform_eta
                   : core::recommended_transform_eta(
                         ctx.scenario.fault.effective_loss());
  return params;
}

class TransformProtocol final : public BroadcastProtocol {
 public:
  TransformProtocol(const ProtocolContext& ctx, bool coding)
      : name_(coding ? "transform-coding" : "transform-routing"),
        coding_(coding),
        base_(base_schedule_for(ctx, name_)),
        params_(transform_params(ctx)) {}

  const std::string& name() const override { return name_; }

  RunReport run(radio::RadioNetwork& net, Rng& rng,
                radio::TraceRecorder* /*trace*/) const override {
    const auto result =
        coding_ ? core::run_coding_transform(net, *base_, params_, rng)
                : core::run_routing_transform(net, *base_, params_, rng);
    // The run is in sub-message units, so rounds_per_message() inverts to
    // the transform's measured throughput.
    return RunReport::from(result.run);
  }

 private:
  std::string name_;
  bool coding_;
  std::unique_ptr<core::BaseSchedule> base_;
  core::TransformParams params_;
};

enum class LinkMode { kNonadaptive, kAdaptive, kCoding };

class LinkProtocol final : public BroadcastProtocol {
 public:
  LinkProtocol(const ProtocolContext& ctx, LinkMode mode, std::string name)
      : name_(std::move(name)), mode_(mode), k_(ctx.scenario.k) {
    if (ctx.scenario.topology.kind != "link")
      throw SpecError(name_ + " needs the 'link' topology, got '" +
                      ctx.scenario.topology.text + "'");
    const double loss = ctx.scenario.fault.effective_loss();
    reps_ = loss > 0.0 ? core::link_nonadaptive_reps(k_, loss) : 1;
    packets_ = core::link_rs_packet_count(k_, loss);
    max_rounds_ =
        ctx.tuning.max_rounds > 0 ? ctx.tuning.max_rounds : 1'000'000'000;
  }

  const std::string& name() const override { return name_; }

  RunReport run(radio::RadioNetwork& net, Rng& /*rng*/,
                radio::TraceRecorder* /*trace*/) const override {
    // All three schedules are deterministic given the network's fault tape.
    switch (mode_) {
      case LinkMode::kNonadaptive:
        return RunReport::from(
            core::run_link_nonadaptive_routing(net, k_, reps_));
      case LinkMode::kAdaptive:
        return RunReport::from(
            core::run_link_adaptive_routing(net, k_, max_rounds_));
      case LinkMode::kCoding:
        return RunReport::from(core::run_link_rs_coding(net, k_, packets_));
    }
    NRN_EXPECTS(false, "unhandled link mode");
    return {};
  }

 private:
  std::string name_;
  LinkMode mode_;
  std::int64_t k_;
  std::int64_t reps_ = 1;
  std::int64_t packets_ = 1;
  std::int64_t max_rounds_ = 0;
};

}  // namespace

const ProtocolRegistry& extended_registry() {
  static const ProtocolRegistry* registry = [] {
    auto* r = new ProtocolRegistry();
    register_builtin_protocols(*r);
    register_schedule_protocols(*r);
    return r;
  }();
  return *registry;
}

void register_schedule_protocols(ProtocolRegistry& registry) {
  registry.add("transform-routing",
               "Lemma 25: routing transform of a faultless base schedule "
               "(star/path), throughput tau(1-p) under sender faults",
               [](const ProtocolContext& ctx) {
                 return std::make_unique<TransformProtocol>(ctx, false);
               });
  registry.add("transform-coding",
               "Lemma 26: coding transform of a faultless base schedule "
               "(star/path), robust to sender or receiver faults",
               [](const ProtocolContext& ctx) {
                 return std::make_unique<TransformProtocol>(ctx, true);
               });
  registry.add("link-nonadaptive",
               "Lemma 29: non-adaptive repetition schedule on the single "
               "link, Theta(log k) rounds/message",
               [](const ProtocolContext& ctx) {
                 return std::make_unique<LinkProtocol>(
                     ctx, LinkMode::kNonadaptive, "link-nonadaptive");
               });
  registry.add("link-adaptive",
               "Lemma 32: adaptive feedback schedule on the single link, "
               "1/(1-p) rounds/message",
               [](const ProtocolContext& ctx) {
                 return std::make_unique<LinkProtocol>(
                     ctx, LinkMode::kAdaptive, "link-adaptive");
               });
  registry.add("link-coding",
               "Lemma 30: Reed-Solomon stream on the single link, Theta(1) "
               "rounds/message",
               [](const ProtocolContext& ctx) {
                 return std::make_unique<LinkProtocol>(ctx, LinkMode::kCoding,
                                                       "link-coding");
               });
}

}  // namespace nrn::sim

// Schedule-level protocol adapters: the Lemma 25/26 transforms, the
// Appendix A single-link schedules, the Section 5.1.1 star schedules, and
// the Section 5.1.2 WCT schedules behind the uniform BroadcastProtocol
// interface.  Unlike the builtin broadcast protocols these only run on the
// topologies whose base schedules exist (star/path for the transforms, the
// two-node link for the Appendix A schedules, star/wct for the gap
// schedules), so their factories validate the scenario and they are
// registered separately from global().
//
// These are the protocols behind the paper's gap experiments: each one
// carries the kScheduleGap capability and a theory bound, so the e7/e8
// benches and `nrn_sim sweep` read the routing-vs-coding separations
// straight off the emitters' gap columns instead of bespoke trial loops.
#include <algorithm>
#include <cmath>
#include <memory>

#include "core/single_link.hpp"
#include "core/star_schedules.hpp"
#include "core/transforms.hpp"
#include "core/wct_schedules.hpp"
#include "sim/registry.hpp"
#include "sim/theory_bounds.hpp"
#include "topology/star.hpp"
#include "topology/wct.hpp"

namespace nrn::sim {

namespace {

std::unique_ptr<core::BaseSchedule> base_schedule_for(
    const ProtocolContext& ctx, const std::string& protocol) {
  const auto& topology = ctx.scenario.topology;
  const std::int64_t k0 = ctx.scenario.k;
  if (topology.kind == "star")
    return std::make_unique<core::StarBaseSchedule>(k0);
  if (topology.kind == "path")
    return std::make_unique<core::PathPipelineBaseSchedule>(
        static_cast<std::int32_t>(topology.ints.at(0)), k0);
  throw SpecError(protocol + " needs a star:* or path:* topology, got '" +
                  topology.text + "'");
}

core::TransformParams transform_params(const ProtocolContext& ctx) {
  core::TransformParams params;
  if (ctx.tuning.transform_x > 0) params.x = ctx.tuning.transform_x;
  else params.x = 64;  // the experiments' x cap (paper takes x -> infinity)
  params.eta = ctx.tuning.transform_eta > 0.0
                   ? ctx.tuning.transform_eta
                   : core::recommended_transform_eta(
                         ctx.scenario.fault.effective_loss());
  return params;
}

class TransformProtocol final : public BroadcastProtocol {
 public:
  TransformProtocol(const ProtocolContext& ctx, bool coding)
      : name_(coding ? "transform-coding" : "transform-routing"),
        coding_(coding),
        base_(base_schedule_for(ctx, name_)),
        params_(transform_params(ctx)) {}

  const std::string& name() const override { return name_; }

  Outcome run(radio::RadioNetwork& net, Rng& rng,
              radio::TraceRecorder* /*trace*/) const override {
    const auto result =
        coding_ ? core::run_coding_transform(net, *base_, params_, rng)
                : core::run_routing_transform(net, *base_, params_, rng);
    // The run is in sub-message units, so rounds_per_message() inverts to
    // the transform's measured throughput.
    return Outcome::from(result.run);
  }

 private:
  std::string name_;
  bool coding_;
  std::unique_ptr<core::BaseSchedule> base_;
  core::TransformParams params_;
};

enum class LinkMode { kNonadaptive, kAdaptive, kCoding };

class LinkProtocol final : public BroadcastProtocol {
 public:
  LinkProtocol(const ProtocolContext& ctx, LinkMode mode, std::string name)
      : name_(std::move(name)), mode_(mode), k_(ctx.scenario.k) {
    if (ctx.scenario.topology.kind != "link")
      throw SpecError(name_ + " needs the 'link' topology, got '" +
                      ctx.scenario.topology.text + "'");
    const double loss = ctx.scenario.fault.effective_loss();
    reps_ = loss > 0.0 ? core::link_nonadaptive_reps(k_, loss) : 1;
    packets_ = core::link_rs_packet_count(k_, loss);
    max_rounds_ =
        ctx.tuning.max_rounds > 0 ? ctx.tuning.max_rounds : 1'000'000'000;
  }

  const std::string& name() const override { return name_; }

  Outcome run(radio::RadioNetwork& net, Rng& /*rng*/,
              radio::TraceRecorder* /*trace*/) const override {
    // All three schedules are deterministic given the network's fault tape.
    switch (mode_) {
      case LinkMode::kNonadaptive:
        return Outcome::from(
            core::run_link_nonadaptive_routing(net, k_, reps_));
      case LinkMode::kAdaptive:
        return Outcome::from(
            core::run_link_adaptive_routing(net, k_, max_rounds_));
      case LinkMode::kCoding:
        return Outcome::from(core::run_link_rs_coding(net, k_, packets_));
    }
    NRN_EXPECTS(false, "unhandled link mode");
    return {};
  }

 private:
  std::string name_;
  LinkMode mode_;
  std::int64_t k_;
  std::int64_t reps_ = 1;
  std::int64_t packets_ = 1;
  std::int64_t max_rounds_ = 0;
};

// ------------------------------------------------------ star gap schedules

topology::Star star_for(const ProtocolContext& ctx,
                        const std::string& protocol) {
  const auto& topology = ctx.scenario.topology;
  if (topology.kind != "star")
    throw SpecError(protocol + " needs a star:* topology, got '" +
                    topology.text + "'");
  if (ctx.scenario.source != 0)
    throw SpecError(protocol + " needs source 0 (the hub)");
  return topology::make_star(
      static_cast<graph::NodeId>(topology.ints.at(0)));
}

enum class StarMode { kAdaptive, kNonadaptive, kCoding };

class StarProtocol final : public BroadcastProtocol {
 public:
  StarProtocol(const ProtocolContext& ctx, StarMode mode, std::string name)
      : name_(std::move(name)),
        mode_(mode),
        star_(star_for(ctx, name_)),
        k_(ctx.scenario.k) {
    const double p = ctx.scenario.fault.effective_loss();
    const auto n = static_cast<std::int64_t>(star_.leaves.size());
    // Lemma 15 ablation: repetitions for per-leaf, per-message failure
    // below 1/(n k): p^r <= 1/(n k^2), i.e. r = ceil(log_{1/p}(n k^2)).
    reps_ = p <= 0.0
                ? 1
                : std::max<std::int64_t>(
                      1, static_cast<std::int64_t>(std::ceil(
                             std::log(std::max<double>(
                                 2.0, static_cast<double>(n * k_ * k_))) /
                             std::log(1.0 / p))));
    packets_ = core::rs_packet_count(
        k_, static_cast<std::int32_t>(n + 1), p);
    max_rounds_ =
        ctx.tuning.max_rounds > 0 ? ctx.tuning.max_rounds : 1'000'000'000;
  }

  const std::string& name() const override { return name_; }

  Outcome run(radio::RadioNetwork& net, Rng& /*rng*/,
              radio::TraceRecorder* /*trace*/) const override {
    // The star schedules draw all randomness from the network fault tape.
    switch (mode_) {
      case StarMode::kAdaptive:
        return Outcome::from(
            core::run_star_adaptive_routing(net, star_, k_, max_rounds_));
      case StarMode::kNonadaptive:
        return Outcome::from(
            core::run_star_nonadaptive_routing(net, star_, k_, reps_));
      case StarMode::kCoding:
        return Outcome::from(
            core::run_star_rs_coding(net, star_, k_, packets_));
    }
    NRN_EXPECTS(false, "unhandled star mode");
    return {};
  }

 private:
  std::string name_;
  StarMode mode_;
  topology::Star star_;
  std::int64_t k_;
  std::int64_t reps_ = 1;
  std::int64_t packets_ = 1;
  std::int64_t max_rounds_ = 0;
};

// ------------------------------------------------------- wct gap schedules

/// Rebuilds the scenario's WctNetwork (cluster structure included) by
/// replaying the exact stream build_graph() used; the Driver's graph and
/// this network are bit-identical.  Full adjacency is verified here, once
/// per protocol construction, so the per-trial core check stays cheap.
topology::WctNetwork wct_for(const ProtocolContext& ctx,
                             const std::string& protocol) {
  if (ctx.scenario.topology.kind != "wct")
    throw SpecError(protocol + " needs a wct:* topology, got '" +
                    ctx.scenario.topology.text + "'");
  Rng rng = ctx.scenario.topology_rng();
  topology::WctNetwork wct(ctx.scenario.topology.wct_params(), rng);
  const auto& rebuilt = wct.graph();
  NRN_ENSURES(rebuilt.node_count() == ctx.graph.node_count() &&
                  rebuilt.edge_count() == ctx.graph.edge_count(),
              "WCT reconstruction diverged from the scenario graph");
  for (graph::NodeId u = 0; u < rebuilt.node_count(); ++u) {
    const auto a = rebuilt.neighbors(u);
    const auto b = ctx.graph.neighbors(u);
    NRN_ENSURES(a.size() == b.size() &&
                    std::equal(a.begin(), a.end(), b.begin()),
                "WCT reconstruction diverged from the scenario graph");
  }
  return wct;
}

class WctCodingProtocol final : public BroadcastProtocol {
 public:
  explicit WctCodingProtocol(const ProtocolContext& ctx)
      : wct_(wct_for(ctx, "wct-coding")) {
    params_.k = ctx.scenario.k;
    params_.decay_phase = ctx.tuning.decay_phase;
    params_.max_rounds = ctx.tuning.max_rounds;
  }

  const std::string& name() const override {
    static const std::string n = "wct-coding";
    return n;
  }

  Outcome run(radio::RadioNetwork& net, Rng& rng,
              radio::TraceRecorder* /*trace*/) const override {
    return Outcome::from(core::run_wct_rs_coding(net, wct_, params_, rng));
  }

 private:
  topology::WctNetwork wct_;
  core::WctCodedParams params_;
};

/// The Lemma 18 structural probe: for broadcast sets of every power-of-two
/// size, the worst observed fraction of clusters with exactly one
/// broadcasting neighbor.  Emits "unique_fraction" (should be O(1/L)) and
/// "unique_fraction_x_classes" (should stay bounded as L grows); runs no
/// broadcast rounds.
class WctUniqueProbeProtocol final : public BroadcastProtocol {
 public:
  explicit WctUniqueProbeProtocol(const ProtocolContext& ctx)
      : wct_(wct_for(ctx, "wct-unique-probe")) {}

  const std::string& name() const override {
    static const std::string n = "wct-unique-probe";
    return n;
  }

  Outcome run(radio::RadioNetwork& /*net*/, Rng& rng,
              radio::TraceRecorder* /*trace*/) const override {
    const std::int32_t senders = wct_.params().sender_count;
    double worst = 0.0;
    std::vector<std::int32_t> ids(static_cast<std::size_t>(senders));
    for (std::int32_t i = 0; i < senders; ++i)
      ids[static_cast<std::size_t>(i)] = i;
    for (std::int32_t s = 1; s <= senders; s *= 2) {
      for (int shuffle = 0; shuffle < 12; ++shuffle) {
        rng.shuffle(ids);
        std::vector<bool> mask(static_cast<std::size_t>(senders), false);
        for (std::int32_t i = 0; i < s; ++i)
          mask[static_cast<std::size_t>(ids[static_cast<std::size_t>(i)])] =
              true;
        worst = std::max(worst, wct_.unique_reception_fraction(mask));
      }
    }
    Outcome out;
    out.completed = true;
    out.set("rounds", std::int64_t{0});
    out.set("unique_fraction", worst);
    out.set("unique_fraction_x_classes",
            worst * static_cast<double>(wct_.params().class_count));
    return out;
  }

 private:
  topology::WctNetwork wct_;
};

// ------------------------------------------------------------- the bounds

using bounds::kd;
using bounds::log2n;
using bounds::loss_factor;

/// Leaves, not nodes: the star's coupon collection runs over the n leaves.
double star_leaves(const TheoryContext& ctx) {
  return std::max<double>(
      2.0, static_cast<double>(ctx.scenario.topology.ints.at(0)));
}

double coded_stream_bound(const TheoryContext& ctx) {
  // Theta(1) rounds/message: k/(1-p) rounds end to end (Lemmas 16, 30, 32).
  return kd(ctx) * loss_factor(ctx);
}

double star_adaptive_bound(const TheoryContext& ctx) {
  // Lemma 15: log_{1/p} n rounds/message (last-of-n coupons).
  const double p = ctx.scenario.fault.effective_loss();
  if (p <= 0.0) return kd(ctx);
  return kd(ctx) *
         std::max(1.0, std::log(star_leaves(ctx)) / std::log(1.0 / p));
}

double star_nonadaptive_bound(const TheoryContext& ctx) {
  // The repetition law the adapter implements: log_{1/p}(n k^2)
  // rounds/message (one round/message when faultless).
  const double p = ctx.scenario.fault.effective_loss();
  if (p <= 0.0) return kd(ctx);
  return kd(ctx) *
         std::max(1.0, std::log(star_leaves(ctx) * kd(ctx) * kd(ctx)) /
                           std::log(1.0 / p));
}

double wct_coding_bound(const TheoryContext& ctx) {
  // Lemma 23: Theta(1/log n) throughput.
  return kd(ctx) * log2n(ctx) * loss_factor(ctx);
}

double link_nonadaptive_bound(const TheoryContext& ctx) {
  // Lemma 29: Theta(log k) rounds/message.
  return kd(ctx) * std::max(1.0, std::log2(std::max(2.0, kd(ctx))));
}

}  // namespace

const ProtocolRegistry& extended_registry() {
  static const ProtocolRegistry* registry = [] {
    auto* r = new ProtocolRegistry();
    register_builtin_protocols(*r);
    register_schedule_protocols(*r);
    return r;
  }();
  return *registry;
}

void register_schedule_protocols(ProtocolRegistry& registry) {
  registry.add("transform-routing",
               "Lemma 25: routing transform of a faultless base schedule "
               "(star/path), throughput tau(1-p) under sender faults",
               kMultiMessage,
               [](const ProtocolContext& ctx) {
                 return std::make_unique<TransformProtocol>(ctx, false);
               });
  registry.add("transform-coding",
               "Lemma 26: coding transform of a faultless base schedule "
               "(star/path), robust to sender or receiver faults",
               kMultiMessage,
               [](const ProtocolContext& ctx) {
                 return std::make_unique<TransformProtocol>(ctx, true);
               });
  registry.add("link-nonadaptive",
               "Lemma 29: non-adaptive repetition schedule on the single "
               "link, Theta(log k) rounds/message",
               kMultiMessage | kScheduleGap,
               [](const ProtocolContext& ctx) {
                 return std::make_unique<LinkProtocol>(
                     ctx, LinkMode::kNonadaptive, "link-nonadaptive");
               },
               link_nonadaptive_bound);
  registry.add("link-adaptive",
               "Lemma 32: adaptive feedback schedule on the single link, "
               "1/(1-p) rounds/message",
               kMultiMessage | kScheduleGap,
               [](const ProtocolContext& ctx) {
                 return std::make_unique<LinkProtocol>(
                     ctx, LinkMode::kAdaptive, "link-adaptive");
               },
               coded_stream_bound);
  registry.add("link-coding",
               "Lemma 30: Reed-Solomon stream on the single link, Theta(1) "
               "rounds/message",
               kMultiMessage | kScheduleGap,
               [](const ProtocolContext& ctx) {
                 return std::make_unique<LinkProtocol>(ctx, LinkMode::kCoding,
                                                       "link-coding");
               },
               coded_stream_bound);
  registry.add("star-adaptive",
               "Lemma 15: hub resends each message until all leaves have "
               "it; Theta(log n) rounds/message under receiver faults",
               kMultiMessage | kScheduleGap,
               [](const ProtocolContext& ctx) {
                 return std::make_unique<StarProtocol>(
                     ctx, StarMode::kAdaptive, "star-adaptive");
               },
               star_adaptive_bound);
  registry.add("star-nonadaptive",
               "Non-adaptive star routing: each message repeated "
               "ceil(log_{1/p} n k^2) times (the adaptivity ablation)",
               kMultiMessage | kScheduleGap,
               [](const ProtocolContext& ctx) {
                 return std::make_unique<StarProtocol>(
                     ctx, StarMode::kNonadaptive, "star-nonadaptive");
               },
               star_nonadaptive_bound);
  registry.add("star-coding",
               "Lemma 16: hub streams Reed-Solomon packets; Theta(1) "
               "rounds/message -- the Theorem 17 coding gap's fast side",
               kMultiMessage | kScheduleGap,
               [](const ProtocolContext& ctx) {
                 return std::make_unique<StarProtocol>(
                     ctx, StarMode::kCoding, "star-coding");
               },
               coded_stream_bound);
  registry.add("wct-coding",
               "Lemma 23: coded schedule on the worst-case topology, "
               "Theta(1/log n) throughput (Theorem 24's fast side)",
               kMultiMessage | kScheduleGap,
               [](const ProtocolContext& ctx) {
                 return std::make_unique<WctCodingProtocol>(ctx);
               },
               wct_coding_bound);
  registry.add("wct-unique-probe",
               "Lemma 18 structural probe: worst unique-reception fraction "
               "over broadcast set sizes (no rounds run)",
               kScheduleGap,
               [](const ProtocolContext& ctx) {
                 return std::make_unique<WctUniqueProbeProtocol>(ctx);
               });
}

}  // namespace nrn::sim

#include "sim/scenario.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/numio.hpp"

#include "graph/generators.hpp"
#include "topology/wct.hpp"

namespace nrn::sim {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, sep)) parts.push_back(item);
  if (!s.empty() && s.back() == sep) parts.emplace_back();
  return parts;
}

[[noreturn]] void bad_spec(const std::string& what) { throw SpecError(what); }

}  // namespace

std::int64_t parse_spec_int(const std::string& text, const std::string& what) {
  if (text.empty()) bad_spec(what + ": empty number");
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size())
    bad_spec(what + ": '" + text + "' is not an integer");
  if (errno == ERANGE) bad_spec(what + ": '" + text + "' is out of range");
  return static_cast<std::int64_t>(value);
}

std::uint64_t parse_spec_uint(const std::string& text,
                              const std::string& what) {
  if (text.empty()) bad_spec(what + ": empty number");
  if (text[0] == '-')
    bad_spec(what + ": '" + text + "' must be non-negative");
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size())
    bad_spec(what + ": '" + text + "' is not an integer");
  if (errno == ERANGE) bad_spec(what + ": '" + text + "' is out of range");
  return static_cast<std::uint64_t>(value);
}

double parse_spec_real(const std::string& text, const std::string& what) {
  // Locale-independent strict parse (common/numio): the same spec string
  // parses to the same double under every process locale, and the error
  // names exactly what was wrong (empty / malformed / trailing garbage /
  // overflow).  Underflow to a subnormal is accepted; non-finite values
  // (inf/nan spellings) are rejected -- no scenario parameter admits them.
  const ParseRealResult r = parse_real(text);
  if (!r.ok())
    bad_spec(what + ": '" + text + "' " + parse_real_error(r.status));
  if (!std::isfinite(r.value))
    bad_spec(what + ": '" + text + "' is not a finite number");
  return r.value;
}

namespace {

/// Arity and range rules per topology family.
struct KindRule {
  const char* kind;
  int int_args;      ///< colon-separated integer arguments after the kind
  bool has_real;     ///< one trailing real argument (gnp's p)
  bool randomized;
};

constexpr KindRule kKindRules[] = {
    {"barbell", 2, false, false},     {"binary-tree", 1, false, false},
    {"caterpillar", 2, false, false}, {"complete", 1, false, false},
    {"cycle", 1, false, false},
    {"disk", 0, false, true},  // special: n:radius with optional :power
    {"gnp", 1, true, true},
    {"grid", 0, false, false},  // special RxC argument
    {"hypercube", 1, false, false},   {"link", 0, false, false},
    {"lollipop", 2, false, false},    {"path", 1, false, false},
    {"regular", 2, false, true},      {"ring", 2, false, false},
    {"star", 1, false, false},        {"tree", 1, false, true},
    {"uniform", 0, false, true},  // special: n:density (two reals never fit
                                  // the one-trailing-real rule shape)
    {"wct", 1, false, true},  // special: 1 (budget) or 4 (M:L:C:S) arguments
};

const KindRule* find_rule(const std::string& kind) {
  for (const auto& rule : kKindRules)
    if (kind == rule.kind) return &rule;
  return nullptr;
}

std::int64_t positive_arg(const TopologySpec& spec, std::size_t i,
                          const char* name) {
  const std::int64_t v = spec.ints.at(i);
  if (v < 1)
    bad_spec("topology '" + spec.text + "': " + name + " must be positive");
  return v;
}

}  // namespace

TopologySpec TopologySpec::parse(const std::string& spec) {
  const auto parts = split(spec, ':');
  if (parts.empty() || parts[0].empty()) bad_spec("empty topology spec");
  TopologySpec out;
  out.text = spec;
  out.kind = parts[0];
  const KindRule* rule = find_rule(out.kind);
  if (rule == nullptr) bad_spec("unknown topology '" + out.kind + "'");

  if (out.kind == "grid") {
    if (parts.size() != 2) bad_spec("grid wants grid:RxC");
    const auto dims = split(parts[1], 'x');
    if (dims.size() != 2) bad_spec("grid wants grid:RxC");
    out.ints.push_back(parse_spec_int(dims[0], "grid rows"));
    out.ints.push_back(parse_spec_int(dims[1], "grid cols"));
  } else if (out.kind == "wct") {
    if (parts.size() != 2 && parts.size() != 5)
      bad_spec("wct wants wct:budget or wct:M:L:C:S");
    for (std::size_t i = 1; i < parts.size(); ++i)
      out.ints.push_back(parse_spec_int(parts[i], "wct argument"));
  } else if (out.kind == "disk") {
    if (parts.size() != 3 && parts.size() != 4)
      bad_spec("disk wants disk:n:radius or disk:n:radius:power");
    out.ints.push_back(parse_spec_int(parts[1], "disk n"));
    out.reals.push_back(parse_spec_real(parts[2], "disk radius"));
    out.reals.push_back(parts.size() == 4
                            ? parse_spec_real(parts[3], "disk power")
                            : 1.0);
  } else if (out.kind == "uniform") {
    if (parts.size() != 3) bad_spec("uniform wants uniform:n:density");
    out.ints.push_back(parse_spec_int(parts[1], "uniform n"));
    out.reals.push_back(parse_spec_real(parts[2], "uniform density"));
  } else {
    const std::size_t expected =
        1 + static_cast<std::size_t>(rule->int_args) + (rule->has_real ? 1 : 0);
    if (parts.size() != expected)
      bad_spec("topology '" + spec + "': wrong number of arguments for '" +
               out.kind + "'");
    for (int i = 0; i < rule->int_args; ++i)
      out.ints.push_back(parse_spec_int(
          parts[static_cast<std::size_t>(i) + 1], out.kind + " argument"));
    if (rule->has_real)
      out.reals.push_back(parse_spec_real(parts.back(), out.kind + " probability"));
  }

  // Range checks beyond "is a number": fail at parse time, not deep inside
  // a generator precondition.  Node counts are int32 NodeIds; reject
  // anything that would truncate or overflow instead of wrapping.
  constexpr std::int64_t kMaxNodes = 0x7fffffff;
  for (const std::int64_t v : out.ints)
    if (v > kMaxNodes)
      bad_spec("topology '" + spec + "': argument " + std::to_string(v) +
               " exceeds the supported node range");
  auto check_product = [&](std::int64_t a, std::int64_t b) {
    if (a > 0 && b > 0 && a > kMaxNodes / b)
      bad_spec("topology '" + spec + "': total node count overflows");
  };
  if (out.kind == "grid") check_product(out.ints[0], out.ints[1]);
  if (out.kind == "caterpillar") check_product(out.ints[0], out.ints[1] + 1);
  if (out.kind == "ring") check_product(out.ints[0], out.ints[1]);
  if (out.kind == "barbell" || out.kind == "lollipop")
    check_product(2, out.ints[0] + out.ints[1]);

  if (out.kind == "grid") {
    positive_arg(out, 0, "rows");
    positive_arg(out, 1, "cols");
  } else if (out.kind == "gnp") {
    positive_arg(out, 0, "n");
    if (out.reals[0] < 0.0 || out.reals[0] > 1.0)
      bad_spec("gnp probability must be in [0, 1]");
  } else if (out.kind == "hypercube") {
    if (out.ints[0] < 1 || out.ints[0] > 20)
      bad_spec("hypercube dimension must be in [1, 20]");
  } else if (out.kind == "cycle") {
    if (out.ints[0] < 3) bad_spec("cycle needs at least three nodes");
  } else if (out.kind == "complete") {
    if (out.ints[0] < 2) bad_spec("complete graph needs at least two nodes");
  } else if (out.kind == "ring") {
    if (out.ints[0] < 3) bad_spec("ring needs at least three cliques");
    if (out.ints[1] < 2) bad_spec("ring cliques need at least two members");
  } else if (out.kind == "barbell" || out.kind == "lollipop") {
    if (out.ints[0] < 2) bad_spec(out.kind + " clique needs at least two nodes");
    positive_arg(out, 1, out.kind == "barbell" ? "bridge" : "tail");
  } else if (out.kind == "caterpillar") {
    positive_arg(out, 0, "spine");
    if (out.ints[1] < 0) bad_spec("caterpillar legs must be non-negative");
  } else if (out.kind == "regular") {
    positive_arg(out, 0, "n");
    positive_arg(out, 1, "degree");
    if (out.ints[0] < out.ints[1] + 1) bad_spec("regular degree too large for n");
    if ((out.ints[0] * out.ints[1]) % 2 != 0)
      bad_spec("regular requires n * degree to be even");
  } else if (out.kind == "disk") {
    positive_arg(out, 0, "n");
    if (out.reals[0] <= 0.0)
      bad_spec("topology '" + spec + "': radius must be positive");
    if (out.reals[1] <= 0.0)
      bad_spec("topology '" + spec + "': power must be positive");
  } else if (out.kind == "uniform") {
    positive_arg(out, 0, "n");
    if (out.reals[0] <= 0.0)
      bad_spec("topology '" + spec + "': density must be positive");
  } else if (out.kind == "wct") {
    if (out.ints.size() == 1) {
      if (out.ints[0] < 16) bad_spec("wct node budget must be at least 16");
    } else {
      if (out.ints[0] < 2) bad_spec("wct sender count must be at least 2");
      positive_arg(out, 1, "class count");
      positive_arg(out, 2, "clusters per class");
      positive_arg(out, 3, "cluster size");
      check_product(out.ints[1] * out.ints[2], out.ints[3]);
      // The *total* node count (source + senders + cluster members) must
      // fit the NodeId range too, not just each factor.
      if (1 + out.ints[0] + out.ints[1] * out.ints[2] * out.ints[3] >
          kMaxNodes)
        bad_spec("topology '" + spec + "': total node count overflows");
    }
  } else if (!out.ints.empty()) {
    positive_arg(out, 0, "size");
  }
  return out;
}

bool TopologySpec::randomized() const {
  const KindRule* rule = find_rule(kind);
  return rule != nullptr && rule->randomized;
}

topology::WctParams TopologySpec::wct_params() const {
  NRN_EXPECTS(kind == "wct", "wct_params on a non-wct topology");
  if (ints.size() == 1)
    return topology::WctParams::from_node_budget(
        static_cast<std::int32_t>(ints.at(0)));
  topology::WctParams params;
  params.sender_count = static_cast<std::int32_t>(ints.at(0));
  params.class_count = static_cast<std::int32_t>(ints.at(1));
  params.clusters_per_class = static_cast<std::int32_t>(ints.at(2));
  params.cluster_size = static_cast<std::int32_t>(ints.at(3));
  return params;
}

graph::Graph TopologySpec::build(Rng& rng, graph::Geometry* geometry) const {
  using graph::NodeId;
  auto n = [&](std::size_t i) { return static_cast<NodeId>(ints.at(i)); };
  if (kind == "disk")
    return graph::make_unit_disk(n(0), reals.at(0), reals.at(1), rng,
                                 geometry);
  if (kind == "uniform")
    return graph::make_uniform_density(n(0), reals.at(0), rng, geometry);
  if (kind == "path") return graph::make_path(n(0));
  if (kind == "cycle") return graph::make_cycle(n(0));
  if (kind == "star") return graph::make_star(n(0));
  if (kind == "complete") return graph::make_complete(n(0));
  if (kind == "grid") return graph::make_grid(n(0), n(1));
  if (kind == "gnp") return graph::make_connected_gnp(n(0), reals.at(0), rng);
  if (kind == "tree") return graph::make_random_tree(n(0), rng);
  if (kind == "binary-tree") return graph::make_binary_tree(n(0));
  if (kind == "hypercube")
    return graph::make_hypercube(static_cast<std::int32_t>(ints.at(0)));
  if (kind == "caterpillar") return graph::make_caterpillar(n(0), n(1));
  if (kind == "ring") return graph::make_ring_of_cliques(n(0), n(1));
  if (kind == "barbell") return graph::make_barbell(n(0), n(1));
  if (kind == "lollipop") return graph::make_lollipop(n(0), n(1));
  if (kind == "regular")
    return graph::make_random_regular(n(0), static_cast<std::int32_t>(ints.at(1)),
                                      rng);
  if (kind == "link") return graph::make_single_link();
  if (kind == "wct") return topology::WctNetwork(wct_params(), rng).graph();
  bad_spec("unknown topology '" + kind + "'");
}

radio::FaultModel parse_fault_spec(const std::string& spec) {
  const auto parts = split(spec, ':');
  if (parts.empty() || parts[0].empty()) bad_spec("empty fault spec");
  const std::string& kind = parts[0];
  auto prob_at = [&](std::size_t i) {
    const double p = parse_spec_real(parts.at(i), kind + " probability");
    if (p < 0.0 || p >= 1.0)
      bad_spec("fault '" + spec + "': probability must be in [0, 1)");
    return p;
  };
  if (kind == "none") {
    if (parts.size() != 1) bad_spec("fault 'none' takes no arguments");
    return radio::FaultModel::faultless();
  }
  if (kind == "sender") {
    if (parts.size() != 2) bad_spec("fault 'sender' wants sender:p");
    return radio::FaultModel::sender(prob_at(1));
  }
  if (kind == "receiver") {
    if (parts.size() != 2) bad_spec("fault 'receiver' wants receiver:p");
    return radio::FaultModel::receiver(prob_at(1));
  }
  if (kind == "combined") {
    if (parts.size() != 3) bad_spec("fault 'combined' wants combined:ps:pr");
    return radio::FaultModel::combined(prob_at(1), prob_at(2));
  }
  bad_spec("unknown fault model '" + kind + "'");
}

radio::ChannelModel parse_channel_spec(const std::string& spec,
                                       const radio::FaultModel& fault) {
  const auto parts = split(spec, ':');
  if (parts.empty() || parts[0].empty()) bad_spec("empty channel spec");
  const std::string& kind = parts[0];
  if (kind == "none") {
    if (parts.size() != 1) bad_spec("channel 'none' takes no arguments");
    return radio::ChannelModel::edge_fault(fault);
  }
  if (kind == "sinr") {
    if (parts.size() != 4)
      bad_spec("channel 'sinr' wants sinr:alpha:noise:beta");
    const double alpha = parse_spec_real(parts[1], "sinr alpha");
    const double noise = parse_spec_real(parts[2], "sinr noise floor");
    const double beta = parse_spec_real(parts[3], "sinr beta");
    if (alpha <= 0.0)
      bad_spec("channel '" + spec + "': alpha must be positive");
    if (noise < 0.0)
      bad_spec("channel '" + spec + "': noise floor must be non-negative");
    if (beta <= 0.0)
      bad_spec("channel '" + spec + "': beta must be positive");
    return radio::ChannelModel::sinr_channel(alpha, noise, beta);
  }
  bad_spec("unknown channel model '" + kind + "'");
}

const std::vector<std::string>& topology_kinds() {
  static const std::vector<std::string> kinds = [] {
    std::vector<std::string> out;
    for (const auto& rule : kKindRules) out.emplace_back(rule.kind);
    return out;
  }();
  return kinds;
}

Scenario Scenario::parse(const std::string& topology_spec,
                         const std::string& fault_spec, graph::NodeId source,
                         std::int64_t k, std::uint64_t seed,
                         const std::string& channel_spec) {
  if (source < 0) bad_spec("source must be non-negative");
  if (k < 1) bad_spec("k must be positive");
  Scenario sc;
  sc.topology = TopologySpec::parse(topology_spec);
  sc.fault_text = fault_spec;
  sc.fault = parse_fault_spec(fault_spec);
  sc.channel_text = channel_spec.empty() ? "none" : channel_spec;
  sc.channel = parse_channel_spec(sc.channel_text, sc.fault);
  if (!sc.channel.is_edge_fault()) {
    // SINR replaces the edge-fault layer (it prices no fault coins) and
    // needs node coordinates to price gains: reject contradictions at
    // parse time instead of deep inside the engine.
    if (!sc.fault.is_faultless())
      bad_spec("channel '" + sc.channel_text + "': cannot combine with fault '" +
               fault_spec + "'");
    if (!sc.topology.geometric())
      bad_spec("channel '" + sc.channel_text +
               "': requires a geometric topology, got '" + topology_spec + "'");
  }
  sc.source = source;
  sc.k = k;
  sc.seed = seed;
  return sc;
}

graph::Graph Scenario::build_graph(graph::Geometry* geometry) const {
  // Randomized topologies draw from a stream derived only from the master
  // seed, so trial streams never perturb the graph (and vice versa).
  Rng topo_rng = topology_rng();
  return topology.build(topo_rng, geometry);
}

std::string Scenario::describe() const {
  std::string out = topology.text + " under " + to_string(channel);
  if (k > 1) out += ", k=" + std::to_string(k);
  out += ", seed=" + std::to_string(seed);
  return out;
}

}  // namespace nrn::sim

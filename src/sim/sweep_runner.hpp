// Sweep execution: cell batching, sharding, merging, and the result cache.
//
// The SweepRunner executes a SweepPlan's cells through the Driver, batching
// cells across threads (on top of the Driver's own per-trial threading).
// Results are deterministic: a cell's ExperimentReport depends only on its
// scenario, protocol, trial count, and tuning -- never on thread count,
// shard assignment, or cache state.
//
// Sharding: `--shard i/k` runs only the cells with index % k == i.  The
// partition is stable, so k processes produce disjoint shard reports whose
// merge is bit-identical to the single-process run (merge_sweep_reports and
// the shard-file round trip both preserve every integer field exactly; no
// floating-point state is serialized).
//
// Fleet mode: instead of a static partition, cooperating processes share
// one cache directory and claim cells dynamically -- probe the cache (skip
// finished cells), take a per-cell `<hash>.claim` marker with an exclusive
// create, and steal claims whose mtime exceeds a TTL (dead workers).
// Heterogeneous cells are thus work-stolen, a killed run is resumable by
// re-invoking it, and every surviving runner emits a complete report;
// overlapping fleet shards merge as long as duplicates are bit-identical,
// which deterministic cells guarantee.  kResume rebuilds a report purely
// from a warm cache without computing anything.  While a cell computes,
// its claim's mtime is refreshed by a heartbeat ticker, so TTL expiry only
// ever steals from dead workers -- never from a slow cell's live owner.
//
// Cell execution itself lives in CellExecutor, callable outside the
// blocking run() loop: the serve daemon (serve/scheduler.hpp) resolves
// cells from many clients' plans through the same probe/claim/compute/
// store path, which is why a daemon-computed report is bit-identical to a
// serial sweep of the same plan.
//
// Caching: with a cache directory set, each finished cell is stored under a
// content-addressed key (cell spec + derived seed + tuning).  Re-runs load
// completed cells instead of recomputing them.  Entries carry an FNV-1a
// checksum and their full key; a truncated, corrupted, or colliding entry
// fails verification and is silently recomputed -- the cache can make a
// sweep faster, never wrong.
//
// Formats are versioned ("experiment v6" / "nrn-sweep-shard v6" /
// "nrn-sweep-cache v6"; see docs/formats.md for the grammar).  v6 adds
// one optional `channel` record line for non-edge channel models
// (radio/channel_model.hpp); edge-fault records keep the v5 bytes apart
// from the version header itself.  v5 marked the engine's v4 batched
// coin tape (radio/network.hpp), which changed every seeded outcome.
// Records and cache entries from older versions fail the version literal
// and are recomputed rather than silently mixed with v6 results.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "sim/driver.hpp"
#include "sim/progress.hpp"
#include "sim/sweep.hpp"

namespace nrn::sim {

/// Exact text round trip of one ExperimentReport (integer fields only; the
/// scenario is re-parsed from its spec strings, which reproduces it
/// bit-identically).  parse_experiment_record throws SpecError on any
/// deviation from the format.
std::string experiment_record(const ExperimentReport& report);
ExperimentReport parse_experiment_record(const std::string& text);

/// On-disk cell cache, one file per key under `dir` (created if absent).
/// File names are the FNV-1a hash of the key; the key itself is stored and
/// verified inside the entry, so a hash collision reads as a miss.
class ResultCache {
 public:
  explicit ResultCache(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Path the entry for `key` lives at (exposed so tests can corrupt it).
  std::string entry_path(const std::string& key) const;

  /// The cached report for `key`, or nullopt on miss OR any verification
  /// failure (bad checksum, truncation, key mismatch, malformed record).
  std::optional<ExperimentReport> load(const std::string& key) const;

  /// Atomically (write + rename) stores `report` under `key`.  The temp
  /// file carries a pid + per-process-counter suffix, so cooperating
  /// processes (and threads) writing the same cell never interleave.
  void store(const std::string& key, const ExperimentReport& report) const;

  // Claim markers: the fleet mode's cooperative cell locks.  A claim is a
  // plain file (`<hash>.claim`) created with O_EXCL, so exactly one worker
  // across all cooperating processes wins a cell.  Claims are advisory --
  // correctness always comes from atomic stores plus verified loads; a
  // stolen-then-recomputed cell merely duplicates bit-identical work.

  /// Path of the claim marker for `key` (exposed for tests).
  std::string claim_path(const std::string& key) const;

  /// Atomically creates the claim marker for `key`; false when another
  /// worker already holds it.  Any other failure (unwritable or vanished
  /// directory) throws SpecError -- a fleet that cannot claim would
  /// otherwise poll forever in silence.
  bool try_claim(const std::string& key) const;

  /// Steals a claim older than `ttl_seconds` (by mtime): the marker is
  /// renamed to a unique name first, so exactly one stealer wins even when
  /// several observe the same stale claim.  Returns true for the winner,
  /// who must then try_claim() the now-free slot.
  bool steal_stale_claim(const std::string& key, double ttl_seconds) const;

  /// Bumps the claim marker's mtime to now -- the fleet heartbeat.  A
  /// worker mid-compute refreshes its claim so a long cell is never stolen
  /// by TTL expiry while its owner is alive.  Errors are ignored: a
  /// vanished marker means the claim was stolen, and the recompute that
  /// follows is benign (duplicates are bit-identical).
  void refresh_claim(const std::string& key) const;

  /// Removes the claim marker (after the entry is stored).
  void release_claim(const std::string& key) const;

 private:
  std::string dir_;
};

/// The cache key for a cell: the cell's own key plus the tuning knobs
/// (tuning changes protocol behavior, so it must invalidate entries).
std::string sweep_cache_key(const SweepCell& cell, const Tuning& tuning);

/// RAII claim heartbeat: a background ticker that refresh_claim()s `key`
/// every `interval_seconds` until destroyed.  Held across a cell's compute
/// so `--claim-ttl` expiry only ever steals from dead workers, never from
/// a slow cell's live owner.
class ClaimHeartbeat {
 public:
  ClaimHeartbeat(const ResultCache& cache, std::string key,
                 double interval_seconds);
  ~ClaimHeartbeat();

  ClaimHeartbeat(const ClaimHeartbeat&) = delete;
  ClaimHeartbeat& operator=(const ClaimHeartbeat&) = delete;

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  // nrn-lint: allow(raw-thread): see the constructor -- the heartbeat must
  // run while every TaskPool slot is busy computing the cell it guards.
  std::thread ticker_;
};

/// Executes individual sweep cells outside the blocking SweepRunner::run
/// loop: probe the cache, optionally take a cooperative claim (with a
/// heartbeat while computing), compute through the Driver, store.  This is
/// the one cell-resolution implementation -- the static and fleet paths of
/// SweepRunner and the serve daemon's scheduler all run cells through it,
/// so a daemon-computed cell is bit-identical to a serial one by
/// construction.  Thread-safe: resolve() keeps all state on the stack.
class CellExecutor {
 public:
  struct Options {
    int trial_threads = 1;  ///< Driver threads inside the cell
    Tuning tuning;
    bool use_claims = false;  ///< claim markers around computes (fleet/serve)
    double claim_ttl_seconds = 900.0;
    /// Claim mtime refresh period while computing; 0 derives ttl/4
    /// (clamped to >= 50ms), < 0 disables the heartbeat.  No heartbeat
    /// runs when the ttl itself is <= 0 (claims are then already fair
    /// game, e.g. `--claim-ttl=0` resumes over a dead fleet).
    double heartbeat_seconds = 0.0;
  };

  enum class Resolution {
    kCached,    ///< loaded from the cache (possibly stored by a peer)
    kComputed,  ///< computed here under a fresh claim (or no claims)
    kStolen,    ///< computed here after stealing a stale claim
    kBusy,      ///< a live peer holds the claim; retry later
  };

  struct Result {
    Resolution resolution = Resolution::kCached;
    ExperimentReport experiment;  ///< empty when kBusy
  };

  /// `cache` may be null (pure compute); claims require a cache.
  CellExecutor(const ProtocolRegistry& registry, const ResultCache* cache,
               Options options);

  /// The cell's cache key under this executor's tuning.
  std::string key(const SweepCell& cell) const;

  /// Resolves one cell.  kBusy is only possible with use_claims; every
  /// exception path releases the claim (no leaked markers).  Throws what
  /// the Driver throws.
  Result resolve(const SweepCell& cell) const;

 private:
  const ProtocolRegistry* registry_;
  const ResultCache* cache_;
  Options options_;
  Driver driver_;
  double heartbeat_interval_;  ///< resolved; <= 0 disables
};

/// How a runner decides which cells to execute.
enum class SweepAssignment {
  kStatic,  ///< cell.index % shard_count == shard_index (the default)
  kFleet,   ///< cache-probing + claim files: dynamic work stealing
  kResume,  ///< load every cell from the cache; compute nothing
};

struct SweepOptions {
  int shard_index = 0;  ///< 0-based, in [0, shard_count)
  int shard_count = 1;
  int cell_threads = 1;   ///< concurrent cells; <= 1 runs cells inline
  int trial_threads = 1;  ///< Driver threads inside each cell
  std::string cache_dir;  ///< empty disables the result cache
  Tuning tuning;          ///< forwarded to every cell's Driver

  /// kFleet/kResume require cache_dir and shard_count == 1: cooperating
  /// fleet processes share the cache directory instead of a static
  /// partition, and every runner's report covers the whole plan.
  SweepAssignment assignment = SweepAssignment::kStatic;
  double claim_ttl_seconds = 900.0;  ///< fleet: steal claims older than this
  int fleet_poll_ms = 20;  ///< fleet: sleep between probe passes when every
                           ///< remaining cell is claimed by a live peer
  double heartbeat_seconds = 0.0;  ///< fleet claim refresh; 0 = ttl/4
                                   ///< (CellExecutor::Options semantics)

  /// Live progress sink (sim/progress.hpp); null disables.  Invocations
  /// are serialized by the runner but arrive on worker threads.
  ProgressFn on_progress;
};

/// One executed cell.  `from_cache` records provenance for operators; it is
/// excluded from equality and serialization so warm and cold runs compare
/// equal.
struct SweepCellReport {
  int cell_index = 0;
  ExperimentReport experiment;
  bool from_cache = false;

  friend bool operator==(const SweepCellReport& a, const SweepCellReport& b) {
    return a.cell_index == b.cell_index && a.experiment == b.experiment;
  }
};

/// Fleet-mode progress counters.  Like `from_cache` these are provenance,
/// not payload: equality and the shard serialization exclude them, so a
/// fleet run's report compares equal to the serial run's.
struct FleetStats {
  bool active = false;  ///< ran under kFleet or kResume
  int claimed = 0;      ///< cells this worker claimed fresh and computed
  int stolen = 0;       ///< cells recomputed after stealing a stale claim
  int skipped = 0;      ///< cells resolved from the shared cache
};

/// The outcome of one sweep run (possibly one shard of a plan).  `cells`
/// is sorted by cell_index and covers exactly this shard's slice of the
/// plan's `total_cells`.
struct SweepReport {
  std::string plan_text;
  std::uint64_t master_seed = 1;
  int total_cells = 0;
  std::vector<SweepCellReport> cells;
  FleetStats fleet;

  /// True when every cell of the plan is present (serial run or merge).
  bool complete() const {
    return static_cast<int>(cells.size()) == total_cells;
  }
  int cache_hits() const;
  bool all_completed() const;  ///< every trial of every cell completed

  friend bool operator==(const SweepReport& a, const SweepReport& b) {
    return a.plan_text == b.plan_text && a.master_seed == b.master_seed &&
           a.total_cells == b.total_cells && a.cells == b.cells;
  }
};

/// Exact, checksummed serialization of a SweepReport, used for shard
/// hand-off files (and therefore for the merge path).  read_shard_file
/// throws SpecError on any damage.
void write_shard_file(std::ostream& os, const SweepReport& report);
SweepReport read_shard_file(std::istream& is);

/// Merges shard reports of the same plan into the full report.  Static
/// shards are disjoint; fleet shards overlap, so a cell appearing in
/// several shards is legal iff every copy is bit-identical (deterministic
/// cells recomputed by different workers always are).  Throws SpecError
/// when plans disagree, duplicate cells differ, or cells are missing.
/// The result is bit-identical to the serial run.
SweepReport merge_sweep_reports(const std::vector<SweepReport>& shards);

class SweepRunner {
 public:
  explicit SweepRunner(
      const ProtocolRegistry& registry = ProtocolRegistry::global())
      : registry_(&registry) {}

  /// Runs this shard's cells of `plan` (all cells under kFleet/kResume).
  /// Throws SpecError for unknown protocols (before running anything), for
  /// a kResume cache missing cells, and propagates protocol errors.
  SweepReport run(const SweepPlan& plan,
                  const SweepOptions& options = {}) const;

 private:
  SweepReport run_fleet(const SweepPlan& plan,
                        const SweepOptions& options) const;

  const ProtocolRegistry* registry_;
};

}  // namespace nrn::sim

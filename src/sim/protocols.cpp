// Built-in protocol adapters: the library's broadcast algorithms wrapped
// behind the uniform BroadcastProtocol interface and registered by name,
// together with each protocol's capabilities and its theory bound (the
// paper's asymptotic round count, Theta-constants dropped, evaluated on the
// concrete scenario so reports can emit gap-vs-theory columns).  This file
// is the single place where protocol names meet concrete types.
#include <cmath>

#include "core/bipartite_pipeline.hpp"
#include "core/decay.hpp"
#include "core/erasure_broadcast.hpp"
#include "core/fastbc.hpp"
#include "core/greedy_router.hpp"
#include "core/multi_message.hpp"
#include "core/robust_fastbc.hpp"
#include "sim/registry.hpp"
#include "sim/theory_bounds.hpp"

namespace nrn::sim {

namespace {

using bounds::depth;
using bounds::kd;
using bounds::log2n;
using bounds::loglog2n;
using bounds::loss_factor;

// ----------------------------------------------------------- the adapters

class DecayProtocol final : public BroadcastProtocol {
 public:
  explicit DecayProtocol(const ProtocolContext& ctx)
      : source_(ctx.scenario.source),
        node_count_(ctx.graph.node_count()),
        effective_loss_(ctx.scenario.fault.effective_loss()),
        algo_(core::DecayParams{ctx.tuning.decay_phase,
                                ctx.tuning.max_rounds}) {}

  const std::string& name() const override {
    static const std::string n = "decay";
    return n;
  }

  Outcome run(radio::RadioNetwork& net, Rng& rng,
              radio::TraceRecorder* trace) const override {
    return Outcome::from(algo_.run(net, source_, rng, trace));
  }

  std::unique_ptr<core::RoundStepper> make_stepper(
      radio::TraceRecorder* trace) const override {
    return algo_.make_stepper(node_count_, source_, effective_loss_, trace);
  }

 private:
  graph::NodeId source_;
  std::int32_t node_count_;
  double effective_loss_;
  core::Decay algo_;
};

class FastbcProtocol final : public BroadcastProtocol {
 public:
  explicit FastbcProtocol(const ProtocolContext& ctx)
      : effective_loss_(ctx.scenario.fault.effective_loss()),
        algo_(ctx.graph, ctx.scenario.source,
              core::FastbcParams{ctx.tuning.rank_modulus,
                                 ctx.tuning.decay_phase,
                                 ctx.tuning.max_rounds}) {}

  const std::string& name() const override {
    static const std::string n = "fastbc";
    return n;
  }

  Outcome run(radio::RadioNetwork& net, Rng& rng,
              radio::TraceRecorder* trace) const override {
    return Outcome::from(algo_.run(net, rng, trace));
  }

  std::unique_ptr<core::RoundStepper> make_stepper(
      radio::TraceRecorder* trace) const override {
    return algo_.make_stepper(effective_loss_, trace);
  }

 private:
  double effective_loss_;
  core::Fastbc algo_;
};

core::RobustFastbcParams robust_params(const ProtocolContext& ctx) {
  core::RobustFastbcParams params;
  params.block_size = ctx.tuning.block_size;
  params.rank_modulus = ctx.tuning.rank_modulus;
  params.decay_phase = ctx.tuning.decay_phase;
  params.max_rounds = ctx.tuning.max_rounds;
  // The paper's "sufficiently large constant c" depends on the loss rate;
  // size the window for the scenario's fault model unless overridden.
  params.window_multiplier =
      ctx.tuning.window_multiplier != 0
          ? ctx.tuning.window_multiplier
          : core::RobustFastbc::recommended_window_multiplier(
                ctx.scenario.fault.effective_loss());
  return params;
}

class RobustFastbcProtocol final : public BroadcastProtocol {
 public:
  explicit RobustFastbcProtocol(const ProtocolContext& ctx)
      : effective_loss_(ctx.scenario.fault.effective_loss()),
        algo_(ctx.graph, ctx.scenario.source, robust_params(ctx)) {}

  const std::string& name() const override {
    static const std::string n = "robust";
    return n;
  }

  Outcome run(radio::RadioNetwork& net, Rng& rng,
              radio::TraceRecorder* trace) const override {
    return Outcome::from(algo_.run(net, rng, trace));
  }

  std::unique_ptr<core::RoundStepper> make_stepper(
      radio::TraceRecorder* trace) const override {
    return algo_.make_stepper(effective_loss_, trace);
  }

 private:
  double effective_loss_;
  core::RobustFastbc algo_;
};

core::MultiMessageParams rlnc_params(const ProtocolContext& ctx,
                                     core::MultiPattern pattern,
                                     std::size_t block_len) {
  core::MultiMessageParams params;
  params.k = static_cast<std::size_t>(ctx.scenario.k);
  params.block_len = block_len;
  params.pattern = pattern;
  params.decay_phase = ctx.tuning.decay_phase;
  params.block_size = ctx.tuning.block_size;
  params.window_multiplier = ctx.tuning.window_multiplier;
  params.max_rounds = ctx.tuning.max_rounds;
  return params;
}

class RlncProtocol final : public BroadcastProtocol {
 public:
  RlncProtocol(const ProtocolContext& ctx, core::MultiPattern pattern,
               std::string name)
      : name_(std::move(name)),
        algo_(ctx.graph, ctx.scenario.source, rlnc_params(ctx, pattern, 0)) {}

  const std::string& name() const override { return name_; }

  Outcome run(radio::RadioNetwork& net, Rng& rng,
              radio::TraceRecorder* /*trace*/) const override {
    return Outcome::from(algo_.run(net, rng));
  }

 private:
  std::string name_;
  core::RlncBroadcast algo_;
};

/// Payload length for verified runs: tuning override or 16 bytes/message.
std::size_t verified_block_len(const ProtocolContext& ctx) {
  return ctx.tuning.payload_len > 0
             ? static_cast<std::size_t>(ctx.tuning.payload_len)
             : 16;
}

/// Deterministic per-trial payloads, drawn from the trial's algo stream so
/// a trial is reproducible from its recorded seeds alone.
std::vector<std::vector<std::uint8_t>> draw_payloads(std::size_t k,
                                                     std::size_t block_len,
                                                     Rng& rng) {
  std::vector<std::vector<std::uint8_t>> messages(
      k, std::vector<std::uint8_t>(block_len));
  for (auto& m : messages)
    for (auto& byte : m)
      byte = static_cast<std::uint8_t>(rng.next_below(256));
  return messages;
}

/// The kVerifiedPayload run shape shared by the RLNC and erasure variants:
/// draw payloads, run-and-verify, report the bytes certified.
template <typename RunFn>
Outcome verified_outcome(std::size_t k, std::size_t block_len,
                         std::int64_t nodes, Rng& rng, RunFn&& run_fn) {
  const auto messages = draw_payloads(k, block_len, rng);
  Outcome out = Outcome::from(run_fn(messages));
  const std::int64_t bytes =
      out.completed ? nodes * static_cast<std::int64_t>(k * block_len) : 0;
  out.set("verified_bytes", bytes);
  return out;
}

class VerifiedRlncProtocol final : public BroadcastProtocol {
 public:
  VerifiedRlncProtocol(const ProtocolContext& ctx, core::MultiPattern pattern,
                       std::string name)
      : name_(std::move(name)),
        nodes_(ctx.graph.node_count()),
        k_(static_cast<std::size_t>(ctx.scenario.k)),
        block_len_(verified_block_len(ctx)),
        algo_(ctx.graph, ctx.scenario.source,
              rlnc_params(ctx, pattern, verified_block_len(ctx))) {}

  const std::string& name() const override { return name_; }

  Outcome run(radio::RadioNetwork& net, Rng& rng,
              radio::TraceRecorder* /*trace*/) const override {
    return verified_outcome(k_, block_len_, nodes_, rng,
                            [&](const auto& messages) {
                              return algo_.run_and_verify(net, rng, messages);
                            });
  }

 private:
  std::string name_;
  std::int64_t nodes_;
  std::size_t k_;
  std::size_t block_len_;
  core::RlncBroadcast algo_;
};

class ErasureProtocol final : public BroadcastProtocol {
 public:
  explicit ErasureProtocol(const ProtocolContext& ctx)
      : nodes_(ctx.graph.node_count()),
        k_(static_cast<std::size_t>(ctx.scenario.k)),
        block_len_(verified_block_len(ctx)),
        algo_(ctx.graph, ctx.scenario.source, erasure_params(ctx)) {}

  const std::string& name() const override {
    static const std::string n = "erasure-decay";
    return n;
  }

  Outcome run(radio::RadioNetwork& net, Rng& rng,
              radio::TraceRecorder* /*trace*/) const override {
    return verified_outcome(k_, block_len_, nodes_, rng,
                            [&](const auto& messages) {
                              return algo_.run_and_verify(net, rng, messages);
                            });
  }

 private:
  static core::ErasureParams erasure_params(const ProtocolContext& ctx) {
    // The GF(256) domain caps k + slack at 255; surface that as a spec
    // error (the scenario asked for more than the protocol can encode),
    // not a contract violation deep inside a trial.
    core::ErasureParams params;
    params.k = static_cast<std::size_t>(ctx.scenario.k);
    params.block_len = verified_block_len(ctx);
    params.decay_phase = ctx.tuning.decay_phase;
    params.max_rounds = ctx.tuning.max_rounds;
    if (core::ErasureBroadcast::default_packet_count(
            ctx.graph.node_count(), ctx.scenario.k) > 255)
      throw SpecError("erasure-decay: k + Chernoff slack exceeds the "
                      "GF(256) packet domain of 255 coded packets");
    return params;
  }

  std::int64_t nodes_;
  std::size_t k_;
  std::size_t block_len_;
  core::ErasureBroadcast algo_;
};

class PipelineProtocol final : public BroadcastProtocol {
 public:
  explicit PipelineProtocol(const ProtocolContext& ctx)
      : source_(ctx.scenario.source) {
    params_.k = ctx.scenario.k;
    params_.batch = ctx.tuning.batch;
    params_.decay_phase = ctx.tuning.decay_phase;
  }

  const std::string& name() const override {
    static const std::string n = "pipeline";
    return n;
  }

  Outcome run(radio::RadioNetwork& net, Rng& rng,
              radio::TraceRecorder* /*trace*/) const override {
    return Outcome::from(
        core::run_layered_pipeline_routing(net, source_, params_, rng));
  }

 private:
  graph::NodeId source_;
  core::PipelineParams params_;
};

class GreedyRouterProtocol final : public BroadcastProtocol {
 public:
  explicit GreedyRouterProtocol(const ProtocolContext& ctx)
      : source_(ctx.scenario.source) {
    params_.k = ctx.scenario.k;
    params_.max_rounds = ctx.tuning.max_rounds;
  }

  const std::string& name() const override {
    static const std::string n = "greedy";
    return n;
  }

  Outcome run(radio::RadioNetwork& net, Rng& /*rng*/,
              radio::TraceRecorder* /*trace*/) const override {
    // The greedy router is deterministic given the network's fault tape.
    return Outcome::from(
        core::run_greedy_adaptive_routing(net, source_, params_));
  }

 private:
  graph::NodeId source_;
  core::GreedyRouterParams params_;
};

// ------------------------------------------------------------- the bounds

double decay_bound(const TheoryContext& ctx) {
  // Lemma 9: O((D + log n) log n), inflated by the loss rate.
  return (depth(ctx) + log2n(ctx)) * log2n(ctx) * loss_factor(ctx);
}

double fastbc_bound(const TheoryContext& ctx) {
  // Lemma 8 (faultless): D + O(log^2 n).
  return depth(ctx) + log2n(ctx) * log2n(ctx);
}

double robust_bound(const TheoryContext& ctx) {
  // Theorem 11: O(D + log^2 n) under constant noise.
  return (depth(ctx) + log2n(ctx) * log2n(ctx)) * loss_factor(ctx);
}

double rlnc_decay_bound(const TheoryContext& ctx) {
  // Lemma 12: O(D log n + k log n + log^2 n).
  return ((depth(ctx) + kd(ctx)) * log2n(ctx) + log2n(ctx) * log2n(ctx)) *
         loss_factor(ctx);
}

double rlnc_robust_bound(const TheoryContext& ctx) {
  // Lemma 13: O(D + (k + log n) log n loglog n).
  return (depth(ctx) +
          (kd(ctx) + log2n(ctx)) * log2n(ctx) * loglog2n(ctx)) *
         loss_factor(ctx);
}

double routing_pipeline_bound(const TheoryContext& ctx) {
  // Lemmas 20-22: adaptive routing pays Theta(log^2 n) per message on the
  // hard topologies.
  return (depth(ctx) + kd(ctx) * log2n(ctx) * log2n(ctx)) * loss_factor(ctx);
}

}  // namespace

void register_builtin_protocols(ProtocolRegistry& registry) {
  registry.add("decay", "Decay (Lemma 9): topology-oblivious, noise-robust",
               kTraced | kSinrCapable,
               [](const ProtocolContext& ctx) {
                 return std::make_unique<DecayProtocol>(ctx);
               },
               decay_bound);
  registry.add("fastbc",
               "FASTBC (Lemma 8): known-topology, D + O(log^2 n), fragile "
               "under noise",
               kTraced | kSinrCapable,
               [](const ProtocolContext& ctx) {
                 return std::make_unique<FastbcProtocol>(ctx);
               },
               fastbc_bound);
  registry.add("robust",
               "Robust FASTBC (Theorem 11): noise-robust diameter-linear",
               kTraced | kSinrCapable,
               [](const ProtocolContext& ctx) {
                 return std::make_unique<RobustFastbcProtocol>(ctx);
               },
               robust_bound);
  registry.add("rlnc-decay",
               "RLNC over the Decay pattern (Lemma 12): k-message coding",
               kMultiMessage | kSinrCapable,
               [](const ProtocolContext& ctx) {
                 return std::make_unique<RlncProtocol>(
                     ctx, core::MultiPattern::kDecay, "rlnc-decay");
               },
               rlnc_decay_bound);
  registry.add("rlnc-robust",
               "RLNC over the Robust FASTBC pattern (Lemma 13)",
               kMultiMessage | kSinrCapable,
               [](const ProtocolContext& ctx) {
                 return std::make_unique<RlncProtocol>(
                     ctx, core::MultiPattern::kRobustFastbc, "rlnc-robust");
               },
               rlnc_robust_bound);
  registry.add("rlnc-decay-verified",
               "Lemma 12 composition carrying real payloads; every node's "
               "decode is checked against the source bytes",
               kMultiMessage | kVerifiedPayload | kSinrCapable,
               [](const ProtocolContext& ctx) {
                 return std::make_unique<VerifiedRlncProtocol>(
                     ctx, core::MultiPattern::kDecay, "rlnc-decay-verified");
               },
               rlnc_decay_bound);
  registry.add("rlnc-robust-verified",
               "Lemma 13 composition carrying real payloads; every node's "
               "decode is checked against the source bytes",
               kMultiMessage | kVerifiedPayload | kSinrCapable,
               [](const ProtocolContext& ctx) {
                 return std::make_unique<VerifiedRlncProtocol>(
                     ctx, core::MultiPattern::kRobustFastbc,
                     "rlnc-robust-verified");
               },
               rlnc_robust_bound);
  registry.add("erasure-decay",
               "Source-side RS/GF(256) erasure coding over the Decay "
               "pattern (arXiv:1805.04165), payload-verified",
               kMultiMessage | kVerifiedPayload | kSinrCapable,
               [](const ProtocolContext& ctx) {
                 return std::make_unique<ErasureProtocol>(ctx);
               },
               rlnc_decay_bound);
  registry.add("pipeline",
               "Layered adaptive-routing pipeline (Lemmas 20-21)",
               kMultiMessage | kSinrCapable,
               [](const ProtocolContext& ctx) {
                 return std::make_unique<PipelineProtocol>(ctx);
               },
               routing_pipeline_bound);
  registry.add("greedy",
               "Greedy centralized adaptive router (Definition 14)",
               kMultiMessage | kSinrCapable,
               [](const ProtocolContext& ctx) {
                 return std::make_unique<GreedyRouterProtocol>(ctx);
               },
               routing_pipeline_bound);
}

}  // namespace nrn::sim

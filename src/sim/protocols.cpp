// Built-in protocol adapters: the library's broadcast algorithms wrapped
// behind the uniform BroadcastProtocol interface and registered by name.
// This file is the single place where protocol names meet concrete types.
#include "core/bipartite_pipeline.hpp"
#include "core/decay.hpp"
#include "core/fastbc.hpp"
#include "core/greedy_router.hpp"
#include "core/multi_message.hpp"
#include "core/robust_fastbc.hpp"
#include "sim/registry.hpp"

namespace nrn::sim {

namespace {

class DecayProtocol final : public BroadcastProtocol {
 public:
  explicit DecayProtocol(const ProtocolContext& ctx)
      : source_(ctx.scenario.source),
        algo_(core::DecayParams{ctx.tuning.decay_phase,
                                ctx.tuning.max_rounds}) {}

  const std::string& name() const override {
    static const std::string n = "decay";
    return n;
  }

  RunReport run(radio::RadioNetwork& net, Rng& rng,
                radio::TraceRecorder* trace) const override {
    return RunReport::from(algo_.run(net, source_, rng, trace));
  }

 private:
  graph::NodeId source_;
  core::Decay algo_;
};

class FastbcProtocol final : public BroadcastProtocol {
 public:
  explicit FastbcProtocol(const ProtocolContext& ctx)
      : algo_(ctx.graph, ctx.scenario.source,
              core::FastbcParams{ctx.tuning.rank_modulus,
                                 ctx.tuning.decay_phase,
                                 ctx.tuning.max_rounds}) {}

  const std::string& name() const override {
    static const std::string n = "fastbc";
    return n;
  }

  RunReport run(radio::RadioNetwork& net, Rng& rng,
                radio::TraceRecorder* trace) const override {
    return RunReport::from(algo_.run(net, rng, trace));
  }

 private:
  core::Fastbc algo_;
};

core::RobustFastbcParams robust_params(const ProtocolContext& ctx) {
  core::RobustFastbcParams params;
  params.block_size = ctx.tuning.block_size;
  params.rank_modulus = ctx.tuning.rank_modulus;
  params.decay_phase = ctx.tuning.decay_phase;
  params.max_rounds = ctx.tuning.max_rounds;
  // The paper's "sufficiently large constant c" depends on the loss rate;
  // size the window for the scenario's fault model unless overridden.
  params.window_multiplier =
      ctx.tuning.window_multiplier != 0
          ? ctx.tuning.window_multiplier
          : core::RobustFastbc::recommended_window_multiplier(
                ctx.scenario.fault.effective_loss());
  return params;
}

class RobustFastbcProtocol final : public BroadcastProtocol {
 public:
  explicit RobustFastbcProtocol(const ProtocolContext& ctx)
      : algo_(ctx.graph, ctx.scenario.source, robust_params(ctx)) {}

  const std::string& name() const override {
    static const std::string n = "robust";
    return n;
  }

  RunReport run(radio::RadioNetwork& net, Rng& rng,
                radio::TraceRecorder* trace) const override {
    return RunReport::from(algo_.run(net, rng, trace));
  }

 private:
  core::RobustFastbc algo_;
};

class RlncProtocol final : public BroadcastProtocol {
 public:
  RlncProtocol(const ProtocolContext& ctx, core::MultiPattern pattern,
               std::string name)
      : name_(std::move(name)),
        algo_(ctx.graph, ctx.scenario.source, rlnc_params(ctx, pattern)) {}

  const std::string& name() const override { return name_; }

  RunReport run(radio::RadioNetwork& net, Rng& rng,
                radio::TraceRecorder* /*trace*/) const override {
    return RunReport::from(algo_.run(net, rng));
  }

 private:
  static core::MultiMessageParams rlnc_params(const ProtocolContext& ctx,
                                              core::MultiPattern pattern) {
    core::MultiMessageParams params;
    params.k = static_cast<std::size_t>(ctx.scenario.k);
    params.pattern = pattern;
    params.decay_phase = ctx.tuning.decay_phase;
    params.block_size = ctx.tuning.block_size;
    params.window_multiplier = ctx.tuning.window_multiplier;
    params.max_rounds = ctx.tuning.max_rounds;
    return params;
  }

  std::string name_;
  core::RlncBroadcast algo_;
};

class PipelineProtocol final : public BroadcastProtocol {
 public:
  explicit PipelineProtocol(const ProtocolContext& ctx)
      : source_(ctx.scenario.source) {
    params_.k = ctx.scenario.k;
    params_.batch = ctx.tuning.batch;
    params_.decay_phase = ctx.tuning.decay_phase;
  }

  const std::string& name() const override {
    static const std::string n = "pipeline";
    return n;
  }

  RunReport run(radio::RadioNetwork& net, Rng& rng,
                radio::TraceRecorder* /*trace*/) const override {
    return RunReport::from(
        core::run_layered_pipeline_routing(net, source_, params_, rng));
  }

 private:
  graph::NodeId source_;
  core::PipelineParams params_;
};

class GreedyRouterProtocol final : public BroadcastProtocol {
 public:
  explicit GreedyRouterProtocol(const ProtocolContext& ctx)
      : source_(ctx.scenario.source) {
    params_.k = ctx.scenario.k;
    params_.max_rounds = ctx.tuning.max_rounds;
  }

  const std::string& name() const override {
    static const std::string n = "greedy";
    return n;
  }

  RunReport run(radio::RadioNetwork& net, Rng& /*rng*/,
                radio::TraceRecorder* /*trace*/) const override {
    // The greedy router is deterministic given the network's fault tape.
    return RunReport::from(
        core::run_greedy_adaptive_routing(net, source_, params_));
  }

 private:
  graph::NodeId source_;
  core::GreedyRouterParams params_;
};

}  // namespace

void register_builtin_protocols(ProtocolRegistry& registry) {
  registry.add("decay", "Decay (Lemma 9): topology-oblivious, noise-robust",
               [](const ProtocolContext& ctx) {
                 return std::make_unique<DecayProtocol>(ctx);
               });
  registry.add("fastbc",
               "FASTBC (Lemma 8): known-topology, D + O(log^2 n), fragile "
               "under noise",
               [](const ProtocolContext& ctx) {
                 return std::make_unique<FastbcProtocol>(ctx);
               });
  registry.add("robust",
               "Robust FASTBC (Theorem 11): noise-robust diameter-linear",
               [](const ProtocolContext& ctx) {
                 return std::make_unique<RobustFastbcProtocol>(ctx);
               });
  registry.add("rlnc-decay",
               "RLNC over the Decay pattern (Lemma 12): k-message coding",
               [](const ProtocolContext& ctx) {
                 return std::make_unique<RlncProtocol>(
                     ctx, core::MultiPattern::kDecay, "rlnc-decay");
               });
  registry.add("rlnc-robust",
               "RLNC over the Robust FASTBC pattern (Lemma 13)",
               [](const ProtocolContext& ctx) {
                 return std::make_unique<RlncProtocol>(
                     ctx, core::MultiPattern::kRobustFastbc, "rlnc-robust");
               });
  registry.add("pipeline",
               "Layered adaptive-routing pipeline (Lemmas 20-21)",
               [](const ProtocolContext& ctx) {
                 return std::make_unique<PipelineProtocol>(ctx);
               });
  registry.add("greedy",
               "Greedy centralized adaptive router (Definition 14)",
               [](const ProtocolContext& ctx) {
                 return std::make_unique<GreedyRouterProtocol>(ctx);
               });
}

}  // namespace nrn::sim

// Name -> factory registry of broadcast protocols.
//
// The registry is how every caller -- nrn_sim, the benches, the examples,
// the tests -- selects a protocol at runtime: no per-algorithm dispatch
// switches exist outside this file's implementation.  The global() instance
// comes pre-loaded with the library's built-in protocols; custom protocols
// (experiments, ablation variants) can be added to any instance.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/protocol.hpp"
#include "sim/scenario.hpp"

namespace nrn::sim {

/// Everything a protocol factory may consult.  The graph reference must
/// outlive the constructed protocol (the Driver owns it for the duration
/// of an experiment).
struct ProtocolContext {
  const graph::Graph& graph;
  const Scenario& scenario;
  Tuning tuning;
};

class ProtocolRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<BroadcastProtocol>(const ProtocolContext&)>;

  /// Registers (or replaces) a protocol under `name`.
  void add(const std::string& name, const std::string& description,
           Factory factory);

  bool contains(const std::string& name) const;

  /// Builds the named protocol for the given context; throws SpecError on
  /// an unknown name (listing the registered ones).
  std::unique_ptr<BroadcastProtocol> create(const std::string& name,
                                            const ProtocolContext& ctx) const;

  /// Registered protocol names, sorted.
  std::vector<std::string> names() const;

  /// One-line description of a registered protocol.
  const std::string& description(const std::string& name) const;

  /// The process-wide registry, pre-loaded with the built-in protocols:
  /// decay, fastbc, robust, rlnc-decay, rlnc-robust, pipeline, greedy.
  static ProtocolRegistry& global();

 private:
  struct Entry {
    std::string description;
    Factory factory;
  };
  std::map<std::string, Entry> entries_;
};

/// Registers the built-in protocols into `registry` (used by global();
/// exposed so tests can build isolated registries).
void register_builtin_protocols(ProtocolRegistry& registry);

/// Registers the schedule-level protocols: the Lemma 25/26 transforms
/// (star/path base schedules) and the Appendix A single-link schedules.
/// These are topology-constrained -- their factories throw SpecError on a
/// scenario they cannot schedule -- so they live outside global() and are
/// added explicitly by the sweep CLI, the benches, and the tests.
void register_schedule_protocols(ProtocolRegistry& registry);

/// The process-wide registry with the builtin AND schedule-level
/// protocols: the one assembly the CLI, the sweep benches, and the sweep
/// tests all run against.
const ProtocolRegistry& extended_registry();

}  // namespace nrn::sim

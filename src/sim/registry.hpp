// Name -> factory registry of broadcast protocols.
//
// The registry is how every caller -- nrn_sim, the benches, the examples,
// the tests -- selects a protocol at runtime: no per-algorithm dispatch
// switches exist outside this file's implementation.  The global() instance
// comes pre-loaded with the library's built-in protocols; custom protocols
// (experiments, ablation variants) can be added to any instance.
//
// v2 registers three things per protocol besides the factory:
//   * a CapabilitySet (multi-message, verified-payload, schedule-gap,
//     traced) that drivers and sweeps interrogate instead of special-casing
//     protocol names;
//   * an optional TheoryBound: the protocol's asymptotic round bound from
//     the paper, evaluated on the concrete scenario so reports can emit
//     gap-vs-theory columns (measured rounds / theoretical bound);
//   * a one-line description.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/protocol.hpp"
#include "sim/scenario.hpp"

namespace nrn::sim {

/// Everything a protocol factory may consult.  The graph reference must
/// outlive the constructed protocol (the Driver owns it for the duration
/// of an experiment).
struct ProtocolContext {
  const graph::Graph& graph;
  const Scenario& scenario;
  Tuning tuning;
};

/// What a theory-bound formula may consult: the scenario (k, fault model,
/// topology arguments) plus the materialized graph's dimensions.  `depth`
/// is the BFS eccentricity of the source -- the D of every bound in the
/// paper.
struct TheoryContext {
  const Scenario& scenario;
  std::int64_t nodes = 0;
  std::int64_t edges = 0;
  std::int64_t depth = 0;
};

/// The protocol's theoretical round bound for a concrete scenario, with
/// Theta-constants dropped (so measured/bound ratios are O(1) and their
/// growth exposes a wrong exponent, not a wrong constant).
using TheoryBound = std::function<double(const TheoryContext&)>;

class ProtocolRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<BroadcastProtocol>(const ProtocolContext&)>;

  /// Registers (or replaces) a protocol under `name`.
  void add(const std::string& name, const std::string& description,
           CapabilitySet capabilities, Factory factory,
           TheoryBound bound = nullptr);

  /// Convenience overload: no capabilities, no theory bound.
  void add(const std::string& name, const std::string& description,
           Factory factory);

  bool contains(const std::string& name) const;

  /// Builds the named protocol for the given context; throws SpecError on
  /// an unknown name (listing the registered ones).
  std::unique_ptr<BroadcastProtocol> create(const std::string& name,
                                            const ProtocolContext& ctx) const;

  /// Registered protocol names, sorted.
  std::vector<std::string> names() const;

  /// One-line description of a registered protocol.
  const std::string& description(const std::string& name) const;

  /// The protocol's capability set; throws SpecError on an unknown name.
  CapabilitySet capabilities(const std::string& name) const;

  bool has_capability(const std::string& name, Capability cap) const {
    return (capabilities(name) & cap) != 0;
  }

  /// True iff a theory bound is registered for `name`.
  bool has_theory_bound(const std::string& name) const;

  /// Evaluates the protocol's registered bound on `ctx`; 0.0 when none is
  /// registered.  Throws SpecError on an unknown name.
  double theory_bound(const std::string& name, const TheoryContext& ctx) const;

  /// The process-wide registry, pre-loaded with the built-in protocols:
  /// decay, fastbc, robust, rlnc-decay, rlnc-robust, the verified-payload
  /// variants, erasure-decay, pipeline, greedy.
  static ProtocolRegistry& global();

 private:
  struct Entry {
    std::string description;
    CapabilitySet capabilities = 0;
    Factory factory;
    TheoryBound bound;
  };
  const Entry& entry(const std::string& name) const;
  std::map<std::string, Entry> entries_;
};

/// Registers the built-in protocols into `registry` (used by global();
/// exposed so tests can build isolated registries).
void register_builtin_protocols(ProtocolRegistry& registry);

/// Registers the schedule-level protocols: the Lemma 25/26 transforms
/// (star/path base schedules), the Appendix A single-link schedules, the
/// Section 5.1.1 star schedules, and the Section 5.1.2 WCT schedules.
/// These are topology-constrained -- their factories throw SpecError on a
/// scenario they cannot schedule -- so they live outside global() and are
/// added explicitly by the sweep CLI, the benches, and the tests.
void register_schedule_protocols(ProtocolRegistry& registry);

/// The process-wide registry with the builtin AND schedule-level
/// protocols: the one assembly the CLI, the sweep benches, and the sweep
/// tests all run against.
const ProtocolRegistry& extended_registry();

}  // namespace nrn::sim

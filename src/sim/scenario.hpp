// Declarative experiment scenarios and the string-spec grammar.
//
// A Scenario pins down everything an experiment needs besides the protocol:
// the topology, the fault model, the broadcast source, the message count k,
// and the master seed.  Scenarios are plain values: two equal scenarios
// reproduce bit-identical experiments through the Driver.
//
// Spec grammar (colon-separated, all numbers strictly validated):
//   topologies: path:n  cycle:n  star:leaves  complete:n  grid:RxC
//               gnp:n:p  tree:n  binary-tree:n  hypercube:d
//               caterpillar:spine:legs  ring:cliques:size
//               barbell:clique:bridge  lollipop:clique:tail
//               regular:n:d  link  wct:budget  wct:M:L:C:S
//   faults:     none  sender:p  receiver:p  combined:ps:pr
//
// The wct family has two forms: wct:budget scales all dimensions from a
// target node count (WctParams::from_node_budget), while wct:M:L:C:S pins
// sender count, class count, clusters per class, and cluster size exactly
// (the Lemma 18 structural probes need explicit class counts).
//
// Malformed specs (wrong arity, non-numeric or out-of-range values, unknown
// kinds) raise SpecError -- never a silently-zero strtoll parse.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "radio/fault_model.hpp"

namespace nrn::topology {
struct WctParams;
}

namespace nrn::sim {

/// Raised for any malformed scenario/protocol spec string.
class SpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Strict integer parse of the full string; throws SpecError on empty
/// input, trailing junk, or overflow.  `what` names the field in errors.
std::int64_t parse_spec_int(const std::string& text, const std::string& what);

/// Strict unsigned parse (full uint64 range) with the same rules.
std::uint64_t parse_spec_uint(const std::string& text, const std::string& what);

/// Strict floating-point parse with the same rules as parse_spec_int;
/// additionally rejects non-finite values (nan, inf).
double parse_spec_real(const std::string& text, const std::string& what);

/// A parsed, validated topology spec.  Parsing checks kind, arity, and
/// value ranges up front; build() constructs the graph (randomized families
/// draw from the supplied rng).
struct TopologySpec {
  std::string text;                 ///< original spec string
  std::string kind;                 ///< family name, e.g. "grid"
  std::vector<std::int64_t> ints;   ///< validated integer arguments
  std::vector<double> reals;        ///< validated real arguments (gnp's p)

  static TopologySpec parse(const std::string& spec);
  graph::Graph build(Rng& rng) const;

  /// True iff build() consumes randomness (gnp, tree, regular, wct).
  bool randomized() const;

  /// The WCT parameters this spec pins down (budget-scaled for wct:budget,
  /// exact for wct:M:L:C:S).  Only valid for kind == "wct"; protocol
  /// factories use it to rebuild the cluster structure build() flattens
  /// into a plain graph.
  topology::WctParams wct_params() const;

  friend bool operator==(const TopologySpec&, const TopologySpec&) = default;
};

/// Parses a fault spec ("none", "sender:p", "receiver:p", "combined:ps:pr").
radio::FaultModel parse_fault_spec(const std::string& spec);

/// Every topology family name the grammar accepts, sorted.
const std::vector<std::string>& topology_kinds();

/// A complete experiment scenario.
struct Scenario {
  TopologySpec topology;
  std::string fault_text = "none";
  radio::FaultModel fault = radio::FaultModel::faultless();
  graph::NodeId source = 0;
  std::int64_t k = 1;            ///< messages for multi-message protocols
  std::uint64_t seed = 1;        ///< master seed for graph + trials

  /// Parses and validates both specs; throws SpecError on any problem.
  static Scenario parse(const std::string& topology_spec,
                        const std::string& fault_spec, graph::NodeId source = 0,
                        std::int64_t k = 1, std::uint64_t seed = 1);

  /// Materializes the topology deterministically from `seed` (randomized
  /// families use a stream derived from the seed, independent of trials).
  graph::Graph build_graph() const;

  /// The exact stream build_graph() draws from.  Protocol factories that
  /// must reconstruct a randomized topology's structure (e.g. the WCT
  /// cluster layout) replay this stream and get the identical network.
  Rng topology_rng() const { return Rng(seed ^ 0xfeedULL); }

  /// "grid:16x16 under receiver-faults(p=0.3), k=4, seed=7"
  std::string describe() const;

  friend bool operator==(const Scenario&, const Scenario&) = default;
};

}  // namespace nrn::sim

// Declarative experiment scenarios and the string-spec grammar.
//
// A Scenario pins down everything an experiment needs besides the protocol:
// the topology, the fault model, the broadcast source, the message count k,
// and the master seed.  Scenarios are plain values: two equal scenarios
// reproduce bit-identical experiments through the Driver.
//
// Spec grammar (colon-separated, all numbers strictly validated):
//   topologies: path:n  cycle:n  star:leaves  complete:n  grid:RxC
//               gnp:n:p  tree:n  binary-tree:n  hypercube:d
//               caterpillar:spine:legs  ring:cliques:size
//               barbell:clique:bridge  lollipop:clique:tail
//               regular:n:d  link  wct:budget  wct:M:L:C:S
//               disk:n:radius[:power]  uniform:n:density
//   faults:     none  sender:p  receiver:p  combined:ps:pr
//   channels:   none  sinr:alpha:noise:beta
//
// disk and uniform are the geometric families (node coordinates exist):
// disk places n nodes uniformly in the unit square joining pairs within
// `radius` (shared transmit power, default 1); uniform places n nodes at
// expected density `density` per unit square joining pairs within unit
// distance.  Only geometric topologies can host the sinr channel, and a
// sinr channel cannot combine with an edge-fault spec -- it replaces the
// fault layer (see radio/channel_model.hpp and docs/channel_models.md).
//
// The wct family has two forms: wct:budget scales all dimensions from a
// target node count (WctParams::from_node_budget), while wct:M:L:C:S pins
// sender count, class count, clusters per class, and cluster size exactly
// (the Lemma 18 structural probes need explicit class counts).
//
// Malformed specs (wrong arity, non-numeric or out-of-range values, unknown
// kinds) raise SpecError -- never a silently-zero strtoll parse.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "graph/geometry.hpp"
#include "graph/graph.hpp"
#include "radio/channel_model.hpp"
#include "radio/fault_model.hpp"

namespace nrn::topology {
struct WctParams;
}

namespace nrn::sim {

/// Raised for any malformed scenario/protocol spec string.
class SpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Strict integer parse of the full string; throws SpecError on empty
/// input, trailing junk, or overflow.  `what` names the field in errors.
std::int64_t parse_spec_int(const std::string& text, const std::string& what);

/// Strict unsigned parse (full uint64 range) with the same rules.
std::uint64_t parse_spec_uint(const std::string& text, const std::string& what);

/// Strict floating-point parse with the same rules as parse_spec_int;
/// additionally rejects non-finite values (nan, inf).
double parse_spec_real(const std::string& text, const std::string& what);

/// A parsed, validated topology spec.  Parsing checks kind, arity, and
/// value ranges up front; build() constructs the graph (randomized families
/// draw from the supplied rng).
struct TopologySpec {
  std::string text;                 ///< original spec string
  std::string kind;                 ///< family name, e.g. "grid"
  std::vector<std::int64_t> ints;   ///< validated integer arguments
  std::vector<double> reals;        ///< validated real arguments (gnp's p)

  static TopologySpec parse(const std::string& spec);

  /// Builds the graph; geometric families (disk, uniform) additionally
  /// export their node placement to `geometry` when non-null.  The rng
  /// draws do not depend on whether geometry was requested.
  graph::Graph build(Rng& rng, graph::Geometry* geometry = nullptr) const;

  /// True iff build() consumes randomness (gnp, tree, regular, wct,
  /// disk, uniform).
  bool randomized() const;

  /// True iff the family places nodes in the plane (disk, uniform) --
  /// the precondition for hosting an SINR channel.
  bool geometric() const { return kind == "disk" || kind == "uniform"; }

  /// The WCT parameters this spec pins down (budget-scaled for wct:budget,
  /// exact for wct:M:L:C:S).  Only valid for kind == "wct"; protocol
  /// factories use it to rebuild the cluster structure build() flattens
  /// into a plain graph.
  topology::WctParams wct_params() const;

  friend bool operator==(const TopologySpec&, const TopologySpec&) = default;
};

/// Parses a fault spec ("none", "sender:p", "receiver:p", "combined:ps:pr").
radio::FaultModel parse_fault_spec(const std::string& spec);

/// Parses a channel spec ("none" or "sinr:alpha:noise:beta").  "none"
/// yields an edge-fault channel carrying `fault`; parameter validation
/// errors carry the full spec text, like the topology parser's.
radio::ChannelModel parse_channel_spec(const std::string& spec,
                                       const radio::FaultModel& fault);

/// Every topology family name the grammar accepts, sorted.
const std::vector<std::string>& topology_kinds();

/// A complete experiment scenario.
struct Scenario {
  TopologySpec topology;
  std::string fault_text = "none";
  radio::FaultModel fault = radio::FaultModel::faultless();
  std::string channel_text = "none";
  radio::ChannelModel channel =
      radio::ChannelModel::edge_fault(radio::FaultModel::faultless());
  graph::NodeId source = 0;
  std::int64_t k = 1;            ///< messages for multi-message protocols
  std::uint64_t seed = 1;        ///< master seed for graph + trials

  /// Parses and validates all specs; throws SpecError on any problem.
  /// A non-"none" channel requires a faultless fault spec and a geometric
  /// topology.
  static Scenario parse(const std::string& topology_spec,
                        const std::string& fault_spec, graph::NodeId source = 0,
                        std::int64_t k = 1, std::uint64_t seed = 1,
                        const std::string& channel_spec = "none");

  /// Materializes the topology deterministically from `seed` (randomized
  /// families use a stream derived from the seed, independent of trials).
  /// Geometric topologies export their placement to `geometry` when
  /// requested; the graph is identical either way.
  graph::Graph build_graph(graph::Geometry* geometry = nullptr) const;

  /// The exact stream build_graph() draws from.  Protocol factories that
  /// must reconstruct a randomized topology's structure (e.g. the WCT
  /// cluster layout) replay this stream and get the identical network.
  Rng topology_rng() const { return Rng(seed ^ 0xfeedULL); }

  /// "grid:16x16 under receiver-faults(p=0.3), k=4, seed=7"
  std::string describe() const;

  friend bool operator==(const Scenario&, const Scenario&) = default;
};

}  // namespace nrn::sim

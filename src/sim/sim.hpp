// Umbrella header for the simulation API: Scenario + ProtocolRegistry +
// Driver + report emitters.  This is the library's public surface for
// "run protocol X on scenario Y for T trials".
#pragma once

#include "sim/driver.hpp"        // IWYU pragma: export
#include "sim/protocol.hpp"      // IWYU pragma: export
#include "sim/registry.hpp"      // IWYU pragma: export
#include "sim/report.hpp"        // IWYU pragma: export
#include "sim/scenario.hpp"      // IWYU pragma: export
#include "sim/sweep.hpp"         // IWYU pragma: export
#include "sim/sweep_runner.hpp"  // IWYU pragma: export

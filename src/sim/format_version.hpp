// The single source of truth for the on-disk record/shard/cache format
// version ("experiment vN" / "nrn-sweep-shard vN" / "nrn-sweep-cache vN";
// grammar in docs/formats.md).
//
// Bump this (and every vN literal -- nrn_lint cross-checks them against
// this constant) whenever the serialized bytes change meaning: a new or
// reordered field, a changed number rendering, a different checksum body.
// History: v2 typed metrics, v3 engine coin-tape overhaul (new seeds), v4
// per-round series lines, v5 engine v4 batched coin tape (one salt per
// round, id-keyed stateless coins -- every seeded outcome changes), v6
// channel models (an optional "channel " record line for non-edge
// channels; edge-fault records change only in the version header).  An
// unbumped change silently corrupts every warm cache and poisons fleet
// merges, which assume bit-identical recomputes.
#pragma once

namespace nrn::sim {

inline constexpr int kSweepFormatVersion = 6;

}  // namespace nrn::sim

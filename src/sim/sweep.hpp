// Sweep plans: the cross-product grammar over scenarios and protocols.
//
// A SweepPlan describes a whole experiment grid in one string -- topologies
// x fault models x message counts x protocols -- and expands it
// deterministically into an ordered list of cells, each of which is one
// (Scenario, protocol, trials) experiment for the Driver.  Plans are the
// unit of sharding and caching: the expansion order, the per-cell seeds,
// and the cell keys depend only on the plan text and the master seed, never
// on which process or thread runs a cell.
//
// Plan grammar (clauses separated by ';', an optional leading "sweep:"):
//   topology=SPEC[,SPEC...]    required; TopologySpec grammar per item
//   protocols=NAME[,NAME...]   required; registry protocol names
//   fault=SPEC[,SPEC...]       default none
//   channel=SPEC[,SPEC...]     default none; "sinr:alpha:noise:beta" items
//                              require geometric topologies and fault=none
//   k=N[,N...]                 default 1
//   source=N                   default 0
//   trials=N                   default 1
//   seed=N                     default 1 (the master seed)
//   trace=0|1                  default 0; 1 records per-round series
//                              metrics for kTraced protocols
//
// List values split on commas at brace depth 0.  Inside any list item,
// one or more brace groups expand into a cross product (leftmost group
// varies slowest):
//   path:{64,128}        -> path:64 path:128
//   grid:{4,8}x{4,8}     -> grid:4x4 grid:4x8 grid:8x4 grid:8x8
//   receiver:{0.1,0.5}   -> receiver:0.1 receiver:0.5
// A brace-group item (or a bare numeric list item, e.g. for k=) may be an
// integer range:
//   lo..hi       arithmetic, step 1        4..7      -> 4 5 6 7
//   lo..hi+d     arithmetic, step d        0..10+5   -> 0 5 10
//   lo..hi*f     geometric, factor f       64..512*2 -> 64 128 256 512
//
// Cells enumerate in nested order: topology (outermost), fault, channel,
// k, protocol (innermost).  Each distinct scenario (topology, fault,
// channel, source, k) derives its seed by mixing the master seed with a
// hash of the scenario's identity, so (a) every protocol sharing a
// scenario sees the same graph and the same per-trial fault coins (paired
// comparisons), and (b) adding or removing axis values never perturbs the
// seeds of the remaining cells (stable cache keys).  A "none" channel is
// omitted from the identity, so pre-channel plans keep their seeds.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/protocol.hpp"
#include "sim/scenario.hpp"

namespace nrn::sim {

/// FNV-1a 64-bit hash; the library's one content hash (cell seeds, cache
/// file names, serialization checksums).  Fixed algorithm, never platform
/// dependent.
std::uint64_t fnv1a64(std::string_view text);

/// fnv1a64 rendered as 16 lowercase hex digits -- the cache entry / claim
/// file stem for a key, and the `hash` field of progress events.
std::string fnv1a64_hex(std::string_view text);

/// Expands one clause value into its ordered item list: depth-0 comma
/// split, then brace/range expansion per item.  Throws SpecError on
/// malformed braces or ranges, and on expansions beyond the per-axis cap.
std::vector<std::string> expand_spec_list(const std::string& value);

/// One cell of the grid: a concrete scenario, a protocol name, and the
/// trial count.  `index` is the cell's position in the plan's enumeration
/// order (the sharding key).
struct SweepCell {
  int index = 0;
  Scenario scenario;
  std::string protocol;
  int trials = 1;
  /// Record per-round series metrics (Driver tracing) for this cell.
  /// Part of the cell identity: a traced report carries series an
  /// untraced one lacks, so the two must never share a cache entry.
  bool trace = false;

  /// Canonical identity string, e.g.
  /// "topology=path:64|fault=none|source=0|k=1|seed=123|protocol=decay|trials=3".
  /// "|channel=..." and "|trace=1" are appended only for non-"none"
  /// channels / traced cells, so pre-channel untraced keys (and their warm
  /// cache entries) are unchanged.  Two cells with equal keys reproduce
  /// bit-identical ExperimentReports (modulo tuning, which the runner
  /// appends for cache keys).
  std::string key() const;
};

/// A parsed, fully expanded sweep plan.
struct SweepPlan {
  std::string text;          ///< original plan string (single line)
  std::uint64_t master_seed = 1;
  std::vector<std::string> topologies;
  std::vector<std::string> faults;
  std::vector<std::string> channels;
  std::vector<std::string> protocols;
  std::vector<std::int64_t> ks;
  graph::NodeId source = 0;
  int trials = 1;
  bool trace = false;
  std::vector<SweepCell> cells;  ///< enumeration order; cells[i].index == i

  /// Parses and expands `spec`; throws SpecError on any malformed clause,
  /// duplicate/unknown keys, invalid scenario or fault specs, or a grid
  /// larger than the expansion cap.
  static SweepPlan parse(const std::string& spec);
};

}  // namespace nrn::sim

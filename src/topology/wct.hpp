// The worst-case topology WCT (paper Section 5.1.2, Figure 2).
//
// Construction, following Ghaffari-Haeupler-Khabbazian [19] plus the
// paper's cluster duplication:
//
//   * one source node s;
//   * M sender nodes, each adjacent to s;
//   * C receiver *clusters* partitioned into L classes; a cluster of class
//     j (1 <= j <= L) draws its sender neighborhood by including each
//     sender independently with probability 2^-j (re-drawn if empty);
//   * every cluster holds `cluster_size` member nodes that all share the
//     cluster's exact sender neighborhood (the paper's duplication of each
//     receiver into a star-like cluster).
//
// The only property the lower bounds rely on (Lemma 18): for any set S of
// broadcasting senders, the expected fraction of clusters with exactly one
// neighbor in S is O(1/L): a class-j cluster sees a unique broadcaster with
// probability |S| * 2^-j * (1 - 2^-j)^(|S|-1), which is Theta(1) only for
// the O(1) classes with 2^-j near 1/|S| and geometrically small elsewhere.
// unique_reception_fraction() lets experiments verify this directly.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace nrn::topology {

using graph::Graph;
using graph::NodeId;

struct WctParams {
  std::int32_t sender_count = 0;        ///< M
  std::int32_t class_count = 0;         ///< L
  std::int32_t clusters_per_class = 0;  ///< C / L
  std::int32_t cluster_size = 0;        ///< members per cluster

  /// Scales all dimensions from a target node count: M ~ sqrt(n) senders,
  /// L ~ (log2 M) classes, ~M/L clusters per class, sqrt(n)-sized clusters.
  static WctParams from_node_budget(std::int32_t n);
};

class WctNetwork {
 public:
  WctNetwork(const WctParams& params, Rng& rng);

  const Graph& graph() const { return graph_; }
  const WctParams& params() const { return params_; }

  NodeId source() const { return 0; }
  const std::vector<NodeId>& senders() const { return senders_; }

  std::int32_t cluster_count() const {
    return static_cast<std::int32_t>(clusters_.size());
  }
  const std::vector<std::vector<NodeId>>& clusters() const { return clusters_; }
  /// 1-based class index of a cluster.
  std::int32_t cluster_class(std::int32_t c) const {
    return cluster_class_[static_cast<std::size_t>(c)];
  }
  /// Senders adjacent to every member of cluster c.
  const std::vector<NodeId>& cluster_senders(std::int32_t c) const {
    return cluster_senders_[static_cast<std::size_t>(c)];
  }

  /// Fraction of clusters with exactly one broadcasting neighbor, for a
  /// sender subset given as a mask over sender positions (Lemma 18 probe).
  double unique_reception_fraction(const std::vector<bool>& broadcasting) const;

 private:
  WctParams params_;
  Graph graph_;
  std::vector<NodeId> senders_;
  std::vector<std::vector<NodeId>> clusters_;
  std::vector<std::int32_t> cluster_class_;
  std::vector<std::vector<NodeId>> cluster_senders_;
};

}  // namespace nrn::topology

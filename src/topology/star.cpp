#include "topology/star.hpp"

namespace nrn::topology {

Star make_star(NodeId leaf_count) {
  Star star;
  star.graph = graph::make_star(leaf_count);
  star.hub = 0;
  star.leaves.reserve(static_cast<std::size_t>(leaf_count));
  for (NodeId i = 1; i <= leaf_count; ++i) star.leaves.push_back(i);
  return star;
}

}  // namespace nrn::topology

// Star topology helpers (paper Section 5.1.1).
//
// The star consists of a hub (the source s) and n adjacent leaves.  It is
// the paper's canonical receiver-fault separator: adaptive routing pays
// Theta(log n) rounds per message (the last-of-n-coupons effect, Lemma 15)
// while Reed-Solomon coding streams packets at Theta(1) (Lemma 16).
#pragma once

#include <vector>

#include "graph/generators.hpp"

namespace nrn::topology {

using graph::Graph;
using graph::NodeId;

struct Star {
  Graph graph;
  NodeId hub = 0;
  std::vector<NodeId> leaves;
};

/// Builds the star with `leaf_count` leaves; hub is node 0.
Star make_star(NodeId leaf_count);

}  // namespace nrn::topology

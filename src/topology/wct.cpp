#include "topology/wct.hpp"

#include <algorithm>
#include <cmath>

namespace nrn::topology {

WctParams WctParams::from_node_budget(std::int32_t n) {
  NRN_EXPECTS(n >= 64, "WCT needs a reasonable node budget");
  WctParams p;
  const auto root = static_cast<std::int32_t>(std::ceil(std::sqrt(n)));
  p.sender_count = root;
  p.class_count =
      std::max<std::int32_t>(2, static_cast<std::int32_t>(std::log2(root)));
  p.clusters_per_class =
      std::max<std::int32_t>(1, root / (2 * p.class_count));
  p.cluster_size = root;
  return p;
}

WctNetwork::WctNetwork(const WctParams& params, Rng& rng) : params_(params) {
  NRN_EXPECTS(params.sender_count >= 2, "need at least two senders");
  NRN_EXPECTS(params.class_count >= 1, "need at least one class");
  NRN_EXPECTS(params.clusters_per_class >= 1, "need at least one cluster");
  NRN_EXPECTS(params.cluster_size >= 1, "clusters must be non-empty");

  const std::int32_t cluster_total =
      params.class_count * params.clusters_per_class;
  const NodeId n = 1 + params.sender_count +
                   cluster_total * params.cluster_size;
  graph::GraphBuilder builder(n);

  senders_.reserve(static_cast<std::size_t>(params.sender_count));
  for (NodeId i = 1; i <= params.sender_count; ++i) {
    builder.add_edge(0, i);
    senders_.push_back(i);
  }

  NodeId next = 1 + params.sender_count;
  for (std::int32_t cls = 1; cls <= params.class_count; ++cls) {
    const double include_prob = std::pow(2.0, -cls);
    for (std::int32_t rep = 0; rep < params.clusters_per_class; ++rep) {
      // Draw the shared neighborhood; redraw empty neighborhoods so every
      // cluster is connected (the construction in [19] conditions on
      // non-isolation the same way).
      std::vector<NodeId> nbrs;
      while (nbrs.empty()) {
        for (const NodeId s : senders_)
          if (rng.bernoulli(include_prob)) nbrs.push_back(s);
      }
      std::vector<NodeId> members;
      members.reserve(static_cast<std::size_t>(params.cluster_size));
      for (std::int32_t m = 0; m < params.cluster_size; ++m) {
        const NodeId member = next++;
        members.push_back(member);
        for (const NodeId s : nbrs) builder.add_edge(member, s);
      }
      clusters_.push_back(std::move(members));
      cluster_class_.push_back(cls);
      cluster_senders_.push_back(std::move(nbrs));
    }
  }
  NRN_ENSURES(next == n, "node budget accounting error");
  graph_ = builder.build();
}

double WctNetwork::unique_reception_fraction(
    const std::vector<bool>& broadcasting) const {
  NRN_EXPECTS(broadcasting.size() == senders_.size(),
              "mask must cover all senders");
  std::int32_t unique = 0;
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    std::int32_t hits = 0;
    for (const NodeId s : cluster_senders_[c]) {
      // Sender ids start at 1; position = id - 1.
      if (broadcasting[static_cast<std::size_t>(s - 1)]) {
        if (++hits > 1) break;
      }
    }
    if (hits == 1) ++unique;
  }
  return static_cast<double>(unique) /
         static_cast<double>(clusters_.size());
}

}  // namespace nrn::topology

#include "serve/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/errors.hpp"
#include "sim/scenario.hpp"

namespace nrn::serve {

namespace {

[[noreturn]] void fail(const std::string& what) { throw sim::SpecError(what); }

}  // namespace

LineClient LineClient::connect_unix(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path)
    fail("serve client: socket path too long: " + socket_path);
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail("serve client: cannot create unix socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const std::string why = errno_text(errno);
    ::close(fd);
    fail("serve client: cannot connect to " + socket_path + ": " + why);
  }
  return LineClient(fd);
}

LineClient LineClient::connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("serve client: cannot create tcp socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const std::string why = errno_text(errno);
    ::close(fd);
    fail("serve client: cannot connect to 127.0.0.1:" + std::to_string(port) +
         ": " + why);
  }
  return LineClient(fd);
}

LineClient::~LineClient() {
  if (fd_ >= 0) ::close(fd_);
}

LineClient::LineClient(LineClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

LineClient& LineClient::operator=(LineClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

void LineClient::send(const Message& message) {
  std::string line = message.serialize();
  line += '\n';
  send_raw(line);
}

void LineClient::send_raw(const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    fail("serve client: connection lost while sending");
  }
}

std::optional<Message> LineClient::recv() {
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      const std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return Message::parse(line);
    }
    char buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      buffer_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return std::nullopt;  // daemon closed (or the connection broke)
  }
}

void LineClient::shutdown_send() { ::shutdown(fd_, SHUT_WR); }

}  // namespace nrn::serve

// The serve daemon's plan scheduler: many clients' sweep plans multiplexed
// over one shared result cache and one TaskPool.
//
// Responsibilities, in order of importance:
//   * Warm cells answer instantly: submit() probes the ResultCache and
//     resolves every already-cached cell before any job is queued.
//   * Cold cells are deduplicated by cache key across all active plans --
//     two clients sweeping overlapping grids share each cell's single
//     compute (the in-flight cell carries a waiter list).
//   * Cells execute on a TaskPool stream through the same CellExecutor as
//     `nrn_sim sweep`, with claim markers, so external --fleet runners
//     pointed at the same cache directory cooperate with the daemon; a
//     cell claimed by a live external worker is deferred and re-probed.
//   * Scheduling is fair round-robin across active plans: a huge plan
//     cannot starve a small one, because each dispatch picks the next cell
//     from the next plan in rotation.
//   * Every resolution emits a PlanEvent through the sink (from worker
//     threads); the server turns them into wire messages.
//
// Completed-plan reports are assembled in plan order and serialized with
// write_shard_file, so they are bit-identical to a serial sweep of the
// same plan -- the acceptance bar for the whole serving tier.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/registry.hpp"
#include "sim/sweep.hpp"
#include "sim/sweep_runner.hpp"

namespace nrn::serve {

struct SchedulerOptions {
  int cell_threads = 1;   ///< max concurrent cell computes
  int trial_threads = 1;  ///< Driver threads inside each cell
  sim::Tuning tuning;
  double claim_ttl_seconds = 900.0;
  double heartbeat_seconds = 0.0;  ///< 0 = auto (CellExecutor semantics)
  int claim_poll_ms = 200;  ///< re-probe period for externally claimed cells
};

/// One progress notification for one plan.  `client_id` routes it back to
/// the submitting connection.
struct PlanEvent {
  enum class Kind { kCellDone, kPlanDone, kPlanFailed };

  Kind kind = Kind::kCellDone;
  int client_id = 0;
  int plan_id = 0;

  // kCellDone:
  int cell_index = 0;   ///< plan-wide cell index
  bool cached = false;  ///< resolved from cache / shared with another plan
  std::string hash;     ///< cache entry stem
  int done = 0;         ///< cells of this plan resolved so far
  int total = 0;

  // kPlanDone (counters also final on kCellDone's last event):
  int computed = 0;  ///< cells whose fresh compute this plan triggered
  int cached_cells = 0;
  std::string report_text;  ///< complete report, shard format

  // kPlanFailed:
  std::string error;
};

struct SubmitResult {
  int plan_id = 0;
  int total_cells = 0;
  int cached = 0;  ///< cells answered from the warm cache at submit time
  bool done = false;  ///< the whole plan was warm; kPlanDone already emitted
};

struct QueryResult {
  int total_cells = 0;
  int cached = 0;
  bool complete = false;
  std::string report_text;  ///< set only when complete
};

struct SchedulerStats {
  int plans_active = 0;
  int plans_done = 0;    ///< lifetime completed (failed plans excluded)
  int plans_failed = 0;
  int cells_pending = 0;  ///< queued or deferred behind an external claim
  int cells_running = 0;
  std::int64_t cells_computed = 0;  ///< lifetime fresh computes
  std::int64_t cells_cached = 0;    ///< lifetime cache/shared resolutions
};

class PlanScheduler {
 public:
  /// Called for every PlanEvent, possibly from a worker thread; must be
  /// thread-safe and must not call back into the scheduler.
  using EventSink = std::function<void(PlanEvent)>;

  PlanScheduler(const sim::ProtocolRegistry& registry, std::string cache_dir,
                SchedulerOptions options, EventSink sink);

  /// Cancels pending work and waits for running cells, then returns.
  ~PlanScheduler();

  PlanScheduler(const PlanScheduler&) = delete;
  PlanScheduler& operator=(const PlanScheduler&) = delete;

  /// Registers a plan for `client_id`.  Throws SpecError when the plan
  /// names unknown protocols.  Warm cells emit kCellDone events before
  /// this returns; a fully warm plan also emits kPlanDone.
  SubmitResult submit(const sim::SweepPlan& plan, int client_id);

  /// Drops every unfinished plan of `client_id`: no further events for
  /// them, and queued cells nobody else waits for are abandoned.  Cells
  /// already computing finish into the cache (a resubmission reuses them).
  void detach_client(int client_id);

  /// Warm-cache-only resolution of `plan`: loads what the cache has,
  /// computes nothing.
  QueryResult query(const sim::SweepPlan& plan) const;

  SchedulerStats stats() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace nrn::serve

// Blocking line client for the serve daemon.
//
// LineClient is the transport half of `nrn_sim submit` / `status` /
// `shutdown` and of the serve tests: connect to the daemon's unix socket
// (or 127.0.0.1 TCP port), send one-line requests, block on one-line
// replies.  Replies have no inbound size cap -- a plan_done line carries a
// whole report -- and framing is a plain '\n' scan because json_escape
// guarantees no raw newline ever appears inside a message.
#pragma once

#include <optional>
#include <string>

#include "serve/wire.hpp"

namespace nrn::serve {

class LineClient {
 public:
  /// Connects; throws SpecError when nothing listens there.
  static LineClient connect_unix(const std::string& socket_path);
  static LineClient connect_tcp(int port);  ///< 127.0.0.1 only

  ~LineClient();
  LineClient(LineClient&& other) noexcept;
  LineClient& operator=(LineClient&& other) noexcept;
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Serializes and sends one message line.  Throws SpecError on a broken
  /// connection.
  void send(const Message& message);

  /// Sends raw bytes verbatim (no framing added) -- how the protocol
  /// tests drive malformed and oversized lines at the daemon.
  void send_raw(const std::string& bytes);

  /// Blocks for the next reply line; nullopt when the daemon closed the
  /// connection.  Throws WireError when the line does not parse.
  std::optional<Message> recv();

  /// Half-closes the write side (tells the daemon no more requests are
  /// coming) while recv() keeps working.
  void shutdown_send();

 private:
  explicit LineClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace nrn::serve

// Live sweep progress rendering: one ticker for every event source.
//
// `nrn_sim sweep --progress` feeds it SweepRunner's local events and
// `nrn_sim submit --progress` feeds it the daemon's streamed cell_done
// events -- the structs are the same (sim/progress.hpp), so the rendering
// is too: a carriage-return ticker line on stderr while cells resolve,
// one summary line when the plan completes.  Progress never writes to
// stdout, which stays reserved for the report emitters.
#pragma once

#include <chrono>
#include <iosfwd>

#include "sim/progress.hpp"

namespace nrn::serve {

class ProgressTicker {
 public:
  /// Renders to `os` (conventionally std::cerr).
  explicit ProgressTicker(std::ostream& os);

  /// Usable directly as a sim::ProgressFn.
  void operator()(const sim::SweepProgressEvent& event);

 private:
  std::ostream* os_;
  std::chrono::steady_clock::time_point start_;
  bool line_open_ = false;
};

}  // namespace nrn::serve

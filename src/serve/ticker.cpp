#include "serve/ticker.hpp"

#include <ostream>
#include <string>

#include "common/numio.hpp"

namespace nrn::serve {

namespace {

std::string format_eta(double seconds) {
  if (seconds < 0) return "?";
  if (seconds < 90) return format_real_fixed(seconds, 0) + "s";
  if (seconds < 90 * 60) return format_real_fixed(seconds / 60.0, 1) + "m";
  return format_real_fixed(seconds / 3600.0, 1) + "h";
}

}  // namespace

ProgressTicker::ProgressTicker(std::ostream& os)
    : os_(&os), start_(std::chrono::steady_clock::now()) {}

void ProgressTicker::operator()(const sim::SweepProgressEvent& event) {
  using Kind = sim::SweepProgressEvent::Kind;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  switch (event.kind) {
    case Kind::kAccepted:
      start_ = std::chrono::steady_clock::now();
      *os_ << "sweep: 0/" << event.total << " cells\r" << std::flush;
      line_open_ = true;
      break;
    case Kind::kCellDone: {
      // ETA from the overall resolution rate so far; cached cells are
      // nearly free, so a warm prefix makes the estimate optimistic until
      // computed cells dominate -- good enough for a glanceable ticker.
      const double rate = event.done > 0 ? elapsed / event.done : 0.0;
      const double eta = rate * (event.total - event.done);
      *os_ << "sweep: " << event.done << "/" << event.total << " cells ("
           << event.cached_cells << " cached, " << event.computed
           << " computed) eta " << format_eta(eta) << "   \r" << std::flush;
      line_open_ = true;
      break;
    }
    case Kind::kPlanDone: {
      if (line_open_) *os_ << "\n";
      line_open_ = false;
      const std::string secs = format_real_fixed(elapsed, 1) + "s";
      *os_ << "sweep: " << event.done << "/" << event.total
           << " cells done in " << secs << " (" << event.cached_cells
           << " cached, " << event.computed << " computed)\n";
      break;
    }
  }
}

}  // namespace nrn::serve

#include "serve/wire.hpp"

#include <charconv>
#include <cstdio>

namespace nrn::serve {

namespace {

[[noreturn]] void bad_wire(const std::string& what) { throw WireError(what); }

/// Minimal recursive-descent scanner over one line.  No recursion in
/// practice: nesting is rejected at depth 1.
struct Scanner {
  std::string_view text;
  std::size_t pos = 0;

  bool done() const { return pos >= text.size(); }

  char peek() const {
    if (done()) bad_wire("unexpected end of message");
    return text[pos];
  }

  char take() {
    const char c = peek();
    ++pos;
    return c;
  }

  void skip_spaces() {
    while (!done() && (text[pos] == ' ' || text[pos] == '\t' ||
                       text[pos] == '\r'))
      ++pos;
  }

  void expect(char c) {
    if (take() != c)
      bad_wire(std::string("expected '") + c + "' at byte " +
               std::to_string(pos - 1));
  }

  /// UTF-8 encodes one code point (BMP only; the wire never needs more).
  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string string_value() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        bad_wire("raw control character inside string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<unsigned>(h - 'A' + 10);
            else
              bad_wire("malformed \\u escape");
          }
          if (cp >= 0xD800 && cp <= 0xDFFF)
            bad_wire("surrogate \\u escapes are not supported");
          append_utf8(out, cp);
          break;
        }
        default:
          bad_wire(std::string("unknown escape '\\") + esc + "'");
      }
    }
  }

  std::int64_t int_value() {
    const std::size_t start = pos;
    if (!done() && text[pos] == '-') ++pos;
    while (!done() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    if (pos == start || (text[start] == '-' && pos == start + 1))
      bad_wire("malformed number");
    if (!done() && (text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E'))
      bad_wire("non-integer numbers are not part of the wire protocol");
    // from_chars: locale-independent, no errno, and the result is
    // impossible to leave unchecked -- overflow and trailing junk both
    // surface in the return value.
    std::int64_t value = 0;
    const auto [rest, ec] =
        std::from_chars(text.data() + start, text.data() + pos, value, 10);
    if (ec != std::errc{} || rest != text.data() + pos)
      bad_wire("integer out of range: " +
               std::string(text.substr(start, pos - start)));
    return value;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }
};

}  // namespace

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Message& Message::set(const std::string& key, std::string value) {
  Field field;
  field.key = key;
  field.kind = Field::Kind::kString;
  field.string_value = std::move(value);
  fields_.push_back(std::move(field));
  return *this;
}

Message& Message::set(const std::string& key, std::int64_t value) {
  Field field;
  field.key = key;
  field.kind = Field::Kind::kInt;
  field.int_value = value;
  fields_.push_back(std::move(field));
  return *this;
}

Message& Message::set(const std::string& key, bool value) {
  Field field;
  field.key = key;
  field.kind = Field::Kind::kBool;
  field.bool_value = value;
  fields_.push_back(std::move(field));
  return *this;
}

const Message::Field* Message::find(const std::string& key) const {
  for (const auto& field : fields_)
    if (field.key == key) return &field;
  return nullptr;
}

bool Message::has(const std::string& key) const { return find(key) != nullptr; }

const Message::Field& Message::require(const std::string& key,
                                       Field::Kind kind) const {
  const Field* field = find(key);
  if (field == nullptr)
    bad_wire("message '" + type_ + "' is missing field '" + key + "'");
  if (field->kind != kind)
    bad_wire("field '" + key + "' of message '" + type_ +
             "' has the wrong type");
  return *field;
}

const std::string& Message::str(const std::string& key) const {
  return require(key, Field::Kind::kString).string_value;
}

std::int64_t Message::integer(const std::string& key) const {
  return require(key, Field::Kind::kInt).int_value;
}

bool Message::boolean(const std::string& key) const {
  return require(key, Field::Kind::kBool).bool_value;
}

std::string Message::serialize() const {
  std::string out = "{\"type\":\"";
  out += json_escape(type_);
  out += '"';
  for (const auto& field : fields_) {
    out += ",\"";
    out += json_escape(field.key);
    out += "\":";
    switch (field.kind) {
      case Field::Kind::kString:
        out += '"';
        out += json_escape(field.string_value);
        out += '"';
        break;
      case Field::Kind::kInt:
        out += std::to_string(field.int_value);
        break;
      case Field::Kind::kBool:
        out += field.bool_value ? "true" : "false";
        break;
    }
  }
  out += "}";
  return out;
}

Message Message::parse(std::string_view line) {
  Scanner scan{line};
  scan.skip_spaces();
  scan.expect('{');
  Message message;
  bool first = true;
  while (true) {
    scan.skip_spaces();
    if (!scan.done() && scan.peek() == '}') {
      scan.take();
      break;
    }
    if (!first) {
      scan.expect(',');
      scan.skip_spaces();
    }
    first = false;
    const std::string key = scan.string_value();
    if (key.empty()) bad_wire("empty field name");
    scan.skip_spaces();
    scan.expect(':');
    scan.skip_spaces();
    const bool duplicate = key == "type" ? !message.type_.empty()
                                         : message.find(key) != nullptr;
    if (duplicate) bad_wire("duplicate field '" + key + "'");
    const char c = scan.peek();
    if (c == '"') {
      std::string value = scan.string_value();
      if (key == "type") {
        if (value.empty()) bad_wire("empty message type");
        message.type_ = std::move(value);
      } else {
        message.set(key, std::move(value));
      }
    } else if (c == '{' || c == '[') {
      bad_wire("nested values are not part of the wire protocol");
    } else if (scan.literal("true")) {
      message.set(key, true);
    } else if (scan.literal("false")) {
      message.set(key, false);
    } else if (scan.literal("null")) {
      bad_wire("null values are not part of the wire protocol");
    } else if (c == '-' || (c >= '0' && c <= '9')) {
      if (key == "type") bad_wire("message type must be a string");
      message.set(key, scan.int_value());
    } else {
      bad_wire(std::string("unexpected character '") + c + "'");
    }
  }
  scan.skip_spaces();
  if (!scan.done()) bad_wire("trailing data after message object");
  if (message.type_.empty())
    bad_wire("message has no \"type\" field");
  return message;
}

}  // namespace nrn::serve

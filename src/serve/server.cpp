#include "serve/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "common/errors.hpp"
#include "sim/scenario.hpp"

namespace nrn::serve {

namespace {

[[noreturn]] void fail(const std::string& what) { throw sim::SpecError(what); }

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

}  // namespace

struct SweepServer::Impl {
  ServerOptions options;
  std::unique_ptr<PlanScheduler> scheduler;  // created last, destroyed first

  int unix_fd = -1;
  bool unix_bound = false;  ///< only a bound path is ours to unlink
  int tcp_fd = -1;
  int bound_tcp_port = -1;
  int wake_read = -1;
  int wake_write = -1;

  struct Connection {
    int fd = -1;
    int id = 0;
    std::string in;
    std::string out;
    bool discarding = false;  ///< dropping an oversized line up to its '\n'
  };
  std::map<int, Connection> connections;  ///< by client id
  int next_client_id = 1;

  // PlanEvents cross from worker threads to the loop through here; the
  // wake pipe byte makes poll() return.  request_stop() uses the same pipe.
  std::mutex event_mutex;
  std::deque<PlanEvent> events;
  std::atomic<bool> stop_requested{false};
  bool stopping = false;

  ~Impl() {
    scheduler.reset();  // workers drain before the queue below dies
    for (auto& [id, conn] : connections) ::close(conn.fd);
    if (unix_fd >= 0) ::close(unix_fd);
    if (tcp_fd >= 0) ::close(tcp_fd);
    if (wake_read >= 0) ::close(wake_read);
    if (wake_write >= 0) ::close(wake_write);
    if (unix_bound) ::unlink(options.socket_path.c_str());
  }

  // ------------------------------------------------------------ setup

  void open_wake_pipe() {
    int fds[2];
    if (::pipe(fds) != 0) fail("serve: cannot create wake pipe");
    wake_read = fds[0];
    wake_write = fds[1];
    set_nonblocking(wake_read);
    set_nonblocking(wake_write);
    set_cloexec(wake_read);
    set_cloexec(wake_write);
  }

  void bind_unix(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path)
      fail("serve: socket path too long: " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    unix_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd < 0) fail("serve: cannot create unix socket");
    set_cloexec(unix_fd);
    if (::bind(unix_fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
      if (errno != EADDRINUSE)
        fail("serve: cannot bind " + path + ": " + errno_text(errno));
      // A socket file already exists.  If a daemon answers on it, refuse;
      // if nobody does, it is a leftover from a dead daemon -- remove it
      // and bind again.
      const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
      const bool live =
          probe >= 0 && ::connect(probe, reinterpret_cast<const sockaddr*>(
                                             &addr),
                                  sizeof addr) == 0;
      if (probe >= 0) ::close(probe);
      if (live) fail("serve: a daemon is already listening on " + path);
      ::unlink(path.c_str());
      if (::bind(unix_fd, reinterpret_cast<const sockaddr*>(&addr),
                 sizeof addr) != 0)
        fail("serve: cannot bind " + path + ": " + errno_text(errno));
    }
    unix_bound = true;
    if (::listen(unix_fd, 64) != 0) fail("serve: cannot listen on " + path);
    set_nonblocking(unix_fd);
  }

  void bind_tcp(int port) {
    tcp_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd < 0) fail("serve: cannot create tcp socket");
    set_cloexec(tcp_fd);
    const int one = 1;
    ::setsockopt(tcp_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // never a public port
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(tcp_fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0)
      fail("serve: cannot bind 127.0.0.1:" + std::to_string(port) + ": " +
           errno_text(errno));
    if (::listen(tcp_fd, 64) != 0) fail("serve: cannot listen on tcp port");
    set_nonblocking(tcp_fd);
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(tcp_fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
      bound_tcp_port = ntohs(bound.sin_port);
  }

  // ------------------------------------------------------------ replies

  void reply(Connection& conn, const Message& message) {
    conn.out += message.serialize();
    conn.out += '\n';
  }

  void reply_error(Connection& conn, const std::string& what) {
    reply(conn, Message("error").set("error", what));
  }

  // ------------------------------------------------------------ events

  void wake() {
    const char byte = 1;
    // EAGAIN means the pipe already holds wake bytes; that is enough.
    [[maybe_unused]] const ssize_t n = ::write(wake_write, &byte, 1);
  }

  void sink(PlanEvent event) {
    {
      const std::lock_guard<std::mutex> lock(event_mutex);
      events.push_back(std::move(event));
    }
    wake();
  }

  void drain_events() {
    std::deque<PlanEvent> batch;
    {
      const std::lock_guard<std::mutex> lock(event_mutex);
      batch.swap(events);
    }
    for (PlanEvent& event : batch) {
      const auto it = connections.find(event.client_id);
      if (it == connections.end()) continue;  // client already disconnected
      Connection& conn = it->second;
      switch (event.kind) {
        case PlanEvent::Kind::kCellDone:
          reply(conn, Message("cell_done")
                          .set("plan", event.plan_id)
                          .set("cell", event.cell_index)
                          .set("resolution",
                               event.cached ? "cached" : "computed")
                          .set("hash", event.hash)
                          .set("done", event.done)
                          .set("total", event.total)
                          .set("computed", event.computed)
                          .set("cached", event.cached_cells));
          break;
        case PlanEvent::Kind::kPlanDone:
          reply(conn, Message("plan_done")
                          .set("plan", event.plan_id)
                          .set("cells", event.total)
                          .set("computed", event.computed)
                          .set("cached", event.cached_cells)
                          .set("report", event.report_text));
          break;
        case PlanEvent::Kind::kPlanFailed:
          reply(conn, Message("plan_failed")
                          .set("plan", event.plan_id)
                          .set("error", event.error));
          break;
      }
    }
  }

  // ------------------------------------------------------------ requests

  void handle_message(Connection& conn, const Message& request) {
    if (request.type() == "ping") {
      reply(conn, Message("pong").set("protocol", kProtocolVersion));
      return;
    }
    if (request.type() == "status") {
      const SchedulerStats stats = scheduler->stats();
      reply(conn, Message("status")
                      .set("protocol", kProtocolVersion)
                      .set("plans_active", stats.plans_active)
                      .set("plans_done", stats.plans_done)
                      .set("plans_failed", stats.plans_failed)
                      .set("cells_pending", stats.cells_pending)
                      .set("cells_running", stats.cells_running)
                      .set("cells_computed", stats.cells_computed)
                      .set("cells_cached", stats.cells_cached)
                      .set("cache_dir", options.cache_dir));
      return;
    }
    if (request.type() == "submit") {
      const sim::SweepPlan plan = sim::SweepPlan::parse(request.str("plan"));
      const SubmitResult result = scheduler->submit(plan, conn.id);
      reply(conn, Message("accepted")
                      .set("plan", result.plan_id)
                      .set("cells", result.total_cells)
                      .set("cached", result.cached)
                      .set("done", result.done));
      return;
    }
    if (request.type() == "query") {
      const sim::SweepPlan plan = sim::SweepPlan::parse(request.str("plan"));
      const QueryResult result = scheduler->query(plan);
      Message message("query_result");
      message.set("cells", result.total_cells)
          .set("cached", result.cached)
          .set("complete", result.complete);
      if (result.complete) message.set("report", result.report_text);
      reply(conn, message);
      return;
    }
    if (request.type() == "shutdown") {
      reply(conn, Message("bye"));
      stopping = true;
      return;
    }
    reply_error(conn, "unknown request type '" + request.type() + "'");
  }

  void handle_line(Connection& conn, std::string_view line) {
    try {
      handle_message(conn, Message::parse(line));
    } catch (const WireError& e) {
      reply_error(conn, e.what());
    } catch (const sim::SpecError& e) {
      reply_error(conn, e.what());
    } catch (const std::exception& e) {
      reply_error(conn, std::string("internal error: ") + e.what());
    }
  }

  /// Splits buffered input into lines; enforces the inbound size cap with
  /// an `error` reply plus discard-to-newline, never a disconnect.
  void consume_input(Connection& conn) {
    std::size_t start = 0;
    while (true) {
      const std::size_t newline = conn.in.find('\n', start);
      if (newline == std::string::npos) break;
      if (conn.discarding) {
        conn.discarding = false;  // the oversized line finally ended
      } else {
        std::string_view line(conn.in.data() + start, newline - start);
        if (line.size() > options.max_line_bytes)
          reply_error(conn, "request line exceeds " +
                                std::to_string(options.max_line_bytes) +
                                " bytes");
        else
          handle_line(conn, line);
      }
      start = newline + 1;
    }
    conn.in.erase(0, start);
    if (conn.in.size() > options.max_line_bytes) {
      if (!conn.discarding)
        reply_error(conn, "request line exceeds " +
                              std::to_string(options.max_line_bytes) +
                              " bytes");
      conn.discarding = true;
      conn.in.clear();
    }
  }

  // ------------------------------------------------------------ sockets

  void accept_from(int listener) {
    while (true) {
      const int fd = ::accept(listener, nullptr, nullptr);
      if (fd < 0) return;  // EAGAIN or a transient error; poll retries
      set_nonblocking(fd);
      set_cloexec(fd);
      Connection conn;
      conn.fd = fd;
      conn.id = next_client_id++;
      connections.emplace(conn.id, std::move(conn));
    }
  }

  void disconnect(int client_id) {
    const auto it = connections.find(client_id);
    if (it == connections.end()) return;
    ::close(it->second.fd);
    connections.erase(it);
    scheduler->detach_client(client_id);
  }

  /// Returns false when the connection died.
  bool read_from(Connection& conn) {
    char buf[65536];
    while (true) {
      const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
      if (n > 0) {
        conn.in.append(buf, static_cast<std::size_t>(n));
        if (static_cast<std::size_t>(n) < sizeof buf) break;
        continue;
      }
      if (n == 0) return false;  // orderly shutdown
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      return false;
    }
    consume_input(conn);
    return true;
  }

  /// Returns false when the connection died.
  bool write_to(Connection& conn) {
    while (!conn.out.empty()) {
      const ssize_t n =
          ::send(conn.fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
      if (n > 0) {
        conn.out.erase(0, static_cast<std::size_t>(n));
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
        return true;
      return false;
    }
    return true;
  }

  // ------------------------------------------------------------ the loop

  void run() {
    while (true) {
      if (stop_requested.load(std::memory_order_relaxed)) stopping = true;
      if (stopping && output_drained()) break;

      std::vector<pollfd> fds;
      std::vector<int> client_of;  // client id per pollfd past the fixed ones
      fds.push_back({wake_read, POLLIN, 0});
      if (unix_fd >= 0 && !stopping) fds.push_back({unix_fd, POLLIN, 0});
      if (tcp_fd >= 0 && !stopping) fds.push_back({tcp_fd, POLLIN, 0});
      const std::size_t first_client = fds.size();
      for (const auto& [id, conn] : connections) {
        short want = POLLIN;
        if (!conn.out.empty()) want |= POLLOUT;
        fds.push_back({conn.fd, want, 0});
        client_of.push_back(id);
      }

      // While stopping we only flush; give slow clients a short poll so a
      // dead one cannot wedge shutdown.
      const int timeout_ms = stopping ? 100 : -1;
      const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
      if (ready < 0 && errno != EINTR)
        fail("serve: poll failed: " + std::string(errno_text(errno)));
      if (stopping && ready == 0) break;  // grace expired; drop the rest

      if (fds[0].revents & POLLIN) {
        char buf[256];
        while (::read(wake_read, buf, sizeof buf) > 0) {
        }
      }
      for (std::size_t i = 1; i < first_client; ++i)
        if (fds[i].revents & POLLIN) accept_from(fds[i].fd);

      drain_events();

      for (std::size_t i = first_client; i < fds.size(); ++i) {
        const int id = client_of[i - first_client];
        const auto it = connections.find(id);
        if (it == connections.end()) continue;
        Connection& conn = it->second;
        bool alive = true;
        if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
          // Flush what we can (a client may half-close after `shutdown`),
          // then drop.
          write_to(conn);
          alive = false;
        }
        if (alive && (fds[i].revents & POLLIN)) alive = read_from(conn);
        if (alive && (fds[i].revents & POLLOUT)) alive = write_to(conn);
        if (alive && conn.out.size() > options.max_output_bytes) alive = false;
        if (!alive) disconnect(id);
      }
    }
  }

  bool output_drained() const {
    for (const auto& [id, conn] : connections)
      if (!conn.out.empty()) return false;
    return true;
  }
};

SweepServer::SweepServer(const sim::ProtocolRegistry& registry,
                         ServerOptions options)
    : impl_(std::make_unique<Impl>()) {
  if (options.cache_dir.empty()) fail("serve: --cache-dir is required");
  if (options.socket_path.empty() && options.tcp_port < 0)
    fail("serve: need a unix socket path or a tcp port");
  impl_->options = std::move(options);
  impl_->open_wake_pipe();
  if (!impl_->options.socket_path.empty())
    impl_->bind_unix(impl_->options.socket_path);
  if (impl_->options.tcp_port >= 0) impl_->bind_tcp(impl_->options.tcp_port);
  impl_->scheduler = std::make_unique<PlanScheduler>(
      registry, impl_->options.cache_dir, impl_->options.scheduler,
      [impl = impl_.get()](PlanEvent event) {
        impl->sink(std::move(event));
      });
}

SweepServer::~SweepServer() = default;

void SweepServer::run() { impl_->run(); }

void SweepServer::request_stop() {
  impl_->stop_requested.store(true, std::memory_order_relaxed);
  impl_->wake();
}

int SweepServer::tcp_port() const { return impl_->bound_tcp_port; }

const std::string& SweepServer::socket_path() const {
  return impl_->options.socket_path;
}

}  // namespace nrn::serve

#include "serve/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "common/task_pool.hpp"

namespace nrn::serve {

using Clock = std::chrono::steady_clock;

struct PlanScheduler::Impl {
  Impl(const sim::ProtocolRegistry* registry_in, std::string cache_dir,
       SchedulerOptions options_in, EventSink sink_in)
      : registry(registry_in),
        cache(std::move(cache_dir)),
        options(options_in),
        sink(std::move(sink_in)) {}

  // ----- immutable after construction
  const sim::ProtocolRegistry* registry;
  sim::ResultCache cache;
  SchedulerOptions options;
  EventSink sink;
  std::unique_ptr<sim::CellExecutor> executor;

  // ----- guarded by mutex
  mutable std::mutex mutex;

  /// A cold cell awaiting (or under) computation, deduplicated by cache
  /// key across every active plan.
  struct CellState {
    sim::SweepCell cell;
    std::string key;
    std::string hash;
    bool running = false;
    bool deferred = false;  ///< an external fleet worker holds the claim
    Clock::time_point retry_at{};
    std::vector<std::pair<int, int>> waiters;  ///< (plan_id, cell position)
  };

  struct PlanState {
    int id = 0;
    int client_id = 0;
    std::string plan_text;
    std::uint64_t master_seed = 1;
    int total = 0;
    std::vector<sim::SweepCellReport> cells;  ///< plan order; filled as resolved
    int done = 0;
    int computed = 0;  ///< fresh computes attributed to this plan
    int cached = 0;
    std::deque<std::string> queue;  ///< keys not yet picked for this plan
  };

  std::map<std::string, CellState> cells;
  std::map<int, PlanState> plans;
  std::vector<int> rotation;  ///< active plan ids, round-robin order
  std::size_t cursor = 0;
  std::deque<std::string> retry_ready;  ///< deferred cells due for re-probe
  int next_plan_id = 1;
  SchedulerStats lifetime;  ///< only the lifetime counters are maintained

  // ----- deferred-cell timer
  std::thread timer;
  std::condition_variable timer_cv;
  bool stopping = false;

  // Declared last so jobs never outlive the state they capture; the
  // destructor still tears it down explicitly first.
  std::unique_ptr<common::TaskPool::Stream> stream;

  // ------------------------------------------------------------ helpers

  void push_ticks(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i)
      stream->push([this](int /*slot*/) { tick(); });
  }

  /// Next dispatchable cell: deferred retries first, then fair
  /// round-robin over the active plans' queues.  Caller holds the mutex.
  CellState* pick_next() {
    while (!retry_ready.empty()) {
      const std::string key = std::move(retry_ready.front());
      retry_ready.pop_front();
      const auto it = cells.find(key);
      if (it != cells.end() && !it->second.running && !it->second.deferred)
        return &it->second;
    }
    for (std::size_t scanned = 0; scanned < rotation.size(); ++scanned) {
      cursor = (cursor + 1) % rotation.size();
      PlanState& plan = plans.at(rotation[cursor]);
      while (!plan.queue.empty()) {
        const std::string key = std::move(plan.queue.front());
        plan.queue.pop_front();
        const auto it = cells.find(key);
        if (it == cells.end()) continue;  // resolved while queued
        if (it->second.running || it->second.deferred)
          continue;  // another plan's dispatch (or the timer) owns it
        return &it->second;
      }
    }
    return nullptr;
  }

  void remove_plan(int plan_id) {
    plans.erase(plan_id);
    const auto it = std::find(rotation.begin(), rotation.end(), plan_id);
    if (it != rotation.end()) rotation.erase(it);
    for (auto cell = cells.begin(); cell != cells.end();) {
      auto& waiters = cell->second.waiters;
      waiters.erase(std::remove_if(waiters.begin(), waiters.end(),
                                   [&](const std::pair<int, int>& w) {
                                     return w.first == plan_id;
                                   }),
                    waiters.end());
      // An unclaimed-by-anyone cell that is not running is abandoned; a
      // running one finishes into the cache for the next submission.
      if (waiters.empty() && !cell->second.running)
        cell = cells.erase(cell);
      else
        ++cell;
    }
  }

  PlanEvent base_event(const PlanState& plan) const {
    PlanEvent event;
    event.client_id = plan.client_id;
    event.plan_id = plan.id;
    event.total = plan.total;
    event.done = plan.done;
    event.computed = plan.computed;
    event.cached_cells = plan.cached;
    return event;
  }

  /// Emits kPlanDone with the full report.  Caller removes the plan.
  void emit_plan_done(const PlanState& plan) {
    sim::SweepReport report;
    report.plan_text = plan.plan_text;
    report.master_seed = plan.master_seed;
    report.total_cells = plan.total;
    report.cells = plan.cells;
    std::ostringstream out;
    sim::write_shard_file(out, report);
    PlanEvent event = base_event(plan);
    event.kind = PlanEvent::Kind::kPlanDone;
    event.report_text = out.str();
    ++lifetime.plans_done;
    sink(std::move(event));
  }

  /// Hands a resolved cell to every live waiter.  `fresh_compute` is
  /// attributed to the first live waiter (its plan "computed" the cell);
  /// the rest share it as cached, so summing per-plan computed counters
  /// across clients counts every Driver run exactly once.
  void deliver(const std::vector<std::pair<int, int>>& waiters,
               const sim::ExperimentReport& experiment, bool fresh_compute,
               const std::string& hash) {
    bool attributed = false;
    for (const auto& [plan_id, pos] : waiters) {
      const auto pit = plans.find(plan_id);
      if (pit == plans.end()) continue;  // client detached meanwhile
      PlanState& plan = pit->second;
      auto& slot = plan.cells[static_cast<std::size_t>(pos)];
      slot.experiment = experiment;
      const bool as_computed = fresh_compute && !attributed;
      attributed |= as_computed;
      slot.from_cache = !as_computed;
      ++plan.done;
      ++(as_computed ? plan.computed : plan.cached);
      ++(as_computed ? lifetime.cells_computed : lifetime.cells_cached);
      PlanEvent event = base_event(plan);
      event.kind = PlanEvent::Kind::kCellDone;
      event.cell_index = slot.cell_index;
      event.cached = !as_computed;
      event.hash = hash;
      sink(std::move(event));
      if (plan.done == plan.total) {
        emit_plan_done(plan);
        remove_plan(plan_id);
      }
    }
    // Every waiter detached mid-compute: the work still happened (and is
    // cached for the next submission).
    if (fresh_compute && !attributed) ++lifetime.cells_computed;
  }

  /// One dispatch: pick a cell, resolve it through the shared
  /// CellExecutor, deliver or defer.  Runs on a pool worker.
  void tick() {
    std::unique_lock<std::mutex> lock(mutex);
    CellState* picked = pick_next();
    if (picked == nullptr) return;
    picked->running = true;
    const sim::SweepCell cell = picked->cell;
    const std::string key = picked->key;
    lock.unlock();

    sim::CellExecutor::Result result;
    std::string error;
    try {
      result = executor->resolve(cell);
    } catch (const std::exception& e) {
      error = e.what();
      if (error.empty()) error = "cell execution failed";
    } catch (...) {
      error = "cell execution failed with an unknown error";
    }

    lock.lock();
    const auto it = cells.find(key);
    if (it == cells.end()) return;  // unreachable; defensive
    CellState& state = it->second;
    state.running = false;

    if (!error.empty()) {
      // The cell is unrunnable (e.g. a schedule protocol rejecting the
      // topology): fail every plan that contains it.
      const auto waiters = std::move(state.waiters);
      cells.erase(it);
      for (const auto& [plan_id, pos] : waiters) {
        (void)pos;
        const auto pit = plans.find(plan_id);
        if (pit == plans.end()) continue;
        PlanEvent event = base_event(pit->second);
        event.kind = PlanEvent::Kind::kPlanFailed;
        event.error = error;
        ++lifetime.plans_failed;
        sink(std::move(event));
        remove_plan(plan_id);
      }
      return;
    }

    if (result.resolution == sim::CellExecutor::Resolution::kBusy) {
      // A live external fleet worker holds the claim: re-probe after the
      // poll interval (its store will then resolve the cell for free).
      state.deferred = true;
      state.retry_at = Clock::now() + std::chrono::milliseconds(
                                          options.claim_poll_ms);
      timer_cv.notify_all();
      return;
    }

    const bool fresh_compute =
        result.resolution != sim::CellExecutor::Resolution::kCached;
    const auto waiters = std::move(state.waiters);
    const std::string hash = state.hash;
    const sim::ExperimentReport experiment = std::move(result.experiment);
    cells.erase(it);
    deliver(waiters, experiment, fresh_compute, hash);
  }

  /// Moves due deferred cells back to the dispatch queue.
  void timer_loop() {
    std::unique_lock<std::mutex> lock(mutex);
    while (!stopping) {
      std::optional<Clock::time_point> next;
      for (const auto& [key, state] : cells)
        if (state.deferred && (!next || state.retry_at < *next))
          next = state.retry_at;
      if (!next) {
        timer_cv.wait(lock);
        continue;
      }
      timer_cv.wait_until(lock, *next);
      if (stopping) return;
      const auto now = Clock::now();
      std::size_t due = 0;
      for (auto& [key, state] : cells) {
        if (!state.deferred || state.retry_at > now) continue;
        state.deferred = false;
        retry_ready.push_back(key);
        ++due;
      }
      if (due > 0) {
        lock.unlock();
        push_ticks(due);
        lock.lock();
      }
    }
  }
};

PlanScheduler::PlanScheduler(const sim::ProtocolRegistry& registry,
                             std::string cache_dir, SchedulerOptions options,
                             EventSink sink)
    : impl_(new Impl(&registry, std::move(cache_dir), options,
                     std::move(sink))) {
  NRN_EXPECTS(options.cell_threads >= 1, "cell threads must be positive");
  NRN_EXPECTS(impl_->sink != nullptr, "scheduler needs an event sink");
  sim::CellExecutor::Options exec_options;
  exec_options.trial_threads = options.trial_threads;
  exec_options.tuning = options.tuning;
  exec_options.use_claims = true;
  exec_options.claim_ttl_seconds = options.claim_ttl_seconds;
  exec_options.heartbeat_seconds = options.heartbeat_seconds;
  impl_->executor = std::make_unique<sim::CellExecutor>(
      registry, &impl_->cache, exec_options);
  impl_->stream =
      common::TaskPool::shared().open_stream(options.cell_threads);
  impl_->timer = std::thread([this] { impl_->timer_loop(); });
}

PlanScheduler::~PlanScheduler() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->timer_cv.notify_all();
  impl_->timer.join();
  impl_->stream->cancel();
  impl_->stream->drain();  // running cells finish into the cache
  impl_->stream.reset();
  delete impl_;
}

SubmitResult PlanScheduler::submit(const sim::SweepPlan& plan,
                                   int client_id) {
  for (const auto& protocol : plan.protocols)
    if (!impl_->registry->contains(protocol))
      throw sim::SpecError("sweep plan names unknown protocol '" + protocol +
                           "'");

  // Probe the warm cache outside the scheduler lock: loads are pure reads
  // and this is the submit path's only heavy work.
  const std::size_t n = plan.cells.size();
  std::vector<std::string> keys(n);
  std::vector<std::string> hashes(n);
  std::vector<std::optional<sim::ExperimentReport>> warm(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = impl_->executor->key(plan.cells[i]);
    hashes[i] = sim::fnv1a64_hex(keys[i]);
    warm[i] = impl_->cache.load(keys[i]);
  }

  std::size_t fresh_cells = 0;
  SubmitResult result;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    Impl::PlanState plan_state;
    plan_state.id = impl_->next_plan_id++;
    plan_state.client_id = client_id;
    plan_state.plan_text = plan.text;
    plan_state.master_seed = plan.master_seed;
    plan_state.total = static_cast<int>(n);
    plan_state.cells.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      plan_state.cells[i].cell_index = plan.cells[i].index;

    // Warm cells resolve immediately; cold cells join (or create) the
    // shared per-key CellState.
    for (std::size_t i = 0; i < n; ++i) {
      if (warm[i]) {
        auto& slot = plan_state.cells[i];
        slot.experiment = std::move(*warm[i]);
        slot.from_cache = true;
        ++plan_state.done;
        ++plan_state.cached;
        ++impl_->lifetime.cells_cached;
        PlanEvent event = impl_->base_event(plan_state);
        event.kind = PlanEvent::Kind::kCellDone;
        event.cell_index = slot.cell_index;
        event.cached = true;
        event.hash = hashes[i];
        impl_->sink(std::move(event));
        continue;
      }
      auto [it, inserted] = impl_->cells.try_emplace(keys[i]);
      if (inserted) {
        it->second.cell = plan.cells[i];
        it->second.key = keys[i];
        it->second.hash = hashes[i];
        ++fresh_cells;
      }
      it->second.waiters.emplace_back(plan_state.id,
                                      static_cast<int>(i));
      plan_state.queue.push_back(keys[i]);
    }

    result.plan_id = plan_state.id;
    result.total_cells = plan_state.total;
    result.cached = plan_state.cached;
    result.done = plan_state.done == plan_state.total;
    if (result.done) {
      impl_->emit_plan_done(plan_state);
    } else {
      impl_->rotation.push_back(plan_state.id);
      impl_->plans.emplace(plan_state.id, std::move(plan_state));
    }
  }
  impl_->push_ticks(fresh_cells);
  return result;
}

void PlanScheduler::detach_client(int client_id) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<int> doomed;
  for (const auto& [id, plan] : impl_->plans)
    if (plan.client_id == client_id) doomed.push_back(id);
  for (const int id : doomed) impl_->remove_plan(id);
}

QueryResult PlanScheduler::query(const sim::SweepPlan& plan) const {
  QueryResult result;
  result.total_cells = static_cast<int>(plan.cells.size());
  sim::SweepReport report;
  report.plan_text = plan.text;
  report.master_seed = plan.master_seed;
  report.total_cells = result.total_cells;
  report.cells.resize(plan.cells.size());
  for (std::size_t i = 0; i < plan.cells.size(); ++i) {
    report.cells[i].cell_index = plan.cells[i].index;
    if (auto cached =
            impl_->cache.load(impl_->executor->key(plan.cells[i]))) {
      report.cells[i].experiment = std::move(*cached);
      report.cells[i].from_cache = true;
      ++result.cached;
    }
  }
  result.complete = result.cached == result.total_cells;
  if (result.complete) {
    std::ostringstream out;
    sim::write_shard_file(out, report);
    result.report_text = out.str();
  }
  return result;
}

SchedulerStats PlanScheduler::stats() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  SchedulerStats stats = impl_->lifetime;
  stats.plans_active = static_cast<int>(impl_->plans.size());
  for (const auto& [key, state] : impl_->cells)
    ++(state.running ? stats.cells_running : stats.cells_pending);
  return stats;
}

}  // namespace nrn::serve

// The serve daemon: a line-JSON sweep service over the fleet cache.
//
// One SweepServer owns one PlanScheduler and one poll() event loop.  The
// loop is single-threaded; all socket and wire work happens on it, while
// cell computes run on the scheduler's TaskPool stream.  Worker threads
// hand PlanEvents back through a queue plus a self-pipe byte, so the loop
// wakes, converts them to wire messages, and streams them to the
// submitting connection -- replies for one connection are totally ordered
// (`accepted` always precedes its plan's `cell_done` events, because
// submit()'s warm-cell events sit in the queue until the loop drains it).
//
// Listeners: a unix-domain socket (the default transport; filesystem
// permissions are the access control) and optionally TCP on 127.0.0.1 for
// environments without unix sockets (port 0 binds an ephemeral port,
// reported by tcp_port()).  A stale socket file from a dead daemon is
// detected by connecting to it and replaced; a live one refuses startup.
//
// Failure policy: a malformed, oversized, or unknown request gets a
// structured `error` reply and the connection lives on; a disconnect
// detaches the client's plans (running cells still finish into the cache);
// the daemon itself never exits because of anything a client sent, except
// an explicit `shutdown` request.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "serve/scheduler.hpp"
#include "serve/wire.hpp"
#include "sim/registry.hpp"

namespace nrn::serve {

struct ServerOptions {
  std::string socket_path;  ///< unix listener; empty disables
  int tcp_port = -1;        ///< 127.0.0.1 listener; -1 disables, 0 ephemeral
  std::string cache_dir;    ///< required; the shared fleet cache
  SchedulerOptions scheduler;
  std::size_t max_line_bytes = kMaxRequestBytes;  ///< inbound line cap
  /// A connection whose unread reply backlog exceeds this is dropped (a
  /// stuck client must not pin completed reports in memory forever).
  std::size_t max_output_bytes = std::size_t{64} << 20;
};

class SweepServer {
 public:
  /// Binds the listeners and starts the scheduler.  Throws SpecError on
  /// an unusable socket path / port or a live daemon on the same socket.
  SweepServer(const sim::ProtocolRegistry& registry, ServerOptions options);
  ~SweepServer();

  SweepServer(const SweepServer&) = delete;
  SweepServer& operator=(const SweepServer&) = delete;

  /// The poll loop: serves until request_stop() or a `shutdown` request.
  /// Pending replies are flushed (bounded grace) before returning.
  void run();

  /// Async-signal-safe stop: wakes the loop via the self-pipe.  Callable
  /// from any thread or a signal handler, before or during run().
  void request_stop();

  /// The bound TCP port (useful with tcp_port = 0), or -1 without TCP.
  int tcp_port() const;
  const std::string& socket_path() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace nrn::serve

// The serve tier's line-JSON wire protocol.
//
// Every message on a serve connection is one JSON object on one line
// (terminated by '\n'): a "type" string plus flat string / integer /
// boolean fields.  Flatness is deliberate -- nested values are rejected --
// so the parser is small enough to audit, a malformed request can always
// be answered with a structured error instead of a crash, and framing
// survives any payload (reports travel as JSON-escaped strings in the
// existing shard format, which carries its own checksum).
//
// docs/serve_protocol.md specifies every message type and field; this
// header is deliberately schema-free (a Message is a typed bag of fields)
// so the protocol document stays the single source of truth.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nrn::serve {

/// Protocol identifier, echoed by the daemon's hello/status replies.
inline constexpr const char* kProtocolVersion = "nrn-serve-1";

/// Default cap on one wire line.  Large enough for any sane plan, small
/// enough that a hostile client cannot balloon the daemon's line buffer.
/// Server replies (reports) are exempt -- the cap protects the daemon's
/// inbound path; clients read replies of any length.
inline constexpr std::size_t kMaxRequestBytes = 1 << 20;

/// Any wire-level violation: malformed JSON, nesting, bad escapes,
/// missing/mistyped fields, oversized lines.  The daemon converts these
/// into `error` replies; it never dies of one.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// JSON string escaping per RFC 8259: quotes, backslashes, and every
/// control character (as \uXXXX or the short forms).
std::string json_escape(std::string_view text);

/// One flat line-JSON message.  Fields keep insertion order when
/// serialized, so wire bytes are deterministic for a given build sequence.
class Message {
 public:
  Message() = default;
  explicit Message(std::string type) : type_(std::move(type)) {}

  const std::string& type() const { return type_; }

  Message& set(const std::string& key, std::string value);
  Message& set(const std::string& key, const char* value) {
    return set(key, std::string(value));
  }
  Message& set(const std::string& key, std::int64_t value);
  Message& set(const std::string& key, int value) {
    return set(key, static_cast<std::int64_t>(value));
  }
  Message& set(const std::string& key, bool value);

  bool has(const std::string& key) const;

  /// Typed accessors; throw WireError when the field is absent or has a
  /// different type (the daemon turns that into a structured error reply).
  const std::string& str(const std::string& key) const;
  std::int64_t integer(const std::string& key) const;
  bool boolean(const std::string& key) const;

  std::int64_t integer_or(const std::string& key,
                          std::int64_t fallback) const {
    return has(key) ? integer(key) : fallback;
  }

  /// One line of JSON, no trailing newline.
  std::string serialize() const;

  /// Strict parse of one line.  Throws WireError on anything but a flat
  /// object with unique keys and a string "type" field.
  static Message parse(std::string_view line);

 private:
  struct Field {
    enum class Kind { kString, kInt, kBool };
    std::string key;
    Kind kind = Kind::kString;
    std::string string_value;
    std::int64_t int_value = 0;
    bool bool_value = false;
  };

  const Field* find(const std::string& key) const;
  const Field& require(const std::string& key, Field::Kind kind) const;

  std::string type_;
  std::vector<Field> fields_;
};

}  // namespace nrn::serve

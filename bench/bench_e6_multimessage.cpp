// E6 (Lemmas 12/13): multi-message RLNC broadcast throughput.
// Decay+RLNC achieves Omega(1/log n); RobustFASTBC+RLNC achieves
// Omega(1/(log n log log n)) with a better additive D term.
#include <cmath>

#include "bench_common.hpp"
#include "core/multi_message.hpp"
#include "graph/generators.hpp"

namespace {

using namespace nrn;

double run_multi(const graph::Graph& g, core::MultiMessageParams params,
                 radio::FaultModel fm, Rng& rng) {
  core::RlncBroadcast algo(g, 0, params);
  radio::RadioNetwork net(g, fm, Rng(rng()));
  Rng algo_rng(rng());
  const auto r = algo.run(net, algo_rng);
  NRN_ENSURES(r.completed, "RLNC broadcast exceeded its budget in E6");
  return static_cast<double>(r.rounds);
}

}  // namespace

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);
  Rng rng(seed);
  const int trials = 3;
  const auto fm = radio::FaultModel::receiver(0.3);

  {
    TableWriter t(
        "E6a  Decay+RLNC on a 32-path with receiver faults p=0.3: "
        "rounds vs k (Lemma 12)",
        {"k", "median rounds", "rounds/message", "rpm/log2(n)"});
    t.add_note("seed: " + std::to_string(seed));
    t.add_note("theory: O(D log n + k log n + log^2 n) -- rounds/message "
               "approaches Theta(log n) as k grows");
    const auto g = graph::make_path(32);
    for (const std::int64_t k : {4, 8, 16, 32, 64, 128}) {
      core::MultiMessageParams params;
      params.k = static_cast<std::size_t>(k);
      const double rounds = bench::median_rounds(
          [&](Rng& r) { return run_multi(g, params, fm, r); }, trials, rng);
      t.add_row({fmt(k), fmt(rounds, 0), fmt(rounds / k, 1),
                 fmt(rounds / k / 5.0, 2)});
    }
    t.print(std::cout);
  }

  {
    TableWriter t(
        "E6b  Decay+RLNC total rounds vs n at k = 32 "
        "(Lemma 12: O((D + k) log n))",
        {"n (path)", "log2 n", "median rounds", "rounds/((D+k) log2 n)"});
    t.add_note("with k fixed, the D log n term dominates as the path "
               "grows; the normalized column should be roughly flat");
    for (const std::int32_t n : {16, 32, 64, 128}) {
      const auto g = graph::make_path(n);
      core::MultiMessageParams params;
      params.k = 32;
      const double rounds = bench::median_rounds(
          [&](Rng& r) { return run_multi(g, params, fm, r); }, trials, rng);
      t.add_row({fmt(n), fmt(std::log2(n), 1), fmt(rounds, 0),
                 fmt(rounds / ((n - 1 + 32.0) * std::log2(n)), 2)});
    }
    t.print(std::cout);
  }

  {
    TableWriter t(
        "E6c  Pattern comparison at k = 32, receiver faults p=0.3 "
        "(Lemma 12 vs Lemma 13)",
        {"topology", "Decay+RLNC rounds", "RobustFASTBC+RLNC rounds"});
    t.add_note("Robust FASTBC's pattern trades a log log n throughput "
               "factor for a D-linear (not D log n) additive term");
    struct Case {
      std::string name;
      graph::Graph g;
    };
    std::vector<Case> cases;
    cases.push_back({"path-64", graph::make_path(64)});
    cases.push_back({"grid-8x8", graph::make_grid(8, 8)});
    cases.push_back({"star-63", graph::make_star(63)});
    for (const auto& c : cases) {
      core::MultiMessageParams decay_params;
      decay_params.k = 32;
      const double dr = bench::median_rounds(
          [&](Rng& r) { return run_multi(c.g, decay_params, fm, r); }, trials,
          rng);
      core::MultiMessageParams robust_params;
      robust_params.k = 32;
      robust_params.pattern = core::MultiPattern::kRobustFastbc;
      const double rr = bench::median_rounds(
          [&](Rng& r) { return run_multi(c.g, robust_params, fm, r); },
          trials, rng);
      t.add_row({c.name, fmt(dr, 0), fmt(rr, 0)});
    }
    t.print(std::cout);
  }
  return 0;
}

// E6 (Lemmas 12/13): multi-message RLNC broadcast throughput.
// Decay+RLNC achieves Omega(1/log n); RobustFASTBC+RLNC achieves
// Omega(1/(log n log log n)) with a better additive D term.
//
// Every table is one SweepPlan over the registry's rlnc-decay/rlnc-robust
// protocols; the bench only formats the resulting grid.
#include <cmath>

#include "bench_common.hpp"

namespace {

using namespace nrn;

double completed_median_rounds(const sim::ExperimentReport& exp) {
  NRN_ENSURES(exp.all_completed(), "RLNC broadcast exceeded its budget in E6");
  return exp.median_rounds();
}

}  // namespace

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);
  const std::string common =
      " fault=receiver:0.3; trials=3; seed=" + std::to_string(seed);

  {
    TableWriter t(
        "E6a  Decay+RLNC on a 32-path with receiver faults p=0.3: "
        "rounds vs k (Lemma 12)",
        {"k", "median rounds", "rounds/message", "rpm/log2(n)"});
    t.add_note("seed: " + std::to_string(seed));
    t.add_note("theory: O(D log n + k log n + log^2 n) -- rounds/message "
               "approaches Theta(log n) as k grows");
    const auto report = bench::run_sweep(
        "topology=path:32; protocols=rlnc-decay; k={4..128*2};" + common);
    for (const auto& cell : report.cells) {
      const std::int64_t k = cell.experiment.scenario.k;
      const double rounds = completed_median_rounds(cell.experiment);
      t.add_row({fmt(k), fmt(rounds, 0), fmt(rounds / k, 1),
                 fmt(rounds / k / 5.0, 2)});
    }
    t.print(std::cout);
  }

  {
    TableWriter t(
        "E6b  Decay+RLNC total rounds vs n at k = 32 "
        "(Lemma 12: O((D + k) log n))",
        {"n (path)", "log2 n", "median rounds", "rounds/((D+k) log2 n)"});
    t.add_note("with k fixed, the D log n term dominates as the path "
               "grows; the normalized column should be roughly flat");
    const auto report = bench::run_sweep(
        "topology=path:{16..128*2}; protocols=rlnc-decay; k=32;" + common);
    for (const auto& cell : report.cells) {
      const double n = static_cast<double>(cell.experiment.node_count);
      const double rounds = completed_median_rounds(cell.experiment);
      t.add_row({fmt(cell.experiment.node_count), fmt(std::log2(n), 1),
                 fmt(rounds, 0),
                 fmt(rounds / ((n - 1 + 32.0) * std::log2(n)), 2)});
    }
    t.print(std::cout);
  }

  {
    TableWriter t(
        "E6c  Pattern comparison at k = 32, receiver faults p=0.3 "
        "(Lemma 12 vs Lemma 13)",
        {"topology", "Decay+RLNC rounds", "RobustFASTBC+RLNC rounds"});
    t.add_note("Robust FASTBC's pattern trades a log log n throughput "
               "factor for a D-linear (not D log n) additive term");
    const auto report = bench::run_sweep(
        "topology=path:64,grid:8x8,star:63; "
        "protocols=rlnc-decay,rlnc-robust; k=32;" + common);
    for (const std::string topology : {"path:64", "grid:8x8", "star:63"}) {
      const double dr = completed_median_rounds(bench::sweep_cell(
          report, topology, "receiver:0.3", 32, "rlnc-decay"));
      const double rr = completed_median_rounds(bench::sweep_cell(
          report, topology, "receiver:0.3", 32, "rlnc-robust"));
      t.add_row({topology, fmt(dr, 0), fmt(rr, 0)});
    }
    t.print(std::cout);
  }
  return 0;
}

// Shared plumbing for the experiment benches.
//
// Every bench binary reproduces one experiment from DESIGN.md's index,
// printing a titled table with the seed and parameters in the header so the
// run can be regenerated exactly.  Benches are plain executables (not
// google-benchmark) because they measure *round complexity* of randomized
// schedules, not wall-clock time; the micro benches in bench_micro_engine
// cover wall-clock performance.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace nrn::bench {

/// Fixed seed for all experiment tables; change on the command line by
/// passing a decimal seed as argv[1].
inline constexpr std::uint64_t kDefaultSeed = 20170721;  // PODC'17 week

inline std::uint64_t seed_from_args(int argc, char** argv) {
  if (argc >= 2) return std::strtoull(argv[1], nullptr, 10);
  return kDefaultSeed;
}

/// Median of `trials` runs of a rounds-valued experiment.
template <typename Fn>
double median_rounds(Fn&& run_once, int trials, Rng& rng) {
  std::vector<double> rounds;
  rounds.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    Rng trial_rng = rng.split(static_cast<std::uint64_t>(t));
    rounds.push_back(run_once(trial_rng));
  }
  return quantile(rounds, 0.5);
}

}  // namespace nrn::bench

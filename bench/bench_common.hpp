// Shared plumbing for the experiment benches.
//
// Every bench binary reproduces one experiment from DESIGN.md's index,
// printing a titled table with the seed and parameters in the header so the
// run can be regenerated exactly.  Benches are plain executables (not
// google-benchmark) because they measure *round complexity* of randomized
// schedules, not wall-clock time; the micro benches in bench_micro_engine
// cover wall-clock performance.
//
// Experiment cells run through the library's Scenario / ProtocolRegistry /
// Driver API: a cell is "median rounds of protocol P on scenario S over T
// trials", with the scenario seed drawn from the bench's master Rng so the
// whole table reproduces from one command-line seed.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/sim.hpp"

namespace nrn::bench {

/// Fixed seed for all experiment tables; change on the command line by
/// passing a decimal seed as argv[1].
inline constexpr std::uint64_t kDefaultSeed = 20170721;  // PODC'17 week

inline std::uint64_t seed_from_args(int argc, char** argv) {
  if (argc < 2) return kDefaultSeed;
  try {
    return sim::parse_spec_uint(argv[1], "bench seed");
  } catch (const sim::SpecError& e) {
    std::cerr << "error: " << e.what() << "\n";
    std::exit(2);
  }
}

/// Median of `trials` runs of a rounds-valued experiment (for benches whose
/// schedules are not registry protocols, e.g. the star/WCT schedule gaps).
template <typename Fn>
double median_rounds(Fn&& run_once, int trials, Rng& rng) {
  std::vector<double> rounds;
  rounds.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    Rng trial_rng = rng.split(static_cast<std::uint64_t>(t));
    rounds.push_back(run_once(trial_rng));
  }
  return quantile(rounds, 0.5);
}

/// One experiment cell through the Driver: median rounds of `protocol` on
/// (topology, fault) over `trials` trials.  The scenario seed is drawn from
/// `rng`, so consecutive cells get independent but reproducible streams.
/// Fails loudly (contract violation) if any trial misses its round budget.
inline double driver_median_rounds(const std::string& topology,
                                   const std::string& fault,
                                   const std::string& protocol, int trials,
                                   Rng& rng,
                                   const sim::DriverOptions& options = {},
                                   std::int64_t k = 1) {
  const auto scenario =
      sim::Scenario::parse(topology, fault, /*source=*/0, k, rng());
  const auto report = sim::Driver().run(scenario, protocol, trials, options);
  NRN_ENSURES(report.all_completed(),
              protocol + " exceeded its budget on " + topology);
  return report.median_rounds();
}

/// Spec string for a receiver-fault model, "none" when p == 0.
inline std::string receiver_fault(double p) {
  return p == 0.0 ? "none" : "receiver:" + std::to_string(p);
}

/// Spec string for a sender-fault model, "none" when p == 0.
inline std::string sender_fault(double p) {
  return p == 0.0 ? "none" : "sender:" + std::to_string(p);
}

}  // namespace nrn::bench

// Shared plumbing for the experiment benches.
//
// Every bench binary reproduces one experiment from DESIGN.md's index,
// printing a titled table with the seed and parameters in the header so the
// run can be regenerated exactly.  Benches are plain executables (not
// google-benchmark) because they measure *round complexity* of randomized
// schedules, not wall-clock time; the micro benches in bench_micro_engine
// cover wall-clock performance.
//
// Experiment cells run through the library's Scenario / ProtocolRegistry /
// Driver API: a cell is "median rounds of protocol P on scenario S over T
// trials", with the scenario seed drawn from the bench's master Rng so the
// whole table reproduces from one command-line seed.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/sim.hpp"

namespace nrn::bench {

/// Fixed seed for all experiment tables; change on the command line by
/// passing a decimal seed as argv[1].
inline constexpr std::uint64_t kDefaultSeed = 20170721;  // PODC'17 week

inline std::uint64_t seed_from_args(int argc, char** argv) {
  if (argc < 2) return kDefaultSeed;
  try {
    return sim::parse_spec_uint(argv[1], "bench seed");
  } catch (const sim::SpecError& e) {
    std::cerr << "error: " << e.what() << "\n";
    std::exit(2);
  }
}

/// Median of `trials` runs of a rounds-valued experiment (for probes that
/// are not broadcast runs, e.g. structural measurements).
template <typename Fn>
double median_rounds(Fn&& run_once, int trials, Rng& rng) {
  std::vector<double> rounds;
  rounds.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    Rng trial_rng = rng.split(static_cast<std::uint64_t>(t));
    rounds.push_back(run_once(trial_rng));
  }
  return quantile(rounds, 0.5);
}

/// One experiment cell through the Driver: median rounds of `protocol` on
/// (topology, fault) over `trials` trials.  The scenario seed is drawn from
/// `rng`, so consecutive cells get independent but reproducible streams.
/// Fails loudly (contract violation) if any trial misses its round budget.
inline double driver_median_rounds(const std::string& topology,
                                   const std::string& fault,
                                   const std::string& protocol, int trials,
                                   Rng& rng,
                                   const sim::DriverOptions& options = {},
                                   std::int64_t k = 1) {
  const auto scenario =
      sim::Scenario::parse(topology, fault, /*source=*/0, k, rng());
  const auto report = sim::Driver().run(scenario, protocol, trials, options);
  NRN_ENSURES(report.all_completed(),
              protocol + " exceeded its budget on " + topology);
  return report.median_rounds();
}

/// Parses and runs a sweep plan through the extended registry (builtins
/// plus the schedule protocols).  This is the bench-side grid runner: one
/// plan per experiment table, no bespoke trial loops.
inline sim::SweepReport run_sweep(const std::string& plan_text) {
  const auto plan = sim::SweepPlan::parse(plan_text);
  return sim::SweepRunner(sim::extended_registry()).run(plan);
}

/// The report's cell for (topology, fault, k, protocol); fails loudly when
/// the plan did not produce it.
inline const sim::ExperimentReport& sweep_cell(const sim::SweepReport& report,
                                               const std::string& topology,
                                               const std::string& fault,
                                               std::int64_t k,
                                               const std::string& protocol) {
  for (const auto& cell : report.cells) {
    const auto& exp = cell.experiment;
    if (exp.scenario.topology.text == topology &&
        exp.scenario.fault_text == fault && exp.scenario.k == k &&
        exp.protocol == protocol)
      return exp;
  }
  NRN_EXPECTS(false, "sweep report has no cell " + topology + "/" + fault +
                         "/k=" + std::to_string(k) + "/" + protocol);
  std::abort();  // unreachable; NRN_EXPECTS throws
}

/// Mean measured throughput (messages/round) over a cell's completed
/// trials, and whether every trial completed -- the transform benches'
/// success criterion.
struct ThroughputSummary {
  double throughput = 0.0;
  bool success = false;
};

inline ThroughputSummary throughput_of(const sim::ExperimentReport& exp) {
  ThroughputSummary out;
  int completed = 0;
  double total = 0.0;
  for (const auto& trial : exp.trials) {
    if (!trial.run.completed) continue;
    ++completed;
    total += static_cast<double>(trial.run.messages()) /
             static_cast<double>(trial.run.rounds());
  }
  out.success = completed == static_cast<int>(exp.trials.size());
  out.throughput = completed > 0 ? total / completed : 0.0;
  return out;
}

/// Median rounds-per-message over a cell's trials -- the unit the star/WCT
/// gap tables compare across schedules.
inline double median_rpm_of(const sim::ExperimentReport& exp) {
  std::vector<double> rpm;
  rpm.reserve(exp.trials.size());
  for (const auto& trial : exp.trials)
    rpm.push_back(trial.run.rounds_per_message());
  return rpm.empty() ? 0.0 : quantile(rpm, 0.5);
}

/// Spec string for a receiver-fault model, "none" when p == 0.
inline std::string receiver_fault(double p) {
  return p == 0.0 ? "none" : "receiver:" + std::to_string(p);
}

/// Spec string for a sender-fault model, "none" when p == 0.
inline std::string sender_fault(double p) {
  return p == 0.0 ? "none" : "sender:" + std::to_string(p);
}

}  // namespace nrn::bench

// E3 (Lemma 9): Decay stays robust under faults -- round count scales as
// O(log n / (1-p) * (D + log n)) for both fault models.
#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace nrn;
  const auto seed = bench::seed_from_args(argc, argv);
  Rng rng(seed);
  const int trials = 9;

  {
    TableWriter t(
        "E3a  Decay on a 512-path: rounds vs fault probability p (Lemma 9)",
        {"p", "receiver-fault rounds", "sender-fault rounds",
         "recv normalized by 1/(1-p)", "send normalized by 1/(1-p)"});
    t.add_note("seed: " + std::to_string(seed) +
               ", trials: " + std::to_string(trials));
    t.add_note("theory: rounds ~ C / (1-p); the normalized columns should "
               "be roughly flat");
    for (const double p : {0.0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.8, 0.9}) {
      const double rr = bench::driver_median_rounds(
          "path:512", bench::receiver_fault(p), "decay", trials, rng);
      const double sr = bench::driver_median_rounds(
          "path:512", bench::sender_fault(p), "decay", trials, rng);
      t.add_row({fmt(p, 1), fmt(rr, 0), fmt(sr, 0), fmt(rr * (1 - p), 0),
                 fmt(sr * (1 - p), 0)});
    }
    t.print(std::cout);
  }

  {
    TableWriter t("E3b  Decay with receiver faults p=0.5: rounds vs D",
                  {"n=D+1", "median rounds", "rounds/(D log n)"});
    t.add_note("theory: linear in D with a log n * 1/(1-p) slope");
    std::vector<double> xs, ys;
    for (const std::int32_t n : {64, 128, 256, 512, 1024}) {
      const double rounds = bench::driver_median_rounds(
          "path:" + std::to_string(n), "receiver:0.5", "decay", trials, rng);
      xs.push_back(n);
      ys.push_back(rounds);
      t.add_row({fmt(n), fmt(rounds, 0),
                 fmt(rounds / ((n - 1) * std::log2(n)), 3)});
    }
    const auto fit = fit_power_law(xs, ys);
    t.add_note("power-law fit exponent (expect ~1): " + fmt(fit.slope, 3));
    t.print(std::cout);
  }
  return 0;
}

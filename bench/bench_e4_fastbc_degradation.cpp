// E4 (Lemma 10): FASTBC degrades under faults --
// Theta(p/(1-p) D log n + D/(1-p)) on a path.
//
// Two views:
//   (a) fixed path, sweep p: rounds should track 2D + p/(1-p) * D * W
//       where W is the effective per-failure wait;
//   (b) fixed p, sweep the schedule period (rank modulus): the per-failure
//       wait is proportional to the period until Decay's slow-round rescue
//       (itself Theta(log n)) caps it.
#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace nrn;
  const auto seed = bench::seed_from_args(argc, argv);
  Rng rng(seed);
  const int trials = 7;

  {
    TableWriter t("E4a  FASTBC on a 512-path: rounds vs p (Lemma 10)",
                  {"p", "median rounds", "rounds/D", "slowdown vs p=0"});
    t.add_note("seed: " + std::to_string(seed));
    t.add_note("theory: rounds/D ~ 2 + (p/(1-p)) * Theta(log n)");
    double base = 0.0;
    for (const double p : {0.0, 0.1, 0.3, 0.5, 0.7, 0.8}) {
      const double rounds = bench::driver_median_rounds(
          "path:512", bench::receiver_fault(p), "fastbc", trials, rng);
      if (base == 0.0) base = rounds;
      t.add_row({fmt(p, 1), fmt(rounds, 0), fmt(rounds / 511.0, 1),
                 fmt(rounds / base, 2) + "x"});
    }
    t.print(std::cout);
  }

  {
    TableWriter t(
        "E4b  FASTBC noisy path: rounds vs schedule period (p = 0.5)",
        {"rank modulus", "period (fast rounds)", "median rounds",
         "rounds/D"});
    t.add_note("per-failure wait ~ period until the Decay slow rounds "
               "(Theta(log n)) rescue stalled messages");
    for (const std::int32_t mod : {1, 2, 4, 8, 16, 32}) {
      sim::DriverOptions options;
      options.tuning.rank_modulus = mod;
      const double rounds = bench::driver_median_rounds(
          "path:256", "receiver:0.5", "fastbc", trials, rng, options);
      t.add_row({fmt(mod), fmt(6 * mod), fmt(rounds, 0),
                 fmt(rounds / 255.0, 1)});
    }
    t.print(std::cout);
  }

  {
    TableWriter t("E4c  FASTBC noisy: rounds vs D at p = 0.5",
                  {"n=D+1", "median rounds", "rounds/(D log n)"});
    t.add_note("theory: slope per level grows with log n (Lemma 10), so "
               "rounds/(D log n) should be roughly flat");
    std::vector<double> xs, ys;
    for (const std::int32_t n : {64, 128, 256, 512, 1024}) {
      const double rounds = bench::driver_median_rounds(
          "path:" + std::to_string(n), "receiver:0.5", "fastbc", trials, rng);
      xs.push_back(n);
      ys.push_back(rounds);
      t.add_row({fmt(n), fmt(rounds, 0),
                 fmt(rounds / ((n - 1) * std::log2(n)), 3)});
    }
    const auto fit = fit_power_law(xs, ys);
    t.add_note("power-law fit exponent (expect slightly above 1): " +
               fmt(fit.slope, 3));
    t.print(std::cout);
  }
  return 0;
}

// E7 (Lemmas 15/16, Theorem 17): the Theta(log n) coding gap on the star
// with receiver faults and adaptive routing.
//
// Every table is one SweepPlan over the registry's star-* schedule
// protocols (star-adaptive / star-nonadaptive / star-coding); the bench
// only formats the resulting grid.  The per-protocol gap-vs-theory columns
// (measured rounds / registered bound) come straight off the
// ExperimentReport; the routing-vs-coding gap is the ratio of two cells.
#include <cmath>

#include "bench_common.hpp"

namespace {

using namespace nrn;

}  // namespace

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);

  {
    const std::int64_t k = 256;
    TableWriter t(
        "E7a  Star with receiver faults p=0.5: adaptive routing vs RS "
        "coding (Theorem 17)",
        {"leaves n", "log2 n", "routing rpm", "coding rpm", "routing gap",
         "coding gap", "gap", "gap/log2(n)"});
    t.add_note("seed: " + std::to_string(seed) + ", k: " + std::to_string(k) +
               ", trials: 5");
    t.add_note("theory: routing rpm = Theta(log n) (Lemma 15), coding rpm "
               "= Theta(1) (Lemma 16); gap/log2(n) should be ~constant");
    t.add_note("routing/coding gap columns are measured rounds / the "
               "registered per-protocol bound (should stay ~constant)");
    const auto report = bench::run_sweep(
        "topology=star:{64..4096*2}; fault=receiver:0.5; k=256; "
        "protocols=star-adaptive,star-coding; trials=5; seed=" +
        std::to_string(seed));
    for (const std::int64_t n : {64, 128, 256, 512, 1024, 2048, 4096}) {
      const std::string topology = "star:" + std::to_string(n);
      const auto& routing = bench::sweep_cell(report, topology,
                                              "receiver:0.5", k,
                                              "star-adaptive");
      const auto& coding = bench::sweep_cell(report, topology,
                                             "receiver:0.5", k,
                                             "star-coding");
      NRN_ENSURES(routing.all_completed(), "star routing failed in E7a");
      NRN_ENSURES(coding.all_completed(), "star coding failed in E7a");
      const double routing_rpm = bench::median_rpm_of(routing);
      const double coding_rpm = bench::median_rpm_of(coding);
      const double gap = routing_rpm / coding_rpm;
      t.add_row({fmt(n), fmt(std::log2(static_cast<double>(n)), 1),
                 fmt(routing_rpm, 2), fmt(coding_rpm, 2),
                 fmt(routing.gap(), 2), fmt(coding.gap(), 2), fmt(gap, 2),
                 fmt(gap / std::log2(static_cast<double>(n)), 3)});
    }
    // The log-linear regression now lives in the report layer
    // (sim::sweep_fits), so this table, the sweep CSV/JSON emitters, and
    // any fleet or serve run of the same plan print identical
    // coefficients.  The axis is log2(node count) = log2(leaves + 1).
    for (const auto& fit : sim::sweep_fits(report)) {
      if (fit.metric != "median_rpm") continue;
      const std::string lemma =
          fit.protocol == "star-adaptive"
              ? "; Lemma 15 predicts slope ~1"
              : "; Lemma 16 predicts slope ~0";
      t.add_note(fit.protocol + " rpm ~ " + fmt(fit.fit.intercept, 2) +
                 " + " + fmt(fit.fit.slope, 2) + " * log2(nodes)  (r2 " +
                 fmt(fit.fit.r2, 3) + lemma + ")");
    }
    t.print(std::cout);
  }

  {
    const std::int64_t k_small = 64;
    TableWriter t(
        "E7b  Adaptivity ablation on a 1024-star (non-adaptive routing "
        "needs log k repetition)",
        {"schedule", "rounds/message", "gap vs bound", "success"});
    const auto report = bench::run_sweep(
        "topology=star:1024; fault=receiver:0.5; k=64; "
        "protocols=star-adaptive,star-nonadaptive,star-coding; trials=1; "
        "seed=" + std::to_string(seed + 1));
    for (const char* protocol :
         {"star-adaptive", "star-nonadaptive", "star-coding"}) {
      const auto& exp = bench::sweep_cell(report, "star:1024",
                                          "receiver:0.5", k_small, protocol);
      t.add_row({protocol, fmt(bench::median_rpm_of(exp), 2),
                 fmt(exp.gap(), 2), verdict(exp.all_completed())});
    }
    t.print(std::cout);
  }

  {
    const std::int64_t k = 256;
    TableWriter t(
        "E7c  Sender faults make the star cheap for routing too "
        "(the Theorem 28 asymmetry)",
        {"fault model", "routing rpm", "coding rpm", "gap"});
    const auto report = bench::run_sweep(
        "topology=star:1024; fault=receiver:0.5,sender:0.5; k=256; "
        "protocols=star-adaptive,star-coding; trials=5; seed=" +
        std::to_string(seed + 2));
    for (const char* fault : {"receiver:0.5", "sender:0.5"}) {
      const auto& routing =
          bench::sweep_cell(report, "star:1024", fault, k, "star-adaptive");
      const auto& coding =
          bench::sweep_cell(report, "star:1024", fault, k, "star-coding");
      NRN_ENSURES(routing.all_completed(), "star routing failed in E7c");
      NRN_ENSURES(coding.all_completed(), "star coding failed in E7c");
      const double routing_rpm = bench::median_rpm_of(routing);
      const double coding_rpm = bench::median_rpm_of(coding);
      t.add_row({fault, fmt(routing_rpm, 2), fmt(coding_rpm, 2),
                 fmt(routing_rpm / coding_rpm, 2)});
    }
    t.print(std::cout);
  }
  return 0;
}

// E7 (Lemmas 15/16, Theorem 17): the Theta(log n) coding gap on the star
// with receiver faults and adaptive routing.
#include <cmath>

#include "bench_common.hpp"
#include "core/star_schedules.hpp"
#include "core/throughput.hpp"
#include "topology/star.hpp"

namespace {

using namespace nrn;

}  // namespace

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);
  Rng rng(seed);
  const int trials = 5;
  const double p = 0.5;
  const std::int64_t k = 256;

  {
    TableWriter t(
        "E7a  Star with receiver faults p=0.5: adaptive routing vs RS "
        "coding (Theorem 17)",
        {"leaves n", "log2 n", "routing rpm", "coding rpm", "gap",
         "gap/log2(n)"});
    t.add_note("seed: " + std::to_string(seed) + ", k: " + std::to_string(k) +
               ", trials: " + std::to_string(trials));
    t.add_note("theory: routing rpm = Theta(log n) (Lemma 15), coding rpm "
               "= Theta(1) (Lemma 16); gap/log2(n) should be ~constant");
    std::vector<double> ns, routing_rpms, coding_rpms;
    for (const std::int32_t n : {64, 128, 256, 512, 1024, 2048, 4096}) {
      const auto star = topology::make_star(n);
      const double routing = bench::median_rounds(
          [&](Rng& r) {
            radio::RadioNetwork net(star.graph, radio::FaultModel::receiver(p),
                                    Rng(r()));
            const auto res =
                core::run_star_adaptive_routing(net, star, k, 1'000'000'000);
            NRN_ENSURES(res.completed, "star routing failed in E7");
            return static_cast<double>(res.rounds);
          },
          trials, rng);
      const double coding = bench::median_rounds(
          [&](Rng& r) {
            radio::RadioNetwork net(star.graph, radio::FaultModel::receiver(p),
                                    Rng(r()));
            const auto res = core::run_star_rs_coding(
                net, star, k, core::rs_packet_count(k, n + 1, p));
            NRN_ENSURES(res.completed, "star coding failed in E7");
            return static_cast<double>(res.rounds);
          },
          trials, rng);
      const double gap = routing / coding;
      ns.push_back(n);
      routing_rpms.push_back(routing / k);
      coding_rpms.push_back(coding / k);
      t.add_row({fmt(n), fmt(std::log2(n), 1), fmt(routing / k, 2),
                 fmt(coding / k, 2), fmt(gap, 2),
                 fmt(gap / std::log2(n), 3)});
    }
    const auto routing_fit = fit_log_linear(ns, routing_rpms);
    const auto coding_fit = fit_log_linear(ns, coding_rpms);
    t.add_note("routing rpm ~ " + fmt(routing_fit.intercept, 2) + " + " +
               fmt(routing_fit.slope, 2) + " * log2(n)  (r2 " +
               fmt(routing_fit.r2, 3) + "; Lemma 15 predicts slope ~1)");
    t.add_note("coding rpm ~ " + fmt(coding_fit.intercept, 2) + " + " +
               fmt(coding_fit.slope, 2) + " * log2(n)  (Lemma 16 predicts "
               "slope ~0)");
    t.print(std::cout);
  }

  {
    TableWriter t(
        "E7b  Adaptivity ablation on a 1024-star (non-adaptive routing "
        "needs log k repetition)",
        {"schedule", "rounds/message", "success"});
    const auto star = topology::make_star(1024);
    const std::int64_t k_small = 64;
    {
      radio::RadioNetwork net(star.graph, radio::FaultModel::receiver(p),
                              Rng(rng()));
      const auto res =
          core::run_star_adaptive_routing(net, star, k_small, 1'000'000'000);
      t.add_row({"adaptive routing", fmt(res.rounds_per_message(), 2),
                 verdict(res.completed)});
    }
    {
      // Repetitions for per-leaf, per-message failure below 1/(n k).
      const auto reps = static_cast<std::int64_t>(
          std::ceil(std::log2(1024.0 * 64 * 64)));
      radio::RadioNetwork net(star.graph, radio::FaultModel::receiver(p),
                              Rng(rng()));
      const auto res =
          core::run_star_nonadaptive_routing(net, star, k_small, reps);
      t.add_row({"non-adaptive routing (" + std::to_string(reps) + " reps)",
                 fmt(res.rounds_per_message(), 2), verdict(res.completed)});
    }
    {
      radio::RadioNetwork net(star.graph, radio::FaultModel::receiver(p),
                              Rng(rng()));
      const auto res = core::run_star_rs_coding(
          net, star, k_small, core::rs_packet_count(k_small, 1025, p));
      t.add_row({"RS coding", fmt(res.rounds_per_message(), 2),
                 verdict(res.completed)});
    }
    t.print(std::cout);
  }

  {
    TableWriter t(
        "E7c  Sender faults make the star cheap for routing too "
        "(the Theorem 28 asymmetry)",
        {"fault model", "routing rpm", "coding rpm", "gap"});
    const auto star = topology::make_star(1024);
    for (const bool sender : {false, true}) {
      const auto fm = sender ? radio::FaultModel::sender(p)
                             : radio::FaultModel::receiver(p);
      const double routing = bench::median_rounds(
          [&](Rng& r) {
            radio::RadioNetwork net(star.graph, fm, Rng(r()));
            const auto res =
                core::run_star_adaptive_routing(net, star, k, 1'000'000'000);
            NRN_ENSURES(res.completed, "star routing failed in E7c");
            return static_cast<double>(res.rounds);
          },
          trials, rng);
      const double coding = bench::median_rounds(
          [&](Rng& r) {
            radio::RadioNetwork net(star.graph, fm, Rng(r()));
            const auto res = core::run_star_rs_coding(
                net, star, k, core::rs_packet_count(k, 1025, p));
            NRN_ENSURES(res.completed, "star coding failed in E7c");
            return static_cast<double>(res.rounds);
          },
          trials, rng);
      t.add_row({sender ? "sender p=0.5" : "receiver p=0.5",
                 fmt(routing / k, 2), fmt(coding / k, 2),
                 fmt(routing / coding, 2)});
    }
    t.print(std::cout);
  }
  return 0;
}

// E2 (Lemmas 7/8, Figure 1): FASTBC in the faultless model runs in
// D + O(log^2 n) rounds on a known topology, and the GBST machinery obeys
// Lemma 7 (rmax <= ceil(log2 n)).
#include <cmath>

#include "bench_common.hpp"
#include "core/decay.hpp"
#include "core/fastbc.hpp"
#include "graph/generators.hpp"
#include "trees/gbst.hpp"

namespace {

using namespace nrn;

}  // namespace

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);
  Rng rng(seed);
  const int trials = 7;

  {
    TableWriter t(
        "E2a  FASTBC vs Decay, faultless paths (Lemma 8 vs Lemma 6)",
        {"n=D+1", "FASTBC rounds", "Decay rounds", "FASTBC/(2D)",
         "Decay/(D log n)"});
    t.add_note("seed: " + std::to_string(seed));
    t.add_note("theory: FASTBC = D + O(log^2 n) (2D here: fast rounds are "
               "even rounds only); Decay = Theta(D log n)");
    for (const std::int32_t n : {128, 256, 512, 1024, 2048}) {
      const auto g = graph::make_path(n);
      core::Fastbc fastbc(g, 0);
      const double fr = bench::median_rounds(
          [&](Rng& r) {
            radio::RadioNetwork net(g, radio::FaultModel::faultless(),
                                    Rng(r()));
            Rng algo(r());
            const auto res = fastbc.run(net, algo);
            NRN_ENSURES(res.completed, "FASTBC failed in E2");
            return static_cast<double>(res.rounds);
          },
          trials, rng);
      const double dr = bench::median_rounds(
          [&](Rng& r) {
            radio::RadioNetwork net(g, radio::FaultModel::faultless(),
                                    Rng(r()));
            Rng algo(r());
            const auto res = core::Decay().run(net, 0, algo);
            NRN_ENSURES(res.completed, "Decay failed in E2");
            return static_cast<double>(res.rounds);
          },
          trials, rng);
      t.add_row({fmt(n), fmt(fr, 0), fmt(dr, 0),
                 fmt(fr / (2.0 * (n - 1)), 2),
                 fmt(dr / ((n - 1) * std::log2(n)), 2)});
    }
    t.print(std::cout);
  }

  {
    TableWriter t("E2b  Lemma 7: realized max rank vs ceil(log2 n)",
                  {"topology", "n", "max rank", "ceil(log2 n)", "within bound"});
    Rng grng(seed ^ 0x777);
    struct Case {
      std::string name;
      graph::Graph g;
    };
    std::vector<Case> cases;
    cases.push_back({"path-1024", graph::make_path(1024)});
    cases.push_back({"star-1023", graph::make_star(1023)});
    cases.push_back({"grid-32x32", graph::make_grid(32, 32)});
    cases.push_back({"binary-tree-1023", graph::make_binary_tree(1023)});
    cases.push_back({"caterpillar-128x3", graph::make_caterpillar(128, 3)});
    cases.push_back({"gnp-1024-0.01", graph::make_connected_gnp(1024, 0.01, grng)});
    cases.push_back({"random-tree-1024", graph::make_random_tree(1024, grng)});
    for (const auto& c : cases) {
      trees::GbstBuildStats stats;
      const auto tree = trees::build_gbst(c.g, 0, &stats);
      NRN_ENSURES(stats.violations_remaining == 0, "GBST failed in E2b");
      const auto bound = static_cast<std::int32_t>(
          std::ceil(std::log2(c.g.node_count())));
      t.add_row({c.name, fmt(c.g.node_count()), fmt(tree.max_rank),
                 fmt(bound), verdict(tree.max_rank <= bound)});
    }
    t.print(std::cout);
  }

  {
    TableWriter t("E2c  FASTBC on mixed faultless topologies",
                  {"topology", "n", "D", "rounds", "rounds - 2D"});
    t.add_note("additive overhead (rounds - 2D) should be polylog, not "
               "linear in n");
    Rng grng(seed ^ 0x888);
    struct Case {
      std::string name;
      graph::Graph g;
      std::int32_t diameter;
    };
    std::vector<Case> cases;
    cases.push_back({"grid-24x24", graph::make_grid(24, 24), 46});
    cases.push_back({"caterpillar-200x2", graph::make_caterpillar(200, 2), 201});
    cases.push_back({"lollipop-32+256", graph::make_lollipop(32, 256), 257});
    for (const auto& c : cases) {
      core::Fastbc fastbc(c.g, 0);
      const double rounds = bench::median_rounds(
          [&](Rng& r) {
            radio::RadioNetwork net(c.g, radio::FaultModel::faultless(),
                                    Rng(r()));
            Rng algo(r());
            const auto res = fastbc.run(net, algo);
            NRN_ENSURES(res.completed, "FASTBC failed in E2c");
            return static_cast<double>(res.rounds);
          },
          trials, rng);
      t.add_row({c.name, fmt(c.g.node_count()), fmt(c.diameter),
                 fmt(rounds, 0), fmt(rounds - 2.0 * c.diameter, 0)});
    }
    t.print(std::cout);
  }
  return 0;
}

// E2 (Lemmas 7/8, Figure 1): FASTBC in the faultless model runs in
// D + O(log^2 n) rounds on a known topology, and the GBST machinery obeys
// Lemma 7 (rmax <= ceil(log2 n)).
#include <cmath>

#include "bench_common.hpp"
#include "trees/gbst.hpp"

int main(int argc, char** argv) {
  using namespace nrn;
  const auto seed = bench::seed_from_args(argc, argv);
  Rng rng(seed);
  const int trials = 7;

  {
    TableWriter t(
        "E2a  FASTBC vs Decay, faultless paths (Lemma 8 vs Lemma 6)",
        {"n=D+1", "FASTBC rounds", "Decay rounds", "FASTBC/(2D)",
         "Decay/(D log n)"});
    t.add_note("seed: " + std::to_string(seed));
    t.add_note("theory: FASTBC = D + O(log^2 n) (2D here: fast rounds are "
               "even rounds only); Decay = Theta(D log n)");
    for (const std::int32_t n : {128, 256, 512, 1024, 2048}) {
      const std::string topo = "path:" + std::to_string(n);
      const double fr =
          bench::driver_median_rounds(topo, "none", "fastbc", trials, rng);
      const double dr =
          bench::driver_median_rounds(topo, "none", "decay", trials, rng);
      t.add_row({fmt(n), fmt(fr, 0), fmt(dr, 0),
                 fmt(fr / (2.0 * (n - 1)), 2),
                 fmt(dr / ((n - 1) * std::log2(n)), 2)});
    }
    t.print(std::cout);
  }

  {
    TableWriter t("E2b  Lemma 7: realized max rank vs ceil(log2 n)",
                  {"topology", "n", "max rank", "ceil(log2 n)", "within bound"});
    Rng grng(seed ^ 0x777);
    // GBST build stats are tree machinery, not a protocol run; the graphs
    // still come from the scenario grammar.
    for (const std::string spec :
         {"path:1024", "star:1023", "grid:32x32", "binary-tree:1023",
          "caterpillar:128:3", "gnp:1024:0.01", "tree:1024"}) {
      const auto g = sim::TopologySpec::parse(spec).build(grng);
      trees::GbstBuildStats stats;
      const auto tree = trees::build_gbst(g, 0, &stats);
      NRN_ENSURES(stats.violations_remaining == 0, "GBST failed in E2b");
      const auto bound = static_cast<std::int32_t>(
          std::ceil(std::log2(g.node_count())));
      t.add_row({spec, fmt(g.node_count()), fmt(tree.max_rank),
                 fmt(bound), verdict(tree.max_rank <= bound)});
    }
    t.print(std::cout);
  }

  {
    TableWriter t("E2c  FASTBC on mixed faultless topologies",
                  {"topology", "n", "D", "rounds", "rounds - 2D"});
    t.add_note("additive overhead (rounds - 2D) should be polylog, not "
               "linear in n");
    struct Case {
      std::string spec;
      std::int32_t n;
      std::int32_t diameter;
    };
    for (const Case& c : {Case{"grid:24x24", 576, 46},
                          Case{"caterpillar:200:2", 600, 201},
                          Case{"lollipop:32:256", 288, 257}}) {
      const double rounds =
          bench::driver_median_rounds(c.spec, "none", "fastbc", trials, rng);
      t.add_row({c.spec, fmt(c.n), fmt(c.diameter), fmt(rounds, 0),
                 fmt(rounds - 2.0 * c.diameter, 0)});
    }
    t.print(std::cout);
  }
  return 0;
}

// E9/E10 (Lemmas 25/26): faultless schedules transform into fault-robust
// ones with throughput tau(1-p).
//
// Each table is one SweepPlan over the registry's transform-routing /
// transform-coding protocols (the star and path-pipeline base schedules
// are selected by the scenario's topology, k is the base message count);
// the bench only formats the resulting grid.
#include <cmath>

#include "bench_common.hpp"
#include "core/transforms.hpp"

namespace {

using namespace nrn;

// The protocols pick x = 64 and eta = recommended_transform_eta(p) when the
// tuning leaves them unset; the target columns use the same eta.
double target_throughput(double tau, double p) {
  return tau * (1.0 - p) / (1.0 + core::recommended_transform_eta(p));
}

}  // namespace

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);
  const std::string common = " k=8; trials=3; seed=" + std::to_string(seed);
  // The pipeline base's finite-k throughput: k0 / rounds = 8 / (3*7+12).
  const double tau_pipeline = 8.0 / (3.0 * 7 + 12);

  {
    TableWriter t(
        "E9a  Lemma 25: routing transform under sender faults "
        "(star base, tau = 1)",
        {"p", "measured throughput", "tau(1-p)/(1+eta)", "ratio", "success"});
    t.add_note("seed: " + std::to_string(seed) +
               ", x = 64, eta = 0.25 (0.5 for p >= 0.5)");
    const auto report = bench::run_sweep(
        "topology=star:16; protocols=transform-routing; "
        "fault=none,sender:{0.2,0.4,0.6,0.8};" + common);
    for (const auto& cell : report.cells) {
      const double p = cell.experiment.scenario.fault.effective_loss();
      const auto row = bench::throughput_of(cell.experiment);
      const double target = target_throughput(1.0, p);
      t.add_row({fmt(p, 1), fmt(row.throughput, 3), fmt(target, 3),
                 fmt(row.throughput > 0 ? row.throughput / target : 0.0, 2),
                 verdict(row.success)});
    }
    t.print(std::cout);
  }

  {
    TableWriter t(
        "E9b  Lemma 25 on the path pipeline base (tau = 1/3), sender faults",
        {"p", "measured throughput", "tau(1-p)/(1+eta)", "ratio", "success"});
    const auto report = bench::run_sweep(
        "topology=path:12; protocols=transform-routing; "
        "fault=none,sender:{0.2,0.4,0.6};" + common);
    for (const auto& cell : report.cells) {
      const double p = cell.experiment.scenario.fault.effective_loss();
      const auto row = bench::throughput_of(cell.experiment);
      const double target = target_throughput(tau_pipeline, p);
      t.add_row({fmt(p, 1), fmt(row.throughput, 3), fmt(target, 3),
                 fmt(row.throughput > 0 ? row.throughput / target : 0.0, 2),
                 verdict(row.success)});
    }
    t.print(std::cout);
  }

  {
    TableWriter t(
        "E10  Lemma 26: coding transform (path pipeline base) under BOTH "
        "fault models",
        {"fault model", "p", "measured throughput", "target", "success"});
    t.add_note("the coding transform needs no adaptivity, so it survives "
               "receiver faults too -- the routing transform does not");
    const auto report = bench::run_sweep(
        "topology=path:12; protocols=transform-coding; "
        "fault=sender:{0.2,0.5},receiver:{0.2,0.5};" + common);
    for (const auto& cell : report.cells) {
      const auto& fault = cell.experiment.scenario.fault;
      const double p = fault.effective_loss();
      const auto row = bench::throughput_of(cell.experiment);
      // "sender:0.2" -> "sender": the spec text names the model.
      const std::string& spec = cell.experiment.scenario.fault_text;
      t.add_row({spec.substr(0, spec.find(':')),
                 fmt(p, 1), fmt(row.throughput, 3),
                 fmt(target_throughput(tau_pipeline, p), 3),
                 verdict(row.success)});
    }
    t.print(std::cout);
  }
  return 0;
}

// E9/E10 (Lemmas 25/26): faultless schedules transform into fault-robust
// ones with throughput tau(1-p).
#include <cmath>

#include "bench_common.hpp"
#include "core/transforms.hpp"
#include "graph/generators.hpp"

namespace {

using namespace nrn;

struct Row {
  double throughput = 0.0;
  bool success = false;
};

template <typename RunFn>
Row measure(const graph::Graph& g, radio::FaultModel fm,
            const core::BaseSchedule& base, const core::TransformParams& tp,
            Rng& rng, RunFn&& run) {
  Row row;
  int successes = 0;
  double tput = 0.0;
  const int trials = 3;
  for (int t = 0; t < trials; ++t) {
    radio::RadioNetwork net(g, fm, Rng(rng()));
    Rng algo(rng());
    const auto res = run(net, base, tp, algo);
    if (res.run.completed) {
      ++successes;
      tput += res.measured_throughput;
    }
  }
  row.success = successes == trials;
  row.throughput = successes > 0 ? tput / successes : 0.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);
  Rng rng(seed);
  // x is capped at 64 sub-messages (the paper takes x -> infinity to make
  // eta arbitrarily small); at that x the Chernoff margin needs eta to
  // grow with p, so each row picks eta accordingly.
  const auto eta_for = [](double p) { return p >= 0.5 ? 0.5 : 0.25; };

  {
    TableWriter t(
        "E9a  Lemma 25: routing transform under sender faults "
        "(star base, tau = 1)",
        {"p", "measured throughput", "tau(1-p)/(1+eta)", "ratio", "success"});
    t.add_note("seed: " + std::to_string(seed) + ", x = 64, eta = 0.25 (0.5 for p >= 0.5)");
    const auto g = graph::make_star(16);
    core::StarBaseSchedule base(8);
    for (const double p : {0.0, 0.2, 0.4, 0.6, 0.8}) {
      const auto fm = p == 0.0 ? radio::FaultModel::faultless()
                               : radio::FaultModel::sender(p);
      core::TransformParams tp;
      tp.x = 64;
      tp.eta = eta_for(p);
      const auto row =
          measure(g, fm, base, tp, rng, core::run_routing_transform);
      const double target = 1.0 * (1.0 - p) / (1.0 + tp.eta);
      t.add_row({fmt(p, 1), fmt(row.throughput, 3), fmt(target, 3),
                 fmt(row.throughput > 0 ? row.throughput / target : 0.0, 2),
                 verdict(row.success)});
    }
    t.print(std::cout);
  }

  {
    TableWriter t(
        "E9b  Lemma 25 on the path pipeline base (tau = 1/3), sender faults",
        {"p", "measured throughput", "tau(1-p)/(1+eta)", "ratio", "success"});
    const auto g = graph::make_path(12);
    core::PathPipelineBaseSchedule base(12, 8);
    for (const double p : {0.0, 0.2, 0.4, 0.6}) {
      const auto fm = p == 0.0 ? radio::FaultModel::faultless()
                               : radio::FaultModel::sender(p);
      core::TransformParams tp;
      tp.x = 64;
      tp.eta = eta_for(p);
      const auto row =
          measure(g, fm, base, tp, rng, core::run_routing_transform);
      // The pipeline's finite-k throughput: k0 / rounds = 8 / (3*7+12).
      const double tau0 = 8.0 / (3.0 * 7 + 12);
      const double target = tau0 * (1.0 - p) / (1.0 + tp.eta);
      t.add_row({fmt(p, 1), fmt(row.throughput, 3), fmt(target, 3),
                 fmt(row.throughput > 0 ? row.throughput / target : 0.0, 2),
                 verdict(row.success)});
    }
    t.print(std::cout);
  }

  {
    TableWriter t(
        "E10  Lemma 26: coding transform (path pipeline base) under BOTH "
        "fault models",
        {"fault model", "p", "measured throughput", "target", "success"});
    t.add_note("the coding transform needs no adaptivity, so it survives "
               "receiver faults too -- the routing transform does not");
    const auto g = graph::make_path(12);
    core::PathPipelineBaseSchedule base(12, 8);
    const double tau0 = 8.0 / (3.0 * 7 + 12);
    for (const bool sender : {true, false}) {
      for (const double p : {0.2, 0.5}) {
        const auto fm = sender ? radio::FaultModel::sender(p)
                               : radio::FaultModel::receiver(p);
        core::TransformParams tp;
        tp.x = 64;
        tp.eta = eta_for(p);
        const auto row =
            measure(g, fm, base, tp, rng, core::run_coding_transform);
        const double target = tau0 * (1.0 - p) / (1.0 + tp.eta);
        t.add_row({sender ? "sender" : "receiver", fmt(p, 1),
                   fmt(row.throughput, 3), fmt(target, 3),
                   verdict(row.success)});
      }
    }
    t.print(std::cout);
  }
  return 0;
}

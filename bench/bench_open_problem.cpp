// OP (extension): the paper's open problem (Section 4.2) asks for an
// algorithm robust to sender AND receiver faults that broadcasts k messages
// in O(D + k log n + polylog) rounds.  This bench probes the combined-fault
// regime with the tools the paper does give us:
//   * Decay+RLNC        -- O(D log n + k log n) under combined faults;
//   * RobustFASTBC+RLNC -- O(D + k log n loglog n) under combined faults;
// and reports where each sits relative to the conjectured optimum
// D + k log n.  Neither closes the gap (that is why it is open); the bench
// quantifies how far each is, at simulation scale.
//
// Both tables are SweepPlans over the registry's rlnc-* protocols; the
// per-protocol gap columns (measured rounds / the protocol's own Lemma
// 12/13 bound) and the conjectured-optimum ratio come off the
// ExperimentReport, not bespoke loops.
#include <cmath>

#include "bench_common.hpp"

namespace {

using namespace nrn;

/// The open problem's conjectured optimum for a cell: D + k log2 n.
double conjectured_target(const sim::ExperimentReport& exp) {
  return static_cast<double>(exp.depth) +
         static_cast<double>(exp.scenario.k) *
             std::log2(static_cast<double>(exp.node_count));
}

}  // namespace

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);

  {
    TableWriter t(
        "OP1  Open problem probe: k messages under combined faults "
        "(ps = pr = 0.2)",
        {"n (path)", "k", "Decay+RLNC", "gap (Lemma 12)",
         "RobustFASTBC+RLNC", "gap (Lemma 13)", "conjectured D + k log n",
         "best / conjecture"});
    t.add_note("seed: " + std::to_string(seed));
    t.add_note("the open problem asks for O(D + k log n + polylog) with "
               "both fault types; columns show how far the known tools sit "
               "from that target");
    t.add_note("per-protocol gap = measured rounds / the protocol's own "
               "registered bound (should stay ~constant)");
    const auto report = bench::run_sweep(
        "topology=path:{32..128*2}; fault=combined:0.2:0.2; k={16,64}; "
        "protocols=rlnc-decay,rlnc-robust; trials=3; seed=" +
        std::to_string(seed));
    for (const std::int64_t n : {32, 64, 128}) {
      for (const std::int64_t k : {16, 64}) {
        const std::string topology = "path:" + std::to_string(n);
        const auto& decay = bench::sweep_cell(report, topology,
                                              "combined:0.2:0.2", k,
                                              "rlnc-decay");
        const auto& robust = bench::sweep_cell(report, topology,
                                               "combined:0.2:0.2", k,
                                               "rlnc-robust");
        NRN_ENSURES(decay.all_completed() && robust.all_completed(),
                    "RLNC broadcast exceeded its budget in OP bench");
        const double target = conjectured_target(decay);
        const double best =
            std::min(decay.median_rounds(), robust.median_rounds());
        t.add_row({fmt(n), fmt(k), fmt(decay.median_rounds(), 0),
                   fmt(decay.gap(), 2), fmt(robust.median_rounds(), 0),
                   fmt(robust.gap(), 2), fmt(target, 0),
                   fmt(best / target, 2)});
      }
    }
    t.print(std::cout);
  }

  {
    TableWriter t(
        "OP2  Combined-fault sensitivity of the Decay+RLNC throughput",
        {"fault", "effective loss", "rounds (path-64, k=32)",
         "rounds x (1-loss)"});
    t.add_note("like Lemma 9's 1/(1-p) law, the combined model should "
               "track the composed loss probability");
    const auto report = bench::run_sweep(
        "topology=path:64; k=32; protocols=rlnc-decay; trials=3; "
        "fault=none,sender:0.3,receiver:0.3,combined:0.2:0.2,"
        "combined:0.3:0.3,combined:0.45:0.45; seed=" +
        std::to_string(seed + 1));
    for (const auto& cell : report.cells) {
      const auto& exp = cell.experiment;
      NRN_ENSURES(exp.all_completed(),
                  "RLNC broadcast exceeded its budget in OP bench");
      const double loss = exp.scenario.fault.effective_loss();
      const double rounds = exp.median_rounds();
      t.add_row({exp.scenario.fault_text, fmt(loss, 2), fmt(rounds, 0),
                 fmt(rounds * (1.0 - loss), 0)});
    }
    t.print(std::cout);
  }
  return 0;
}

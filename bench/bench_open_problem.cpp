// OP (extension): the paper's open problem (Section 4.2) asks for an
// algorithm robust to sender AND receiver faults that broadcasts k messages
// in O(D + k log n + polylog) rounds.  This bench probes the combined-fault
// regime with the tools the paper does give us:
//   * Decay+RLNC       -- O(D log n + k log n) under combined faults;
//   * RobustFASTBC+RLNC -- O(D + k log n loglog n) under combined faults;
// and reports where each sits relative to the conjectured optimum
// D + k log n.  Neither closes the gap (that is why it is open); the bench
// quantifies how far each is, at simulation scale.
#include <cmath>

#include "bench_common.hpp"
#include "core/multi_message.hpp"
#include "graph/generators.hpp"

namespace {

using namespace nrn;

double run_multi(const graph::Graph& g, core::MultiMessageParams params,
                 radio::FaultModel fm, Rng& rng) {
  core::RlncBroadcast algo(g, 0, params);
  radio::RadioNetwork net(g, fm, Rng(rng()));
  Rng algo_rng(rng());
  const auto r = algo.run(net, algo_rng);
  NRN_ENSURES(r.completed, "RLNC broadcast exceeded its budget in OP bench");
  return static_cast<double>(r.rounds);
}

}  // namespace

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);
  Rng rng(seed);
  const int trials = 3;
  const auto fm = radio::FaultModel::combined(0.2, 0.2);

  {
    TableWriter t(
        "OP1  Open problem probe: k messages under combined faults "
        "(ps = pr = 0.2)",
        {"n (path)", "k", "Decay+RLNC", "RobustFASTBC+RLNC",
         "conjectured D + k log n"});
    t.add_note("seed: " + std::to_string(seed));
    t.add_note("the open problem asks for O(D + k log n + polylog) with "
               "both fault types; columns show how far the known tools sit "
               "from that target");
    for (const std::int32_t n : {32, 64, 128}) {
      for (const std::int64_t k : {16, 64}) {
        const auto g = graph::make_path(n);
        core::MultiMessageParams decay_params;
        decay_params.k = static_cast<std::size_t>(k);
        const double dr = bench::median_rounds(
            [&](Rng& r) { return run_multi(g, decay_params, fm, r); },
            trials, rng);
        core::MultiMessageParams robust_params = decay_params;
        robust_params.pattern = core::MultiPattern::kRobustFastbc;
        const double rr = bench::median_rounds(
            [&](Rng& r) { return run_multi(g, robust_params, fm, r); },
            trials, rng);
        const double target = (n - 1) + static_cast<double>(k) * std::log2(n);
        t.add_row({fmt(n), fmt(k), fmt(dr, 0), fmt(rr, 0), fmt(target, 0)});
      }
    }
    t.print(std::cout);
  }

  {
    TableWriter t(
        "OP2  Combined-fault sensitivity of the Decay+RLNC throughput",
        {"ps", "pr", "effective loss", "rounds (path-64, k=32)",
         "rounds x (1-loss)"});
    t.add_note("like Lemma 9's 1/(1-p) law, the combined model should "
               "track the composed loss probability");
    const auto g = graph::make_path(64);
    core::MultiMessageParams params;
    params.k = 32;
    for (const auto& [ps, pr] :
         {std::pair{0.0, 0.0}, std::pair{0.3, 0.0}, std::pair{0.0, 0.3},
          std::pair{0.2, 0.2}, std::pair{0.3, 0.3}, std::pair{0.45, 0.45}}) {
      const auto model = (ps == 0.0 && pr == 0.0)
                             ? radio::FaultModel::faultless()
                             : radio::FaultModel::combined(ps, pr);
      const double rounds = bench::median_rounds(
          [&](Rng& r) { return run_multi(g, params, model, r); }, trials,
          rng);
      const double loss = model.effective_loss();
      t.add_row({fmt(ps, 2), fmt(pr, 2), fmt(loss, 2), fmt(rounds, 0),
                 fmt(rounds * (1.0 - loss), 0)});
    }
    t.print(std::cout);
  }
  return 0;
}

// E1 (Lemma 6): Decay in the faultless model finishes in
// O(D log n + log^2 n) rounds.
//
// Series 1: paths of growing length at fixed n-per-phase scaling --
// rounds/D should approach a constant multiple of log n.
// Series 2: fixed diameter (star), growing n -- rounds should stay
// polylogarithmic.
// Ablation: the Decay phase length (the paper's ceil(log2 n) + 1 vs
// shorter/longer phases).
#include <cmath>

#include "bench_common.hpp"
#include "core/decay.hpp"
#include "graph/generators.hpp"

namespace {

using namespace nrn;

double run_decay(const graph::Graph& g, radio::FaultModel fm, Rng& rng,
                 core::DecayParams params = {}) {
  radio::RadioNetwork net(g, fm, Rng(rng()));
  Rng algo_rng(rng());
  const auto r = core::Decay(params).run(net, 0, algo_rng);
  NRN_ENSURES(r.completed, "Decay exceeded its budget in E1");
  return static_cast<double>(r.rounds);
}

}  // namespace

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);
  Rng rng(seed);
  const int trials = 9;

  {
    TableWriter t("E1a  Decay faultless on paths: rounds vs D (Lemma 6)",
                  {"n=D+1", "log2(n)", "median rounds", "rounds/(D log n)"});
    t.add_note("seed: " + std::to_string(seed) +
               ", trials: " + std::to_string(trials));
    t.add_note("theory: rounds = O(D log n + log^2 n)");
    std::vector<double> xs, ys;
    for (const std::int32_t n : {64, 128, 256, 512, 1024, 2048}) {
      const auto g = graph::make_path(n);
      const double rounds = bench::median_rounds(
          [&](Rng& r) { return run_decay(g, radio::FaultModel::faultless(), r); },
          trials, rng);
      const double logn = std::log2(n);
      xs.push_back(n);
      ys.push_back(rounds);
      t.add_row({fmt(n), fmt(logn, 1), fmt(rounds, 0),
                 fmt(rounds / ((n - 1) * logn), 3)});
    }
    const auto fit = fit_power_law(xs, ys);
    t.add_note("power-law fit exponent (expect ~1 for D-dominated): " +
               fmt(fit.slope, 3) + " (r2 " + fmt(fit.r2, 3) + ")");
    t.print(std::cout);
  }

  {
    TableWriter t("E1b  Decay faultless on stars: rounds vs n at D = 2",
                  {"leaves", "median rounds", "rounds/log2(n)^2"});
    t.add_note("theory: rounds = O(log^2 n) when D = O(1)");
    for (const std::int32_t n : {64, 256, 1024, 4096, 16384}) {
      const auto g = graph::make_star(n);
      const double rounds = bench::median_rounds(
          [&](Rng& r) { return run_decay(g, radio::FaultModel::faultless(), r); },
          trials, rng);
      const double l = std::log2(n);
      t.add_row({fmt(n), fmt(rounds, 0), fmt(rounds / (l * l), 3)});
    }
    t.print(std::cout);
  }

  {
    TableWriter t("E1c  Ablation: Decay phase length on a 512-path",
                  {"phase length", "median rounds", "vs default"});
    t.add_note("default phase = ceil(log2 n) + 1 = 10; too-short phases "
               "can stall dense frontiers, too-long ones waste sub-rounds");
    const auto g = graph::make_path(512);
    double base = 0.0;
    for (const std::int32_t phase : {10, 3, 6, 14, 20}) {
      core::DecayParams params;
      params.phase_length = phase;
      const double rounds = bench::median_rounds(
          [&](Rng& r) {
            return run_decay(g, radio::FaultModel::faultless(), r, params);
          },
          trials, rng);
      if (base == 0.0) base = rounds;
      t.add_row({fmt(phase), fmt(rounds, 0), fmt(rounds / base, 2) + "x"});
    }
    t.print(std::cout);
  }
  return 0;
}

// E1 (Lemma 6): Decay in the faultless model finishes in
// O(D log n + log^2 n) rounds.
//
// Series 1: paths of growing length at fixed n-per-phase scaling --
// rounds/D should approach a constant multiple of log n.
// Series 2: fixed diameter (star), growing n -- rounds should stay
// polylogarithmic.
// Ablation: the Decay phase length (the paper's ceil(log2 n) + 1 vs
// shorter/longer phases).
#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace nrn;
  const auto seed = bench::seed_from_args(argc, argv);
  Rng rng(seed);
  const int trials = 9;

  {
    TableWriter t("E1a  Decay faultless on paths: rounds vs D (Lemma 6)",
                  {"n=D+1", "log2(n)", "median rounds", "rounds/(D log n)"});
    t.add_note("seed: " + std::to_string(seed) +
               ", trials: " + std::to_string(trials));
    t.add_note("theory: rounds = O(D log n + log^2 n)");
    std::vector<double> xs, ys;
    for (const std::int32_t n : {64, 128, 256, 512, 1024, 2048}) {
      const double rounds = bench::driver_median_rounds(
          "path:" + std::to_string(n), "none", "decay", trials, rng);
      const double logn = std::log2(n);
      xs.push_back(n);
      ys.push_back(rounds);
      t.add_row({fmt(n), fmt(logn, 1), fmt(rounds, 0),
                 fmt(rounds / ((n - 1) * logn), 3)});
    }
    const auto fit = fit_power_law(xs, ys);
    t.add_note("power-law fit exponent (expect ~1 for D-dominated): " +
               fmt(fit.slope, 3) + " (r2 " + fmt(fit.r2, 3) + ")");
    t.print(std::cout);
  }

  {
    TableWriter t("E1b  Decay faultless on stars: rounds vs n at D = 2",
                  {"leaves", "median rounds", "rounds/log2(n)^2"});
    t.add_note("theory: rounds = O(log^2 n) when D = O(1)");
    for (const std::int32_t n : {64, 256, 1024, 4096, 16384}) {
      const double rounds = bench::driver_median_rounds(
          "star:" + std::to_string(n), "none", "decay", trials, rng);
      const double l = std::log2(n);
      t.add_row({fmt(n), fmt(rounds, 0), fmt(rounds / (l * l), 3)});
    }
    t.print(std::cout);
  }

  {
    TableWriter t("E1c  Ablation: Decay phase length on a 512-path",
                  {"phase length", "median rounds", "vs default"});
    t.add_note("default phase = ceil(log2 n) + 1 = 10; too-short phases "
               "can stall dense frontiers, too-long ones waste sub-rounds");
    double base = 0.0;
    for (const std::int32_t phase : {10, 3, 6, 14, 20}) {
      sim::DriverOptions options;
      options.tuning.decay_phase = phase;
      const double rounds = bench::driver_median_rounds(
          "path:512", "none", "decay", trials, rng, options);
      if (base == 0.0) base = rounds;
      t.add_row({fmt(phase), fmt(rounds, 0), fmt(rounds / base, 2) + "x"});
    }
    t.print(std::cout);
  }
  return 0;
}

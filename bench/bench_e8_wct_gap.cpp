// E8 (Lemmas 18/19/21/22/23, Theorem 24): the worst-case topology WCT.
//   E8a verifies the Lemma 18 structural bound (unique-reception fraction
//        O(1/log n) per round, for any broadcast set size).
//   E8b measures adaptive routing (layered pipeline + greedy) against the
//        coded schedule (Theta(1/log n)).
//
// Both tables are SweepPlans over registry protocols: the Lemma 18 probe
// is the wct-unique-probe schedule-gap protocol (its observables arrive as
// Outcome metrics), and E8b races pipeline/greedy against wct-coding on
// the explicit-parameter wct:M:L:C:S topologies.
#include <cmath>

#include "bench_common.hpp"

namespace {

using namespace nrn;

}  // namespace

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);

  {
    TableWriter t(
        "E8a  Lemma 18: max fraction of clusters uniquely served per round",
        {"classes L", "worst fraction over set sizes", "fraction * L"});
    t.add_note("seed: " + std::to_string(seed));
    t.add_note("theory: fraction = O(1/L); the product column should stay "
               "bounded (~2-3) as L grows");
    // Explicit WCT parameters: M = 2^(L+1) senders, 48 single-member
    // clusters per class (a structural probe; members are irrelevant).
    const auto report = bench::run_sweep(
        "topology=wct:8:2:48:1,wct:32:4:48:1,wct:128:6:48:1,"
        "wct:512:8:48:1,wct:2048:10:48:1; "
        "protocols=wct-unique-probe; trials=1; seed=" +
        std::to_string(seed));
    for (const auto& cell : report.cells) {
      const auto& exp = cell.experiment;
      const std::int64_t classes = exp.scenario.topology.ints.at(1);
      t.add_row({fmt(classes),
                 fmt(exp.metric_summary("unique_fraction").mean, 3),
                 fmt(exp.metric_summary("unique_fraction_x_classes").mean,
                     2)});
    }
    t.print(std::cout);
  }

  {
    TableWriter t(
        "E8b  WCT with receiver faults p=0.5: adaptive routing vs coding "
        "(Theorem 24)",
        {"~n", "pipeline rpm", "greedy rpm", "coding rpm", "coding gap",
         "gap (best routing / coding)", "gap/log2(n)"});
    t.add_note("theory: routing rpm = Theta(log^2 n), coding rpm = "
               "Theta(log n); their ratio should grow with log n");
    t.add_note("two routing schedules bracket Definition 14: the Lemma 21 "
               "pipeline and a greedy marginal-coverage scheduler; the gap "
               "uses whichever is better");
    t.add_note("coding gap = measured rounds / the registered k log n "
               "bound (Lemma 23); should stay ~constant");
    const std::int64_t k = 64;
    const auto report = bench::run_sweep(
        "topology=wct:{1024,4096,16384}; fault=receiver:0.5; k=64; "
        "protocols=pipeline,greedy,wct-coding; trials=3; seed=" +
        std::to_string(seed + 1));
    for (const std::int64_t budget : {1024, 4096, 16384}) {
      const std::string topology = "wct:" + std::to_string(budget);
      const auto& pipeline = bench::sweep_cell(report, topology,
                                               "receiver:0.5", k, "pipeline");
      const auto& greedy = bench::sweep_cell(report, topology,
                                             "receiver:0.5", k, "greedy");
      const auto& coding = bench::sweep_cell(report, topology,
                                             "receiver:0.5", k, "wct-coding");
      NRN_ENSURES(pipeline.all_completed(), "WCT routing failed in E8b");
      NRN_ENSURES(greedy.all_completed(), "WCT greedy routing failed in E8b");
      NRN_ENSURES(coding.all_completed(), "WCT coding failed in E8b");
      const double n = static_cast<double>(pipeline.node_count);
      const double pipeline_rpm = bench::median_rpm_of(pipeline);
      const double greedy_rpm = bench::median_rpm_of(greedy);
      const double coding_rpm = bench::median_rpm_of(coding);
      const double best_routing = std::min(pipeline_rpm, greedy_rpm);
      const double gap = best_routing / coding_rpm;
      t.add_row({fmt(pipeline.node_count), fmt(pipeline_rpm, 1),
                 fmt(greedy_rpm, 1), fmt(coding_rpm, 1),
                 fmt(coding.gap(), 2), fmt(gap, 2),
                 fmt(gap / std::log2(n), 3)});
    }
    // Report-layer regressions (sim::sweep_fits) over the three WCT sizes:
    // coding should fit log2(nodes) cleanly (Lemma 23); the routing
    // schedules grow like log^2 n, so their log-linear r2 is diagnostic.
    for (const auto& fit : sim::sweep_fits(report)) {
      if (fit.metric != "median_rpm") continue;
      t.add_note("fit " + fit.protocol + " rpm ~ " +
                 fmt(fit.fit.intercept, 2) + " + " + fmt(fit.fit.slope, 2) +
                 " * log2(nodes)  (r2 " + fmt(fit.fit.r2, 3) + ")");
    }
    t.print(std::cout);
  }
  return 0;
}

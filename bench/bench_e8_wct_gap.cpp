// E8 (Lemmas 18/19/21/22/23, Theorem 24): the worst-case topology WCT.
//   E8a verifies the Lemma 18 structural bound (unique-reception fraction
//        O(1/log n) per round, for any broadcast set size).
//   E8b measures adaptive routing (layered pipeline, Theta(1/log^2 n))
//        against the coded schedule (Theta(1/log n)).
#include <cmath>

#include "bench_common.hpp"
#include "core/bipartite_pipeline.hpp"
#include "core/greedy_router.hpp"
#include "core/wct_schedules.hpp"
#include "topology/wct.hpp"

namespace {

using namespace nrn;

}  // namespace

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);
  Rng rng(seed);

  {
    TableWriter t(
        "E8a  Lemma 18: max fraction of clusters uniquely served per round",
        {"classes L", "worst fraction over set sizes", "fraction * L"});
    t.add_note("seed: " + std::to_string(seed));
    t.add_note("theory: fraction = O(1/L); the product column should stay "
               "bounded (~2-3) as L grows");
    for (const std::int32_t L : {2, 4, 6, 8, 10}) {
      topology::WctParams params;
      params.sender_count = 1 << (L + 1);
      params.class_count = L;
      params.clusters_per_class = 48;
      params.cluster_size = 1;  // structural probe: members irrelevant
      Rng grng(rng());
      const topology::WctNetwork wct(params, grng);
      double worst = 0.0;
      for (std::int32_t s = 1; s <= params.sender_count; s *= 2) {
        for (int trial = 0; trial < 12; ++trial) {
          std::vector<std::int32_t> ids(
              static_cast<std::size_t>(params.sender_count));
          for (std::int32_t i = 0; i < params.sender_count; ++i)
            ids[static_cast<std::size_t>(i)] = i;
          grng.shuffle(ids);
          std::vector<bool> mask(
              static_cast<std::size_t>(params.sender_count), false);
          for (std::int32_t i = 0; i < s; ++i)
            mask[static_cast<std::size_t>(ids[static_cast<std::size_t>(i)])] =
                true;
          worst = std::max(worst, wct.unique_reception_fraction(mask));
        }
      }
      t.add_row({fmt(L), fmt(worst, 3), fmt(worst * L, 2)});
    }
    t.print(std::cout);
  }

  {
    TableWriter t(
        "E8b  WCT with receiver faults p=0.5: adaptive routing vs coding "
        "(Theorem 24)",
        {"~n", "classes L", "pipeline rpm", "greedy rpm", "coding rpm",
         "gap (best routing / coding)", "gap/log2(n)"});
    t.add_note("theory: routing rpm = Theta(log^2 n), coding rpm = "
               "Theta(log n); their ratio should grow with log n");
    t.add_note("two routing schedules bracket Definition 14: the Lemma 21 "
               "pipeline and a greedy marginal-coverage scheduler; the gap "
               "uses whichever is better");
    const std::int64_t k = 64;
    const int trials = 3;
    for (const std::int32_t budget : {1024, 4096, 16384}) {
      auto params = topology::WctParams::from_node_budget(budget);
      Rng grng(rng());
      const topology::WctNetwork wct(params, grng);
      const auto n = wct.graph().node_count();
      const double pipeline = bench::median_rounds(
          [&](Rng& r) {
            radio::RadioNetwork net(wct.graph(),
                                    radio::FaultModel::receiver(0.5),
                                    Rng(r()));
            core::PipelineParams pp;
            pp.k = k;
            Rng algo(r());
            const auto res = core::run_layered_pipeline_routing(
                net, wct.source(), pp, algo);
            NRN_ENSURES(res.completed, "WCT routing failed in E8b");
            return static_cast<double>(res.rounds);
          },
          trials, rng);
      const double greedy = bench::median_rounds(
          [&](Rng& r) {
            radio::RadioNetwork net(wct.graph(),
                                    radio::FaultModel::receiver(0.5),
                                    Rng(r()));
            core::GreedyRouterParams gp;
            gp.k = k;
            const auto res =
                core::run_greedy_adaptive_routing(net, wct.source(), gp);
            NRN_ENSURES(res.completed, "WCT greedy routing failed in E8b");
            return static_cast<double>(res.rounds);
          },
          trials, rng);
      const double coding = bench::median_rounds(
          [&](Rng& r) {
            radio::RadioNetwork net(wct.graph(),
                                    radio::FaultModel::receiver(0.5),
                                    Rng(r()));
            core::WctCodedParams cp;
            cp.k = k;
            Rng algo(r());
            const auto res = core::run_wct_rs_coding(net, wct, cp, algo);
            NRN_ENSURES(res.completed, "WCT coding failed in E8b");
            return static_cast<double>(res.rounds);
          },
          trials, rng);
      const double best_routing = std::min(pipeline, greedy);
      const double gap = best_routing / coding;
      t.add_row({fmt(n), fmt(params.class_count), fmt(pipeline / k, 1),
                 fmt(greedy / k, 1), fmt(coding / k, 1), fmt(gap, 2),
                 fmt(gap / std::log2(n), 3)});
    }
    t.print(std::cout);
  }
  return 0;
}

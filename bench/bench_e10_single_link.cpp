// E11/E12 (Appendix A, Lemmas 29-33): the single-link topology.
// Non-adaptive routing pays Theta(log k) per message; coding and adaptive
// routing pay Theta(1); so the non-adaptive gap grows like log k and the
// adaptive gap is constant.
#include <cmath>

#include "bench_common.hpp"
#include "core/single_link.hpp"
#include "graph/generators.hpp"

namespace {

using namespace nrn;

}  // namespace

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);
  Rng rng(seed);
  const double p = 0.5;
  const int trials = 5;
  const auto g = graph::make_single_link();

  {
    TableWriter t(
        "E11  Single link, receiver faults p=0.5: rounds/message vs k "
        "(Lemmas 29/30/31)",
        {"k", "non-adaptive rpm", "adaptive rpm", "coding rpm",
         "non-adaptive gap", "gap/log2(k)"});
    t.add_note("seed: " + std::to_string(seed));
    t.add_note("theory: non-adaptive = Theta(log k); adaptive and coding "
               "= Theta(1); gap/log2(k) ~ constant");
    for (const std::int64_t k : {16, 64, 256, 1024, 4096, 16384}) {
      const double na = bench::median_rounds(
          [&](Rng& r) {
            radio::RadioNetwork net(g, radio::FaultModel::receiver(p),
                                    Rng(r()));
            const auto res = core::run_link_nonadaptive_routing(
                net, k, core::link_nonadaptive_reps(k, p));
            NRN_ENSURES(res.completed, "non-adaptive link failed in E11");
            return static_cast<double>(res.rounds);
          },
          trials, rng);
      const double ad = bench::median_rounds(
          [&](Rng& r) {
            radio::RadioNetwork net(g, radio::FaultModel::receiver(p),
                                    Rng(r()));
            const auto res =
                core::run_link_adaptive_routing(net, k, 1'000'000'000);
            NRN_ENSURES(res.completed, "adaptive link failed in E11");
            return static_cast<double>(res.rounds);
          },
          trials, rng);
      const double cd = bench::median_rounds(
          [&](Rng& r) {
            radio::RadioNetwork net(g, radio::FaultModel::receiver(p),
                                    Rng(r()));
            const auto res = core::run_link_rs_coding(
                net, k, core::link_rs_packet_count(k, p));
            NRN_ENSURES(res.completed, "coded link failed in E11");
            return static_cast<double>(res.rounds);
          },
          trials, rng);
      const double gap = na / cd;
      t.add_row({fmt(k), fmt(na / k, 2), fmt(ad / k, 2), fmt(cd / k, 2),
                 fmt(gap, 2), fmt(gap / std::log2(k), 3)});
    }
    t.print(std::cout);
  }

  {
    TableWriter t(
        "E12  Adaptive routing on the link: rounds/message vs p "
        "(Lemma 32: 1/(1-p))",
        {"p", "fault model", "rounds/message", "1/(1-p)"});
    const std::int64_t k = 4096;
    for (const bool sender : {false, true}) {
      for (const double q : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        const auto fm = sender ? radio::FaultModel::sender(q)
                               : radio::FaultModel::receiver(q);
        const double ad = bench::median_rounds(
            [&](Rng& r) {
              radio::RadioNetwork net(g, fm, Rng(r()));
              const auto res =
                  core::run_link_adaptive_routing(net, k, 1'000'000'000);
              NRN_ENSURES(res.completed, "adaptive link failed in E12");
              return static_cast<double>(res.rounds);
            },
            trials, rng);
        t.add_row({fmt(q, 1), sender ? "sender" : "receiver",
                   fmt(ad / k, 2), fmt(1.0 / (1.0 - q), 2)});
      }
    }
    t.print(std::cout);
  }
  return 0;
}

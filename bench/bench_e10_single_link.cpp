// E11/E12 (Appendix A, Lemmas 29-33): the single-link topology.
// Non-adaptive routing pays Theta(log k) per message; coding and adaptive
// routing pay Theta(1); so the non-adaptive gap grows like log k and the
// adaptive gap is constant.
//
// Both tables are SweepPlans over the registry's link-* protocols (the
// repetition/packet budgets derive from the scenario's fault model); the
// bench only formats the resulting grid.
#include <cmath>

#include "bench_common.hpp"

namespace {

using namespace nrn;

double completed_rounds(const sim::ExperimentReport& exp) {
  NRN_ENSURES(exp.all_completed(),
              exp.protocol + " failed on the link in E11/E12");
  return exp.median_rounds();
}

}  // namespace

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);
  const int trials = 5;
  const std::string common =
      " trials=" + std::to_string(trials) + "; seed=" + std::to_string(seed);

  {
    TableWriter t(
        "E11  Single link, receiver faults p=0.5: rounds/message vs k "
        "(Lemmas 29/30/31)",
        {"k", "non-adaptive rpm", "adaptive rpm", "coding rpm",
         "non-adaptive gap", "gap/log2(k)"});
    t.add_note("seed: " + std::to_string(seed));
    t.add_note("theory: non-adaptive = Theta(log k); adaptive and coding "
               "= Theta(1); gap/log2(k) ~ constant");
    const auto report = bench::run_sweep(
        "topology=link; fault=receiver:0.5; k={16..16384*4}; "
        "protocols=link-nonadaptive,link-adaptive,link-coding;" + common);
    for (const std::int64_t k : {16, 64, 256, 1024, 4096, 16384}) {
      const double na = completed_rounds(bench::sweep_cell(
          report, "link", "receiver:0.5", k, "link-nonadaptive"));
      const double ad = completed_rounds(bench::sweep_cell(
          report, "link", "receiver:0.5", k, "link-adaptive"));
      const double cd = completed_rounds(bench::sweep_cell(
          report, "link", "receiver:0.5", k, "link-coding"));
      const double gap = na / cd;
      t.add_row({fmt(k), fmt(na / k, 2), fmt(ad / k, 2), fmt(cd / k, 2),
                 fmt(gap, 2), fmt(gap / std::log2(k), 3)});
    }
    t.print(std::cout);
  }

  {
    TableWriter t(
        "E12  Adaptive routing on the link: rounds/message vs p "
        "(Lemma 32: 1/(1-p))",
        {"p", "fault model", "rounds/message", "1/(1-p)"});
    const std::int64_t k = 4096;
    const auto report = bench::run_sweep(
        "topology=link; protocols=link-adaptive; k=4096; "
        "fault=receiver:{0.1,0.3,0.5,0.7,0.9},sender:{0.1,0.3,0.5,0.7,0.9};" +
        common);
    for (const auto& cell : report.cells) {
      const auto& fault = cell.experiment.scenario.fault;
      const double q = fault.effective_loss();
      const double ad = completed_rounds(cell.experiment);
      // "sender:0.1" -> "sender": the spec text names the model.
      const std::string& spec = cell.experiment.scenario.fault_text;
      t.add_row({fmt(q, 1), spec.substr(0, spec.find(':')),
                 fmt(ad / k, 2), fmt(1.0 / (1.0 - q), 2)});
    }
    t.print(std::cout);
  }
  return 0;
}

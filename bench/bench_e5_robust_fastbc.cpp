// E5 (Theorem 11): Robust FASTBC -- the paper's headline single-message
// figure.  Rounds vs D for Decay / FASTBC / Robust FASTBC under receiver
// faults, plus the block-size ablation from DESIGN.md.
#include <cmath>

#include "bench_common.hpp"
#include "core/decay.hpp"
#include "core/fastbc.hpp"
#include "core/robust_fastbc.hpp"
#include "graph/generators.hpp"

namespace {

using namespace nrn;

core::RobustFastbcParams tuned_robust_params() {
  // Large blocks amortize the per-block Chernoff slack; c near its mean
  // 1 + 3p/(1-p) for p = 0.7 keeps the steady cost at ~2c rounds/level.
  core::RobustFastbcParams params;
  params.block_size = 32;
  params.window_multiplier = 10;
  return params;
}

}  // namespace

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);
  Rng rng(seed);
  const int trials = 5;
  const double p = 0.7;
  const auto fm = radio::FaultModel::receiver(p);

  {
    TableWriter t(
        "E5a  Single-message broadcast on noisy paths, p = 0.7 "
        "(the Theorem 11 figure)",
        {"n=D+1", "Decay", "FASTBC", "RobustFASTBC", "robust speedup"});
    t.add_note("seed: " + std::to_string(seed) +
               ", trials: " + std::to_string(trials));
    t.add_note("theory: Decay = Theta(D log n / (1-p)); FASTBC = "
               "Theta(p/(1-p) D log n); RobustFASTBC = O(D) + polylog");
    for (const std::int32_t n : {128, 256, 512, 1024, 2048}) {
      const auto g = graph::make_path(n);
      core::Fastbc fastbc(g, 0);
      core::RobustFastbc robust(g, 0, tuned_robust_params());
      const double dr = bench::median_rounds(
          [&](Rng& r) {
            radio::RadioNetwork net(g, fm, Rng(r()));
            Rng algo(r());
            const auto res = core::Decay().run(net, 0, algo);
            NRN_ENSURES(res.completed, "Decay failed in E5");
            return static_cast<double>(res.rounds);
          },
          trials, rng);
      const double fr = bench::median_rounds(
          [&](Rng& r) {
            radio::RadioNetwork net(g, fm, Rng(r()));
            Rng algo(r());
            const auto res = fastbc.run(net, algo);
            NRN_ENSURES(res.completed, "FASTBC failed in E5");
            return static_cast<double>(res.rounds);
          },
          trials, rng);
      const double rr = bench::median_rounds(
          [&](Rng& r) {
            radio::RadioNetwork net(g, fm, Rng(r()));
            Rng algo(r());
            const auto res = robust.run(net, algo);
            NRN_ENSURES(res.completed, "RobustFASTBC failed in E5");
            return static_cast<double>(res.rounds);
          },
          trials, rng);
      t.add_row({fmt(n), fmt(dr, 0), fmt(fr, 0), fmt(rr, 0),
                 fmt(fr / rr, 2) + "x"});
    }
    t.print(std::cout);
  }

  {
    TableWriter t("E5b  Robust FASTBC across topologies, p = 0.5",
                  {"topology", "n", "rounds", "rounds/D"});
    const auto fm05 = radio::FaultModel::receiver(0.5);
    struct Case {
      std::string name;
      graph::Graph g;
      double diameter;
    };
    std::vector<Case> cases;
    cases.push_back({"path-512", graph::make_path(512), 511});
    cases.push_back({"grid-20x20", graph::make_grid(20, 20), 38});
    cases.push_back({"caterpillar-150x2", graph::make_caterpillar(150, 2), 151});
    for (const auto& c : cases) {
      core::RobustFastbc robust(c.g, 0);
      const double rounds = bench::median_rounds(
          [&](Rng& r) {
            radio::RadioNetwork net(c.g, fm05, Rng(r()));
            Rng algo(r());
            const auto res = robust.run(net, algo);
            NRN_ENSURES(res.completed, "RobustFASTBC failed in E5b");
            return static_cast<double>(res.rounds);
          },
          trials, rng);
      t.add_row({c.name, fmt(c.g.node_count()), fmt(rounds, 0),
                 fmt(rounds / c.diameter, 1)});
    }
    t.print(std::cout);
  }

  {
    TableWriter t(
        "E5c  Ablation: block size S on a 1024-path, p = 0.5 "
        "(paper picks S = Theta(log log n))",
        {"S", "window mult c", "median rounds", "rounds/D"});
    t.add_note("small S: tight barriers need large c slack; large S: "
               "rarely-failing blocks but a bigger additive alignment cost");
    const auto g = graph::make_path(1024);
    const auto fm05 = radio::FaultModel::receiver(0.5);
    for (const std::int32_t S : {2, 4, 8, 16, 32, 64}) {
      core::RobustFastbcParams params;
      params.block_size = S;
      params.window_multiplier = 8;
      core::RobustFastbc robust(g, 0, params);
      const double rounds = bench::median_rounds(
          [&](Rng& r) {
            radio::RadioNetwork net(g, fm05, Rng(r()));
            Rng algo(r());
            const auto res = robust.run(net, algo);
            NRN_ENSURES(res.completed, "RobustFASTBC failed in E5c");
            return static_cast<double>(res.rounds);
          },
          trials, rng);
      t.add_row({fmt(S), fmt(8), fmt(rounds, 0), fmt(rounds / 1023.0, 1)});
    }
    t.print(std::cout);
  }
  return 0;
}

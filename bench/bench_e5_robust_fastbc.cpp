// E5 (Theorem 11): Robust FASTBC -- the paper's headline single-message
// figure.  Rounds vs D for Decay / FASTBC / Robust FASTBC under receiver
// faults, plus the block-size ablation from DESIGN.md.
#include <cmath>

#include "bench_common.hpp"

namespace {

nrn::sim::DriverOptions tuned_robust_options() {
  // Large blocks amortize the per-block Chernoff slack; c near its mean
  // 1 + 3p/(1-p) for p = 0.7 keeps the steady cost at ~2c rounds/level.
  nrn::sim::DriverOptions options;
  options.tuning.block_size = 32;
  options.tuning.window_multiplier = 10;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nrn;
  const auto seed = bench::seed_from_args(argc, argv);
  Rng rng(seed);
  const int trials = 5;
  const std::string fm = "receiver:0.7";

  {
    TableWriter t(
        "E5a  Single-message broadcast on noisy paths, p = 0.7 "
        "(the Theorem 11 figure)",
        {"n=D+1", "Decay", "FASTBC", "RobustFASTBC", "robust speedup"});
    t.add_note("seed: " + std::to_string(seed) +
               ", trials: " + std::to_string(trials));
    t.add_note("theory: Decay = Theta(D log n / (1-p)); FASTBC = "
               "Theta(p/(1-p) D log n); RobustFASTBC = O(D) + polylog");
    for (const std::int32_t n : {128, 256, 512, 1024, 2048}) {
      const std::string topo = "path:" + std::to_string(n);
      const double dr =
          bench::driver_median_rounds(topo, fm, "decay", trials, rng);
      const double fr =
          bench::driver_median_rounds(topo, fm, "fastbc", trials, rng);
      const double rr = bench::driver_median_rounds(
          topo, fm, "robust", trials, rng, tuned_robust_options());
      t.add_row({fmt(n), fmt(dr, 0), fmt(fr, 0), fmt(rr, 0),
                 fmt(fr / rr, 2) + "x"});
    }
    t.print(std::cout);
  }

  {
    TableWriter t("E5b  Robust FASTBC across topologies, p = 0.5",
                  {"topology", "n", "rounds", "rounds/D"});
    struct Case {
      std::string spec;
      std::int32_t n;
      double diameter;
    };
    for (const Case& c : {Case{"path:512", 512, 511},
                          Case{"grid:20x20", 400, 38},
                          Case{"caterpillar:150:2", 450, 151}}) {
      const double rounds = bench::driver_median_rounds(
          c.spec, "receiver:0.5", "robust", trials, rng);
      t.add_row({c.spec, fmt(c.n), fmt(rounds, 0),
                 fmt(rounds / c.diameter, 1)});
    }
    t.print(std::cout);
  }

  {
    TableWriter t(
        "E5c  Ablation: block size S on a 1024-path, p = 0.5 "
        "(paper picks S = Theta(log log n))",
        {"S", "window mult c", "median rounds", "rounds/D"});
    t.add_note("small S: tight barriers need large c slack; large S: "
               "rarely-failing blocks but a bigger additive alignment cost");
    for (const std::int32_t S : {2, 4, 8, 16, 32, 64}) {
      sim::DriverOptions options;
      options.tuning.block_size = S;
      options.tuning.window_multiplier = 8;
      const double rounds = bench::driver_median_rounds(
          "path:1024", "receiver:0.5", "robust", trials, rng, options);
      t.add_row({fmt(S), fmt(8), fmt(rounds, 0), fmt(rounds / 1023.0, 1)});
    }
    t.print(std::cout);
  }
  return 0;
}

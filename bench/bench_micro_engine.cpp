// M0: wall-clock micro benchmarks of the substrates (google-benchmark).
// These justify the engineering choices in DESIGN.md: epoch-stamped
// collision counters, table-driven GF arithmetic, and GF(2^8) for RLNC.
#include <benchmark/benchmark.h>

#include "coding/gf256.hpp"
#include "coding/gf65536.hpp"
#include "coding/reed_solomon.hpp"
#include "coding/rlnc.hpp"
#include "common/rng.hpp"
#include "core/decay.hpp"
#include "graph/generators.hpp"
#include "radio/network.hpp"
#include "sim/sim.hpp"

namespace {

using namespace nrn;

void BM_EngineRoundStar(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto g = graph::make_star(n);
  radio::RadioNetwork net(g, radio::FaultModel::receiver(0.5), Rng(1));
  std::int64_t id = 0;
  for (auto _ : state) {
    net.set_broadcast(0, radio::Packet{id++});
    benchmark::DoNotOptimize(net.run_round());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineRoundStar)->Arg(64)->Arg(1024)->Arg(16384);

void BM_EngineRoundManyBroadcasters(benchmark::State& state) {
  // Half of a complete graph broadcasting: the collision-heavy worst case.
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto g = graph::make_complete(n);
  radio::RadioNetwork net(g, radio::FaultModel::faultless(), Rng(1));
  for (auto _ : state) {
    for (graph::NodeId u = 0; u < n / 2; ++u)
      net.set_broadcast(u, radio::Packet{u});
    benchmark::DoNotOptimize(net.run_round());
  }
  state.SetItemsProcessed(state.iterations() * (n / 2) * (n - 1));
}
BENCHMARK(BM_EngineRoundManyBroadcasters)->Arg(64)->Arg(256);

void BM_EngineDecayPath(benchmark::State& state) {
  // Full Decay broadcast on a path: end-to-end simulator throughput.
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto g = graph::make_path(n);
  std::uint64_t seed = 7;
  for (auto _ : state) {
    radio::RadioNetwork net(g, radio::FaultModel::receiver(0.3), Rng(seed));
    Rng rng(seed ^ 0xfeed);
    ++seed;
    benchmark::DoNotOptimize(core::Decay().run(net, 0, rng));
  }
}
BENCHMARK(BM_EngineDecayPath)->Arg(256)->Arg(1024);

void BM_EngineKernel(benchmark::State& state, radio::RadioNetwork::Kernel k) {
  // The kernel-selection regime: a G(n, p) graph with half the nodes
  // broadcasting, forced through one kernel.
  const auto n = static_cast<graph::NodeId>(state.range(0));
  Rng grng(11);
  const auto g = graph::make_connected_gnp(n, 16.0 / n, grng);
  radio::RadioNetwork net(g, radio::FaultModel::combined(0.1, 0.1), Rng(2));
  net.set_kernel(k);
  for (auto _ : state) {
    for (graph::NodeId u = 0; u < n; u += 2)
      net.set_broadcast(u, radio::Packet{u});
    benchmark::DoNotOptimize(net.run_round());
  }
  state.SetItemsProcessed(state.iterations() * (n / 2));
}
void BM_EngineKernelSparse(benchmark::State& state) {
  BM_EngineKernel(state, radio::RadioNetwork::Kernel::kSparse);
}
void BM_EngineKernelDense(benchmark::State& state) {
  BM_EngineKernel(state, radio::RadioNetwork::Kernel::kDense);
}
BENCHMARK(BM_EngineKernelSparse)->Arg(1024)->Arg(16384);
BENCHMARK(BM_EngineKernelDense)->Arg(1024)->Arg(16384);

void BM_EngineSinrDisk(benchmark::State& state) {
  // SINR interference round on a unit-disk graph, half the nodes
  // broadcasting: one gain-table walk per touched listener.  Comparable to
  // BM_EngineKernel* (same items metric), which prices the edge-fault rule.
  const auto n = state.range(0);
  const auto scenario = sim::Scenario::parse(
      "disk:" + std::to_string(n) + (n >= 1024 ? ":0.08" : ":0.15"), "none",
      0, 1, 17, "sinr:2.5:0.001:1.0");
  graph::Geometry geometry;
  const auto g = scenario.build_graph(&geometry);
  radio::RadioNetwork net(g, scenario.channel, &geometry, Rng(2));
  for (auto _ : state) {
    for (graph::NodeId u = 0; u < g.node_count(); u += 2)
      net.set_broadcast(u, radio::Packet{u});
    benchmark::DoNotOptimize(net.run_round());
  }
  state.SetItemsProcessed(state.iterations() * (n / 2));
}
BENCHMARK(BM_EngineSinrDisk)->Arg(256)->Arg(1024);

void BM_EngineSilentRounds(benchmark::State& state) {
  const auto g = graph::make_path(1024);
  radio::RadioNetwork net(g, radio::FaultModel::receiver(0.3), Rng(3));
  for (auto _ : state) {
    net.run_silent_rounds(1024);
    benchmark::DoNotOptimize(net.round_number());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EngineSilentRounds);

void BM_EngineDecayTrials(benchmark::State& state,
                          sim::TrialExecution execution) {
  // Eight Decay trials through the Driver: the scalar variant runs one
  // RadioNetwork per trial, the lockstep variant one 8-lane bank sharing
  // an adjacency pass per round.  Outcomes are bit-identical; only the
  // wall clock differs.
  const auto n = state.range(0);
  const auto scenario = sim::Scenario::parse(
      "path:" + std::to_string(n), "receiver:0.3", 0, 1, 21);
  sim::DriverOptions options;
  options.execution = execution;
  const sim::Driver driver;
  for (auto _ : state)
    benchmark::DoNotOptimize(driver.run(scenario, "decay", 8, options));
  state.SetItemsProcessed(state.iterations() * 8);
}
void BM_EngineDecayTrialsScalar(benchmark::State& state) {
  BM_EngineDecayTrials(state, sim::TrialExecution::kScalar);
}
void BM_EngineDecayTrialsLockstep(benchmark::State& state) {
  BM_EngineDecayTrials(state, sim::TrialExecution::kLockstep);
}
BENCHMARK(BM_EngineDecayTrialsScalar)->Arg(64)->Arg(256);
BENCHMARK(BM_EngineDecayTrialsLockstep)->Arg(64)->Arg(256);

void BM_SweepThroughput(benchmark::State& state) {
  // End-to-end: SweepRunner -> Driver -> protocol -> engine, the path a
  // production grid run exercises (no cache, single worker -- the engine
  // dominates).
  const auto plan = sim::SweepPlan::parse(
      "topology=gnp:192:0.08,path:96; fault=none,receiver:0.3; "
      "protocols=decay; trials=3; seed=11");
  const sim::SweepRunner runner;
  std::int64_t trials = 0;
  for (auto _ : state) {
    const auto report = runner.run(plan);
    for (const auto& cell : report.cells)
      trials += static_cast<std::int64_t>(cell.experiment.trials.size());
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(trials);
}
BENCHMARK(BM_SweepThroughput);

void BM_Gf256Mul(benchmark::State& state) {
  const auto& f = coding::Gf256::instance();
  Rng rng(3);
  std::vector<std::uint8_t> xs(4096), ys(4096);
  for (auto& x : xs) x = static_cast<std::uint8_t>(rng.next_below(256));
  for (auto& y : ys) y = static_cast<std::uint8_t>(rng.next_below(256));
  for (auto _ : state) {
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < xs.size(); ++i)
      acc = f.add(acc, f.mul(xs[i], ys[i]));
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Gf256Mul);

void BM_Gf65536Mul(benchmark::State& state) {
  const auto& f = coding::Gf65536::instance();
  Rng rng(4);
  std::vector<std::uint16_t> xs(4096), ys(4096);
  for (auto& x : xs) x = static_cast<std::uint16_t>(rng.next_below(65536));
  for (auto& y : ys) y = static_cast<std::uint16_t>(rng.next_below(65536));
  for (auto _ : state) {
    std::uint16_t acc = 0;
    for (std::size_t i = 0; i < xs.size(); ++i)
      acc = f.add(acc, f.mul(xs[i], ys[i]));
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Gf65536Mul);

void BM_RsEncode(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  std::vector<std::vector<coding::Gf65536::Symbol>> msgs(
      k, std::vector<coding::Gf65536::Symbol>(8));
  for (auto& m : msgs)
    for (auto& s : m) s = static_cast<coding::Gf65536::Symbol>(rng.next_below(65536));
  coding::ReedSolomon rs(k, 8);
  std::uint32_t idx = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.encode_packet(msgs, idx));
    idx = (idx + 1) % coding::ReedSolomon::max_packets();
  }
}
BENCHMARK(BM_RsEncode)->Arg(16)->Arg(64)->Arg(256);

void BM_RsDecode(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  std::vector<std::vector<coding::Gf65536::Symbol>> msgs(
      k, std::vector<coding::Gf65536::Symbol>(4));
  for (auto& m : msgs)
    for (auto& s : m) s = static_cast<coding::Gf65536::Symbol>(rng.next_below(65536));
  coding::ReedSolomon rs(k, 4);
  const auto packets = rs.encode(msgs, static_cast<std::uint32_t>(k));
  for (auto _ : state) benchmark::DoNotOptimize(rs.decode(packets));
}
BENCHMARK(BM_RsDecode)->Arg(16)->Arg(64);

void BM_RlncAbsorb(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  coding::RlncState src(k, 0);
  src.seed_source({});
  for (auto _ : state) {
    state.PauseTiming();
    coding::RlncState sink(k, 0);
    std::vector<coding::RlncPacket> packets;
    for (std::size_t i = 0; i < k; ++i) packets.push_back(src.emit(rng));
    state.ResumeTiming();
    for (const auto& p : packets) sink.absorb(p);
    benchmark::DoNotOptimize(sink.rank());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(k));
}
BENCHMARK(BM_RlncAbsorb)->Arg(16)->Arg(64)->Arg(128);

void BM_RlncEmit(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  coding::RlncState src(k, 0);
  src.seed_source({});
  for (auto _ : state) benchmark::DoNotOptimize(src.emit(rng));
}
BENCHMARK(BM_RlncEmit)->Arg(16)->Arg(64)->Arg(128);

void BM_RngBernoulliTape(benchmark::State& state) {
  // Cost of per-delivery fault coins (the design DESIGN.md ablates
  // against pre-sampled tapes).
  Rng rng(9);
  for (auto _ : state) {
    int hits = 0;
    for (int i = 0; i < 4096; ++i) hits += rng.bernoulli(0.5) ? 1 : 0;
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_RngBernoulliTape);

void BM_RngBernoulliSkip(benchmark::State& state) {
  // O(k) selection over 4096 candidates at p = 2^-i: the Decay staging
  // loop's cost model.  Items = candidates considered, so this is directly
  // comparable to BM_RngBernoulliTape.
  const auto i = static_cast<std::int32_t>(state.range(0));
  Rng rng(10);
  for (auto _ : state) {
    int hits = 0;
    rng.for_each_bernoulli_pow2(4096, i, [&](std::size_t) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_RngBernoulliSkip)->Arg(1)->Arg(4)->Arg(8);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): stamp the *benchmark binary's*
// build type into the JSON context.  The library's own "library_build_type"
// reflects how the system libbenchmark was compiled, not this code, so
// tools/bench_diff gates on "nrn_build_type" to refuse comparing numbers
// from unoptimized builds.
int main(int argc, char** argv) {
#if defined(NDEBUG) && defined(__OPTIMIZE__)
  benchmark::AddCustomContext("nrn_build_type", "release");
#else
  benchmark::AddCustomContext("nrn_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

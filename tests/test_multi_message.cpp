// Multi-message RLNC broadcast (Lemmas 12/13): completion, payload
// decodability at every node, and throughput shape.
#include "core/multi_message.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace nrn::core {
namespace {

using graph::make_grid;
using graph::make_path;
using graph::make_star;
using radio::FaultModel;
using radio::RadioNetwork;

std::vector<std::vector<std::uint8_t>> random_messages(std::size_t k,
                                                       std::size_t len,
                                                       Rng& rng) {
  std::vector<std::vector<std::uint8_t>> msgs(
      k, std::vector<std::uint8_t>(len));
  for (auto& m : msgs)
    for (auto& s : m) s = static_cast<std::uint8_t>(rng.next_below(256));
  return msgs;
}

TEST(MultiMessage, DecayPatternCompletesOnPath) {
  const auto g = make_path(24);
  MultiMessageParams params;
  params.k = 8;
  RlncBroadcast algo(g, 0, params);
  RadioNetwork net(g, FaultModel::receiver(0.3), Rng(1));
  Rng rng(2);
  const auto r = algo.run(net, rng);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.messages, 8);
}

TEST(MultiMessage, DecayPatternPayloadsDecodeEverywhere) {
  const auto g = make_grid(5, 5);
  MultiMessageParams params;
  params.k = 6;
  params.block_len = 4;
  RlncBroadcast algo(g, 0, params);
  RadioNetwork net(g, FaultModel::receiver(0.3), Rng(3));
  Rng rng(4);
  const auto msgs = random_messages(6, 4, rng);
  const auto r = algo.run_and_verify(net, rng, msgs);
  EXPECT_TRUE(r.completed);  // includes the decode-equality check
}

TEST(MultiMessage, RobustFastbcPatternCompletesOnPath) {
  const auto g = make_path(48);
  MultiMessageParams params;
  params.k = 6;
  params.pattern = MultiPattern::kRobustFastbc;
  RlncBroadcast algo(g, 0, params);
  RadioNetwork net(g, FaultModel::receiver(0.3), Rng(5));
  Rng rng(6);
  EXPECT_TRUE(algo.run(net, rng).completed);
}

TEST(MultiMessage, RobustFastbcPatternVerifiesPayloads) {
  const auto g = make_path(32);
  MultiMessageParams params;
  params.k = 4;
  params.block_len = 3;
  params.pattern = MultiPattern::kRobustFastbc;
  RlncBroadcast algo(g, 0, params);
  RadioNetwork net(g, FaultModel::sender(0.3), Rng(7));
  Rng rng(8);
  const auto msgs = random_messages(4, 3, rng);
  EXPECT_TRUE(algo.run_and_verify(net, rng, msgs).completed);
}

TEST(MultiMessage, SenderFaultsAlsoWork) {
  const auto g = make_grid(4, 6);
  MultiMessageParams params;
  params.k = 5;
  RlncBroadcast algo(g, 0, params);
  RadioNetwork net(g, FaultModel::sender(0.4), Rng(9));
  Rng rng(10);
  EXPECT_TRUE(algo.run(net, rng).completed);
}

TEST(MultiMessage, StarManyMessages) {
  const auto g = make_star(30);
  MultiMessageParams params;
  params.k = 32;
  RlncBroadcast algo(g, 0, params);
  RadioNetwork net(g, FaultModel::receiver(0.5), Rng(11));
  Rng rng(12);
  const auto r = algo.run(net, rng);
  EXPECT_TRUE(r.completed);
  // Coding on a star should be near Theta(1) per message (Lemma 16 inside
  // the RLNC framework): allow a generous constant but not log n.
  EXPECT_LT(r.rounds_per_message(), 40.0);
}

TEST(MultiMessage, RoundsGrowLinearlyInK) {
  // Lemma 12: k log n term dominates for long paths and many messages, so
  // rounds/message should be roughly flat in k.
  const auto g = make_path(16);
  double rpm_small = 0, rpm_large = 0;
  {
    MultiMessageParams params;
    params.k = 8;
    RlncBroadcast algo(g, 0, params);
    RadioNetwork net(g, FaultModel::receiver(0.3), Rng(13));
    Rng rng(14);
    rpm_small = algo.run(net, rng).rounds_per_message();
  }
  {
    MultiMessageParams params;
    params.k = 64;
    RlncBroadcast algo(g, 0, params);
    RadioNetwork net(g, FaultModel::receiver(0.3), Rng(15));
    Rng rng(16);
    rpm_large = algo.run(net, rng).rounds_per_message();
  }
  EXPECT_LT(rpm_large, rpm_small * 3.0);
}

TEST(MultiMessage, BudgetRespected) {
  const auto g = make_path(32);
  MultiMessageParams params;
  params.k = 8;
  params.max_rounds = 5;
  RlncBroadcast algo(g, 0, params);
  RadioNetwork net(g, FaultModel::faultless(), Rng(17));
  Rng rng(18);
  const auto r = algo.run(net, rng);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.rounds, 5);
}

TEST(MultiMessage, SingleMessageDegenerate) {
  const auto g = make_path(8);
  MultiMessageParams params;
  params.k = 1;
  RlncBroadcast algo(g, 0, params);
  RadioNetwork net(g, FaultModel::faultless(), Rng(19));
  Rng rng(20);
  EXPECT_TRUE(algo.run(net, rng).completed);
}

TEST(MultiMessage, VerifyRequiresPayloadMode) {
  const auto g = make_path(8);
  MultiMessageParams params;
  params.k = 2;
  RlncBroadcast algo(g, 0, params);
  RadioNetwork net(g, FaultModel::faultless(), Rng(21));
  Rng rng(22);
  EXPECT_THROW(algo.run_and_verify(net, rng, {}), ContractViolation);
}

}  // namespace
}  // namespace nrn::core

// The serve wire protocol: strict line-JSON parsing (everything malformed
// throws WireError, nothing crashes), escaping, typed field access, and
// deterministic serialization round trips.
#include "serve/wire.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace nrn::serve {
namespace {

TEST(Wire, SerializeParseRoundTripPreservesTypedFields) {
  Message out("submit");
  out.set("plan", "topology=path:8; protocols=decay")
      .set("cells", std::int64_t{42})
      .set("warm", true)
      .set("cold", false)
      .set("negative", std::int64_t{-7});
  const Message in = Message::parse(out.serialize());
  EXPECT_EQ(in.type(), "submit");
  EXPECT_EQ(in.str("plan"), "topology=path:8; protocols=decay");
  EXPECT_EQ(in.integer("cells"), 42);
  EXPECT_TRUE(in.boolean("warm"));
  EXPECT_FALSE(in.boolean("cold"));
  EXPECT_EQ(in.integer("negative"), -7);
  // Round trip is byte-stable (insertion order preserved).
  EXPECT_EQ(in.serialize(), out.serialize());
}

TEST(Wire, EscapingSurvivesHostilePayloads) {
  const std::string hostile =
      "quote\" backslash\\ newline\n tab\t cr\r bell\x07 null";
  Message out("echo");
  out.set("payload", hostile + std::string(1, '\0') + "after");
  const Message in = Message::parse(out.serialize());
  EXPECT_EQ(in.str("payload"), hostile + std::string(1, '\0') + "after");
  // The serialized line itself never contains a raw newline -- framing is
  // what the whole protocol hangs on.
  EXPECT_EQ(out.serialize().find('\n'), std::string::npos);
  EXPECT_EQ(out.serialize().find('\r'), std::string::npos);
}

TEST(Wire, UnicodeEscapesDecodeToUtf8) {
  const Message in = Message::parse(
      "{\"type\":\"t\",\"s\":\"A\\u00e9\\u20ac\"}");
  EXPECT_EQ(in.str("s"), "A\xc3\xa9\xe2\x82\xac");  // A, e-acute, euro
  // Surrogates and non-hex digits are rejected, not mangled.
  EXPECT_THROW(Message::parse("{\"type\":\"t\",\"s\":\"\\ud800\"}"),
               WireError);
  EXPECT_THROW(Message::parse("{\"type\":\"t\",\"s\":\"\\uZZZZ\"}"),
               WireError);
}

TEST(Wire, IntegerBoundsAndMalformedNumbers) {
  EXPECT_EQ(Message::parse(R"({"type":"t","v":9223372036854775807})")
                .integer("v"),
            INT64_MAX);
  EXPECT_EQ(Message::parse(R"({"type":"t","v":-9223372036854775808})")
                .integer("v"),
            INT64_MIN);
  EXPECT_THROW(Message::parse(R"({"type":"t","v":9223372036854775808})"),
               WireError);
  EXPECT_THROW(Message::parse(R"({"type":"t","v":1.5})"), WireError);
  EXPECT_THROW(Message::parse(R"({"type":"t","v":1e3})"), WireError);
  EXPECT_THROW(Message::parse(R"({"type":"t","v":-})"), WireError);
}

TEST(Wire, MalformedLinesAllThrowWireError) {
  const std::vector<std::string> bad = {
      "",                                    // empty
      "not json",                            // not an object
      "{",                                   // truncated
      R"({"type":"t")",                      // unterminated object
      R"({"type":"t"} trailing)",            // trailing data
      R"({"type":"t",})",                    // trailing comma
      R"({"plan":"x"})",                     // no type
      R"({"type":""})",                      // empty type
      R"({"type":42})",                      // non-string type
      R"({"type":"t","a":1,"a":2})",         // duplicate key
      R"({"type":"t","type":"u"})",          // duplicate type
      R"({"type":"t","v":null})",            // null not in protocol
      R"({"type":"t","v":{"x":1}})",         // nested object
      R"({"type":"t","v":[1,2]})",           // nested array
      R"({"type":"t","v":"unterminated)",    // unterminated string
      R"({"type":"t","v":"bad \q escape"})",  // unknown escape
      R"({"type":"t","":1})",                // empty key
      "{\"type\":\"t\",\"v\":\"raw\nnewline\"}",  // raw control char
  };
  for (const auto& line : bad)
    EXPECT_THROW(Message::parse(line), WireError) << line;
}

TEST(Wire, WhitespaceTolerantBetweenTokens) {
  const Message in = Message::parse(
      "  { \"type\" : \"t\" , \"a\" : 1 , \"b\" : true }  ");
  EXPECT_EQ(in.type(), "t");
  EXPECT_EQ(in.integer("a"), 1);
  EXPECT_TRUE(in.boolean("b"));
}

TEST(Wire, TypedAccessorsEnforcePresenceAndKind) {
  const Message in =
      Message::parse(R"({"type":"t","s":"text","n":5,"b":true})");
  EXPECT_TRUE(in.has("s"));
  EXPECT_FALSE(in.has("missing"));
  EXPECT_THROW(in.str("missing"), WireError);
  EXPECT_THROW(in.str("n"), WireError);      // wrong kind
  EXPECT_THROW(in.integer("s"), WireError);  // wrong kind
  EXPECT_THROW(in.boolean("n"), WireError);  // wrong kind
  EXPECT_EQ(in.integer_or("n", 9), 5);
  EXPECT_EQ(in.integer_or("missing", 9), 9);
}

TEST(Wire, ReportSizedPayloadRoundTrips) {
  // A plan_done line carries a whole shard file; make sure a payload of
  // that scale survives escape/parse intact.
  std::string report;
  for (int i = 0; i < 5000; ++i)
    report += "cell " + std::to_string(i) + "\trounds=12\n";
  Message out("plan_done");
  out.set("report", report);
  EXPECT_EQ(Message::parse(out.serialize()).str("report"), report);
}

}  // namespace
}  // namespace nrn::serve

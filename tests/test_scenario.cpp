// Scenario spec grammar: every documented topology/fault spec round-trips
// into the right structure, and malformed specs fail loudly with SpecError
// instead of strtoll silently yielding zero.
#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "sim_test_util.hpp"

namespace nrn::sim {
namespace {

using testutil::build_topology;

TEST(TopologySpec, EveryDocumentedKindBuilds) {
  struct Case {
    std::string spec;
    std::int64_t expected_nodes;  ///< -1 = only check it builds connected
  };
  const Case cases[] = {
      {"path:64", 64},
      {"cycle:12", 12},
      {"star:10", 11},           // hub + leaves
      {"complete:8", 8},
      {"grid:4x6", 24},
      {"gnp:50:0.2", 50},
      {"tree:40", 40},
      {"binary-tree:31", 31},
      {"hypercube:5", 32},
      {"caterpillar:10:3", 40},  // spine + spine*legs
      {"ring:4:5", 20},
      {"barbell:5:3", -1},
      {"lollipop:6:4", 10},
      {"regular:16:4", 16},
      {"link", 2},
      {"wct:100", -1},
      {"disk:40:0.35", 40},
      {"uniform:40:3.0", 40},
  };
  for (const auto& c : cases) {
    const auto g = build_topology(c.spec);
    if (c.expected_nodes >= 0) {
      EXPECT_EQ(g.node_count(), c.expected_nodes) << c.spec;
    }
    EXPECT_GE(g.node_count(), 2) << c.spec;
  }
}

TEST(TopologySpec, KindListMatchesGrammar) {
  const auto& kinds = topology_kinds();
  EXPECT_EQ(kinds.size(), 18u);
  for (const auto& kind : kinds) {
    SCOPED_TRACE(kind);
    // Every advertised kind must at least be recognized by the parser
    // (arity errors are fine; "unknown topology" is not).
    try {
      TopologySpec::parse(kind + ":8:8");
    } catch (const SpecError& e) {
      EXPECT_EQ(std::string(e.what()).find("unknown topology"),
                std::string::npos);
    }
  }
}

TEST(TopologySpec, RandomizedFamiliesAreFlagged) {
  EXPECT_TRUE(TopologySpec::parse("gnp:50:0.2").randomized());
  EXPECT_TRUE(TopologySpec::parse("tree:40").randomized());
  EXPECT_TRUE(TopologySpec::parse("regular:16:4").randomized());
  EXPECT_TRUE(TopologySpec::parse("wct:100").randomized());
  EXPECT_TRUE(TopologySpec::parse("disk:40:0.3").randomized());
  EXPECT_TRUE(TopologySpec::parse("uniform:40:2.0").randomized());
  EXPECT_FALSE(TopologySpec::parse("path:64").randomized());
  EXPECT_FALSE(TopologySpec::parse("grid:4x6").randomized());
}

TEST(TopologySpec, GeometricFamiliesAreFlagged) {
  EXPECT_TRUE(TopologySpec::parse("disk:40:0.3").geometric());
  EXPECT_TRUE(TopologySpec::parse("uniform:40:2.0").geometric());
  EXPECT_FALSE(TopologySpec::parse("gnp:40:0.2").geometric());
  EXPECT_FALSE(TopologySpec::parse("grid:4x6").geometric());
}

TEST(TopologySpec, RejectsMalformedSpecs) {
  const std::string bad[] = {
      "",                // empty
      "path",            // missing size
      "path:",           // empty size
      "path:abc",        // non-numeric (the old strtoll would yield 0)
      "path:64:9",       // trailing junk argument
      "path:-3",         // non-positive
      "path:12x",        // junk suffix on the number
      "grid:4",          // missing RxC
      "grid:4x",         // empty cols
      "grid:4x4x4",      // too many dims
      "grid:ax4",        // non-numeric rows
      "gnp:50",          // missing p
      "gnp:50:bogus",    // non-numeric p
      "gnp:50:1.5",      // p out of range
      "gnp:50:nan",      // non-finite p must not slip past range checks
      "gnp:50:inf",      // likewise
      "hypercube:0",     // degenerate
      "hypercube:40",    // would explode
      "cycle:2",         // below minimum
      "regular:5:3",     // odd n*d
      "regular:4:9",     // degree too large
      "wct:4",           // budget too small
      "wct:8:2",         // wrong arity (1 or 4 arguments)
      "wct:8:0:4:1",     // degenerate class count
      "wct:2000000000:1:1000:2000000",  // total node count overflows
      "mesh:8",          // unknown kind
      "path:4294967299", // would truncate to int32 (2^32 + 3 -> 3)
      "grid:65536x65536",  // rows * cols overflows int32
      "caterpillar:2000000000:2000000000",  // spine * legs overflows
      "regular:3037000500:3037000499",      // parity product overflow
  };
  for (const auto& spec : bad)
    EXPECT_THROW(TopologySpec::parse(spec), SpecError) << "'" << spec << "'";
}

/// Runs `fn`, which must throw SpecError, and returns the exact message.
template <typename Fn>
std::string spec_error_of(Fn&& fn) {
  try {
    fn();
  } catch (const SpecError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected SpecError, got no exception";
  return "";
}

TEST(TopologySpec, GeometricRejectionsNameTheProblem) {
  struct Case {
    std::string spec;
    std::string message;
  };
  const Case cases[] = {
      {"disk:16", "disk wants disk:n:radius or disk:n:radius:power"},
      {"disk:16:0.3:1.0:9", "disk wants disk:n:radius or disk:n:radius:power"},
      {"disk:0:0.3", "topology 'disk:0:0.3': n must be positive"},
      {"disk:16:-0.5", "topology 'disk:16:-0.5': radius must be positive"},
      {"disk:16:0", "topology 'disk:16:0': radius must be positive"},
      {"disk:16:0.3:0", "topology 'disk:16:0.3:0': power must be positive"},
      {"uniform:16", "uniform wants uniform:n:density"},
      {"uniform:16:2.0:9", "uniform wants uniform:n:density"},
      {"uniform:0:2.0", "topology 'uniform:0:2.0': n must be positive"},
      {"uniform:16:-2", "topology 'uniform:16:-2': density must be positive"},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.spec);
    EXPECT_EQ(spec_error_of([&] { TopologySpec::parse(c.spec); }), c.message);
  }
}

TEST(ChannelSpec, ParsesAllDocumentedForms) {
  const auto fault = parse_fault_spec("receiver:0.25");
  const auto edge = parse_channel_spec("none", fault);
  EXPECT_TRUE(edge.is_edge_fault());
  EXPECT_EQ(edge.fault.kind, radio::FaultKind::kReceiver);
  const auto sinr =
      parse_channel_spec("sinr:2.5:0.001:1.25", radio::FaultModel::faultless());
  EXPECT_FALSE(sinr.is_edge_fault());
  EXPECT_DOUBLE_EQ(sinr.sinr.alpha, 2.5);
  EXPECT_DOUBLE_EQ(sinr.sinr.noise_floor, 0.001);
  EXPECT_DOUBLE_EQ(sinr.sinr.beta, 1.25);
}

TEST(ChannelSpec, RejectionsNameTheProblem) {
  struct Case {
    std::string spec;
    std::string message;
  };
  const Case cases[] = {
      {"", "empty channel spec"},
      {"none:1", "channel 'none' takes no arguments"},
      {"sinr", "channel 'sinr' wants sinr:alpha:noise:beta"},
      {"sinr:2.0", "channel 'sinr' wants sinr:alpha:noise:beta"},
      {"sinr:2:0.1:1:9", "channel 'sinr' wants sinr:alpha:noise:beta"},
      {"sinr:0:0.1:1", "channel 'sinr:0:0.1:1': alpha must be positive"},
      {"sinr:-2:0.1:1", "channel 'sinr:-2:0.1:1': alpha must be positive"},
      {"sinr:2:-0.1:1",
       "channel 'sinr:2:-0.1:1': noise floor must be non-negative"},
      {"sinr:2:0.1:0", "channel 'sinr:2:0.1:0': beta must be positive"},
      {"awgn:1", "unknown channel model 'awgn'"},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.spec);
    EXPECT_EQ(spec_error_of([&] {
                parse_channel_spec(c.spec, radio::FaultModel::faultless());
              }),
              c.message);
  }
  // Non-numeric arguments route through the strict real parser.
  EXPECT_THROW(
      parse_channel_spec("sinr:two:0.1:1", radio::FaultModel::faultless()),
      SpecError);
  EXPECT_THROW(
      parse_channel_spec("sinr:2:nan:1", radio::FaultModel::faultless()),
      SpecError);
}

TEST(ChannelSpec, ScenarioRejectsContradictoryCombinations) {
  // SINR replaces the fault layer: combining it with an edge-fault spec or
  // a coordinate-free topology must fail at parse time, with the message
  // naming both halves of the contradiction.
  EXPECT_EQ(spec_error_of([] {
              Scenario::parse("disk:32:0.3", "sender:0.1", 0, 1, 1,
                              "sinr:2:0.001:1");
            }),
            "channel 'sinr:2:0.001:1': cannot combine with fault 'sender:0.1'");
  EXPECT_EQ(spec_error_of([] {
              Scenario::parse("path:32", "none", 0, 1, 1, "sinr:2:0.001:1");
            }),
            "channel 'sinr:2:0.001:1': requires a geometric topology, got "
            "'path:32'");
  // The happy paths on either side of those rejections.
  EXPECT_NO_THROW(
      Scenario::parse("disk:32:0.3", "none", 0, 1, 1, "sinr:2:0.001:1"));
  EXPECT_NO_THROW(Scenario::parse("path:32", "sender:0.1", 0, 1, 1, "none"));
  EXPECT_NO_THROW(Scenario::parse("uniform:32:2.0", "combined:0.2:0.1"));
}

TEST(FaultSpec, ParsesAllDocumentedForms) {
  EXPECT_EQ(parse_fault_spec("none").kind, radio::FaultKind::kFaultless);
  const auto sender = parse_fault_spec("sender:0.3");
  EXPECT_EQ(sender.kind, radio::FaultKind::kSender);
  EXPECT_DOUBLE_EQ(sender.p, 0.3);
  const auto receiver = parse_fault_spec("receiver:0.25");
  EXPECT_EQ(receiver.kind, radio::FaultKind::kReceiver);
  EXPECT_DOUBLE_EQ(receiver.p, 0.25);
  const auto combined = parse_fault_spec("combined:0.2:0.1");
  EXPECT_EQ(combined.kind, radio::FaultKind::kCombined);
  EXPECT_DOUBLE_EQ(combined.p, 0.2);
  EXPECT_DOUBLE_EQ(combined.p_receiver, 0.1);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  const std::string bad[] = {
      "",             "noise",        "none:0.1",      "sender",
      "sender:",      "sender:x",     "sender:1.0",    "sender:-0.1",
      "sender:nan",   "receiver:0.2:0.3", "combined:0.2",
      "combined:0.2:zz",
  };
  for (const auto& spec : bad)
    EXPECT_THROW(parse_fault_spec(spec), SpecError) << "'" << spec << "'";
}

TEST(SpecNumbers, StrictIntegerAndRealParsing) {
  EXPECT_EQ(parse_spec_int("42", "x"), 42);
  EXPECT_EQ(parse_spec_int("-7", "x"), -7);
  EXPECT_THROW(parse_spec_int("", "x"), SpecError);
  EXPECT_THROW(parse_spec_int("4 2", "x"), SpecError);
  EXPECT_THROW(parse_spec_int("0x10", "x"), SpecError);
  EXPECT_THROW(parse_spec_int("12.5", "x"), SpecError);
  EXPECT_THROW(parse_spec_int("99999999999999999999999", "x"), SpecError);
  EXPECT_DOUBLE_EQ(parse_spec_real("0.25", "x"), 0.25);
  EXPECT_THROW(parse_spec_real("", "x"), SpecError);
  EXPECT_THROW(parse_spec_real("0.2p", "x"), SpecError);
  EXPECT_THROW(parse_spec_real("nan", "x"), SpecError);
  EXPECT_THROW(parse_spec_real("inf", "x"), SpecError);
  // The unsigned parser covers the full uint64 seed domain.
  EXPECT_EQ(parse_spec_uint("18446744073709551615", "x"),
            ~std::uint64_t{0});
  EXPECT_THROW(parse_spec_uint("-1", "x"), SpecError);
  EXPECT_THROW(parse_spec_uint("abc", "x"), SpecError);
  EXPECT_THROW(parse_spec_uint("18446744073709551616", "x"), SpecError);
}

TEST(Scenario, ParseValidatesEverything) {
  const auto sc = Scenario::parse("grid:16x16", "combined:0.2:0.2", 3, 4, 7);
  EXPECT_EQ(sc.topology.kind, "grid");
  EXPECT_EQ(sc.fault.kind, radio::FaultKind::kCombined);
  EXPECT_EQ(sc.source, 3);
  EXPECT_EQ(sc.k, 4);
  EXPECT_EQ(sc.seed, 7u);
  EXPECT_THROW(Scenario::parse("grid:16x16", "none", -1, 1, 1), SpecError);
  EXPECT_THROW(Scenario::parse("grid:16x16", "none", 0, 0, 1), SpecError);
  EXPECT_THROW(Scenario::parse("grid:16x", "none"), SpecError);
  EXPECT_THROW(Scenario::parse("grid:16x16", "sender:zz"), SpecError);
}

TEST(Scenario, GraphBuildIsDeterministicInSeed) {
  const auto a = Scenario::parse("gnp:60:0.15", "none", 0, 1, 11);
  const auto b = Scenario::parse("gnp:60:0.15", "none", 0, 1, 11);
  const auto c = Scenario::parse("gnp:60:0.15", "none", 0, 1, 12);
  const auto ga = a.build_graph();
  const auto gb = b.build_graph();
  const auto gc = c.build_graph();
  EXPECT_EQ(ga.edge_count(), gb.edge_count());
  for (graph::NodeId u = 0; u < ga.node_count(); ++u)
    ASSERT_EQ(ga.degree(u), gb.degree(u)) << u;
  // A different seed almost surely yields a different random graph.
  bool any_difference = gc.edge_count() != ga.edge_count();
  for (graph::NodeId u = 0; !any_difference && u < ga.node_count(); ++u)
    any_difference = ga.degree(u) != gc.degree(u);
  EXPECT_TRUE(any_difference);
}

TEST(Scenario, DiskPlacementIsDeterministicInSeed) {
  const auto a =
      Scenario::parse("disk:48:0.3:2.0", "none", 0, 1, 21, "sinr:2:0.001:1");
  const auto b =
      Scenario::parse("disk:48:0.3:2.0", "none", 0, 1, 21, "sinr:2:0.001:1");
  graph::Geometry geo_a, geo_b;
  const auto ga = a.build_graph(&geo_a);
  const auto gb = b.build_graph(&geo_b);
  EXPECT_EQ(geo_a, geo_b);
  EXPECT_EQ(ga.edge_count(), gb.edge_count());
  for (graph::NodeId u = 0; u < ga.node_count(); ++u)
    ASSERT_EQ(ga.degree(u), gb.degree(u)) << u;
  EXPECT_EQ(geo_a.node_count(), 48);
  EXPECT_DOUBLE_EQ(geo_a.power.at(0), 2.0);  // disk:n:radius:power

  // Requesting geometry must not perturb the rng draws or the graph.
  const auto g_plain = a.build_graph();
  EXPECT_EQ(g_plain.edge_count(), ga.edge_count());
  for (graph::NodeId u = 0; u < ga.node_count(); ++u)
    ASSERT_EQ(g_plain.degree(u), ga.degree(u)) << u;

  // Replaying topology_rng() through TopologySpec::build reproduces the
  // identical placement -- the contract protocol factories rely on.
  Rng replay = a.topology_rng();
  graph::Geometry geo_replay;
  const auto g_replay = a.topology.build(replay, &geo_replay);
  EXPECT_EQ(geo_replay, geo_a);
  EXPECT_EQ(g_replay.edge_count(), ga.edge_count());

  // A different seed almost surely moves the nodes.
  const auto c =
      Scenario::parse("disk:48:0.3:2.0", "none", 0, 1, 22, "sinr:2:0.001:1");
  graph::Geometry geo_c;
  (void)c.build_graph(&geo_c);
  EXPECT_NE(geo_c, geo_a);
}

TEST(Scenario, DescribeMentionsTheParts) {
  const auto sc = Scenario::parse("path:8", "receiver:0.5", 0, 2, 9);
  const auto text = sc.describe();
  EXPECT_NE(text.find("path:8"), std::string::npos);
  EXPECT_NE(text.find("receiver"), std::string::npos);
  EXPECT_NE(text.find("k=2"), std::string::npos);
  EXPECT_NE(text.find("seed=9"), std::string::npos);
  const auto sinr =
      Scenario::parse("disk:16:0.4", "none", 0, 1, 3, "sinr:2:0.001:1");
  EXPECT_NE(sinr.describe().find("sinr"), std::string::npos);
}

}  // namespace
}  // namespace nrn::sim

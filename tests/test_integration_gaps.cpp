// Cross-module integration: small-scale versions of the paper's gap
// experiments, asserting the *direction* of every headline result.
#include <gtest/gtest.h>

#include <cmath>

#include "core/single_link.hpp"
#include "core/star_schedules.hpp"
#include "core/throughput.hpp"
#include "core/wct_schedules.hpp"
#include "core/bipartite_pipeline.hpp"
#include "graph/generators.hpp"
#include "topology/star.hpp"
#include "topology/wct.hpp"

namespace nrn::core {
namespace {

using radio::FaultModel;
using radio::RadioNetwork;

double star_routing_rpm(std::int32_t leaves, std::int64_t k,
                        std::uint64_t seed) {
  const auto star = topology::make_star(leaves);
  RadioNetwork net(star.graph, FaultModel::receiver(0.5), Rng(seed));
  const auto r = run_star_adaptive_routing(net, star, k, 100'000'000);
  EXPECT_TRUE(r.completed);
  return r.rounds_per_message();
}

double star_coding_rpm(std::int32_t leaves, std::int64_t k,
                       std::uint64_t seed) {
  const auto star = topology::make_star(leaves);
  RadioNetwork net(star.graph, FaultModel::receiver(0.5), Rng(seed));
  const auto r = run_star_rs_coding(net, star, k,
                                    rs_packet_count(k, leaves + 1, 0.5));
  EXPECT_TRUE(r.completed);
  return r.rounds_per_message();
}

TEST(IntegrationGaps, StarGapGrowsWithN) {
  // Theorem 17: the routing/coding gap on the star scales like log n.
  // k large enough that the coded schedule's sqrt(k log nk) slack is
  // amortized (Lemma 16's constant).
  const std::int64_t k = 256;
  const double gap_small =
      star_routing_rpm(64, k, 1) / star_coding_rpm(64, k, 2);
  const double gap_large =
      star_routing_rpm(1024, k, 3) / star_coding_rpm(1024, k, 4);
  EXPECT_GT(gap_large, gap_small * 1.2);
  EXPECT_GT(gap_large, 3.0);
}

TEST(IntegrationGaps, StarRoutingRpmTracksLogN) {
  const std::int64_t k = 48;
  const double rpm_64 = star_routing_rpm(64, k, 5);
  const double rpm_4096 = star_routing_rpm(4096, k, 6);
  // log2(4096)/log2(64) = 2: expect roughly doubled cost.
  EXPECT_GT(rpm_4096 / rpm_64, 1.5);
  EXPECT_LT(rpm_4096 / rpm_64, 3.0);
}

TEST(IntegrationGaps, SingleLinkGapGrowsWithK) {
  // Lemma 31: non-adaptive routing vs coding gap grows like log k.
  auto link_gap = [](std::int64_t k, std::uint64_t seed) {
    const auto g = graph::make_single_link();
    RadioNetwork net_r(g, FaultModel::receiver(0.5), Rng(seed));
    const auto routing =
        run_link_nonadaptive_routing(net_r, k, link_nonadaptive_reps(k, 0.5));
    RadioNetwork net_c(g, FaultModel::receiver(0.5), Rng(seed + 1));
    const auto coding =
        run_link_rs_coding(net_c, k, link_rs_packet_count(k, 0.5));
    EXPECT_TRUE(routing.completed);
    EXPECT_TRUE(coding.completed);
    return routing.rounds_per_message() / coding.rounds_per_message();
  };
  const double gap_16 = link_gap(16, 10);
  const double gap_4096 = link_gap(4096, 12);
  EXPECT_GT(gap_4096, gap_16 * 1.5);
}

TEST(IntegrationGaps, WctRoutingPaysMoreThanCoding) {
  // Theorem 24 direction: on WCT with receiver faults, adaptive routing
  // rounds/message exceeds coding rounds/message substantially.
  Rng grng(20);
  topology::WctParams wp;
  wp.sender_count = 64;
  wp.class_count = 6;
  wp.clusters_per_class = 8;
  wp.cluster_size = 16;
  const topology::WctNetwork wct(wp, grng);

  const std::int64_t k = 24;
  RadioNetwork net_r(wct.graph(), FaultModel::receiver(0.5), Rng(21));
  PipelineParams pipeline;
  pipeline.k = k;
  Rng rng_r(22);
  const auto routing =
      run_layered_pipeline_routing(net_r, wct.source(), pipeline, rng_r);
  ASSERT_TRUE(routing.completed);

  RadioNetwork net_c(wct.graph(), FaultModel::receiver(0.5), Rng(23));
  WctCodedParams coded;
  coded.k = k;
  Rng rng_c(24);
  const auto coding = run_wct_rs_coding(net_c, wct, coded, rng_c);
  ASSERT_TRUE(coding.completed);

  EXPECT_GT(routing.rounds_per_message() / coding.rounds_per_message(), 2.0);
}

TEST(IntegrationGaps, SweepHarnessOnStar) {
  // End-to-end use of the throughput sweep API on a real schedule.
  const auto star = topology::make_star(128);
  const ScheduleFn routing = [&star](std::int64_t k, Rng& rng) {
    RadioNetwork net(star.graph, FaultModel::receiver(0.5),
                     Rng(rng()));
    return run_star_adaptive_routing(net, star, k, 100'000'000);
  };
  Rng rng(30);
  const auto pts = sweep_throughput(routing, {8, 32}, 3, rng);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].success_rate, 1.0);
  EXPECT_DOUBLE_EQ(pts[1].success_rate, 1.0);
  // Cost per message is ~log2(128) + O(1) regardless of k.
  EXPECT_NEAR(pts[0].rounds_per_message, pts[1].rounds_per_message,
              0.6 * pts[1].rounds_per_message);
}

}  // namespace
}  // namespace nrn::core

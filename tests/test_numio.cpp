// Locale-independent numeric round-trips (common/numio).
//
// Two halves: a strict-parser edge suite (hexfloats, subnormals, infinities,
// NaN, overflow, trailing garbage, overlong digit strings), and a locale
// hostility suite that flips the process locale to a comma-decimal one and
// asserts that formatting, parsing, record serialization, and the report
// emitters all stay byte-identical to their C-locale output.  The hostile
// half skips (rather than silently passing) when the container has no
// comma-decimal locale installed; CI installs de_DE.UTF-8 so it runs there.
#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/numio.hpp"
#include "sim_test_util.hpp"

namespace nrn {
namespace {

TEST(ParseReal, AcceptsPlainDecimalAndScientific) {
  EXPECT_DOUBLE_EQ(parse_real("1.5").value, 1.5);
  EXPECT_DOUBLE_EQ(parse_real("-2.25e3").value, -2250.0);
  EXPECT_DOUBLE_EQ(parse_real("0").value, 0.0);
  EXPECT_DOUBLE_EQ(parse_real("  3.5").value, 3.5);  // strtod skips space
  EXPECT_DOUBLE_EQ(parse_real("+.5").value, 0.5);
}

TEST(ParseReal, AcceptsHexfloats) {
  EXPECT_DOUBLE_EQ(parse_real("0x1.8p+1").value, 3.0);
  EXPECT_DOUBLE_EQ(parse_real("-0x1p-2").value, -0.25);
  EXPECT_DOUBLE_EQ(parse_real("0x0p+0").value, 0.0);
}

TEST(ParseReal, AcceptsInfinitiesAndNan) {
  EXPECT_TRUE(std::isinf(parse_real("inf").value));
  EXPECT_TRUE(std::isinf(parse_real("-INF").value));
  EXPECT_LT(parse_real("-inf").value, 0.0);
  EXPECT_TRUE(std::isinf(parse_real("infinity").value));
  EXPECT_TRUE(std::isnan(parse_real("nan").value));
  EXPECT_TRUE(parse_real("nan").ok());
}

TEST(ParseReal, AcceptsSubnormalsAndSignedZero) {
  // strtod flags gradual underflow with ERANGE, but the subnormal it
  // returns is the closest representable value; rejecting it would break
  // round-trips of legitimately tiny serialized reals.
  const auto smallest = parse_real("0x1p-1074");  // smallest subnormal
  EXPECT_TRUE(smallest.ok());
  EXPECT_GT(smallest.value, 0.0);
  EXPECT_DOUBLE_EQ(smallest.value, std::numeric_limits<double>::denorm_min());
  const auto tiny = parse_real("1e-320");
  EXPECT_TRUE(tiny.ok());
  EXPECT_GT(tiny.value, 0.0);
  // Underflow all the way to zero is still the closest representable value.
  EXPECT_TRUE(parse_real("1e-5000").ok());
  EXPECT_DOUBLE_EQ(parse_real("1e-5000").value, 0.0);
  const auto negzero = parse_real("-0.0");
  EXPECT_TRUE(negzero.ok());
  EXPECT_TRUE(std::signbit(negzero.value));
}

TEST(ParseReal, RejectsOverflow) {
  EXPECT_EQ(parse_real("1e999").status, ParseRealStatus::kOutOfRange);
  EXPECT_EQ(parse_real("-1e999").status, ParseRealStatus::kOutOfRange);
  EXPECT_EQ(parse_real("0x1p+5000").status, ParseRealStatus::kOutOfRange);
  // ... but the largest finite double parses fine.
  EXPECT_TRUE(parse_real("1.7976931348623157e308").ok());
}

TEST(ParseReal, RejectsEmptyAndMalformed) {
  EXPECT_EQ(parse_real("").status, ParseRealStatus::kEmpty);
  EXPECT_EQ(parse_real("abc").status, ParseRealStatus::kMalformed);
  EXPECT_EQ(parse_real("--1").status, ParseRealStatus::kMalformed);
  EXPECT_EQ(parse_real(".").status, ParseRealStatus::kMalformed);
  EXPECT_EQ(parse_real("e5").status, ParseRealStatus::kMalformed);
  EXPECT_EQ(parse_real("0x").status, ParseRealStatus::kTrailingGarbage);
}

TEST(ParseReal, RejectsTrailingGarbage) {
  EXPECT_EQ(parse_real("1.5x").status, ParseRealStatus::kTrailingGarbage);
  EXPECT_EQ(parse_real("1.5 ").status, ParseRealStatus::kTrailingGarbage);
  EXPECT_EQ(parse_real("3,5").status, ParseRealStatus::kTrailingGarbage);
  EXPECT_EQ(parse_real("1e2e3").status, ParseRealStatus::kTrailingGarbage);
  EXPECT_EQ(parse_real("nan?").status, ParseRealStatus::kTrailingGarbage);
}

TEST(ParseReal, SurvivesOverlongDigitStrings) {
  // Thousands of digits must neither crash nor lose precision on the
  // representable prefix.
  const std::string third = "0." + std::string(5000, '3');
  const auto r = parse_real(third);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value, 1.0 / 3.0);
  const std::string padded = "1" + std::string(5000, '0') + "e-5000";
  ASSERT_TRUE(parse_real(padded).ok());
  EXPECT_DOUBLE_EQ(parse_real(padded).value, 1.0);
}

TEST(ParseReal, ErrorPhrasesAreStable) {
  EXPECT_STREQ(parse_real_error(ParseRealStatus::kOk), "is a valid number");
  EXPECT_NE(std::string(parse_real_error(ParseRealStatus::kEmpty)), "");
  EXPECT_NE(std::string(parse_real_error(ParseRealStatus::kMalformed)), "");
  EXPECT_NE(std::string(parse_real_error(ParseRealStatus::kTrailingGarbage)),
            "");
  EXPECT_NE(std::string(parse_real_error(ParseRealStatus::kOutOfRange)), "");
}

TEST(FormatReal, HexRoundTripsEveryShape) {
  const std::vector<double> values = {
      0.0,
      -0.0,
      1.0,
      -1.5,
      1.0 / 3.0,
      6.02e23,
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
  };
  for (const double v : values) {
    const auto r = parse_real(format_real_hex(v));
    ASSERT_TRUE(r.ok()) << format_real_hex(v);
    EXPECT_EQ(std::signbit(r.value), std::signbit(v)) << format_real_hex(v);
    EXPECT_EQ(r.value, v) << format_real_hex(v);
  }
  EXPECT_TRUE(std::isnan(
      parse_real(format_real_hex(std::nan(""))).value));
}

TEST(FormatReal, FixedSurvivesMagnitudesBeyondTheStackBuffer) {
  // %.6f of 1e300 needs ~308 characters; the formatter must grow, not
  // silently truncate to its stack buffer.
  const std::string wide = format_real_fixed(1e300, 6);
  ASSERT_GT(wide.size(), 300u);
  EXPECT_EQ(wide.substr(0, 2), "10");
  EXPECT_EQ(wide.substr(wide.size() - 7), ".000000");
  const auto r = parse_real(wide);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value, 1e300);

  const std::string narrow = format_real_fixed(-2.5, 3);
  EXPECT_EQ(narrow, "-2.500");
}

TEST(FormatReal, SignificantAndFixedDigits) {
  EXPECT_EQ(format_real(0.125, 17), "0.125");
  EXPECT_EQ(format_real(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(format_real_fixed(2.5, 1), "2.5");
  EXPECT_EQ(format_real_fixed(2.0, 0), "2");
  EXPECT_EQ(format_real_fixed(-0.125, 2), "-0.12");  // banker's rounding
}

// ----------------------------------------------------------------- hostile

/// Flips LC_ALL to a comma-decimal locale for one test body; restores on
/// destruction.  `available()` is false when the container has none
/// installed, in which case callers GTEST_SKIP.
class CommaLocale {
 public:
  CommaLocale() {
    for (const char* name :
         {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8", "fr_FR.utf8"}) {
      if (std::setlocale(LC_ALL, name) != nullptr) {
        available_ = true;
        break;
      }
    }
  }
  ~CommaLocale() { std::setlocale(LC_ALL, "C"); }

  bool available() const { return available_; }

  /// True when the active locale really uses a comma decimal point (guards
  /// against aliased locales that fall back to '.').
  bool comma_decimal() const {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", 1.5);
    return std::string(buf) == "1,5";
  }

 private:
  bool available_ = false;
};

#define SKIP_WITHOUT_COMMA_LOCALE(loc)                                  \
  if (!(loc).available() || !(loc).comma_decimal())                     \
  GTEST_SKIP() << "no comma-decimal locale installed in this container"

TEST(LocaleHostility, FormatAndParseIgnoreProcessLocale) {
  CommaLocale locale;
  SKIP_WITHOUT_COMMA_LOCALE(locale);
  EXPECT_EQ(format_real_hex(3.0), "0x1.8p+1");
  EXPECT_EQ(format_real(0.125, 17), "0.125");
  EXPECT_EQ(format_real_fixed(2.5, 1), "2.5");
  EXPECT_DOUBLE_EQ(parse_real("1.5").value, 1.5);
  EXPECT_DOUBLE_EQ(parse_real("0x1.8p+1").value, 3.0);
  // The locale's own spelling is NOT accepted: "3,5" is a strict-parse
  // error everywhere, so a record written anywhere parses the same way.
  EXPECT_EQ(parse_real("3,5").status, ParseRealStatus::kTrailingGarbage);
}

TEST(LocaleHostility, MetricValueRoundTripIsLocaleInvariant) {
  const sim::MetricValue real(1.0 / 3.0);
  const sim::MetricValue tiny(std::numeric_limits<double>::denorm_min());
  const std::string c_real = real.serialize();
  const std::string c_tiny = tiny.serialize();

  CommaLocale locale;
  SKIP_WITHOUT_COMMA_LOCALE(locale);
  EXPECT_EQ(real.serialize(), c_real);
  EXPECT_EQ(tiny.serialize(), c_tiny);
  const auto parsed = sim::MetricValue::parse(c_real);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, real);
}

TEST(LocaleHostility, SweepRecordsAndEmittersAreByteIdentical) {
  using namespace sim;
  const auto plan = SweepPlan::parse(
      "topology=path:10,star:6; fault=receiver:0.25; protocols=decay; "
      "trials=2; seed=5; trace=1");
  const auto c_report = SweepRunner(extended_registry()).run(plan);
  const auto c_shard = testutil::shard_bytes(c_report);
  const auto c_csv = testutil::sweep_csv_of(c_report);
  const auto c_json = testutil::sweep_json_of(c_report);

  CommaLocale locale;
  SKIP_WITHOUT_COMMA_LOCALE(locale);
  // Re-run the whole pipeline (simulate, serialize, parse back, emit)
  // under the hostile locale: every byte must match the C-locale run.
  const auto de_report = SweepRunner(extended_registry()).run(plan);
  EXPECT_EQ(de_report, c_report);
  EXPECT_EQ(testutil::shard_bytes(de_report), c_shard);
  EXPECT_EQ(testutil::sweep_csv_of(de_report), c_csv);
  EXPECT_EQ(testutil::sweep_json_of(de_report), c_json);

  std::istringstream in(c_shard);
  EXPECT_EQ(read_shard_file(in), c_report);
}

}  // namespace
}  // namespace nrn

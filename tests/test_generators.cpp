#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"

namespace nrn::graph {
namespace {

TEST(Generators, Path) {
  const Graph g = make_path(6);
  EXPECT_EQ(g.node_count(), 6);
  EXPECT_EQ(g.edge_count(), 5);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(3), 2);
  EXPECT_EQ(diameter_exact(g), 5);
}

TEST(Generators, PathSingleton) {
  const Graph g = make_path(1);
  EXPECT_EQ(g.node_count(), 1);
  EXPECT_EQ(g.edge_count(), 0);
}

TEST(Generators, Cycle) {
  const Graph g = make_cycle(7);
  EXPECT_EQ(g.edge_count(), 7);
  for (NodeId u = 0; u < 7; ++u) EXPECT_EQ(g.degree(u), 2);
  EXPECT_EQ(diameter_exact(g), 3);
}

TEST(Generators, Star) {
  const Graph g = make_star(9);
  EXPECT_EQ(g.node_count(), 10);
  EXPECT_EQ(g.degree(0), 9);
  for (NodeId u = 1; u < 10; ++u) EXPECT_EQ(g.degree(u), 1);
  EXPECT_EQ(diameter_exact(g), 2);
}

TEST(Generators, SingleLink) {
  const Graph g = make_single_link();
  EXPECT_EQ(g.node_count(), 2);
  EXPECT_EQ(g.edge_count(), 1);
}

TEST(Generators, Complete) {
  const Graph g = make_complete(5);
  EXPECT_EQ(g.edge_count(), 10);
  EXPECT_EQ(diameter_exact(g), 1);
}

TEST(Generators, Grid) {
  const Graph g = make_grid(3, 4);
  EXPECT_EQ(g.node_count(), 12);
  // 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8.
  EXPECT_EQ(g.edge_count(), 17);
  EXPECT_EQ(diameter_exact(g), 5);
  EXPECT_EQ(g.degree(0), 2);   // corner
  EXPECT_EQ(g.degree(5), 4);   // interior (row 1, col 1)
}

TEST(Generators, BinaryTree) {
  const Graph g = make_binary_tree(15);
  EXPECT_EQ(g.edge_count(), 14);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(0), 2);
}

TEST(Generators, Caterpillar) {
  const Graph g = make_caterpillar(5, 3);
  EXPECT_EQ(g.node_count(), 20);
  EXPECT_EQ(g.edge_count(), 4 + 15);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(0), 1 + 3);  // spine end
  EXPECT_EQ(g.degree(2), 2 + 3);  // spine middle
}

TEST(Generators, CaterpillarNoLegsIsPath) {
  const Graph g = make_caterpillar(4, 0);
  EXPECT_EQ(g.node_count(), 4);
  EXPECT_EQ(g.edge_count(), 3);
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = make_random_tree(50, rng);
    EXPECT_EQ(g.edge_count(), 49);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, ConnectedGnpIsConnected) {
  Rng rng(7);
  for (double p : {0.0, 0.05, 0.2}) {
    const Graph g = make_connected_gnp(60, p, rng);
    EXPECT_TRUE(is_connected(g));
    EXPECT_GE(g.edge_count(), 59);
  }
}

TEST(Generators, ConnectedGnpDensityGrowsWithP) {
  Rng rng(11);
  const Graph sparse = make_connected_gnp(80, 0.02, rng);
  const Graph dense = make_connected_gnp(80, 0.5, rng);
  EXPECT_GT(dense.edge_count(), sparse.edge_count());
}

TEST(Generators, RandomBipartiteSidesHaveNoInternalEdges) {
  Rng rng(13);
  const Graph g = make_random_bipartite(10, 12, 0.4, rng);
  for (NodeId u = 0; u < 10; ++u)
    for (NodeId v = u + 1; v < 10; ++v) EXPECT_FALSE(g.has_edge(u, v));
  for (NodeId u = 10; u < 22; ++u)
    for (NodeId v = u + 1; v < 22; ++v) EXPECT_FALSE(g.has_edge(u, v));
}

TEST(Generators, Barbell) {
  const Graph g = make_barbell(4, 3);
  EXPECT_EQ(g.node_count(), 10);
  EXPECT_TRUE(is_connected(g));
  // Diameter: across bridge (3) plus one hop into each clique.
  EXPECT_EQ(diameter_exact(g), 5);
}

TEST(Generators, Lollipop) {
  const Graph g = make_lollipop(4, 5);
  EXPECT_EQ(g.node_count(), 9);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(diameter_exact(g), 6);
}

TEST(Generators, RejectBadParameters) {
  EXPECT_THROW(make_cycle(2), ContractViolation);
  EXPECT_THROW(make_star(0), ContractViolation);
  EXPECT_THROW(make_grid(0, 3), ContractViolation);
  Rng rng(1);
  EXPECT_THROW(make_connected_gnp(1, 0.1, rng), ContractViolation);
  EXPECT_THROW(make_connected_gnp(5, 1.5, rng), ContractViolation);
}

}  // namespace
}  // namespace nrn::graph

// Engine v4: the sparse and dense round kernels must be observationally
// identical (deliveries, stats, and coin tape), the v4 coin-tape contract
// documented in radio/network.hpp must hold exactly (one salt per active
// round, all coins stateless mixes keyed by node id), and the silent-round
// fast path, bulk staging, and O(1) reset must preserve all bookkeeping.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "graph/generators.hpp"
#include "radio/network.hpp"

namespace nrn::radio {
namespace {

using graph::Graph;
using graph::NodeId;

/// Flattened observable state of one round: deliveries in emission order
/// plus the stats counters.
struct RoundTrace {
  std::vector<std::tuple<NodeId, NodeId, PacketId>> deliveries;
  std::int64_t collisions = 0;
  std::int64_t sender_losses = 0;
  std::int64_t receiver_losses = 0;

  friend bool operator==(const RoundTrace&, const RoundTrace&) = default;
};

RoundTrace trace_round(RadioNetwork& net,
                       const std::vector<NodeId>& broadcasters) {
  for (const NodeId u : broadcasters) net.set_broadcast(u, Packet{u});
  RoundTrace trace;
  for (const auto& d : net.run_round())
    trace.deliveries.emplace_back(d.receiver, d.sender, d.packet.id);
  trace.collisions = net.last_round().collision_losses;
  trace.sender_losses = net.last_round().sender_fault_losses;
  trace.receiver_losses = net.last_round().receiver_fault_losses;
  return trace;
}

/// Random broadcast pattern with density `q` in staging order id-descending
/// (so staging order differs from id order and the two cannot be conflated).
std::vector<NodeId> random_plan(const Graph& g, double q, Rng& rng) {
  std::vector<NodeId> plan;
  for (NodeId u = g.node_count() - 1; u >= 0; --u)
    if (rng.bernoulli(q)) plan.push_back(u);
  return plan;
}

TEST(EngineKernels, DenseSparseAndAutoAreBitIdentical) {
  Rng meta(12345);
  const FaultModel models[] = {
      FaultModel::faultless(), FaultModel::sender(0.3),
      FaultModel::receiver(0.4), FaultModel::combined(0.2, 0.3)};
  for (int instance = 0; instance < 8; ++instance) {
    const auto n = static_cast<NodeId>(10 + meta.next_below(40));
    const Graph g = graph::make_connected_gnp(n, 0.15, meta);
    for (const auto& fm : models) {
      const std::uint64_t seed = meta();
      RadioNetwork sparse(g, fm, Rng(seed));
      RadioNetwork dense(g, fm, Rng(seed));
      RadioNetwork automatic(g, fm, Rng(seed));
      sparse.set_kernel(RadioNetwork::Kernel::kSparse);
      dense.set_kernel(RadioNetwork::Kernel::kDense);
      Rng plan_rng(seed ^ 0xabcdef);
      for (int round = 0; round < 25; ++round) {
        const auto plan = random_plan(g, 0.3, plan_rng);
        const auto a = trace_round(sparse, plan);
        const auto b = trace_round(dense, plan);
        const auto c = trace_round(automatic, plan);
        ASSERT_EQ(a, b) << "instance " << instance << " round " << round;
        ASSERT_EQ(a, c) << "instance " << instance << " round " << round;
      }
      EXPECT_EQ(sparse.totals().deliveries, dense.totals().deliveries);
      EXPECT_EQ(sparse.totals().collision_losses,
                dense.totals().collision_losses);
    }
  }
}

// The word-parallel adjacent kernel (eligible when every edge joins
// consecutive ids) must be observationally identical to the node-slot
// kernels, across fault models, on a plain path and on a disjoint union
// of id-contiguous subpaths with gaps mid-word and at word boundaries.
TEST(EngineKernels, AdjacentKernelIsBitIdenticalOnConsecutiveTopologies) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  const NodeId kSegmented = 150;
  for (NodeId v = 0; v + 1 < kSegmented; ++v)
    if (v % 7 != 3 && v != 63 && v != 64) edges.emplace_back(v, v + 1);
  const Graph topologies[] = {graph::make_path(130),
                              Graph(kSegmented, edges)};
  const FaultModel models[] = {
      FaultModel::faultless(), FaultModel::sender(0.3),
      FaultModel::receiver(0.4), FaultModel::combined(0.2, 0.3)};
  Rng meta(909);
  for (const Graph& g : topologies) {
    ASSERT_TRUE(RadioNetwork::consecutive_adjacency(g));
    for (const auto& fm : models) {
      const std::uint64_t seed = meta();
      RadioNetwork adjacent(g, fm, Rng(seed));
      RadioNetwork sparse(g, fm, Rng(seed));
      RadioNetwork dense(g, fm, Rng(seed));
      adjacent.set_kernel(RadioNetwork::Kernel::kAdjacent);
      sparse.set_kernel(RadioNetwork::Kernel::kSparse);
      dense.set_kernel(RadioNetwork::Kernel::kDense);
      Rng plan_rng(seed ^ 0x1234);
      for (int round = 0; round < 30; ++round) {
        const auto plan = random_plan(g, 0.35, plan_rng);
        const auto a = trace_round(adjacent, plan);
        const auto b = trace_round(sparse, plan);
        const auto c = trace_round(dense, plan);
        ASSERT_EQ(a, b) << "round " << round;
        ASSERT_EQ(a, c) << "round " << round;
      }
    }
  }
}

TEST(EngineKernels, AdjacentKernelRequiresEligibleTopology) {
  Rng meta(31);
  EXPECT_TRUE(RadioNetwork::consecutive_adjacency(graph::make_path(20)));
  EXPECT_FALSE(RadioNetwork::consecutive_adjacency(graph::make_star(4)));
  EXPECT_FALSE(RadioNetwork::consecutive_adjacency(graph::make_cycle(8)));
  EXPECT_FALSE(RadioNetwork::consecutive_adjacency(
      graph::make_connected_gnp(24, 0.3, meta)));

  const Graph star = graph::make_star(4);
  RadioNetwork net(star, FaultModel::faultless(), Rng(1));
  EXPECT_THROW(net.set_kernel(RadioNetwork::Kernel::kAdjacent),
               ContractViolation);

  // Kernel choice is a per-round representation decision: switching with
  // a plan already staged is a contract violation.
  const Graph path = graph::make_path(6);
  RadioNetwork path_net(path, FaultModel::faultless(), Rng(2));
  path_net.set_broadcast(0, Packet{0});
  EXPECT_THROW(path_net.set_kernel(RadioNetwork::Kernel::kSparse),
               ContractViolation);
  path_net.run_round();
  path_net.set_kernel(RadioNetwork::Kernel::kSparse);  // empty plan: fine
}

TEST(EngineKernels, DeliveriesEmittedInAscendingReceiverId) {
  Rng meta(777);
  const Graph g = graph::make_connected_gnp(60, 0.12, meta);
  for (const auto kernel :
       {RadioNetwork::Kernel::kSparse, RadioNetwork::Kernel::kDense}) {
    RadioNetwork net(g, FaultModel::faultless(), Rng(5));
    net.set_kernel(kernel);
    Rng plan_rng(9);
    for (int round = 0; round < 20; ++round) {
      const auto plan = random_plan(g, 0.2, plan_rng);
      for (const NodeId u : plan) net.set_broadcast(u, Packet{u});
      NodeId previous = -1;
      for (const auto& d : net.run_round()) {
        EXPECT_LT(previous, d.receiver);  // strictly ascending
        previous = d.receiver;
      }
    }
  }
}

// The v4 contract, predicted coin by coin with a shadow stream: one u64
// salt per active round, tweaked into a sender salt and a receiver salt,
// with every coin the stateless mix64 of its salt with the node's id.
TEST(EngineKernels, V4CoinTapeIsPredictable) {
  const Graph g = graph::make_star(16);  // hub 0, leaves 1..16
  const double ps = 0.35, pr = 0.45;
  const std::uint64_t seed = 2024;
  const std::uint64_t sender_thr = Rng::coin_threshold(ps);
  const std::uint64_t receiver_thr = Rng::coin_threshold(pr);

  for (const auto kernel :
       {RadioNetwork::Kernel::kSparse, RadioNetwork::Kernel::kDense}) {
    RadioNetwork net(g, FaultModel::combined(ps, pr), Rng(seed));
    net.set_kernel(kernel);
    Rng shadow(seed);
    for (int round = 0; round < 200; ++round) {
      net.set_broadcast(0, Packet{round});
      // Predict: exactly one salt, then per leaf 1..16 (ascending) a
      // counter-based receiver coin iff the hub's sender coin was clean.
      const std::uint64_t salt = shadow();
      const std::uint64_t sender_salt = salt ^ kSenderSaltTweak;
      const std::uint64_t receiver_salt = salt ^ kReceiverSaltTweak;
      const bool noisy = Rng::mix64(sender_salt, 0) < sender_thr;
      std::vector<NodeId> expected;
      if (!noisy)
        for (NodeId leaf = 1; leaf <= 16; ++leaf)
          if (!(Rng::mix64(receiver_salt, static_cast<std::uint64_t>(leaf)) <
                receiver_thr))
            expected.push_back(leaf);
      std::vector<NodeId> got;
      for (const auto& d : net.run_round()) got.push_back(d.receiver);
      ASSERT_EQ(got, expected) << "kernel mismatch at round " << round;
      EXPECT_EQ(net.last_round().sender_fault_losses, noisy ? 16 : 0);
    }
  }
}

// v4 sender coins are keyed by node id, not by staging position: staging
// the same plan in any order burns the same tape and delivers identically.
TEST(EngineKernels, SenderCoinsAreStagingOrderFree) {
  const Graph g = graph::make_path(5);  // 0-1-2-3-4
  const double ps = 0.5;
  const std::uint64_t seed = 99;
  const std::uint64_t thr = Rng::coin_threshold(ps);
  RadioNetwork forward(g, FaultModel::sender(ps), Rng(seed));
  RadioNetwork backward(g, FaultModel::sender(ps), Rng(seed));
  Rng shadow(seed);
  for (int round = 0; round < 100; ++round) {
    forward.set_broadcast(0, Packet{0});
    forward.set_broadcast(3, Packet{3});
    backward.set_broadcast(3, Packet{3});
    backward.set_broadcast(0, Packet{0});
    const std::uint64_t sender_salt = shadow() ^ kSenderSaltTweak;
    const bool noisy0 = Rng::mix64(sender_salt, 0) < thr;
    const bool noisy3 = Rng::mix64(sender_salt, 3) < thr;
    std::vector<NodeId> expected;
    if (!noisy0) expected.push_back(1);  // deliveries ascend by receiver
    if (!noisy3) {
      expected.push_back(2);
      expected.push_back(4);
    }
    std::vector<NodeId> fwd, bwd;
    for (const auto& d : forward.run_round()) fwd.push_back(d.receiver);
    for (const auto& d : backward.run_round()) bwd.push_back(d.receiver);
    ASSERT_EQ(fwd, expected) << "round " << round;
    ASSERT_EQ(bwd, expected) << "round " << round;
  }
}

// Bulk staging is pure sugar over set_broadcast: same plan, same tape,
// same deliveries -- for the uniform-id, parallel-id, and Bernoulli forms.
TEST(EngineKernels, BulkStagingMatchesPerNodeStaging) {
  Rng meta(2026);
  const Graph g = graph::make_connected_gnp(48, 0.15, meta);
  const FaultModel fm = FaultModel::combined(0.2, 0.3);
  const std::uint64_t seed = meta();

  RadioNetwork scalar(g, fm, Rng(seed));
  RadioNetwork bulk(g, fm, Rng(seed));
  Rng plan_rng(seed ^ 0x5a5a);
  for (int round = 0; round < 40; ++round) {
    const auto plan = random_plan(g, 0.3, plan_rng);
    std::vector<PacketId> ids;
    for (const NodeId u : plan) ids.push_back(PacketId{u + round});
    for (std::size_t i = 0; i < plan.size(); ++i)
      scalar.set_broadcast(plan[i], Packet{ids[i]});
    if (round % 2 == 0) {
      bulk.stage_broadcasts(plan, ids);
    } else {
      // Uniform-id form: restage scalar's ids to match.
      for (std::size_t i = 0; i < plan.size(); ++i) ids[i] = PacketId{7};
      scalar.reset(fm, Rng(seed));
      bulk.reset(fm, Rng(seed));
      for (const NodeId u : plan) scalar.set_broadcast(u, Packet{7});
      bulk.stage_broadcasts(plan, PacketId{7});
    }
    const auto& a = scalar.run_round();
    const auto& b = bulk.run_round();
    ASSERT_EQ(a.size(), b.size()) << "round " << round;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].receiver, b[i].receiver);
      ASSERT_EQ(a[i].sender, b[i].sender);
      ASSERT_EQ(a[i].packet.id, b[i].packet.id);
    }
    ASSERT_EQ(scalar.last_round(), bulk.last_round());
  }
}

// The fused Bernoulli staging draws exactly the tape of the unfused
// for_each_bernoulli_pow2 + set_broadcast sequence.
TEST(EngineKernels, BernoulliStagingMatchesUnfusedTape) {
  Rng meta(515);
  const Graph g = graph::make_connected_gnp(32, 0.2, meta);
  std::vector<NodeId> candidates;
  for (NodeId u = 0; u < g.node_count(); u += 2) candidates.push_back(u);

  for (const std::int32_t i : {0, 1, 3}) {
    const std::uint64_t seed = meta();
    RadioNetwork fused(g, FaultModel::receiver(0.25), Rng(seed));
    RadioNetwork unfused(g, FaultModel::receiver(0.25), Rng(seed));
    Rng fused_rng(seed ^ 1), unfused_rng(seed ^ 1);
    for (int round = 0; round < 30; ++round) {
      const std::size_t staged = fused.stage_broadcasts_bernoulli_pow2(
          candidates, i, PacketId{round}, fused_rng);
      std::size_t expected_staged = 0;
      unfused_rng.for_each_bernoulli_pow2(
          candidates.size(), i, [&](std::size_t idx) {
            unfused.set_broadcast(candidates[idx], Packet{round});
            ++expected_staged;
          });
      ASSERT_EQ(staged, expected_staged) << "i=" << i << " round " << round;
      const auto& a = fused.run_round();
      const auto& b = unfused.run_round();
      ASSERT_EQ(a.size(), b.size()) << "i=" << i << " round " << round;
      for (std::size_t d = 0; d < a.size(); ++d)
        ASSERT_EQ(a[d].receiver, b[d].receiver);
      // The two algo streams must stay in lockstep too.
      ASSERT_EQ(fused_rng(), unfused_rng());
    }
  }
}

TEST(EngineKernels, FaultlessRoundsConsumeNoCoins) {
  const Graph g = graph::make_star(8);
  const std::uint64_t seed = 31337;
  RadioNetwork net(g, FaultModel::faultless(), Rng(seed));
  for (int round = 0; round < 10; ++round) {
    net.set_broadcast(0, Packet{round});
    EXPECT_EQ(net.run_round().size(), 8u);
  }
  // Trick: reset with the same seed after 10 rounds; if the rounds drew
  // any coin the stream would have advanced, but reset re-seeds anyway --
  // so instead compare against a combined-model net whose coins DO burn.
  RadioNetwork quiet(g, FaultModel::combined(0.0, 0.0), Rng(seed));
  for (int round = 0; round < 10; ++round) {
    quiet.set_broadcast(0, Packet{round});
    EXPECT_EQ(quiet.run_round().size(), 8u);  // p=0 draws nothing either
  }
}

TEST(EngineKernels, SilentRoundFastPathMatchesLegacyAccounting) {
  const Graph g = graph::make_path(4);
  RadioNetwork a(g, FaultModel::receiver(0.5), Rng(3));
  RadioNetwork b(g, FaultModel::receiver(0.5), Rng(3));

  for (int i = 0; i < 7; ++i) a.run_silent_round();
  b.run_silent_rounds(7);
  EXPECT_EQ(a.round_number(), 7);
  EXPECT_EQ(b.round_number(), 7);
  EXPECT_EQ(a.last_round().broadcasters, 0);
  EXPECT_EQ(b.last_round().deliveries, 0);

  // Coins were not consumed: the next noisy round is identical on both.
  auto run_one = [](RadioNetwork& net) {
    net.set_broadcast(0, Packet{1});
    return net.run_round().size();
  };
  for (int i = 0; i < 50; ++i) ASSERT_EQ(run_one(a), run_one(b));
  EXPECT_EQ(a.totals().rounds, b.totals().rounds);
  EXPECT_EQ(a.totals().deliveries, b.totals().deliveries);
  EXPECT_EQ(a.totals().receiver_fault_losses,
            b.totals().receiver_fault_losses);
}

TEST(EngineKernels, SilentRoundsRejectStagedPlans) {
  const Graph g = graph::make_path(3);
  RadioNetwork net(g, FaultModel::faultless(), Rng(1));
  net.set_broadcast(0, Packet{0});
  EXPECT_THROW(net.run_silent_rounds(2), ContractViolation);
  net.run_round();
  net.run_silent_rounds(0);  // no-op
  EXPECT_EQ(net.round_number(), 1);
}

TEST(EngineKernels, ResetReproducesAFreshNetworkExactly) {
  Rng meta(4242);
  const Graph g = graph::make_connected_gnp(30, 0.2, meta);
  const auto run_schedule = [&](RadioNetwork& net) {
    std::vector<std::int64_t> counts;
    Rng plan_rng(17);
    for (int round = 0; round < 30; ++round) {
      for (const NodeId u : random_plan(g, 0.25, plan_rng))
        net.set_broadcast(u, Packet{u});
      counts.push_back(static_cast<std::int64_t>(net.run_round().size()));
    }
    return counts;
  };

  RadioNetwork fresh(g, FaultModel::combined(0.2, 0.2), Rng(1001));
  const auto expected = run_schedule(fresh);

  // Dirty a network with a different model, seed, and even an abandoned
  // staging, then reset: it must replay the fresh run bit for bit.
  RadioNetwork reused(g, FaultModel::sender(0.9), Rng(5));
  run_schedule(reused);
  reused.set_broadcast(3, Packet{3});  // staged but never run
  reused.reset(FaultModel::combined(0.2, 0.2), Rng(1001));
  EXPECT_EQ(reused.round_number(), 0);
  EXPECT_EQ(reused.totals().broadcasts, 0);
  EXPECT_EQ(run_schedule(reused), expected);
}

TEST(EngineKernels, DeliveryPacketsStayValidUntilNextRound) {
  const Graph g = graph::make_star(3);
  RadioNetwork net(g, FaultModel::faultless(), Rng(1));
  auto payload = make_payload({9, 8, 7});
  net.set_broadcast(0, Packet{42, payload});
  const auto& ds = net.run_round();
  ASSERT_EQ(ds.size(), 3u);
  // Staging the next round must not invalidate the current deliveries.
  net.set_broadcast(1, Packet{1});
  EXPECT_EQ(ds.front().packet.id, 42);
  EXPECT_EQ(ds.front().packet.payload.get(), payload.get());
  // And the payload is shared, not copied, across deliveries.
  for (const auto& d : ds) EXPECT_EQ(d.packet.payload.get(), payload.get());
}

}  // namespace
}  // namespace nrn::radio

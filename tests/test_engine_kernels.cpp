// Engine v3: the sparse and dense round kernels must be observationally
// identical (deliveries, stats, and coin tape), the v3 coin-tape contract
// documented in radio/network.hpp must hold exactly, and the silent-round
// fast path and O(1) reset must preserve all bookkeeping.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "graph/generators.hpp"
#include "radio/network.hpp"

namespace nrn::radio {
namespace {

using graph::Graph;
using graph::NodeId;

/// Flattened observable state of one round: deliveries in emission order
/// plus the stats counters.
struct RoundTrace {
  std::vector<std::tuple<NodeId, NodeId, PacketId>> deliveries;
  std::int64_t collisions = 0;
  std::int64_t sender_losses = 0;
  std::int64_t receiver_losses = 0;

  friend bool operator==(const RoundTrace&, const RoundTrace&) = default;
};

RoundTrace trace_round(RadioNetwork& net,
                       const std::vector<NodeId>& broadcasters) {
  for (const NodeId u : broadcasters) net.set_broadcast(u, Packet{u});
  RoundTrace trace;
  for (const auto& d : net.run_round())
    trace.deliveries.emplace_back(d.receiver, d.sender, d.packet.id);
  trace.collisions = net.last_round().collision_losses;
  trace.sender_losses = net.last_round().sender_fault_losses;
  trace.receiver_losses = net.last_round().receiver_fault_losses;
  return trace;
}

/// Random broadcast pattern with density `q` in staging order id-descending
/// (so staging order differs from id order and the two cannot be conflated).
std::vector<NodeId> random_plan(const Graph& g, double q, Rng& rng) {
  std::vector<NodeId> plan;
  for (NodeId u = g.node_count() - 1; u >= 0; --u)
    if (rng.bernoulli(q)) plan.push_back(u);
  return plan;
}

TEST(EngineKernels, DenseSparseAndAutoAreBitIdentical) {
  Rng meta(12345);
  const FaultModel models[] = {
      FaultModel::faultless(), FaultModel::sender(0.3),
      FaultModel::receiver(0.4), FaultModel::combined(0.2, 0.3)};
  for (int instance = 0; instance < 8; ++instance) {
    const auto n = static_cast<NodeId>(10 + meta.next_below(40));
    const Graph g = graph::make_connected_gnp(n, 0.15, meta);
    for (const auto& fm : models) {
      const std::uint64_t seed = meta();
      RadioNetwork sparse(g, fm, Rng(seed));
      RadioNetwork dense(g, fm, Rng(seed));
      RadioNetwork automatic(g, fm, Rng(seed));
      sparse.set_kernel(RadioNetwork::Kernel::kSparse);
      dense.set_kernel(RadioNetwork::Kernel::kDense);
      Rng plan_rng(seed ^ 0xabcdef);
      for (int round = 0; round < 25; ++round) {
        const auto plan = random_plan(g, 0.3, plan_rng);
        const auto a = trace_round(sparse, plan);
        const auto b = trace_round(dense, plan);
        const auto c = trace_round(automatic, plan);
        ASSERT_EQ(a, b) << "instance " << instance << " round " << round;
        ASSERT_EQ(a, c) << "instance " << instance << " round " << round;
      }
      EXPECT_EQ(sparse.totals().deliveries, dense.totals().deliveries);
      EXPECT_EQ(sparse.totals().collision_losses,
                dense.totals().collision_losses);
    }
  }
}

TEST(EngineKernels, DeliveriesEmittedInAscendingReceiverId) {
  Rng meta(777);
  const Graph g = graph::make_connected_gnp(60, 0.12, meta);
  for (const auto kernel :
       {RadioNetwork::Kernel::kSparse, RadioNetwork::Kernel::kDense}) {
    RadioNetwork net(g, FaultModel::faultless(), Rng(5));
    net.set_kernel(kernel);
    Rng plan_rng(9);
    for (int round = 0; round < 20; ++round) {
      const auto plan = random_plan(g, 0.2, plan_rng);
      for (const NodeId u : plan) net.set_broadcast(u, Packet{u});
      NodeId previous = -1;
      for (const auto& d : net.run_round()) {
        EXPECT_LT(previous, d.receiver);  // strictly ascending
        previous = d.receiver;
      }
    }
  }
}

// The v3 contract, predicted coin by coin with a shadow stream: sender
// coins first (staging order), then one receiver salt per round, with each
// listener's receiver coin the stateless mix64(salt, listener).
TEST(EngineKernels, V3CoinTapeIsPredictable) {
  const Graph g = graph::make_star(16);  // hub 0, leaves 1..16
  const double ps = 0.35, pr = 0.45;
  const std::uint64_t seed = 2024;
  const std::uint64_t sender_thr = Rng::coin_threshold(ps);
  const std::uint64_t receiver_thr = Rng::coin_threshold(pr);

  for (const auto kernel :
       {RadioNetwork::Kernel::kSparse, RadioNetwork::Kernel::kDense}) {
    RadioNetwork net(g, FaultModel::combined(ps, pr), Rng(seed));
    net.set_kernel(kernel);
    Rng shadow(seed);
    for (int round = 0; round < 200; ++round) {
      net.set_broadcast(0, Packet{round});
      // Predict: one sender coin, one round salt, then per leaf 1..16
      // (ascending) a counter-based coin iff the sender coin was clean.
      const bool noisy = shadow() < sender_thr;
      const std::uint64_t salt = shadow();
      std::vector<NodeId> expected;
      if (!noisy)
        for (NodeId leaf = 1; leaf <= 16; ++leaf)
          if (!(Rng::mix64(salt, static_cast<std::uint64_t>(leaf)) <
                receiver_thr))
            expected.push_back(leaf);
      std::vector<NodeId> got;
      for (const auto& d : net.run_round()) got.push_back(d.receiver);
      ASSERT_EQ(got, expected) << "kernel mismatch at round " << round;
      EXPECT_EQ(net.last_round().sender_fault_losses, noisy ? 16 : 0);
    }
  }
}

TEST(EngineKernels, SenderCoinsDrawnInStagingOrderNotIdOrder) {
  const Graph g = graph::make_path(5);  // 0-1-2-3-4
  const double ps = 0.5;
  const std::uint64_t seed = 99;
  const std::uint64_t thr = Rng::coin_threshold(ps);
  RadioNetwork net(g, FaultModel::sender(ps), Rng(seed));
  Rng shadow(seed);
  for (int round = 0; round < 100; ++round) {
    // Stage id 3 before id 0: the first coin on the tape belongs to 3.
    net.set_broadcast(3, Packet{3});
    net.set_broadcast(0, Packet{0});
    const bool noisy3 = shadow() < thr;
    const bool noisy0 = shadow() < thr;
    std::vector<NodeId> expected;
    if (!noisy0) expected.push_back(1);  // deliveries ascend by receiver
    if (!noisy3) {
      expected.push_back(2);
      expected.push_back(4);
    }
    std::vector<NodeId> got;
    for (const auto& d : net.run_round()) got.push_back(d.receiver);
    ASSERT_EQ(got, expected) << "round " << round;
  }
}

TEST(EngineKernels, FaultlessRoundsConsumeNoCoins) {
  const Graph g = graph::make_star(8);
  const std::uint64_t seed = 31337;
  RadioNetwork net(g, FaultModel::faultless(), Rng(seed));
  for (int round = 0; round < 10; ++round) {
    net.set_broadcast(0, Packet{round});
    EXPECT_EQ(net.run_round().size(), 8u);
  }
  // Trick: reset with the same seed after 10 rounds; if the rounds drew
  // any coin the stream would have advanced, but reset re-seeds anyway --
  // so instead compare against a combined-model net whose coins DO burn.
  RadioNetwork quiet(g, FaultModel::combined(0.0, 0.0), Rng(seed));
  for (int round = 0; round < 10; ++round) {
    quiet.set_broadcast(0, Packet{round});
    EXPECT_EQ(quiet.run_round().size(), 8u);  // p=0 draws nothing either
  }
}

TEST(EngineKernels, SilentRoundFastPathMatchesLegacyAccounting) {
  const Graph g = graph::make_path(4);
  RadioNetwork a(g, FaultModel::receiver(0.5), Rng(3));
  RadioNetwork b(g, FaultModel::receiver(0.5), Rng(3));

  for (int i = 0; i < 7; ++i) a.run_silent_round();
  b.run_silent_rounds(7);
  EXPECT_EQ(a.round_number(), 7);
  EXPECT_EQ(b.round_number(), 7);
  EXPECT_EQ(a.last_round().broadcasters, 0);
  EXPECT_EQ(b.last_round().deliveries, 0);

  // Coins were not consumed: the next noisy round is identical on both.
  auto run_one = [](RadioNetwork& net) {
    net.set_broadcast(0, Packet{1});
    return net.run_round().size();
  };
  for (int i = 0; i < 50; ++i) ASSERT_EQ(run_one(a), run_one(b));
  EXPECT_EQ(a.totals().rounds, b.totals().rounds);
  EXPECT_EQ(a.totals().deliveries, b.totals().deliveries);
  EXPECT_EQ(a.totals().receiver_fault_losses,
            b.totals().receiver_fault_losses);
}

TEST(EngineKernels, SilentRoundsRejectStagedPlans) {
  const Graph g = graph::make_path(3);
  RadioNetwork net(g, FaultModel::faultless(), Rng(1));
  net.set_broadcast(0, Packet{0});
  EXPECT_THROW(net.run_silent_rounds(2), ContractViolation);
  net.run_round();
  net.run_silent_rounds(0);  // no-op
  EXPECT_EQ(net.round_number(), 1);
}

TEST(EngineKernels, ResetReproducesAFreshNetworkExactly) {
  Rng meta(4242);
  const Graph g = graph::make_connected_gnp(30, 0.2, meta);
  const auto run_schedule = [&](RadioNetwork& net) {
    std::vector<std::int64_t> counts;
    Rng plan_rng(17);
    for (int round = 0; round < 30; ++round) {
      for (const NodeId u : random_plan(g, 0.25, plan_rng))
        net.set_broadcast(u, Packet{u});
      counts.push_back(static_cast<std::int64_t>(net.run_round().size()));
    }
    return counts;
  };

  RadioNetwork fresh(g, FaultModel::combined(0.2, 0.2), Rng(1001));
  const auto expected = run_schedule(fresh);

  // Dirty a network with a different model, seed, and even an abandoned
  // staging, then reset: it must replay the fresh run bit for bit.
  RadioNetwork reused(g, FaultModel::sender(0.9), Rng(5));
  run_schedule(reused);
  reused.set_broadcast(3, Packet{3});  // staged but never run
  reused.reset(FaultModel::combined(0.2, 0.2), Rng(1001));
  EXPECT_EQ(reused.round_number(), 0);
  EXPECT_EQ(reused.totals().broadcasts, 0);
  EXPECT_EQ(run_schedule(reused), expected);
}

TEST(EngineKernels, DeliveryPacketsStayValidUntilNextRound) {
  const Graph g = graph::make_star(3);
  RadioNetwork net(g, FaultModel::faultless(), Rng(1));
  auto payload = make_payload({9, 8, 7});
  net.set_broadcast(0, Packet{42, payload});
  const auto& ds = net.run_round();
  ASSERT_EQ(ds.size(), 3u);
  // Staging the next round must not invalidate the current deliveries.
  net.set_broadcast(1, Packet{1});
  EXPECT_EQ(ds.front().packet.id, 42);
  EXPECT_EQ(ds.front().packet.payload.get(), payload.get());
  // And the payload is shared, not copied, across deliveries.
  for (const auto& d : ds) EXPECT_EQ(d.packet.payload.get(), payload.get());
}

}  // namespace
}  // namespace nrn::radio

// Dynamic non-interference: instruments actual FASTBC / Robust FASTBC runs
// and checks the property the GBST is built for -- in fast rounds, an
// intended receiver (the broadcasting fast node's fast child) never
// experiences a collision.  This closes the loop between the static
// validator (tests/test_gbst.cpp) and the schedules that rely on it.
#include <gtest/gtest.h>

#include <cmath>

#include "core/fastbc.hpp"
#include "graph/generators.hpp"
#include "trees/gbst.hpp"

namespace nrn::core {
namespace {

using radio::FaultModel;
using radio::RadioNetwork;

/// Re-implements FASTBC's fast-round staging to observe outcomes directly:
/// runs the even-round wave (no slow rounds, faultless), and asserts every
/// informed fast node's fast child either already has the message or
/// receives it the moment its parent's slot comes up.
void run_wave_and_check(const graph::Graph& g, graph::NodeId source,
                        std::int64_t rounds_budget) {
  trees::GbstBuildStats stats;
  const auto tree = trees::build_gbst(g, source, &stats);
  ASSERT_EQ(stats.violations_remaining, 0);

  std::int32_t rank_modulus = 1;
  while ((std::int64_t{1} << rank_modulus) < g.node_count()) ++rank_modulus;
  rank_modulus = std::max(rank_modulus, tree.max_rank);
  const std::int64_t period = 6 * rank_modulus;

  RadioNetwork net(g, FaultModel::faultless(), Rng(1));
  std::vector<char> informed(static_cast<std::size_t>(g.node_count()), 0);
  informed[static_cast<std::size_t>(source)] = 1;

  for (std::int64_t t = 0; t < rounds_budget; ++t) {
    // Stage exactly the paper's fast-round set.
    std::vector<std::pair<graph::NodeId, graph::NodeId>> intended;
    for (graph::NodeId u = 0; u < g.node_count(); ++u) {
      const auto ui = static_cast<std::size_t>(u);
      if (!informed[ui] || !tree.is_fast(u)) continue;
      const std::int64_t target =
          static_cast<std::int64_t>(tree.level[ui]) - 6LL * tree.rank[ui];
      if (((t - target) % period + period) % period != 0) continue;
      net.set_broadcast(u, radio::Packet{0});
      intended.emplace_back(u, tree.fast_child[ui]);
    }
    const auto& deliveries = net.run_round();
    // Property: every intended (parent, child) pair with a listening,
    // uninformed child results in a delivery -- no collision losses at
    // intended receivers, ever.
    for (const auto& [parent, child] : intended) {
      const auto ci = static_cast<std::size_t>(child);
      if (informed[ci]) continue;  // child already served earlier
      bool delivered = false;
      for (const auto& d : deliveries)
        if (d.receiver == child && d.sender == parent) delivered = true;
      EXPECT_TRUE(delivered)
          << "fast child " << child << " of " << parent
          << " missed its wave slot at t=" << t;
    }
    for (const auto& d : deliveries)
      informed[static_cast<std::size_t>(d.receiver)] = 1;
  }
}

TEST(WaveInterference, PathWave) {
  run_wave_and_check(graph::make_path(64), 0, 400);
}

TEST(WaveInterference, GridWave) {
  run_wave_and_check(graph::make_grid(9, 9), 0, 400);
}

TEST(WaveInterference, CaterpillarWave) {
  run_wave_and_check(graph::make_caterpillar(20, 2), 0, 400);
}

TEST(WaveInterference, CrossEdgeInstanceWaveAfterRepair) {
  graph::GraphBuilder b(7);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(0, 4);
  b.add_edge(4, 5);
  b.add_edge(5, 6);
  b.add_edge(5, 3);
  run_wave_and_check(b.build(), 0, 200);
}

TEST(WaveInterference, RandomGraphsWave) {
  Rng rng(9);
  for (int i = 0; i < 5; ++i) {
    const auto g = graph::make_connected_gnp(80, 0.06, rng);
    run_wave_and_check(g, 0, 600);
  }
}

TEST(WaveInterference, FullFastbcFaultlessHasNoIntendedLosses) {
  // End-to-end: a faultless FASTBC run on a path must deliver with zero
  // fault losses and complete; collisions may only ever hit non-intended
  // listeners (on a path, none exist, so collisions must be zero too).
  const auto g = graph::make_path(128);
  Fastbc algo(g, 0);
  RadioNetwork net(g, FaultModel::faultless(), Rng(3));
  Rng rng(4);
  const auto r = algo.run(net, rng);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(net.totals().sender_fault_losses, 0);
  EXPECT_EQ(net.totals().receiver_fault_losses, 0);
}

}  // namespace
}  // namespace nrn::core

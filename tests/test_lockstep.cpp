// Lockstep multi-trial execution (engine v4): a LockstepNetwork lane must
// replay its scalar RadioNetwork bit for bit -- receivers, round stats, and
// fault-stream consumption -- and the Driver's lockstep path must produce
// reports identical to the scalar path for every registered protocol.
#include "radio/lockstep.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "graph/generators.hpp"
#include "sim/driver.hpp"

namespace nrn::radio {
namespace {

using graph::Graph;
using graph::NodeId;

/// One random per-lane plan with density `q`, staging order id-descending
/// so staging order and id order cannot be conflated.
std::vector<NodeId> random_plan(const Graph& g, double q, Rng& rng) {
  std::vector<NodeId> plan;
  for (NodeId u = g.node_count() - 1; u >= 0; --u)
    if (rng.bernoulli(q)) plan.push_back(u);
  return plan;
}

TEST(Lockstep, LanesMatchScalarNetworksRoundByRound) {
  Rng meta(424242);
  const FaultModel models[] = {
      FaultModel::faultless(), FaultModel::sender(0.3),
      FaultModel::receiver(0.4), FaultModel::combined(0.2, 0.3)};
  for (int instance = 0; instance < 4; ++instance) {
    const auto n = static_cast<NodeId>(8 + meta.next_below(40));
    const Graph g = graph::make_connected_gnp(n, 0.2, meta);
    for (const auto& fm : models) {
      const int lanes = 1 + static_cast<int>(meta.next_below(
                                LockstepNetwork::kMaxLanes));
      LockstepNetwork bank(g, fm);
      std::vector<RadioNetwork> scalars;
      std::array<Rng, LockstepNetwork::kMaxLanes> plan_rngs;
      for (int l = 0; l < lanes; ++l) {
        const std::uint64_t seed = meta();
        ASSERT_EQ(bank.add_lane(Rng(seed)), l);
        scalars.emplace_back(g, fm, Rng(seed));
        plan_rngs[static_cast<std::size_t>(l)] = Rng(seed ^ 0xfeed);
      }
      for (int round = 0; round < 30; ++round) {
        // Random subset of lanes runs this round (finished trials idle).
        const unsigned mask = static_cast<unsigned>(
            meta.next_below(1u << lanes));
        for (int l = 0; l < lanes; ++l) {
          if ((mask & (1u << l)) == 0) continue;
          const auto plan =
              random_plan(g, 0.3, plan_rngs[static_cast<std::size_t>(l)]);
          for (const NodeId u : plan) {
            bank.stage(l, u);
            scalars[static_cast<std::size_t>(l)].set_broadcast(u, Packet{u});
          }
        }
        if (mask == 0) continue;
        bank.run_round(mask);
        for (int l = 0; l < lanes; ++l) {
          if ((mask & (1u << l)) == 0) continue;
          auto& scalar = scalars[static_cast<std::size_t>(l)];
          const auto& deliveries = scalar.run_round();
          std::vector<NodeId> expected;
          for (const auto& d : deliveries) expected.push_back(d.receiver);
          const auto got = bank.receivers(l);
          ASSERT_EQ(std::vector<NodeId>(got.begin(), got.end()), expected)
              << "instance " << instance << " lane " << l << " round "
              << round;
          ASSERT_EQ(bank.last_round(l), scalar.last_round())
              << "instance " << instance << " lane " << l << " round "
              << round;
        }
      }
    }
  }
}

TEST(Lockstep, LanePortBernoulliStagingMatchesScalarTape) {
  Rng meta(99);
  const Graph g = graph::make_connected_gnp(24, 0.25, meta);
  const FaultModel fm = FaultModel::receiver(0.3);
  const std::uint64_t seed = meta();
  std::vector<NodeId> candidates;
  for (NodeId u = 0; u < g.node_count(); ++u) candidates.push_back(u);

  LockstepNetwork bank(g, fm);
  ASSERT_EQ(bank.add_lane(Rng(seed)), 0);
  RadioNetwork scalar(g, fm, Rng(seed));
  Rng lane_rng(7), scalar_rng(7);
  auto port = bank.port(0);
  for (int round = 0; round < 40; ++round) {
    const std::int32_t i = round % 4;
    port.stage_bernoulli_pow2(candidates, i, PacketId{0}, lane_rng);
    scalar.stage_broadcasts_bernoulli_pow2(candidates, i, PacketId{0},
                                           scalar_rng);
    bank.run_round(1u);
    const auto& deliveries = scalar.run_round();
    std::vector<NodeId> expected;
    for (const auto& d : deliveries) expected.push_back(d.receiver);
    const auto got = bank.receivers(0);
    ASSERT_EQ(std::vector<NodeId>(got.begin(), got.end()), expected)
        << "round " << round;
    ASSERT_EQ(lane_rng(), scalar_rng()) << "round " << round;
  }
}

TEST(Lockstep, ResetDropsLanesAndReplaysExactly) {
  Rng meta(5150);
  const Graph g = graph::make_connected_gnp(16, 0.3, meta);
  const FaultModel fm = FaultModel::combined(0.4, 0.4);
  auto run_schedule = [&](LockstepNetwork& bank, std::uint64_t seed) {
    bank.add_lane(Rng(seed));
    std::vector<NodeId> all;
    Rng plan_rng(seed ^ 1);
    for (int round = 0; round < 20; ++round) {
      for (const NodeId u : random_plan(g, 0.4, plan_rng)) bank.stage(0, u);
      bank.run_round(1u);
      const auto got = bank.receivers(0);
      all.insert(all.end(), got.begin(), got.end());
    }
    return all;
  };

  LockstepNetwork fresh(g, fm);
  const auto expected = run_schedule(fresh, 1001);

  // Dirty a bank with a different model and seed, then reset: lanes are
  // dropped and the fresh run replays bit for bit.
  LockstepNetwork reused(g, FaultModel::sender(0.9));
  run_schedule(reused, 5);
  reused.stage(0, 3);  // staged but never run
  reused.reset(fm);
  EXPECT_EQ(reused.lane_count(), 0);
  EXPECT_EQ(run_schedule(reused, 1001), expected);
}

}  // namespace
}  // namespace nrn::radio

namespace nrn::sim {
namespace {

TEST(LockstepDriver, ScalarAndLockstepReportsAreBitIdentical) {
  const Driver driver(extended_registry());
  // Topology-restricted protocol families get a matching scenario; the
  // rest run on a grid.  kLockstep falls back to scalar for protocols
  // without steppers, so every registry entry is covered either way.
  const auto scenario_for = [](const std::string& name) {
    if (name.rfind("link", 0) == 0)
      return Scenario::parse("link", "receiver:0.3", 0, 2, 321);
    if (name.rfind("wct", 0) == 0)
      return Scenario::parse("wct:16:2:6:2", "receiver:0.3", 0, 2, 321);
    if (name.rfind("star", 0) == 0 || name.rfind("transform", 0) == 0)
      return Scenario::parse("star:24", "receiver:0.3", 0, 2, 321);
    return Scenario::parse("grid:6x6", "combined:0.2:0.3", 0, 2, 321);
  };
  for (const auto& name : extended_registry().names()) {
    SCOPED_TRACE(name);
    const auto scenario = scenario_for(name);
    DriverOptions scalar_opts, lockstep_opts;
    scalar_opts.execution = TrialExecution::kScalar;
    lockstep_opts.execution = TrialExecution::kLockstep;
    // 11 trials: one full bank plus a partial one.
    const auto scalar = driver.run(scenario, name, 11, scalar_opts);
    const auto lockstep = driver.run(scenario, name, 11, lockstep_opts);
    EXPECT_EQ(scalar.trials, lockstep.trials);
    // And kAuto must agree with both.
    const auto automatic = driver.run(scenario, name, 11);
    EXPECT_EQ(scalar.trials, automatic.trials);
  }
}

TEST(LockstepDriver, TracedLockstepMatchesTracedScalar) {
  const auto scenario = Scenario::parse("path:20", "receiver:0.3", 0, 1, 8);
  DriverOptions scalar_opts, lockstep_opts;
  scalar_opts.trace = lockstep_opts.trace = true;
  scalar_opts.execution = TrialExecution::kScalar;
  lockstep_opts.execution = TrialExecution::kLockstep;
  for (const char* name : {"decay", "fastbc", "robust"}) {
    SCOPED_TRACE(name);
    const auto scalar = Driver().run(scenario, name, 5, scalar_opts);
    const auto lockstep = Driver().run(scenario, name, 5, lockstep_opts);
    EXPECT_EQ(scalar.trials, lockstep.trials);
    EXPECT_TRUE(scalar.has_series());
  }
}

TEST(LockstepDriver, SingleNodeAndSingleTrialEdgeCases) {
  // n == 1: the stepper completes before staging anything.
  const auto tiny = Scenario::parse("path:1", "none", 0, 1, 5);
  DriverOptions lockstep_opts;
  lockstep_opts.execution = TrialExecution::kLockstep;
  const auto report = Driver().run(tiny, "decay", 3, lockstep_opts);
  EXPECT_TRUE(report.all_completed());
  for (const auto& trial : report.trials) EXPECT_EQ(trial.run.rounds(), 0);

  // One trial still works through the bank (one-lane lockstep).
  const auto one = Scenario::parse("star:12", "receiver:0.2", 0, 1, 6);
  DriverOptions scalar_opts;
  scalar_opts.execution = TrialExecution::kScalar;
  EXPECT_EQ(Driver().run(one, "decay", 1, lockstep_opts).trials,
            Driver().run(one, "decay", 1, scalar_opts).trials);
}

TEST(LockstepDriver, ThreadedBanksMatchSerial) {
  const auto scenario =
      Scenario::parse("grid:5x5", "combined:0.25:0.25", 0, 1, 99);
  DriverOptions serial_opts;
  serial_opts.execution = TrialExecution::kLockstep;
  const auto serial = Driver().run(scenario, "decay", 20, serial_opts);
  for (const int threads : {2, 4}) {
    DriverOptions threaded_opts = serial_opts;
    threaded_opts.threads = threads;
    const auto threaded = Driver().run(scenario, "decay", 20, threaded_opts);
    EXPECT_EQ(serial.trials, threaded.trials) << threads << " threads";
  }
}

}  // namespace
}  // namespace nrn::sim

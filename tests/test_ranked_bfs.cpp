// Ranked BFS trees: the ranking rules of Section 3.4.2 and the Lemma 7
// bound rmax <= ceil(log2 n).
#include "trees/ranked_bfs.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"

namespace nrn::trees {
namespace {

using graph::make_binary_tree;
using graph::make_caterpillar;
using graph::make_complete;
using graph::make_connected_gnp;
using graph::make_cycle;
using graph::make_grid;
using graph::make_path;
using graph::make_random_tree;
using graph::make_star;

std::int32_t ceil_log2(std::int32_t n) {
  std::int32_t bits = 0;
  while ((std::int64_t{1} << bits) < n) ++bits;
  return bits;
}

TEST(RankedBfs, PathIsOneLongFastStretch) {
  const auto g = make_path(10);
  const auto t = build_ranked_bfs(g, 0);
  validate_ranked_bfs(g, t);
  EXPECT_EQ(t.max_rank, 1);
  EXPECT_EQ(t.depth, 9);
  for (graph::NodeId u = 0; u < 9; ++u) EXPECT_TRUE(t.is_fast(u));
  EXPECT_FALSE(t.is_fast(9));
  const auto stretches = fast_stretches(t);
  ASSERT_EQ(stretches.size(), 1u);
  EXPECT_EQ(stretches[0].size(), 10u);
}

TEST(RankedBfs, StarRanks) {
  const auto g = make_star(6);
  const auto t = build_ranked_bfs(g, 0);
  validate_ranked_bfs(g, t);
  // Six rank-1 leaves promote the hub to rank 2; the hub is not fast.
  EXPECT_EQ(t.rank[0], 2);
  EXPECT_FALSE(t.is_fast(0));
  EXPECT_EQ(t.max_rank, 2);
}

TEST(RankedBfs, StarWithOneLeafIsFast) {
  const auto g = make_star(1);
  const auto t = build_ranked_bfs(g, 0);
  EXPECT_EQ(t.rank[0], 1);
  EXPECT_TRUE(t.is_fast(0));
}

TEST(RankedBfs, PerfectBinaryTreeRanksGrowPerLevel) {
  // A perfect binary tree of depth d rooted at the source has root rank
  // d+1: every internal node has two children of equal rank.
  const auto g = make_binary_tree(31);  // depth 4
  const auto t = build_ranked_bfs(g, 0);
  validate_ranked_bfs(g, t);
  EXPECT_EQ(t.rank[0], 5);
  EXPECT_EQ(t.max_rank, 5);
  // No node is fast: every internal node has a rank tie among children.
  for (graph::NodeId u = 0; u < 31; ++u) EXPECT_FALSE(t.is_fast(u));
}

TEST(RankedBfs, SourceChoiceChangesLevels) {
  const auto g = make_path(7);
  const auto t = build_ranked_bfs(g, 3);
  EXPECT_EQ(t.depth, 3);
  EXPECT_EQ(t.level[0], 3);
  EXPECT_EQ(t.level[6], 3);
}

TEST(RankedBfs, DisconnectedGraphRejected) {
  const graph::Graph g(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(build_ranked_bfs(g, 0), ContractViolation);
}

TEST(RankedBfs, Lemma7BoundOnManyTopologies) {
  Rng rng(71);
  std::vector<graph::Graph> graphs;
  graphs.push_back(make_path(64));
  graphs.push_back(make_cycle(65));
  graphs.push_back(make_star(63));
  graphs.push_back(make_grid(8, 8));
  graphs.push_back(make_binary_tree(127));
  graphs.push_back(make_caterpillar(16, 3));
  graphs.push_back(make_complete(32));
  for (int i = 0; i < 8; ++i)
    graphs.push_back(make_random_tree(200, rng));
  for (int i = 0; i < 8; ++i)
    graphs.push_back(make_connected_gnp(120, 0.05, rng));

  for (const auto& g : graphs) {
    const auto t = build_ranked_bfs(g, 0);
    validate_ranked_bfs(g, t);
    // Lemma 7: rank r implies a subtree of size >= 2^(r-1), so
    // rmax <= ceil(log2 n) + 1; the paper states ceil(log2 n) which holds
    // for n >= 2 except the trivial single-node tree.
    EXPECT_LE(t.max_rank, ceil_log2(g.node_count()) + 1)
        << "n=" << g.node_count();
  }
}

TEST(RankedBfs, RankSubtreeSizeInvariant) {
  // Property: a node of rank r roots a subtree with at least 2^(r-1) nodes.
  Rng rng(73);
  const auto g = make_connected_gnp(150, 0.04, rng);
  const auto t = build_ranked_bfs(g, 0);
  std::vector<std::int64_t> subtree(150, 1);
  // Accumulate bottom-up by level order.
  std::vector<graph::NodeId> order(150);
  for (graph::NodeId u = 0; u < 150; ++u) order[static_cast<size_t>(u)] = u;
  std::sort(order.begin(), order.end(), [&t](auto a, auto b) {
    return t.level[static_cast<size_t>(a)] > t.level[static_cast<size_t>(b)];
  });
  for (const auto u : order) {
    const auto p = t.parent[static_cast<size_t>(u)];
    if (p >= 0) subtree[static_cast<size_t>(p)] += subtree[static_cast<size_t>(u)];
  }
  for (graph::NodeId u = 0; u < 150; ++u) {
    const auto r = t.rank[static_cast<size_t>(u)];
    EXPECT_GE(subtree[static_cast<size_t>(u)], std::int64_t{1} << (r - 1));
  }
}

TEST(RankedBfs, StretchesOnPathBoundedByLogN) {
  // Ranks along a root-to-node path are non-increasing, so at most
  // rmax = O(log n) maximal fast stretches appear on it.
  Rng rng(79);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = make_connected_gnp(128, 0.06, rng);
    const auto t = build_ranked_bfs(g, 0);
    for (graph::NodeId u = 0; u < g.node_count(); ++u)
      EXPECT_LE(stretches_on_path(t, u), t.max_rank);
  }
}

TEST(RankedBfs, FastStretchesPartitionFastEdges) {
  Rng rng(83);
  const auto g = make_connected_gnp(100, 0.07, rng);
  const auto t = build_ranked_bfs(g, 0);
  std::int64_t fast_edges = 0;
  for (graph::NodeId u = 0; u < g.node_count(); ++u)
    if (t.is_fast(u)) ++fast_edges;
  std::int64_t covered = 0;
  for (const auto& s : fast_stretches(t)) {
    EXPECT_GE(s.size(), 2u);
    covered += static_cast<std::int64_t>(s.size()) - 1;
    // All nodes in a stretch share one rank and consecutive levels.
    const auto r = t.rank[static_cast<size_t>(s.front())];
    for (std::size_t i = 0; i < s.size(); ++i) {
      EXPECT_EQ(t.rank[static_cast<size_t>(s[i])], r);
      if (i > 0) {
        EXPECT_EQ(t.level[static_cast<size_t>(s[i])],
                  t.level[static_cast<size_t>(s[i - 1])] + 1);
        EXPECT_EQ(t.parent[static_cast<size_t>(s[i])], s[i - 1]);
      }
    }
  }
  EXPECT_EQ(covered, fast_edges);
}

TEST(RankedBfs, RecomputeAfterRewireIsConsistent) {
  const auto g = make_cycle(8);
  auto t = build_ranked_bfs(g, 0);
  // Both neighbors of the antipodal node are valid parents; rewire to the
  // other one and recompute.
  const graph::NodeId far = 4;
  const auto old_parent = t.parent[far];
  const graph::NodeId other = old_parent == 3 ? 5 : 3;
  t.parent[far] = other;
  recompute_ranks(g, t);
  validate_ranked_bfs(g, t);
}

}  // namespace
}  // namespace nrn::trees

// Shared scaffolding for the sim-layer tests (scenario, registry, driver,
// sweep, report): the one place the ad-hoc builders and emitter-to-string
// helpers live, so individual test files stop re-rolling them.
#pragma once

#include <sstream>
#include <string>
#include <vector>

#include "sim/sim.hpp"

namespace nrn::sim::testutil {

/// The sorted names register_builtin_protocols installs.
inline const std::vector<std::string>& builtin_names() {
  static const std::vector<std::string> names = {
      "decay",
      "erasure-decay",
      "fastbc",
      "greedy",
      "pipeline",
      "rlnc-decay",
      "rlnc-decay-verified",
      "rlnc-robust",
      "rlnc-robust-verified",
      "robust",
  };
  return names;
}

/// Parses a topology spec and materializes its graph from `seed`.
inline graph::Graph build_topology(const std::string& spec,
                                   std::uint64_t seed = 1) {
  Rng rng(seed);
  return TopologySpec::parse(spec).build(rng);
}

/// A scenario plus its materialized graph and tuning, bundled so tests can
/// hand a ProtocolContext to factories without repeating the boilerplate.
struct ScenarioFixture {
  Scenario scenario;
  graph::Graph graph;
  Tuning tuning;

  explicit ScenarioFixture(const std::string& topology,
                           const std::string& fault = "none",
                           graph::NodeId source = 0, std::int64_t k = 1,
                           std::uint64_t seed = 1, Tuning tuning_in = {})
      : scenario(Scenario::parse(topology, fault, source, k, seed)),
        graph(scenario.build_graph()),
        tuning(tuning_in) {}

  ProtocolContext context() const { return {graph, scenario, tuning}; }
};

// Emitters rendered to strings, for golden and equivalence checks.
inline std::string csv_of(const ExperimentReport& report) {
  std::ostringstream out;
  write_csv(out, report);
  return out.str();
}

inline std::string json_of(const ExperimentReport& report) {
  std::ostringstream out;
  write_json(out, report);
  return out.str();
}

inline std::string table_of(const ExperimentReport& report) {
  std::ostringstream out;
  write_table(out, report);
  return out.str();
}

inline std::string sweep_csv_of(const SweepReport& report) {
  std::ostringstream out;
  write_sweep_csv(out, report);
  return out.str();
}

inline std::string sweep_json_of(const SweepReport& report) {
  std::ostringstream out;
  write_sweep_json(out, report);
  return out.str();
}

/// The exact bytes of a report's shard-file serialization.
inline std::string shard_bytes(const SweepReport& report) {
  std::ostringstream out;
  write_shard_file(out, report);
  return out.str();
}

}  // namespace nrn::sim::testutil

// Field axioms and known values for GF(2^8) and GF(2^16).
#include <gtest/gtest.h>

#include "coding/gf256.hpp"
#include "coding/gf65536.hpp"
#include "common/rng.hpp"

namespace nrn::coding {
namespace {

class Gf256Axioms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Gf256Axioms, RandomizedFieldLaws) {
  const auto& f = Gf256::instance();
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto c = static_cast<std::uint8_t>(rng.next_below(256));
    // Commutativity.
    EXPECT_EQ(f.mul(a, b), f.mul(b, a));
    EXPECT_EQ(f.add(a, b), f.add(b, a));
    // Associativity.
    EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
    // Distributivity.
    EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
    // Identities.
    EXPECT_EQ(f.mul(a, 1), a);
    EXPECT_EQ(f.add(a, 0), a);
    // Characteristic 2.
    EXPECT_EQ(f.add(a, a), 0);
    // Inverses.
    if (a != 0) {
      EXPECT_EQ(f.mul(a, f.inv(a)), 1);
      EXPECT_EQ(f.div(f.mul(a, b), a), b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Gf256Axioms,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL));

TEST(Gf256, ZeroAnnihilates) {
  const auto& f = Gf256::instance();
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(f.mul(static_cast<std::uint8_t>(a), 0), 0);
    EXPECT_EQ(f.mul(0, static_cast<std::uint8_t>(a)), 0);
  }
}

TEST(Gf256, DivisionByZeroThrows) {
  const auto& f = Gf256::instance();
  EXPECT_THROW(f.div(5, 0), ContractViolation);
  EXPECT_THROW(f.inv(0), ContractViolation);
}

TEST(Gf256, MultiplicationIsPermutationForNonzero) {
  const auto& f = Gf256::instance();
  std::vector<bool> seen(256, false);
  for (int b = 0; b < 256; ++b) {
    const auto v = f.mul(3, static_cast<std::uint8_t>(b));
    EXPECT_FALSE(b != 0 && v == 0);
    EXPECT_FALSE(seen[v] && v != 0);
    seen[v] = true;
  }
}

TEST(Gf256, KnownAesFieldValues) {
  // In GF(2^8)/0x11D: 2*141 = 0x11D truncated... verify via small cases:
  const auto& f = Gf256::instance();
  EXPECT_EQ(f.mul(2, 2), 4);
  EXPECT_EQ(f.mul(16, 16), 0x1D);  // x^8 = x^4+x^3+x^2+1 -> 0x1D
  EXPECT_EQ(f.pow(2, 8), 0x1D);
  EXPECT_EQ(f.pow(2, 0), 1);
  EXPECT_EQ(f.pow(0, 5), 0);
}

TEST(Gf256, MulAdd) {
  const auto& f = Gf256::instance();
  EXPECT_EQ(f.mul_add(7, 3, 5), static_cast<std::uint8_t>(7 ^ f.mul(3, 5)));
}

class Gf65536Axioms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Gf65536Axioms, RandomizedFieldLaws) {
  const auto& f = Gf65536::instance();
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint16_t>(rng.next_below(65536));
    const auto b = static_cast<std::uint16_t>(rng.next_below(65536));
    const auto c = static_cast<std::uint16_t>(rng.next_below(65536));
    EXPECT_EQ(f.mul(a, b), f.mul(b, a));
    EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
    EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
    EXPECT_EQ(f.mul(a, 1), a);
    EXPECT_EQ(f.add(a, a), 0);
    if (a != 0) {
      EXPECT_EQ(f.mul(a, f.inv(a)), 1);
      EXPECT_EQ(f.div(f.mul(a, b), a), b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Gf65536Axioms,
                         ::testing::Values(11ULL, 12ULL, 13ULL));

TEST(Gf65536, GeneratorHasFullOrder) {
  // alpha_pow(i) for i in [0, 65535) must be distinct (primitivity).
  const auto& f = Gf65536::instance();
  std::vector<bool> seen(65536, false);
  for (std::uint32_t i = 0; i < Gf65536::kGroupOrder; ++i) {
    const auto v = f.alpha_pow(i);
    EXPECT_NE(v, 0);
    EXPECT_FALSE(seen[v]) << "alpha^" << i << " repeats";
    seen[v] = true;
  }
}

TEST(Gf65536, PowMatchesRepeatedMul) {
  const auto& f = Gf65536::instance();
  std::uint16_t acc = 1;
  for (std::uint64_t e = 0; e < 40; ++e) {
    EXPECT_EQ(f.pow(9, e), acc);
    acc = f.mul(acc, 9);
  }
}

TEST(Gf65536, DivisionByZeroThrows) {
  const auto& f = Gf65536::instance();
  EXPECT_THROW(f.div(5, 0), ContractViolation);
  EXPECT_THROW(f.inv(0), ContractViolation);
}

}  // namespace
}  // namespace nrn::coding

// Golden-file regression tests for the CSV/JSON emitters: a fixed seed and
// a small plan against checked-in expected output, so emitter refactors
// cannot silently change the report formats external tooling parses.
//
// To regenerate after an INTENTIONAL format change:
//   NRN_UPDATE_GOLDEN=1 ./test_report_golden
// and commit the rewritten files under tests/golden/.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "sim_test_util.hpp"

namespace nrn::sim {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(NRN_TEST_DATA_DIR) + "/golden/" + name;
}

void check_golden(const std::string& name, const std::string& actual) {
  const auto path = golden_path(name);
  if (std::getenv("NRN_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " (regenerate with NRN_UPDATE_GOLDEN=1)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "emitter output drifted from " << path
      << "; if intentional, regenerate with NRN_UPDATE_GOLDEN=1";
}

ExperimentReport fixed_experiment() {
  const auto scenario = Scenario::parse("path:12", "receiver:0.25", 0, 1, 5);
  return Driver().run(scenario, "decay", 3);
}

SweepReport fixed_sweep() {
  const auto plan = SweepPlan::parse(
      "topology=path:12,star:8; fault=none,receiver:0.25; "
      "protocols=decay,greedy; trials=2; seed=99");
  return SweepRunner().run(plan);
}

TEST(GoldenFiles, ExperimentCsv) {
  check_golden("experiment_decay_path12.csv",
               testutil::csv_of(fixed_experiment()));
}

TEST(GoldenFiles, ExperimentJson) {
  check_golden("experiment_decay_path12.json",
               testutil::json_of(fixed_experiment()));
}

TEST(GoldenFiles, SweepCsv) {
  check_golden("sweep_small.csv", testutil::sweep_csv_of(fixed_sweep()));
}

TEST(GoldenFiles, SweepJson) {
  check_golden("sweep_small.json", testutil::sweep_json_of(fixed_sweep()));
}

/// A report whose string fields are deliberately hostile to JSON: quotes,
/// backslashes, newlines, tabs, and raw control bytes -- everything the
/// old escaper (quotes and backslashes only) passed through verbatim,
/// producing unparseable output.  Built by hand because the spec parsers
/// rightly reject such strings; the emitters still must never emit
/// invalid JSON for any in-memory report.
ExperimentReport hostile_experiment() {
  auto report = Driver().run(
      Scenario::parse("path:4", "none", 0, 1, 7), "decay", 1);
  report.protocol = "decay\n\"quoted\"\\back\x01slash";
  report.scenario.topology.text = "path:4\twith\ttabs\x1f";
  report.scenario.fault_text = "none\r\n\x07" "bell";  // 0x07: BEL
  // A real-valued metric that needs all 17 significant digits.
  report.trials.at(0).run.metrics.emplace("fraction",
                                          MetricValue(1.0 / 3.0));
  return report;
}

TEST(GoldenFiles, HostileStringsEmitValidJson) {
  const auto report = hostile_experiment();
  const auto json = testutil::json_of(report);
  check_golden("experiment_hostile.json", json);
  // No raw control byte may survive into the emitted document: inside
  // strings it is illegal JSON, and the emitter writes none elsewhere
  // except its own structural newlines.
  for (const char c : json)
    EXPECT_TRUE(static_cast<unsigned char>(c) >= 0x20 || c == '\n')
        << "raw control byte 0x" << std::hex
        << static_cast<int>(static_cast<unsigned char>(c));
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  // max_digits10 reals round-trip: 1/3 keeps all 17 digits.
  EXPECT_NE(json.find("0.33333333333333331"), std::string::npos);
}

TEST(GoldenFiles, ShardFileFormat) {
  // The shard/merge hand-off format is an interchange format too: sharded
  // production runs from different build timestamps must stay mergeable.
  check_golden("sweep_small.nrns", testutil::shard_bytes(fixed_sweep()));
}

}  // namespace
}  // namespace nrn::sim

// Layered pipeline routing (Lemmas 20/21).
#include "core/bipartite_pipeline.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "topology/wct.hpp"

namespace nrn::core {
namespace {

using graph::make_grid;
using graph::make_path;
using graph::make_star;
using radio::FaultModel;
using radio::RadioNetwork;

TEST(Pipeline, CompletesOnStar) {
  const auto g = make_star(32);
  RadioNetwork net(g, FaultModel::receiver(0.5), Rng(1));
  PipelineParams params;
  params.k = 12;
  Rng rng(2);
  const auto r = run_layered_pipeline_routing(net, 0, params, rng);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.messages, 12);
}

TEST(Pipeline, CompletesOnPathFaultless) {
  const auto g = make_path(20);
  RadioNetwork net(g, FaultModel::faultless(), Rng(3));
  PipelineParams params;
  params.k = 10;
  Rng rng(4);
  EXPECT_TRUE(run_layered_pipeline_routing(net, 0, params, rng).completed);
}

TEST(Pipeline, CompletesOnPathWithFaults) {
  const auto g = make_path(16);
  RadioNetwork net(g, FaultModel::receiver(0.4), Rng(5));
  PipelineParams params;
  params.k = 8;
  Rng rng(6);
  EXPECT_TRUE(run_layered_pipeline_routing(net, 0, params, rng).completed);
}

TEST(Pipeline, CompletesOnGridWithSenderFaults) {
  const auto g = make_grid(6, 6);
  RadioNetwork net(g, FaultModel::sender(0.4), Rng(7));
  PipelineParams params;
  params.k = 6;
  Rng rng(8);
  EXPECT_TRUE(run_layered_pipeline_routing(net, 0, params, rng).completed);
}

TEST(Pipeline, CompletesOnWct) {
  Rng grng(9);
  topology::WctParams wp;
  wp.sender_count = 24;
  wp.class_count = 3;
  wp.clusters_per_class = 4;
  wp.cluster_size = 6;
  const topology::WctNetwork wct(wp, grng);
  RadioNetwork net(wct.graph(), FaultModel::receiver(0.5), Rng(10));
  PipelineParams params;
  params.k = 8;
  Rng rng(11);
  const auto r = run_layered_pipeline_routing(net, wct.source(), params, rng);
  EXPECT_TRUE(r.completed);
}

TEST(Pipeline, PipeliningBeatsNaiveSequentialOnDeepGraphs) {
  // With batches pipelined three layers apart, a deep path broadcasts k
  // messages in O(D + k) message-slots rather than O(D * k).
  const auto g = make_path(30);
  PipelineParams params;
  params.k = 16;
  params.batch = 2;
  RadioNetwork net(g, FaultModel::faultless(), Rng(12));
  Rng rng(13);
  const auto r = run_layered_pipeline_routing(net, 0, params, rng);
  ASSERT_TRUE(r.completed);
  // Sequential per-message flooding would need ~D * k boundary-message
  // slots; the pipeline must finish in far fewer rounds even with decay
  // overhead per slot.
  EXPECT_LT(r.rounds, 29 * 16 * 4);
}

TEST(Pipeline, TinyCapFails) {
  const auto g = make_path(10);
  RadioNetwork net(g, FaultModel::receiver(0.5), Rng(14));
  PipelineParams params;
  params.k = 4;
  params.meta_round_cap = 1;
  Rng rng(15);
  const auto r = run_layered_pipeline_routing(net, 0, params, rng);
  EXPECT_FALSE(r.completed);
}

TEST(Pipeline, SingleMessageDegenerate) {
  const auto g = make_path(6);
  RadioNetwork net(g, FaultModel::faultless(), Rng(16));
  PipelineParams params;
  params.k = 1;
  Rng rng(17);
  EXPECT_TRUE(run_layered_pipeline_routing(net, 0, params, rng).completed);
}

TEST(Pipeline, BatchSizeOne) {
  const auto g = make_path(8);
  RadioNetwork net(g, FaultModel::receiver(0.3), Rng(18));
  PipelineParams params;
  params.k = 5;
  params.batch = 1;
  Rng rng(19);
  EXPECT_TRUE(run_layered_pipeline_routing(net, 0, params, rng).completed);
}

TEST(Pipeline, DeterministicGivenSeeds) {
  const auto g = make_grid(5, 5);
  auto run = [&g](std::uint64_t seed) {
    RadioNetwork net(g, FaultModel::receiver(0.4), Rng(seed));
    PipelineParams params;
    params.k = 6;
    Rng rng(seed + 1);
    return run_layered_pipeline_routing(net, 0, params, rng).rounds;
  };
  EXPECT_EQ(run(20), run(20));
}

}  // namespace
}  // namespace nrn::core

// RLNC state: rank algebra, innovation detection, decode correctness
// (the machinery behind Lemmas 12/13).
#include "coding/rlnc.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace nrn::coding {
namespace {

std::vector<std::vector<std::uint8_t>> random_messages(std::size_t k,
                                                       std::size_t len,
                                                       Rng& rng) {
  std::vector<std::vector<std::uint8_t>> msgs(
      k, std::vector<std::uint8_t>(len));
  for (auto& m : msgs)
    for (auto& s : m) s = static_cast<std::uint8_t>(rng.next_below(256));
  return msgs;
}

TEST(Rlnc, SourceSeedIsFullRank) {
  Rng rng(1);
  RlncState s(5, 3);
  s.seed_source(random_messages(5, 3, rng));
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(s.rank(), 5u);
}

TEST(Rlnc, DecodeRecoversMessagesDirectly) {
  Rng rng(2);
  const auto msgs = random_messages(6, 4, rng);
  RlncState src(6, 4);
  src.seed_source(msgs);
  EXPECT_EQ(src.decode(), msgs);
}

TEST(Rlnc, RelayDecodesAfterKInnovativePackets) {
  Rng rng(3);
  const auto msgs = random_messages(8, 4, rng);
  RlncState src(8, 4);
  src.seed_source(msgs);
  RlncState sink(8, 4);
  int packets = 0;
  while (!sink.complete()) {
    sink.absorb(src.emit(rng));
    ++packets;
    ASSERT_LT(packets, 100);
  }
  EXPECT_EQ(sink.decode(), msgs);
  // Random GF(256) combinations are innovative with prob >= 1 - 1/255;
  // needing many retries would indicate broken elimination.
  EXPECT_LE(packets, 12);
}

TEST(Rlnc, MultiHopRelayChain) {
  Rng rng(4);
  const auto msgs = random_messages(5, 2, rng);
  RlncState a(5, 2), b(5, 2), c(5, 2);
  a.seed_source(msgs);
  // a -> b -> c, interleaved: c only hears b's re-coded packets.
  int rounds = 0;
  while (!c.complete()) {
    b.absorb(a.emit(rng));
    if (b.rank() > 0) c.absorb(b.emit(rng));
    ASSERT_LT(++rounds, 200);
  }
  EXPECT_EQ(c.decode(), msgs);
}

TEST(Rlnc, DependentPacketIsNotInnovative) {
  Rng rng(5);
  const auto msgs = random_messages(4, 2, rng);
  RlncState src(4, 2);
  src.seed_source(msgs);
  RlncState sink(4, 2);
  const auto pkt = src.emit(rng);
  EXPECT_TRUE(sink.absorb(pkt));
  EXPECT_FALSE(sink.absorb(pkt));  // identical packet: dependent
  EXPECT_EQ(sink.rank(), 1u);
}

TEST(Rlnc, ScaledPacketIsNotInnovative) {
  Rng rng(6);
  RlncState sink(3, 0);
  RlncPacket p1{{1, 2, 3}, {}};
  EXPECT_TRUE(sink.absorb(p1));
  const auto& f = Gf256::instance();
  RlncPacket p2{{f.mul(5, 1), f.mul(5, 2), f.mul(5, 3)}, {}};
  EXPECT_FALSE(sink.absorb(p2));
}

TEST(Rlnc, CoefficientOnlyModeTracksRank) {
  Rng rng(7);
  RlncState src(10, 0);
  src.seed_source({});
  RlncState sink(10, 0);
  while (!sink.complete()) sink.absorb(src.emit(rng));
  EXPECT_EQ(sink.rank(), 10u);
  EXPECT_THROW(sink.decode(), ContractViolation);
}

TEST(Rlnc, PartialRankDecodeThrows) {
  Rng rng(8);
  const auto msgs = random_messages(4, 2, rng);
  RlncState src(4, 2);
  src.seed_source(msgs);
  RlncState sink(4, 2);
  sink.absorb(src.emit(rng));
  EXPECT_FALSE(sink.complete());
  EXPECT_THROW(sink.decode(), ContractViolation);
}

TEST(Rlnc, EmitFromEmptyThrows) {
  Rng rng(9);
  RlncState s(3, 0);
  EXPECT_THROW(s.emit(rng), ContractViolation);
}

TEST(Rlnc, AbsorbValidatesLengths) {
  RlncState s(3, 2);
  EXPECT_THROW(s.absorb(RlncPacket{{1, 2}, {0, 0}}), ContractViolation);
  EXPECT_THROW(s.absorb(RlncPacket{{1, 2, 3}, {0}}), ContractViolation);
}

TEST(Rlnc, MixingTwoPartialSourcesCoversUnion) {
  // Node hears packets from two peers holding disjoint halves of the
  // basis; its rank converges to the union's dimension.
  Rng rng(10);
  RlncState half_a(6, 0), half_b(6, 0), sink(6, 0);
  // half_a spans e0..e2, half_b spans e3..e5.
  for (int i = 0; i < 3; ++i) {
    RlncPacket p{std::vector<std::uint8_t>(6, 0), {}};
    p.coeffs[static_cast<size_t>(i)] = 1;
    half_a.absorb(p);
    RlncPacket q{std::vector<std::uint8_t>(6, 0), {}};
    q.coeffs[static_cast<size_t>(3 + i)] = 1;
    half_b.absorb(q);
  }
  int rounds = 0;
  while (sink.rank() < 6) {
    sink.absorb(half_a.emit(rng));
    sink.absorb(half_b.emit(rng));
    ASSERT_LT(++rounds, 100);
  }
  EXPECT_TRUE(sink.complete());
}

class RlncDimensionSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RlncDimensionSweep, EndToEnd) {
  const std::size_t k = GetParam();
  Rng rng(40 + k);
  const auto msgs = random_messages(k, 3, rng);
  RlncState src(k, 3), sink(k, 3);
  src.seed_source(msgs);
  int packets = 0;
  while (!sink.complete()) {
    sink.absorb(src.emit(rng));
    ASSERT_LT(++packets, static_cast<int>(4 * k + 50));
  }
  EXPECT_EQ(sink.decode(), msgs);
}

INSTANTIATE_TEST_SUITE_P(Dims, RlncDimensionSweep,
                         ::testing::Values<std::size_t>(1, 2, 3, 8, 17, 32,
                                                        64, 128));

}  // namespace
}  // namespace nrn::coding

// Fixture: a kernel translation unit (the "kernel" in this file's name
// puts it in rng-batch scope) pricing fault coins one mix64 at a time.
#include <cstdint>
#include <vector>

// The rule is textual, so even a declaration counts.  // expect: rng-batch
std::uint64_t mix64(std::uint64_t salt, std::uint64_t index);
void mix64_batch(std::uint64_t salt, std::uint64_t first, std::uint64_t* out,
                 std::size_t count);

int count_losses(std::uint64_t salt, const std::vector<std::uint64_t>& ids,
                 std::uint64_t threshold) {
  int losses = 0;
  for (const std::uint64_t id : ids)
    if (mix64(salt, id) < threshold) ++losses;  // expect: rng-batch
  return losses;
}

int count_losses_batched(std::uint64_t salt, std::uint64_t first,
                         std::uint64_t threshold) {
  // The approved spelling: mix64_batch does not trip the rule.
  std::uint64_t out[8];
  mix64_batch(salt, first, out, 8);
  int losses = 0;
  for (const std::uint64_t v : out) losses += v < threshold ? 1 : 0;
  return losses;
}

int count_losses_waived(std::uint64_t salt, std::uint64_t id,
                        std::uint64_t threshold) {
  // nrn-lint: allow(rng-batch): one coin for one node; nothing to batch.
  return mix64(salt, id) < threshold ? 1 : 0;
}

// Fixture: randomness sources outside common/rng the rng rule must catch.
// expect: rng
// expect: rng
// expect: rng
// expect: rng
#include <cstdlib>
#include <random>

int bad_rand() { return rand(); }  // global-state C randomness

unsigned bad_device() {
  std::random_device device;  // nondeterministic by design
  return device();
}

unsigned bad_engine() {
  std::mt19937 engine(42);  // not the v3 coin tape
  return engine();
}

double bad_distribution() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);  // stdlib-specific
  return dist.min();
}

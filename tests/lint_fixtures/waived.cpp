// Fixture: violations suppressed by well-formed waivers (with reasons).
// nrn_lint must report nothing here -- both on-line and preceding-line
// waivers, including one whose comment continues over several lines.
#include <cstdio>
#include <thread>

void waived_inline() {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", 1.5);  // nrn-lint: allow(locale-float): fixture demonstrating an on-line waiver
}

void waived_preceding() {
  // nrn-lint: allow(raw-thread): fixture demonstrating a waiver on the
  // line above the violation, with a comment that keeps going before the
  // flagged code line arrives.
  std::thread worker([] {});
  worker.join();
}

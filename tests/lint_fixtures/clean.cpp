// Fixture: a file that does everything the rules police, the approved way.
// No `expect:` lines -- nrn_lint must report nothing here.
#include <map>
#include <string>

// Talking about std::stod in a comment is fine; only code trips the rule.
// So is the string "please never call strtod directly".

std::string render(const std::map<std::string, int>& cells) {
  std::string out = "experiment v5\n";  // literal matches the constant below
  for (const auto& [key, value] : cells) out += key + "\n";
  return out;
}

inline constexpr int kSweepFormatVersion = 5;

// Fixture: an unordered container inside an emitter-class translation unit
// (the filename contains "report", which marks it as one).  Iteration order
// would leak into serialized output.
// expect: unordered-emit
#include <string>
#include <unordered_map>

std::string render_all(const std::unordered_map<std::string, int>& cells) {
  std::string out;
  for (const auto& [key, value] : cells) out += key;  // unstable order
  return out;
}

// Fixture: a format literal that disagrees with kSweepFormatVersion.
// expect: format-version
#include <ostream>

inline constexpr int kSweepFormatVersion = 4;

void emit(std::ostream& os) {
  os << "experiment v9\n";  // literal says v9, constant says 4
}

// Fixture: a waiver with no reason string.  The underlying violation is
// suppressed, but the reasonless waiver itself is a violation.
// expect: waiver-reason
#include <cstdlib>

int bad_but_waived_badly() {
  return rand();  // nrn-lint: allow(rng)
}

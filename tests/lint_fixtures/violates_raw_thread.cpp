// Fixture: a raw std::thread outside common/task_pool and serve/.
// (std::this_thread is fine -- only thread creation is flagged.)
// expect: raw-thread
#include <chrono>
#include <thread>

void bad_spawn() {
  std::thread worker([] {});
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // not flagged
  worker.join();
}

// Fixture: FaultModel field access outside src/radio/ the fault-fields
// rule must catch.  (Fixtures lint as their own one-file tree, so this
// file is "outside radio/" by construction.)
// expect: fault-fields
// expect: fault-fields
// expect: fault-fields
// expect: fault-fields
#include "radio/fault_model.hpp"

bool bad_kind_enum(const nrn::radio::FaultModel& fault) {
  const auto sender = nrn::radio::FaultKind::kSender;  // raw enum access
  return fault.kind == sender;  // raw kind field, bypassing is_faultless()
}

double bad_probability(const nrn::radio::FaultModel& fault) {
  return fault.p;  // raw sender probability, bypassing effective_loss()
}

double bad_receiver_probability(const nrn::radio::FaultModel& fault) {
  return fault.p_receiver;
}

// Fixture: every flavour of locale-sensitive float formatting/parsing the
// locale-float rule must catch.  Each `expect:` line is one required hit.
// expect: locale-float
// expect: locale-float
// expect: locale-float
// expect: locale-float
// expect: locale-float
#include <cstdio>
#include <cstdlib>
#include <string>

double bad_parse(const std::string& text) {
  return std::stod(text);  // locale-dependent decimal point
}

double bad_c_parse(const char* text) {
  return strtod(text, nullptr);  // same, through the C library
}

double bad_atof(const char* text) {
  return atof(text);  // locale-dependent and error-blind
}

std::string bad_format(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", value);  // %f follows LC_NUMERIC
  return buf;
}

std::string bad_to_string() {
  return std::to_string(3.25);  // to_string of a double follows LC_NUMERIC
}

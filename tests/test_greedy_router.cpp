// Greedy adaptive router (the strongest practical Definition 14 member).
#include "core/greedy_router.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/star_schedules.hpp"
#include "graph/generators.hpp"
#include "topology/wct.hpp"

namespace nrn::core {
namespace {

using radio::FaultModel;
using radio::RadioNetwork;

MultiRunResult run(const graph::Graph& g, FaultModel fm, std::int64_t k,
                   std::uint64_t seed) {
  RadioNetwork net(g, fm, Rng(seed));
  GreedyRouterParams params;
  params.k = k;
  return run_greedy_adaptive_routing(net, 0, params);
}

TEST(GreedyRouter, CompletesOnPathFaultless) {
  const auto r = run(graph::make_path(32), FaultModel::faultless(), 4, 1);
  EXPECT_TRUE(r.completed);
}

TEST(GreedyRouter, SequentialBoundOnFaultlessPath) {
  // The greedy router is myopic: on deep paths it does not discover the
  // spacing-3 pipeline (relays prefer forwarding over listening), so its
  // cost is bounded by the sequential k * D but not much better.  Its
  // purpose is the depth-<=2 gap topologies; this test documents the
  // limitation explicitly.
  const std::int64_t k = 12;
  const auto r = run(graph::make_path(40), FaultModel::faultless(), k, 2);
  ASSERT_TRUE(r.completed);
  EXPECT_LE(r.rounds, 39 * k);
}

TEST(GreedyRouter, CompletesOnGridWithReceiverFaults) {
  const auto r = run(graph::make_grid(7, 7), FaultModel::receiver(0.4), 6, 3);
  EXPECT_TRUE(r.completed);
}

TEST(GreedyRouter, CompletesOnGnpWithSenderFaults) {
  Rng grng(4);
  const auto g = graph::make_connected_gnp(64, 0.1, grng);
  const auto r = run(g, FaultModel::sender(0.4), 6, 5);
  EXPECT_TRUE(r.completed);
}

TEST(GreedyRouter, CompletesUnderCombinedFaults) {
  const auto r =
      run(graph::make_path(24), FaultModel::combined(0.25, 0.25), 4, 6);
  EXPECT_TRUE(r.completed);
}

TEST(GreedyRouter, MatchesStarScheduleOnStar) {
  // On the star the greedy router degenerates to Lemma 15's schedule (one
  // broadcaster, most-wanted message), so rounds/message should land at
  // the same Theta(log n) scale under receiver faults.
  const auto star = topology::make_star(256);
  const std::int64_t k = 32;
  const auto greedy = run(star.graph, FaultModel::receiver(0.5), k, 7);
  ASSERT_TRUE(greedy.completed);

  RadioNetwork net(star.graph, FaultModel::receiver(0.5), Rng(8));
  const auto reference =
      run_star_adaptive_routing(net, star, k, 100'000'000);
  ASSERT_TRUE(reference.completed);

  EXPECT_NEAR(greedy.rounds_per_message(), reference.rounds_per_message(),
              0.5 * reference.rounds_per_message());
  EXPECT_GT(greedy.rounds_per_message(), 0.5 * std::log2(256));
}

TEST(GreedyRouter, StillPaysLogSquaredOnWct) {
  // The point of Lemma 19: even an aggressive adaptive router cannot beat
  // Theta(1/log^2 n) on WCT with receiver faults.  The greedy router's
  // rounds/message must stay well above the coding scale (~log n).
  Rng grng(9);
  topology::WctParams wp;
  wp.sender_count = 64;
  wp.class_count = 6;
  wp.clusters_per_class = 8;
  wp.cluster_size = 16;
  const topology::WctNetwork wct(wp, grng);
  RadioNetwork net(wct.graph(), FaultModel::receiver(0.5), Rng(10));
  GreedyRouterParams params;
  params.k = 16;
  const auto r = run_greedy_adaptive_routing(net, wct.source(), params);
  ASSERT_TRUE(r.completed);
  // Lemma 19 scale on this instance: Omega(L * log(cluster size)) rounds
  // per message = 6 * log2(16) = 24 up to constants; far above the coding
  // scale (~a small multiple of 1/(1-p)).
  EXPECT_GT(r.rounds_per_message(),
            0.5 * 6 * std::log2(16));
}

TEST(GreedyRouter, SingleMessageOnCompleteGraphIsOneRound) {
  const auto r = run(graph::make_complete(16), FaultModel::faultless(), 1, 11);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.rounds, 1);
}

TEST(GreedyRouter, BudgetRespected) {
  const auto g = graph::make_path(64);
  RadioNetwork net(g, FaultModel::receiver(0.5), Rng(12));
  GreedyRouterParams params;
  params.k = 8;
  params.max_rounds = 5;
  const auto r = run_greedy_adaptive_routing(net, 0, params);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.rounds, 5);
}

TEST(GreedyRouter, TrivialInstanceShortCircuits) {
  const auto g = graph::make_path(1);
  RadioNetwork net(g, FaultModel::faultless(), Rng(13));
  GreedyRouterParams params;
  params.k = 3;
  const auto r = run_greedy_adaptive_routing(net, 0, params);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.rounds, 0);
}

TEST(GreedyRouter, ValidatesArguments) {
  const auto g = graph::make_path(4);
  RadioNetwork net(g, FaultModel::faultless(), Rng(14));
  GreedyRouterParams params;
  params.k = 0;
  EXPECT_THROW(run_greedy_adaptive_routing(net, 0, params),
               ContractViolation);
  params.k = 1;
  EXPECT_THROW(run_greedy_adaptive_routing(net, 9, params),
               ContractViolation);
}

}  // namespace
}  // namespace nrn::core

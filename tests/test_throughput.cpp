// Throughput sweep harness.
#include "core/throughput.hpp"

#include <gtest/gtest.h>

namespace nrn::core {
namespace {

TEST(Throughput, SweepComputesMedianAndRates) {
  // Deterministic fake schedule: rounds = 10k, fails when k > 16.
  const ScheduleFn fake = [](std::int64_t k, Rng&) {
    MultiRunResult r;
    r.messages = k;
    r.rounds = 10 * k;
    r.completed = k <= 16;
    return r;
  };
  Rng rng(1);
  const auto pts = sweep_throughput(fake, {4, 16, 32}, 5, rng);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[0].k, 4);
  EXPECT_DOUBLE_EQ(pts[0].median_rounds, 40.0);
  EXPECT_DOUBLE_EQ(pts[0].rounds_per_message, 10.0);
  EXPECT_DOUBLE_EQ(pts[0].success_rate, 1.0);
  EXPECT_DOUBLE_EQ(pts[2].success_rate, 0.0);
  EXPECT_DOUBLE_EQ(pts[1].throughput, 0.1);
}

TEST(Throughput, TrialsUseIndependentStreams) {
  // A schedule whose rounds depend on the RNG; across trials the median
  // should be stable but individual draws differ.
  const ScheduleFn random_schedule = [](std::int64_t k, Rng& rng) {
    MultiRunResult r;
    r.messages = k;
    r.rounds = static_cast<std::int64_t>(k) *
               static_cast<std::int64_t>(5 + rng.next_below(10));
    r.completed = true;
    return r;
  };
  Rng rng(2);
  const auto pts = sweep_throughput(random_schedule, {8}, 21, rng);
  EXPECT_GE(pts[0].rounds_per_message, 5.0);
  EXPECT_LE(pts[0].rounds_per_message, 15.0);
}

TEST(Throughput, GapAtComputesRatio) {
  std::vector<ThroughputPoint> routing(2), coding(2);
  routing[1].rounds_per_message = 30.0;
  coding[1].rounds_per_message = 3.0;
  EXPECT_DOUBLE_EQ(gap_at(routing, coding, 1), 10.0);
}

TEST(Throughput, GapAtValidatesInputs) {
  std::vector<ThroughputPoint> a(1), b(1);
  EXPECT_THROW(gap_at(a, b, 5), ContractViolation);
  EXPECT_THROW(gap_at(a, b, 0), ContractViolation);  // zero denominator
}

TEST(Throughput, RequiresTrials) {
  const ScheduleFn fake = [](std::int64_t k, Rng&) {
    MultiRunResult r;
    r.messages = k;
    r.rounds = k;
    r.completed = true;
    return r;
  };
  Rng rng(3);
  EXPECT_THROW(sweep_throughput(fake, {1}, 0, rng), ContractViolation);
}

}  // namespace
}  // namespace nrn::core

// SINR channel semantics (radio/channel_model.hpp): hand-computable
// reception cases (capture vs. collision, noise-limited losses, gain
// ties), determinism (the channel draws no coins, so the engine rng is
// irrelevant), bit-identical agreement across the scalar kernel routes,
// lockstep-lane-vs-scalar bit-identity, and driver-level report equality
// plus the interference trace series.
#include "radio/channel_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "radio/lockstep.hpp"
#include "radio/network.hpp"
#include "sim/driver.hpp"
#include "sim/scenario.hpp"

namespace nrn::radio {
namespace {

using graph::Geometry;
using graph::Graph;
using graph::NodeId;

std::vector<NodeId> receivers_of(const DeliveryList& deliveries) {
  std::vector<NodeId> out;
  for (const auto& d : deliveries) out.push_back(d.receiver);
  return out;
}

/// Three nodes on a line: listener 0 with graph edges to 1 (distance 1)
/// and 2 (distance 2); no edge between 1 and 2.
struct LineFixture {
  Graph graph{3, {{0, 1}, {0, 2}}};
  Geometry geometry{{0.0, 1.0, 2.0}, {0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}};
};

TEST(SinrChannel, CaptureBeatsCollisionWhenTheStrongSignalClears) {
  LineFixture fx;
  // alpha=2: gain(1->0) = 1.0, gain(2->0) = 0.25.
  const auto channel = ChannelModel::sinr_channel(2.0, 0.1, 1.0);
  RadioNetwork net(fx.graph, channel, &fx.geometry, Rng(1));
  net.set_broadcast(1, Packet{7});
  net.set_broadcast(2, Packet{8});
  const auto& deliveries = net.run_round();
  // 1.0 >= beta * (noise + interference) = 1.0 * (0.1 + 0.25): node 0
  // decodes the stronger transmitter where the edge-fault channel would
  // have recorded a collision.
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries.front().receiver, 0);
  EXPECT_EQ(deliveries.front().sender, 1);
  EXPECT_EQ(deliveries.front().packet.id, 7);
  EXPECT_EQ(net.last_round().deliveries, 1);
  EXPECT_EQ(net.last_round().collision_losses, 0);
  EXPECT_EQ(net.last_round().interference_losses, 0);

  // The identical staging under the edge-fault channel: a collision.
  RadioNetwork edge(fx.graph, FaultModel::faultless(), Rng(1));
  edge.set_broadcast(1, Packet{7});
  edge.set_broadcast(2, Packet{8});
  EXPECT_TRUE(edge.run_round().empty());
  EXPECT_EQ(edge.last_round().collision_losses, 1);
}

TEST(SinrChannel, ThresholdFailureCountsAnInterferenceLoss) {
  LineFixture fx;
  const auto channel = ChannelModel::sinr_channel(2.0, 0.1, 4.0);
  RadioNetwork net(fx.graph, channel, &fx.geometry, Rng(1));
  net.set_broadcast(1, Packet{7});
  net.set_broadcast(2, Packet{8});
  // 1.0 < 4.0 * (0.1 + 0.25): the listener heard transmitters but decoded
  // none -- an interference loss, never a collision loss.
  EXPECT_TRUE(net.run_round().empty());
  EXPECT_EQ(net.last_round().interference_losses, 1);
  EXPECT_EQ(net.last_round().collision_losses, 0);

  // Noise-limited: a lone weak transmitter fails the same threshold
  // (0.25 < 4.0 * 0.1) with zero interference.
  net.set_broadcast(2, Packet{8});
  EXPECT_TRUE(net.run_round().empty());
  EXPECT_EQ(net.last_round().interference_losses, 1);

  // Relaxed beta: the same lone transmitter clears (0.25 >= 1.0 * 0.1).
  net.reset(ChannelModel::sinr_channel(2.0, 0.1, 1.0), Rng(1));
  net.set_broadcast(2, Packet{8});
  ASSERT_EQ(net.run_round().size(), 1u);
  EXPECT_EQ(net.last_round().deliveries, 1);
}

TEST(SinrChannel, GainTieResolvesToTheLowestSenderId) {
  // Listener 0 between equidistant transmitters 1 and 2: identical gains,
  // and the ascending row walk's strict-greater compare keeps the lowest
  // sender id.
  Graph g(3, {{0, 1}, {0, 2}});
  Geometry geo{{0.0, 1.0, -1.0}, {0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}};
  const auto channel = ChannelModel::sinr_channel(2.0, 0.0, 0.5);
  RadioNetwork net(g, channel, &geo, Rng(1));
  net.set_broadcast(2, Packet{8});  // staged first: staging order must not
  net.set_broadcast(1, Packet{7});  // override the id-order tie break
  const auto& deliveries = net.run_round();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries.front().sender, 1);
  EXPECT_EQ(deliveries.front().packet.id, 7);
}

TEST(SinrChannel, DeterministicRegardlessOfEngineSeed) {
  // The channel prices no coins, so two engines with different rng seeds
  // must agree round for round on a nontrivial geometric graph.
  const auto scenario =
      sim::Scenario::parse("disk:80:0.3", "none", 0, 1, 17, "sinr:2.5:0.01:0.8");
  Geometry geo;
  const Graph g = scenario.build_graph(&geo);
  RadioNetwork a(g, scenario.channel, &geo, Rng(1));
  RadioNetwork b(g, scenario.channel, &geo, Rng(999));
  Rng plan_rng(5);
  for (int round = 0; round < 25; ++round) {
    for (NodeId u = 0; u < g.node_count(); ++u) {
      if (!plan_rng.bernoulli(0.25)) continue;
      a.set_broadcast(u, Packet{u});
      b.set_broadcast(u, Packet{u});
    }
    const auto ra = receivers_of(a.run_round());
    const auto rb = receivers_of(b.run_round());
    ASSERT_EQ(ra, rb) << "round " << round;
    ASSERT_EQ(a.last_round(), b.last_round()) << "round " << round;
  }
}

TEST(SinrChannel, ScalarKernelRoutesAgree) {
  const auto scenario = sim::Scenario::parse("disk:120:0.25", "none", 0, 1, 5,
                                             "sinr:2.5:0.01:0.5");
  Geometry geo;
  const Graph g = scenario.build_graph(&geo);
  RadioNetwork sparse(g, scenario.channel, &geo, Rng(1));
  RadioNetwork dense(g, scenario.channel, &geo, Rng(1));
  sparse.set_kernel(RadioNetwork::Kernel::kSparse);
  dense.set_kernel(RadioNetwork::Kernel::kDense);
  Rng plan_rng(11);
  for (int round = 0; round < 20; ++round) {
    for (NodeId u = 0; u < g.node_count(); ++u) {
      if (!plan_rng.bernoulli(0.3)) continue;
      sparse.set_broadcast(u, Packet{u});
      dense.set_broadcast(u, Packet{u});
    }
    const auto rs = receivers_of(sparse.run_round());
    const auto rd = receivers_of(dense.run_round());
    ASSERT_EQ(rs, rd) << "round " << round;
    ASSERT_EQ(sparse.last_round(), dense.last_round()) << "round " << round;
  }
}

TEST(SinrChannel, AdjacentRouteMatchesSparseOnAPathGeometry) {
  // A path graph with hand-placed equally spaced nodes qualifies for the
  // word-parallel adjacent route; its gl/gr shortcut gains must reproduce
  // the sparse route's row walk bit for bit.
  constexpr NodeId kN = 67;  // odd and > 64: exercises the partial word
  const Graph g = graph::make_path(kN);
  Geometry geo;
  for (NodeId u = 0; u < kN; ++u) {
    geo.x.push_back(0.37 * u);
    geo.y.push_back(0.0);
    geo.power.push_back(u % 2 == 0 ? 1.0 : 1.5);
  }
  const auto channel = ChannelModel::sinr_channel(3.0, 0.005, 0.9);
  RadioNetwork adjacent(g, channel, &geo, Rng(1));
  RadioNetwork sparse(g, channel, &geo, Rng(1));
  adjacent.set_kernel(RadioNetwork::Kernel::kAdjacent);
  sparse.set_kernel(RadioNetwork::Kernel::kSparse);
  Rng plan_rng(23);
  for (int round = 0; round < 30; ++round) {
    for (NodeId u = 0; u < kN; ++u) {
      if (!plan_rng.bernoulli(0.4)) continue;
      adjacent.set_broadcast(u, Packet{u});
      sparse.set_broadcast(u, Packet{u});
    }
    const auto ra = receivers_of(adjacent.run_round());
    const auto rs = receivers_of(sparse.run_round());
    ASSERT_EQ(ra, rs) << "round " << round;
    ASSERT_EQ(adjacent.last_round(), sparse.last_round()) << "round " << round;
  }
}

TEST(SinrChannel, LockstepLanesMatchScalarRoundByRound) {
  const auto scenario = sim::Scenario::parse("uniform:90:2.5", "none", 0, 1,
                                             31, "sinr:2:0.002:0.7");
  Geometry geo;
  const Graph g = scenario.build_graph(&geo);
  Rng meta(424242);
  LockstepNetwork bank(g, scenario.channel, &geo);
  std::vector<RadioNetwork> scalars;
  const int lanes = LockstepNetwork::kMaxLanes;
  std::vector<Rng> plan_rngs;
  for (int l = 0; l < lanes; ++l) {
    const std::uint64_t seed = meta();
    ASSERT_EQ(bank.add_lane(Rng(seed)), l);
    scalars.emplace_back(g, scenario.channel, &geo, Rng(seed));
    plan_rngs.emplace_back(seed ^ 0xfeed);
  }
  for (int round = 0; round < 25; ++round) {
    const unsigned mask = static_cast<unsigned>(meta.next_below(1u << lanes));
    for (int l = 0; l < lanes; ++l) {
      if ((mask & (1u << l)) == 0) continue;
      auto& rng = plan_rngs[static_cast<std::size_t>(l)];
      for (NodeId u = g.node_count() - 1; u >= 0; --u) {
        if (!rng.bernoulli(0.3)) continue;
        bank.stage(l, u);
        scalars[static_cast<std::size_t>(l)].set_broadcast(u, Packet{u});
      }
    }
    if (mask == 0) continue;
    bank.run_round(mask);
    for (int l = 0; l < lanes; ++l) {
      if ((mask & (1u << l)) == 0) continue;
      auto& scalar = scalars[static_cast<std::size_t>(l)];
      const auto expected = receivers_of(scalar.run_round());
      const auto got = bank.receivers(l);
      ASSERT_EQ(std::vector<NodeId>(got.begin(), got.end()), expected)
          << "lane " << l << " round " << round;
      ASSERT_EQ(bank.last_round(l), scalar.last_round())
          << "lane " << l << " round " << round;
    }
  }
}

TEST(SinrChannel, DriverScalarAndLockstepReportsAreIdentical) {
  const auto scenario = sim::Scenario::parse("disk:96:0.3", "none", 0, 1, 9,
                                             "sinr:2.5:0.005:0.6");
  sim::DriverOptions scalar_opts;
  scalar_opts.execution = sim::TrialExecution::kScalar;
  sim::DriverOptions lockstep_opts;
  lockstep_opts.execution = sim::TrialExecution::kLockstep;
  for (const char* protocol : {"decay", "fastbc"}) {
    SCOPED_TRACE(protocol);
    const auto a = sim::Driver().run(scenario, protocol, 6, scalar_opts);
    const auto b = sim::Driver().run(scenario, protocol, 6, lockstep_opts);
    EXPECT_EQ(a, b);
    EXPECT_TRUE(a.all_completed());
  }
}

TEST(SinrChannel, TracedRunsCarryTheInterferenceSeries) {
  sim::DriverOptions opts;
  opts.trace = true;
  const auto sinr = sim::Scenario::parse("disk:64:0.3", "none", 0, 1, 13,
                                         "sinr:2.5:0.005:0.6");
  const auto traced = sim::Driver().run(sinr, "decay", 2, opts);
  const auto keys = traced.series_keys();
  EXPECT_NE(std::find(keys.begin(), keys.end(), "interference"), keys.end());

  // Edge-fault traces must stay byte-compatible: no interference series.
  const auto edge = sim::Scenario::parse("path:32", "receiver:0.2", 0, 1, 13);
  const auto edge_traced = sim::Driver().run(edge, "decay", 2, opts);
  const auto edge_keys = edge_traced.series_keys();
  EXPECT_EQ(std::find(edge_keys.begin(), edge_keys.end(), "interference"),
            edge_keys.end());
}

TEST(SinrChannel, UnsupportedProtocolIsRejectedUpFront) {
  // The schedule protocols carry no kSinrCapable bit: the driver must
  // reject them before any factory runs, naming the protocol.
  const auto scenario = sim::Scenario::parse("disk:48:0.3", "none", 0, 1, 3,
                                             "sinr:2:0.001:1");
  try {
    sim::Driver(sim::extended_registry()).run(scenario, "star-coding", 1);
    ADD_FAILURE() << "expected SpecError";
  } catch (const sim::SpecError& e) {
    EXPECT_STREQ(e.what(),
                 "protocol 'star-coding' does not support the sinr channel");
  }
}

}  // namespace
}  // namespace nrn::radio

// Faultless-to-faulty transformations (Lemmas 25/26).
#include "core/transforms.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace nrn::core {
namespace {

using graph::make_path;
using graph::make_star;
using radio::FaultModel;
using radio::RadioNetwork;

TEST(Transforms, StarBaseScheduleShape) {
  StarBaseSchedule base(5);
  EXPECT_EQ(base.rounds(), 5);
  EXPECT_EQ(base.base_messages(), 5);
  EXPECT_DOUBLE_EQ(base.faultless_throughput(), 1.0);
  const auto acts = base.actions(3);
  ASSERT_EQ(acts.size(), 1u);
  EXPECT_EQ(acts[0].first, 0);
  EXPECT_EQ(acts[0].second, 3);
}

TEST(Transforms, PathPipelineActionsNeverCollide) {
  PathPipelineBaseSchedule base(12, 6);
  for (std::int64_t r = 0; r < base.rounds(); ++r) {
    const auto acts = base.actions(r);
    for (std::size_t a = 0; a < acts.size(); ++a) {
      for (std::size_t b = a + 1; b < acts.size(); ++b) {
        // Broadcasters must be >= 3 apart on the path.
        EXPECT_GE(std::abs(acts[a].first - acts[b].first), 3);
      }
      // Message/round consistency: round = 3m + j.
      EXPECT_EQ(r, 3 * acts[a].second + acts[a].first);
    }
  }
}

TEST(Transforms, RoutingTransformFaultlessIsLossless) {
  const auto g = make_star(8);
  RadioNetwork net(g, FaultModel::faultless(), Rng(1));
  StarBaseSchedule base(4);
  TransformParams params;
  params.x = 8;
  Rng rng(2);
  const auto r = run_routing_transform(net, base, params, rng);
  EXPECT_TRUE(r.run.completed);
  EXPECT_EQ(r.run.messages, 32);
}

TEST(Transforms, RoutingTransformSurvivesSenderFaults) {
  const auto g = make_star(16);
  RadioNetwork net(g, FaultModel::sender(0.5), Rng(3));
  StarBaseSchedule base(8);
  TransformParams params;
  params.x = 32;
  params.eta = 0.5;
  Rng rng(4);
  const auto r = run_routing_transform(net, base, params, rng);
  EXPECT_TRUE(r.run.completed);
  // Throughput ~ tau (1-p) / (1+eta) = 1 * 0.5 / 1.5.
  EXPECT_NEAR(r.measured_throughput, 0.33, 0.12);
}

TEST(Transforms, RoutingTransformOnPathPipeline) {
  const auto g = make_path(9);
  RadioNetwork net(g, FaultModel::sender(0.4), Rng(5));
  PathPipelineBaseSchedule base(9, 6);
  TransformParams params;
  params.x = 32;
  params.eta = 0.5;
  Rng rng(6);
  const auto r = run_routing_transform(net, base, params, rng);
  EXPECT_TRUE(r.run.completed);
}

TEST(Transforms, CodingTransformSurvivesReceiverFaults) {
  // Lemma 26 is stronger than Lemma 25: it also covers receiver faults.
  const auto g = make_path(9);
  RadioNetwork net(g, FaultModel::receiver(0.4), Rng(7));
  PathPipelineBaseSchedule base(9, 6);
  TransformParams params;
  params.x = 48;
  params.eta = 0.5;
  Rng rng(8);
  const auto r = run_coding_transform(net, base, params, rng);
  EXPECT_TRUE(r.run.completed);
}

TEST(Transforms, CodingTransformSurvivesSenderFaults) {
  const auto g = make_star(12);
  RadioNetwork net(g, FaultModel::sender(0.5), Rng(9));
  StarBaseSchedule base(6);
  TransformParams params;
  params.x = 48;
  params.eta = 0.5;
  Rng rng(10);
  const auto r = run_coding_transform(net, base, params, rng);
  EXPECT_TRUE(r.run.completed);
}

TEST(Transforms, RoutingTransformNotReceiverFaultRobustOnStar) {
  // The Lemma 25 construction waits for *its own* success only; with
  // receiver faults different leaves fail independently, so the star's
  // last leaf misses sub-messages and the run fails for moderate x and
  // tight meta-rounds.  This documents why Lemma 25 is sender-fault only.
  int failures = 0;
  for (std::uint64_t s = 0; s < 6; ++s) {
    const auto g = make_star(64);
    RadioNetwork net(g, FaultModel::receiver(0.5), Rng(20 + s));
    StarBaseSchedule base(4);
    TransformParams params;
    params.x = 16;
    params.eta = 0.1;
    Rng rng(30 + s);
    if (!run_routing_transform(net, base, params, rng).run.completed)
      ++failures;
  }
  EXPECT_GE(failures, 4);
}

TEST(Transforms, ThroughputTracksOneMinusP) {
  // Sweep p and check measured throughput of the coding transform follows
  // tau (1-p) within the (1+eta) envelope.
  const auto g = make_star(8);
  StarBaseSchedule base(6);
  TransformParams params;
  params.x = 64;
  params.eta = 0.25;
  std::vector<double> ratio;
  for (const double p : {0.0, 0.3, 0.6}) {
    RadioNetwork net(g, p == 0.0 ? FaultModel::faultless()
                                 : FaultModel::sender(p),
                     Rng(40));
    Rng rng(41);
    const auto r = run_coding_transform(net, base, params, rng);
    ASSERT_TRUE(r.run.completed) << "p=" << p;
    ratio.push_back(r.measured_throughput / (1.0 - p));
  }
  // tau(1-p) scaling: the normalized ratios agree across p.
  EXPECT_NEAR(ratio[0], ratio[1], 0.15);
  EXPECT_NEAR(ratio[0], ratio[2], 0.15);
}

TEST(Transforms, MetaLengthMatchesFormula) {
  const auto g = make_star(4);
  RadioNetwork net(g, FaultModel::sender(0.5), Rng(50));
  StarBaseSchedule base(2);
  TransformParams params;
  params.x = 10;
  params.eta = 0.0;
  Rng rng(51);
  const auto r = run_routing_transform(net, base, params, rng);
  EXPECT_EQ(r.meta_length, 20);  // x / (1-p)
}

TEST(Transforms, RejectsOversizedX) {
  const auto g = make_star(4);
  RadioNetwork net(g, FaultModel::faultless(), Rng(52));
  StarBaseSchedule base(2);
  TransformParams params;
  params.x = 65;
  Rng rng(53);
  EXPECT_THROW(run_routing_transform(net, base, params, rng),
               ContractViolation);
}

}  // namespace
}  // namespace nrn::core

// Decay: completion on assorted topologies, robustness under both fault
// models (Lemmas 6 and 9), and scaling sanity.
#include "core/decay.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace nrn::core {
namespace {

using graph::make_complete;
using graph::make_connected_gnp;
using graph::make_grid;
using graph::make_path;
using graph::make_star;
using radio::FaultModel;
using radio::RadioNetwork;

BroadcastRunResult run_once(const graph::Graph& g, FaultModel fm,
                            std::uint64_t seed, DecayParams params = {}) {
  RadioNetwork net(g, fm, Rng(seed));
  Rng rng(seed ^ 0xabcdef);
  return Decay(params).run(net, 0, rng);
}

TEST(Decay, CompletesOnPathFaultless) {
  const auto g = make_path(64);
  const auto r = run_once(g, FaultModel::faultless(), 1);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.informed, 64);
}

TEST(Decay, CompletesOnStarFaultless) {
  const auto g = make_star(100);
  const auto r = run_once(g, FaultModel::faultless(), 2);
  EXPECT_TRUE(r.completed);
  // The hub reaches every leaf the first time it broadcasts alone; this
  // happens in round 0 (probability 1 at sub-round 0).
  EXPECT_LE(r.rounds, 16);
}

TEST(Decay, CompletesOnCompleteGraph) {
  const auto g = make_complete(40);
  const auto r = run_once(g, FaultModel::faultless(), 3);
  EXPECT_TRUE(r.completed);
}

TEST(Decay, CompletesOnGridWithReceiverFaults) {
  const auto g = make_grid(10, 10);
  const auto r = run_once(g, FaultModel::receiver(0.3), 4);
  EXPECT_TRUE(r.completed);
}

TEST(Decay, CompletesOnGnpWithSenderFaults) {
  Rng grng(5);
  const auto g = make_connected_gnp(100, 0.08, grng);
  const auto r = run_once(g, FaultModel::sender(0.3), 5);
  EXPECT_TRUE(r.completed);
}

TEST(Decay, HighFaultRateStillCompletes) {
  const auto g = make_path(32);
  for (const auto fm : {FaultModel::receiver(0.8), FaultModel::sender(0.8)}) {
    const auto r = run_once(g, fm, 6);
    EXPECT_TRUE(r.completed) << to_string(fm);
  }
}

TEST(Decay, RoundsGrowRoughlyLinearlyInDiameter) {
  // Lemma 9: O(log n / (1-p) * (D + log n)); on a path D dominates.
  std::vector<double> lengths, rounds;
  for (const std::int32_t n : {32, 64, 128, 256}) {
    const auto g = make_path(n);
    double total = 0;
    for (std::uint64_t s = 0; s < 5; ++s)
      total += static_cast<double>(
          run_once(g, FaultModel::receiver(0.5), 10 + s).rounds);
    lengths.push_back(n);
    rounds.push_back(total / 5);
  }
  const auto fit = fit_power_law(lengths, rounds);
  EXPECT_GT(fit.slope, 0.75);  // near-linear in D
  EXPECT_LT(fit.slope, 1.35);
}

TEST(Decay, FaultsSlowItDown) {
  const auto g = make_path(96);
  double clean = 0, noisy = 0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    clean += static_cast<double>(
        run_once(g, FaultModel::faultless(), 20 + s).rounds);
    noisy += static_cast<double>(
        run_once(g, FaultModel::receiver(0.6), 20 + s).rounds);
  }
  EXPECT_GT(noisy, clean * 1.3);
}

TEST(Decay, BudgetIsRespected) {
  const auto g = make_path(128);
  DecayParams params;
  params.max_rounds = 10;  // absurdly small
  const auto r = run_once(g, FaultModel::faultless(), 7, params);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.rounds, 10);
  EXPECT_LT(r.informed, 128);
}

TEST(Decay, SingleNodeGraphTrivial) {
  const auto g = graph::make_path(1);
  const auto r = run_once(g, FaultModel::faultless(), 8);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.rounds, 0);
}

TEST(Decay, TraceMonotoneInformed) {
  const auto g = make_grid(6, 6);
  RadioNetwork net(g, FaultModel::receiver(0.2), Rng(9));
  Rng rng(10);
  radio::TraceRecorder trace;
  const auto r = Decay().run(net, 0, rng, &trace);
  EXPECT_TRUE(r.completed);
  ASSERT_EQ(static_cast<std::int64_t>(trace.round_count()), r.rounds);
  for (std::size_t i = 1; i < trace.progress().size(); ++i)
    EXPECT_GE(trace.progress()[i], trace.progress()[i - 1]);
  EXPECT_DOUBLE_EQ(trace.progress().back(), 36.0);
}

TEST(Decay, DefaultPhaseLength) {
  EXPECT_EQ(Decay::default_phase_length(1), 2);   // bits=1 -> 2
  EXPECT_EQ(Decay::default_phase_length(2), 2);
  EXPECT_EQ(Decay::default_phase_length(1024), 11);
  EXPECT_EQ(Decay::default_phase_length(1025), 12);
}

TEST(Decay, DeterministicGivenSeeds) {
  const auto g = make_grid(8, 8);
  const auto a = run_once(g, FaultModel::receiver(0.4), 42);
  const auto b = run_once(g, FaultModel::receiver(0.4), 42);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(Decay, SourceArgumentValidated) {
  const auto g = make_path(4);
  RadioNetwork net(g, FaultModel::faultless(), Rng(1));
  Rng rng(1);
  EXPECT_THROW(Decay().run(net, 99, rng), ContractViolation);
}

}  // namespace
}  // namespace nrn::core

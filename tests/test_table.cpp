#include "common/table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/contracts.hpp"

namespace nrn {
namespace {

TEST(Table, PrintsTitleNotesAndRows) {
  TableWriter t("demo table", {"a", "bb", "ccc"});
  t.add_note("seed: 42");
  t.add_row({"1", "2", "3"});
  t.add_row({"10", "20", "30"});
  std::ostringstream os;
  t.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("demo table"), std::string::npos);
  EXPECT_NE(text.find("seed: 42"), std::string::npos);
  EXPECT_NE(text.find("ccc"), std::string::npos);
  EXPECT_NE(text.find("30"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvEscapesNothingButIsWellFormed) {
  TableWriter t("x", {"k", "v"});
  t.add_note("note");
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "# note\nk,v\n1,2\n");
}

TEST(Table, RowWidthMismatchThrows) {
  TableWriter t("x", {"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), ContractViolation);
}

TEST(Table, EmptyColumnsThrow) {
  EXPECT_THROW(TableWriter("x", {}), ContractViolation);
}

TEST(Table, FmtDouble) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt(std::nan(""), 3), "nan");
}

TEST(Table, FmtIntegers) {
  EXPECT_EQ(fmt(static_cast<std::int64_t>(-7)), "-7");
  EXPECT_EQ(fmt(static_cast<std::uint64_t>(7)), "7");
  EXPECT_EQ(fmt(42), "42");
  EXPECT_EQ(fmt(static_cast<std::size_t>(9)), "9");
}

TEST(Table, Verdict) {
  EXPECT_EQ(verdict(true), "yes");
  EXPECT_EQ(verdict(false), "NO");
}

}  // namespace
}  // namespace nrn

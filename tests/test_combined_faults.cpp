// The combined fault model (extension; the paper's open problem asks for
// algorithms robust to sender AND receiver faults simultaneously).  Every
// algorithm in the library must keep completing under it.
#include <gtest/gtest.h>

#include "core/decay.hpp"
#include "core/fastbc.hpp"
#include "core/multi_message.hpp"
#include "core/robust_fastbc.hpp"
#include "core/single_link.hpp"
#include "core/star_schedules.hpp"
#include "graph/generators.hpp"

namespace nrn::core {
namespace {

using radio::FaultModel;
using radio::RadioNetwork;

const FaultModel kCombined = FaultModel::combined(0.3, 0.3);

TEST(CombinedFaults, DecayCompletes) {
  const auto g = graph::make_path(96);
  RadioNetwork net(g, kCombined, Rng(1));
  Rng rng(2);
  EXPECT_TRUE(Decay().run(net, 0, rng).completed);
}

TEST(CombinedFaults, DecayOnGridAndGnp) {
  Rng grng(3);
  for (const auto& g : {graph::make_grid(9, 9),
                        graph::make_connected_gnp(100, 0.08, grng)}) {
    RadioNetwork net(g, kCombined, Rng(4));
    Rng rng(5);
    EXPECT_TRUE(Decay().run(net, 0, rng).completed);
  }
}

TEST(CombinedFaults, FastbcCompletes) {
  const auto g = graph::make_path(96);
  Fastbc algo(g, 0);
  RadioNetwork net(g, kCombined, Rng(6));
  Rng rng(7);
  EXPECT_TRUE(algo.run(net, rng).completed);
}

TEST(CombinedFaults, RobustFastbcCompletes) {
  const auto g = graph::make_path(128);
  RobustFastbcParams params;
  params.window_multiplier =
      RobustFastbc::recommended_window_multiplier(kCombined.effective_loss());
  RobustFastbc algo(g, 0, params);
  RadioNetwork net(g, kCombined, Rng(8));
  Rng rng(9);
  EXPECT_TRUE(algo.run(net, rng).completed);
}

TEST(CombinedFaults, RlncDecayPatternCompletes) {
  const auto g = graph::make_path(24);
  MultiMessageParams params;
  params.k = 8;
  RlncBroadcast algo(g, 0, params);
  RadioNetwork net(g, kCombined, Rng(10));
  Rng rng(11);
  EXPECT_TRUE(algo.run(net, rng).completed);
}

TEST(CombinedFaults, RlncRobustPatternCompletesWithPayloads) {
  const auto g = graph::make_path(24);
  MultiMessageParams params;
  params.k = 4;
  params.block_len = 3;
  params.pattern = MultiPattern::kRobustFastbc;
  RlncBroadcast algo(g, 0, params);
  RadioNetwork net(g, kCombined, Rng(12));
  Rng rng(13);
  std::vector<std::vector<std::uint8_t>> msgs(4, std::vector<std::uint8_t>(3));
  Rng payload_rng(14);
  for (auto& m : msgs)
    for (auto& s : m) s = static_cast<std::uint8_t>(payload_rng.next_below(256));
  EXPECT_TRUE(algo.run_and_verify(net, rng, msgs).completed);
}

TEST(CombinedFaults, StarCodingSizedByEffectiveLoss) {
  const auto star = topology::make_star(256);
  RadioNetwork net(star.graph, kCombined, Rng(15));
  const std::int64_t k = 64;
  const auto m = rs_packet_count(k, 257, kCombined.effective_loss());
  EXPECT_TRUE(run_star_rs_coding(net, star, k, m).completed);
}

TEST(CombinedFaults, LinkAdaptiveRpmMatchesEffectiveLoss) {
  const auto g = graph::make_single_link();
  RadioNetwork net(g, kCombined, Rng(16));
  const std::int64_t k = 2048;
  const auto r = run_link_adaptive_routing(net, k, 100 * k);
  ASSERT_TRUE(r.completed);
  EXPECT_NEAR(r.rounds_per_message(),
              1.0 / (1.0 - kCombined.effective_loss()), 0.25);
}

TEST(CombinedFaults, DegeneratesToSingleModels) {
  // combined(p, 0) must behave like sender(p): all-or-nothing on a star.
  const auto g = graph::make_star(10);
  RadioNetwork net(g, FaultModel::combined(0.5, 0.0), Rng(17));
  int partial = 0;
  for (int r = 0; r < 1000; ++r) {
    net.set_broadcast(0, radio::Packet{r});
    const auto got = net.run_round().size();
    if (got != 0u && got != 10u) ++partial;
  }
  EXPECT_EQ(partial, 0);
}

}  // namespace
}  // namespace nrn::core

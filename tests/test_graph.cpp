#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace nrn::graph {
namespace {

TEST(Graph, EmptyEdgeList) {
  Graph g(3, {});
  EXPECT_EQ(g.node_count(), 3);
  EXPECT_EQ(g.edge_count(), 0);
  EXPECT_EQ(g.degree(0), 0);
}

TEST(Graph, TriangleAdjacency) {
  Graph g(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.edge_count(), 3);
  for (NodeId u = 0; u < 3; ++u) EXPECT_EQ(g.degree(u), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 0));
}

TEST(Graph, NeighborsAreSorted) {
  Graph g(5, {{4, 0}, {2, 0}, {0, 1}, {0, 3}});
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(Graph, RejectsSelfLoop) {
  EXPECT_THROW(Graph(2, {{1, 1}}), ContractViolation);
}

TEST(Graph, RejectsParallelEdges) {
  EXPECT_THROW(Graph(2, {{0, 1}, {1, 0}}), ContractViolation);
}

TEST(Graph, RejectsOutOfRange) {
  EXPECT_THROW(Graph(2, {{0, 2}}), ContractViolation);
  EXPECT_THROW(Graph(2, {{-1, 0}}), ContractViolation);
}

TEST(Graph, HasEdgeNegativeCases) {
  Graph g(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 3));
}

TEST(Graph, MaxDegree) {
  Graph g(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_EQ(g.max_degree(), 3);
}

TEST(GraphBuilder, DeduplicatesEdges) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // duplicate in the other orientation
  b.add_edge(1, 2);
  const Graph g = b.build();
  EXPECT_EQ(g.edge_count(), 2);
}

TEST(GraphBuilder, RejectsSelfLoop) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 0), ContractViolation);
}

TEST(GraphBuilder, RejectsBadNodeCount) {
  EXPECT_THROW(GraphBuilder(0), ContractViolation);
}

TEST(Graph, NeighborsOutOfRangeThrows) {
  Graph g(2, {{0, 1}});
  EXPECT_THROW(g.neighbors(2), ContractViolation);
  EXPECT_THROW(g.neighbors(-1), ContractViolation);
}

}  // namespace
}  // namespace nrn::graph

// The per-round observability layer: traced outcomes carry metric series,
// series survive the v4 record/shard/cache formats bit-exactly, tracing is
// zero-cost (bit-identical outcomes) when off, traced sweeps are identical
// across serial and fleet execution, and the report-layer cross-cell
// regression (sweep_fits) reproduces a direct log-linear fit exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "sim_test_util.hpp"

namespace nrn::sim {
namespace {

namespace fs = std::filesystem;

using testutil::shard_bytes;
using testutil::sweep_csv_of;
using testutil::sweep_json_of;

ExperimentReport run_decay(bool trace, const std::string& topology = "path:12",
                           int trials = 3) {
  const auto scenario = Scenario::parse(topology, "receiver:0.25",
                                        /*source=*/0, /*k=*/1, /*seed=*/7);
  DriverOptions options;
  options.trace = trace;
  return Driver().run(scenario, "decay", trials, options);
}

SweepReport run_plan(const std::string& plan_text,
                     const SweepOptions& options = {}) {
  const auto plan = SweepPlan::parse(plan_text);
  return SweepRunner(extended_registry()).run(plan, options);
}

std::string scratch_dir(const std::string& leaf) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("nrn_" + leaf);
  fs::remove_all(dir);
  return dir.string();
}

TEST(TraceSeries, TracedDecayRecordsPerRoundSeries) {
  const auto report = run_decay(/*trace=*/true);
  ASSERT_TRUE((report.capabilities & kTraced) != 0u);
  EXPECT_TRUE(report.has_series());
  EXPECT_EQ(report.series_keys(),
            (std::vector<std::string>{"broadcasters", "collisions",
                                      "deliveries", "informed"}));
  for (const auto& trial : report.trials) {
    const auto* informed = trial.run.find_series("informed");
    ASSERT_NE(informed, nullptr);
    // One sample per round, ending with every node informed.
    EXPECT_EQ(static_cast<std::int64_t>(informed->size()),
              trial.run.rounds());
    ASSERT_FALSE(informed->empty());
    EXPECT_EQ(informed->back().as_int(), report.node_count);
    // Informed counts are non-decreasing (broadcast never un-informs).
    for (std::size_t i = 1; i < informed->size(); ++i)
      EXPECT_LE((*informed)[i - 1].as_int(), (*informed)[i].as_int());
    ASSERT_NE(trial.run.find_series("deliveries"), nullptr);
    EXPECT_EQ(trial.run.find_series("deliveries")->size(), informed->size());
  }
}

TEST(TraceSeries, TracingIsZeroCostWhenOff) {
  const auto traced = run_decay(/*trace=*/true);
  const auto plain = run_decay(/*trace=*/false);
  EXPECT_FALSE(plain.has_series());
  // Same trials, same outcomes -- the recorder observes, never perturbs.
  ASSERT_EQ(traced.trials.size(), plain.trials.size());
  for (std::size_t i = 0; i < traced.trials.size(); ++i) {
    Outcome stripped = traced.trials[i].run;
    stripped.series.clear();
    EXPECT_EQ(stripped, plain.trials[i].run);
  }
}

TEST(TraceSeries, UntracedProtocolIgnoresTraceRequest) {
  // greedy has no kTraced capability: a trace request is a no-op, not an
  // error, so mixed-protocol traced sweeps work.
  const auto scenario =
      Scenario::parse("star:8", "none", /*source=*/0, /*k=*/1, /*seed=*/3);
  DriverOptions options;
  options.trace = true;
  const auto report = Driver().run(scenario, "greedy", 2, options);
  EXPECT_FALSE(report.has_series());
}

TEST(TraceSeries, SeriesSurviveShardRoundTrip) {
  const auto report =
      run_plan("topology=path:10; fault=receiver:0.25; protocols=decay; "
               "trials=2; seed=11; trace=1");
  ASSERT_TRUE(report.cells.at(0).experiment.has_series());
  const auto bytes = shard_bytes(report);
  EXPECT_NE(bytes.find("nrn-sweep-shard v6"), std::string::npos);
  EXPECT_NE(bytes.find("series informed "), std::string::npos);
  std::istringstream in(bytes);
  const auto parsed = read_shard_file(in);
  EXPECT_EQ(parsed, report);
  EXPECT_EQ(shard_bytes(parsed), bytes);
}

TEST(TraceSeries, TracedAndUntracedCellsUseDistinctCacheKeys) {
  const auto traced = SweepPlan::parse(
      "topology=path:8; protocols=decay; trials=2; seed=1; trace=1");
  const auto plain =
      SweepPlan::parse("topology=path:8; protocols=decay; trials=2; seed=1");
  ASSERT_EQ(traced.cells.size(), 1u);
  ASSERT_EQ(plain.cells.size(), 1u);
  // Same scenario, different key: a warm untraced cache can never satisfy
  // a traced sweep with series-less results (or vice versa).
  EXPECT_EQ(traced.cells[0].scenario, plain.cells[0].scenario);
  EXPECT_NE(traced.cells[0].key(), plain.cells[0].key());
  EXPECT_NE(sweep_cache_key(traced.cells[0], {}),
            sweep_cache_key(plain.cells[0], {}));
  // Untraced keys are unchanged from the pre-trace format, so existing
  // cache directories stay warm.
  EXPECT_EQ(plain.cells[0].key().find("trace"), std::string::npos);
}

TEST(TraceSeries, TracedSweepIdenticalAcrossSerialCacheAndFleet) {
  const char kPlan[] =
      "topology=path:{8,12},star:6; fault=receiver:0.25; "
      "protocols=decay,greedy; trials=2; seed=9; trace=1";
  const auto serial = run_plan(kPlan);

  SweepOptions cached;
  cached.cache_dir = scratch_dir("trace_cache");
  const auto cold = run_plan(kPlan, cached);
  const auto warm = run_plan(kPlan, cached);
  EXPECT_EQ(cold, serial);
  ASSERT_EQ(warm.cells.size(), serial.cells.size());
  for (std::size_t i = 0; i < warm.cells.size(); ++i) {
    EXPECT_TRUE(warm.cells[i].from_cache);
    EXPECT_EQ(warm.cells[i].experiment, serial.cells[i].experiment);
  }

  SweepOptions fleet;
  fleet.cache_dir = scratch_dir("trace_fleet");
  fleet.assignment = SweepAssignment::kFleet;
  const auto fleet_report = run_plan(kPlan, fleet);
  EXPECT_EQ(fleet_report, serial);
  EXPECT_EQ(shard_bytes(fleet_report), shard_bytes(serial));
  // Emitters differ only by the fleet-provenance comment/field; the data
  // (including every series row and fit) is byte-identical.
  auto strip_fleet = [](const std::string& text) {
    std::string out;
    std::istringstream lines(text);
    for (std::string line; std::getline(lines, line);)
      if (line.rfind("# fleet:", 0) != 0 &&
          line.find("\"fleet\": {") == std::string::npos)
        out += line + "\n";
    return out;
  };
  EXPECT_EQ(strip_fleet(sweep_csv_of(fleet_report)), sweep_csv_of(serial));
  EXPECT_EQ(strip_fleet(sweep_json_of(fleet_report)), sweep_json_of(serial));
}

TEST(TraceSeries, EmittersGateEverySeriesBlockOnPresence) {
  const char kTraced[] =
      "topology=path:10; fault=receiver:0.25; protocols=decay; trials=2; "
      "seed=4; trace=1";
  const char kPlain[] =
      "topology=path:10; fault=receiver:0.25; protocols=decay; trials=2; "
      "seed=4";
  const auto traced = run_plan(kTraced);
  const auto plain = run_plan(kPlain);

  std::ostringstream table;
  write_sweep_table(table, traced);
  EXPECT_NE(table.str().find("median r90"), std::string::npos);
  const auto csv = sweep_csv_of(traced);
  EXPECT_NE(csv.find(",median_r90"), std::string::npos);
  EXPECT_NE(csv.find("# series long format: cell,trial,round,metric,value"),
            std::string::npos);
  EXPECT_NE(csv.find("informed"), std::string::npos);
  EXPECT_NE(sweep_json_of(traced).find("\"series\""), std::string::npos);

  // The experiment-level emitters carry the same blocks...
  const auto& exp = traced.cells.at(0).experiment;
  EXPECT_NE(testutil::table_of(exp).find("r90"), std::string::npos);
  EXPECT_NE(testutil::csv_of(exp).find("# series long format"),
            std::string::npos);
  EXPECT_NE(testutil::json_of(exp).find("\"series\""), std::string::npos);

  // ... and none of it leaks into untraced reports (byte-compatible with
  // pre-v4 emitter output).
  std::ostringstream plain_table;
  write_sweep_table(plain_table, plain);
  EXPECT_EQ(plain_table.str().find("r90"), std::string::npos);
  const auto plain_csv = sweep_csv_of(plain);
  EXPECT_EQ(plain_csv.find("median_r90"), std::string::npos);
  EXPECT_EQ(plain_csv.find("# series"), std::string::npos);
  EXPECT_EQ(sweep_json_of(plain).find("\"series\""), std::string::npos);
}

TEST(TraceSeries, ConvergenceColumnsMatchTheInformedSeries) {
  const auto report = run_decay(/*trace=*/true, "path:12", /*trials=*/1);
  const auto& run = report.trials.at(0).run;
  const auto* informed = run.find_series("informed");
  ASSERT_NE(informed, nullptr);
  // Recompute r90 by hand and find it in the experiment table row.
  const double target = 0.9 * static_cast<double>(report.node_count);
  std::int64_t r90 = -1;
  for (std::size_t i = 0; i < informed->size(); ++i)
    if ((*informed)[i].as_real() >= target) {
      r90 = static_cast<std::int64_t>(i) + 1;
      break;
    }
  ASSERT_GT(r90, 0);
  EXPECT_NE(testutil::table_of(report).find(std::to_string(r90)),
            std::string::npos);
}

TEST(SweepFits, ReproducesDirectLogLinearFit) {
  // Four star sizes, one protocol: the report-layer regression must equal
  // fit_log_linear on (node counts, per-cell medians) to full precision --
  // the e7 acceptance bar is 1e-9.
  const auto report =
      run_plan("topology=star:{16,32,64,128}; fault=receiver:0.25; "
               "protocols=decay; trials=3; seed=13");
  const auto fits = sweep_fits(report);
  ASSERT_EQ(fits.size(), 2u);  // median_rounds and median_rpm for one group

  std::vector<double> xs, rounds, rpm;
  for (const auto& cell : report.cells) {
    const auto& exp = cell.experiment;
    xs.push_back(static_cast<double>(exp.node_count));
    rounds.push_back(exp.median_rounds());
    std::vector<double> trial_rpm;
    for (const auto& trial : exp.trials)
      trial_rpm.push_back(trial.run.rounds_per_message());
    rpm.push_back(quantile(trial_rpm, 0.5));
  }
  const auto direct_rounds = fit_log_linear(xs, rounds);
  const auto direct_rpm = fit_log_linear(xs, rpm);

  ASSERT_EQ(fits[0].metric, "median_rounds");
  EXPECT_EQ(fits[0].protocol, "decay");
  EXPECT_EQ(fits[0].fault, "receiver:0.25");
  EXPECT_EQ(fits[0].k, 1);
  EXPECT_EQ(fits[0].cells, 4);
  EXPECT_NEAR(fits[0].fit.slope, direct_rounds.slope, 1e-9);
  EXPECT_NEAR(fits[0].fit.intercept, direct_rounds.intercept, 1e-9);
  EXPECT_NEAR(fits[0].fit.r2, direct_rounds.r2, 1e-9);
  ASSERT_EQ(fits[1].metric, "median_rpm");
  EXPECT_NEAR(fits[1].fit.slope, direct_rpm.slope, 1e-9);
  EXPECT_NEAR(fits[1].fit.intercept, direct_rpm.intercept, 1e-9);

  // The CSV carries the coefficients at max_digits10, so a downstream
  // reader recovers them exactly; the JSON and table carry the same fit.
  const auto csv = sweep_csv_of(report);
  EXPECT_NE(csv.find("# fit: protocol=decay,fault=receiver:0.25,k=1,"
                     "metric=median_rounds,axis=nodes,model=log2,cells=4,"),
            std::string::npos);
  EXPECT_NE(sweep_json_of(report).find("\"fits\": ["), std::string::npos);
  std::ostringstream table;
  write_sweep_table(table, report);
  EXPECT_NE(table.str().find("fit decay | receiver:0.25 | k=1:"),
            std::string::npos);
}

TEST(SweepFits, NeedsThreeDistinctNodeCountsAndStaysOutOfSmallSweeps) {
  const auto two_sizes = run_plan(
      "topology=path:{8,16}; protocols=decay; trials=2; seed=2");
  EXPECT_TRUE(sweep_fits(two_sizes).empty());
  EXPECT_EQ(sweep_csv_of(two_sizes).find("# fit:"), std::string::npos);
  EXPECT_EQ(sweep_json_of(two_sizes).find("\"fits\""), std::string::npos);

  // Three distinct sizes unlock fits; groups are per (protocol, fault, k).
  const auto three = run_plan(
      "topology=path:{8,16,32}; protocols=decay,greedy; trials=2; seed=2");
  const auto fits = sweep_fits(three);
  ASSERT_EQ(fits.size(), 4u);  // 2 protocols x 2 metrics
  EXPECT_EQ(fits[0].protocol, "decay");
  EXPECT_EQ(fits[2].protocol, "greedy");
}

}  // namespace
}  // namespace nrn::sim

// FASTBC: diameter-linear behaviour in the faultless model (Lemma 8) and
// its degradation under faults (Lemma 10).
#include "core/fastbc.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "core/decay.hpp"
#include "graph/generators.hpp"

namespace nrn::core {
namespace {

using graph::make_caterpillar;
using graph::make_connected_gnp;
using graph::make_grid;
using graph::make_path;
using radio::FaultModel;
using radio::RadioNetwork;

BroadcastRunResult run_once(const graph::Graph& g, FaultModel fm,
                            std::uint64_t seed, FastbcParams params = {}) {
  Fastbc algo(g, 0, params);
  RadioNetwork net(g, fm, Rng(seed));
  Rng rng(seed ^ 0x5555);
  return algo.run(net, rng);
}

TEST(Fastbc, CompletesOnPathFaultless) {
  const auto g = make_path(128);
  const auto r = run_once(g, FaultModel::faultless(), 1);
  EXPECT_TRUE(r.completed);
}

TEST(Fastbc, FaultlessPathIsNearDiameterLinear) {
  // On a path every node is fast (one stretch); after the initial wave
  // alignment of <= 2 * 6 * rmax rounds the message advances one level per
  // fast round: ~2D + O(log n) rounds total (Lemma 8 with D dominant).
  const auto g = make_path(512);
  const auto r = run_once(g, FaultModel::faultless(), 2);
  EXPECT_TRUE(r.completed);
  EXPECT_LT(r.rounds, 2 * 512 + 40 * 12);
}

TEST(Fastbc, GbstIsValidOnExperimentFamilies) {
  Rng grng(3);
  for (const auto& g :
       {make_path(100), make_grid(10, 10), make_caterpillar(25, 3),
        make_connected_gnp(100, 0.07, grng)}) {
    Fastbc algo(g, 0);
    EXPECT_EQ(algo.tree_stats().violations_remaining, 0);
  }
}

TEST(Fastbc, CompletesOnGridFaultless) {
  const auto g = make_grid(12, 12);
  const auto r = run_once(g, FaultModel::faultless(), 4);
  EXPECT_TRUE(r.completed);
}

TEST(Fastbc, CompletesWithReceiverFaults) {
  const auto g = make_path(64);
  const auto r = run_once(g, FaultModel::receiver(0.5), 5);
  EXPECT_TRUE(r.completed);
}

TEST(Fastbc, CompletesWithSenderFaults) {
  const auto g = make_grid(8, 8);
  const auto r = run_once(g, FaultModel::sender(0.5), 6);
  EXPECT_TRUE(r.completed);
}

TEST(Fastbc, Lemma10DegradationOnPath) {
  // With faults the wave drops a message with probability p per hop and
  // waits Theta(rank_modulus) fast rounds; expected rounds per hop jump
  // from ~2 to ~2 + p/(1-p) * 12 * rank_modulus / 2.  Compare p = 0 with
  // p = 0.5 on a fixed path: the ratio must be large (Lemma 10).
  const auto g = make_path(256);
  double clean = 0, noisy = 0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    clean += static_cast<double>(
        run_once(g, FaultModel::faultless(), 30 + s).rounds);
    noisy += static_cast<double>(
        run_once(g, FaultModel::receiver(0.5), 30 + s).rounds);
  }
  EXPECT_GT(noisy / clean, 4.0);
}

TEST(Fastbc, NoisyPathScalesWithRankModulus) {
  // Lemma 10's waiting time is proportional to the schedule period; a
  // larger rank_modulus slows the noisy path.  The growth saturates once
  // the wave-wait exceeds the Decay slow rounds' rescue time (both are
  // Theta(log n)), so the measured factor is material but bounded.
  const auto g = make_path(128);
  FastbcParams small_mod, large_mod;
  small_mod.rank_modulus = 2;
  large_mod.rank_modulus = 16;
  double small_rounds = 0, large_rounds = 0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    small_rounds += static_cast<double>(
        run_once(g, FaultModel::receiver(0.5), 40 + s, small_mod).rounds);
    large_rounds += static_cast<double>(
        run_once(g, FaultModel::receiver(0.5), 40 + s, large_mod).rounds);
  }
  EXPECT_GT(large_rounds, 1.25 * small_rounds);
}

TEST(Fastbc, RankModulusBelowMaxRankRejected) {
  const auto g = make_grid(8, 8);  // max rank >= 2
  FastbcParams params;
  params.rank_modulus = 1;
  EXPECT_THROW(Fastbc(g, 0, params), ContractViolation);
}

TEST(Fastbc, BudgetRespected) {
  const auto g = make_path(128);
  FastbcParams params;
  params.max_rounds = 8;
  const auto r = run_once(g, FaultModel::faultless(), 7, params);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.rounds, 8);
}

TEST(Fastbc, WrongNetworkGraphRejected) {
  const auto g1 = make_path(8);
  const auto g2 = make_path(8);
  Fastbc algo(g1, 0);
  RadioNetwork net(g2, FaultModel::faultless(), Rng(1));
  Rng rng(1);
  EXPECT_THROW(algo.run(net, rng), ContractViolation);
}

TEST(Fastbc, DeterministicGivenSeeds) {
  const auto g = make_grid(9, 9);
  const auto a = run_once(g, FaultModel::sender(0.3), 77);
  const auto b = run_once(g, FaultModel::sender(0.3), 77);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(Fastbc, BeatsDecayOnLongFaultlessPath) {
  // The whole point of FASTBC: D + polylog instead of D log n.
  const auto g = make_path(512);
  double fastbc_rounds = 0, decay_rounds = 0;
  for (std::uint64_t s = 0; s < 3; ++s) {
    fastbc_rounds += static_cast<double>(
        run_once(g, FaultModel::faultless(), 50 + s).rounds);
    RadioNetwork net(g, FaultModel::faultless(), Rng(60 + s));
    Rng rng(61 + s);
    decay_rounds += static_cast<double>(Decay().run(net, 0, rng).rounds);
  }
  EXPECT_LT(fastbc_rounds, decay_rounds);
}

}  // namespace
}  // namespace nrn::core

// Oracle tests: the optimized epoch-counter round engine against a
// brute-force reference implementation of the model's reception rule.
//
// The reference resolver recomputes, from scratch each round, the set of
// deliveries of the *faultless* rule (faults are sampled noise on top and
// are checked statistically in test_faults.cpp; here the combinatorial core
// must match exactly on random broadcast patterns over random graphs).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.hpp"
#include "radio/network.hpp"

namespace nrn::radio {
namespace {

using graph::Graph;
using graph::NodeId;

/// Brute-force: for every node, scan all neighbors, count broadcasters.
std::set<std::pair<NodeId, NodeId>> reference_deliveries(
    const Graph& g, const std::vector<std::pair<NodeId, PacketId>>& plan) {
  std::vector<char> broadcasting(static_cast<std::size_t>(g.node_count()), 0);
  for (const auto& [u, id] : plan) {
    (void)id;
    broadcasting[static_cast<std::size_t>(u)] = 1;
  }
  std::set<std::pair<NodeId, NodeId>> out;  // (receiver, sender)
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (broadcasting[static_cast<std::size_t>(v)]) continue;
    NodeId tx_neighbor = -1;
    int count = 0;
    for (const NodeId w : g.neighbors(v)) {
      if (broadcasting[static_cast<std::size_t>(w)]) {
        ++count;
        tx_neighbor = w;
      }
    }
    if (count == 1) out.insert({v, tx_neighbor});
  }
  return out;
}

class EngineOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineOracle, RandomPlansOnRandomGraphs) {
  Rng rng(GetParam());
  for (int instance = 0; instance < 10; ++instance) {
    const auto n = static_cast<NodeId>(8 + rng.next_below(56));
    const double edge_p = 0.02 + rng.uniform01() * 0.3;
    const Graph g = graph::make_connected_gnp(n, edge_p, rng);
    RadioNetwork net(g, FaultModel::faultless(), Rng(rng()));
    for (int round = 0; round < 30; ++round) {
      std::vector<std::pair<NodeId, PacketId>> plan;
      for (NodeId u = 0; u < n; ++u)
        if (rng.bernoulli(0.3)) plan.emplace_back(u, u);
      for (const auto& [u, id] : plan) net.set_broadcast(u, Packet{id});
      const auto& deliveries = net.run_round();

      std::set<std::pair<NodeId, NodeId>> got;
      for (const auto& d : deliveries) {
        EXPECT_EQ(d.packet.id, d.sender);  // payload id tags the sender
        got.insert({d.receiver, d.sender});
      }
      EXPECT_EQ(got, reference_deliveries(g, plan))
          << "instance " << instance << " round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineOracle,
                         ::testing::Values(101ULL, 202ULL, 303ULL, 404ULL,
                                           505ULL));

TEST(EngineOracle, StatsConsistentWithReference) {
  // collision_losses must equal the number of listening nodes with >= 2
  // broadcasting neighbors.
  Rng rng(99);
  const Graph g = graph::make_connected_gnp(40, 0.15, rng);
  RadioNetwork net(g, FaultModel::faultless(), Rng(1));
  for (int round = 0; round < 20; ++round) {
    std::vector<std::pair<NodeId, PacketId>> plan;
    for (NodeId u = 0; u < 40; ++u)
      if (rng.bernoulli(0.4)) plan.emplace_back(u, 0);
    std::vector<char> tx(40, 0);
    for (const auto& [u, id] : plan) {
      (void)id;
      tx[static_cast<std::size_t>(u)] = 1;
      net.set_broadcast(u, Packet{0});
    }
    net.run_round();
    std::int64_t expected_collisions = 0;
    for (NodeId v = 0; v < 40; ++v) {
      if (tx[static_cast<std::size_t>(v)]) continue;
      int count = 0;
      for (const NodeId w : g.neighbors(v))
        count += tx[static_cast<std::size_t>(w)];
      if (count >= 2) ++expected_collisions;
    }
    EXPECT_EQ(net.last_round().collision_losses, expected_collisions);
    EXPECT_EQ(net.last_round().broadcasters,
              static_cast<std::int64_t>(plan.size()));
  }
}

TEST(EngineOracle, CombinedModelLossRate) {
  // Extension model: sender coin ps and receiver coin pr compose to
  // effective loss 1 - (1-ps)(1-pr) on an uncontested link.
  const Graph g = graph::make_star(1);
  const double ps = 0.3, pr = 0.4;
  RadioNetwork net(g, FaultModel::combined(ps, pr), Rng(7));
  const int rounds = 40000;
  int received = 0;
  for (int r = 0; r < rounds; ++r) {
    net.set_broadcast(0, Packet{r});
    received += static_cast<int>(net.run_round().size());
  }
  EXPECT_NEAR(static_cast<double>(received) / rounds, (1 - ps) * (1 - pr),
              0.01);
}

TEST(EngineOracle, CombinedModelSenderCoinShared) {
  // In a round where the sender coin fires, no leaf receives; otherwise
  // each leaf independently survives the receiver coin.  So "all 12 leaves
  // lost" rounds occur with probability ps + (1-ps) pr^12 ~ ps.
  const Graph g = graph::make_star(12);
  const double ps = 0.5, pr = 0.2;
  RadioNetwork net(g, FaultModel::combined(ps, pr), Rng(8));
  const int rounds = 4000;
  int all_lost = 0, partial = 0;
  for (int r = 0; r < rounds; ++r) {
    net.set_broadcast(0, Packet{r});
    const auto got = net.run_round().size();
    if (got == 0u) ++all_lost;
    if (got != 0u && got != 12u) ++partial;
  }
  EXPECT_NEAR(static_cast<double>(all_lost) / rounds, ps, 0.04);
  EXPECT_GT(partial, rounds / 3);  // receiver coins do strike individually
}

TEST(EngineOracle, EffectiveLossHelper) {
  EXPECT_DOUBLE_EQ(FaultModel::faultless().effective_loss(), 0.0);
  EXPECT_DOUBLE_EQ(FaultModel::sender(0.25).effective_loss(), 0.25);
  EXPECT_DOUBLE_EQ(FaultModel::receiver(0.25).effective_loss(), 0.25);
  EXPECT_NEAR(FaultModel::combined(0.3, 0.4).effective_loss(),
              1.0 - 0.7 * 0.6, 1e-12);
  EXPECT_TRUE(FaultModel::combined(0.0, 0.0).is_faultless());
  EXPECT_FALSE(FaultModel::combined(0.0, 0.1).is_faultless());
}

}  // namespace
}  // namespace nrn::radio

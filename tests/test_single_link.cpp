// Single-link schedules (Appendix A, Lemmas 29-33).
#include "core/single_link.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace nrn::core {
namespace {

using radio::FaultModel;
using radio::RadioNetwork;

RadioNetwork make_net(FaultModel fm, std::uint64_t seed) {
  static const graph::Graph g = graph::make_single_link();
  return RadioNetwork(g, fm, Rng(seed));
}

TEST(SingleLink, NonAdaptiveSucceedsWithEnoughReps) {
  // Seed chosen to succeed under the v4 coin tape (the nonadaptive bound
  // is probabilistic, not certain, at these reps).
  auto net = make_net(FaultModel::receiver(0.5), 2);
  const std::int64_t k = 64;
  const auto reps = link_nonadaptive_reps(k, 0.5);
  const auto r = run_link_nonadaptive_routing(net, k, reps);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.rounds, k * reps);
}

TEST(SingleLink, NonAdaptiveUsuallyFailsWithOneRep) {
  int failures = 0;
  for (std::uint64_t s = 0; s < 20; ++s) {
    auto net = make_net(FaultModel::receiver(0.5), 100 + s);
    if (!run_link_nonadaptive_routing(net, 16, 1).completed) ++failures;
  }
  EXPECT_GT(failures, 15);  // each trial fails with prob 1 - 2^-16
}

TEST(SingleLink, NonAdaptiveRepsGrowLogarithmically) {
  const auto r16 = link_nonadaptive_reps(16, 0.5);
  const auto r256 = link_nonadaptive_reps(256, 0.5);
  const auto r65536 = link_nonadaptive_reps(65536, 0.5);
  EXPECT_GT(r256, r16);
  EXPECT_GT(r65536, r256);
  // Doubling the exponent roughly doubles the reps: log k scaling.
  EXPECT_NEAR(static_cast<double>(r65536) / r256, 2.0, 0.5);
}

TEST(SingleLink, AdaptiveIsConstantPerMessage) {
  auto net = make_net(FaultModel::receiver(0.5), 2);
  const std::int64_t k = 512;
  const auto r = run_link_adaptive_routing(net, k, 100 * k);
  EXPECT_TRUE(r.completed);
  // E[rounds/message] = 1/(1-p) = 2.
  EXPECT_NEAR(r.rounds_per_message(), 2.0, 0.5);
}

TEST(SingleLink, AdaptiveWorksWithSenderFaults) {
  auto net = make_net(FaultModel::sender(0.5), 3);
  const auto r = run_link_adaptive_routing(net, 256, 100000);
  EXPECT_TRUE(r.completed);
  EXPECT_NEAR(r.rounds_per_message(), 2.0, 0.5);
}

TEST(SingleLink, AdaptiveBudgetRespected) {
  auto net = make_net(FaultModel::receiver(0.5), 4);
  const auto r = run_link_adaptive_routing(net, 1000, 10);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.rounds, 10);
}

TEST(SingleLink, CodingIsConstantPerMessage) {
  auto net = make_net(FaultModel::receiver(0.5), 5);
  const std::int64_t k = 256;
  const auto m = link_rs_packet_count(k, 0.5);
  const auto r = run_link_rs_coding(net, k, m);
  EXPECT_TRUE(r.completed);
  EXPECT_LT(r.rounds_per_message(), 4.0);
}

TEST(SingleLink, CodingFailsWithExactlyKPackets) {
  int failures = 0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    auto net = make_net(FaultModel::receiver(0.5), 50 + s);
    if (!run_link_rs_coding(net, 64, 64).completed) ++failures;
  }
  EXPECT_EQ(failures, 10);  // needs every packet to survive: hopeless
}

TEST(SingleLink, NonAdaptiveGapShape) {
  // Lemma 31: rounds/message for non-adaptive routing grows with log k
  // while coding stays constant.
  auto net_r = make_net(FaultModel::receiver(0.5), 6);
  const std::int64_t k = 1024;
  const auto routing =
      run_link_nonadaptive_routing(net_r, k, link_nonadaptive_reps(k, 0.5));
  auto net_c = make_net(FaultModel::receiver(0.5), 7);
  const auto coding = run_link_rs_coding(net_c, k, link_rs_packet_count(k, 0.5));
  ASSERT_TRUE(routing.completed);
  ASSERT_TRUE(coding.completed);
  EXPECT_GT(routing.rounds_per_message() / coding.rounds_per_message(), 4.0);
}

TEST(SingleLink, AdaptiveClosesTheGap) {
  // Lemma 33: adaptive routing vs coding is Theta(1) on the link.
  auto net_r = make_net(FaultModel::receiver(0.5), 8);
  const std::int64_t k = 1024;
  const auto routing = run_link_adaptive_routing(net_r, k, 100 * k);
  auto net_c = make_net(FaultModel::receiver(0.5), 9);
  const auto coding = run_link_rs_coding(net_c, k, link_rs_packet_count(k, 0.5));
  ASSERT_TRUE(routing.completed);
  ASSERT_TRUE(coding.completed);
  const double gap =
      routing.rounds_per_message() / coding.rounds_per_message();
  EXPECT_LT(gap, 3.0);
  EXPECT_GT(gap, 0.3);
}

TEST(SingleLink, RequiresLinkTopology) {
  const auto g = graph::make_path(3);
  RadioNetwork net(g, FaultModel::faultless(), Rng(1));
  EXPECT_THROW(run_link_adaptive_routing(net, 4, 100), ContractViolation);
}

}  // namespace
}  // namespace nrn::core

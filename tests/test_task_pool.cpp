// The persistent TaskPool: full coverage of the batch contract (every
// index exactly once), slot discipline, nesting, exception propagation,
// and reuse across many batches -- plus the externally-fed Stream API the
// serve scheduler runs cells on (push/cancel/drain, error capture, and
// coexistence with batches on the same helpers).
#include "common/task_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace nrn::common {
namespace {

TEST(TaskPool, RunsEveryIndexExactlyOnce) {
  TaskPool pool(3);
  for (const int workers : {1, 2, 4, 8}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    pool.run(hits.size(), workers,
             [&](std::size_t i, int /*slot*/) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(TaskPool, SlotsAreInRangeAndExclusive) {
  TaskPool pool(4);
  std::mutex mutex;
  std::set<int> seen;
  pool.run(64, 8, [&](std::size_t /*i*/, int slot) {
    EXPECT_GE(slot, 0);
    EXPECT_LT(slot, pool.slot_count());
    const std::lock_guard<std::mutex> lock(mutex);
    seen.insert(slot);
  });
  EXPECT_FALSE(seen.empty());
  EXPECT_LE(static_cast<int>(seen.size()), pool.slot_count());
}

TEST(TaskPool, NestedRunsExecuteInline) {
  TaskPool pool(2);
  std::atomic<int> inner_total{0};
  pool.run(8, 4, [&](std::size_t /*i*/, int outer_slot) {
    pool.run(16, 4, [&](std::size_t /*j*/, int inner_slot) {
      EXPECT_EQ(inner_slot, outer_slot);  // inline on the caller's slot
      ++inner_total;
    });
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(TaskPool, FirstExceptionPropagatesAndPoolSurvives) {
  TaskPool pool(2);
  for (int repeat = 0; repeat < 3; ++repeat) {
    EXPECT_THROW(pool.run(100, 4,
                          [&](std::size_t i, int /*slot*/) {
                            if (i == 13) throw std::runtime_error("boom");
                          }),
                 std::runtime_error);
    // The pool keeps working after a failed batch.
    std::atomic<int> count{0};
    pool.run(50, 4, [&](std::size_t, int) { ++count; });
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(TaskPool, ZeroCountAndZeroHelpersDegradeGracefully) {
  TaskPool inline_pool(0);
  EXPECT_EQ(inline_pool.slot_count(), 1);
  std::atomic<int> count{0};
  inline_pool.run(0, 4, [&](std::size_t, int) { ++count; });
  EXPECT_EQ(count.load(), 0);
  inline_pool.run(10, 4, [&](std::size_t, int slot) {
    EXPECT_EQ(slot, 0);
    ++count;
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(TaskPool, SharedPoolIsReusableAcrossBatches) {
  auto& pool = TaskPool::shared();
  for (int batch = 0; batch < 20; ++batch) {
    std::atomic<std::int64_t> sum{0};
    pool.run(100, 4, [&](std::size_t i, int) {
      sum += static_cast<std::int64_t>(i);
    });
    EXPECT_EQ(sum.load(), 99 * 100 / 2);
  }
}

TEST(TaskPoolStream, RunsEveryPushedJob) {
  TaskPool pool(3);
  auto stream = pool.open_stream(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) stream->push([&](int) { ++count; });
  stream->drain();
  EXPECT_EQ(count.load(), 100);
  // The stream is reusable after a drain.
  for (int i = 0; i < 10; ++i) stream->push([&](int) { ++count; });
  stream->drain();
  EXPECT_EQ(count.load(), 110);
}

TEST(TaskPoolStream, CancelDropsQueuedJobsButNotTheRunningOne) {
  TaskPool pool(1);
  auto stream = pool.open_stream(1);  // at most one job at a time
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<int> ran{0};
  std::promise<void> started;
  stream->push([&](int) {
    started.set_value();
    gate.wait();
    ++ran;
  });
  started.get_future().wait();  // the blocker is executing
  for (int i = 0; i < 5; ++i) stream->push([&](int) { ++ran; });
  EXPECT_EQ(stream->cancel(), 5u);  // queued jobs dropped, blocker kept
  release.set_value();
  stream->drain();
  EXPECT_EQ(ran.load(), 1);
}

TEST(TaskPoolStream, FirstJobErrorRethrownOnDrainAndStreamSurvives) {
  TaskPool pool(2);
  auto stream = pool.open_stream(2);
  stream->push([](int) { throw std::runtime_error("stream boom"); });
  EXPECT_THROW(stream->drain(), std::runtime_error);
  std::atomic<int> count{0};
  stream->push([&](int) { ++count; });
  stream->drain();  // the error was consumed by the previous drain
  EXPECT_EQ(count.load(), 1);
}

TEST(TaskPoolStream, JobsMayNestBatchRunsInline) {
  // A stream job occupies a slot, so a pool.run() from inside it must
  // execute inline (this is the serve path: the scheduler's cell jobs run
  // the Driver, which batches trials over the same pool).
  TaskPool pool(2);
  auto stream = pool.open_stream(2);
  std::atomic<int> inner{0};
  for (int i = 0; i < 8; ++i)
    stream->push([&](int slot) {
      pool.run(16, 4, [&](std::size_t, int inner_slot) {
        EXPECT_EQ(inner_slot, slot);
        ++inner;
      });
    });
  stream->drain();
  EXPECT_EQ(inner.load(), 8 * 16);
}

TEST(TaskPoolStream, StreamsAndBatchesShareHelpers) {
  TaskPool pool(3);
  auto stream = pool.open_stream(2);
  std::atomic<int> stream_jobs{0};
  std::atomic<std::int64_t> batch_sum{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) stream->push([&](int) { ++stream_jobs; });
    pool.run(100, 4, [&](std::size_t i, int) {
      batch_sum += static_cast<std::int64_t>(i);
    });
    stream->drain();
  }
  EXPECT_EQ(stream_jobs.load(), 100);
  EXPECT_EQ(batch_sum.load(), 5 * (99 * 100 / 2));
}

TEST(TaskPoolStream, TwoStreamsProgressIndependently) {
  TaskPool pool(2);
  auto a = pool.open_stream(1);
  auto b = pool.open_stream(1);
  std::atomic<int> count_a{0}, count_b{0};
  for (int i = 0; i < 50; ++i) {
    a->push([&](int) { ++count_a; });
    b->push([&](int) { ++count_b; });
  }
  a->drain();
  b->drain();
  EXPECT_EQ(count_a.load(), 50);
  EXPECT_EQ(count_b.load(), 50);
}

TEST(TaskPoolStream, CancelRacingActiveSubmitNeitherDeadlocksNorLeaks) {
  // The serve daemon's shutdown path: clients keep submitting cells while
  // the scheduler cancels the stream.  Whatever interleaving happens,
  // every pushed job must be accounted for -- executed exactly once or
  // reported dropped by a cancel() -- and the final drain must return
  // (gtest's process-level timeout is the deadlock detector).  Run it a
  // few times so the cancels land at different queue depths; under TSan
  // this doubles as the push/cancel/drain race-safety stress.
  for (int round = 0; round < 4; ++round) {
    TaskPool pool(3);
    auto stream = pool.open_stream(2);
    constexpr int kPushers = 4;
    constexpr int kJobsPerPusher = 200;
    std::atomic<int> executed{0};
    std::atomic<std::size_t> dropped{0};
    std::atomic<bool> pushing{true};
    std::vector<std::thread> threads;
    threads.reserve(kPushers + 1);
    for (int p = 0; p < kPushers; ++p)
      threads.emplace_back([&] {
        for (int i = 0; i < kJobsPerPusher; ++i)
          stream->push([&](int) { ++executed; });
      });
    threads.emplace_back([&] {  // cancels while the pushers are mid-burst
      while (pushing.load()) dropped += stream->cancel();
    });
    for (int p = 0; p < kPushers; ++p) threads[static_cast<std::size_t>(p)].join();
    pushing = false;
    threads.back().join();
    stream->drain();  // must return: nothing queued may be stranded
    EXPECT_EQ(executed.load() + static_cast<int>(dropped.load()),
              kPushers * kJobsPerPusher)
        << "round " << round << ": a queued job was neither run nor dropped";
  }
}

TEST(TaskPoolStream, DestructorWaitsForTheRunningJob) {
  TaskPool pool(1);
  std::atomic<bool> finished{false};
  std::promise<void> started;
  {
    auto stream = pool.open_stream(1);
    stream->push([&](int) {
      started.set_value();
      finished = true;
    });
    started.get_future().wait();
    // ~Stream blocks until the in-flight job completes.
  }
  EXPECT_TRUE(finished.load());
}

}  // namespace
}  // namespace nrn::common

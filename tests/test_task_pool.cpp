// The persistent TaskPool: full coverage of the batch contract (every
// index exactly once), slot discipline, nesting, exception propagation,
// and reuse across many batches.
#include "common/task_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

namespace nrn::common {
namespace {

TEST(TaskPool, RunsEveryIndexExactlyOnce) {
  TaskPool pool(3);
  for (const int workers : {1, 2, 4, 8}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    pool.run(hits.size(), workers,
             [&](std::size_t i, int /*slot*/) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(TaskPool, SlotsAreInRangeAndExclusive) {
  TaskPool pool(4);
  std::mutex mutex;
  std::set<int> seen;
  pool.run(64, 8, [&](std::size_t /*i*/, int slot) {
    EXPECT_GE(slot, 0);
    EXPECT_LT(slot, pool.slot_count());
    const std::lock_guard<std::mutex> lock(mutex);
    seen.insert(slot);
  });
  EXPECT_FALSE(seen.empty());
  EXPECT_LE(static_cast<int>(seen.size()), pool.slot_count());
}

TEST(TaskPool, NestedRunsExecuteInline) {
  TaskPool pool(2);
  std::atomic<int> inner_total{0};
  pool.run(8, 4, [&](std::size_t /*i*/, int outer_slot) {
    pool.run(16, 4, [&](std::size_t /*j*/, int inner_slot) {
      EXPECT_EQ(inner_slot, outer_slot);  // inline on the caller's slot
      ++inner_total;
    });
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(TaskPool, FirstExceptionPropagatesAndPoolSurvives) {
  TaskPool pool(2);
  for (int repeat = 0; repeat < 3; ++repeat) {
    EXPECT_THROW(pool.run(100, 4,
                          [&](std::size_t i, int /*slot*/) {
                            if (i == 13) throw std::runtime_error("boom");
                          }),
                 std::runtime_error);
    // The pool keeps working after a failed batch.
    std::atomic<int> count{0};
    pool.run(50, 4, [&](std::size_t, int) { ++count; });
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(TaskPool, ZeroCountAndZeroHelpersDegradeGracefully) {
  TaskPool inline_pool(0);
  EXPECT_EQ(inline_pool.slot_count(), 1);
  std::atomic<int> count{0};
  inline_pool.run(0, 4, [&](std::size_t, int) { ++count; });
  EXPECT_EQ(count.load(), 0);
  inline_pool.run(10, 4, [&](std::size_t, int slot) {
    EXPECT_EQ(slot, 0);
    ++count;
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(TaskPool, SharedPoolIsReusableAcrossBatches) {
  auto& pool = TaskPool::shared();
  for (int batch = 0; batch < 20; ++batch) {
    std::atomic<std::int64_t> sum{0};
    pool.run(100, 4, [&](std::size_t i, int) {
      sum += static_cast<std::int64_t>(i);
    });
    EXPECT_EQ(sum.load(), 99 * 100 / 2);
  }
}

}  // namespace
}  // namespace nrn::common

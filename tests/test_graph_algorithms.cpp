#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace nrn::graph {
namespace {

TEST(GraphAlgorithms, BfsDistancesOnPath) {
  const Graph g = make_path(5);
  const auto d = bfs_distances(g, 0);
  for (NodeId u = 0; u < 5; ++u) EXPECT_EQ(d[static_cast<size_t>(u)], u);
}

TEST(GraphAlgorithms, BfsDistancesFromMiddle) {
  const Graph g = make_path(5);
  const auto d = bfs_distances(g, 2);
  EXPECT_EQ(d[0], 2);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], 0);
  EXPECT_EQ(d[4], 2);
}

TEST(GraphAlgorithms, UnreachableMarked) {
  const Graph g(4, {{0, 1}, {2, 3}});
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(GraphAlgorithms, LayersPartitionNodes) {
  Rng rng(3);
  const Graph g = make_connected_gnp(40, 0.1, rng);
  const auto layers = bfs_layers(g, 0);
  std::size_t total = 0;
  for (const auto& layer : layers) total += layer.size();
  EXPECT_EQ(total, 40u);
  const auto d = bfs_distances(g, 0);
  for (std::size_t lvl = 0; lvl < layers.size(); ++lvl)
    for (const NodeId u : layers[lvl])
      EXPECT_EQ(d[static_cast<size_t>(u)], static_cast<std::int32_t>(lvl));
}

TEST(GraphAlgorithms, Connectivity) {
  EXPECT_TRUE(is_connected(make_path(10)));
  EXPECT_FALSE(is_connected(Graph(3, {{0, 1}})));
}

TEST(GraphAlgorithms, EccentricityOnStar) {
  const Graph g = make_star(5);
  EXPECT_EQ(eccentricity(g, 0), 1);
  EXPECT_EQ(eccentricity(g, 1), 2);
}

TEST(GraphAlgorithms, DiameterMatchesKnownValues) {
  EXPECT_EQ(diameter_exact(make_path(9)), 8);
  EXPECT_EQ(diameter_exact(make_cycle(8)), 4);
  EXPECT_EQ(diameter_exact(make_complete(6)), 1);
  EXPECT_EQ(diameter_exact(make_grid(4, 7)), 9);
}

TEST(GraphAlgorithms, TwoSweepIsLowerBoundAndExactOnTrees) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph t = make_random_tree(60, rng);
    EXPECT_EQ(diameter_two_sweep(t), diameter_exact(t));
    const Graph g = make_connected_gnp(60, 0.08, rng);
    EXPECT_LE(diameter_two_sweep(g), diameter_exact(g));
  }
}

}  // namespace
}  // namespace nrn::graph

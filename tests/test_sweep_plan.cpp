// SweepPlan grammar: list/brace/range expansion, deterministic cell
// enumeration, stable scenario seeds, and loud failures for malformed
// plans.
#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include "sim_test_util.hpp"

namespace nrn::sim {
namespace {

TEST(SpecList, PlainListsAndTrimming) {
  EXPECT_EQ(expand_spec_list("decay"), std::vector<std::string>{"decay"});
  EXPECT_EQ(expand_spec_list("decay, robust ,fastbc"),
            (std::vector<std::string>{"decay", "robust", "fastbc"}));
}

TEST(SpecList, BraceExpansionCrossProduct) {
  EXPECT_EQ(expand_spec_list("path:{8,16}"),
            (std::vector<std::string>{"path:8", "path:16"}));
  // Leftmost group varies slowest.
  EXPECT_EQ(expand_spec_list("grid:{4,8}x{4,8}"),
            (std::vector<std::string>{"grid:4x4", "grid:4x8", "grid:8x4",
                                      "grid:8x8"}));
  // Commas inside braces do not split the outer list.
  EXPECT_EQ(expand_spec_list("receiver:{0.1,0.5},none"),
            (std::vector<std::string>{"receiver:0.1", "receiver:0.5",
                                      "none"}));
}

TEST(SpecList, RangeExpansion) {
  EXPECT_EQ(expand_spec_list("4..7"),
            (std::vector<std::string>{"4", "5", "6", "7"}));
  EXPECT_EQ(expand_spec_list("0..10+5"),
            (std::vector<std::string>{"0", "5", "10"}));
  EXPECT_EQ(expand_spec_list("64..512*2"),
            (std::vector<std::string>{"64", "128", "256", "512"}));
  // Geometric ranges stop at the last value <= hi.
  EXPECT_EQ(expand_spec_list("64..100*2"), std::vector<std::string>{"64"});
  // Ranges inside braces compose with prefixes/suffixes.
  EXPECT_EQ(expand_spec_list("path:{16..64*2}"),
            (std::vector<std::string>{"path:16", "path:32", "path:64"}));
}

TEST(SpecList, NonRangesPassThrough) {
  // gnp's probability is not a range even though it has dots.
  EXPECT_EQ(expand_spec_list("gnp:50:0.2"),
            std::vector<std::string>{"gnp:50:0.2"});
  // ".." with a non-integer left side is a literal, not a broken range.
  EXPECT_EQ(expand_spec_list("path:16..64"),
            std::vector<std::string>{"path:16..64"});
}

TEST(SpecList, RejectsMalformedItems) {
  EXPECT_THROW(expand_spec_list(""), SpecError);
  EXPECT_THROW(expand_spec_list("a,,b"), SpecError);
  EXPECT_THROW(expand_spec_list("path:{8,16"), SpecError);
  EXPECT_THROW(expand_spec_list("path:8}"), SpecError);
  EXPECT_THROW(expand_spec_list("path:{8,{16}}"), SpecError);
  EXPECT_THROW(expand_spec_list("path:{}"), SpecError);
  EXPECT_THROW(expand_spec_list("7..4"), SpecError);        // lo > hi
  EXPECT_THROW(expand_spec_list("4..64*1"), SpecError);     // factor < 2
  EXPECT_THROW(expand_spec_list("4..64+0"), SpecError);     // step < 1
  EXPECT_THROW(expand_spec_list("4..64*x"), SpecError);     // junk step
  EXPECT_THROW(expand_spec_list("1..100000"), SpecError);   // over the cap
}

TEST(SweepPlan, ExpandsTheFullCrossProduct) {
  const auto plan = SweepPlan::parse(
      "sweep: topology=path:{8,16}; fault=none,receiver:0.3; "
      "protocols=decay,robust; k=1,2; trials=4; seed=9; source=0");
  EXPECT_EQ(plan.master_seed, 9u);
  EXPECT_EQ(plan.trials, 4);
  EXPECT_EQ(plan.cells.size(), 2u * 2u * 2u * 2u);
  // Enumeration order: topology, fault, k, protocol (innermost).
  EXPECT_EQ(plan.cells[0].scenario.topology.text, "path:8");
  EXPECT_EQ(plan.cells[0].scenario.fault_text, "none");
  EXPECT_EQ(plan.cells[0].scenario.k, 1);
  EXPECT_EQ(plan.cells[0].protocol, "decay");
  EXPECT_EQ(plan.cells[1].protocol, "robust");
  EXPECT_EQ(plan.cells[2].scenario.k, 2);
  EXPECT_EQ(plan.cells[4].scenario.fault_text, "receiver:0.3");
  EXPECT_EQ(plan.cells[8].scenario.topology.text, "path:16");
  for (std::size_t i = 0; i < plan.cells.size(); ++i)
    EXPECT_EQ(plan.cells[i].index, static_cast<int>(i));
}

TEST(SweepPlan, DefaultsAndOptionalPrefix) {
  const auto plan = SweepPlan::parse("topology=path:8; protocols=decay;");
  EXPECT_EQ(plan.faults, std::vector<std::string>{"none"});
  EXPECT_EQ(plan.ks, std::vector<std::int64_t>{1});
  EXPECT_EQ(plan.trials, 1);
  EXPECT_EQ(plan.master_seed, 1u);
  EXPECT_EQ(plan.cells.size(), 1u);
}

TEST(SweepPlan, ScenarioSeedsAreStableAndProtocolIndependent) {
  const auto plan = SweepPlan::parse(
      "topology=gnp:30:0.2; fault=none; protocols=decay,robust; seed=5");
  ASSERT_EQ(plan.cells.size(), 2u);
  // Protocols sharing a scenario get the same seed: same graph, same
  // fault tape, paired comparison.
  EXPECT_EQ(plan.cells[0].scenario.seed, plan.cells[1].scenario.seed);

  // Growing an axis must not perturb existing scenarios' seeds.
  const auto wider = SweepPlan::parse(
      "topology=gnp:30:0.2,path:8; fault=none,receiver:0.1; "
      "protocols=decay,robust,fastbc; seed=5");
  EXPECT_EQ(wider.cells[0].scenario.seed, plan.cells[0].scenario.seed);

  // A different master seed moves every cell seed.
  const auto reseeded = SweepPlan::parse(
      "topology=gnp:30:0.2; fault=none; protocols=decay,robust; seed=6");
  EXPECT_NE(reseeded.cells[0].scenario.seed, plan.cells[0].scenario.seed);

  // Parsing is a pure function of the text.
  const auto again = SweepPlan::parse(
      "topology=gnp:30:0.2; fault=none; protocols=decay,robust; seed=5");
  EXPECT_EQ(again.cells[0].key(), plan.cells[0].key());
}

TEST(SweepPlan, CellKeysNameEveryAxis) {
  const auto plan = SweepPlan::parse(
      "topology=path:8; fault=receiver:0.2; protocols=decay; k=3; "
      "trials=7; seed=11; source=2");
  const auto key = plan.cells.at(0).key();
  EXPECT_NE(key.find("topology=path:8"), std::string::npos);
  EXPECT_NE(key.find("fault=receiver:0.2"), std::string::npos);
  EXPECT_NE(key.find("source=2"), std::string::npos);
  EXPECT_NE(key.find("k=3"), std::string::npos);
  EXPECT_NE(key.find("protocol=decay"), std::string::npos);
  EXPECT_NE(key.find("trials=7"), std::string::npos);
  EXPECT_NE(key.find("seed="), std::string::npos);
}

TEST(SweepPlan, RejectsMalformedPlans) {
  const std::string bad[] = {
      "",
      "protocols=decay",                        // missing topology
      "topology=path:8",                        // missing protocols
      "topology=path:8; protocols=decay; topology=path:9",  // duplicate
      "topology=path:8; topologies=path:9; protocols=decay",  // alias dup
      "topology=path:8; protocols=decay; speed=3",  // unknown clause
      "topology=path:8; protocols=decay; trials=0",
      "topology=path:8; protocols=decay; trials=abc",
      "topology=path:8; protocols=decay; k=0",
      "topology=path:8; protocols=decay; seed=-1",
      "topology=path:8; protocols=decay; source=-1",
      "topology=mesh:8; protocols=decay",       // bad topology spec
      "topology=path:8; protocols=decay; fault=sender:1.5",
      "topology=path:8; protocols=decay; fault",  // not key=value
      "topology=path:8; protocols=decay; k=",     // empty value
      "topology=path:{1..4096},grid:{1..100}x{1..100}; protocols=decay",
      "topology=path:8;\nprotocols=decay",      // plans are one line
  };
  for (const auto& plan : bad)
    EXPECT_THROW(SweepPlan::parse(plan), SpecError) << "'" << plan << "'";
}

TEST(Fnv1a64, MatchesKnownVectors) {
  // Reference values of the FNV-1a 64-bit test vectors; the hash feeds
  // seeds, cache file names, and checksums, so it must never drift.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

}  // namespace
}  // namespace nrn::sim

// GBST construction: the semantic non-interference property FASTBC's wave
// analysis needs (Section 3.4.2 and Figure 1).
#include "trees/gbst.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace nrn::trees {
namespace {

using graph::Graph;
using graph::GraphBuilder;
using graph::make_caterpillar;
using graph::make_connected_gnp;
using graph::make_cycle;
using graph::make_grid;
using graph::make_path;
using graph::make_random_tree;
using graph::make_star;

TEST(Gbst, PathIsTriviallyGbst) {
  const auto g = make_path(20);
  GbstBuildStats stats;
  const auto t = build_gbst(g, 0, &stats);
  validate_ranked_bfs(g, t);
  EXPECT_EQ(stats.violations_remaining, 0);
  EXPECT_TRUE(is_gbst(g, t));
}

TEST(Gbst, ParallelChainsDoNotInterfere) {
  // Two disjoint chains hanging off a root: same levels, same ranks, but
  // no graph edge between the branches, so simultaneous fast transmissions
  // are fine -- the semantic property holds even though two same-(l, r)
  // fast pairs exist.
  GraphBuilder b(7);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(0, 4);
  b.add_edge(4, 5);
  b.add_edge(5, 6);
  const auto g = b.build();
  GbstBuildStats stats;
  const auto t = build_gbst(g, 0, &stats);
  EXPECT_EQ(stats.violations_remaining, 0);
  EXPECT_TRUE(is_gbst(g, t));
}

/// Two chains off a common root plus one diagonal edge (5, 3): in the
/// min-id ranked BFS tree both 2 and 5 are fast rank-1 nodes at level 2,
/// and 5 is adjacent to 2's fast child 3 -- the Figure 1 situation.
Graph cross_edge_instance() {
  GraphBuilder b(7);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(0, 4);
  b.add_edge(4, 5);
  b.add_edge(5, 6);
  b.add_edge(5, 3);  // diagonal: level-2 node of chain B sees chain A's tail
  return b.build();
}

TEST(Gbst, CrossEdgeForcesRepair) {
  const auto g = cross_edge_instance();
  GbstBuildStats stats;
  const auto t = build_gbst(g, 0, &stats);
  validate_ranked_bfs(g, t);
  EXPECT_EQ(stats.violations_remaining, 0);
  EXPECT_TRUE(is_gbst(g, t));
}

TEST(Gbst, FamiliesAreInterferenceFree) {
  Rng rng(101);
  std::vector<Graph> graphs;
  graphs.push_back(make_path(64));
  graphs.push_back(make_cycle(64));
  graphs.push_back(make_star(40));
  graphs.push_back(make_grid(9, 9));
  graphs.push_back(make_caterpillar(20, 2));
  for (int i = 0; i < 6; ++i) graphs.push_back(make_random_tree(150, rng));
  for (int i = 0; i < 6; ++i)
    graphs.push_back(make_connected_gnp(100, 0.06, rng));
  for (int i = 0; i < 3; ++i)
    graphs.push_back(make_connected_gnp(100, 0.15, rng));

  for (const auto& g : graphs) {
    GbstBuildStats stats;
    const auto t = build_gbst(g, 0, &stats);
    validate_ranked_bfs(g, t);
    EXPECT_EQ(stats.violations_remaining, 0) << "n=" << g.node_count();
    EXPECT_TRUE(is_gbst(g, t));
  }
}

TEST(Gbst, FindInterferenceReportsNaiveViolations) {
  // On the cross-edge instance, the *min-id* ranked BFS tree (not the GBST
  // construction) should exhibit interference, demonstrating the validator
  // actually detects the Figure 1 situation.
  const auto g = cross_edge_instance();
  const auto naive = build_ranked_bfs(g, 0);
  const auto violations = find_interference(g, naive);
  EXPECT_FALSE(violations.empty());
  for (const auto& v : violations) {
    // Victim and interferer really are distinct fast nodes at one (l, r).
    EXPECT_NE(v.victim, v.interferer);
    EXPECT_TRUE(naive.is_fast(v.victim));
    EXPECT_TRUE(naive.is_fast(v.interferer));
    EXPECT_EQ(naive.level[static_cast<size_t>(v.victim)],
              naive.level[static_cast<size_t>(v.interferer)]);
    EXPECT_EQ(naive.rank[static_cast<size_t>(v.victim)],
              naive.rank[static_cast<size_t>(v.interferer)]);
    EXPECT_TRUE(g.has_edge(v.interferer, v.fast_child));
  }
}

TEST(Gbst, GridsOfVariousShapes) {
  for (const auto& [rows, cols] :
       {std::pair{2, 32}, std::pair{4, 16}, std::pair{16, 4}}) {
    const auto g = make_grid(rows, cols);
    GbstBuildStats stats;
    const auto t = build_gbst(g, 0, &stats);
    EXPECT_EQ(stats.violations_remaining, 0)
        << rows << "x" << cols << " grid";
  }
}

TEST(Gbst, LevelsAreBfsDistancesAfterRepair) {
  Rng rng(103);
  const auto g = make_connected_gnp(80, 0.1, rng);
  const auto t = build_gbst(g, 0, nullptr);
  validate_ranked_bfs(g, t);  // includes the BFS-level check
}

}  // namespace
}  // namespace nrn::trees

// Cross-product property sweeps: every single-message algorithm must
// complete on every topology family under every fault model, and the
// structural invariants of the substrates must hold across random
// instances.  These are the TEST_P grids that keep refactors honest.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/decay.hpp"
#include "core/fastbc.hpp"
#include "core/greedy_router.hpp"
#include "core/robust_fastbc.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "trees/gbst.hpp"

namespace nrn::core {
namespace {

using radio::FaultModel;
using radio::RadioNetwork;

// ---------------------------------------------------------------------
// Completion matrix: algorithm x topology x fault model.

enum class Algo { kDecay, kFastbc, kRobust, kGreedy };
enum class Topo { kPath, kGrid, kStar, kCaterpillar, kHypercube, kRing, kGnp };
enum class Fault { kNone, kSender, kReceiver, kCombined };

std::string algo_name(Algo a) {
  switch (a) {
    case Algo::kDecay: return "decay";
    case Algo::kFastbc: return "fastbc";
    case Algo::kRobust: return "robust";
    case Algo::kGreedy: return "greedy";
  }
  return "?";
}

graph::Graph build_topo(Topo t, Rng& rng) {
  switch (t) {
    case Topo::kPath: return graph::make_path(60);
    case Topo::kGrid: return graph::make_grid(8, 8);
    case Topo::kStar: return graph::make_star(60);
    case Topo::kCaterpillar: return graph::make_caterpillar(15, 3);
    case Topo::kHypercube: return graph::make_hypercube(6);
    case Topo::kRing: return graph::make_ring_of_cliques(8, 6);
    case Topo::kGnp: return graph::make_connected_gnp(64, 0.09, rng);
  }
  return graph::make_path(2);
}

FaultModel build_fault(Fault f) {
  switch (f) {
    case Fault::kNone: return FaultModel::faultless();
    case Fault::kSender: return FaultModel::sender(0.4);
    case Fault::kReceiver: return FaultModel::receiver(0.4);
    case Fault::kCombined: return FaultModel::combined(0.25, 0.25);
  }
  return FaultModel::faultless();
}

class CompletionMatrix
    : public ::testing::TestWithParam<std::tuple<Algo, Topo, Fault>> {};

TEST_P(CompletionMatrix, BroadcastCompletes) {
  const auto [algo, topo, fault] = GetParam();
  Rng grng(0x5eedULL + static_cast<std::uint64_t>(topo));
  const graph::Graph g = build_topo(topo, grng);
  const FaultModel fm = build_fault(fault);
  RadioNetwork net(g, fm, Rng(42));
  Rng rng(43);

  BroadcastRunResult result;
  switch (algo) {
    case Algo::kDecay:
      result = Decay().run(net, 0, rng);
      break;
    case Algo::kFastbc: {
      Fastbc a(g, 0);
      result = a.run(net, rng);
      break;
    }
    case Algo::kRobust: {
      RobustFastbcParams params;
      params.window_multiplier =
          RobustFastbc::recommended_window_multiplier(fm.effective_loss());
      RobustFastbc a(g, 0, params);
      result = a.run(net, rng);
      break;
    }
    case Algo::kGreedy: {
      GreedyRouterParams params;
      params.k = 1;
      const auto r = run_greedy_adaptive_routing(net, 0, params);
      result.completed = r.completed;
      result.rounds = r.rounds;
      break;
    }
  }
  EXPECT_TRUE(result.completed)
      << algo_name(algo) << " failed, rounds=" << result.rounds;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CompletionMatrix,
    ::testing::Combine(
        ::testing::Values(Algo::kDecay, Algo::kFastbc, Algo::kRobust,
                          Algo::kGreedy),
        ::testing::Values(Topo::kPath, Topo::kGrid, Topo::kStar,
                          Topo::kCaterpillar, Topo::kHypercube, Topo::kRing,
                          Topo::kGnp),
        ::testing::Values(Fault::kNone, Fault::kSender, Fault::kReceiver,
                          Fault::kCombined)));

// ---------------------------------------------------------------------
// Decay phase-length sweep: any phase >= 2 completes on moderate paths.

class DecayPhaseSweep : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(DecayPhaseSweep, CompletesOnNoisyPath) {
  const auto g = graph::make_path(48);
  RadioNetwork net(g, FaultModel::receiver(0.4), Rng(7));
  Rng rng(8);
  DecayParams params;
  params.phase_length = GetParam();
  params.max_rounds = 400000;
  EXPECT_TRUE(Decay(params).run(net, 0, rng).completed)
      << "phase " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Phases, DecayPhaseSweep,
                         ::testing::Values(2, 3, 5, 8, 13, 21));

// ---------------------------------------------------------------------
// GBST invariants across random instances.

class GbstRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GbstRandomSweep, ValidInterferenceFreeAndRankBounded) {
  Rng rng(GetParam());
  for (int i = 0; i < 5; ++i) {
    const auto n = static_cast<graph::NodeId>(40 + rng.next_below(160));
    const double p = 0.02 + rng.uniform01() * 0.15;
    const auto g = graph::make_connected_gnp(n, p, rng);
    trees::GbstBuildStats stats;
    const auto tree = trees::build_gbst(g, 0, &stats);
    trees::validate_ranked_bfs(g, tree);
    EXPECT_EQ(stats.violations_remaining, 0) << "n=" << n << " p=" << p;
    std::int32_t bits = 0;
    while ((std::int64_t{1} << bits) < n) ++bits;
    EXPECT_LE(tree.max_rank, bits + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GbstRandomSweep,
                         ::testing::Values(11ULL, 22ULL, 33ULL, 44ULL, 55ULL,
                                           66ULL, 77ULL, 88ULL));

// ---------------------------------------------------------------------
// Fault-rate sweep: measured loss rate on an uncontested link tracks the
// model's effective_loss() for every model kind.

class FaultRateSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(FaultRateSweep, MeasuredLossMatchesEffectiveLoss) {
  const auto [kind, p] = GetParam();
  FaultModel fm = FaultModel::faultless();
  if (kind == 1) fm = FaultModel::sender(p);
  if (kind == 2) fm = FaultModel::receiver(p);
  if (kind == 3) fm = FaultModel::combined(p, p / 2);
  const auto g = graph::make_single_link();
  RadioNetwork net(g, fm, Rng(17));
  const int rounds = 30000;
  int received = 0;
  for (int r = 0; r < rounds; ++r) {
    net.set_broadcast(0, radio::Packet{r});
    received += static_cast<int>(net.run_round().size());
  }
  EXPECT_NEAR(1.0 - static_cast<double>(received) / rounds,
              fm.effective_loss(), 0.015)
      << to_string(fm);
}

INSTANTIATE_TEST_SUITE_P(
    Rates, FaultRateSweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0.1, 0.35, 0.6, 0.85)));

// ---------------------------------------------------------------------
// Determinism: the full (algorithm seed, fault seed) pair pins down every
// run exactly, for each algorithm.

class DeterminismSweep : public ::testing::TestWithParam<Algo> {};

TEST_P(DeterminismSweep, TwoRunsAgreeExactly) {
  const auto algo = GetParam();
  const auto g = graph::make_grid(7, 7);
  auto once = [&]() -> std::int64_t {
    RadioNetwork net(g, FaultModel::receiver(0.4), Rng(5));
    Rng rng(6);
    switch (algo) {
      case Algo::kDecay:
        return Decay().run(net, 0, rng).rounds;
      case Algo::kFastbc: {
        Fastbc a(g, 0);
        return a.run(net, rng).rounds;
      }
      case Algo::kRobust: {
        RobustFastbc a(g, 0);
        return a.run(net, rng).rounds;
      }
      case Algo::kGreedy: {
        GreedyRouterParams params;
        params.k = 3;
        return run_greedy_adaptive_routing(net, 0, params).rounds;
      }
    }
    return -1;
  };
  EXPECT_EQ(once(), once());
}

INSTANTIATE_TEST_SUITE_P(Algos, DeterminismSweep,
                         ::testing::Values(Algo::kDecay, Algo::kFastbc,
                                           Algo::kRobust, Algo::kGreedy));

}  // namespace
}  // namespace nrn::core
